package pisces_test

import (
	"bytes"
	"strings"
	"sync"
	"testing"
	"time"

	pisces "repro"
)

// syncWriter is a goroutine-safe buffer for user-controller output.
type syncWriter struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (w *syncWriter) Write(p []byte) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.buf.Write(p)
}

func (w *syncWriter) String() string {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.buf.String()
}

// TestPublicAPIEndToEnd exercises the whole public surface the way the README
// quickstart does: configuration, boot, tasktypes, messages, forces, windows,
// tracing, the execution environment, and the preprocessor.
func TestPublicAPIEndToEnd(t *testing.T) {
	out := &syncWriter{}
	traceSink := &pisces.MemoryTraceSink{}

	cfg := pisces.SimpleConfiguration(2, 4).WithForces(1, 7, 8, 9)
	cfg.TraceEvents = []string{"TASK-INIT", "FORCE-SPLIT", "MSG-SEND"}
	vm, err := pisces.NewVM(cfg, pisces.Options{
		UserOutput:    out,
		AcceptTimeout: 5 * time.Second,
		TraceSinks:    []pisces.TraceSink{traceSink},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer vm.Shutdown()

	// A worker that doubles the values visible through a window it receives.
	vm.Register("doubler", func(task *pisces.Task) {
		m, err := task.AcceptOne("window")
		if err != nil {
			panic(err)
		}
		w := pisces.MustWin(m.Arg(0))
		data, err := task.ReadWindow(w)
		if err != nil {
			panic(err)
		}
		for i := range data {
			data[i] *= 2
		}
		if err := task.WriteWindow(w, data); err != nil {
			panic(err)
		}
		if err := task.SendSender("done"); err != nil {
			panic(err)
		}
	})

	// The main task: owns an array, uses a force to fill it, then hands
	// halves to doubler tasks through windows.
	vm.Register("main", func(task *pisces.Task) {
		arr, err := task.NewArray("field", 8, 8)
		if err != nil {
			panic(err)
		}
		common, err := task.NewSharedCommon("acc", 1, 0)
		if err != nil {
			panic(err)
		}
		lock, err := task.NewLock("acc-lock")
		if err != nil {
			panic(err)
		}
		err = task.ForceSplit(func(m *pisces.ForceMember) {
			m.Presched(1, 8, 1, func(row int) {
				for col := 1; col <= 8; col++ {
					arr.Set(row, col, 1)
				}
			})
			m.Critical(lock, func() { common.SetReal(0, common.Real(0)+1) })
			m.Barrier(nil)
		})
		if err != nil {
			panic(err)
		}
		if common.Real(0) != 4 {
			panic("force members did not all contribute")
		}

		whole, err := task.WholeWindow(arr)
		if err != nil {
			panic(err)
		}
		halves, err := whole.RowBands(2)
		if err != nil {
			panic(err)
		}
		for _, h := range halves {
			id, err := task.InitiateWait(pisces.Other(), "doubler")
			if err != nil {
				panic(err)
			}
			if err := task.Send(id, "window", pisces.Win(h)); err != nil {
				panic(err)
			}
		}
		if _, err := task.AcceptN(2, "done"); err != nil {
			panic(err)
		}
		v, _ := arr.Get(5, 5)
		task.Printf("main finished: element(5,5) = %v, force members = %d\n", v, 4)
	})

	id, err := vm.Run("main", pisces.OnCluster(1))
	if err != nil {
		t.Fatal(err)
	}
	if id.Cluster != 1 {
		t.Fatalf("main placed on cluster %d", id.Cluster)
	}
	vm.WaitIdle()
	vm.FlushUserOutput()

	if !strings.Contains(out.String(), "element(5,5) = 2") {
		t.Fatalf("user output missing result: %q", out.String())
	}

	// Tracing captured what the configuration asked for.
	analysis := pisces.AnalyzeTrace(traceSink.Events())
	if analysis.CountByKind[pisces.TraceForceSplit] == 0 || analysis.CountByKind[pisces.TraceTaskInit] == 0 {
		t.Errorf("trace analysis missing events: %+v", analysis.CountByKind)
	}

	// Execution-environment views over the same VM.
	var envOut bytes.Buffer
	env := pisces.NewEnvironment(vm, &envOut)
	for _, cmd := range []string{"tasks", "loading", "dump", "figure1"} {
		if err := env.Execute(cmd); err != nil {
			t.Fatalf("exec %q: %v", cmd, err)
		}
	}
	if !strings.Contains(envOut.String(), "VIRTUAL MACHINE ORGANIZATION") {
		t.Error("environment figure1 output missing")
	}

	// Storage report stays inside the paper's bounds.
	storage := vm.SystemStorage()
	if storage.LocalPercent >= 2.5 || storage.TablePercent >= 0.3 {
		t.Errorf("storage overhead out of bounds: %+v", storage)
	}
}

func TestPreprocessorFacade(t *testing.T) {
	fortran, err := pisces.Preprocess("TASKTYPE T\nFORCESPLIT\nTO PARENT SEND OK\nEND TASKTYPE\n")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"SUBROUTINE PTT", "CALL PSFORK", "CALL PSSEND('OK', 'PARENT', 0)"} {
		if !strings.Contains(fortran, want) {
			t.Errorf("generated Fortran missing %q", want)
		}
	}
	if _, err := pisces.Preprocess("END TASKTYPE\n"); err == nil {
		t.Error("bad source accepted")
	}
}

func TestConfigurationFacade(t *testing.T) {
	cfg := pisces.Section9Configuration()
	var buf bytes.Buffer
	if err := cfg.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := pisces.LoadConfiguration(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Cluster(3).ForceSize() != 10 {
		t.Fatalf("loaded configuration wrong: %+v", loaded.Cluster(3))
	}
	if _, err := pisces.ParseTaskID("2.3.7"); err != nil {
		t.Fatal(err)
	}
	if pisces.FlexDefaultConfig().NumPE != 20 {
		t.Error("machine description should have 20 PEs")
	}
	r := pisces.NewRect(1, 4, 2, 5)
	if r.Size() != 16 || pisces.WholeRect(3, 3).Size() != 9 {
		t.Error("rect helpers wrong")
	}
}
