package serve

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/conformance"
	"repro/internal/core"
)

// corpusPrograms returns the conformance corpus minus timeout.pf, whose
// hour-long DELAY is virtual-clock only: the daemon runs programs on the
// real-time goroutine backend, where that delay would sleep for real.
func corpusPrograms(t *testing.T) ([]string, map[string]string) {
	t.Helper()
	names, srcs := conformance.Corpus()
	out := names[:0:0]
	for _, n := range names {
		if n == "timeout.pf" {
			continue
		}
		out = append(out, n)
	}
	return out, srcs
}

// harnessShape is the conformance harness machine: two clusters of eight
// with a force on cluster 1, so force corpus programs have members.
func harnessShape(cfg Config) Config {
	cfg.Clusters = 2
	cfg.Slots = 8
	cfg.ForceCluster = 1
	cfg.ForcePEs = []int{7, 8}
	cfg.AcceptTimeout = 30 * time.Second
	return cfg
}

// soloOutputs runs every corpus program alone — one worker, empty daemon —
// and returns the reference output per program.
func soloOutputs(t *testing.T, names []string, srcs map[string]string) map[string]string {
	t.Helper()
	m := New(harnessShape(Config{MaxActive: 1}))
	defer drainAll(t, m)
	out := make(map[string]string, len(names))
	for _, name := range names {
		s, err := m.Submit(Request{Tenant: "solo", Source: srcs[name]})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		waitSession(t, s)
		if st, serr := s.State(); st != StateDone {
			t.Fatalf("%s solo run failed: state=%q err=%v", name, st, serr)
		}
		out[name] = string(s.Output())
	}
	return out
}

// TestConcurrentTenantConformance is the multi-tenant conformance sweep: the
// whole corpus submitted twice over by concurrent tenants into one daemon
// with eight active workers.  Every tenant's output must be byte-identical
// to the program's solo run — sessions sharing a process, a compile cache
// and a wall clock must not observe each other.  Run under -race this is
// also the isolation check on the shared compiled units.
func TestConcurrentTenantConformance(t *testing.T) {
	names, srcs := corpusPrograms(t)
	solo := soloOutputs(t, names, srcs)

	const rounds = 2
	m := New(harnessShape(Config{
		MaxActive:     8,
		QueueDepth:    2 * rounds * len(names),
		TenantMetrics: true,
	}))
	defer drainAll(t, m)

	type result struct {
		name    string
		tenant  string
		session *Session
	}
	var mu sync.Mutex
	var results []result
	var wg sync.WaitGroup
	for round := 0; round < rounds; round++ {
		for i, name := range names {
			tenant := fmt.Sprintf("t%d-%s", round, name)
			wg.Add(1)
			go func(name, tenant string) {
				defer wg.Done()
				s, err := m.Submit(Request{Tenant: tenant, Source: srcs[name]})
				if err != nil {
					t.Errorf("%s: submit: %v", tenant, err)
					return
				}
				mu.Lock()
				results = append(results, result{name, tenant, s})
				mu.Unlock()
			}(name, tenant)
			_ = i
		}
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}
	if len(results) != rounds*len(names) {
		t.Fatalf("admitted %d sessions; want %d", len(results), rounds*len(names))
	}
	for _, r := range results {
		waitSession(t, r.session)
		if st, serr := r.session.State(); st != StateDone {
			t.Errorf("%s: state=%q err=%v; want done", r.tenant, st, serr)
			continue
		}
		if got := string(r.session.Output()); got != solo[r.name] {
			t.Errorf("%s: concurrent output differs from solo run\n--- solo ---\n%s--- concurrent ---\n%s",
				r.tenant, solo[r.name], got)
		}
	}

	// Every program compiled once; the second round (and any same-source
	// duplicates) came from the shared cache.
	cs := m.Cache().Stats()
	if cs.Misses != int64(len(names)) {
		t.Errorf("cache misses = %d; want %d (one per distinct program)", cs.Misses, len(names))
	}
	if cs.Hits < int64(len(names)) {
		t.Errorf("cache hits = %d; want >= %d (second round shares units)", cs.Hits, len(names))
	}
}

// hogSrc floods MAIN's in-queue with results it never accepts; under a tiny
// HeapBytes quota the sends trip the tenant's budget long before the shared
// arena is under pressure.
const hogSrc = `TASKTYPE MAIN
      INTEGER W
      SIGNAL RESULT
      SIGNAL DONE
      DO 10 W = 1, 8
        ON ANY INITIATE WORKER(W)
10    CONTINUE
      ACCEPT 8 OF DONE
      PRINT *, 'HOG SURVIVED'
END TASKTYPE

TASKTYPE WORKER(ME)
      INTEGER ME, I
      DO 20 I = 1, 400
        TO PARENT SEND RESULT(ME, I)
20    CONTINUE
      TO PARENT SEND DONE
END TASKTYPE
`

// TestQuotaIsolation: one tenant with a deliberately tiny heap quota
// overflows it; the violation fails that tenant alone, and eight good
// tenants running alongside produce byte-identical output to their solo
// runs.
func TestQuotaIsolation(t *testing.T) {
	names, srcs := corpusPrograms(t)
	solo := soloOutputs(t, names, srcs)

	m := New(harnessShape(Config{MaxActive: 9, QueueDepth: 32}))
	defer drainAll(t, m)

	hog, err := m.Submit(Request{
		Tenant: "hog",
		Source: hogSrc,
		Limits: core.Limits{HeapBytes: 8 << 10},
	})
	if err != nil {
		t.Fatal(err)
	}
	good := make([]*Session, 0, 8)
	goodNames := make([]string, 0, 8)
	for i := 0; i < 8; i++ {
		name := names[i%len(names)]
		s, err := m.Submit(Request{Tenant: fmt.Sprintf("good%d", i), Source: srcs[name]})
		if err != nil {
			t.Fatal(err)
		}
		good = append(good, s)
		goodNames = append(goodNames, name)
	}

	waitSession(t, hog)
	st, herr := hog.State()
	if st != StateFailed {
		t.Fatalf("hog state = %q (err=%v); want failed", st, herr)
	}
	if !errors.Is(herr, core.ErrLimitExceeded) {
		t.Fatalf("hog error = %v; want ErrLimitExceeded", herr)
	}
	var le *core.LimitError
	if !errors.As(herr, &le) || le.Resource != core.LimitHeap {
		t.Fatalf("hog violation = %v; want heap", herr)
	}
	if out := string(hog.Output()); strings.Contains(out, "HOG SURVIVED") {
		t.Fatalf("hog printed its success line past a heap violation:\n%s", out)
	}

	for i, s := range good {
		waitSession(t, s)
		if st, serr := s.State(); st != StateDone {
			t.Errorf("good%d (%s): state=%q err=%v; want done", i, goodNames[i], st, serr)
			continue
		}
		if got := string(s.Output()); got != solo[goodNames[i]] {
			t.Errorf("good%d (%s): output perturbed by the hog's violation\n--- solo ---\n%s--- shared ---\n%s",
				i, goodNames[i], solo[goodNames[i]], got)
		}
	}
	if m.mQuota.Load() != 1 {
		t.Errorf("quota counter = %d; want 1", m.mQuota.Load())
	}
}
