package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"repro/internal/core"
	"repro/internal/msgcodec"
)

// SubmitRequest is the POST /programs JSON body.
type SubmitRequest struct {
	Tenant string     `json:"tenant,omitempty"`
	Source string     `json:"source"`
	Main   string     `json:"main,omitempty"`
	Limits LimitsSpec `json:"limits,omitempty"`
}

// LimitsSpec is the wire form of core.Limits (wall clock in milliseconds).
type LimitsSpec struct {
	HeapBytes   int64 `json:"heap_bytes,omitempty"`
	MaxTasks    int64 `json:"max_tasks,omitempty"`
	WallClockMS int64 `json:"wall_clock_ms,omitempty"`
	OutputBytes int64 `json:"output_bytes,omitempty"`
}

func (l LimitsSpec) limits() core.Limits {
	return core.Limits{
		HeapBytes:   l.HeapBytes,
		MaxTasks:    l.MaxTasks,
		WallClock:   time.Duration(l.WallClockMS) * time.Millisecond,
		OutputBytes: l.OutputBytes,
	}
}

// StatusResponse is the GET /programs/{id}/status (and POST /programs) body.
type StatusResponse struct {
	ID          string `json:"id"`
	Tenant      string `json:"tenant,omitempty"`
	State       State  `json:"state"`
	Error       string `json:"error,omitempty"`
	Quota       string `json:"quota_violation,omitempty"` // which limit, when State=failed on quota
	CacheHit    bool   `json:"cache_hit"`
	OutputBytes int    `json:"output_bytes"`
	QueueMS     int64  `json:"queue_ms"`
	RunMS       int64  `json:"run_ms"`
}

func statusOf(s *Session) StatusResponse {
	st, err := s.State()
	resp := StatusResponse{
		ID:          s.ID(),
		Tenant:      s.Tenant(),
		State:       st,
		CacheHit:    s.CacheHit(),
		OutputBytes: len(s.Output()),
	}
	if err != nil {
		resp.Error = err.Error()
		var le *core.LimitError
		if errors.As(err, &le) {
			resp.Quota = le.Resource
		}
	}
	submitted, started, finished := s.Times()
	if !started.IsZero() {
		resp.QueueMS = started.Sub(submitted).Milliseconds()
		if !finished.IsZero() {
			resp.RunMS = finished.Sub(started).Milliseconds()
		}
	}
	return resp
}

// Handler returns the daemon's HTTP API:
//
//	POST /programs               submit a program; 202 + status JSON
//	GET  /programs               list retained sessions (admission order)
//	GET  /programs/{id}/status   one session's status JSON
//	GET  /programs/{id}/output   the program's terminal output (text/plain);
//	                             ?wait=1 blocks until the session finishes
//	GET  /programs/{id}/events   the session's flight-recorder events (JSON)
//
// Admission failures map to 429 (queue full) and 503 (draining); unknown
// ids to 404.  The daemon mounts this on the same mux as the obs debug
// endpoints, so one listener serves /programs, /metrics and /debug/pprof.
func (m *Manager) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /programs", m.handleSubmit)
	mux.HandleFunc("GET /programs", m.handleList)
	mux.HandleFunc("GET /programs/{id}/status", m.handleStatus)
	mux.HandleFunc("GET /programs/{id}/output", m.handleOutput)
	mux.HandleFunc("GET /programs/{id}/events", m.handleEvents)
	return mux
}

func (m *Manager) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req SubmitRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, "bad request: "+err.Error(), http.StatusBadRequest)
		return
	}
	s, err := m.Submit(Request{
		Tenant: req.Tenant,
		Source: req.Source,
		Main:   req.Main,
		Limits: req.Limits.limits(),
	})
	switch {
	case errors.Is(err, ErrQueueFull):
		http.Error(w, err.Error(), http.StatusTooManyRequests)
		return
	case errors.Is(err, ErrDraining):
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
		return
	case err != nil:
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	writeJSON(w, http.StatusAccepted, statusOf(s))
}

func (m *Manager) handleList(w http.ResponseWriter, r *http.Request) {
	sessions := m.Sessions()
	out := make([]StatusResponse, 0, len(sessions))
	for _, s := range sessions {
		out = append(out, statusOf(s))
	}
	writeJSON(w, http.StatusOK, out)
}

func (m *Manager) handleStatus(w http.ResponseWriter, r *http.Request) {
	s, ok := m.Session(r.PathValue("id"))
	if !ok {
		http.NotFound(w, r)
		return
	}
	writeJSON(w, http.StatusOK, statusOf(s))
}

func (m *Manager) handleOutput(w http.ResponseWriter, r *http.Request) {
	s, ok := m.Session(r.PathValue("id"))
	if !ok {
		http.NotFound(w, r)
		return
	}
	if r.URL.Query().Get("wait") != "" {
		select {
		case <-s.Done():
		case <-r.Context().Done():
			return
		case <-time.After(60 * time.Second):
			http.Error(w, "timed out waiting for completion", http.StatusGatewayTimeout)
			return
		}
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	_, _ = w.Write(s.Output())
}

// EventResponse is one flight-recorder event in GET /programs/{id}/events.
// The edge id renders in hex so it can be grepped against trace files and
// blackbox listings.
type EventResponse struct {
	Seq  uint64 `json:"seq"`
	TSNS int64  `json:"ts_ns"`
	Kind string `json:"kind"`
	Edge string `json:"edge,omitempty"`
	A    int64  `json:"a"`
	B    int64  `json:"b"`
}

func (m *Manager) handleEvents(w http.ResponseWriter, r *http.Request) {
	s, ok := m.Session(r.PathValue("id"))
	if !ok {
		http.NotFound(w, r)
		return
	}
	events := s.Events()
	out := make([]EventResponse, 0, len(events))
	for _, ev := range events {
		e := EventResponse{
			Seq:  ev.Seq,
			TSNS: ev.TS,
			Kind: msgcodec.EventKindName(ev.Kind),
			A:    ev.A,
			B:    ev.B,
		}
		if ev.Edge != 0 {
			e.Edge = fmt.Sprintf("%#x", ev.Edge)
		}
		out = append(out, e)
	}
	writeJSON(w, http.StatusOK, out)
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}
