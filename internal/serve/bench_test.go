package serve

import (
	"sort"
	"sync"
	"testing"
	"time"
)

// benchSrc does a little real work — a spawn, a round trip, some prints —
// so the benchmark measures session turnaround, not just queue plumbing.
const benchSrc = `TASKTYPE MAIN
      INTEGER I, J
      SIGNAL RESULT
      ON ANY INITIATE WORKER(3)
      J = 0
      DO 10 I = 1, 100
        J = J + I
10    CONTINUE
      ACCEPT 1 OF RESULT
      PRINT *, 'SUM', J, MSGI('RESULT', 1, 1)
END TASKTYPE

TASKTYPE WORKER(ME)
      INTEGER ME
      TO PARENT SEND RESULT(ME * ME)
END TASKTYPE
`

// BenchmarkServeSaturation drives the daemon at saturation from eight
// concurrent submitters and reports throughput (programs/s) and the p99
// submit-to-complete latency.  This is the serving-mode headline number:
// how many small programs one multi-tenant daemon turns around.
func BenchmarkServeSaturation(b *testing.B) {
	m := New(Config{
		MaxActive:  8,
		QueueDepth: 256,
	})
	defer func() {
		if err := m.Drain(60 * time.Second); err != nil {
			b.Fatal(err)
		}
	}()

	const submitters = 8
	var (
		mu        sync.Mutex
		latencies []time.Duration
	)
	work := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < submitters; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for range work {
				start := time.Now()
				s, err := m.Submit(Request{Source: benchSrc})
				if err != nil {
					// Queue full under burst: count it against latency by
					// retrying after a short backoff rather than dropping.
					for err != nil {
						time.Sleep(time.Millisecond)
						s, err = m.Submit(Request{Source: benchSrc})
					}
				}
				<-s.Done()
				d := time.Since(start)
				mu.Lock()
				latencies = append(latencies, d)
				mu.Unlock()
			}
		}()
	}

	b.ResetTimer()
	start := time.Now()
	for i := 0; i < b.N; i++ {
		work <- struct{}{}
	}
	close(work)
	wg.Wait()
	elapsed := time.Since(start)
	b.StopTimer()

	if n := len(latencies); n > 0 {
		sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
		idx := (n * 99) / 100
		if idx >= n {
			idx = n - 1
		}
		b.ReportMetric(float64(b.N)/elapsed.Seconds(), "programs/s")
		b.ReportMetric(float64(latencies[idx].Nanoseconds()), "p99-ns")
	}
	for _, s := range m.Sessions() {
		if st, err := s.State(); st == StateFailed {
			b.Fatalf("benchmark session failed: %v", err)
		}
	}
}
