package serve

import (
	"bytes"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

const helloSrc = `TASKTYPE MAIN
      PRINT *, 'HELLO SERVE'
END TASKTYPE
`

// slowSrc parks its worker in an ACCEPT nobody satisfies for ~1.5 real
// seconds (goroutine backend), long enough to observe queue behaviour.
const slowSrc = `TASKTYPE MAIN
      SIGNAL NEVER
      ACCEPT 1 OF
        NEVER
      DELAY 1.5 THEN
        PRINT *, 'SLOW DONE'
      END ACCEPT
END TASKTYPE
`

// waitSession blocks until the session finishes, with a test-sized bound.
func waitSession(t *testing.T, s *Session) {
	t.Helper()
	select {
	case <-s.Done():
	case <-time.After(60 * time.Second):
		st, err := s.State()
		t.Fatalf("session %s stuck in state %q (err=%v)", s.ID(), st, err)
	}
}

func drainAll(t *testing.T, m *Manager) {
	t.Helper()
	if err := m.Drain(60 * time.Second); err != nil {
		t.Fatal(err)
	}
}

func TestSessionLifecycle(t *testing.T) {
	m := New(Config{MaxActive: 2})
	defer drainAll(t, m)

	s1, err := m.Submit(Request{Tenant: "alice", Source: helloSrc})
	if err != nil {
		t.Fatal(err)
	}
	if s1.ID() != "p1" || s1.Tenant() != "alice" {
		t.Fatalf("session = %s/%s; want p1/alice", s1.ID(), s1.Tenant())
	}
	waitSession(t, s1)
	st, serr := s1.State()
	if st != StateDone || serr != nil {
		t.Fatalf("state = %q err = %v; want done/nil", st, serr)
	}
	if got := string(s1.Output()); !strings.Contains(got, "HELLO SERVE") {
		t.Fatalf("output = %q; want HELLO SERVE", got)
	}
	submitted, started, finished := s1.Times()
	if submitted.IsZero() || started.IsZero() || finished.IsZero() {
		t.Fatal("lifecycle timestamps missing")
	}
	if s1.CacheHit() {
		t.Fatal("first submission reported a cache hit")
	}

	// The identical program resubmitted by another tenant shares the
	// compiled unit through the cache.
	s2, err := m.Submit(Request{Tenant: "bob", Source: helloSrc})
	if err != nil {
		t.Fatal(err)
	}
	waitSession(t, s2)
	if !s2.CacheHit() {
		t.Fatal("second submission missed the shared compile cache")
	}
	if !bytes.Equal(s1.Output(), s2.Output()) {
		t.Fatalf("outputs differ across tenants:\n%q\n%q", s1.Output(), s2.Output())
	}

	if got, ok := m.Session("p1"); !ok || got != s1 {
		t.Fatal("Session(p1) lookup failed")
	}
	if all := m.Sessions(); len(all) != 2 || all[0] != s1 || all[1] != s2 {
		t.Fatalf("Sessions() = %d entries; want [p1 p2]", len(all))
	}
}

func TestSubmitValidation(t *testing.T) {
	m := New(Config{MaxActive: 1})
	defer drainAll(t, m)
	if _, err := m.Submit(Request{}); !errors.Is(err, ErrNoSource) {
		t.Fatalf("empty submit error = %v; want ErrNoSource", err)
	}
}

func TestCompileErrorFailsSession(t *testing.T) {
	m := New(Config{MaxActive: 1})
	defer drainAll(t, m)
	s, err := m.Submit(Request{Source: "THIS IS NOT PISCES FORTRAN"})
	if err != nil {
		t.Fatal(err)
	}
	waitSession(t, s)
	st, serr := s.State()
	if st != StateFailed || serr == nil {
		t.Fatalf("state = %q err = %v; want failed with error", st, serr)
	}
	if !strings.Contains(serr.Error(), "compile") {
		t.Fatalf("error = %v; want a compile error", serr)
	}
}

// TestQueueFullRejects: with one worker pinned on a slow program and a
// depth-1 queue occupied, the next submission is refused immediately and
// leaves no trace in the session table.
func TestQueueFullRejects(t *testing.T) {
	m := New(Config{MaxActive: 1, QueueDepth: 1})
	defer drainAll(t, m)

	running, err := m.Submit(Request{Source: slowSrc})
	if err != nil {
		t.Fatal(err)
	}
	// Wait for the worker to pick it up so the queue slot is truly free.
	deadline := time.Now().Add(10 * time.Second)
	for {
		if st, _ := running.State(); st != StateQueued {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("slow session never left the queue")
		}
		time.Sleep(time.Millisecond)
	}
	queued, err := m.Submit(Request{Source: slowSrc})
	if err != nil {
		t.Fatal(err)
	}

	if _, err := m.Submit(Request{Source: helloSrc}); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("submit into a full queue = %v; want ErrQueueFull", err)
	}
	if len(m.Sessions()) != 2 {
		t.Fatalf("rejected submission left %d sessions; want 2", len(m.Sessions()))
	}
	if m.mRejected.Load() == 0 {
		t.Fatal("rejection not counted")
	}
	waitSession(t, running)
	waitSession(t, queued)
}

// TestDrain: queued sessions finish, new submissions are refused, and the
// worker pool exits within the bound.
func TestDrain(t *testing.T) {
	m := New(Config{MaxActive: 1, QueueDepth: 8})
	var sessions []*Session
	for i := 0; i < 3; i++ {
		s, err := m.Submit(Request{Source: helloSrc})
		if err != nil {
			t.Fatal(err)
		}
		sessions = append(sessions, s)
	}
	if err := m.Drain(60 * time.Second); err != nil {
		t.Fatal(err)
	}
	if !m.Draining() {
		t.Fatal("Draining() = false after Drain")
	}
	for _, s := range sessions {
		st, serr := s.State()
		if st != StateDone {
			t.Fatalf("session %s drained into state %q (err=%v); want done", s.ID(), st, serr)
		}
	}
	if _, err := m.Submit(Request{Source: helloSrc}); !errors.Is(err, ErrDraining) {
		t.Fatalf("post-drain submit = %v; want ErrDraining", err)
	}
	// Idempotent: a second drain returns promptly.
	if err := m.Drain(time.Second); err != nil {
		t.Fatal(err)
	}
}

func TestManagerSnapshotMetrics(t *testing.T) {
	m := New(Config{MaxActive: 1, TenantMetrics: true})
	defer drainAll(t, m)
	s, err := m.Submit(Request{Tenant: "alice", Source: helloSrc})
	if err != nil {
		t.Fatal(err)
	}
	waitSession(t, s)

	snap := m.Snapshot()
	counters := map[string]int64{}
	for _, c := range snap.Counters {
		counters[c.Name] = c.Value
	}
	if counters["serve.sessions.submitted"] != 1 || counters["serve.sessions.completed"] != 1 {
		t.Fatalf("session counters wrong: %v", counters)
	}
	if counters["serve.cache.misses"] != 1 {
		t.Fatalf("cache misses = %d; want 1", counters["serve.cache.misses"])
	}
	var tenantSeries int
	for name := range counters {
		if strings.HasPrefix(name, "tenant."+s.ID()+".") {
			tenantSeries++
		}
	}
	if tenantSeries == 0 {
		t.Fatalf("no tenant.%s.* series in daemon snapshot", s.ID())
	}
	if counters["tenant."+s.ID()+".compile.cache.miss"] != 1 {
		t.Fatal("per-tenant compile.cache.miss not scoped into the snapshot")
	}
}

// --- HTTP API ---

func postProgram(t *testing.T, url string, body SubmitRequest) (*http.Response, StatusResponse) {
	t.Helper()
	raw, _ := json.Marshal(body)
	resp, err := http.Post(url+"/programs", "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st StatusResponse
	if resp.StatusCode == http.StatusAccepted {
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
	}
	return resp, st
}

func TestHTTPSubmitStatusOutput(t *testing.T) {
	m := New(Config{MaxActive: 2})
	defer drainAll(t, m)
	srv := httptest.NewServer(m.Handler())
	defer srv.Close()

	resp, st := postProgram(t, srv.URL, SubmitRequest{Tenant: "alice", Source: helloSrc})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST /programs = %d; want 202", resp.StatusCode)
	}
	if st.ID == "" || st.Tenant != "alice" {
		t.Fatalf("submit response = %+v", st)
	}

	// ?wait=1 blocks until completion, then serves the terminal output.
	out, err := http.Get(srv.URL + "/programs/" + st.ID + "/output?wait=1")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(out.Body)
	out.Body.Close()
	if !strings.Contains(string(body), "HELLO SERVE") {
		t.Fatalf("output body = %q; want HELLO SERVE", body)
	}
	if ct := out.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("output content-type = %q", ct)
	}

	stResp, err := http.Get(srv.URL + "/programs/" + st.ID + "/status")
	if err != nil {
		t.Fatal(err)
	}
	var got StatusResponse
	if err := json.NewDecoder(stResp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	stResp.Body.Close()
	if got.State != StateDone || got.OutputBytes == 0 {
		t.Fatalf("status = %+v; want done with output", got)
	}

	listResp, err := http.Get(srv.URL + "/programs")
	if err != nil {
		t.Fatal(err)
	}
	var list []StatusResponse
	if err := json.NewDecoder(listResp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	listResp.Body.Close()
	if len(list) != 1 || list[0].ID != st.ID {
		t.Fatalf("list = %+v; want the one session", list)
	}

	if r404, err := http.Get(srv.URL + "/programs/nope/status"); err != nil {
		t.Fatal(err)
	} else {
		r404.Body.Close()
		if r404.StatusCode != http.StatusNotFound {
			t.Fatalf("unknown id = %d; want 404", r404.StatusCode)
		}
	}
}

func TestHTTPQuotaViolationSurfaces(t *testing.T) {
	m := New(Config{MaxActive: 1})
	defer drainAll(t, m)
	srv := httptest.NewServer(m.Handler())
	defer srv.Close()

	// fanin initiates six workers; a MaxTasks of 3 fails it on quota.
	_, corpus := corpusPrograms(t)
	resp, st := postProgram(t, srv.URL, SubmitRequest{
		Source: corpus["fanin.pf"],
		Limits: LimitsSpec{MaxTasks: 3},
	})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST = %d; want 202", resp.StatusCode)
	}
	s, ok := m.Session(st.ID)
	if !ok {
		t.Fatal("submitted session not found")
	}
	waitSession(t, s)
	stResp, err := http.Get(srv.URL + "/programs/" + st.ID + "/status")
	if err != nil {
		t.Fatal(err)
	}
	var got StatusResponse
	if err := json.NewDecoder(stResp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	stResp.Body.Close()
	if got.State != StateFailed || got.Quota != "tasks" {
		t.Fatalf("status = %+v; want failed with quota_violation=tasks", got)
	}
	if !strings.Contains(got.Error, "tenant limit exceeded") {
		t.Fatalf("error = %q; want tenant limit exceeded", got.Error)
	}
}

func TestHTTPAdmissionStatusCodes(t *testing.T) {
	m := New(Config{MaxActive: 1, QueueDepth: 1})
	srv := httptest.NewServer(m.Handler())
	defer srv.Close()

	resp, st := postProgram(t, srv.URL, SubmitRequest{Source: slowSrc})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST = %d; want 202", resp.StatusCode)
	}
	running, _ := m.Session(st.ID)
	deadline := time.Now().Add(10 * time.Second)
	for {
		if s, _ := running.State(); s != StateQueued {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("slow session never left the queue")
		}
		time.Sleep(time.Millisecond)
	}
	if resp, _ := postProgram(t, srv.URL, SubmitRequest{Source: slowSrc}); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("queued POST = %d; want 202", resp.StatusCode)
	}
	if resp, _ := postProgram(t, srv.URL, SubmitRequest{Source: helloSrc}); resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-capacity POST = %d; want 429", resp.StatusCode)
	}
	if resp, _ := postProgram(t, srv.URL, SubmitRequest{Source: ""}); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty POST = %d; want 400", resp.StatusCode)
	}

	drainAll(t, m)
	if resp, _ := postProgram(t, srv.URL, SubmitRequest{Source: helloSrc}); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining POST = %d; want 503", resp.StatusCode)
	}
}
