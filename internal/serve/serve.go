// Package serve is the multi-tenant serving core: it turns the
// one-process-one-program runtime into a long-running daemon that owns many
// isolated program sessions at once.  Each session is one tenant's program
// run — compiled through a cache shared across tenants, executed on its own
// core.VM with its own heap shards, resource quota (core.Limits) and metric
// registry — so a tenant that exhausts its budget, crashes, or floods its
// terminal fails alone while its neighbours run on.
//
// The lifecycle is submit -> queue -> compile (shared cache) -> boot VM ->
// run -> reap.  Admission control is a bounded queue in front of a fixed
// worker pool: when the queue is full, Submit refuses immediately
// (ErrQueueFull) instead of letting latency grow without bound.  Drain stops
// admission, lets queued and running sessions finish, and bounds the wait —
// the daemon's SIGTERM path.
package serve

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/msgcodec"
	"repro/internal/obs"
	"repro/internal/pfi"
)

// Admission errors.
var (
	// ErrQueueFull is returned by Submit when the bounded run queue is at
	// capacity; the caller should retry later (HTTP 429).
	ErrQueueFull = errors.New("serve: run queue full")
	// ErrDraining is returned by Submit once Drain has begun (HTTP 503).
	ErrDraining = errors.New("serve: draining, not accepting submissions")
	// ErrNoSource is returned by Submit for an empty program.
	ErrNoSource = errors.New("serve: empty program source")
)

// State is a session's position in its lifecycle.
type State string

const (
	StateQueued    State = "queued"    // admitted, waiting for a worker
	StateCompiling State = "compiling" // worker compiling (or fetching from cache)
	StateRunning   State = "running"   // VM booted, program executing
	StateDone      State = "done"      // completed without error
	StateFailed    State = "failed"    // compile error, run error, or quota violation
)

// retainedSessions bounds the finished-session history a long-running daemon
// keeps for status/output queries; the oldest finished sessions are reaped
// once the table grows past it.
const retainedSessions = 512

// Limits re-exports the per-tenant resource policy so daemon frontends can
// configure quotas without importing the runtime core directly.
type Limits = core.Limits

// Config tunes a Manager.
type Config struct {
	// Clusters and Slots shape each session's VM (config.Simple); zero
	// selects 2 clusters of 8 slots, the conformance-harness shape.
	Clusters, Slots int
	// ForceCluster/ForcePEs give one cluster secondary PEs so force
	// constructs have members to split across (0 = no forces).
	ForceCluster int
	ForcePEs     []int
	// MaxActive is the worker-pool size: sessions running concurrently.
	// Zero selects 4.
	MaxActive int
	// QueueDepth bounds the admission queue. Zero selects 64.
	QueueDepth int
	// DefaultLimits fills any limit a submission leaves zero.  The zero
	// value imposes no defaults (unlimited tenants).
	DefaultLimits core.Limits
	// Cache is the compile cache shared by every tenant; nil builds a
	// private one bounded to CacheBytes.
	Cache *pfi.UnitCache
	// CacheBytes bounds the private cache when Cache is nil (0 = default).
	CacheBytes int64
	// Metrics receives the manager's own series (sessions, queue, cache).
	// Nil creates a private enabled registry.  Per-tenant series are
	// collected separately; see Snapshot.
	Metrics *obs.Registry
	// TenantMetrics enables a per-session obs.Registry on each VM, exposed
	// through Snapshot under a tenant.<id>. prefix.  Costs the usual
	// instrumentation overhead per session, so it is opt-in.
	TenantMetrics bool
	// AcceptTimeout is each VM's default ACCEPT timeout (zero = core's 5s).
	AcceptTimeout time.Duration
	// MaxOutputBytes bounds each session's retained output buffer when the
	// session's own OutputBytes limit is unlimited.  Zero selects 1 MiB.
	MaxOutputBytes int64
	// History receives one JSON line per finished session — the daemon's
	// session journal (tenant, verdict, quota outcome, timings, cache
	// outcome).  Nil disables the journal.  Writes are serialised.
	History io.Writer
	// Log receives structured JSON log lines for session lifecycle events
	// (submitted, finished, panic, limit).  Nil disables.
	Log io.Writer
}

// Request is one tenant's program submission.
type Request struct {
	// Tenant identifies the submitting tenant (metrics attribution and
	// reporting only; isolation comes from the per-session VM).  Empty is
	// the anonymous tenant.
	Tenant string
	// Source is the Pisces Fortran program text.
	Source string
	// Main optionally names the entry tasktype (default: MAIN or first).
	Main string
	// Limits is the session's resource policy; zero fields inherit the
	// manager's DefaultLimits.
	Limits core.Limits
}

// Session is one admitted program run.  All accessors are safe to call from
// any goroutine at any point in the lifecycle.
type Session struct {
	id     string
	tenant string
	src    string
	main   string
	limits core.Limits

	mu        sync.Mutex
	state     State
	err       error
	cacheHit  bool
	submitted time.Time
	started   time.Time // left the queue
	finished  time.Time

	out  *boundedBuf
	reg  *obs.Registry // per-tenant registry; nil unless TenantMetrics
	rec  *obs.Recorder // per-session flight recorder; always on
	snap *obs.Snapshot // final registry snapshot, set at reap
	done chan struct{}
}

// ID returns the session id ("p1", "p2", ... in admission order).
func (s *Session) ID() string { return s.id }

// Tenant returns the submitting tenant's name.
func (s *Session) Tenant() string { return s.tenant }

// State returns the session's lifecycle state and, in StateFailed, the
// error that failed it (a *core.LimitError for quota violations).
func (s *Session) State() (State, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.state, s.err
}

// Done is closed when the session reaches StateDone or StateFailed.
func (s *Session) Done() <-chan struct{} { return s.done }

// Output returns the program's user-terminal output so far.
func (s *Session) Output() []byte { return s.out.bytes() }

// Events returns the session's flight-recorder events so far (oldest first).
// The recorder is always on, so a failed session's last sends, accepts, kills
// and limit violations are inspectable after the fact.
func (s *Session) Events() []msgcodec.BlackboxEvent { return s.rec.Events() }

// BlackboxDump returns the session's flight recorder as an encoded blackbox
// blob, decodable with "pisces blackbox".
func (s *Session) BlackboxDump() ([]byte, error) { return s.rec.Dump() }

// CacheHit reports whether the program compiled from the shared cache.
func (s *Session) CacheHit() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.cacheHit
}

// Times returns the submit, start (left queue) and finish instants; zero
// values for stages not reached yet.
func (s *Session) Times() (submitted, started, finished time.Time) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.submitted, s.started, s.finished
}

func (s *Session) setState(st State) {
	s.mu.Lock()
	s.state = st
	s.mu.Unlock()
}

// Manager owns the session table, admission queue and worker pool of one
// serving daemon.
type Manager struct {
	cfg   Config
	cache *pfi.UnitCache
	reg   *obs.Registry

	queue    chan *Session
	quit     chan struct{}
	quitOnce sync.Once
	draining atomic.Bool
	workers  sync.WaitGroup

	mu       sync.Mutex
	sessions map[string]*Session
	order    []string // admission order, for deterministic listing and reaping
	seq      int64

	logMu sync.Mutex // serialises History and Log line writes

	mSubmitted *obs.Counter
	mRejected  *obs.Counter
	mCompleted *obs.Counter
	mFailed    *obs.Counter
	mQuota     *obs.Counter
	mActive    *obs.Gauge
	mQueued    *obs.Gauge
	mQueueNS   *obs.Histogram
	mRunNS     *obs.Histogram
	mE2ENS     *obs.Histogram
}

// New builds a Manager and starts its worker pool.
func New(cfg Config) *Manager {
	if cfg.Clusters <= 0 {
		cfg.Clusters = 2
	}
	if cfg.Slots <= 0 {
		cfg.Slots = 8
	}
	if cfg.MaxActive <= 0 {
		cfg.MaxActive = 4
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 64
	}
	if cfg.MaxOutputBytes <= 0 {
		cfg.MaxOutputBytes = 1 << 20
	}
	m := &Manager{
		cfg:      cfg,
		cache:    cfg.Cache,
		reg:      cfg.Metrics,
		queue:    make(chan *Session, cfg.QueueDepth),
		quit:     make(chan struct{}),
		sessions: make(map[string]*Session),
	}
	if m.cache == nil {
		m.cache = pfi.NewUnitCache(cfg.CacheBytes)
	}
	if m.reg == nil {
		m.reg = obs.New()
		m.reg.Enable(obs.Metrics)
	}
	m.mSubmitted = m.reg.Counter("serve.sessions.submitted")
	m.mRejected = m.reg.Counter("serve.sessions.rejected")
	m.mCompleted = m.reg.Counter("serve.sessions.completed")
	m.mFailed = m.reg.Counter("serve.sessions.failed")
	m.mQuota = m.reg.Counter("serve.sessions.quota")
	m.mActive = m.reg.Gauge("serve.sessions.active")
	m.mQueued = m.reg.Gauge("serve.queue.depth")
	m.mQueueNS = m.reg.Histogram("serve.queue.wait.ns", "ns")
	m.mRunNS = m.reg.Histogram("serve.run.ns", "ns")
	m.mE2ENS = m.reg.Histogram("serve.e2e.ns", "ns")
	for i := 0; i < cfg.MaxActive; i++ {
		m.workers.Add(1)
		go m.worker()
	}
	return m
}

// Cache returns the compile cache shared by this manager's tenants.
func (m *Manager) Cache() *pfi.UnitCache { return m.cache }

// mergeLimits fills zero fields of l from the manager defaults.
func (m *Manager) mergeLimits(l core.Limits) core.Limits {
	d := m.cfg.DefaultLimits
	if l.HeapBytes == 0 {
		l.HeapBytes = d.HeapBytes
	}
	if l.MaxTasks == 0 {
		l.MaxTasks = d.MaxTasks
	}
	if l.WallClock == 0 {
		l.WallClock = d.WallClock
	}
	if l.OutputBytes == 0 {
		l.OutputBytes = d.OutputBytes
	}
	return l
}

// Submit admits one program submission: on success the session is queued
// and its id allocated.  Fails fast with ErrQueueFull or ErrDraining.
func (m *Manager) Submit(req Request) (*Session, error) {
	if req.Source == "" {
		return nil, ErrNoSource
	}
	if m.draining.Load() {
		m.mRejected.Inc()
		return nil, ErrDraining
	}
	limits := m.mergeLimits(req.Limits)
	outCap := m.cfg.MaxOutputBytes
	if limits.OutputBytes > 0 && limits.OutputBytes+1024 < outCap {
		// The VM drops output past the quota; the +1KiB slack keeps the
		// system termination notice visible in the retained buffer.
		outCap = limits.OutputBytes + 1024
	}
	s := &Session{
		tenant:    req.Tenant,
		src:       req.Source,
		main:      req.Main,
		limits:    limits,
		state:     StateQueued,
		submitted: time.Now(),
		out:       &boundedBuf{max: outCap},
		rec:       obs.NewRecorder(0, 0, 0),
		done:      make(chan struct{}),
	}
	if m.cfg.TenantMetrics {
		s.reg = obs.New()
		s.reg.Enable(obs.Metrics)
	}

	m.mu.Lock()
	m.seq++
	s.id = fmt.Sprintf("p%d", m.seq)
	m.sessions[s.id] = s
	m.order = append(m.order, s.id)
	m.reapLocked()
	m.mu.Unlock()

	select {
	case m.queue <- s:
	default:
		m.mu.Lock()
		delete(m.sessions, s.id)
		m.order = m.order[:len(m.order)-1]
		m.mu.Unlock()
		m.mRejected.Inc()
		return nil, fmt.Errorf("%w (depth %d)", ErrQueueFull, cap(m.queue))
	}
	m.mSubmitted.Inc()
	m.mQueued.Set(int64(len(m.queue)))
	m.logJSON("submitted", map[string]any{"id": s.id, "tenant": s.tenant})
	return s, nil
}

// Session looks a session up by id.
func (m *Manager) Session(id string) (*Session, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	s, ok := m.sessions[id]
	return s, ok
}

// Sessions returns every retained session in admission order.
func (m *Manager) Sessions() []*Session {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]*Session, 0, len(m.order))
	for _, id := range m.order {
		if s, ok := m.sessions[id]; ok {
			out = append(out, s)
		}
	}
	return out
}

// reapLocked drops the oldest finished sessions beyond the retention bound.
// Queued and running sessions are never reaped.  Caller holds m.mu.
func (m *Manager) reapLocked() {
	excess := len(m.order) - retainedSessions
	for i := 0; excess > 0 && i < len(m.order); {
		s := m.sessions[m.order[i]]
		if s != nil {
			if st, _ := s.State(); st != StateDone && st != StateFailed {
				i++
				continue
			}
			delete(m.sessions, m.order[i])
		}
		m.order = append(m.order[:i], m.order[i+1:]...)
		excess--
	}
}

// Drain stops admission, lets queued and running sessions finish, and waits
// up to timeout for the pool to empty.  It is idempotent; later calls just
// wait again.  A timeout leaves the stragglers running and returns an error
// (the daemon exits anyway; the OS reaps).
func (m *Manager) Drain(timeout time.Duration) error {
	m.draining.Store(true)
	m.quitOnce.Do(func() { close(m.quit) })
	done := make(chan struct{})
	go func() {
		m.workers.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-time.After(timeout):
		return fmt.Errorf("serve: drain timed out after %v with sessions still running", timeout)
	}
}

// Draining reports whether Drain has begun.
func (m *Manager) Draining() bool { return m.draining.Load() }

// worker runs sessions from the queue until told to quit, then drains what
// is already queued and exits.
func (m *Manager) worker() {
	defer m.workers.Done()
	for {
		select {
		case s := <-m.queue:
			m.runSession(s)
		case <-m.quit:
			for {
				select {
				case s := <-m.queue:
					m.runSession(s)
				default:
					return
				}
			}
		}
	}
}

// runSession executes one session end to end: compile via the shared cache,
// boot an isolated VM under the session's limits, run, and reap.
func (m *Manager) runSession(s *Session) {
	m.mActive.Add(1)
	m.mQueued.Set(int64(len(m.queue)))
	defer m.mActive.Add(-1)

	start := time.Now()
	s.mu.Lock()
	s.started = start
	s.state = StateCompiling
	s.mu.Unlock()
	m.mQueueNS.ObserveDuration(start.Sub(s.submitted))

	prog, hit, err := m.cache.CompileTrace(s.src)
	if err != nil {
		m.finish(s, fmt.Errorf("compile: %w", err))
		return
	}
	s.mu.Lock()
	s.cacheHit = hit
	s.mu.Unlock()
	if s.reg != nil {
		if hit {
			s.reg.Counter("compile.cache.hit").Inc()
		} else {
			s.reg.Counter("compile.cache.miss").Inc()
		}
	}

	cfg := config.Simple(m.cfg.Clusters, m.cfg.Slots)
	if m.cfg.ForceCluster > 0 && len(m.cfg.ForcePEs) > 0 {
		cfg = cfg.WithForces(m.cfg.ForceCluster, m.cfg.ForcePEs...)
	}
	vm, err := core.NewVM(cfg, core.Options{
		UserOutput:     s.out,
		AcceptTimeout:  m.cfg.AcceptTimeout,
		Limits:         s.limits,
		Metrics:        s.reg,
		FlightRecorder: s.rec,
		FailureSink: func(reason string) {
			m.logJSON("failure", map[string]any{"id": s.id, "tenant": s.tenant, "reason": reason})
		},
	})
	if err != nil {
		m.finish(s, fmt.Errorf("boot: %w", err))
		return
	}
	s.setState(StateRunning)
	// A panicking session must not take the worker (and with it the daemon)
	// down: recover, fail the session alone, and leave its flight recorder
	// holding the events leading up to the panic.
	runErr := func() (err error) {
		defer func() {
			if r := recover(); r != nil {
				err = fmt.Errorf("serve: session panicked: %v", r)
				m.logJSON("panic", map[string]any{"id": s.id, "tenant": s.tenant, "panic": fmt.Sprint(r)})
			}
		}()
		return prog.Run(vm, pfi.Options{Main: s.main})
	}()
	violation := vm.LimitViolation()
	vm.Shutdown()
	if s.reg != nil {
		snap := s.reg.Snapshot()
		s.mu.Lock()
		s.snap = snap
		s.mu.Unlock()
	}
	switch {
	case violation != nil:
		// Quota beats the run error: a killed tenant's tasks report killed /
		// terminated errors that are the violation's cascade, not the cause.
		m.mQuota.Inc()
		m.finish(s, violation)
	case runErr != nil:
		m.finish(s, runErr)
	default:
		m.finish(s, nil)
	}
}

// finish moves the session to its terminal state and publishes timings.
func (m *Manager) finish(s *Session, err error) {
	now := time.Now()
	s.mu.Lock()
	s.finished = now
	s.err = err
	if err != nil {
		s.state = StateFailed
	} else {
		s.state = StateDone
	}
	started := s.started
	submitted := s.submitted
	s.mu.Unlock()
	if err != nil {
		m.mFailed.Inc()
	} else {
		m.mCompleted.Inc()
	}
	m.mRunNS.ObserveDuration(now.Sub(started))
	m.mE2ENS.ObserveDuration(now.Sub(submitted))
	m.journal(s, err, submitted, started, now)
	close(s.done)
}

// historyRecord is one line of the daemon's session journal (-history-file):
// everything an operator needs to reconstruct a tenant's run after the
// session itself has been reaped.
type historyRecord struct {
	Time     string `json:"time"`
	ID       string `json:"id"`
	Tenant   string `json:"tenant,omitempty"`
	Verdict  State  `json:"verdict"`
	Error    string `json:"error,omitempty"`
	Quota    string `json:"quota,omitempty"` // which limit, when the verdict is a quota kill
	CacheHit bool   `json:"cache_hit"`
	QueueMS  int64  `json:"queue_ms"`
	RunMS    int64  `json:"run_ms"`
}

// journal appends the session's history line and mirrors it to the
// structured log.
func (m *Manager) journal(s *Session, err error, submitted, started, finished time.Time) {
	rec := historyRecord{
		Time:     finished.UTC().Format(time.RFC3339Nano),
		ID:       s.id,
		Tenant:   s.tenant,
		Verdict:  StateDone,
		CacheHit: s.CacheHit(),
	}
	if err != nil {
		rec.Verdict = StateFailed
		rec.Error = err.Error()
		var le *core.LimitError
		if errors.As(err, &le) {
			rec.Quota = le.Resource
		}
	}
	if !started.IsZero() {
		rec.QueueMS = started.Sub(submitted).Milliseconds()
		rec.RunMS = finished.Sub(started).Milliseconds()
	}
	if m.cfg.History != nil {
		if line, jerr := json.Marshal(rec); jerr == nil {
			m.logMu.Lock()
			_, _ = m.cfg.History.Write(append(line, '\n'))
			m.logMu.Unlock()
		}
	}
	m.logJSON("finished", map[string]any{
		"id": s.id, "tenant": s.tenant, "verdict": rec.Verdict,
		"error": rec.Error, "quota": rec.Quota,
		"queue_ms": rec.QueueMS, "run_ms": rec.RunMS, "cache_hit": rec.CacheHit,
	})
}

// logJSON writes one structured log line ({"time":..., "event":..., fields})
// to the configured Log writer.  Keys marshal sorted, so lines are stable.
func (m *Manager) logJSON(event string, fields map[string]any) {
	if m.cfg.Log == nil {
		return
	}
	fields["time"] = time.Now().UTC().Format(time.RFC3339Nano)
	fields["event"] = event
	line, err := json.Marshal(fields)
	if err != nil {
		return
	}
	m.logMu.Lock()
	_, _ = m.cfg.Log.Write(append(line, '\n'))
	m.logMu.Unlock()
}

// Snapshot assembles the daemon-wide metrics view: the manager's own series,
// the shared compile cache's counters, and — when TenantMetrics is on — each
// retained session's registry under a tenant.<id>. prefix.
func (m *Manager) Snapshot() *obs.Snapshot {
	cs := m.cache.Stats()
	snap := m.reg.Snapshot()
	snap.Merge(&obs.Snapshot{
		Counters: []obs.CounterSnap{
			{Name: "serve.cache.hits", Value: cs.Hits},
			{Name: "serve.cache.misses", Value: cs.Misses},
			{Name: "serve.cache.evictions", Value: cs.Evictions},
		},
		Gauges: []obs.GaugeSnap{
			{Name: "serve.cache.entries", Value: int64(cs.Entries)},
			{Name: "serve.cache.weight.bytes", Value: cs.Weight},
		},
	})
	for _, s := range m.Sessions() {
		s.mu.Lock()
		tsnap := s.snap
		reg := s.reg
		s.mu.Unlock()
		if tsnap == nil && reg != nil {
			tsnap = reg.Snapshot() // still running: live view
		}
		if tsnap != nil {
			snap.Merge(clone(tsnap).Prefix("tenant." + s.id + "."))
		}
	}
	return snap
}

// clone deep-copies a snapshot so Prefix cannot mutate a retained one.
func clone(s *obs.Snapshot) *obs.Snapshot {
	out := &obs.Snapshot{}
	out.Merge(s)
	return out
}

// boundedBuf is a goroutine-safe output buffer with a retention cap: writes
// past the cap are counted but dropped, keeping a hostile tenant's terminal
// from growing the daemon's memory without bound.
type boundedBuf struct {
	mu      sync.Mutex
	buf     bytes.Buffer
	max     int64
	dropped int64
}

func (b *boundedBuf) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if room := b.max - int64(b.buf.Len()); room < int64(len(p)) {
		if room > 0 {
			b.buf.Write(p[:room])
		}
		b.dropped += int64(len(p)) - max64(room, 0)
		return len(p), nil
	}
	return b.buf.Write(p)
}

func (b *boundedBuf) bytes() []byte {
	b.mu.Lock()
	defer b.mu.Unlock()
	return append([]byte(nil), b.buf.Bytes()...)
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

var _ io.Writer = (*boundedBuf)(nil)
