package sim

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"repro/internal/config"
	"repro/internal/core"
)

// runFanIn boots a VM on a seeded scheduler and runs a racy fan-in program:
// ten children send their index to a sink, which prints the arrival order.
// The arrival order is schedule-dependent, so it fingerprints the schedule.
func runFanIn(t *testing.T, seed int64) string {
	t.Helper()
	var out bytes.Buffer
	s := New(seed)
	vm, err := core.NewVM(config.Simple(2, 12), core.Options{UserOutput: &out, Backend: s})
	if err != nil {
		t.Fatal(err)
	}
	defer vm.Shutdown()

	vm.Register("child", func(task *core.Task) {
		_ = task.SendParent("tag", task.Arg(0))
	})
	vm.Register("sink", func(task *core.Task) {
		for i := 0; i < 10; i++ {
			if err := task.Initiate(core.Any(), "child", core.Int(int64(i))); err != nil {
				task.Println("initiate:", err)
				return
			}
		}
		res, err := task.AcceptN(10, "tag")
		if err != nil {
			task.Println("accept:", err)
			return
		}
		order := ""
		for _, m := range res.Accepted {
			order += fmt.Sprintf("%d ", core.MustInt(m.Arg(0)))
		}
		task.Println("order:", order)
	})

	if _, err := vm.Run("sink", core.OnCluster(1)); err != nil {
		t.Fatal(err)
	}
	vm.WaitIdle()
	vm.FlushUserOutput()
	return out.String()
}

// TestSeedReproducibility: the same seed reproduces the same arrival order;
// different seeds explore different interleavings.
func TestSeedReproducibility(t *testing.T) {
	outputs := make(map[int64]string)
	for seed := int64(0); seed < 6; seed++ {
		a := runFanIn(t, seed)
		b := runFanIn(t, seed)
		if a != b {
			t.Fatalf("seed %d not reproducible:\nrun1: %q\nrun2: %q", seed, a, b)
		}
		outputs[seed] = a
	}
	distinct := make(map[string]bool)
	for _, o := range outputs {
		distinct[o] = true
	}
	if len(distinct) < 2 {
		t.Errorf("6 seeds produced a single schedule %q; PRNG pick appears inert", outputs[0])
	}
}

// TestVirtualClockTimeout: an ACCEPT with a DELAY nobody satisfies times out
// on the virtual clock without consuming wall time.
func TestVirtualClockTimeout(t *testing.T) {
	var out bytes.Buffer
	s := New(1)
	vm, err := core.NewVM(config.Simple(1, 2), core.Options{UserOutput: &out, Backend: s})
	if err != nil {
		t.Fatal(err)
	}
	defer vm.Shutdown()

	vm.Register("waiter", func(task *core.Task) {
		res, err := task.Accept(core.AcceptSpec{
			Total: 1,
			Types: []core.TypeCount{{Type: "never"}},
			Delay: time.Hour,
		})
		if err != nil {
			task.Println("accept:", err)
			return
		}
		task.Println("timedout:", res.TimedOut)
	})

	start := time.Now()
	if _, err := vm.Run("waiter", core.OnCluster(1)); err != nil {
		t.Fatal(err)
	}
	vm.FlushUserOutput()
	if wall := time.Since(start); wall > 10*time.Second {
		t.Fatalf("virtual one-hour DELAY took %v of wall time", wall)
	}
	if got, want := out.String(), "timedout: true\n"; got != want {
		t.Fatalf("output = %q, want %q", got, want)
	}
	if s.Now().Sub(epoch) < time.Hour {
		t.Errorf("virtual clock advanced only %v, want >= 1h", s.Now().Sub(epoch))
	}
}

// TestDeadlockReport: a task that waits forever for a message nobody sends
// panics with a *Deadlock naming the seed when the driver waits on it.
func TestDeadlockReport(t *testing.T) {
	s := New(7)
	vm, err := core.NewVM(config.Simple(1, 2), core.Options{Backend: s})
	if err != nil {
		t.Fatal(err)
	}
	vm.Register("stuck", func(task *core.Task) {
		_, _ = task.Accept(core.AcceptSpec{
			Total: 1,
			Types: []core.TypeCount{{Type: "never"}},
			Delay: core.Forever,
		})
	})

	defer func() {
		r := recover()
		d, ok := r.(*Deadlock)
		if !ok {
			t.Fatalf("recovered %v (%T), want *Deadlock", r, r)
		}
		if d.Seed != 7 {
			t.Errorf("deadlock seed = %d, want 7", d.Seed)
		}
	}()
	_, _ = vm.Run("stuck", core.OnCluster(1))
	t.Fatal("run of a deadlocked program returned")
}

// TestForceDeterminism: a force with critical sections produces the same
// lock acquisition order for the same seed.
func runForce(t *testing.T, seed int64) string {
	t.Helper()
	var out bytes.Buffer
	s := New(seed)
	cfg := config.Simple(1, 2).WithForces(1, 7, 8, 9)
	vm, err := core.NewVM(cfg, core.Options{UserOutput: &out, Backend: s})
	if err != nil {
		t.Fatal(err)
	}
	defer vm.Shutdown()

	vm.Register("f", func(task *core.Task) {
		common, err := task.NewSharedCommon("ord", 0, 8)
		if err != nil {
			task.Println(err)
			return
		}
		lock, err := task.NewLock("l")
		if err != nil {
			task.Println(err)
			return
		}
		err = task.ForceSplit(func(m *core.ForceMember) {
			m.Barrier(nil)
			m.Critical(lock, func() {
				n := common.Int(0)
				common.SetInt(0, n+1)
				common.SetInt(int(n)+1, int64(m.Member()))
			})
			m.Barrier(nil)
		})
		if err != nil {
			task.Println(err)
			return
		}
		order := ""
		for i := int64(1); i <= common.Int(0); i++ {
			order += fmt.Sprintf("%d ", common.Int(int(i)))
		}
		task.Println("acquired:", order)
	})
	if _, err := vm.Run("f", core.OnCluster(1)); err != nil {
		t.Fatal(err)
	}
	vm.FlushUserOutput()
	return out.String()
}

func TestForceDeterminism(t *testing.T) {
	for seed := int64(0); seed < 4; seed++ {
		a, b := runForce(t, seed), runForce(t, seed)
		if a != b {
			t.Fatalf("seed %d force run not reproducible:\nrun1: %q\nrun2: %q", seed, a, b)
		}
	}
}
