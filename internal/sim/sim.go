// Package sim is the deterministic simulation backend for the PISCES
// run-time: a cooperative, single-threaded scheduler in which at most one
// task executes at any moment, the next runnable task is chosen by a seeded
// PRNG, and a virtual clock replaces wall time.  Running the same program
// with the same seed reproduces the same interleaving — and therefore the
// same output, the same trace event order, and the same TIMEDOUT decisions —
// byte for byte; sweeping seeds explores distinct legal schedules.
//
// # Execution model
//
// Tasks still run on goroutines (task bodies are arbitrary Go functions and
// cannot be re-entered piecemeal), but a strict baton protocol serialises
// them: a task goroutine only executes between receiving a grant from the
// scheduler and handing the baton back at its next blocking point, so there
// is no actual parallelism and no data race between tasks.
//
// Two calling contexts exist.  Code inside a spawned task parks itself on a
// primitive and hands the baton back.  The external driver — the test or CLI
// goroutine that booted the VM and calls blocking VM APIs like WaitTask — is
// not a task; its waits pump the scheduler loop (pick a ready task, grant,
// wait for the baton) until the awaited condition holds.  A deterministic run
// therefore requires a single driver goroutine; this is the natural shape of
// every test and of `pisces run`.
//
// # Virtual time
//
// The clock never advances while any task is runnable.  When every task is
// parked and the awaited condition still does not hold, the scheduler jumps
// the clock to the earliest pending timer and fires it (an ACCEPT DELAY
// expiring, the run time limit).  Timeouts thus fire exactly when the system
// has quiesced, which makes TIMEDOUT schedule-independent for programs whose
// message flow does not race their own delays — and instant, regardless of
// how many wall-clock seconds the DELAY names.
//
// # Deadlocks
//
// If no task is runnable, no timer is pending, and the driver's condition is
// still unsatisfied, the run can never proceed.  The scheduler panics with a
// *Deadlock carrying the seed and every parked task's name and wait state;
// harnesses recover it and report the seed for replay.
package sim

import (
	"container/heap"
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/backend"
)

// epoch is the virtual clock's start: the month the ICPP'87 paper appeared.
var epoch = time.Date(1987, time.August, 1, 0, 0, 0, 0, time.UTC)

// Deadlock is the panic value raised when the simulation can make no further
// progress.  It is a panic rather than an error because it surfaces from
// arbitrary blocking points deep inside the run-time; conformance harnesses
// recover it.
type Deadlock struct {
	Seed int64
	// Tasks lists the parked tasks as "name [state]" strings.
	Tasks []string
	// Waiting describes what the external driver was waiting for.
	Waiting string
}

func (d *Deadlock) Error() string {
	return fmt.Sprintf("sim: deadlock (seed %d) while driver waits for %s; parked tasks: %s",
		d.Seed, d.Waiting, strings.Join(d.Tasks, ", "))
}

// Scheduler is the deterministic backend.  Create one per VM with New and
// pass it in core.Options.Backend; a Scheduler must not be shared between
// VMs.
type Scheduler struct {
	mu   sync.Mutex
	seed int64
	rng  *rand.Rand
	now  time.Time

	ready    []*task
	current  *task
	handback chan struct{}

	timers   timerHeap
	timerSeq int

	taskSeq int
	live    map[int]*task

	// waiting names the condition the driver is currently pumping for, for
	// deadlock reports.
	waiting string

	// dead poisons the scheduler after a deadlock: parked tasks can never be
	// resumed coherently, so later driver waits re-raise the deadlock instead
	// of hanging (a recovering harness's deferred Shutdown hits this path).
	dead *Deadlock

	steps int64
}

// New returns a deterministic scheduler seeded with seed.
func New(seed int64) *Scheduler {
	return &Scheduler{
		seed:     seed,
		rng:      rand.New(rand.NewSource(seed)),
		now:      epoch,
		handback: make(chan struct{}),
		live:     make(map[int]*task),
	}
}

// Seed returns the seed the scheduler was created with.
func (s *Scheduler) Seed() int64 { return s.seed }

// Steps returns the number of scheduling decisions taken so far, a cheap
// fingerprint of how much work a run performed.
func (s *Scheduler) Steps() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.steps
}

// task is one spawned task under the scheduler's control.
type task struct {
	id    int
	name  string
	grant chan struct{}
	// parked is true while the task is handed back and waiting on a
	// primitive (not in the ready set, not running).
	parked bool
	// waitSeq invalidates stale waiter registrations: a primitive may hold a
	// reference to a task from an earlier wait (a barrier waiting on both
	// allIn and aborted, say); the wake is honoured only if the sequence
	// still matches.
	waitSeq  uint64
	signaled bool
	state    string
}

// waiterRef identifies one registered wait of one task.
type waiterRef struct {
	t   *task
	seq uint64
}

// ---------------------------------------------------------------------------
// Backend interface

// Spawn registers fn as a new task, initially ready.  It never runs before
// the current task blocks or the driver pumps.
func (s *Scheduler) Spawn(name string, fn func()) {
	s.mu.Lock()
	s.taskSeq++
	t := &task{id: s.taskSeq, name: name, grant: make(chan struct{}), state: "ready"}
	s.live[t.id] = t
	s.ready = append(s.ready, t)
	s.mu.Unlock()

	go func() {
		<-t.grant
		fn()
		s.mu.Lock()
		t.state = "exited"
		delete(s.live, t.id)
		s.current = nil
		s.mu.Unlock()
		s.handback <- struct{}{}
	}()
}

// NewEvent returns a deterministic pulse event.
func (s *Scheduler) NewEvent() backend.Event { return &simEvent{s: s} }

// NewGate returns a deterministic one-shot gate.
func (s *Scheduler) NewGate() backend.Gate { return &simGate{s: s} }

// NewSem returns a deterministic binary semaphore with its token available.
func (s *Scheduler) NewSem() backend.Sem { return &simSem{s: s, avail: true} }

// NewWaitGroup returns a deterministic wait group.
func (s *Scheduler) NewWaitGroup() backend.WaitGroup { return &simWG{s: s} }

// AfterFunc schedules fn on the virtual clock.
func (s *Scheduler) AfterFunc(d time.Duration, fn func()) backend.Timer {
	s.mu.Lock()
	defer s.mu.Unlock()
	return &simTimer{s: s, e: s.addTimerLocked(d, false, fn)}
}

// Now returns the virtual clock reading.
func (s *Scheduler) Now() time.Time {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.now
}

// Yield re-enters the calling task into the ready set and lets the scheduler
// pick the next runner (possibly the same task).  Called from the driver it
// is a no-op.
func (s *Scheduler) Yield() {
	s.mu.Lock()
	t := s.current
	if t == nil {
		s.mu.Unlock()
		return
	}
	s.ready = append(s.ready, t)
	s.parkLocked(t, "ready")
	s.mu.Unlock()
}

// Deterministic reports true.
func (s *Scheduler) Deterministic() bool { return true }

// ---------------------------------------------------------------------------
// Scheduling core

// parkLocked hands the baton from the current task back to the driver and
// blocks until the task is granted again.  Callers hold s.mu and must have
// registered the task with whatever will wake it; s.mu is re-held on return.
func (s *Scheduler) parkLocked(t *task, state string) {
	t.state = state
	s.current = nil
	s.mu.Unlock()
	s.handback <- struct{}{}
	<-t.grant
	s.mu.Lock()
}

// beginWaitLocked starts a new wait of the current task and returns its
// registration reference.  It panics when called outside a task: primitives
// that support driver-side waiting handle that case themselves.
func (s *Scheduler) beginWaitLocked(what string) waiterRef {
	t := s.current
	if t == nil {
		panic("sim: " + what + " outside a scheduled task (blocking primitive used from a second driver goroutine?)")
	}
	t.waitSeq++
	t.parked = true
	t.signaled = false
	return waiterRef{t: t, seq: t.waitSeq}
}

// wakeLocked moves a registered waiter to the ready set.  It reports false
// for stale registrations (the task was woken by something else since).
func (s *Scheduler) wakeLocked(w waiterRef, signaled bool) bool {
	if !w.t.parked || w.t.waitSeq != w.seq {
		return false
	}
	w.t.parked = false
	w.t.signaled = signaled
	w.t.state = "ready"
	s.ready = append(s.ready, w.t)
	return true
}

// stepLocked performs one scheduling decision: run one ready task until it
// hands the baton back, or fire the earliest timer.  It reports false when
// neither is possible.  s.mu is held on entry and exit but released while a
// task runs.
func (s *Scheduler) stepLocked() bool {
	s.steps++
	if len(s.ready) > 0 {
		i := 0
		if len(s.ready) > 1 {
			i = s.rng.Intn(len(s.ready))
		}
		t := s.ready[i]
		s.ready = append(s.ready[:i], s.ready[i+1:]...)
		t.state = "running"
		s.current = t
		s.mu.Unlock()
		t.grant <- struct{}{}
		<-s.handback
		s.mu.Lock()
		return true
	}
	for s.timers.Len() > 0 {
		e := heap.Pop(&s.timers).(*timerEntry)
		if e.canceled {
			continue
		}
		e.fired = true
		if e.at.After(s.now) {
			s.now = e.at
		}
		if e.locked {
			e.fn()
		} else {
			fn := e.fn
			s.mu.Unlock()
			fn()
			s.mu.Lock()
		}
		return true
	}
	return false
}

// runUntilLocked pumps the scheduler on behalf of the external driver until
// cond (evaluated with s.mu held) is true, panicking with a *Deadlock when no
// progress is possible.  The panic is raised with s.mu released so that
// recovering code can still call (poisoned) scheduler operations.
func (s *Scheduler) runUntilLocked(what string, cond func() bool) {
	prev := s.waiting
	s.waiting = what
	for !cond() {
		if s.dead != nil {
			d := s.dead
			s.mu.Unlock()
			panic(d)
		}
		if !s.stepLocked() {
			d := s.deadlockLocked()
			s.dead = d
			s.mu.Unlock()
			panic(d)
		}
	}
	s.waiting = prev
}

// deadlockLocked builds the deadlock report.  Callers hold s.mu.
func (s *Scheduler) deadlockLocked() *Deadlock {
	d := &Deadlock{Seed: s.seed, Waiting: s.waiting}
	if d.Waiting == "" {
		d.Waiting = "(unnamed condition)"
	}
	ids := make([]int, 0, len(s.live))
	for id := range s.live {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		t := s.live[id]
		d.Tasks = append(d.Tasks, fmt.Sprintf("%s [%s]", t.name, t.state))
	}
	return d
}

// ---------------------------------------------------------------------------
// Timers

type timerEntry struct {
	at       time.Time
	seq      int
	canceled bool
	fired    bool
	// locked timers run with s.mu held (internal wait timeouts); unlocked
	// ones run user callbacks with the lock released.
	locked bool
	fn     func()
	index  int
}

type timerHeap []*timerEntry

func (h timerHeap) Len() int { return len(h) }
func (h timerHeap) Less(i, j int) bool {
	if !h[i].at.Equal(h[j].at) {
		return h[i].at.Before(h[j].at)
	}
	return h[i].seq < h[j].seq
}
func (h timerHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index, h[j].index = i, j
}
func (h *timerHeap) Push(x any) {
	e := x.(*timerEntry)
	e.index = len(*h)
	*h = append(*h, e)
}
func (h *timerHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// addTimerLocked registers a timer d from virtual-now.  Callers hold s.mu.
func (s *Scheduler) addTimerLocked(d time.Duration, locked bool, fn func()) *timerEntry {
	if d < 0 {
		d = 0
	}
	s.timerSeq++
	e := &timerEntry{at: s.now.Add(d), seq: s.timerSeq, locked: locked, fn: fn}
	heap.Push(&s.timers, e)
	return e
}

type simTimer struct {
	s *Scheduler
	e *timerEntry
}

func (t *simTimer) Stop() bool {
	t.s.mu.Lock()
	defer t.s.mu.Unlock()
	if t.e.fired || t.e.canceled {
		return false
	}
	t.e.canceled = true
	return true
}

// ---------------------------------------------------------------------------
// Event

type simEvent struct {
	s       *Scheduler
	pending bool
	hasW    bool
	w       waiterRef
	tm      *timerEntry
}

func (e *simEvent) Pulse() {
	s := e.s
	s.mu.Lock()
	if e.hasW {
		w := e.w
		e.hasW = false
		if e.tm != nil {
			e.tm.canceled = true
			e.tm = nil
		}
		s.wakeLocked(w, true)
	} else {
		e.pending = true
	}
	s.mu.Unlock()
}

func (e *simEvent) Wait() { e.WaitTimeout(-1) }

func (e *simEvent) WaitTimeout(d time.Duration) bool {
	s := e.s
	s.mu.Lock()
	if e.pending {
		e.pending = false
		s.mu.Unlock()
		return true
	}
	ref := s.beginWaitLocked("Event.Wait")
	e.w, e.hasW = ref, true
	if d >= 0 {
		e.tm = s.addTimerLocked(d, true, func() {
			if e.hasW && e.w == ref {
				e.hasW = false
				e.tm = nil
				s.wakeLocked(ref, false)
			}
		})
	}
	s.parkLocked(ref.t, "event-wait")
	ok := ref.t.signaled
	s.mu.Unlock()
	return ok
}

// ---------------------------------------------------------------------------
// Gate

type simGate struct {
	s       *Scheduler
	open    bool
	waiters []waiterRef
}

func (g *simGate) Open() {
	s := g.s
	s.mu.Lock()
	if !g.open {
		g.open = true
		for _, w := range g.waiters {
			s.wakeLocked(w, true)
		}
		g.waiters = nil
	}
	s.mu.Unlock()
}

func (g *simGate) IsOpen() bool {
	g.s.mu.Lock()
	defer g.s.mu.Unlock()
	return g.open
}

func (g *simGate) Wait() {
	s := g.s
	s.mu.Lock()
	switch {
	case g.open:
	case s.current == nil:
		s.runUntilLocked("gate", func() bool { return g.open })
	default:
		ref := s.beginWaitLocked("Gate.Wait")
		g.waiters = append(g.waiters, ref)
		s.parkLocked(ref.t, "gate-wait")
	}
	s.mu.Unlock()
}

func (g *simGate) WaitOr(other backend.Gate) {
	o := other.(*simGate)
	s := g.s
	s.mu.Lock()
	switch {
	case g.open || o.open:
	case s.current == nil:
		s.runUntilLocked("gate", func() bool { return g.open || o.open })
	default:
		ref := s.beginWaitLocked("Gate.WaitOr")
		g.waiters = append(g.waiters, ref)
		o.waiters = append(o.waiters, ref)
		s.parkLocked(ref.t, "gate-wait")
	}
	s.mu.Unlock()
}

// ---------------------------------------------------------------------------
// Sem

type simSem struct {
	s       *Scheduler
	avail   bool
	waiters []waiterRef
}

func (m *simSem) TryAcquire() bool {
	m.s.mu.Lock()
	defer m.s.mu.Unlock()
	if m.avail {
		m.avail = false
		return true
	}
	return false
}

func (m *simSem) Acquire() {
	s := m.s
	s.mu.Lock()
	if m.avail {
		m.avail = false
		s.mu.Unlock()
		return
	}
	ref := s.beginWaitLocked("Sem.Acquire")
	m.waiters = append(m.waiters, ref)
	s.parkLocked(ref.t, "sem-wait")
	// The releaser transferred the token to us directly.
	s.mu.Unlock()
}

func (m *simSem) Release() bool {
	s := m.s
	s.mu.Lock()
	defer s.mu.Unlock()
	// Hand the token to the first still-valid waiter, FIFO, so lock holders
	// rotate deterministically; scheduling diversity comes from the ready-set
	// PRNG pick, not from racing the token.
	for len(m.waiters) > 0 {
		w := m.waiters[0]
		m.waiters = m.waiters[1:]
		if s.wakeLocked(w, true) {
			return true
		}
	}
	if m.avail {
		return false
	}
	m.avail = true
	return true
}

// ---------------------------------------------------------------------------
// WaitGroup

type simWG struct {
	s       *Scheduler
	n       int
	waiters []waiterRef
}

func (w *simWG) Add(delta int) {
	s := w.s
	s.mu.Lock()
	w.n += delta
	if w.n < 0 {
		s.mu.Unlock()
		panic("sim: negative WaitGroup counter")
	}
	if w.n == 0 {
		for _, ref := range w.waiters {
			s.wakeLocked(ref, true)
		}
		w.waiters = nil
	}
	s.mu.Unlock()
}

func (w *simWG) Done() { w.Add(-1) }

func (w *simWG) Wait() {
	s := w.s
	s.mu.Lock()
	switch {
	case w.n == 0:
	case s.current == nil:
		s.runUntilLocked("waitgroup", func() bool { return w.n == 0 })
	default:
		ref := s.beginWaitLocked("WaitGroup.Wait")
		w.waiters = append(w.waiters, ref)
		s.parkLocked(ref.t, "waitgroup-wait")
	}
	s.mu.Unlock()
}
