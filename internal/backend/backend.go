// Package backend defines the scheduling substrate the PISCES run-time
// executes on.  Every point where the run-time creates concurrency (spawning
// an MMOS process) or blocks (an ACCEPT wait, a barrier, a lock, waiting for
// an initiation reply or a terminated task) goes through a Backend, so the
// whole virtual machine can be lifted off raw goroutines and onto a
// deterministic scheduler without touching the run-time's logic.
//
// Two implementations exist:
//
//   - the goroutine backend in this package (the default), which maps every
//     primitive onto the same channel constructions the run-time used before
//     the backend existed — one goroutine per MMOS process, buffered-channel
//     pulse events, closed-channel gates, real timers;
//   - the cooperative single-threaded scheduler in internal/sim, which runs
//     at most one task at a time, picks the next runnable task with a seeded
//     PRNG, and replaces wall-clock timeouts with a virtual clock, making
//     every run with the same seed byte-identical.
//
// The primitives are deliberately small and usage-shaped rather than fully
// general:
//
//   - Event is a single-waiter pulse with memory (the in-queue wake and kill
//     notification of one task);
//   - Gate is a one-shot broadcast (task done, barrier phases, force abort,
//     initiation replies);
//   - Sem is a binary semaphore (LOCK variables, the per-PE CPU under the
//     deterministic backend);
//   - WaitGroup counts outstanding work (user tasks, force members).
//
// A deterministic backend distinguishes two calling contexts: code running
// inside a spawned task, and the external "driver" (the test, the CLI, the
// interpreter's Run loop) that booted the VM.  Driver-side waits pump the
// scheduler until the condition holds; task-side waits park the task and hand
// control back to the scheduler.  The goroutine backend has no such
// distinction — everything simply blocks.
package backend

import (
	"sync"
	"time"
)

// Backend is a scheduling substrate: it spawns tasks and manufactures the
// blocking primitives they synchronise with.
type Backend interface {
	// Spawn starts fn as a new concurrently scheduled task.  The name is
	// used for diagnostics (deadlock reports, displays).
	Spawn(name string, fn func())
	// NewEvent returns a fresh pulse event (single waiter).
	NewEvent() Event
	// NewGate returns a fresh one-shot broadcast gate.
	NewGate() Gate
	// NewSem returns a fresh binary semaphore with its token available.
	NewSem() Sem
	// NewWaitGroup returns a fresh wait group.
	NewWaitGroup() WaitGroup
	// AfterFunc arranges for fn to run once after duration d (virtual time
	// under a deterministic backend).
	AfterFunc(d time.Duration, fn func()) Timer
	// Now returns the current time: wall time for the goroutine backend,
	// the virtual clock for a deterministic one.
	Now() time.Time
	// Yield offers a scheduling point: under a deterministic backend the
	// calling task re-enters the ready set and another task may be picked;
	// the goroutine backend lets the Go scheduler decide.
	Yield()
	// Deterministic reports whether this backend serialises execution and
	// virtualises time (the sim backend) — run-time code uses it to choose
	// scheduler-visible constructions over raw OS facilities.
	Deterministic() bool
}

// Event is a pulse notification with one-deep memory, used where exactly one
// task waits: a Pulse delivered while nobody waits is remembered and consumed
// by the next Wait.  Multiple pulses collapse into one, so waiters must
// re-check their condition in a loop, exactly as with a buffered(1) channel.
type Event interface {
	// Pulse wakes the waiter if there is one, else marks the event pending.
	Pulse()
	// Wait blocks until a pulse is (or already was) delivered.
	Wait()
	// WaitTimeout is Wait bounded by d; it reports false if the timeout
	// elapsed first.  A negative d waits forever.
	WaitTimeout(d time.Duration) bool
}

// Gate is a one-shot broadcast: once opened it stays open and every past and
// future Wait returns immediately.  Opening an open gate is a no-op.
type Gate interface {
	Open()
	IsOpen() bool
	// Wait blocks until the gate is open.  Under a deterministic backend a
	// driver-side Wait pumps the scheduler.
	Wait()
	// WaitOr blocks until this gate or other is open.  Both gates must come
	// from the same backend.
	WaitOr(other Gate)
}

// Sem is a binary semaphore whose token starts available.  Release reports
// false if the token was already free (a double release), which the LOCK
// run-time turns into the paper's "unlock of a lock which is not locked"
// error.
type Sem interface {
	TryAcquire() bool
	Acquire()
	Release() bool
}

// WaitGroup counts outstanding work, like sync.WaitGroup.
type WaitGroup interface {
	Add(delta int)
	Done()
	Wait()
}

// Timer is a stoppable pending AfterFunc.
type Timer interface {
	// Stop cancels the timer; it reports false if the timer already fired
	// or was stopped.
	Stop() bool
}

// ---------------------------------------------------------------------------
// Goroutine backend: the default substrate, semantically identical to the
// pre-backend run-time.

// goroutineBackend implements Backend over raw goroutines, channels, and real
// timers.  It is stateless; all instances are equivalent.
type goroutineBackend struct{}

var defaultBackend Backend = goroutineBackend{}

// Default returns the goroutine backend.
func Default() Backend { return defaultBackend }

func (goroutineBackend) Spawn(name string, fn func()) { go fn() }

func (goroutineBackend) NewEvent() Event { return &gEvent{ch: make(chan struct{}, 1)} }

func (goroutineBackend) NewGate() Gate { return &gGate{ch: make(chan struct{})} }

func (goroutineBackend) NewSem() Sem {
	s := &gSem{ch: make(chan struct{}, 1)}
	s.ch <- struct{}{}
	return s
}

func (goroutineBackend) NewWaitGroup() WaitGroup { return &gWaitGroup{} }

func (goroutineBackend) AfterFunc(d time.Duration, fn func()) Timer {
	return gTimer{t: time.AfterFunc(d, fn)}
}

func (goroutineBackend) Now() time.Time { return time.Now() }

func (goroutineBackend) Yield() {}

func (goroutineBackend) Deterministic() bool { return false }

// gEvent is the buffered(1)-channel pulse the in-queue wake always was.
type gEvent struct{ ch chan struct{} }

func (e *gEvent) Pulse() {
	select {
	case e.ch <- struct{}{}:
	default:
	}
}

func (e *gEvent) Wait() { <-e.ch }

func (e *gEvent) WaitTimeout(d time.Duration) bool {
	if d < 0 {
		<-e.ch
		return true
	}
	// Fast path: a pending pulse needs no timer.
	select {
	case <-e.ch:
		return true
	default:
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-e.ch:
		return true
	case <-t.C:
		return false
	}
}

// gGate is a closed-channel broadcast.
type gGate struct {
	once sync.Once
	ch   chan struct{}
}

func (g *gGate) Open() { g.once.Do(func() { close(g.ch) }) }

func (g *gGate) IsOpen() bool {
	select {
	case <-g.ch:
		return true
	default:
		return false
	}
}

func (g *gGate) Wait() { <-g.ch }

func (g *gGate) WaitOr(other Gate) {
	o := other.(*gGate)
	select {
	case <-g.ch:
	case <-o.ch:
	}
}

// gSem is a one-token channel, the shape of LOCK variables and PE CPUs.
type gSem struct{ ch chan struct{} }

func (s *gSem) TryAcquire() bool {
	select {
	case <-s.ch:
		return true
	default:
		return false
	}
}

func (s *gSem) Acquire() { <-s.ch }

func (s *gSem) Release() bool {
	select {
	case s.ch <- struct{}{}:
		return true
	default:
		return false
	}
}

// gWaitGroup wraps sync.WaitGroup.
type gWaitGroup struct{ wg sync.WaitGroup }

func (w *gWaitGroup) Add(delta int) { w.wg.Add(delta) }
func (w *gWaitGroup) Done()         { w.wg.Done() }
func (w *gWaitGroup) Wait()         { w.wg.Wait() }

// gTimer wraps time.Timer from AfterFunc.
type gTimer struct{ t *time.Timer }

func (t gTimer) Stop() bool { return t.t.Stop() }
