package backend

import (
	"testing"
	"time"
)

// TestEventPulseMemory: a pulse delivered with no waiter is consumed by the
// next wait (the lost-wakeup guarantee ACCEPT depends on), and pulses
// collapse rather than accumulate.
func TestEventPulseMemory(t *testing.T) {
	e := Default().NewEvent()
	e.Pulse()
	e.Pulse() // collapses into the pending one
	if !e.WaitTimeout(0) {
		t.Fatal("pending pulse not consumed by WaitTimeout")
	}
	if e.WaitTimeout(time.Millisecond) {
		t.Fatal("second wait consumed a pulse that should have collapsed")
	}
}

// TestEventWake: a waiter blocked in Wait is woken by Pulse.
func TestEventWake(t *testing.T) {
	e := Default().NewEvent()
	done := make(chan bool, 1)
	go func() { done <- e.WaitTimeout(5 * time.Second) }()
	time.Sleep(time.Millisecond)
	e.Pulse()
	if !<-done {
		t.Fatal("waiter reported timeout despite pulse")
	}
}

// TestGate: one-shot broadcast semantics, idempotent Open, WaitOr on either
// gate.
func TestGate(t *testing.T) {
	b := Default()
	g := b.NewGate()
	if g.IsOpen() {
		t.Fatal("fresh gate open")
	}
	g.Open()
	g.Open() // idempotent
	if !g.IsOpen() {
		t.Fatal("opened gate not open")
	}
	g.Wait() // must not block

	a, o := b.NewGate(), b.NewGate()
	done := make(chan struct{})
	go func() { a.WaitOr(o); close(done) }()
	o.Open()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("WaitOr did not return when the other gate opened")
	}
}

// TestSemDoubleRelease: the token protocol LOCK variables rely on — Release
// of a free semaphore reports false.
func TestSemDoubleRelease(t *testing.T) {
	s := Default().NewSem()
	if !s.TryAcquire() {
		t.Fatal("fresh sem token unavailable")
	}
	if s.TryAcquire() {
		t.Fatal("second TryAcquire got the held token")
	}
	if !s.Release() {
		t.Fatal("release of held token failed")
	}
	if s.Release() {
		t.Fatal("double release succeeded")
	}
}

// TestTimer: AfterFunc fires, Stop prevents firing.
func TestTimer(t *testing.T) {
	b := Default()
	fired := make(chan struct{})
	b.AfterFunc(time.Millisecond, func() { close(fired) })
	select {
	case <-fired:
	case <-time.After(5 * time.Second):
		t.Fatal("AfterFunc never fired")
	}
	stopped := b.AfterFunc(time.Hour, func() { t.Error("stopped timer fired") })
	if !stopped.Stop() {
		t.Fatal("Stop of pending timer reported false")
	}
}
