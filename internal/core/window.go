package core

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/rect"
	"repro/internal/trace"
)

// Window is the PISCES 2 "window" data type (Section 8): "a type of
// generalized pointer that points to a rectangular subregion of an array that
// is 'owned' by another task ... The window value contains the taskid of the
// owner, the address of the array, and a descriptor for the subarray."
// Windows are plain data values: they can be stored in variables, passed in
// messages (as WINDOW arguments), shrunk, and used to read or write the
// visible subarray.
type Window struct {
	// Owner is the task that owns the underlying array (a user task or the
	// file controller).
	Owner TaskID
	// ArrayID identifies the array within its owner.
	ArrayID int32
	// Region is the rectangular subregion visible through the window.
	Region rect.Rect
}

// Rows returns the number of rows visible through the window.
func (w Window) Rows() int { return w.Region.Rows() }

// Cols returns the number of columns visible through the window.
func (w Window) Cols() int { return w.Region.Cols() }

// Size returns the number of elements visible through the window.
func (w Window) Size() int { return w.Region.Size() }

// String renders the window for traces and displays.
func (w Window) String() string {
	return fmt.Sprintf("WINDOW{owner=%s array=%d region=%s}", w.Owner, w.ArrayID, w.Region)
}

// Shrink derives a window on a smaller subarray ("Another task may also
// 'shrink' the window to point to a smaller subarray").
func (w Window) Shrink(to rect.Rect) (Window, error) {
	r, err := w.Region.Shrink(to)
	if err != nil {
		return Window{}, err
	}
	return Window{Owner: w.Owner, ArrayID: w.ArrayID, Region: r}, nil
}

// RowBands partitions the window into n horizontal bands, one window per
// band — the top-level partitioning pattern of Section 8.
func (w Window) RowBands(n int) ([]Window, error) {
	bands, err := w.Region.RowBands(n)
	if err != nil {
		return nil, err
	}
	out := make([]Window, len(bands))
	for i, b := range bands {
		out[i] = Window{Owner: w.Owner, ArrayID: w.ArrayID, Region: b}
	}
	return out, nil
}

// Array is a two-dimensional REAL array owned by a task (or by the file
// controller).  Windows point into arrays; the owner keeps the storage and
// other tasks move data in and out through window reads and writes.
type Array struct {
	owner TaskID
	id    int32
	name  string
	rows  int
	cols  int

	mu   sync.RWMutex
	data []float64
}

// Name returns the name the owner gave the array.
func (a *Array) Name() string { return a.name }

// Rows returns the number of rows.
func (a *Array) Rows() int { return a.rows }

// Cols returns the number of columns.
func (a *Array) Cols() int { return a.cols }

// Owner returns the taskid of the owning task.
func (a *Array) Owner() TaskID { return a.owner }

// ID returns the array identifier within its owner.
func (a *Array) ID() int32 { return a.id }

// Set stores one element (1-based indices).
func (a *Array) Set(row, col int, v float64) error {
	if row < 1 || row > a.rows || col < 1 || col > a.cols {
		return fmt.Errorf("core: element (%d,%d) outside %dx%d array %q", row, col, a.rows, a.cols, a.name)
	}
	a.mu.Lock()
	a.data[(row-1)*a.cols+(col-1)] = v
	a.mu.Unlock()
	return nil
}

// Get reads one element (1-based indices).
func (a *Array) Get(row, col int) (float64, error) {
	if row < 1 || row > a.rows || col < 1 || col > a.cols {
		return 0, fmt.Errorf("core: element (%d,%d) outside %dx%d array %q", row, col, a.rows, a.cols, a.name)
	}
	a.mu.RLock()
	defer a.mu.RUnlock()
	return a.data[(row-1)*a.cols+(col-1)], nil
}

// Fill sets every element of the array to v.
func (a *Array) Fill(v float64) {
	a.mu.Lock()
	for i := range a.data {
		a.data[i] = v
	}
	a.mu.Unlock()
}

// readRegion copies the elements visible in region out of the array.
func (a *Array) readRegion(region rect.Rect) ([]float64, error) {
	offs, err := region.Offsets(a.rows, a.cols)
	if err != nil {
		return nil, err
	}
	out := make([]float64, len(offs))
	a.mu.RLock()
	for i, off := range offs {
		out[i] = a.data[off]
	}
	a.mu.RUnlock()
	return out, nil
}

// writeRegion copies data (row-major, region-shaped) into the array.
func (a *Array) writeRegion(region rect.Rect, data []float64) error {
	offs, err := region.Offsets(a.rows, a.cols)
	if err != nil {
		return err
	}
	if len(data) != len(offs) {
		return fmt.Errorf("core: window write of %d values into %d-element region %s", len(data), len(offs), region)
	}
	a.mu.Lock()
	for i, off := range offs {
		a.data[off] = data[i]
	}
	a.mu.Unlock()
	return nil
}

// arrayKey identifies an array globally.
type arrayKey struct {
	owner TaskID
	id    int32
}

// arrayStore is the run-time's registry of task-owned arrays.
type arrayStore struct {
	mu     sync.Mutex
	arrays map[arrayKey]*Array
}

func newArrayStore() *arrayStore {
	return &arrayStore{arrays: make(map[arrayKey]*Array)}
}

func (s *arrayStore) add(a *Array) {
	s.mu.Lock()
	s.arrays[arrayKey{a.owner, a.id}] = a
	s.mu.Unlock()
}

func (s *arrayStore) get(owner TaskID, id int32) (*Array, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	a, ok := s.arrays[arrayKey{owner, id}]
	return a, ok
}

// dropOwner removes all arrays owned by a terminated task, releasing their
// local-memory charge.
func (s *arrayStore) dropOwner(owner TaskID, vm *VM) {
	s.mu.Lock()
	var dropped []*Array
	for k, a := range s.arrays {
		if k.owner == owner {
			dropped = append(dropped, a)
			delete(s.arrays, k)
		}
	}
	s.mu.Unlock()
	for _, a := range dropped {
		if cl, ok := vm.cluster(owner.Cluster); ok {
			cl.primary.FreeLocal(8 * len(a.data))
		}
	}
}

// fileStore holds the file-resident arrays owned by the file controller
// ("Windows also provide a uniform access method for large arrays on
// secondary storage", Section 8).
type fileStore struct {
	mu     sync.Mutex
	owner  TaskID
	nextID int32
	byName map[string]*Array
	byID   map[int32]*Array
}

func newFileStore() *fileStore {
	return &fileStore{byName: make(map[string]*Array), byID: make(map[int32]*Array)}
}

func (s *fileStore) create(name string, rows, cols int) (*Array, error) {
	if rows < 1 || cols < 1 {
		return nil, fmt.Errorf("core: file array %q must have positive dimensions, got %dx%d", name, rows, cols)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, exists := s.byName[name]; exists {
		return nil, fmt.Errorf("core: file array %q already exists", name)
	}
	s.nextID++
	a := &Array{owner: s.owner, id: s.nextID, name: name, rows: rows, cols: cols, data: make([]float64, rows*cols)}
	s.byName[name] = a
	s.byID[a.id] = a
	return a, nil
}

func (s *fileStore) lookup(name string) (*Array, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	a, ok := s.byName[name]
	return a, ok
}

func (s *fileStore) byIDLookup(id int32) (*Array, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	a, ok := s.byID[id]
	return a, ok
}

func (s *fileStore) names() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.byName))
	for n := range s.byName {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// --- VM-level file-array API -------------------------------------------------

// CreateFileArray creates a file-resident array owned by the file controller
// and returns a window covering the whole array.  In the paper this is the
// "large arrays on secondary storage" case; the FLEX at NASA had no local
// disks, so as there, the file system is reached through the terminal
// cluster.
func (vm *VM) CreateFileArray(name string, rows, cols int) (Window, error) {
	a, err := vm.files.create(name, rows, cols)
	if err != nil {
		return Window{}, err
	}
	return Window{Owner: vm.fileCtrl, ArrayID: a.id, Region: rect.Whole(rows, cols)}, nil
}

// FileArray returns the underlying array of a file-resident array, for
// loading input data and checking results outside the simulation.
func (vm *VM) FileArray(name string) (*Array, bool) { return vm.files.lookup(name) }

// --- Task-level window API ---------------------------------------------------

// NewArray creates a rows x cols REAL array owned by this task.  The storage
// is charged to the owner's PE local memory.
func (t *Task) NewArray(name string, rows, cols int) (*Array, error) {
	t.checkKilled()
	if rows < 1 || cols < 1 {
		return nil, fmt.Errorf("core: array %q must have positive dimensions, got %dx%d", name, rows, cols)
	}
	bytes := 8 * rows * cols
	if err := t.rec.cluster.primary.AllocLocal(bytes); err != nil {
		return nil, fmt.Errorf("core: allocating array %q: %w", name, err)
	}
	t.arraySeq++
	a := &Array{owner: t.ID(), id: t.arraySeq, name: name, rows: rows, cols: cols, data: make([]float64, rows*cols)}
	t.vm.arrays.add(a)
	return a, nil
}

// WindowOn creates a window on a rectangular subregion of one of this task's
// own arrays ("Any task may create windows on one of its local arrays").
func (t *Task) WindowOn(a *Array, region rect.Rect) (Window, error) {
	t.checkKilled()
	if a.owner != t.ID() {
		return Window{}, fmt.Errorf("core: task %s cannot create a window on array owned by %s", t.ID(), a.owner)
	}
	if !rect.Whole(a.rows, a.cols).Contains(region) {
		return Window{}, fmt.Errorf("core: region %s outside %dx%d array %q", region, a.rows, a.cols, a.name)
	}
	t.Charge(costWindowOp)
	return Window{Owner: t.ID(), ArrayID: a.id, Region: region}, nil
}

// WholeWindow creates a window covering one of this task's arrays entirely.
func (t *Task) WholeWindow(a *Array) (Window, error) {
	return t.WindowOn(a, rect.Whole(a.rows, a.cols))
}

// RequestFileWindow returns a window on a file-resident array by name, owned
// by the file controller.
func (t *Task) RequestFileWindow(name string) (Window, error) {
	t.checkKilled()
	a, ok := t.vm.files.lookup(name)
	if !ok {
		return Window{}, fmt.Errorf("core: no file array named %q", name)
	}
	t.Charge(costWindowOp)
	return Window{Owner: t.vm.fileCtrl, ArrayID: a.id, Region: rect.Whole(a.rows, a.cols)}, nil
}

// resolveWindowArray finds the array a window points into.
func (vm *VM) resolveWindowArray(w Window) (*Array, error) {
	if w.Owner == vm.fileCtrl {
		if a, ok := vm.files.byIDLookup(w.ArrayID); ok {
			return a, nil
		}
		return nil, fmt.Errorf("core: window names unknown file array %d", w.ArrayID)
	}
	if a, ok := vm.arrays.get(w.Owner, w.ArrayID); ok {
		return a, nil
	}
	return nil, fmt.Errorf("core: window owner %s has no array %d (owner terminated?)", w.Owner, w.ArrayID)
}

// ReadWindow reads a copy of the subarray visible in the window ("If the
// subtask chooses to process the data, then it reads a copy of the data
// visible in the window into a local array").  The returned slice is in
// row-major order with w.Rows() x w.Cols() elements.
//
// In the FLEX implementation the read was performed by exchanging messages
// with the owning task; here the run-time performs the copy directly on the
// owner's storage while charging the same costs (a request header plus one
// packet per element transferred), so the storage and traffic accounting seen
// by experiments is the same.
func (t *Task) ReadWindow(w Window) ([]float64, error) {
	t.checkKilled()
	a, err := t.vm.resolveWindowArray(w)
	if err != nil {
		return nil, err
	}
	data, err := a.readRegion(w.Region)
	if err != nil {
		return nil, err
	}
	t.chargeWindowTransfer(w, len(data), "read")
	return data, nil
}

// WriteWindow writes data (row-major, matching the window's shape) into the
// subarray visible in the window.
func (t *Task) WriteWindow(w Window, data []float64) error {
	t.checkKilled()
	a, err := t.vm.resolveWindowArray(w)
	if err != nil {
		return err
	}
	if err := a.writeRegion(w.Region, data); err != nil {
		return err
	}
	t.chargeWindowTransfer(w, len(data), "write")
	return nil
}

// chargeWindowTransfer charges the simulated cost and traffic accounting of
// moving n elements through a window, and traces it as a message exchange
// with the owner.
func (t *Task) chargeWindowTransfer(w Window, n int, dir string) {
	t.Charge(int64(costSendHeader + costWindowElement*n))
	t.vm.windowBytes.Add(int64(8 * n))
	t.vm.windowOps.Add(1)
	if t.vm.tracing(trace.MsgSend) {
		t.vm.record(trace.MsgSend, t.ID(), w.Owner, t.rec.cluster.primary,
			fmt.Sprintf("msgtype=window-%s array=%d region=%s elements=%d", dir, w.ArrayID, w.Region, n))
	}
}

// WindowTraffic reports the cumulative number of window transfer operations
// and bytes moved through windows, used by the Section 8 experiment to
// compare window-based partitioning against shipping whole arrays.
func (vm *VM) WindowTraffic() (ops, bytes int64) {
	return vm.windowOps.Load(), vm.windowBytes.Load()
}
