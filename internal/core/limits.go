package core

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/memory"
	"repro/internal/msgcodec"
)

// Limits is a per-tenant resource policy for one VM.  The paper's run-time
// shares one FLEX/32 between every program; a serving daemon shares one
// process between every tenant, so each VM carries the quota its tenant may
// consume.  A zero field is unlimited; the zero Limits value turns the whole
// mechanism off (single-program runs pay nothing).
//
// A violated limit fail-stops the tenant, not the process: the first
// violation is recorded, every user task of the offending VM is killed, and
// the typed *LimitError is reported through LimitViolation — sibling VMs in
// the same daemon never notice.
type Limits struct {
	// HeapBytes caps the tenant's live message-heap bytes summed across all
	// of its cluster shards (enforced at shard charge time).
	HeapBytes int64
	// MaxTasks caps the cumulative number of user tasks initiated over the
	// run (enforced at task spawn).
	MaxTasks int64
	// WallClock caps the run's elapsed time from VM boot (enforced by a
	// run-loop timer on the VM's backend clock).
	WallClock time.Duration
	// OutputBytes caps bytes written to the user terminal; output past the
	// cap is dropped (enforced in the terminal funnel).
	OutputBytes int64
}

// active reports whether any limit is set.
func (l Limits) active() bool { return l != Limits{} }

// Limit resource names, the Resource field of LimitError.
const (
	LimitHeap      = "heap"
	LimitTasks     = "tasks"
	LimitWallClock = "wallclock"
	LimitOutput    = "output"
)

// ErrLimitExceeded is the sentinel every limit violation matches with
// errors.Is, whatever the resource.
var ErrLimitExceeded = errors.New("core: tenant resource limit exceeded")

// LimitError reports which per-tenant limit a VM violated.  It matches
// ErrLimitExceeded; heap violations additionally match ErrHeapExhausted at
// the failing send site (the send failed for want of heap — that the cause
// was policy rather than arena is what Resource records).
type LimitError struct {
	Resource string // which limit: LimitHeap, LimitTasks, ...
	Limit    int64  // the configured cap (nanoseconds for wallclock)
	Used     int64  // usage observed at the violation, when known
}

func (e *LimitError) Error() string {
	if e.Resource == LimitWallClock {
		return fmt.Sprintf("tenant limit exceeded: %s cap %v elapsed", e.Resource, time.Duration(e.Limit))
	}
	if e.Used > 0 {
		return fmt.Sprintf("tenant limit exceeded: %s cap %d, used %d", e.Resource, e.Limit, e.Used)
	}
	return fmt.Sprintf("tenant limit exceeded: %s cap %d", e.Resource, e.Limit)
}

func (e *LimitError) Is(target error) bool { return target == ErrLimitExceeded }

// recordLimit notes a limit violation and fail-stops the tenant.  The first
// violation wins (later ones are usually its cascade) and triggers the kill
// sweep exactly once.  Kill only marks tasks and pulses their wake events,
// so recordLimit is safe from any context — a task's own send path, the
// terminal funnel, a backend timer.
func (vm *VM) recordLimit(e *LimitError) {
	vm.limitMu.Lock()
	first := vm.limitErr == nil
	if first {
		vm.limitErr = e
	}
	vm.limitMu.Unlock()
	if !first {
		return
	}
	vm.om.rec.Record(0, msgcodec.EvLimit, 0, limitResourceCode(e.Resource), e.Limit)
	vm.systemPrintf("*** PISCES: %v: terminating run\n", e)
	for _, info := range vm.RunningTasks() {
		if !info.Controller {
			_ = vm.Kill(info.ID)
		}
	}
	if vm.opts.FailureSink != nil {
		vm.opts.FailureSink("limit: " + e.Resource)
	}
}

// limitResourceCode maps a LimitError resource name to the stable small
// integer the flight recorder's fixed-size events carry.
func limitResourceCode(resource string) int64 {
	switch resource {
	case LimitHeap:
		return 1
	case LimitTasks:
		return 2
	case LimitWallClock:
		return 3
	case LimitOutput:
		return 4
	}
	return 0
}

// LimitViolation returns the first per-tenant limit this VM violated, as a
// *LimitError (matching ErrLimitExceeded), or nil.  The serving layer
// consults it after the run to distinguish "program finished" from "tenant
// exceeded its quota".
func (vm *VM) LimitViolation() error {
	vm.limitMu.Lock()
	defer vm.limitMu.Unlock()
	if vm.limitErr == nil {
		return nil
	}
	return vm.limitErr
}

// heapErr wraps a shard-charge failure for the sender.  All callers used to
// wrap with ErrHeapExhausted only; a budget-caused failure is still heap
// exhaustion from the sender's point of view, but it additionally records
// the quota violation and carries the typed LimitError so errors.Is finds
// both sentinels.
func (vm *VM) heapErr(err error) error {
	if errors.Is(err, memory.ErrBudgetExceeded) {
		le := &LimitError{Resource: LimitHeap, Limit: vm.opts.Limits.HeapBytes, Used: vm.heapBudget.Used()}
		vm.recordLimit(le)
		return fmt.Errorf("%w: %w", ErrHeapExhausted, le)
	}
	return fmt.Errorf("%w: %v", ErrHeapExhausted, err)
}

// taskLimitExceeded reports whether admitting one more user task would
// violate MaxTasks.  The counter is the VM's cumulative initiate count, so
// the cap bounds total work, not just concurrency — a fork bomb trips it
// even if tasks exit fast.  The caller records the violation (after
// answering the initiator, so the refusal reaches it before the kill sweep
// can unwind it).
func (vm *VM) taskLimitExceeded() *LimitError {
	max := vm.opts.Limits.MaxTasks
	if max <= 0 {
		return nil
	}
	if used := vm.initiated.Load(); used >= max {
		return &LimitError{Resource: LimitTasks, Limit: max, Used: used}
	}
	return nil
}

// chargeOutput admits n bytes of user-terminal output against OutputBytes,
// reporting false (drop the write) once the cap is crossed.
func (vm *VM) chargeOutput(n int) bool {
	max := vm.opts.Limits.OutputBytes
	if max <= 0 {
		return true
	}
	used := vm.outputUsed.Add(int64(n))
	if used <= max {
		return true
	}
	vm.recordLimit(&LimitError{Resource: LimitOutput, Limit: max, Used: used})
	return false
}

// wallClockExpired is the WallClock timer body.
func (vm *VM) wallClockExpired() {
	vm.recordLimit(&LimitError{Resource: LimitWallClock, Limit: int64(vm.opts.Limits.WallClock)})
}
