package core

import (
	"encoding/binary"
	"fmt"
	"sort"

	"repro/internal/backend"
	"repro/internal/mmos"
	"repro/internal/msgcodec"
	"repro/internal/trace"
)

// Fault tolerance (HA mode).
//
// Pisces tasks are deterministic message-driven state machines: a task's
// behaviour is fully determined by its INITIATE arguments plus the ordered
// sequence of messages each of its ACCEPT statements consumed.  HA mode
// exploits that: instead of checkpointing task stacks (impossible for Go
// goroutines), the run-time checkpoints what it would take to REPLAY a task —
// its init args, a per-ACCEPT consumption log, and the messages still waiting
// in its in-queue.  Recovery respawns the task from its init args and feeds
// each ACCEPT the same messages its log recorded; the re-execution regenerates
// the task's sends, which the rest of the machine suppresses as duplicates.
//
// Duplicate suppression is receiver-side: in HA mode every task stamps its
// outbound messages with a per-task send sequence number, and every in-queue
// keeps a per-sender floor of the highest sequence number it has admitted.
// Floors only advance, so any re-delivery — a replayed sender regenerating
// its sends, a transport re-sending retained frames after a recovery — is
// dropped at admission.  A replayed INITIATE is deduplicated one level up, in
// the cluster's initMap keyed by (parent, send seq): the controller re-replies
// with the already-assigned child id instead of starting a second task.
//
// What is NOT recoverable: controllers (the terminal cluster's user/file
// controllers are the run's anchor), shared arrays and windows owned by a
// failed task, and tasks whose behaviour depends on wall-clock races the
// virtual clock did not capture.  See README "Fault tolerance".

// haMsg is one logged (or queued) message in replay form: everything needed
// to rebuild the Message at injection time.  Args slices are shared with the
// live messages — argument slices are immutable once sent.
type haMsg struct {
	Type    string
	Sender  TaskID
	SendSeq uint64
	Args    []Value
}

// haAccRecord is the consumption record of one ACCEPT statement.  A record is
// appended (open) when the ACCEPT begins, filled incrementally as takeMatching
// consumes messages, and closed when the ACCEPT returns.  An open record in a
// checkpoint means the task was blocked mid-ACCEPT at the cut.
type haAccRecord struct {
	msgs     []haMsg
	open     bool
	timedOut bool
}

// taskHA is the per-in-queue fault-tolerance state; all fields are guarded by
// the owning inQueue's mutex.
type taskHA struct {
	// logOn enables the consumption log (user tasks only; controllers keep
	// floors but are never replayed).
	logOn bool
	// floors maps sender task -> highest admitted send sequence number.
	floors map[TaskID]uint64
	// log is the task's ACCEPT consumption history since (re)start.
	log []*haAccRecord
	// openStack tracks the in-progress ACCEPT records (a stack, because
	// handlers may issue re-entrant ACCEPTs).
	openStack []*haAccRecord
	// replay holds the checkpointed records still to be fed to the task's
	// ACCEPTs; non-nil only on a restored task.
	replay []*haAccRecord
	// tail is the checkpointed in-queue content, injected when the replay log
	// is exhausted.
	tail []haMsg
	// replaying marks the window between restore and log exhaustion: live
	// deliveries park in pen so they cannot interleave with history.
	replaying bool
	pen       []*Message
}

func newTaskHA(logOn bool) *taskHA {
	return &taskHA{logOn: logOn, floors: make(map[TaskID]uint64)}
}

// initKey identifies one initiation request for duplicate suppression: the
// requesting task plus the send sequence number its INITIATE carried.  seq 0
// means unsequenced (non-HA mode, or an execution-environment request) and is
// never deduplicated.
type initKey struct {
	parent TaskID
	seq    uint64
}

// nextSendSeq returns the task's next outbound send sequence number, or 0
// (unsequenced) outside HA mode.  A restored task restarts at 1 and — being a
// deterministic replay — regenerates exactly the numbers its first life used.
func (t *Task) nextSendSeq() uint64 {
	if !t.vm.ha {
		return 0
	}
	return t.rec.haSeq.Add(1)
}

// recordDeadSeq remembers the send sequence number a finished (or
// failover-killed) task had reached at death, keyed by its taskid, for a
// possible re-created incarnation to inherit.  Guarded by its own mutex so it
// can be consulted while a cluster lock is held.
func (vm *VM) recordDeadSeq(id TaskID, seq uint64) {
	vm.haSeqMu.Lock()
	if vm.haDeadSeqs == nil {
		vm.haDeadSeqs = make(map[TaskID]uint64)
	}
	vm.haDeadSeqs[id] = seq
	vm.haSeqMu.Unlock()
}

// hasDeadSeq reports whether the task's death is recent enough that its
// send-progress record is still held (i.e. within the last two checkpoint
// generations).  A duplicate INITIATE for a child with no record is answered
// from the initMap instead of re-creating it: the child's effects predate the
// previous checkpoint and are already part of every restorable state.
func (vm *VM) hasDeadSeq(id TaskID) bool {
	vm.haSeqMu.Lock()
	defer vm.haSeqMu.Unlock()
	if _, ok := vm.haDeadSeqs[id]; ok {
		return true
	}
	_, ok := vm.haDeadSeqsOld[id]
	return ok
}

// takeDeadSeq consumes the recorded death-time send sequence number for a
// taskid being re-created, or 0 when this VM never saw the death (buddy
// adoption — the dead node's counter died with it).
func (vm *VM) takeDeadSeq(id TaskID) uint64 {
	vm.haSeqMu.Lock()
	defer vm.haSeqMu.Unlock()
	seq, ok := vm.haDeadSeqs[id]
	if !ok {
		seq = vm.haDeadSeqsOld[id]
	}
	delete(vm.haDeadSeqs, id)
	delete(vm.haDeadSeqsOld, id)
	return seq
}

// takeDoneGate consumes the done gate FailClusters parked for a failed task,
// or nil when this VM never saw the failure (or the gate was already handed
// to a restored incarnation).  An incarnation that inherits a gate must NOT
// re-register with the user-task waitgroup: the failed life's registration is
// still outstanding and the new life's exit balances it.
func (vm *VM) takeDoneGate(id TaskID) backend.Gate {
	vm.mu.Lock()
	defer vm.mu.Unlock()
	g := vm.haDoneGates[id]
	if g != nil {
		delete(vm.haDoneGates, id)
	}
	return g
}

// haSendSuppressed reports whether a send that found no receiver is really a
// re-execution of a delivery that already happened: either the task is still
// replaying its consumption log, or this send carries a sequence number its
// previous incarnation had already issued before dying — the receiver got
// the original then, and has exited since.
func (t *Task) haSendSuppressed(sendSeq uint64) bool {
	if t.haReplaying() {
		return true
	}
	return sendSeq != 0 && sendSeq <= t.rec.deathSeq
}

// haReplaying reports whether the task is still replaying its consumption
// log.  While true, sends to tasks that do not exist (any more, or yet) are
// silently dropped: the first execution's sends already reached them.
func (t *Task) haReplaying() bool {
	h := t.rec.queue.ha
	if h == nil {
		return false
	}
	t.rec.queue.mu.Lock()
	r := h.replaying
	t.rec.queue.mu.Unlock()
	return r
}

// haBeginAccept opens this ACCEPT's consumption record and, on a replaying
// task, re-injects the corresponding checkpointed record's messages into the
// ring.  When the replay log runs dry (or the record was cut open mid-ACCEPT
// by the checkpoint), the queue transitions back to live delivery: the
// checkpointed queue tail and then the pen drain into the ring, in order.
func (t *Task) haBeginAccept() {
	q := t.rec.queue
	h := q.ha
	q.mu.Lock()
	live := &haAccRecord{open: true}
	h.log = append(h.log, live)
	h.openStack = append(h.openStack, live)
	var inject []haMsg
	finish := false
	if h.replaying {
		if len(h.replay) > 0 {
			rep := h.replay[0]
			h.replay = h.replay[1:]
			inject = rep.msgs
			finish = rep.open
		} else {
			finish = true
		}
	}
	q.mu.Unlock()
	if inject != nil {
		t.haInject(inject)
	}
	if finish {
		t.haFinishReplay()
	}
}

// haEndAccept closes the ACCEPT's consumption record.
func (q *inQueue) haEndAccept(timedOut bool) {
	h := q.ha
	q.mu.Lock()
	if n := len(h.openStack); n > 0 {
		rec := h.openStack[n-1]
		h.openStack = h.openStack[:n-1]
		rec.open = false
		rec.timedOut = timedOut
	}
	q.mu.Unlock()
}

// haInject rebuilds logged messages and appends them to the task's own ring,
// bypassing floors and the pen.  The heap charge is best-effort: replay must
// make progress even if the shard is momentarily full, so an uncharged
// message (heapBytes 0) is delivered rather than dropped.
func (t *Task) haInject(msgs []haMsg) {
	q := t.rec.queue
	for i := range msgs {
		hm := &msgs[i]
		m := newMessage(hm.Type, hm.Sender, hm.Args, t.vm.msgSeq.Add(1))
		m.sendSeq = hm.SendSeq
		_ = t.vm.chargeMessageOn(t.rec.cluster.heap, m)
		q.mu.Lock()
		q.injectLocked(m)
		q.mu.Unlock()
	}
}

// haFinishReplay ends the replay window: checkpointed queue tail first, then
// everything that arrived live while the task was replaying, in arrival
// order.
func (t *Task) haFinishReplay() {
	q := t.rec.queue
	h := q.ha
	q.mu.Lock()
	tail := h.tail
	h.tail = nil
	q.mu.Unlock()
	t.haInject(tail)
	q.mu.Lock()
	pen := h.pen
	h.pen = nil
	h.replaying = false
	for _, m := range pen {
		q.injectLocked(m)
	}
	q.mu.Unlock()
	if len(pen) > 0 {
		q.wake.Pulse()
	}
}

// --- checkpoint capture -----------------------------------------------------

// haCkptTask is the serializable replay state of one user task.
type haCkptTask struct {
	id       TaskID
	tasktype string
	parent   TaskID
	args     []Value
	floors   map[TaskID]uint64
	log      []*haAccRecord
	queue    []haMsg
}

type haCkptPending struct {
	key      initKey
	tasktype string
	parent   TaskID
	args     []Value
}

type haCkptInitEntry struct {
	key   initKey
	child TaskID
}

type haCkptCluster struct {
	number  int
	initMap []haCkptInitEntry
	pending []haCkptPending
	tasks   []haCkptTask
}

// Checkpoint serializes the recoverable state of the given clusters: the
// controller-side initiation state (initMap, pending requests) and, per user
// task, its replay state (init args, ACCEPT consumption log, queued
// messages).  The cut need not be globally consistent: floors are monotone
// and the consumption log is appended atomically under each queue's lock, so
// replay from any cut converges — frames the cut missed are either re-sent by
// replayed senders or re-delivered by the transport's retention, and
// duplicates of frames the cut saw are dropped at admission.
func (vm *VM) Checkpoint(clusters ...int) ([]byte, error) {
	if !vm.ha {
		return nil, fmt.Errorf("core: Checkpoint requires a VM booted with Options.HA")
	}
	nums := append([]int(nil), clusters...)
	sort.Ints(nums)
	sections := [][]byte{binary.BigEndian.AppendUint32(nil, haCkptFormat)}
	for _, n := range nums {
		cl, ok := vm.cluster(n)
		if !ok {
			return nil, fmt.Errorf("%w: %d", ErrNoSuchCluster, n)
		}
		cs := cl.captureCheckpoint()
		sec, err := encodeClusterCkpt(cs)
		if err != nil {
			return nil, err
		}
		sections = append(sections, sec)
	}
	// Rotate the dead-send-sequence generations: entries only matter while a
	// recovery replay could re-create their task, i.e. while the task's
	// INITIATE frame is still retained — at most back to the previous
	// checkpoint.  Two generations keep the map bounded by task turnover per
	// checkpoint interval instead of growing for the VM's lifetime.
	vm.haSeqMu.Lock()
	vm.haDeadSeqsOld = vm.haDeadSeqs
	vm.haDeadSeqs = nil
	vm.haSeqMu.Unlock()
	return msgcodec.EncodeCheckpoint(sections)
}

// captureCheckpoint snapshots one cluster's recoverable state.
func (c *clusterRT) captureCheckpoint() haCkptCluster {
	cs := haCkptCluster{number: c.cfg.Number}
	c.mu.Lock()
	for k, child := range c.initMap {
		cs.initMap = append(cs.initMap, haCkptInitEntry{key: k, child: child})
	}
	for _, p := range c.pending {
		cs.pending = append(cs.pending, haCkptPending{key: p.key, tasktype: p.tasktype, parent: p.parent, args: p.args})
	}
	var recs []*taskRec
	for i := c.userLo; i < len(c.slots); i++ {
		if r := c.slots[i].rec; r != nil && r != reservedMarker && !r.isController {
			recs = append(recs, r)
		}
	}
	c.mu.Unlock()
	// Sorted serialization keeps the blob — and therefore the restore spawn
	// order — deterministic for a given machine state.
	sort.Slice(cs.initMap, func(i, j int) bool {
		a, b := cs.initMap[i].key, cs.initMap[j].key
		if a.parent != b.parent {
			return a.parent.less(b.parent)
		}
		return a.seq < b.seq
	})
	for _, rec := range recs {
		cs.tasks = append(cs.tasks, rec.captureCheckpoint())
	}
	return cs
}

// captureCheckpoint snapshots one task's replay state under its queue lock.
func (r *taskRec) captureCheckpoint() haCkptTask {
	ts := haCkptTask{id: r.id, tasktype: r.tasktype, parent: r.parent, args: r.initArgs}
	q := r.queue
	q.mu.Lock()
	h := q.ha
	if h != nil {
		ts.floors = make(map[TaskID]uint64, len(h.floors))
		for k, v := range h.floors {
			ts.floors[k] = v
		}
		// A checkpoint taken while the task is itself replaying concatenates
		// the rebuilt log so far with the records still to be replayed — a
		// restore from this cut replays both, in order.
		for _, rec := range append(append([]*haAccRecord(nil), h.log...), h.replay...) {
			ts.log = append(ts.log, &haAccRecord{
				msgs:     append([]haMsg(nil), rec.msgs...),
				open:     rec.open,
				timedOut: rec.timedOut,
			})
		}
		// Queue snapshot, in the order a restored task must see them: the ring
		// (on a mid-replay cut: injected-but-unconsumed history), then the old
		// checkpoint tail not yet injected, then live messages parked in the
		// pen — the same order finishReplay would have delivered them.
		for i := 0; i < q.n; i++ {
			m := q.at(i)
			ts.queue = append(ts.queue, haMsg{Type: m.Type, Sender: m.Sender, SendSeq: m.sendSeq, Args: m.Args})
		}
		ts.queue = append(ts.queue, h.tail...)
		for _, m := range h.pen {
			ts.queue = append(ts.queue, haMsg{Type: m.Type, Sender: m.Sender, SendSeq: m.sendSeq, Args: m.Args})
		}
	}
	q.mu.Unlock()
	return ts
}

// --- failure and restore ----------------------------------------------------

// FailClusters simulates the death of the nodes hosting the given clusters:
// every user task there is killed through a failover path that keeps the
// machine-wide bookkeeping (done gates, the user-task waitgroup, completion
// counters) suspended so a subsequent Restore can hand the same identities
// back without WaitTask/WaitIdle observing the gap.  It returns the number of
// tasks failed.  Controllers survive — on the node runtime every node boots
// the full configuration, so a cluster's controller is a ghost that any
// surviving node can animate.
func (vm *VM) FailClusters(clusters ...int) int {
	if !vm.ha {
		return 0
	}
	nums := append([]int(nil), clusters...)
	sort.Ints(nums)
	target := make(map[int]bool, len(nums))
	for _, n := range nums {
		if cl, ok := vm.cluster(n); ok {
			target[n] = true
			cl.mu.Lock()
			cl.frozen = true
			cl.mu.Unlock()
		}
	}
	vm.mu.Lock()
	var victims []*taskRec
	for id, rec := range vm.tasks {
		if rec.isController || !target[id.Cluster] {
			continue
		}
		victims = append(victims, rec)
	}
	vm.mu.Unlock()
	sort.Slice(victims, func(i, j int) bool { return victims[i].id.less(victims[j].id) })

	vm.mu.Lock()
	if vm.haDoneGates == nil {
		vm.haDoneGates = make(map[TaskID]backend.Gate)
	}
	dead := make(map[TaskID]bool, len(victims))
	for _, rec := range victims {
		vm.haDoneGates[rec.id] = rec.done
		dead[rec.id] = true
		rec.failover.Store(true)
	}
	vm.mu.Unlock()
	for _, rec := range victims {
		rec.kill()
	}
	// A victim blocked in InitiateWait holds a reply gate only a controller's
	// startTask would open; fail those replies (kill flag is already set, so
	// the task wakes straight into its unwind) or the kill would deadlock.
	for _, n := range vm.clusterNumbers() {
		cl, ok := vm.cluster(n)
		if !ok {
			continue
		}
		cl.mu.Lock()
		var fail []*initReply
		for i := range cl.pending {
			if cl.pending[i].reply != nil && dead[cl.pending[i].parent] {
				fail = append(fail, cl.pending[i].reply)
				cl.pending[i].reply = nil
			}
		}
		cl.mu.Unlock()
		for _, r := range fail {
			r.deliver(NilTask)
		}
	}
	for _, rec := range victims {
		if rec.exited != nil {
			rec.exited.Wait()
		}
	}
	return len(victims)
}

// haParentFailed reports whether id was failed by FailClusters and has not
// been restored yet (the fail window).
func (vm *VM) haParentFailed(id TaskID) bool {
	if !vm.ha {
		return false
	}
	vm.mu.Lock()
	_, ok := vm.haDoneGates[id]
	vm.mu.Unlock()
	return ok
}

// AdoptClusters marks the given clusters as hosted by this VM, so a buddy
// node can take over a dead peer's partition before restoring its state.
// Every node boots the full configuration, so adoption is purely a routing
// change.  No-op on a VM that already hosts everything.
func (vm *VM) AdoptClusters(clusters ...int) {
	vm.mu.Lock()
	defer vm.mu.Unlock()
	old := vm.hosted.Load()
	if old == nil {
		return
	}
	// Copy-on-write: routing reads the hosted set lock-free on every send, so
	// the set is never mutated in place.
	next := make(map[int]bool, len(*old)+len(clusters))
	for n := range *old {
		next[n] = true
	}
	for _, n := range clusters {
		if _, ok := vm.clusters[n]; ok {
			next[n] = true
		}
	}
	vm.hosted.Store(&next)
}

// Restore rebuilds the checkpointed clusters' state: the controllers' initMap
// and pending requests are reinstated, and every checkpointed task is
// respawned under its original taskid in replay mode.  Tasks failed here by
// FailClusters get their original done gates back; tasks adopted from a dead
// node get fresh ones.  After Restore the caller should re-deliver the
// transport's retained post-checkpoint frames — replay plus floors make any
// overlap harmless.
func (vm *VM) Restore(blob []byte) error {
	if !vm.ha {
		return fmt.Errorf("core: Restore requires a VM booted with Options.HA")
	}
	ck, err := decodeCheckpointBlob(blob)
	if err != nil {
		return err
	}
	var restored []*clusterRT
	for _, cs := range ck {
		cl, ok := vm.cluster(cs.number)
		if !ok {
			return fmt.Errorf("%w: checkpointed cluster %d", ErrNoSuchCluster, cs.number)
		}
		cl.mu.Lock()
		cl.frozen = true
		// Merge, don't replace: the surviving controller's live initMap also
		// records creations the checkpoint cut missed (post-checkpoint
		// children).  A replayed duplicate of such an INITIATE must find the
		// entry, so the child comes back under its original identity instead
		// of as a second task (see clusterRT.request).
		if cl.initMap == nil {
			cl.initMap = make(map[initKey]TaskID, len(cs.initMap))
		}
		for _, e := range cs.initMap {
			cl.initMap[e.key] = e.child
		}
		for _, p := range cs.pending {
			dup := false
			if p.key.seq != 0 {
				for i := range cl.pending {
					if cl.pending[i].key == p.key {
						dup = true
						break
					}
				}
			}
			if dup {
				continue
			}
			np := pendingInit{tasktype: p.tasktype, parent: p.parent, args: p.args, key: p.key}
			if p.key.seq != 0 {
				if id, ok := cl.initMap[p.key]; ok {
					// The surviving controller served this request after the
					// checkpoint cut.  The child is dead now (every user task
					// on a restored cluster is); if its death is recent its
					// effects may be lost, so re-create it under its original
					// identity — otherwise they predate every restorable cut
					// and the request is already fully honoured.
					if !vm.hasDeadSeq(id) {
						continue
					}
					np.forced = id
				}
			}
			cl.pending = append(cl.pending, np)
		}
		cl.mu.Unlock()
		for i := range cs.tasks {
			if err := cl.restoreTask(&cs.tasks[i], vm.takeDoneGate(cs.tasks[i].id)); err != nil {
				return err
			}
		}
		restored = append(restored, cl)
	}
	// Unconsumed done gates stay parked: they belong to victims the checkpoint
	// missed (created after the cut), whose re-creation arrives later — a
	// replayed INITIATE frame or a restored parent's re-issued request — and
	// must inherit the gate then, or the user-task waitgroup never drains.
	for _, cl := range restored {
		cl.mu.Lock()
		cl.frozen = false
		cl.mu.Unlock()
		cl.kickPending()
	}
	return nil
}

// restoreTask respawns one checkpointed task in replay mode under its
// original taskid.  done, when non-nil, is the gate handed over from the
// failed incarnation (so waiters never observed the failure); a nil gate
// means this VM never knew the task (buddy adoption) and gets fresh
// bookkeeping.
func (c *clusterRT) restoreTask(ts *haCkptTask, done backend.Gate) error {
	vm := c.vm
	tt, ok := vm.taskType(ts.tasktype)
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownTaskType, ts.tasktype)
	}
	c.mu.Lock()
	slot := c.findFreeUserSlotLocked()
	if slot < 0 {
		c.mu.Unlock()
		return fmt.Errorf("core: cluster %d has no free slot to restore %s", c.cfg.Number, ts.id)
	}
	c.slots[slot].rec = reservedMarker
	c.mu.Unlock()

	rec := &taskRec{
		id:         ts.id,
		tasktype:   tt.Name,
		parent:     ts.parent,
		cluster:    c,
		slot:       slot,
		localBytes: tt.LocalBytes,
		initArgs:   ts.args,
		deathSeq:   vm.takeDeadSeq(ts.id),
	}
	rec.wake, rec.queue, rec.done = newTaskRecParts(vm.backend)
	inherited := done != nil
	if inherited {
		rec.done = done
	}
	rec.exited = vm.backend.NewGate()
	h := newTaskHA(true)
	h.floors = ts.floors
	if h.floors == nil {
		h.floors = make(map[TaskID]uint64)
	}
	h.replay = ts.log
	h.tail = ts.queue
	h.replaying = true
	rec.queue.ha = h

	c.mu.Lock()
	c.slots[slot].rec = rec
	c.mu.Unlock()
	vm.registerTask(rec)
	if !inherited {
		vm.userTasks.Add(1)
	}
	body := func(p *mmos.Proc) {
		rec.setProc(p)
		p.Charge(costTaskInit)
		if vm.tracing(trace.TaskInit) {
			vm.record(trace.TaskInit, rec.id, rec.parent, c.primary, "type="+tt.Name+" restored")
		}
		ctx := newTask(vm, rec, ts.args)
		defer vm.finishTask(rec, ctx)
		tt.Body(ctx)
	}
	if _, err := vm.kernel.Spawn(c.primary, tt.Name+"/"+rec.id.String(), tt.LocalBytes, body); err != nil {
		vm.unregisterTask(rec.id)
		if !inherited {
			vm.userTasks.Done()
		}
		c.clearSlot(slot)
		return fmt.Errorf("core: restoring task %s: %w", ts.id, err)
	}
	return nil
}

// kickPending starts as many queued initiation requests as there are free
// slots, mirroring finishTask's deferred-start path after an unfreeze.
func (c *clusterRT) kickPending() {
	for {
		c.mu.Lock()
		req, slot := c.takePendingLocked()
		c.mu.Unlock()
		if req == nil {
			return
		}
		if err := c.startTask(slot, *req); err != nil {
			c.vm.userPrintf("pisces: deferred initiate of %s failed: %v\n", req.tasktype, err)
		}
	}
}

// PlanRestoredInit records that the initiation request identified by
// (parent, seq) was answered with id before a failure: when the transport
// re-delivers the retained request frame, the controller re-creates the task
// under that id — in its original slot — instead of assigning a fresh one,
// so the id the parent already holds stays valid.  A task created AFTER the
// last checkpoint is otherwise unknown to Restore; the transport observed
// its id in the initiate reply and plans its re-creation here before
// replaying retained frames.  Requests already answered in the restored
// initMap are left alone.
func (vm *VM) PlanRestoredInit(cluster int, parent TaskID, seq uint64, id TaskID) error {
	if !vm.ha {
		return fmt.Errorf("core: PlanRestoredInit requires a VM booted with Options.HA")
	}
	if seq == 0 || id == NilTask {
		return nil
	}
	cl, ok := vm.cluster(cluster)
	if !ok {
		return fmt.Errorf("%w: %d", ErrNoSuchCluster, cluster)
	}
	key := initKey{parent: parent, seq: seq}
	cl.mu.Lock()
	if _, started := cl.initMap[key]; !started {
		if cl.directed == nil {
			cl.directed = make(map[initKey]TaskID)
		}
		cl.directed[key] = id
	}
	cl.mu.Unlock()
	return nil
}

// --- serialization ----------------------------------------------------------

// haCkptFormat versions the core section bodies inside the msgcodec
// checkpoint container.
const haCkptFormat = 1

func haAppendU32(b []byte, v uint32) []byte { return binary.BigEndian.AppendUint32(b, v) }
func haAppendU64(b []byte, v uint64) []byte { return binary.BigEndian.AppendUint64(b, v) }

func haAppendString(b []byte, s string) []byte {
	b = haAppendU32(b, uint32(len(s)))
	return append(b, s...)
}

func haAppendTaskID(b []byte, t TaskID) []byte {
	b = haAppendU32(b, uint32(int32(t.Cluster)))
	b = haAppendU32(b, uint32(int32(t.Slot)))
	return haAppendU32(b, uint32(int32(t.Unique)))
}

func haAppendArgs(b []byte, args []Value) ([]byte, error) {
	blob, err := msgcodec.Encode(args)
	if err != nil {
		return nil, err
	}
	b = haAppendU32(b, uint32(len(blob)))
	return append(b, blob...), nil
}

var errHACorrupt = fmt.Errorf("core: corrupt checkpoint section")

func haTakeU32(b []byte) (uint32, []byte, error) {
	if len(b) < 4 {
		return 0, nil, errHACorrupt
	}
	return binary.BigEndian.Uint32(b), b[4:], nil
}

func haTakeU64(b []byte) (uint64, []byte, error) {
	if len(b) < 8 {
		return 0, nil, errHACorrupt
	}
	return binary.BigEndian.Uint64(b), b[8:], nil
}

func haTakeString(b []byte) (string, []byte, error) {
	n, b, err := haTakeU32(b)
	if err != nil || int(n) > len(b) {
		return "", nil, errHACorrupt
	}
	return string(b[:n]), b[n:], nil
}

func haTakeTaskID(b []byte) (TaskID, []byte, error) {
	var t TaskID
	var v uint32
	var err error
	if v, b, err = haTakeU32(b); err != nil {
		return t, nil, err
	}
	t.Cluster = int(int32(v))
	if v, b, err = haTakeU32(b); err != nil {
		return t, nil, err
	}
	t.Slot = int(int32(v))
	if v, b, err = haTakeU32(b); err != nil {
		return t, nil, err
	}
	t.Unique = int(int32(v))
	return t, b, nil
}

func haTakeArgs(b []byte) ([]Value, []byte, error) {
	n, b, err := haTakeU32(b)
	if err != nil || int(n) > len(b) {
		return nil, nil, errHACorrupt
	}
	if n == 0 {
		return nil, b, nil
	}
	args, err := msgcodec.Decode(b[:n])
	if err != nil {
		return nil, nil, fmt.Errorf("%v: %v", errHACorrupt, err)
	}
	return args, b[n:], nil
}

func haAppendMsg(b []byte, m *haMsg) ([]byte, error) {
	b = haAppendString(b, m.Type)
	b = haAppendTaskID(b, m.Sender)
	b = haAppendU64(b, m.SendSeq)
	return haAppendArgs(b, m.Args)
}

func haTakeMsg(b []byte) (haMsg, []byte, error) {
	var m haMsg
	var err error
	if m.Type, b, err = haTakeString(b); err != nil {
		return m, nil, err
	}
	if m.Sender, b, err = haTakeTaskID(b); err != nil {
		return m, nil, err
	}
	if m.SendSeq, b, err = haTakeU64(b); err != nil {
		return m, nil, err
	}
	if m.Args, b, err = haTakeArgs(b); err != nil {
		return m, nil, err
	}
	return m, b, nil
}

func encodeClusterCkpt(cs haCkptCluster) ([]byte, error) {
	var err error
	b := haAppendU32(nil, uint32(cs.number))
	b = haAppendU32(b, uint32(len(cs.initMap)))
	for _, e := range cs.initMap {
		b = haAppendTaskID(b, e.key.parent)
		b = haAppendU64(b, e.key.seq)
		b = haAppendTaskID(b, e.child)
	}
	b = haAppendU32(b, uint32(len(cs.pending)))
	for _, p := range cs.pending {
		b = haAppendTaskID(b, p.key.parent)
		b = haAppendU64(b, p.key.seq)
		b = haAppendString(b, p.tasktype)
		b = haAppendTaskID(b, p.parent)
		if b, err = haAppendArgs(b, p.args); err != nil {
			return nil, err
		}
	}
	b = haAppendU32(b, uint32(len(cs.tasks)))
	for i := range cs.tasks {
		ts := &cs.tasks[i]
		b = haAppendTaskID(b, ts.id)
		b = haAppendString(b, ts.tasktype)
		b = haAppendTaskID(b, ts.parent)
		if b, err = haAppendArgs(b, ts.args); err != nil {
			return nil, err
		}
		floors := make([]TaskID, 0, len(ts.floors))
		for k := range ts.floors {
			floors = append(floors, k)
		}
		sort.Slice(floors, func(i, j int) bool { return floors[i].less(floors[j]) })
		b = haAppendU32(b, uint32(len(floors)))
		for _, k := range floors {
			b = haAppendTaskID(b, k)
			b = haAppendU64(b, ts.floors[k])
		}
		b = haAppendU32(b, uint32(len(ts.log)))
		for _, rec := range ts.log {
			var flags byte
			if rec.open {
				flags |= 1
			}
			if rec.timedOut {
				flags |= 2
			}
			b = append(b, flags)
			b = haAppendU32(b, uint32(len(rec.msgs)))
			for j := range rec.msgs {
				if b, err = haAppendMsg(b, &rec.msgs[j]); err != nil {
					return nil, err
				}
			}
		}
		b = haAppendU32(b, uint32(len(ts.queue)))
		for j := range ts.queue {
			if b, err = haAppendMsg(b, &ts.queue[j]); err != nil {
				return nil, err
			}
		}
	}
	return b, nil
}

func decodeClusterCkpt(b []byte) (haCkptCluster, error) {
	var cs haCkptCluster
	var v uint32
	var err error
	if v, b, err = haTakeU32(b); err != nil {
		return cs, err
	}
	cs.number = int(v)
	if v, b, err = haTakeU32(b); err != nil {
		return cs, err
	}
	for i := 0; i < int(v); i++ {
		var e haCkptInitEntry
		if e.key.parent, b, err = haTakeTaskID(b); err != nil {
			return cs, err
		}
		if e.key.seq, b, err = haTakeU64(b); err != nil {
			return cs, err
		}
		if e.child, b, err = haTakeTaskID(b); err != nil {
			return cs, err
		}
		cs.initMap = append(cs.initMap, e)
	}
	if v, b, err = haTakeU32(b); err != nil {
		return cs, err
	}
	for i := 0; i < int(v); i++ {
		var p haCkptPending
		if p.key.parent, b, err = haTakeTaskID(b); err != nil {
			return cs, err
		}
		if p.key.seq, b, err = haTakeU64(b); err != nil {
			return cs, err
		}
		if p.tasktype, b, err = haTakeString(b); err != nil {
			return cs, err
		}
		if p.parent, b, err = haTakeTaskID(b); err != nil {
			return cs, err
		}
		if p.args, b, err = haTakeArgs(b); err != nil {
			return cs, err
		}
		cs.pending = append(cs.pending, p)
	}
	if v, b, err = haTakeU32(b); err != nil {
		return cs, err
	}
	for i := 0; i < int(v); i++ {
		var ts haCkptTask
		if ts.id, b, err = haTakeTaskID(b); err != nil {
			return cs, err
		}
		if ts.tasktype, b, err = haTakeString(b); err != nil {
			return cs, err
		}
		if ts.parent, b, err = haTakeTaskID(b); err != nil {
			return cs, err
		}
		if ts.args, b, err = haTakeArgs(b); err != nil {
			return cs, err
		}
		var n uint32
		if n, b, err = haTakeU32(b); err != nil {
			return cs, err
		}
		ts.floors = make(map[TaskID]uint64, n)
		for j := 0; j < int(n); j++ {
			var k TaskID
			var f uint64
			if k, b, err = haTakeTaskID(b); err != nil {
				return cs, err
			}
			if f, b, err = haTakeU64(b); err != nil {
				return cs, err
			}
			ts.floors[k] = f
		}
		if n, b, err = haTakeU32(b); err != nil {
			return cs, err
		}
		for j := 0; j < int(n); j++ {
			if len(b) < 1 {
				return cs, errHACorrupt
			}
			rec := &haAccRecord{open: b[0]&1 != 0, timedOut: b[0]&2 != 0}
			b = b[1:]
			var nm uint32
			if nm, b, err = haTakeU32(b); err != nil {
				return cs, err
			}
			for k := 0; k < int(nm); k++ {
				var m haMsg
				if m, b, err = haTakeMsg(b); err != nil {
					return cs, err
				}
				rec.msgs = append(rec.msgs, m)
			}
			ts.log = append(ts.log, rec)
		}
		if n, b, err = haTakeU32(b); err != nil {
			return cs, err
		}
		for j := 0; j < int(n); j++ {
			var m haMsg
			if m, b, err = haTakeMsg(b); err != nil {
				return cs, err
			}
			ts.queue = append(ts.queue, m)
		}
		cs.tasks = append(cs.tasks, ts)
	}
	if len(b) != 0 {
		return cs, errHACorrupt
	}
	return cs, nil
}

// decodeCheckpointBlob unwraps the msgcodec container and decodes every
// cluster section.
func decodeCheckpointBlob(blob []byte) ([]haCkptCluster, error) {
	sections, err := msgcodec.DecodeCheckpoint(blob)
	if err != nil {
		return nil, err
	}
	if len(sections) < 1 {
		return nil, errHACorrupt
	}
	if v, _, err := haTakeU32(sections[0]); err != nil || v != haCkptFormat {
		return nil, fmt.Errorf("core: checkpoint format %d not supported", v)
	}
	out := make([]haCkptCluster, 0, len(sections)-1)
	for _, sec := range sections[1:] {
		cs, err := decodeClusterCkpt(sec)
		if err != nil {
			return nil, err
		}
		out = append(out, cs)
	}
	return out, nil
}
