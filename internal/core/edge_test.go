package core

import (
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/config"
	"repro/internal/flex"
	"repro/internal/msgcodec"
	"repro/internal/rect"
)

func TestTaskIDParseAndString(t *testing.T) {
	id := TaskID{Cluster: 3, Slot: 2, Unique: 47}
	parsed, err := ParseTaskID(id.String())
	if err != nil {
		t.Fatal(err)
	}
	if parsed != id {
		t.Fatalf("round trip %v -> %v", id, parsed)
	}
	for _, bad := range []string{"", "1.2", "1.2.3.4", "a.b.c", "1..3"} {
		if _, err := ParseTaskID(bad); err == nil {
			t.Errorf("ParseTaskID(%q) should fail", bad)
		}
	}
	if !NilTask.IsNil() || id.IsNil() {
		t.Error("IsNil wrong")
	}
}

func TestValueAccessorsRejectWrongKinds(t *testing.T) {
	if _, err := AsInt(Real(1.5)); err == nil {
		t.Error("AsInt of REAL accepted")
	}
	if _, err := AsReal(Int(1)); err == nil {
		t.Error("AsReal of INTEGER accepted")
	}
	if _, err := AsBool(Int(1)); err == nil {
		t.Error("AsBool of INTEGER accepted")
	}
	if _, err := AsStr(Int(1)); err == nil {
		t.Error("AsStr of INTEGER accepted")
	}
	if _, err := AsID(Int(1)); err == nil {
		t.Error("AsID of INTEGER accepted")
	}
	if _, err := AsInts(Int(1)); err == nil {
		t.Error("AsInts of INTEGER accepted")
	}
	if _, err := AsReals(Int(1)); err == nil {
		t.Error("AsReals of INTEGER accepted")
	}
	if _, err := AsWin(Int(1)); err == nil {
		t.Error("AsWin of INTEGER accepted")
	}
	// Must* panics on mismatch.
	assertPanics(t, func() { MustInt(Str("x")) })
	assertPanics(t, func() { MustReal(Str("x")) })
	assertPanics(t, func() { MustStr(Int(1)) })
	assertPanics(t, func() { MustID(Int(1)) })
	assertPanics(t, func() { MustReals(Int(1)) })
	assertPanics(t, func() { MustWin(Int(1)) })
	// Round trips of the remaining accessors.
	if v, err := AsInts(Ints([]int64{1, 2})); err != nil || len(v) != 2 {
		t.Error("AsInts round trip")
	}
	if v, err := AsBool(Bool(true)); err != nil || !v {
		t.Error("AsBool round trip")
	}
}

func assertPanics(t *testing.T, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	f()
}

// TestSendHeapExhaustion verifies that a send which cannot be satisfied by
// the shared-memory message heap fails with ErrHeapExhausted and that the
// failure is clean (no storage leaked, later sends succeed after space is
// recovered).
func TestSendHeapExhaustion(t *testing.T) {
	// A tiny machine with an almost-empty message heap.
	machineCfg := flex.DefaultConfig()
	machineCfg.SharedBytes = 96 * 1024
	machineCfg.TableBytes = 32 * 1024
	machineCfg.CommonBytes = 32 * 1024
	machine := flex.MustNewMachine(machineCfg)
	vm, err := NewVMOn(machine, config.Simple(1, 2), Options{AcceptTimeout: 3 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer vm.Shutdown()

	result := make(chan error, 1)
	vm.Register("bulky", func(task *Task) {
		// ~32 KiB heap: a 1000-real payload is 8 KB + packets, so a few
		// unaccepted sends must exhaust it.
		payload := make([]float64, 1000)
		var sendErr error
		for i := 0; i < 16; i++ {
			if err := task.SendSelf("blob", Reals(payload)); err != nil {
				sendErr = err
				break
			}
		}
		if sendErr == nil {
			result <- errors.New("heap never exhausted")
			return
		}
		if !errors.Is(sendErr, ErrHeapExhausted) {
			result <- sendErr
			return
		}
		// Accept everything queued; afterwards sending works again.
		if _, err := task.Accept(AcceptSpec{Types: []TypeCount{{Type: "blob", Count: All}}}); err != nil {
			result <- err
			return
		}
		result <- task.SendSelf("blob", Reals(payload))
	})
	if _, err := vm.Run("bulky", OnCluster(1)); err != nil {
		t.Fatal(err)
	}
	if err := <-result; err != nil {
		t.Fatal(err)
	}
	vm.WaitIdle()
	if in := vm.Machine().Shared().Heap().InUse(); in != 0 {
		t.Fatalf("heap not recovered after the task terminated: %d bytes", in)
	}
}

// TestKillWhileBlockedInCritical verifies that killing a task blocked on a
// lock unwinds it and that the lock itself remains usable.
func TestKillInterruptsLongAccept(t *testing.T) {
	vm := newTestVM(t, config.Simple(1, 2), Options{})
	entered := make(chan TaskID, 1)
	vm.Register("sleepy", func(task *Task) {
		entered <- task.ID()
		// A long but finite DELAY: the kill must take effect well before it.
		_, _ = task.Accept(AcceptSpec{Total: 1, Types: []TypeCount{{Type: "never"}}, Delay: time.Minute})
		task.Printf("should not be reached\n")
	})
	id, err := vm.Initiate("sleepy", OnCluster(1))
	if err != nil {
		t.Fatal(err)
	}
	<-entered
	start := time.Now()
	if err := vm.Kill(id); err != nil {
		t.Fatal(err)
	}
	if err := vm.WaitTask(id); err != nil {
		t.Fatal(err)
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("kill did not interrupt the ACCEPT promptly")
	}
}

// TestUserControllerFormatsArbitraryMessages covers the user controller's
// rendering of non-"print" messages and of every value kind.
func TestUserControllerFormatsArbitraryMessages(t *testing.T) {
	out := &syncBuffer{}
	vm := newTestVM(t, config.Simple(1, 2), Options{UserOutput: out})
	vm.Register("reporter", func(task *Task) {
		win := Window{Owner: task.ID(), ArrayID: 3, Region: rect.Whole(2, 2)}
		_ = task.SendUser("report",
			Int(42), Real(2.5), Bool(true), Str("text"), ID(task.ID()),
			Ints([]int64{1, 2}), Reals([]float64{3, 4}), Win(win))
	})
	if _, err := vm.Run("reporter", OnCluster(1)); err != nil {
		t.Fatal(err)
	}
	vm.WaitIdle()
	vm.FlushUserOutput()
	got := out.String()
	for _, want := range []string{"report", "42", "2.5", "true", `"text"`, "INTEGER[2]", "REAL[2]", "WINDOW(owner="} {
		if !strings.Contains(got, want) {
			t.Errorf("user output missing %q in %q", want, got)
		}
	}
}

// TestStatsCountersAdvance covers VM.Stats across a small run.
func TestStatsCountersAdvance(t *testing.T) {
	vm := newTestVM(t, config.Simple(2, 2), Options{})
	vm.Register("chatty", func(task *Task) {
		_ = task.SendSelf("note")
		_, _ = task.AcceptOne("note")
	})
	for i := 0; i < 3; i++ {
		if _, err := vm.Run("chatty", Any()); err != nil {
			t.Fatal(err)
		}
	}
	st := vm.Stats()
	if st.TasksInitiated != 3 || st.TasksCompleted != 3 {
		t.Errorf("task counters %+v", st)
	}
	if st.MessagesSent < 3 || st.MessagesAccepted < 3 {
		t.Errorf("message counters %+v", st)
	}
}

// TestEncodedSizeMatchesCodec pins the run-time's heap charge to the codec's
// declared message layout.
func TestEncodedSizeMatchesCodec(t *testing.T) {
	args := []Value{Int(1), Str("hello"), Reals(make([]float64, 10))}
	n, err := encodedSize(args)
	if err != nil {
		t.Fatal(err)
	}
	want, err := msgcodec.EncodedSize(args)
	if err != nil {
		t.Fatal(err)
	}
	if n != want {
		t.Fatalf("encodedSize %d != codec %d", n, want)
	}
}
