package core

import (
	"fmt"

	"repro/internal/msgcodec"
	"repro/internal/rect"
)

// Value is one message or task argument.  The supported kinds mirror the
// Pisces Fortran data types: INTEGER, REAL, LOGICAL, CHARACTER, TASKID,
// WINDOW, and one-dimensional INTEGER and REAL arrays.
type Value = msgcodec.Arg

// Shorthand aliases for the codec's argument kinds, used when inspecting
// Value.Kind directly.
const (
	kindInteger   = msgcodec.KindInteger
	kindReal      = msgcodec.KindReal
	kindLogical   = msgcodec.KindLogical
	kindCharacter = msgcodec.KindCharacter
	kindTaskID    = msgcodec.KindTaskID
	kindWindow    = msgcodec.KindWindow
	kindIntArray  = msgcodec.KindIntArray
	kindRealArray = msgcodec.KindRealArray
)

// Int returns an INTEGER value.
func Int(v int64) Value { return msgcodec.Int(v) }

// Real returns a REAL value.
func Real(v float64) Value { return msgcodec.Real(v) }

// Bool returns a LOGICAL value.
func Bool(v bool) Value { return msgcodec.Logical(v) }

// Str returns a CHARACTER value.
func Str(v string) Value { return msgcodec.Str(v) }

// ID returns a TASKID value.
func ID(t TaskID) Value { return msgcodec.TaskID(t.codecValue()) }

// Ints returns an INTEGER array value.
func Ints(v []int64) Value { return msgcodec.Ints(v) }

// Reals returns a REAL array value.
func Reals(v []float64) Value { return msgcodec.Reals(v) }

// Win returns a WINDOW value.
func Win(w Window) Value {
	return msgcodec.Window(msgcodec.WindowValue{
		Owner:   w.Owner.codecValue(),
		ArrayID: w.ArrayID,
		Row1:    int32(w.Region.Row1),
		Row2:    int32(w.Region.Row2),
		Col1:    int32(w.Region.Col1),
		Col2:    int32(w.Region.Col2),
	})
}

// AsInt extracts an INTEGER value.
func AsInt(v Value) (int64, error) {
	if v.Kind != msgcodec.KindInteger {
		return 0, fmt.Errorf("core: value is %s, not INTEGER", v.Kind)
	}
	return v.Integer, nil
}

// AsReal extracts a REAL value.
func AsReal(v Value) (float64, error) {
	if v.Kind != msgcodec.KindReal {
		return 0, fmt.Errorf("core: value is %s, not REAL", v.Kind)
	}
	return v.Real, nil
}

// AsBool extracts a LOGICAL value.
func AsBool(v Value) (bool, error) {
	if v.Kind != msgcodec.KindLogical {
		return false, fmt.Errorf("core: value is %s, not LOGICAL", v.Kind)
	}
	return v.Logical, nil
}

// AsStr extracts a CHARACTER value.
func AsStr(v Value) (string, error) {
	if v.Kind != msgcodec.KindCharacter {
		return "", fmt.Errorf("core: value is %s, not CHARACTER", v.Kind)
	}
	return v.Character, nil
}

// AsID extracts a TASKID value.
func AsID(v Value) (TaskID, error) {
	if v.Kind != msgcodec.KindTaskID {
		return NilTask, fmt.Errorf("core: value is %s, not TASKID", v.Kind)
	}
	return taskIDFromCodec(v.TaskID), nil
}

// AsInts extracts an INTEGER array value.
func AsInts(v Value) ([]int64, error) {
	if v.Kind != msgcodec.KindIntArray {
		return nil, fmt.Errorf("core: value is %s, not INTEGER array", v.Kind)
	}
	return v.IntArray, nil
}

// AsReals extracts a REAL array value.
func AsReals(v Value) ([]float64, error) {
	if v.Kind != msgcodec.KindRealArray {
		return nil, fmt.Errorf("core: value is %s, not REAL array", v.Kind)
	}
	return v.RealArray, nil
}

// AsWin extracts a WINDOW value.
func AsWin(v Value) (Window, error) {
	if v.Kind != msgcodec.KindWindow {
		return Window{}, fmt.Errorf("core: value is %s, not WINDOW", v.Kind)
	}
	w := v.Window
	return Window{
		Owner:   taskIDFromCodec(w.Owner),
		ArrayID: w.ArrayID,
		Region:  rect.New(int(w.Row1), int(w.Row2), int(w.Col1), int(w.Col2)),
	}, nil
}

// MustInt is AsInt for arguments known to be INTEGER; it panics otherwise.
// Handlers typically use the Must form after declaring the message signature.
func MustInt(v Value) int64 {
	x, err := AsInt(v)
	if err != nil {
		panic(err)
	}
	return x
}

// MustReal is AsReal that panics on kind mismatch.
func MustReal(v Value) float64 {
	x, err := AsReal(v)
	if err != nil {
		panic(err)
	}
	return x
}

// MustStr is AsStr that panics on kind mismatch.
func MustStr(v Value) string {
	x, err := AsStr(v)
	if err != nil {
		panic(err)
	}
	return x
}

// MustID is AsID that panics on kind mismatch.
func MustID(v Value) TaskID {
	x, err := AsID(v)
	if err != nil {
		panic(err)
	}
	return x
}

// MustReals is AsReals that panics on kind mismatch.
func MustReals(v Value) []float64 {
	x, err := AsReals(v)
	if err != nil {
		panic(err)
	}
	return x
}

// MustWin is AsWin that panics on kind mismatch.
func MustWin(v Value) Window {
	x, err := AsWin(v)
	if err != nil {
		panic(err)
	}
	return x
}
