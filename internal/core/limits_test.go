package core

import (
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/config"
)

// waitViolation polls for the recorded violation: the kill sweep is
// asynchronous with respect to the observing test goroutine.
func waitViolation(t *testing.T, vm *VM) *LimitError {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if err := vm.LimitViolation(); err != nil {
			var le *LimitError
			if !errors.As(err, &le) {
				t.Fatalf("LimitViolation returned %T, want *LimitError", err)
			}
			if !errors.Is(err, ErrLimitExceeded) {
				t.Fatal("LimitError does not match ErrLimitExceeded")
			}
			return le
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("no limit violation recorded")
	return nil
}

// TestHeapLimitFailsTenant: a tenant flooding its own queue with large
// messages must hit HeapBytes long before the arena fills, see the failure
// as heap exhaustion at the send site, and have the violation recorded.
func TestHeapLimitFailsTenant(t *testing.T) {
	vm := newTestVM(t, config.Simple(1, 4), Options{Limits: Limits{HeapBytes: 4096}})
	errCh := make(chan error, 1)
	vm.Register("flood", func(tk *Task) {
		payload := Str(strings.Repeat("x", 256))
		for i := 0; i < 1000; i++ {
			if err := tk.SendSelf("data", payload); err != nil {
				errCh <- err
				return
			}
		}
		errCh <- nil
	})
	if _, err := vm.Run("flood", Any()); err != nil {
		t.Fatal(err)
	}
	vm.WaitIdle()
	sendErr := <-errCh
	if sendErr == nil {
		t.Fatal("flood completed without hitting the heap limit")
	}
	if !errors.Is(sendErr, ErrHeapExhausted) {
		t.Fatalf("send error = %v; want ErrHeapExhausted", sendErr)
	}
	if !errors.Is(sendErr, ErrLimitExceeded) {
		t.Fatalf("send error = %v; want it to also match ErrLimitExceeded", sendErr)
	}
	le := waitViolation(t, vm)
	if le.Resource != LimitHeap {
		t.Fatalf("violation resource = %q; want %q", le.Resource, LimitHeap)
	}
}

// TestHeapUnlimitedByDefault: without Limits the same flood only ever sees
// arena exhaustion, never a limit violation.
func TestHeapUnlimitedByDefault(t *testing.T) {
	vm := newTestVM(t, config.Simple(1, 4), Options{})
	done := make(chan struct{})
	vm.Register("burst", func(tk *Task) {
		defer close(done)
		for i := 0; i < 50; i++ {
			if err := tk.SendSelf("data", Int(int64(i))); err != nil {
				t.Errorf("send %d: %v", i, err)
				return
			}
		}
	})
	if _, err := vm.Run("burst", Any()); err != nil {
		t.Fatal(err)
	}
	<-done
	vm.WaitIdle()
	if err := vm.LimitViolation(); err != nil {
		t.Fatalf("unexpected violation: %v", err)
	}
}

// TestMaxTasksLimit: the cumulative initiate count is capped; the refusal
// surfaces to the initiator and the violation is recorded.
func TestMaxTasksLimit(t *testing.T) {
	vm := newTestVM(t, config.Simple(2, 8), Options{Limits: Limits{MaxTasks: 3}})
	vm.Register("child", func(tk *Task) {})
	var refused error
	var spawned int
	done := make(chan struct{})
	vm.Register("spawner", func(tk *Task) {
		// The defer (not a channel send at the end) survives the task being
		// kill-unwound mid-InitiateWait by the fail-stop sweep.
		defer close(done)
		for i := 0; i < 10; i++ {
			if _, err := tk.InitiateWait(Any(), "child"); err != nil {
				refused = err
				return
			}
			spawned++
		}
	})
	if _, err := vm.Run("spawner", Any()); err != nil {
		t.Fatal(err)
	}
	<-done
	vm.WaitIdle()
	if spawned >= 10 {
		t.Fatal("spawner initiated 10 children past a MaxTasks of 3")
	}
	// The refusal either surfaced as an initiate error or the sweep killed
	// the spawner first — both are a correctly fail-stopped tenant.
	if refused != nil && !errors.Is(refused, ErrVMTerminated) {
		t.Fatalf("refusal error = %v; want ErrVMTerminated", refused)
	}
	le := waitViolation(t, vm)
	if le.Resource != LimitTasks {
		t.Fatalf("violation resource = %q; want %q", le.Resource, LimitTasks)
	}
	// The spawner itself plus at most two admitted children.
	if got := vm.Stats().TasksInitiated; got > 3 {
		t.Fatalf("initiated %d tasks; want <= 3", got)
	}
}

// TestWallClockLimit: a tenant parked in an ACCEPT nobody satisfies is
// killed when its wall-clock budget expires; the run unblocks.
func TestWallClockLimit(t *testing.T) {
	vm := newTestVM(t, config.Simple(1, 4), Options{Limits: Limits{WallClock: 50 * time.Millisecond}})
	vm.Register("sleeper", func(tk *Task) {
		_, _ = tk.Accept(AcceptSpec{
			Types: []TypeCount{{Type: "never", Count: 1}},
			Delay: 30 * time.Second,
		})
	})
	start := time.Now()
	if _, err := vm.Run("sleeper", Any()); err != nil {
		t.Fatal(err)
	}
	vm.WaitIdle()
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("run took %v; wall-clock limit did not interrupt the ACCEPT", elapsed)
	}
	le := waitViolation(t, vm)
	if le.Resource != LimitWallClock {
		t.Fatalf("violation resource = %q; want %q", le.Resource, LimitWallClock)
	}
}

// TestOutputBytesLimit: terminal output past the cap is dropped, the
// violation recorded, and the system termination notice still delivered.
func TestOutputBytesLimit(t *testing.T) {
	var out syncBuffer
	vm := newTestVM(t, config.Simple(1, 4), Options{
		UserOutput: &out,
		Limits:     Limits{OutputBytes: 64},
	})
	done := make(chan struct{})
	vm.Register("chatty", func(tk *Task) {
		defer close(done)
		for i := 0; i < 50; i++ {
			tk.Println("0123456789")
		}
	})
	if _, err := vm.Run("chatty", Any()); err != nil {
		t.Fatal(err)
	}
	<-done
	vm.WaitIdle()
	vm.FlushUserOutput()
	le := waitViolation(t, vm)
	if le.Resource != LimitOutput {
		t.Fatalf("violation resource = %q; want %q", le.Resource, LimitOutput)
	}
	got := out.String()
	if n := strings.Count(got, "0123456789"); n >= 50 {
		t.Fatalf("all %d prints delivered; output cap did not drop any", n)
	}
	if !strings.Contains(got, "tenant limit exceeded") {
		t.Fatalf("termination notice missing from output:\n%s", got)
	}
}

// TestLimitErrorText pins the error formats the serving API surfaces.
func TestLimitErrorText(t *testing.T) {
	cases := []struct {
		err  *LimitError
		want string
	}{
		{&LimitError{Resource: LimitHeap, Limit: 100, Used: 120}, "tenant limit exceeded: heap cap 100, used 120"},
		{&LimitError{Resource: LimitTasks, Limit: 5}, "tenant limit exceeded: tasks cap 5"},
		{&LimitError{Resource: LimitWallClock, Limit: int64(time.Second)}, "tenant limit exceeded: wallclock cap 1s elapsed"},
	}
	for _, c := range cases {
		if got := c.err.Error(); got != c.want {
			t.Errorf("Error() = %q; want %q", got, c.want)
		}
	}
}
