package core

import (
	"fmt"
	"sort"

	"repro/internal/msgcodec"
	"repro/internal/trace"
)

// killSentinel is the panic value used to unwind a task that has been killed
// (KILL A TASK, run time limit, or VM shutdown).
type killSentinel struct{}

// encodedSize computes the shared-memory footprint of a message with the
// given arguments.
func encodedSize(args []Value) (int, error) { return msgcodec.EncodedSize(args) }

// Handler is a message handler subroutine: "A message type with a 'handler'
// is processed by a HANDLER subroutine before it is deleted from the
// in-queue ... Any arguments that arrive in the message are provided to the
// handler as arguments" (Section 6).
type Handler func(t *Task, msg *Message)

// Task is the run-time context handed to a tasktype body.  All Pisces Fortran
// statement forms (INITIATE, SEND, ACCEPT, FORCESPLIT, window operations) are
// methods on it.  A Task value must only be used from the goroutine running
// the task body (or, inside a force, through the ForceMember it is given).
type Task struct {
	vm  *VM
	rec *taskRec

	args       []Value
	lastSender TaskID
	handlers   map[string]Handler
	signals    map[string]bool

	// acc is the task's reusable ACCEPT matching state; accActive guards it
	// against re-entrant Accept calls from handlers or timeout callbacks.
	acc       acceptState
	accActive bool

	arraySeq int32
	lockSeq  int
}

func newTask(vm *VM, rec *taskRec, args []Value) *Task {
	return &Task{
		vm:       vm,
		rec:      rec,
		args:     args,
		handlers: make(map[string]Handler),
		signals:  make(map[string]bool),
	}
}

// VM returns the virtual machine the task runs on.
func (t *Task) VM() *VM { return t.vm }

// ID returns this task's taskid ("SELF").
func (t *Task) ID() TaskID { return t.rec.id }

// Parent returns the taskid of the task that requested this task's
// initiation ("PARENT").  For top-level tasks it is the user controller.
func (t *Task) Parent() TaskID { return t.rec.parent }

// Sender returns the taskid of the sender of the last message accepted
// ("SENDER").
func (t *Task) Sender() TaskID { return t.lastSender }

// Cluster returns the number of the cluster the task runs in.
func (t *Task) Cluster() int { return t.rec.cluster.cfg.Number }

// TaskType returns the tasktype name the task was initiated as.
func (t *Task) TaskType() string { return t.rec.tasktype }

// Args returns the argument list passed in the INITIATE statement.
func (t *Task) Args() []Value { return t.args }

// Arg returns initiation argument i, or a zero Value if out of range.
func (t *Task) Arg(i int) Value {
	if i < 0 || i >= len(t.args) {
		return Value{}
	}
	return t.args[i]
}

// checkKilled unwinds the task if it has been killed.  Every run-time entry
// point calls it, so a kill takes effect at the task's next run-time call.
func (t *Task) checkKilled() {
	if t.rec.isKilled() {
		panic(killSentinel{})
	}
}

// Charge adds n ticks of simulated computation to the task's PE clock.
// Application bodies call it to model their compute phases so that
// simulated-time experiments see realistic interleavings.
func (t *Task) Charge(n int64) {
	t.checkKilled()
	if p := t.rec.getProc(); p != nil {
		p.Charge(n)
	}
}

// Yield releases the PE so other tasks multiprogrammed on it can run.
func (t *Task) Yield() {
	t.checkKilled()
	if p := t.rec.getProc(); p != nil {
		p.Yield()
	}
}

// Println sends a line of output to the user terminal by way of the user
// controller ("TO USER SEND ...").
func (t *Task) Println(args ...any) {
	t.SendUser("print", Str(fmt.Sprintln(args...)))
}

// Printf formats a line of output to the user terminal.
func (t *Task) Printf(format string, args ...any) {
	t.SendUser("print", Str(fmt.Sprintf(format, args...)))
}

// --- INITIATE -------------------------------------------------------------

// Initiate executes "ON <placement> INITIATE <tasktype>(<args>)".  The call
// is asynchronous: it sends an initiation request to the task controller of
// the placed cluster and returns as soon as the request is queued there.  The
// new task's id is not returned — as in the paper, the child learns its
// parent's id and typically reports back with a message, from which the
// parent captures the child's id via Sender.  Use InitiateWait when the
// initiator needs the id directly.
func (t *Task) Initiate(placement Placement, tasktype string, args ...Value) error {
	return t.initiate(placement, tasktype, args, nil)
}

// InitiateWait initiates a task and waits until the task controller has
// assigned it a slot, returning the new task's id.  This is a convenience
// extension over the paper's INITIATE; it blocks while the target cluster is
// full.
func (t *Task) InitiateWait(placement Placement, tasktype string, args ...Value) (TaskID, error) {
	reply := newInitReply(t.vm.backend)
	if err := t.initiate(placement, tasktype, args, reply); err != nil {
		return NilTask, err
	}
	// Block without holding the PE while the controller assigns a slot.
	var id TaskID
	t.blockFn(func() { id = reply.wait() })
	if id.IsNil() {
		return NilTask, ErrVMTerminated
	}
	return id, nil
}

func (t *Task) initiate(placement Placement, tasktype string, args []Value, reply *initReply) error {
	t.checkKilled()
	if _, ok := t.vm.taskType(tasktype); !ok {
		return fmt.Errorf("%w: %q", ErrUnknownTaskType, tasktype)
	}
	cl, err := t.vm.placeCluster(placement, t.Cluster())
	if err != nil {
		return err
	}
	msg := newMessage(msgInitRequest, t.ID(),
		append([]Value{Str(tasktype), ID(t.ID()), Ints(nil)}, args...), t.vm.msgSeq.Add(1))
	msg.sendSeq = t.nextSendSeq()
	msg.reply = reply
	t.Charge(costSendHeader)
	if err := t.vm.deliverSystem(t.rec.cluster, cl.controllerID, msg); err != nil {
		return err
	}
	if t.vm.tracing(trace.MsgSend) {
		t.vm.record(trace.MsgSend, t.ID(), cl.controllerID, t.rec.cluster.primary,
			fmt.Sprintf("msgtype=%s initiate=%s placement=%q", msgInitRequest, tasktype, placement))
	}
	return nil
}

// --- SEND -----------------------------------------------------------------

// Send executes "TO <taskid> SEND <msgtype>(<args>)".
func (t *Task) Send(to TaskID, msgType string, args ...Value) error {
	t.checkKilled()
	return t.sendInternal(to, msgType, args, t.nextSendSeq())
}

// SendParent sends to the task's parent ("TO PARENT SEND ...").
func (t *Task) SendParent(msgType string, args ...Value) error {
	return t.Send(t.Parent(), msgType, args...)
}

// SendSelf sends a message to the task itself ("TO SELF SEND ...").
func (t *Task) SendSelf(msgType string, args ...Value) error {
	return t.Send(t.ID(), msgType, args...)
}

// SendSender replies to the sender of the last accepted message
// ("TO SENDER SEND ...").
func (t *Task) SendSender(msgType string, args ...Value) error {
	if t.lastSender.IsNil() {
		return fmt.Errorf("core: no message has been accepted yet, SENDER is undefined")
	}
	return t.Send(t.lastSender, msgType, args...)
}

// SendUser sends to the user at the terminal ("TO USER SEND ..."); the user
// controller writes printable arguments to the configured output.
func (t *Task) SendUser(msgType string, args ...Value) error {
	return t.Send(t.vm.userCtrl, msgType, args...)
}

// SendTaskController sends to the task controller of the given cluster
// ("TO TCONTR <cluster> SEND ...").
func (t *Task) SendTaskController(cluster int, msgType string, args ...Value) error {
	cl, ok := t.vm.cluster(cluster)
	if !ok {
		return fmt.Errorf("%w: %d", ErrNoSuchCluster, cluster)
	}
	return t.Send(cl.controllerID, msgType, args...)
}

// Broadcast sends the message to every running user task in every cluster
// except the sender itself ("TO ALL SEND ...").
func (t *Task) Broadcast(msgType string, args ...Value) error {
	return t.broadcast(0, msgType, args)
}

// BroadcastCluster sends the message to every running user task in the given
// cluster, except the sender ("TO ALL CLUSTER <n> SEND ...").
func (t *Task) BroadcastCluster(cluster int, msgType string, args ...Value) error {
	if _, ok := t.vm.cluster(cluster); !ok {
		return fmt.Errorf("%w: %d", ErrNoSuchCluster, cluster)
	}
	return t.broadcast(cluster, msgType, args)
}

func (t *Task) broadcast(cluster int, msgType string, args []Value) error {
	t.checkKilled()
	t.vm.mu.Lock()
	var targets []TaskID
	for id, rec := range t.vm.tasks {
		if rec.isController || id == t.ID() {
			continue
		}
		if cluster != 0 && id.Cluster != cluster {
			continue
		}
		targets = append(targets, id)
	}
	t.vm.mu.Unlock()
	// Deliver in taskid order: broadcast arrival order must not depend on
	// map iteration, or deterministic runs would diverge between executions.
	sort.Slice(targets, func(i, j int) bool { return targets[i].less(targets[j]) })
	// One send sequence number covers every copy of the broadcast: a replayed
	// broadcast regenerates one number, and each receiver's floor is per
	// (sender, receiver), so all copies dedup consistently.
	sendSeq := t.nextSendSeq()
	var firstErr error
	for _, id := range targets {
		if err := t.sendInternal(id, msgType, args, sendSeq); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	// Tasks hosted on other nodes are not in vm.tasks; ship them one
	// broadcast frame per node and let each receiver fan out locally.
	if t.vm.partial() && (cluster == 0 || !t.vm.hosts(cluster)) {
		if err := t.vm.routeBroadcast(t.rec.cluster, cluster, msgType, t.ID(), args, sendSeq); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// sendInternal performs the shared-memory allocation, delivery, tracing, and
// tick charging of one message send.  An intra-cluster send touches only its
// own cluster's heap shard; a cross-cluster send is codec-encoded into the
// sender's shard and handed to the destination cluster's router.
func (t *Task) sendInternal(to TaskID, msgType string, args []Value, sendSeq uint64) error {
	from := t.rec.cluster
	if t.vm.wireRemote(from, to.Cluster) {
		// Under InterceptWire the destination is still hosted here, so keep
		// the direct path's error contract: a send to a task that is not
		// running fails at the sender even though delivery is delayed.
		if t.vm.hosts(to.Cluster) {
			if _, ok := t.vm.lookupTask(to); !ok {
				if t.haSendSuppressed(sendSeq) {
					// The receiver existed when this send first executed and
					// has since terminated; the original delivery happened.
					return nil
				}
				return fmt.Errorf("%w: %s", ErrNoSuchTask, to)
			}
		}
		size, err := t.vm.routeRemote(from, to, msgType, t.ID(), args, sendSeq, nil)
		if err != nil {
			return err
		}
		t.Charge(int64(costSendHeader + costSendPacket*((size-msgcodec.HeaderBytes)/msgcodec.PacketBytes)))
		t.vm.msgsSent.Add(1)
		t.vm.recordRouted(from, t.ID(), to, msgType, size)
		return nil
	}
	rec, ok := t.vm.lookupTask(to)
	if !ok {
		if t.haSendSuppressed(sendSeq) {
			return nil
		}
		return fmt.Errorf("%w: %s", ErrNoSuchTask, to)
	}
	var size int
	if rec.cluster != from {
		var err error
		size, err = t.vm.routeMessage(from, rec, msgType, t.ID(), args, t.vm.msgSeq.Add(1), sendSeq, nil)
		if err != nil {
			return err
		}
	} else {
		msg := newMessage(msgType, t.ID(), args, t.vm.msgSeq.Add(1))
		msg.sendSeq = sendSeq
		if err := t.vm.chargeMessageOn(from.heap, msg); err != nil {
			recycleMessage(msg)
			return err
		}
		// Snapshot the size before delivery: once the message is in the
		// receiver's in-queue it may be accepted (and its heap storage
		// released) concurrently with the rest of this send.
		size = msg.heapBytes
		switch rec.queue.put(msg) {
		case putOK:
		case putDup:
			// Already delivered in a previous life; the send succeeds.
			t.vm.releaseMessage(msg)
			recycleMessage(msg)
		case putClosed:
			t.vm.releaseMessage(msg)
			recycleMessage(msg)
			if t.haSendSuppressed(sendSeq) {
				return nil
			}
			return fmt.Errorf("%w: %s", ErrNoSuchTask, to)
		}
	}
	packets := (size - msgcodec.HeaderBytes) / msgcodec.PacketBytes
	t.Charge(int64(costSendHeader + costSendPacket*packets))
	t.vm.msgsSent.Add(1)
	if t.vm.tracing(trace.MsgSend) {
		t.vm.record(trace.MsgSend, t.ID(), to, from.primary,
			fmt.Sprintf("msgtype=%s args=%d bytes=%d", msgType, len(args), size))
	}
	return nil
}

// blockFn releases the PE while wait runs; it also honours kills by
// re-checking the kill flag after waking.
func (t *Task) blockFn(wait func()) {
	p := t.rec.getProc()
	if p == nil {
		wait()
	} else {
		p.BlockFn(wait)
	}
	t.checkKilled()
}

// --- message declarations ---------------------------------------------------

// OnMessage declares a HANDLER for a message type: when a message of this
// type is accepted, the handler runs with the message (and thus its
// arguments) before the message is deleted from the in-queue.
func (t *Task) OnMessage(msgType string, h Handler) {
	t.handlers[msgType] = h
	delete(t.signals, msgType)
}

// Signal declares a message type as a SIGNAL type: accepted messages of this
// type are simply counted and deleted.  Declaring a type neither way treats
// it as a signal by default.
func (t *Task) Signal(msgType string) {
	t.signals[msgType] = true
	delete(t.handlers, msgType)
}

// QueueLength returns the number of messages currently waiting in the task's
// in-queue.
func (t *Task) QueueLength() int { return t.rec.queue.len() }
