package core

import (
	"bytes"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/config"
	"repro/internal/trace"
)

// syncBuffer is a goroutine-safe buffer for capturing user-controller output
// in tests.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// newTestVM boots a VM on a simple n-cluster configuration and registers a
// cleanup that shuts it down.
func newTestVM(t testing.TB, cfg *config.Configuration, opts Options) *VM {
	t.Helper()
	if opts.AcceptTimeout == 0 {
		opts.AcceptTimeout = 3 * time.Second
	}
	vm, err := NewVM(cfg, opts)
	if err != nil {
		t.Fatalf("NewVM: %v", err)
	}
	t.Cleanup(vm.Shutdown)
	return vm
}

func TestBootControllers(t *testing.T) {
	vm := newTestVM(t, config.Simple(3, 2), Options{})

	tasks := vm.RunningTasks()
	var taskCtrls, userCtrls, fileCtrls int
	for _, ti := range tasks {
		if !ti.Controller {
			t.Errorf("unexpected non-controller task at boot: %+v", ti)
		}
		switch ti.TaskType {
		case TaskControllerType:
			taskCtrls++
		case UserControllerType:
			userCtrls++
		case FileControllerType:
			fileCtrls++
		}
	}
	if taskCtrls != 3 {
		t.Errorf("task controllers = %d, want 3 (one per cluster)", taskCtrls)
	}
	if userCtrls != 1 || fileCtrls != 1 {
		t.Errorf("user controllers = %d, file controllers = %d, want 1 each", userCtrls, fileCtrls)
	}
	if vm.UserControllerID().IsNil() || vm.FileControllerID().IsNil() {
		t.Error("controller ids not recorded")
	}

	// Controllers occupy reserved slots: user slots remain fully free.
	for _, ci := range vm.Clusters() {
		if ci.FreeSlots != 2 {
			t.Errorf("cluster %d free user slots = %d, want 2", ci.Number, ci.FreeSlots)
		}
	}
}

func TestBootRejectsInvalidConfiguration(t *testing.T) {
	bad := config.Simple(2, 2)
	bad.Clusters[0].PrimaryPE = 1 // Unix PE
	if _, err := NewVM(bad, Options{}); err == nil {
		t.Fatal("expected boot to fail for an invalid configuration")
	}
}

func TestRunSimpleTask(t *testing.T) {
	var out syncBuffer
	vm := newTestVM(t, config.Simple(2, 2), Options{UserOutput: &out})
	ran := make(chan TaskID, 1)
	vm.Register("hello", func(t *Task) {
		ran <- t.ID()
		t.Printf("hello from %s in cluster %d\n", t.ID(), t.Cluster())
	})

	id, err := vm.Run("hello", OnCluster(2))
	if err != nil {
		t.Fatal(err)
	}
	got := <-ran
	if got != id {
		t.Fatalf("task saw id %s, Run returned %s", got, id)
	}
	if id.Cluster != 2 {
		t.Fatalf("task placed on cluster %d, want 2", id.Cluster)
	}
	// The message to USER is delivered asynchronously; wait briefly.
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) && !strings.Contains(out.String(), "hello from") {
		time.Sleep(5 * time.Millisecond)
	}
	if !strings.Contains(out.String(), "hello from") {
		t.Fatalf("user output missing task print: %q", out.String())
	}
	st := vm.Stats()
	if st.TasksInitiated != 1 || st.TasksCompleted != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestRunUnknownTaskType(t *testing.T) {
	vm := newTestVM(t, config.Simple(1, 1), Options{})
	if _, err := vm.Run("nope", Any()); err == nil {
		t.Fatal("expected unknown tasktype error")
	}
}

func TestPlacementKinds(t *testing.T) {
	vm := newTestVM(t, config.Simple(3, 2), Options{})
	clusterSeen := make(chan int, 8)
	vm.Register("where", func(t *Task) { clusterSeen <- t.Cluster() })

	// CLUSTER <n>
	if _, err := vm.Run("where", OnCluster(3)); err != nil {
		t.Fatal(err)
	}
	if got := <-clusterSeen; got != 3 {
		t.Fatalf("OnCluster(3) placed on %d", got)
	}
	// ANY goes somewhere valid.
	if _, err := vm.Run("where", Any()); err != nil {
		t.Fatal(err)
	}
	if got := <-clusterSeen; got < 1 || got > 3 {
		t.Fatalf("Any() placed on %d", got)
	}
	// Unknown cluster is rejected.
	if _, err := vm.Run("where", OnCluster(9)); err == nil {
		t.Fatal("expected error for unknown cluster")
	}
	if p := OnCluster(4).String(); p != "CLUSTER 4" {
		t.Fatalf("Placement.String = %q", p)
	}
	if Any().String() != "ANY" || Other().String() != "OTHER" || Same().String() != "SAME" {
		t.Fatal("placement names wrong")
	}
}

func TestTaskInitiatesChildren(t *testing.T) {
	vm := newTestVM(t, config.Simple(3, 3), Options{})

	childClusters := make(chan int, 16)
	vm.Register("child", func(t *Task) {
		childClusters <- t.Cluster()
		// Report back to the parent so it learns our taskid (the idiomatic
		// PISCES pattern).
		if err := t.SendParent("done", Int(int64(t.Cluster()))); err != nil {
			t.Printf("child send failed: %v\n", err)
		}
	})
	vm.Register("parent", func(t *Task) {
		// SAME placement.
		if err := t.Initiate(Same(), "child"); err != nil {
			panic(err)
		}
		// OTHER placement.
		if err := t.Initiate(Other(), "child"); err != nil {
			panic(err)
		}
		// Specific cluster, with the convenience wait form.
		id, err := t.InitiateWait(OnCluster(3), "child")
		if err != nil {
			panic(err)
		}
		if id.Cluster != 3 {
			panic("InitiateWait placed child on wrong cluster")
		}
		res, err := t.AcceptN(3, "done")
		if err != nil {
			panic(err)
		}
		if res.Count("done") != 3 {
			panic("parent did not hear from all three children")
		}
	})

	id, err := vm.Run("parent", OnCluster(1))
	if err != nil {
		t.Fatal(err)
	}
	vm.WaitIdle()
	close(childClusters)
	var same, other bool
	for c := range childClusters {
		if c == id.Cluster {
			same = true
		} else {
			other = true
		}
	}
	if !same || !other {
		t.Fatal("SAME and OTHER placements did not both occur")
	}
	st := vm.Stats()
	if st.TasksInitiated != 4 || st.TasksCompleted != 4 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestOtherPlacementNeedsTwoClusters(t *testing.T) {
	vm := newTestVM(t, config.Simple(1, 2), Options{})
	errCh := make(chan error, 1)
	vm.Register("lonely", func(t *Task) {
		errCh <- t.Initiate(Other(), "lonely")
	})
	if _, err := vm.Run("lonely", OnCluster(1)); err != nil {
		t.Fatal(err)
	}
	if err := <-errCh; err == nil {
		t.Fatal("OTHER placement with a single cluster should fail")
	}
}

func TestSlotLimitHoldsInitiateRequests(t *testing.T) {
	// One cluster with a single user slot: the second initiate request must
	// wait until the first task terminates ("If no slots are available in the
	// cluster, the task controller will hold the initiate request until
	// another task terminates").
	vm := newTestVM(t, config.Simple(1, 1), Options{})
	started := make(chan string, 4)
	vm.Register("first", func(t *Task) {
		started <- "first"
		// Block in an ACCEPT that only ends when the test sends "release".
		if _, err := t.Accept(AcceptSpec{Total: 1, Types: []TypeCount{{Type: "release"}}, Delay: Forever}); err != nil {
			panic(err)
		}
	})
	vm.Register("second", func(t *Task) {
		started <- "second"
	})

	firstID, err := vm.Initiate("first", OnCluster(1))
	if err != nil {
		t.Fatal(err)
	}
	<-started

	// Request the second task: no slot is free, so it must be held pending.
	done := make(chan TaskID, 1)
	go func() {
		id, err := vm.Initiate("second", OnCluster(1))
		if err != nil {
			t.Errorf("second initiate failed: %v", err)
		}
		done <- id
	}()

	// Give the controller a moment; the second task must NOT have started.
	time.Sleep(100 * time.Millisecond)
	select {
	case s := <-started:
		t.Fatalf("task %q started while no slot was free", s)
	default:
	}
	cls := vm.Clusters()
	if cls[0].Pending != 1 {
		t.Fatalf("pending requests = %d, want 1", cls[0].Pending)
	}

	if err := vm.SendFromUser(firstID, "release"); err != nil {
		t.Fatal(err)
	}
	if err := vm.WaitTask(firstID); err != nil {
		t.Fatal(err)
	}
	select {
	case s := <-started:
		if s != "second" {
			t.Fatalf("unexpected start %q", s)
		}
	case <-time.After(3 * time.Second):
		t.Fatal("held initiate request never started after the slot freed")
	}
	<-done
	vm.WaitIdle()
}

func TestKillTask(t *testing.T) {
	vm := newTestVM(t, config.Simple(1, 2), Options{})
	entered := make(chan TaskID, 1)
	finishedNormally := make(chan bool, 1)
	vm.Register("victim", func(t *Task) {
		entered <- t.ID()
		// Wait for a message that never comes; the kill must interrupt it.
		_, err := t.Accept(AcceptSpec{Total: 1, Types: []TypeCount{{Type: "never"}}, Delay: Forever})
		finishedNormally <- (err == nil)
	})
	id, err := vm.Initiate("victim", OnCluster(1))
	if err != nil {
		t.Fatal(err)
	}
	<-entered
	if err := vm.Kill(id); err != nil {
		t.Fatal(err)
	}
	if err := vm.WaitTask(id); err != nil {
		t.Fatal(err)
	}
	select {
	case <-finishedNormally:
		t.Fatal("killed task ran to completion")
	default:
	}
	// Killing an unknown task and a controller both fail.
	if err := vm.Kill(TaskID{Cluster: 9, Slot: 9, Unique: 9}); err == nil {
		t.Fatal("killing unknown task should fail")
	}
	ctrl := vm.RunningTasks()[0]
	if !ctrl.Controller {
		t.Fatalf("expected a controller first, got %+v", ctrl)
	}
	if err := vm.Kill(ctrl.ID); err == nil {
		t.Fatal("killing a controller should fail")
	}
}

func TestTimeLimitKillsTasks(t *testing.T) {
	cfg := config.Simple(1, 2)
	cfg.TimeLimit = 150 * time.Millisecond
	vm := newTestVM(t, cfg, Options{})
	vm.Register("runaway", func(t *Task) {
		_, _ = t.Accept(AcceptSpec{Total: 1, Types: []TypeCount{{Type: "never"}}, Delay: Forever})
	})
	id, err := vm.Initiate("runaway", OnCluster(1))
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() { vm.WaitTask(id); close(done) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("time limit did not terminate the runaway task")
	}
}

func TestShutdownStopsEverything(t *testing.T) {
	vm, err := NewVM(config.Simple(2, 2), Options{AcceptTimeout: 2 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	vm.Register("sleeper", func(t *Task) {
		_, _ = t.Accept(AcceptSpec{Total: 1, Types: []TypeCount{{Type: "never"}}, Delay: Forever})
	})
	if _, err := vm.Initiate("sleeper", Any()); err != nil {
		t.Fatal(err)
	}
	vm.Shutdown()
	if got := len(vm.RunningTasks()); got != 0 {
		t.Fatalf("%d tasks still registered after shutdown", got)
	}
	if _, err := vm.Initiate("sleeper", Any()); err == nil {
		t.Fatal("initiate after shutdown should fail")
	}
	// Shutdown must be idempotent.
	vm.Shutdown()
	// System tables must have been released.
	if u := vm.Machine().Shared().Usage(); u.TableUsed != 0 {
		t.Fatalf("system tables not released: %d bytes", u.TableUsed)
	}
	st := vm.Kernel().Stats()
	if st.Live != 0 {
		t.Fatalf("%d kernel processes still live after shutdown", st.Live)
	}
}

func TestViewsAndFigure1(t *testing.T) {
	vm := newTestVM(t, config.Section9Example(), Options{})
	vm.Register("worker", func(t *Task) {
		_, _ = t.Accept(AcceptSpec{Total: 1, Types: []TypeCount{{Type: "go"}}, Delay: 500 * time.Millisecond})
	})
	id, err := vm.Initiate("worker", OnCluster(3))
	if err != nil {
		t.Fatal(err)
	}

	var fig bytes.Buffer
	vm.RenderFigure1(&fig)
	figStr := fig.String()
	for _, want := range []string{
		"PISCES 2 VIRTUAL MACHINE ORGANIZATION",
		"CLUSTER 1 (primary PE 3)",
		"CLUSTER 4 (primary PE 6)",
		"Task controller",
		"User controller",
		"<not in use>",
		"Message-passing network",
	} {
		if !strings.Contains(figStr, want) {
			t.Errorf("figure 1 rendering missing %q", want)
		}
	}

	var dump bytes.Buffer
	vm.DumpState(&dump)
	dumpStr := dump.String()
	for _, want := range []string{"system state dump", "clusters:", "running tasks:", "PE loading:", "shared memory:", "worker"} {
		if !strings.Contains(dumpStr, want) {
			t.Errorf("state dump missing %q", want)
		}
	}

	loads := vm.PELoading()
	if len(loads) != 20 {
		t.Fatalf("PE loading rows = %d, want 20", len(loads))
	}
	if !loads[0].Unix || loads[2].Unix {
		t.Error("Unix flags wrong in PE loading")
	}
	if loads[6].MaxMultiprog != 8 {
		t.Errorf("PE 7 max multiprogramming = %d, want 8", loads[6].MaxMultiprog)
	}

	if err := vm.WaitTask(id); err != nil {
		t.Fatal(err)
	}
}

func TestSystemStorageMatchesSection13(t *testing.T) {
	vm := newTestVM(t, config.Section9Example(), Options{})
	s := vm.SystemStorage()
	if s.LocalPercent >= 2.5 {
		t.Errorf("system local memory share = %.2f%%, paper reports < 2.5%%", s.LocalPercent)
	}
	if s.TablePercent >= 0.3 {
		t.Errorf("system table share = %.3f%%, paper reports < 0.3%%", s.TablePercent)
	}
	if s.TableBytes <= 0 {
		t.Error("table bytes not accounted")
	}
	// The used PEs really carry the local-memory charge.
	for _, pe := range vm.Configuration().UsedPEs() {
		used, _, _ := vm.Machine().PE(pe).LocalStats()
		if used < s.SystemLocalBytesPerPE {
			t.Errorf("PE %d local used = %d, want >= %d", pe, used, s.SystemLocalBytesPerPE)
		}
	}
}

func TestTraceEventsFromConfiguration(t *testing.T) {
	sink := &trace.MemorySink{}
	cfg := config.Simple(1, 2)
	cfg.TraceEvents = []string{"TASK-INIT", "TASK-TERM", "MSG-SEND", "MSG-ACCEPT"}
	vm := newTestVM(t, cfg, Options{TraceSinks: []trace.Sink{sink}})
	vm.Register("traced", func(t *Task) {
		_ = t.SendSelf("note", Int(1))
		_, _ = t.AcceptOne("note")
	})
	if _, err := vm.Run("traced", OnCluster(1)); err != nil {
		t.Fatal(err)
	}
	a := trace.Analyze(sink.Events())
	if a.CountByKind[trace.TaskInit] == 0 || a.CountByKind[trace.TaskTerm] == 0 {
		t.Errorf("task lifecycle events missing: %+v", a.CountByKind)
	}
	if a.MessagesSent == 0 || a.MessagesAccepted == 0 {
		t.Errorf("message events missing: %+v", a.CountByKind)
	}
	if a.CountByKind[trace.Lock] != 0 {
		t.Error("lock events should not appear; they were not enabled")
	}
}

func TestSendFromUserAndQueueViews(t *testing.T) {
	vm := newTestVM(t, config.Simple(1, 2), Options{})
	entered := make(chan TaskID, 1)
	proceed := make(chan struct{})
	got := make(chan int64, 1)
	vm.Register("receiver", func(t *Task) {
		entered <- t.ID()
		<-proceed
		m, err := t.AcceptOne("poke")
		if err != nil {
			panic(err)
		}
		v, _ := AsInt(m.Arg(0))
		got <- v
	})
	id, err := vm.Initiate("receiver", OnCluster(1))
	if err != nil {
		t.Fatal(err)
	}
	<-entered
	if err := vm.SendFromUser(id, "poke", Int(42)); err != nil {
		t.Fatal(err)
	}
	if err := vm.SendFromUser(id, "stale", Int(1)); err != nil {
		t.Fatal(err)
	}

	q, err := vm.MessageQueue(id)
	if err != nil {
		t.Fatal(err)
	}
	if len(q) != 2 || q[0].Type != "poke" || q[1].Type != "stale" {
		t.Fatalf("queue view = %+v", q)
	}
	if q[0].Sender != vm.UserControllerID() {
		t.Fatalf("queued sender = %s, want user controller", q[0].Sender)
	}
	if n, err := vm.DeleteMessages(id, "stale"); err != nil || n != 1 {
		t.Fatalf("DeleteMessages = %d, %v", n, err)
	}
	close(proceed)
	if v := <-got; v != 42 {
		t.Fatalf("receiver got %d, want 42", v)
	}
	vm.WaitIdle()
	if _, err := vm.MessageQueue(TaskID{Cluster: 5}); err == nil {
		t.Fatal("MessageQueue of unknown task should fail")
	}
	if _, err := vm.DeleteMessages(TaskID{Cluster: 5}, ""); err == nil {
		t.Fatal("DeleteMessages of unknown task should fail")
	}
}
