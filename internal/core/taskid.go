// Package core implements the PISCES 2 virtual machine and run-time library —
// the paper's primary contribution (Sections 4-8 and 11).  It provides:
//
//   - the clustered virtual machine: a set of clusters, each offering a finite
//     set of slots in which tasks run, with a task controller per cluster, a
//     user controller for terminal communication, and a file controller for
//     file-resident arrays;
//   - dynamic task initiation ("ON <cluster> INITIATE <tasktype>(<args>)")
//     with CLUSTER/ANY/OTHER/SAME placement, mediated by the task controllers;
//   - asynchronous message passing ("TO <taskid> SEND <msgtype>(<args>)"),
//     broadcast, in-queues, and the ACCEPT statement with per-type counts,
//     ALL, DELAY timeouts, and the signal/handler distinction;
//   - forces: FORCESPLIT, SHARED COMMON, LOCK variables, BARRIER and CRITICAL
//     statements, PRESCHED and SELFSCHED loops, and PARSEG parallel segments;
//   - windows: generalized pointers to rectangular subregions of arrays owned
//     by another task or by the file controller;
//   - the execution-environment views (running tasks, message queues, PE
//     loading, system state dump) and the tracing hooks of Section 12.
//
// Tasks are Go functions registered per tasktype; each running task is an
// MMOS process bound to its cluster's primary PE, so the slot-bounded
// multiprogramming and the programmer-controlled mapping of the virtual
// machine onto the hardware behave as on the FLEX/32.
package core

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/msgcodec"
)

// TaskID identifies a task.  "The taskid consists of <cluster number, slot
// number, unique number> where the unique number distinguishes tasks that
// have run at different times in the same slot" (Section 6).  TaskIDs are
// ordinary data values: they can be stored in variables, passed as message
// arguments, and compared.
type TaskID struct {
	Cluster int
	Slot    int
	Unique  int
}

// NilTask is the zero TaskID; no real task has it.
var NilTask TaskID

// IsNil reports whether the TaskID is the zero value.
func (t TaskID) IsNil() bool { return t == NilTask }

// less orders taskids by (cluster, slot, unique).  The run-time sorts task
// sets with it wherever map iteration order could otherwise leak into
// observable behaviour (broadcast delivery, shutdown teardown), which must
// stay reproducible under the deterministic backend.
func (t TaskID) less(o TaskID) bool {
	if t.Cluster != o.Cluster {
		return t.Cluster < o.Cluster
	}
	if t.Slot != o.Slot {
		return t.Slot < o.Slot
	}
	return t.Unique < o.Unique
}

// String renders the taskid as "cluster.slot.unique".
func (t TaskID) String() string {
	return fmt.Sprintf("%d.%d.%d", t.Cluster, t.Slot, t.Unique)
}

// ParseTaskID parses the "cluster.slot.unique" form produced by String.
func ParseTaskID(s string) (TaskID, error) {
	parts := strings.Split(s, ".")
	if len(parts) != 3 {
		return NilTask, fmt.Errorf("core: malformed taskid %q", s)
	}
	var vals [3]int
	for i, p := range parts {
		v, err := strconv.Atoi(p)
		if err != nil {
			return NilTask, fmt.Errorf("core: malformed taskid %q: %w", s, err)
		}
		vals[i] = v
	}
	return TaskID{Cluster: vals[0], Slot: vals[1], Unique: vals[2]}, nil
}

// codecValue converts the TaskID to its wire representation.
func (t TaskID) codecValue() msgcodec.TaskIDValue {
	return msgcodec.TaskIDValue{Cluster: int32(t.Cluster), Slot: int32(t.Slot), Unique: int32(t.Unique)}
}

// taskIDFromCodec converts a wire representation back to a TaskID.
func taskIDFromCodec(v msgcodec.TaskIDValue) TaskID {
	return TaskID{Cluster: int(v.Cluster), Slot: int(v.Slot), Unique: int(v.Unique)}
}
