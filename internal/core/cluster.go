package core

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/backend"
	"repro/internal/config"
	"repro/internal/flex"
	"repro/internal/memory"
	"repro/internal/mmos"
	"repro/internal/trace"
)

// slotState is what occupies one slot of a cluster.
type slotState struct {
	rec *taskRec // nil when the slot is free
}

// taskRec is the run-time's record of one task (user task or controller).
// The proc pointer and the kill flag are atomics: every run-time entry point
// a task makes (Charge, Send, Accept, ...) reads both, so mutexing them
// would put two lock round trips on the message hot path.
type taskRec struct {
	id           TaskID
	tasktype     string
	parent       TaskID
	cluster      *clusterRT
	slot         int
	queue        *inQueue
	wake         backend.Event // pulsed on message arrival and on kill
	done         backend.Gate  // opened when the task has terminated
	isController bool
	localBytes   int

	proc   atomic.Pointer[mmos.Proc]
	killed atomic.Bool

	// HA-mode state (zero-cost otherwise; see ha.go).  initArgs retains the
	// INITIATE argument list so a checkpoint can respawn the task; haSeq
	// numbers the task's outbound sends for duplicate suppression; failover
	// marks a kill performed by FailClusters, whose termination path must keep
	// the done gate and waitgroup bookkeeping suspended for Restore; exited
	// opens when the termination path has fully run (slot freed, task
	// unregistered), which — unlike done — failover does not suspend.
	initArgs []Value
	haSeq    atomic.Uint64
	failover atomic.Bool
	exited   backend.Gate
	// deathSeq, on a restored incarnation, is the send sequence number the
	// previous incarnation had reached when it died (recorded by finishTask's
	// failover path).  A re-executed send numbered at or below it already
	// happened in the first life, so a missing receiver is not an error — it
	// consumed the original and exited.  Written before the task spawns, read
	// only by the task itself.
	deathSeq uint64
}

// newTaskRecParts builds the wake event, queue, and done gate a task record
// shares.
func newTaskRecParts(b backend.Backend) (backend.Event, *inQueue, backend.Gate) {
	wake := b.NewEvent()
	return wake, newInQueue(wake), b.NewGate()
}

func (r *taskRec) setProc(p *mmos.Proc) { r.proc.Store(p) }

func (r *taskRec) getProc() *mmos.Proc { return r.proc.Load() }

// kill marks the task killed and wakes it if it is blocked in an ACCEPT.
// The wake event has one-deep memory, so a kill delivered while the task is
// running is seen at its next checkKilled or ACCEPT wait.
func (r *taskRec) kill() {
	if !r.killed.Swap(true) {
		r.wake.Pulse()
	}
}

func (r *taskRec) isKilled() bool { return r.killed.Load() }

// pendingInit is an initiation request waiting for a free slot: "If no slots
// are available in the cluster, the task controller will hold the initiate
// request until another task terminates" (Section 6).
type pendingInit struct {
	tasktype string
	parent   TaskID
	args     []Value
	reply    *initReply
	// key identifies the request for HA duplicate suppression: a replayed
	// parent re-issues its INITIATEs with the same send sequence numbers, and
	// the controller must answer with the already-assigned child id instead of
	// starting a second task.  key.seq 0 means unsequenced (non-HA, or an
	// execution-environment request), never deduplicated.
	key initKey
	// forced, when non-zero, is the taskid this request MUST produce: a
	// recovery replay re-creates a post-checkpoint task under the id its
	// first life was assigned (the id the parent already holds).  Set from
	// the cluster's directed map; requires forced.Slot to be free.
	forced TaskID
}

// clusterRT is the run-time structure of one virtual-machine cluster.
type clusterRT struct {
	vm  *VM
	cfg config.Cluster

	primary     *flex.PE
	secondaries []*flex.PE

	// heap is this cluster's shard of the shared-memory message heap.
	// Intra-cluster message traffic allocates and frees exclusively on it, so
	// senders in different clusters never contend on one allocator lock.
	heap *memory.Allocator
	// router holds this cluster's inbound cross-cluster lanes, keyed by
	// source cluster number: each lane receives wire-encoded bytes from one
	// cluster and decodes them into the shard.  Nil on single-cluster
	// machines, where every send is intra-cluster; read-only after boot.
	router map[int]*clusterRouter

	controllerID TaskID
	terminal     bool // hosts the user and file controllers

	mu      sync.Mutex
	slots   []slotState // index 0 .. reserved-1: controllers; then user slots
	userLo  int         // index of the first user slot
	pending []pendingInit
	// initMap (HA mode only) maps initiation-request keys to the child task
	// they produced, so replayed INITIATEs are answered, not re-run.
	initMap map[initKey]TaskID
	// directed (HA recovery only) maps initiation-request keys to the taskid
	// the request was answered with before a failure: a task created AFTER
	// the last checkpoint is not in the restored state, but the transport
	// observed its id in the initiate reply and plans its re-creation here
	// (PlanRestoredInit) before replaying the retained request frame, so the
	// parent's stored id stays valid.
	directed map[initKey]TaskID
	// frozen parks new task starts in pending: set between FailClusters and
	// Restore so respawned tasks get their recorded slots' worth of capacity
	// before live requests compete for it.
	frozen bool
}

func newClusterRT(vm *VM, cfg config.Cluster, terminal bool) (*clusterRT, error) {
	primary := vm.machine.PE(cfg.PrimaryPE)
	if primary == nil {
		return nil, fmt.Errorf("%w: cluster %d primary PE %d", ErrNoSuchCluster, cfg.Number, cfg.PrimaryPE)
	}
	rt := &clusterRT{vm: vm, cfg: cfg, primary: primary, terminal: terminal}
	for _, pe := range cfg.SecondaryPEs {
		p := vm.machine.PE(pe)
		if p == nil {
			return nil, fmt.Errorf("core: cluster %d secondary PE %d does not exist", cfg.Number, pe)
		}
		rt.secondaries = append(rt.secondaries, p)
	}
	rt.userLo = reservedSlots(terminal)
	rt.slots = make([]slotState, rt.userLo+cfg.Slots)
	if vm.ha {
		rt.initMap = make(map[initKey]TaskID)
	}
	return rt, nil
}

// Number returns the cluster number.
func (c *clusterRT) Number() int { return c.cfg.Number }

// forceSize returns the number of members a FORCESPLIT in this cluster
// produces.
func (c *clusterRT) forceSize() int { return 1 + len(c.secondaries) }

// freeSlots returns the number of user slots currently unoccupied.
func (c *clusterRT) freeSlots() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for i := c.userLo; i < len(c.slots); i++ {
		if c.slots[i].rec == nil {
			n++
		}
	}
	return n
}

// occupiedSlots returns the records occupying slots, keyed by slot index.
func (c *clusterRT) occupiedSlots() map[int]*taskRec {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[int]*taskRec)
	for i, s := range c.slots {
		if s.rec != nil {
			out[i] = s.rec
		}
	}
	return out
}

// pendingCount returns the number of initiate requests waiting for a slot.
func (c *clusterRT) pendingCount() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.pending)
}

// placeController installs a controller task record in a reserved slot and
// returns the slot index used.
func (c *clusterRT) placeController(rec *taskRec) (int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for i := 0; i < c.userLo; i++ {
		if c.slots[i].rec == nil {
			c.slots[i].rec = rec
			return i, nil
		}
	}
	return 0, fmt.Errorf("core: cluster %d has no free controller slot", c.cfg.Number)
}

// request handles one initiation request: start the task immediately if a
// user slot is free, otherwise queue the request until a task terminates.
func (c *clusterRT) request(req pendingInit) error {
	// A request whose parent was failed by FailClusters and not yet restored
	// (it was in flight — a transport delay line, the controller's in-queue —
	// when the failure hit) must not hold a live reply: the dead parent's
	// InitiateWait has to unblock so the failure can complete, and the
	// restored parent will re-issue the request under the same key and
	// install its own reply.
	if req.reply != nil && c.vm.haParentFailed(req.parent) {
		req.reply.deliver(NilTask)
		req.reply = nil
	}
	c.mu.Lock()
	if c.initMap != nil && req.key.seq != 0 {
		if id, ok := c.initMap[req.key]; ok {
			running := id.Slot >= 0 && id.Slot < len(c.slots) &&
				c.slots[id.Slot].rec != nil && c.slots[id.Slot].rec.id == id
			if running || !c.vm.hasDeadSeq(id) {
				// A replayed duplicate of an INITIATE the controller already
				// served, where the child is still alive — or died long enough
				// ago that its effects predate every restorable checkpoint:
				// answer with the assigned id instead of starting a second
				// task.
				reply := req.reply
				c.mu.Unlock()
				reply.deliver(id)
				return nil
			}
			// The child died recently (after the last surviving checkpoint
			// cut), so a recovery may have lost its effects: re-create it
			// under its original identity.  Its re-executed sends carry the
			// first life's sequence numbers, so receivers that already got
			// them drop the duplicates and receivers that exited are not
			// errors (deathSeq suppression).
			if c.directed == nil {
				c.directed = make(map[initKey]TaskID)
			}
			c.directed[req.key] = id
		}
		for i := range c.pending {
			if c.pending[i].key == req.key {
				// Duplicate of a request still waiting for a slot (the original
				// came from a checkpoint, carrying no live reply): adopt the
				// replayed requester's reply.
				c.pending[i].reply = req.reply
				c.mu.Unlock()
				return nil
			}
		}
	}
	if c.directed != nil && req.key.seq != 0 {
		if id, ok := c.directed[req.key]; ok {
			// A planned re-creation: the task must come back under its original
			// id, so it can only start in its original slot.  If a restored
			// task still occupies that slot (it did at the checkpoint and has
			// not replayed its exit yet), the request waits in pending.
			if !c.frozen && id.Slot >= c.userLo && id.Slot < len(c.slots) && c.slots[id.Slot].rec == nil {
				delete(c.directed, req.key)
				req.forced = id
				c.slots[id.Slot].rec = reservedMarker
				c.mu.Unlock()
				return c.startTask(id.Slot, req)
			}
			c.pending = append(c.pending, req)
			c.mu.Unlock()
			return nil
		}
	}
	slot := -1
	if !c.frozen {
		slot = c.findFreeUserSlotLocked()
	}
	if slot < 0 {
		c.pending = append(c.pending, req)
		c.mu.Unlock()
		return nil
	}
	// Reserve the slot before releasing the lock; startTask fills it in.
	c.slots[slot].rec = reservedMarker
	c.mu.Unlock()
	return c.startTask(slot, req)
}

// reservedMarker occupies a slot between reservation and task start.
var reservedMarker = &taskRec{}

// takePendingLocked removes and returns the first pending request that can
// start now, together with its reserved slot (nil, -1 when nothing can).
// Directed requests (planned re-creations, see PlanRestoredInit) can only
// take their recorded slot, so one whose slot is still occupied is skipped
// without blocking others; undirected requests start strictly in FIFO order.
// Caller holds c.mu.
func (c *clusterRT) takePendingLocked() (*pendingInit, int) {
	if c.frozen {
		return nil, -1
	}
	noFree := false
	for i := 0; i < len(c.pending); i++ {
		req := c.pending[i]
		slot := -1
		if req.forced != NilTask {
			// The entry already names its task's original identity (restored
			// post-checkpoint request): only its original slot will do.
			if req.forced.Slot < c.userLo || req.forced.Slot >= len(c.slots) || c.slots[req.forced.Slot].rec != nil {
				continue
			}
			slot = req.forced.Slot
		} else if c.directed != nil && req.key.seq != 0 {
			if id, ok := c.directed[req.key]; ok {
				if id.Slot < c.userLo || id.Slot >= len(c.slots) || c.slots[id.Slot].rec != nil {
					continue
				}
				delete(c.directed, req.key)
				req.forced = id
				slot = id.Slot
			}
		}
		if slot < 0 {
			if noFree {
				continue
			}
			slot = c.findFreeUserSlotLocked()
			if slot < 0 {
				noFree = true
				continue
			}
		}
		c.pending = append(c.pending[:i], c.pending[i+1:]...)
		c.slots[slot].rec = reservedMarker
		return &req, slot
	}
	return nil, -1
}

func (c *clusterRT) findFreeUserSlotLocked() int {
	for i := c.userLo; i < len(c.slots); i++ {
		if c.slots[i].rec == nil {
			return i
		}
	}
	return -1
}

// startTask spawns the task's process in the given (already reserved) slot.
func (c *clusterRT) startTask(slot int, req pendingInit) error {
	vm := c.vm
	if vm.terminated() {
		c.clearSlot(slot)
		req.reply.deliver(NilTask)
		return ErrVMTerminated
	}
	tt, ok := vm.taskType(req.tasktype)
	if !ok {
		c.clearSlot(slot)
		req.reply.deliver(NilTask)
		return fmt.Errorf("%w: %q", ErrUnknownTaskType, req.tasktype)
	}
	// Only user tasks pass through here (controllers boot via
	// startController), so the tenant's MaxTasks quota gates exactly the
	// spawns it should.  Directed re-creations are exempt: a failover
	// re-spawn continues a life that was already admitted.  The refusal is
	// delivered before the violation is recorded so a waiting initiator
	// gets its answer before the fail-stop kill sweep reaches it.
	if req.forced == NilTask {
		if le := vm.taskLimitExceeded(); le != nil {
			c.clearSlot(slot)
			req.reply.deliver(NilTask)
			vm.recordLimit(le)
			return le
		}
	}
	id := req.forced
	if id == NilTask {
		id = TaskID{Cluster: c.cfg.Number, Slot: slot, Unique: vm.nextUnique()}
	}
	rec := &taskRec{
		id:         id,
		tasktype:   tt.Name,
		parent:     req.parent,
		cluster:    c,
		slot:       slot,
		localBytes: tt.LocalBytes,
	}
	var inheritedDone backend.Gate
	if req.forced != NilTask {
		// A directed re-creation continues a killed task's life: inherit the
		// point its sends had reached so re-executed deliveries stay
		// droppable, and — when the first life was a failover victim — its
		// parked done gate, so WaitTask callers and the user-task waitgroup
		// never observe the gap.
		rec.deathSeq = vm.takeDeadSeq(id)
		inheritedDone = vm.takeDoneGate(id)
	}
	rec.wake, rec.queue, rec.done = newTaskRecParts(vm.backend)
	if inheritedDone != nil {
		rec.done = inheritedDone
	}
	if vm.ha {
		rec.initArgs = req.args
		rec.exited = vm.backend.NewGate()
		rec.queue.ha = newTaskHA(true)
	}
	c.mu.Lock()
	c.slots[slot].rec = rec
	// Record the initiation before the reply can be delivered, so a replayed
	// duplicate of this request arriving later is answered from the map.
	if c.initMap != nil && req.key.seq != 0 {
		c.initMap[req.key] = id
	}
	c.mu.Unlock()
	vm.registerTask(rec)
	if inheritedDone == nil {
		// An inherited gate means the failed life's waitgroup registration is
		// still outstanding; this life's exit balances it.
		vm.userTasks.Add(1)
	}
	vm.initiated.Add(1)

	body := func(p *mmos.Proc) {
		rec.setProc(p)
		p.Charge(costTaskInit)
		if vm.tracing(trace.TaskInit) {
			vm.record(trace.TaskInit, id, req.parent, c.primary, "type="+tt.Name)
		}
		req.reply.deliver(id)
		ctx := newTask(vm, rec, req.args)
		defer vm.finishTask(rec, ctx)
		tt.Body(ctx)
	}
	_, err := vm.kernel.Spawn(c.primary, tt.Name+"/"+id.String(), tt.LocalBytes, body)
	if err != nil {
		// Could not create the process (local memory exhausted): undo.
		vm.unregisterTask(id)
		if inheritedDone == nil {
			vm.userTasks.Done()
		}
		c.mu.Lock()
		c.slots[slot].rec = nil
		if c.initMap != nil && req.key.seq != 0 {
			delete(c.initMap, req.key)
		}
		c.mu.Unlock()
		req.reply.deliver(NilTask)
		return fmt.Errorf("core: starting task %s: %w", tt.Name, err)
	}
	return nil
}

func (c *clusterRT) clearSlot(slot int) {
	c.mu.Lock()
	c.slots[slot].rec = nil
	c.mu.Unlock()
}

// finishTask is the common termination path for user tasks: it recovers from
// kill panics and user panics, recovers queued message storage, frees the
// slot, and starts a pending initiation if one is waiting.
func (vm *VM) finishTask(rec *taskRec, ctx *Task) {
	c := rec.cluster

	r := recover()
	info := "normal"
	switch r.(type) {
	case nil:
	case killSentinel:
		info = "killed"
	default:
		info = fmt.Sprintf("panic: %v", r)
		vm.userPrintf("task %s (%s) failed: %v\n", rec.id, rec.tasktype, r)
	}

	if p := rec.getProc(); p != nil {
		p.Charge(costTaskTerm)
	}
	vm.record(trace.TaskTerm, rec.id, NilTask, c.primary, info)

	// Recover shared-memory storage of unaccepted messages and of any arrays
	// the task still owns.
	for _, m := range rec.queue.close() {
		vm.releaseMessage(m)
		recycleMessage(m)
	}
	vm.arrays.dropOwner(rec.id, vm)

	vm.unregisterTask(rec.id)

	// A failover kill (FailClusters) keeps the completion bookkeeping
	// suspended: Restore hands the same done gate to the task's next
	// incarnation, so WaitTask/WaitIdle callers never observe the failure.
	failover := rec.failover.Load()
	if vm.ha {
		// Record how far the task's sends got: if a recovery replay re-creates
		// it (a failover victim, or a task whose whole life ran after the last
		// checkpoint and whose INITIATE is re-delivered), the new incarnation
		// re-executes those sends, and any numbered at or below this already
		// reached (possibly since-exited) receivers.
		vm.recordDeadSeq(rec.id, rec.haSeq.Load())
	}
	if !failover {
		vm.completed.Add(1)
		rec.done.Open()
	}

	// Free the slot and start a pending request if one is waiting.  In the
	// FLEX implementation the task controller performed this bookkeeping; the
	// slot table lives in shared memory, so the terminating task's run-time
	// updates it directly here and the controller remains responsible only
	// for fielding new INITIATE requests.
	c.mu.Lock()
	c.slots[rec.slot].rec = nil
	next, nextSlot := c.takePendingLocked()
	c.mu.Unlock()
	if next != nil {
		if err := c.startTask(nextSlot, *next); err != nil {
			vm.userPrintf("pisces: deferred initiate of %s failed: %v\n", next.tasktype, err)
		}
	}

	if !failover {
		vm.userTasks.Done()
	}
	if rec.exited != nil {
		rec.exited.Open()
	}
}

// userPrintf writes a line to the user terminal output, if configured.  It
// is the single funnel for all user-visible terminal traffic, which makes it
// the enforcement point for the tenant's OutputBytes quota: once the cap is
// crossed the write (and every later one) is dropped, the violation recorded.
func (vm *VM) userPrintf(format string, args ...any) {
	if vm.opts.UserOutput == nil {
		return
	}
	s := fmt.Sprintf(format, args...)
	if !vm.chargeOutput(len(s)) {
		return
	}
	fmt.Fprint(vm.opts.UserOutput, s)
}

// systemPrintf writes to the user terminal without charging the tenant's
// output quota — the "your run was terminated" notice must reach a tenant
// whose violation was the output cap itself.
func (vm *VM) systemPrintf(format string, args ...any) {
	if vm.opts.UserOutput != nil {
		fmt.Fprintf(vm.opts.UserOutput, format, args...)
	}
}
