package core

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/backend"
	"repro/internal/config"
	"repro/internal/flex"
	"repro/internal/memory"
	"repro/internal/mmos"
	"repro/internal/trace"
)

// slotState is what occupies one slot of a cluster.
type slotState struct {
	rec *taskRec // nil when the slot is free
}

// taskRec is the run-time's record of one task (user task or controller).
// The proc pointer and the kill flag are atomics: every run-time entry point
// a task makes (Charge, Send, Accept, ...) reads both, so mutexing them
// would put two lock round trips on the message hot path.
type taskRec struct {
	id           TaskID
	tasktype     string
	parent       TaskID
	cluster      *clusterRT
	slot         int
	queue        *inQueue
	wake         backend.Event // pulsed on message arrival and on kill
	done         backend.Gate  // opened when the task has terminated
	isController bool
	localBytes   int

	proc   atomic.Pointer[mmos.Proc]
	killed atomic.Bool
}

// newTaskRecParts builds the wake event, queue, and done gate a task record
// shares.
func newTaskRecParts(b backend.Backend) (backend.Event, *inQueue, backend.Gate) {
	wake := b.NewEvent()
	return wake, newInQueue(wake), b.NewGate()
}

func (r *taskRec) setProc(p *mmos.Proc) { r.proc.Store(p) }

func (r *taskRec) getProc() *mmos.Proc { return r.proc.Load() }

// kill marks the task killed and wakes it if it is blocked in an ACCEPT.
// The wake event has one-deep memory, so a kill delivered while the task is
// running is seen at its next checkKilled or ACCEPT wait.
func (r *taskRec) kill() {
	if !r.killed.Swap(true) {
		r.wake.Pulse()
	}
}

func (r *taskRec) isKilled() bool { return r.killed.Load() }

// pendingInit is an initiation request waiting for a free slot: "If no slots
// are available in the cluster, the task controller will hold the initiate
// request until another task terminates" (Section 6).
type pendingInit struct {
	tasktype string
	parent   TaskID
	args     []Value
	reply    *initReply
}

// clusterRT is the run-time structure of one virtual-machine cluster.
type clusterRT struct {
	vm  *VM
	cfg config.Cluster

	primary     *flex.PE
	secondaries []*flex.PE

	// heap is this cluster's shard of the shared-memory message heap.
	// Intra-cluster message traffic allocates and frees exclusively on it, so
	// senders in different clusters never contend on one allocator lock.
	heap *memory.Allocator
	// router holds this cluster's inbound cross-cluster lanes, keyed by
	// source cluster number: each lane receives wire-encoded bytes from one
	// cluster and decodes them into the shard.  Nil on single-cluster
	// machines, where every send is intra-cluster; read-only after boot.
	router map[int]*clusterRouter

	controllerID TaskID
	terminal     bool // hosts the user and file controllers

	mu      sync.Mutex
	slots   []slotState // index 0 .. reserved-1: controllers; then user slots
	userLo  int         // index of the first user slot
	pending []pendingInit
}

func newClusterRT(vm *VM, cfg config.Cluster, terminal bool) (*clusterRT, error) {
	primary := vm.machine.PE(cfg.PrimaryPE)
	if primary == nil {
		return nil, fmt.Errorf("%w: cluster %d primary PE %d", ErrNoSuchCluster, cfg.Number, cfg.PrimaryPE)
	}
	rt := &clusterRT{vm: vm, cfg: cfg, primary: primary, terminal: terminal}
	for _, pe := range cfg.SecondaryPEs {
		p := vm.machine.PE(pe)
		if p == nil {
			return nil, fmt.Errorf("core: cluster %d secondary PE %d does not exist", cfg.Number, pe)
		}
		rt.secondaries = append(rt.secondaries, p)
	}
	rt.userLo = reservedSlots(terminal)
	rt.slots = make([]slotState, rt.userLo+cfg.Slots)
	return rt, nil
}

// Number returns the cluster number.
func (c *clusterRT) Number() int { return c.cfg.Number }

// forceSize returns the number of members a FORCESPLIT in this cluster
// produces.
func (c *clusterRT) forceSize() int { return 1 + len(c.secondaries) }

// freeSlots returns the number of user slots currently unoccupied.
func (c *clusterRT) freeSlots() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for i := c.userLo; i < len(c.slots); i++ {
		if c.slots[i].rec == nil {
			n++
		}
	}
	return n
}

// occupiedSlots returns the records occupying slots, keyed by slot index.
func (c *clusterRT) occupiedSlots() map[int]*taskRec {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[int]*taskRec)
	for i, s := range c.slots {
		if s.rec != nil {
			out[i] = s.rec
		}
	}
	return out
}

// pendingCount returns the number of initiate requests waiting for a slot.
func (c *clusterRT) pendingCount() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.pending)
}

// placeController installs a controller task record in a reserved slot and
// returns the slot index used.
func (c *clusterRT) placeController(rec *taskRec) (int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for i := 0; i < c.userLo; i++ {
		if c.slots[i].rec == nil {
			c.slots[i].rec = rec
			return i, nil
		}
	}
	return 0, fmt.Errorf("core: cluster %d has no free controller slot", c.cfg.Number)
}

// request handles one initiation request: start the task immediately if a
// user slot is free, otherwise queue the request until a task terminates.
func (c *clusterRT) request(req pendingInit) error {
	c.mu.Lock()
	slot := c.findFreeUserSlotLocked()
	if slot < 0 {
		c.pending = append(c.pending, req)
		c.mu.Unlock()
		return nil
	}
	// Reserve the slot before releasing the lock; startTask fills it in.
	c.slots[slot].rec = reservedMarker
	c.mu.Unlock()
	return c.startTask(slot, req)
}

// reservedMarker occupies a slot between reservation and task start.
var reservedMarker = &taskRec{}

func (c *clusterRT) findFreeUserSlotLocked() int {
	for i := c.userLo; i < len(c.slots); i++ {
		if c.slots[i].rec == nil {
			return i
		}
	}
	return -1
}

// startTask spawns the task's process in the given (already reserved) slot.
func (c *clusterRT) startTask(slot int, req pendingInit) error {
	vm := c.vm
	if vm.terminated() {
		c.clearSlot(slot)
		req.reply.deliver(NilTask)
		return ErrVMTerminated
	}
	tt, ok := vm.taskType(req.tasktype)
	if !ok {
		c.clearSlot(slot)
		req.reply.deliver(NilTask)
		return fmt.Errorf("%w: %q", ErrUnknownTaskType, req.tasktype)
	}
	id := TaskID{Cluster: c.cfg.Number, Slot: slot, Unique: vm.nextUnique()}
	rec := &taskRec{
		id:         id,
		tasktype:   tt.Name,
		parent:     req.parent,
		cluster:    c,
		slot:       slot,
		localBytes: tt.LocalBytes,
	}
	rec.wake, rec.queue, rec.done = newTaskRecParts(vm.backend)
	c.mu.Lock()
	c.slots[slot].rec = rec
	c.mu.Unlock()
	vm.registerTask(rec)
	vm.userTasks.Add(1)
	vm.initiated.Add(1)

	body := func(p *mmos.Proc) {
		rec.setProc(p)
		p.Charge(costTaskInit)
		if vm.tracing(trace.TaskInit) {
			vm.record(trace.TaskInit, id, req.parent, c.primary, "type="+tt.Name)
		}
		req.reply.deliver(id)
		ctx := newTask(vm, rec, req.args)
		defer vm.finishTask(rec, ctx)
		tt.Body(ctx)
	}
	_, err := vm.kernel.Spawn(c.primary, tt.Name+"/"+id.String(), tt.LocalBytes, body)
	if err != nil {
		// Could not create the process (local memory exhausted): undo.
		vm.unregisterTask(id)
		vm.userTasks.Done()
		c.clearSlot(slot)
		req.reply.deliver(NilTask)
		return fmt.Errorf("core: starting task %s: %w", tt.Name, err)
	}
	return nil
}

func (c *clusterRT) clearSlot(slot int) {
	c.mu.Lock()
	c.slots[slot].rec = nil
	c.mu.Unlock()
}

// finishTask is the common termination path for user tasks: it recovers from
// kill panics and user panics, recovers queued message storage, frees the
// slot, and starts a pending initiation if one is waiting.
func (vm *VM) finishTask(rec *taskRec, ctx *Task) {
	c := rec.cluster

	r := recover()
	info := "normal"
	switch r.(type) {
	case nil:
	case killSentinel:
		info = "killed"
	default:
		info = fmt.Sprintf("panic: %v", r)
		vm.userPrintf("task %s (%s) failed: %v\n", rec.id, rec.tasktype, r)
	}

	if p := rec.getProc(); p != nil {
		p.Charge(costTaskTerm)
	}
	vm.record(trace.TaskTerm, rec.id, NilTask, c.primary, info)

	// Recover shared-memory storage of unaccepted messages and of any arrays
	// the task still owns.
	for _, m := range rec.queue.close() {
		vm.releaseMessage(m)
		recycleMessage(m)
	}
	vm.arrays.dropOwner(rec.id, vm)

	vm.unregisterTask(rec.id)
	vm.completed.Add(1)
	rec.done.Open()

	// Free the slot and start a pending request if one is waiting.  In the
	// FLEX implementation the task controller performed this bookkeeping; the
	// slot table lives in shared memory, so the terminating task's run-time
	// updates it directly here and the controller remains responsible only
	// for fielding new INITIATE requests.
	c.mu.Lock()
	c.slots[rec.slot].rec = nil
	nextSlot := -1
	var next *pendingInit
	if len(c.pending) > 0 {
		if slot := c.findFreeUserSlotLocked(); slot >= 0 {
			n := c.pending[0]
			c.pending = c.pending[1:]
			c.slots[slot].rec = reservedMarker
			next, nextSlot = &n, slot
		}
	}
	c.mu.Unlock()
	if next != nil {
		if err := c.startTask(nextSlot, *next); err != nil {
			vm.userPrintf("pisces: deferred initiate of %s failed: %v\n", next.tasktype, err)
		}
	}

	vm.userTasks.Done()
}

// userPrintf writes a line to the user terminal output, if configured.
func (vm *VM) userPrintf(format string, args ...any) {
	if vm.opts.UserOutput != nil {
		fmt.Fprintf(vm.opts.UserOutput, format, args...)
	}
}
