package core

import (
	"sync"
)

// System message types used by the run-time itself.  They use a reserved
// prefix so they cannot collide with applications' message types.
const (
	msgInitRequest = "pisces.initiate"
	msgTaskDone    = "pisces.task-done"
	msgShutdown    = "pisces.shutdown"
	msgUserOutput  = "pisces.user-output"
	msgUserSync    = "pisces.user-sync"

	// anyType is the wildcard message type usable in ACCEPT statements; it
	// matches any message type not listed explicitly (exported as
	// AnyMessage).
	anyType = "*"
)

// Message is one message in a task's in-queue.  "Messages consist of a header
// and a list of packets containing the arguments" (Section 11); the heap
// fields record the shared-memory bytes charged for the message so they can
// be recovered when the message is accepted or deleted.
type Message struct {
	// Type is the message type named in the SEND statement.
	Type string
	// Sender is the taskid of the sending task; "whenever a task receives a
	// message from another task, the taskid of the sender is included as part
	// of the message" (Section 6).
	Sender TaskID
	// Args carries the argument list.
	Args []Value

	// seq orders messages by arrival for the in-queue.
	seq uint64
	// heapOff/heapBytes record the shared-memory heap allocation backing the
	// message while it waits in the in-queue.
	heapOff   int
	heapBytes int
	// replyID, when non-nil, is an internal channel used by the run-time's
	// own initiate requests to return the new task's id to the initiator.
	replyID chan TaskID
	// syncCh, when non-nil, is closed by the user controller once this
	// message has been processed (used by VM.FlushUserOutput).
	syncCh chan struct{}
}

// Arg returns argument i, or a zero Value if out of range.
func (m *Message) Arg(i int) Value {
	if i < 0 || i >= len(m.Args) {
		return Value{}
	}
	return m.Args[i]
}

// NumArgs returns the number of arguments in the message.
func (m *Message) NumArgs() int { return len(m.Args) }

// inQueue is a task's in-queue: "Messages are queued in an in-queue for the
// receiver in order of arrival" (Section 6).
type inQueue struct {
	mu     sync.Mutex
	msgs   []*Message
	wake   chan struct{} // buffered(1): pulsed on every enqueue
	closed bool
}

func newInQueue() *inQueue {
	return &inQueue{wake: make(chan struct{}, 1)}
}

// put appends a message and pulses the wake channel.  It reports false if the
// queue has been closed (receiver terminated).
func (q *inQueue) put(m *Message) bool {
	q.mu.Lock()
	if q.closed {
		q.mu.Unlock()
		return false
	}
	q.msgs = append(q.msgs, m)
	q.mu.Unlock()
	select {
	case q.wake <- struct{}{}:
	default:
	}
	return true
}

// close marks the queue closed and returns the messages still waiting so
// their heap storage can be recovered.
func (q *inQueue) close() []*Message {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.closed = true
	out := q.msgs
	q.msgs = nil
	return out
}

// snapshot returns a copy of the queued messages, oldest first.
func (q *inQueue) snapshot() []*Message {
	q.mu.Lock()
	defer q.mu.Unlock()
	out := make([]*Message, len(q.msgs))
	copy(out, q.msgs)
	return out
}

// len returns the number of waiting messages.
func (q *inQueue) len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.msgs)
}

// takeMatching removes and returns messages that satisfy an ACCEPT statement,
// in arrival order.  perType maps message types to the number still wanted
// (a negative count means "all available", the ALL form); sharedType marks
// types charged against the statement's shared total, of which at most
// sharedBudget messages are taken.  The remaining shared budget is returned.
// perType counts are not modified; the caller updates its own bookkeeping
// from the returned messages.
func (q *inQueue) takeMatching(perType map[string]int, sharedType map[string]bool, sharedBudget int) ([]*Message, int) {
	q.mu.Lock()
	defer q.mu.Unlock()
	taken := make(map[string]int)
	var out []*Message
	var rest []*Message
	for _, m := range q.msgs {
		key := m.Type
		n, listed := perType[key]
		if !listed {
			// The wildcard entry "*" (used by controllers) matches any
			// message type not listed explicitly.
			if wn, ok := perType[anyType]; ok {
				key, n, listed = anyType, wn, true
			}
		}
		take := false
		switch {
		case !listed:
		case n < 0: // ALL: drain everything of this type
			take = true
		case n > taken[key]: // per-type count not yet met
			take = true
		case sharedType[key] && sharedBudget > 0:
			take = true
			sharedBudget--
		}
		if take {
			taken[key]++
			out = append(out, m)
		} else {
			rest = append(rest, m)
		}
	}
	q.msgs = rest
	return out, sharedBudget
}

// removeType removes all messages of the given type ("" removes every
// message) and returns them, for the DELETE MESSAGES operation of the
// execution environment.
func (q *inQueue) removeType(msgType string) []*Message {
	q.mu.Lock()
	defer q.mu.Unlock()
	if msgType == "" {
		out := q.msgs
		q.msgs = nil
		return out
	}
	var removed, rest []*Message
	for _, m := range q.msgs {
		if m.Type == msgType {
			removed = append(removed, m)
		} else {
			rest = append(rest, m)
		}
	}
	q.msgs = rest
	return removed
}
