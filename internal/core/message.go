package core

import (
	"sync"

	"repro/internal/backend"
	"repro/internal/memory"
)

// System message types used by the run-time itself.  They use a reserved
// prefix so they cannot collide with applications' message types.
const (
	msgInitRequest = "pisces.initiate"
	msgTaskDone    = "pisces.task-done"
	msgShutdown    = "pisces.shutdown"
	msgUserOutput  = "pisces.user-output"
	msgUserSync    = "pisces.user-sync"

	// anyType is the wildcard message type usable in ACCEPT statements; it
	// matches any message type not listed explicitly (exported as
	// AnyMessage).
	anyType = "*"
)

// Message is one message in a task's in-queue.  "Messages consist of a header
// and a list of packets containing the arguments" (Section 11); the heap
// fields record the shared-memory bytes charged for the message so they can
// be recovered when the message is accepted or deleted.
type Message struct {
	// Type is the message type named in the SEND statement.
	Type string
	// Sender is the taskid of the sending task; "whenever a task receives a
	// message from another task, the taskid of the sender is included as part
	// of the message" (Section 6).
	Sender TaskID
	// Args carries the argument list.
	Args []Value

	// seq orders messages by arrival for the in-queue.
	seq uint64
	// edge is the causal edge id stamped on routed (cross-cluster or
	// cross-node) messages; 0 for the intra-cluster fast path, which never
	// pays for causal tracing.  The accept path records it in the flight
	// recorder, linking accept events back to their send.
	edge uint64
	// sendSeq is the sender-task send sequence number used for duplicate
	// suppression when the VM runs in HA mode (see ha.go).  Zero means
	// unsequenced: the message came from the execution environment or a
	// non-HA VM and is never deduplicated.
	sendSeq uint64
	// heapOff/heapBytes record the shared-memory heap allocation backing the
	// message while it waits in the in-queue; heapShard is the per-cluster
	// heap shard the allocation was made from (the destination cluster's
	// shard, since the receiver's run-time recovers the storage).
	heapOff   int
	heapBytes int
	heapShard *memory.Allocator
	// reply, when non-nil, returns the new task's id to the initiator of the
	// run-time's own initiate requests.
	reply *initReply
	// sync, when non-nil, is opened by the user controller once this
	// message has been processed (used by VM.FlushUserOutput).
	sync backend.Gate
}

// Arg returns argument i, or a zero Value if out of range.
func (m *Message) Arg(i int) Value {
	if i < 0 || i >= len(m.Args) {
		return Value{}
	}
	return m.Args[i]
}

// NumArgs returns the number of arguments in the message.
func (m *Message) NumArgs() int { return len(m.Args) }

// messagePool recycles Message headers on the send/accept hot path.  Only the
// header is pooled: Args always points at the sender's freshly built argument
// slice, so a recycled header never aliases live argument data.
var messagePool = sync.Pool{New: func() any { return new(Message) }}

// newMessage builds a message from the pool.
func newMessage(msgType string, sender TaskID, args []Value, seq uint64) *Message {
	m := messagePool.Get().(*Message)
	*m = Message{Type: msgType, Sender: sender, Args: args, seq: seq}
	return m
}

// recycleMessage returns a message header to the pool.  The caller must be
// the message's sole owner: messages handed out through AcceptResult must
// never be recycled while the result is still readable.
func recycleMessage(m *Message) {
	*m = Message{}
	messagePool.Put(m)
}

// RecycleAccept returns the messages of an AcceptResult to the run-time's
// message pool and empties the result.  It is an optional optimisation for
// callers that fully own the result (the interpreter's ACCEPT statement, the
// controllers): after the call the result and its messages must not be read
// again.
func (t *Task) RecycleAccept(res *AcceptResult) {
	if res == nil {
		return
	}
	for _, m := range res.Accepted {
		recycleMessage(m)
	}
	res.Accepted = nil
	res.ByType = nil
}

// inQueue is a task's in-queue: "Messages are queued in an in-queue for the
// receiver in order of arrival" (Section 6).  The queue is a power-of-two
// ring buffer so steady-state SEND/ACCEPT traffic neither appends (growing
// the backing array) nor shifts messages.
type inQueue struct {
	mu     sync.Mutex
	buf    []*Message    // ring storage; len(buf) is a power of two
	head   int           // index of the oldest message
	n      int           // number of queued messages
	wake   backend.Event // pulsed on every enqueue (and by kill)
	closed bool
	// ha holds the receiver-side fault-tolerance state (duplicate-suppression
	// floors, the consumption log, replay state).  Nil unless the VM runs in
	// HA mode; all fields are guarded by mu.  See ha.go.
	ha *taskHA
}

// putResult reports what put did with a message.
type putResult int

const (
	// putOK: the message was admitted (queued, or parked in the replay pen).
	putOK putResult = iota
	// putClosed: the receiver has terminated; the caller owns the message.
	putClosed
	// putDup: HA duplicate suppression dropped the message (its send sequence
	// number was at or below the sender's floor); the caller owns the message
	// and should treat the send as already delivered.
	putDup
)

// initialQueueCap pre-sizes the ring so fan-in bursts (several senders per
// receiver, as in E5) do not grow the buffer message by message.
const initialQueueCap = 16

// newInQueue builds a queue waking the given event.  The event is shared
// with the owning task's record: a kill pulses the same event, so one wait in
// ACCEPT covers both arrival and termination.
func newInQueue(wake backend.Event) *inQueue {
	return &inQueue{wake: wake, buf: make([]*Message, initialQueueCap)}
}

// at returns the i-th queued message, oldest first.  Callers hold q.mu.
func (q *inQueue) at(i int) *Message { return q.buf[(q.head+i)&(len(q.buf)-1)] }

// set stores the i-th queued message slot.  Callers hold q.mu.
func (q *inQueue) set(i int, m *Message) { q.buf[(q.head+i)&(len(q.buf)-1)] = m }

// grow doubles the ring, re-linearising the queued messages.  Callers hold
// q.mu.
func (q *inQueue) grow() {
	nb := make([]*Message, 2*len(q.buf))
	for i := 0; i < q.n; i++ {
		nb[i] = q.at(i)
	}
	q.buf = nb
	q.head = 0
}

// put appends a message and pulses the wake channel.  In HA mode it first
// applies the duplicate-suppression floor (a replayed sender regenerates the
// send sequence numbers of messages the receiver has already admitted, and
// retained wire frames may be re-delivered after a recovery; both must be
// dropped exactly once-admitted semantics), and while the receiver itself is
// replaying its consumption log, live messages are parked in the pen so they
// cannot interleave with re-injected history.
func (q *inQueue) put(m *Message) putResult {
	q.mu.Lock()
	if q.closed {
		q.mu.Unlock()
		return putClosed
	}
	if h := q.ha; h != nil {
		if m.sendSeq != 0 {
			floor := h.floors[m.Sender]
			if m.sendSeq <= floor {
				// Duplicate — except initiate requests, which must reach the
				// controller again so the initMap can re-deliver the child id
				// to the (possibly replayed) requester's reply.
				if m.Type != msgInitRequest {
					q.mu.Unlock()
					return putDup
				}
			} else {
				h.floors[m.Sender] = m.sendSeq
			}
		}
		if h.replaying {
			h.pen = append(h.pen, m)
			q.mu.Unlock()
			return putOK
		}
	}
	if q.n == len(q.buf) {
		q.grow()
	}
	q.set(q.n, m)
	q.n++
	q.mu.Unlock()
	q.wake.Pulse()
	return putOK
}

// injectLocked appends a message to the ring bypassing floors and the replay
// pen: the HA replay path re-injects logged history through it.  Callers hold
// q.mu.
func (q *inQueue) injectLocked(m *Message) {
	if q.n == len(q.buf) {
		q.grow()
	}
	q.set(q.n, m)
	q.n++
}

// close marks the queue closed and returns the messages still waiting so
// their heap storage can be recovered (including any parked in the HA replay
// pen).
func (q *inQueue) close() []*Message {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.closed = true
	out := make([]*Message, 0, q.n)
	for i := 0; i < q.n; i++ {
		out = append(out, q.at(i))
		q.set(i, nil)
	}
	q.head, q.n = 0, 0
	if h := q.ha; h != nil && len(h.pen) > 0 {
		out = append(out, h.pen...)
		h.pen = nil
	}
	return out
}

// snapshot copies the queued messages by value, oldest first, for display
// views.  Headers are copied because a queued message may be accepted — and
// its header recycled — while the caller is still reading the snapshot.
func (q *inQueue) snapshot() []Message {
	q.mu.Lock()
	defer q.mu.Unlock()
	out := make([]Message, q.n)
	for i := 0; i < q.n; i++ {
		out[i] = *q.at(i)
	}
	return out
}

// len returns the number of waiting messages.
func (q *inQueue) len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.n
}

// takeMatching removes and returns the messages that satisfy the remaining
// requirements of an ACCEPT statement, in arrival order, appending them to
// out (a scratch buffer the caller reuses).  Matching is driven by the
// acceptState's type-request slice — no per-call allocation — and the
// state's remaining counts and shared budget are updated in place.  Messages
// that are not taken are compacted in place, preserving order.
func (q *inQueue) takeMatching(st *acceptState, out []*Message) []*Message {
	q.mu.Lock()
	defer q.mu.Unlock()
	base := len(out)
	kept := 0
	for i := 0; i < q.n; i++ {
		m := q.at(i)
		r := st.match(m.Type)
		take := false
		if r != nil {
			switch {
			case r.count == All: // ALL: drain everything of this type
				take = true
			case r.count > 0: // per-type count not yet met
				take = true
				r.count--
			case r.shared && st.needTotal > 0:
				take = true
				st.needTotal--
			}
		}
		if take {
			out = append(out, m)
		} else {
			q.set(kept, m)
			kept++
		}
	}
	for i := kept; i < q.n; i++ {
		q.set(i, nil)
	}
	q.n = kept
	// HA consumption log: record what this ACCEPT consumed, in order, so a
	// restored task can replay the exact same intake (see ha.go).
	if h := q.ha; h != nil && len(h.openStack) > 0 {
		rec := h.openStack[len(h.openStack)-1]
		for _, m := range out[base:] {
			rec.msgs = append(rec.msgs, haMsg{Type: m.Type, Sender: m.Sender, SendSeq: m.sendSeq, Args: m.Args})
		}
	}
	return out
}

// removeType removes all messages of the given type ("" removes every
// message) and returns them, for the DELETE MESSAGES operation of the
// execution environment.
func (q *inQueue) removeType(msgType string) []*Message {
	q.mu.Lock()
	defer q.mu.Unlock()
	var removed []*Message
	kept := 0
	for i := 0; i < q.n; i++ {
		m := q.at(i)
		if msgType == "" || m.Type == msgType {
			removed = append(removed, m)
		} else {
			q.set(kept, m)
			kept++
		}
	}
	for i := kept; i < q.n; i++ {
		q.set(i, nil)
	}
	q.n = kept
	return removed
}
