package core

// Simulated cost model.  The FLEX/32 run-time charged real instruction time
// for these operations; the simulator charges deterministic tick counts so
// that experiments measured in simulated time (per-PE tick clocks) are
// reproducible.  The constants are not calibrated to NS32032 instruction
// counts — only their relative magnitudes matter for the experiments, which
// compare configurations and constructs against each other.
const (
	// costTaskInit is charged to the new task's PE when a task is initiated.
	costTaskInit = 50
	// costTaskTerm is charged when a task terminates.
	costTaskTerm = 20
	// costSendHeader is charged to the sender per SEND statement.
	costSendHeader = 10
	// costSendPacket is charged per argument packet moved into shared memory.
	costSendPacket = 2
	// costAcceptMsg is charged to the receiver per accepted message.
	costAcceptMsg = 8
	// costRouteMsg is charged to the destination cluster's router per
	// cross-cluster message, for decoding the wire form into the destination
	// heap shard (plus costSendPacket per packet moved between shards).
	costRouteMsg = 6
	// costAcceptPacket is charged per packet copied out of shared memory.
	costAcceptPacket = 2
	// costLockOp is charged per lock or unlock operation.
	costLockOp = 3
	// costBarrier is charged per member per barrier passage.
	costBarrier = 5
	// costForceSplit is charged to the primary per FORCESPLIT, and
	// costForceMember to each secondary PE for starting a member.
	costForceSplit  = 30
	costForceMember = 15
	// costWindowOp is charged per window create/shrink, and
	// costWindowElement per array element moved by a window read or write.
	costWindowOp      = 6
	costWindowElement = 1
)

// Shared-memory system-table record sizes (bytes).  "A table is maintained
// with entries for each cluster and each slot within each cluster" (Section
// 11); these sizes model those records and drive the Section 13 table-usage
// measurement.
const (
	bytesVMHeader      = 256
	bytesClusterRecord = 128
	bytesSlotRecord    = 96
)

// DefaultSystemLocalBytes is the per-PE local-memory footprint of the PISCES
// system code and data.  The paper reports this as "less than 2.5% of each
// PE's local memory"; 24 KiB of a 1 MiB local memory is 2.3%.  The value is
// configurable through Options for sensitivity studies.
const DefaultSystemLocalBytes = 24 * 1024

// DefaultTaskLocalBytes is the default local-memory charge for one user task
// (program text copy bookkeeping, stack, and task-local data).
const DefaultTaskLocalBytes = 8 * 1024
