package core

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/backend"
	"repro/internal/config"
)

// TestInQueueGrowthAtPowerOfTwoBoundary fills the ring to exactly its
// capacity with a wrapped head — the state where put's n == len(buf) check
// and grow's re-linearisation interact — and checks FIFO order survives the
// doubling.  Regression guard for the PR 2 power-of-two ring buffer.
func TestInQueueGrowthAtPowerOfTwoBoundary(t *testing.T) {
	q := newInQueue(backend.Default().NewEvent())

	// Fill to capacity, drain some so head != 0, then refill so the ring
	// wraps and sits exactly full.
	seq := uint64(0)
	for i := 1; i <= initialQueueCap; i++ {
		seq++
		q.put(mkMsg(fmt.Sprintf("m%d", i), seq))
	}
	st := accState(t, AcceptSpec{Types: []TypeCount{{Type: AnyMessage, Count: 5}}})
	taken := q.takeMatching(st, nil)
	if len(taken) != 5 {
		t.Fatalf("took %d, want 5", len(taken))
	}
	next := 0
	for _, m := range taken {
		next++
		if m.Type != fmt.Sprintf("m%d", next) {
			t.Fatalf("pre-growth order broken: got %s, want m%d", m.Type, next)
		}
	}
	for i := initialQueueCap + 1; i <= initialQueueCap+5; i++ {
		seq++
		q.put(mkMsg(fmt.Sprintf("m%d", i), seq))
	}
	if q.len() != initialQueueCap {
		t.Fatalf("queue holds %d, want exactly capacity %d", q.len(), initialQueueCap)
	}

	// The next put crosses the power-of-two boundary and must grow.
	seq++
	q.put(mkMsg(fmt.Sprintf("m%d", initialQueueCap+6), seq))
	if got := len(q.buf); got != 2*initialQueueCap {
		t.Fatalf("ring grew to %d slots, want %d", got, 2*initialQueueCap)
	}

	// Everything drains in arrival order across the growth.
	st = accState(t, AcceptSpec{Types: []TypeCount{{Type: AnyMessage, Count: All}}})
	for _, m := range q.takeMatching(st, nil) {
		next++
		if m.Type != fmt.Sprintf("m%d", next) {
			t.Fatalf("post-growth order broken: got %s, want m%d", m.Type, next)
		}
	}
	if next != initialQueueCap+6 {
		t.Fatalf("drained %d messages, want %d", next, initialQueueCap+6)
	}
}

// TestMessagePoolRecyclingUnderKill floods receivers from concurrent senders
// and kills the receivers mid-ACCEPT, over several rounds.  It is a
// regression guard for the PR 2 header pooling: the kill path (teardown
// recycling queued headers while senders still run) must neither race (the
// CI race job runs this package with -race) nor lose heap accounting — after
// shutdown the shared-memory message heap must be fully recovered.
func TestMessagePoolRecyclingUnderKill(t *testing.T) {
	const rounds = 5
	const senders = 4

	cfg := config.Simple(2, senders+2)
	vm, err := NewVM(cfg, Options{AcceptTimeout: 30 * time.Second})
	if err != nil {
		t.Fatal(err)
	}

	vm.Register("victim", func(task *Task) {
		// Accept forever; the kill lands mid-ACCEPT with messages queued.
		for {
			res, err := task.Accept(AcceptSpec{
				Total: 1,
				Types: []TypeCount{{Type: AnyMessage}},
				Delay: Forever,
			})
			if err != nil {
				return
			}
			task.RecycleAccept(res)
		}
	})
	var sendersDone sync.WaitGroup
	vm.Register("flooder", func(task *Task) {
		defer sendersDone.Done()
		to := MustID(task.Arg(0))
		for i := 0; i < 200; i++ {
			// The victim dies mid-flood: ErrNoSuchTask (and heap exhaustion,
			// if the victim is slow to drain) are expected outcomes, not
			// failures.  What must hold is the accounting checked below.
			if err := task.Send(to, "blob", Int(int64(i)), Str("payload-payload-payload")); err != nil {
				return
			}
		}
	})

	for round := 0; round < rounds; round++ {
		victim, err := vm.Initiate("victim", OnCluster(1))
		if err != nil {
			t.Fatal(err)
		}
		sendersDone.Add(senders)
		for i := 0; i < senders; i++ {
			if _, err := vm.Initiate("flooder", OnCluster(2), ID(victim)); err != nil {
				t.Fatal(err)
			}
		}
		// Kill the victim while the flood is in flight.
		if err := vm.Kill(victim); err != nil {
			t.Fatal(err)
		}
		sendersDone.Wait()
		if err := vm.WaitTask(victim); err != nil {
			t.Fatal(err)
		}
	}
	vm.WaitIdle()
	vm.Shutdown()

	if inUse := vm.Machine().Shared().Usage().HeapInUse; inUse != 0 {
		t.Fatalf("message heap still holds %d bytes after kills + shutdown (leaked message storage)", inUse)
	}
}
