package core

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/backend"
	"repro/internal/config"
)

// mkMsg builds a test message without touching the heap accounting.
func mkMsg(typ string, seq uint64) *Message {
	return &Message{Type: typ, seq: seq}
}

// accState builds an acceptState for the given spec, failing the test on a
// bad spec.
func accState(t *testing.T, spec AcceptSpec) *acceptState {
	t.Helper()
	st := &acceptState{}
	if err := st.reset(spec); err != nil {
		t.Fatal(err)
	}
	return st
}

// TestInQueueRingWraparound drives the ring buffer through several
// grow/drain cycles and checks arrival order is preserved throughout.
func TestInQueueRingWraparound(t *testing.T) {
	q := newInQueue(backend.Default().NewEvent())
	seq := uint64(0)
	next := 0 // next expected message number on take
	total := 0
	for round := 0; round < 10; round++ {
		// Push more than the initial capacity so the ring grows and wraps.
		for i := 0; i < initialQueueCap+5; i++ {
			seq++
			total++
			if q.put(mkMsg(fmt.Sprintf("m%d", total), seq)) != putOK {
				t.Fatal("put on open queue failed")
			}
		}
		// Drain roughly half, in order.
		take := q.len()/2 + 1
		st := accState(t, AcceptSpec{Types: []TypeCount{{Type: AnyMessage, Count: take}}})
		got := q.takeMatching(st, nil)
		if len(got) != take {
			t.Fatalf("round %d: took %d, want %d", round, len(got), take)
		}
		for _, m := range got {
			next++
			if m.Type != fmt.Sprintf("m%d", next) {
				t.Fatalf("round %d: got %s, want m%d (order broken)", round, m.Type, next)
			}
		}
	}
	// Everything still queued comes out in order through close.
	rest := q.close()
	for _, m := range rest {
		next++
		if m.Type != fmt.Sprintf("m%d", next) {
			t.Fatalf("close: got %s, want m%d", m.Type, next)
		}
	}
	if next != total {
		t.Fatalf("drained %d messages, want %d", next, total)
	}
	if q.put(mkMsg("late", 1)) != putClosed {
		t.Error("put on closed queue succeeded")
	}
}

// TestTakeMatchingSelectivity checks per-type counts, ALL, the shared total,
// and the wildcard against one mixed queue, including that unmatched
// messages stay queued in order.
func TestTakeMatchingSelectivity(t *testing.T) {
	fill := func() *inQueue {
		q := newInQueue(backend.Default().NewEvent())
		for i, ty := range []string{"a", "b", "a", "c", "b", "a"} {
			q.put(mkMsg(ty, uint64(i+1)))
		}
		return q
	}

	// Per-type count: two a's only.
	q := fill()
	st := accState(t, AcceptSpec{Types: []TypeCount{{Type: "a", Count: 2}}})
	got := q.takeMatching(st, nil)
	if len(got) != 2 || got[0].Type != "a" || got[1].Type != "a" {
		t.Fatalf("per-type take = %v", typesOf(got))
	}
	if q.len() != 4 {
		t.Fatalf("queue kept %d, want 4", q.len())
	}
	if !st.satisfied() {
		t.Error("per-type requirement not satisfied after take")
	}

	// ALL drains every b; shared total takes one further c; the wildcard is
	// resolved once, not per message.
	q = fill()
	st = accState(t, AcceptSpec{
		Total: 1,
		Types: []TypeCount{{Type: "b", Count: All}, {Type: "c"}},
	})
	got = q.takeMatching(st, nil)
	if want := []string{"b", "c", "b"}; strings.Join(typesOf(got), ",") != strings.Join(want, ",") {
		t.Fatalf("ALL+shared take = %v, want %v", typesOf(got), want)
	}
	// Wildcard matches the unlisted types.
	q = fill()
	st = accState(t, AcceptSpec{Types: []TypeCount{{Type: "c", Count: 1}, {Type: AnyMessage, Count: All}}})
	got = q.takeMatching(st, nil)
	if len(got) != 6 {
		t.Fatalf("wildcard take = %v, want all 6", typesOf(got))
	}

	// Duplicate type listings are rejected at reset.
	bad := &acceptState{}
	if err := bad.reset(AcceptSpec{Types: []TypeCount{{Type: "x"}, {Type: "x"}}}); err == nil {
		t.Error("duplicate type accepted")
	}
}

func typesOf(ms []*Message) []string {
	out := make([]string, len(ms))
	for i, m := range ms {
		out[i] = m.Type
	}
	return out
}

// TestRemoveTypeCompaction: removing one type keeps the others queued in
// arrival order (ring compaction must not shuffle).
func TestRemoveTypeCompaction(t *testing.T) {
	q := newInQueue(backend.Default().NewEvent())
	for i, ty := range []string{"x", "y", "x", "z", "x", "y"} {
		q.put(mkMsg(ty, uint64(i+1)))
	}
	removed := q.removeType("x")
	if len(removed) != 3 {
		t.Fatalf("removed %d x's, want 3", len(removed))
	}
	want := []string{"y", "z", "y"}
	snap := q.snapshot()
	for i, m := range snap {
		if m.Type != want[i] {
			t.Fatalf("after removeType queue = %v, want %v", snap, want)
		}
	}
	if got := len(q.removeType("")); got != 3 {
		t.Fatalf("removeType(\"\") removed %d, want 3", got)
	}
}

// TestInQueueFanInStress hammers one receiver's in-queue from 8 concurrent
// senders while the receiver ACCEPTs, exercising the ring buffer, the
// slice-based matcher, and the message pool under the race detector (the CI
// race job runs this package with -race).  Per-sender FIFO order — the
// queue's arrival-order guarantee — is asserted for every message.
func TestInQueueFanInStress(t *testing.T) {
	const senders = 8
	const perSender = 100
	const batch = 50

	vm, err := NewVM(config.Simple(2, senders+2), Options{AcceptTimeout: 30 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer vm.Shutdown()

	var mu sync.Mutex
	lastSeq := make([]int64, senders) // per-sender last seen sequence number
	counts := make([]int, senders)
	vm.Register("sink", func(task *Task) {
		got := 0
		for got < senders*perSender {
			want := batch
			if rest := senders*perSender - got; rest < want {
				want = rest
			}
			res, err := task.Accept(AcceptSpec{Types: []TypeCount{{Type: "data", Count: want}}})
			if err != nil {
				t.Errorf("sink accept: %v", err)
				return
			}
			for _, m := range res.Accepted {
				from := MustInt(m.Arg(0))
				seq := MustInt(m.Arg(1))
				mu.Lock()
				if seq <= lastSeq[from] {
					t.Errorf("sender %d: message %d arrived after %d (FIFO broken)", from, seq, lastSeq[from])
				}
				lastSeq[from] = seq
				counts[from]++
				mu.Unlock()
			}
			got += len(res.Accepted)
		}
	})
	vm.Register("pump", func(task *Task) {
		to := MustID(task.Arg(0))
		from := MustInt(task.Arg(1))
		for seq := int64(1); seq <= perSender; seq++ {
			if err := task.Send(to, "data", Int(from), Int(seq)); err != nil {
				t.Errorf("sender %d: %v", from, err)
				return
			}
		}
	})

	sinkID, err := vm.Initiate("sink", OnCluster(1))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < senders; i++ {
		if _, err := vm.Initiate("pump", OnCluster(2), ID(sinkID), Int(int64(i))); err != nil {
			t.Fatal(err)
		}
	}
	vm.WaitIdle()
	for i, n := range counts {
		if n != perSender {
			t.Errorf("sender %d: received %d messages, want %d", i, n, perSender)
		}
	}
}
