package core

import (
	"errors"
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/backend"
	"repro/internal/config"
	"repro/internal/flex"
	"repro/internal/memory"
	"repro/internal/mmos"
	"repro/internal/obs"
	"repro/internal/trace"
)

// Errors returned by the run-time.
var (
	// ErrUnknownTaskType is returned when initiating a tasktype that was
	// never registered.
	ErrUnknownTaskType = errors.New("core: unknown tasktype")
	// ErrNoSuchTask is returned when sending to a taskid that is not running.
	ErrNoSuchTask = errors.New("core: no such task")
	// ErrNoSuchCluster is returned for placements naming a cluster that is
	// not part of the configuration.
	ErrNoSuchCluster = errors.New("core: no such cluster")
	// ErrNoOtherCluster is returned for the OTHER placement when the
	// configuration has a single cluster.
	ErrNoOtherCluster = errors.New("core: no other cluster available")
	// ErrVMTerminated is returned for operations on a VM that has shut down.
	ErrVMTerminated = errors.New("core: virtual machine terminated")
	// ErrHeapExhausted wraps message-heap allocation failures.
	ErrHeapExhausted = errors.New("core: shared-memory message heap exhausted")
	// ErrKilled is reported for tasks terminated by KILL A TASK or by the
	// run's time limit.
	ErrKilled = errors.New("core: task killed")
)

// TaskType is a registered task type: a name and the Go function that serves
// as the Pisces Fortran tasktype body.
type TaskType struct {
	// Name is the tasktype name used in INITIATE statements.
	Name string
	// Body is run for each initiated task of this type.
	Body func(*Task)
	// LocalBytes is the simulated local-memory footprint of one task of this
	// type; 0 uses DefaultTaskLocalBytes.
	LocalBytes int
}

// Options tune the virtual machine.  The zero value gives sensible defaults.
type Options struct {
	// UserOutput receives lines sent "TO USER"; nil discards them.
	UserOutput io.Writer
	// AcceptTimeout is the system-provided timeout used when an ACCEPT
	// statement has no DELAY clause.  Zero means 5 seconds.
	AcceptTimeout time.Duration
	// SystemLocalBytes is the per-PE local-memory footprint of the PISCES
	// system; zero means DefaultSystemLocalBytes.
	SystemLocalBytes int
	// TraceSinks are attached to the trace recorder in addition to any sinks
	// added later through Tracer().
	TraceSinks []trace.Sink
	// Backend selects the scheduling substrate tasks run on.  Nil uses the
	// default goroutine backend; a deterministic backend (internal/sim) makes
	// the whole run reproducible from its seed.  A deterministic VM must be
	// driven from a single goroutine, and a backend must not be shared
	// between VMs.
	Backend backend.Backend
	// Hosted restricts the clusters whose tasks actually run in this process
	// (distributed mode, internal/node).  Nil hosts every configured cluster.
	// The VM still boots the full configuration — controllers of non-hosted
	// clusters run as inert ghosts so taskid assignment stays identical on
	// every node — but traffic for a non-hosted cluster travels through
	// Remote instead of being delivered locally.
	Hosted []int
	// Remote carries cross-cluster messages for clusters this VM does not
	// host.  Required when Hosted excludes a configured cluster.  Transports
	// that need the VM (to deliver inbound frames) are constructed first and
	// bound to it after NewVM returns; nothing routes until tasks run.
	Remote Transport
	// Metrics receives run-time metrics and spans.  Nil creates a private
	// disabled registry, so instrumented paths never nil-check; callers that
	// want the data pass a registry and enable the families they care about.
	// The VM rebinds the registry clock to its backend, so under a
	// deterministic backend all timestamps are virtual time.
	Metrics *obs.Registry
	// HA enables fault tolerance: tasks number their outbound sends, receivers
	// keep duplicate-suppression floors and an ACCEPT consumption log, and the
	// VM exposes Checkpoint/FailClusters/Restore (see ha.go).  Costs a map
	// append per ACCEPT-consumed message, so it is opt-in.
	HA bool
	// Limits is the per-tenant resource policy this VM enforces on its own
	// program: heap bytes, cumulative task count, wall-clock time, terminal
	// output.  The zero value (and any zero field) is unlimited.  A violation
	// fail-stops this VM's user tasks and is reported by LimitViolation; the
	// process — and any sibling VM in a serving daemon — is unaffected.
	Limits Limits
	// InterceptWire routes EVERY cross-cluster message through Remote, even
	// between clusters hosted here.  Fault/latency-injecting transports use
	// it to exercise network schedules under the deterministic backend.
	// Sends to tasks that are not running still fail at the sender
	// (ErrNoSuchTask, as on the direct path), but the destination shard is
	// charged at delivery rather than reserved at send time, so a receiver
	// whose heap fills drops the delayed message instead of failing the
	// sender with ErrHeapExhausted — the one intentional semantic difference
	// of intercepted delivery.
	InterceptWire bool
	// NodeID is this process's node id in a distributed mesh (0 standalone).
	// It seeds the high bits of causal edge ids, so edges generated by
	// different nodes never collide when their traces and flight-recorder
	// dumps are merged.
	NodeID int
	// FlightRecorder, when non-nil, receives a structured event for every
	// routed send, cross-cluster accept, kill and limit violation.  The VM
	// rebinds its clock to the backend, so under a deterministic backend the
	// ring contents are seed-stable.  Nil records nothing (one branch per
	// site).
	FlightRecorder *obs.Recorder
	// FailureSink, when non-nil, is called once with a short reason string
	// the first time this VM fail-stops its tenant (a *LimitError kill
	// sweep).  The serving and CLI layers use it to dump the flight recorder
	// at the moment of failure.
	FailureSink func(reason string)
}

// VM is one booted PISCES 2 virtual machine: a configuration mapped onto a
// simulated FLEX/32, with controllers running and tasktypes registered.
type VM struct {
	machine *flex.Machine
	kernel  *mmos.Kernel
	cfg     *config.Configuration
	opts    Options
	tracer  *trace.Recorder
	backend backend.Backend

	mu        sync.Mutex
	tasktypes map[string]TaskType
	tasks     map[TaskID]*taskRec
	clusters  map[int]*clusterRT
	started   bool
	stopped   bool

	// routers holds the per-cluster cross-cluster message routers in cluster
	// order (empty on single-cluster machines).
	routers []*clusterRouter

	// Distributed-mode state (see transport.go): the hosted cluster set (nil
	// hosts everything), the remote transport for clusters hosted elsewhere,
	// the in-process loopback transport, and the pending-reply table
	// correlating routed initiate requests with their reply frames.  hosted is
	// read lock-free on every routing decision and replaced wholesale (under
	// vm.mu, copy-on-write) when a buddy node adopts a dead peer's clusters.
	hosted         atomic.Pointer[map[int]bool]
	home           int // lowest hosted cluster, resolved once at boot
	remote         Transport
	interceptAll   bool
	loop           *loopback
	pendMu         sync.Mutex
	pendingReplies map[uint64]*initReply
	replySeq       atomic.Uint64

	arrays   *arrayStore
	files    *fileStore
	fileCtrl TaskID
	userCtrl TaskID

	// HA-mode state (ha.go): ha gates every fault-tolerance code path;
	// haDeadSeqs records, per finished or failover-killed task, the send
	// sequence number it had reached at death, so a re-created incarnation can
	// recognise re-executed sends whose delivery already happened (see
	// haSendSuppressed).  haDeadSeqsOld is the previous checkpoint interval's
	// generation; Checkpoint rotates them so the maps stay bounded.  Guarded
	// by haSeqMu, not vm.mu: the maps are consulted on initiate paths that
	// hold a cluster lock.
	haSeqMu       sync.Mutex
	haDeadSeqs    map[TaskID]uint64
	haDeadSeqsOld map[TaskID]uint64
	// haDoneGates carries the done gates of tasks failed by FailClusters
	// across to Restore, which hands them to the respawned incarnations.
	ha          bool
	haDoneGates map[TaskID]backend.Gate

	uniqueCtr  atomic.Int64
	msgSeq     atomic.Uint64
	userTasks  backend.WaitGroup
	tableBytes int

	// Causal edge ids: every routed (cross-cluster or cross-node) message is
	// stamped with edgeBase | edgeSeq so traces and flight-recorder dumps
	// from different nodes merge without collisions.  The intra-cluster fast
	// path is never stamped — it pays nothing.
	edgeBase uint64
	edgeSeq  atomic.Uint64

	timeLimitTimer backend.Timer

	// Per-tenant limit state (limits.go): the shared heap budget attached to
	// every shard, the WallClock timer, cumulative terminal output, and the
	// first recorded violation.
	heapBudget     *memory.Budget
	wallClockTimer backend.Timer
	outputUsed     atomic.Int64
	limitMu        sync.Mutex
	limitErr       *LimitError

	// Observability: the registry plus pre-resolved metric handles, so hot
	// paths pay one atomic mask load when disabled and no map lookups when
	// enabled (see internal/obs).
	om vmObs

	// statistics
	initiated   atomic.Int64
	completed   atomic.Int64
	msgsSent    atomic.Int64
	msgsAccpt   atomic.Int64
	windowOps   atomic.Int64
	windowBytes atomic.Int64
}

// vmObs bundles the observability registry with pre-resolved handles for
// every metric the core bumps on hot paths.  Resolution happens once at
// boot; the handles are plain atomics after that.
type vmObs struct {
	reg          *obs.Registry
	rec          *obs.Recorder  // flight recorder; nil records nothing (Record is nil-safe)
	heapCharges  *obs.Counter   // core.heap.charge: messages charged to a shard
	heapRecovers *obs.Counter   // core.heap.recover: message storage recovered
	heapMsgBytes *obs.Histogram // core.heap.msg.bytes: charged message sizes
	acceptWait   *obs.Histogram // core.accept.wait.ns: time blocked in ACCEPT
	laneQueue    *obs.Histogram // router.lane.queue.ns: enqueue -> drain delivery
	encodeNS     *obs.Histogram // codec.encode.ns: argument packet encode time
	decodeNS     *obs.Histogram // codec.decode.ns: argument packet decode time
}

func (o *vmObs) init(reg *obs.Registry, b backend.Backend) {
	if reg == nil {
		reg = obs.New()
	}
	reg.SetClock(b.Now)
	o.reg = reg
	o.heapCharges = reg.Counter("core.heap.charge")
	o.heapRecovers = reg.Counter("core.heap.recover")
	o.heapMsgBytes = reg.Histogram("core.heap.msg.bytes", "B")
	o.acceptWait = reg.Histogram("core.accept.wait.ns", "ns")
	o.laneQueue = reg.Histogram("router.lane.queue.ns", "ns")
	o.encodeNS = reg.Histogram("codec.encode.ns", "ns")
	o.decodeNS = reg.Histogram("codec.decode.ns", "ns")
}

// Obs returns the VM's observability registry (never nil after boot).
func (vm *VM) Obs() *obs.Registry { return vm.om.reg }

// metricsOn is the hot-path guard: one atomic load.
func (vm *VM) metricsOn() bool { return vm.om.reg.Has(obs.Metrics) }

// spansOn guards span capture the same way.
func (vm *VM) spansOn() bool { return vm.om.reg.Has(obs.Spans) }

// newEdge mints a causal edge id for one routed message: the node id in the
// high 16 bits, a per-VM sequence below.  Edge ids are never zero, so zero
// means "unstamped" everywhere they travel.
func (vm *VM) newEdge() uint64 { return vm.edgeBase | vm.edgeSeq.Add(1) }

// FlightRecorder returns the recorder the VM was booted with, nil if none.
func (vm *VM) FlightRecorder() *obs.Recorder { return vm.om.rec }

// NewVM boots a virtual machine for the given configuration on a fresh
// simulated FLEX/32 with the default hardware description.
func NewVM(cfg *config.Configuration, opts Options) (*VM, error) {
	return NewVMOn(flex.MustNewMachine(flex.DefaultConfig()), cfg, opts)
}

// NewVMOn boots a virtual machine for the given configuration on an existing
// simulated machine.  It validates the configuration, allocates the system
// tables in shared memory, charges the PISCES system's local-memory footprint
// to every PE the configuration uses, and starts the controller tasks.
func NewVMOn(machine *flex.Machine, cfg *config.Configuration, opts Options) (*VM, error) {
	if err := cfg.Validate(machine.Config()); err != nil {
		return nil, err
	}
	if opts.AcceptTimeout <= 0 {
		opts.AcceptTimeout = 5 * time.Second
	}
	if opts.SystemLocalBytes <= 0 {
		opts.SystemLocalBytes = DefaultSystemLocalBytes
	}
	if opts.Backend == nil {
		opts.Backend = backend.Default()
	}
	vm := &VM{
		machine:   machine,
		kernel:    mmos.NewKernelOn(machine, opts.Backend),
		cfg:       cfg.Clone(),
		opts:      opts,
		tracer:    trace.NewRecorder(opts.TraceSinks...),
		backend:   opts.Backend,
		tasktypes: make(map[string]TaskType),
		tasks:     make(map[TaskID]*taskRec),
		clusters:  make(map[int]*clusterRT),
		ha:        opts.HA,
	}
	vm.om.init(opts.Metrics, opts.Backend)
	if opts.FlightRecorder != nil {
		vm.om.rec = opts.FlightRecorder
		// Attach after init: the registry clock is already the backend's, so
		// the recorder inherits virtual time under a deterministic backend.
		vm.om.reg.AttachRecorder(opts.FlightRecorder)
	}
	vm.edgeBase = uint64(opts.NodeID) << 48
	vm.userTasks = vm.backend.NewWaitGroup()
	vm.arrays = newArrayStore()
	vm.files = newFileStore()
	vm.loop = &loopback{vm: vm}
	vm.pendingReplies = make(map[uint64]*initReply)
	vm.remote = opts.Remote
	vm.interceptAll = opts.InterceptWire
	if opts.Hosted != nil {
		hosted := make(map[int]bool, len(opts.Hosted))
		for _, n := range opts.Hosted {
			if cfg.Cluster(n) == nil {
				return nil, fmt.Errorf("%w: hosted cluster %d", ErrNoSuchCluster, n)
			}
			hosted[n] = true
		}
		if len(hosted) == 0 {
			return nil, fmt.Errorf("core: a node must host at least one cluster")
		}
		if len(hosted) < len(cfg.Clusters) && vm.remote == nil {
			return nil, fmt.Errorf("core: clusters hosted elsewhere require a remote transport")
		}
		vm.hosted.Store(&hosted)
	}
	if vm.interceptAll && vm.remote == nil {
		return nil, fmt.Errorf("core: InterceptWire requires a remote transport")
	}

	for _, ev := range cfg.TraceEvents {
		k, err := trace.ParseKind(ev)
		if err != nil {
			return nil, err
		}
		vm.tracer.EnableKind(k, true)
	}

	// System tables: one VM header, one record per cluster, one per slot
	// (including the controller slots).
	tableBytes := bytesVMHeader
	for _, cl := range cfg.Clusters {
		tableBytes += bytesClusterRecord + (cl.Slots+reservedSlots(cl.Number == lowestCluster(cfg)))*bytesSlotRecord
	}
	if err := machine.Shared().AllocTable(tableBytes); err != nil {
		return nil, fmt.Errorf("core: allocating system tables: %w", err)
	}
	vm.tableBytes = tableBytes

	// Charge the PISCES system's code+data to every PE the configuration uses.
	for _, pe := range cfg.UsedPEs() {
		if err := machine.PE(pe).AllocLocal(opts.SystemLocalBytes); err != nil {
			return nil, fmt.Errorf("core: loading PISCES system on PE %d: %w", pe, err)
		}
	}

	// Build the cluster run-time structures.
	for _, cl := range cfg.Clusters {
		rt, err := newClusterRT(vm, cl, cl.Number == lowestCluster(cfg))
		if err != nil {
			return nil, err
		}
		vm.clusters[cl.Number] = rt
	}

	// Shard the message heap per cluster so intra-cluster sends only ever
	// touch their own cluster's allocator lock; cross-cluster traffic moves
	// between shards through the wire routers started below.
	nums := cfg.ClusterNumbers()
	if err := machine.Shared().ShardHeap(len(nums)); err != nil {
		return nil, fmt.Errorf("core: sharding message heap: %w", err)
	}
	for i, n := range nums {
		vm.clusters[n].heap = machine.Shared().HeapShard(i)
	}

	// One tenant budget across every shard: per-cluster isolation bounds what
	// a cluster can hold, the budget bounds what the whole tenant can hold.
	if vm.opts.Limits.HeapBytes > 0 {
		vm.heapBudget = memory.NewBudget(vm.opts.Limits.HeapBytes)
		for _, n := range nums {
			vm.clusters[n].heap.SetBudget(vm.heapBudget)
		}
	}

	// The home cluster (the node's identity in frames sent by the execution
	// environment) is fixed for the VM's lifetime; resolve it once instead of
	// sorting the cluster set on every remote-routing decision.
	vm.home = nums[0]
	for _, n := range nums {
		if vm.hosts(n) {
			vm.home = n
			break
		}
	}

	// Controllers first, routers second: if controller start-up fails the VM
	// is abandoned, and no router lane goroutines have been spawned yet to
	// leak.  Nothing routes until NewVMOn has returned — boot performs no
	// cross-cluster sends.
	if err := vm.startControllers(); err != nil {
		return nil, err
	}
	if err := vm.startRouters(); err != nil {
		return nil, err
	}
	vm.mu.Lock()
	vm.started = true
	vm.mu.Unlock()

	if cfg.TimeLimit > 0 {
		vm.timeLimitTimer = vm.backend.AfterFunc(cfg.TimeLimit, vm.timeLimitExpired)
	}
	if vm.opts.Limits.WallClock > 0 {
		vm.wallClockTimer = vm.backend.AfterFunc(vm.opts.Limits.WallClock, vm.wallClockExpired)
	}
	return vm, nil
}

// reservedSlots returns the number of controller slots in a cluster: every
// cluster has a task controller; the terminal cluster additionally hosts the
// user controller and the file controller.
func reservedSlots(terminalCluster bool) int {
	if terminalCluster {
		return 3
	}
	return 1
}

func lowestCluster(cfg *config.Configuration) int {
	nums := cfg.ClusterNumbers()
	return nums[0]
}

// Machine returns the simulated FLEX/32 the VM runs on.
func (vm *VM) Machine() *flex.Machine { return vm.machine }

// Kernel returns the MMOS kernel.
func (vm *VM) Kernel() *mmos.Kernel { return vm.kernel }

// Backend returns the scheduling backend the VM runs on; transports use it
// so their timers and waits stay scheduler-visible under -sim.
func (vm *VM) Backend() backend.Backend { return vm.backend }

// Configuration returns (a copy of) the configuration the VM was booted with.
func (vm *VM) Configuration() *config.Configuration { return vm.cfg.Clone() }

// Tracer returns the VM's trace recorder, for enabling events and attaching
// sinks (the CHANGE TRACE OPTIONS menu entry).
func (vm *VM) Tracer() *trace.Recorder { return vm.tracer }

// UserControllerID returns the taskid of the user controller; it is the
// parent of tasks initiated from the execution environment.
func (vm *VM) UserControllerID() TaskID { return vm.userCtrl }

// FileControllerID returns the taskid of the file controller, the owner of
// file-resident arrays.
func (vm *VM) FileControllerID() TaskID { return vm.fileCtrl }

// Register makes a tasktype available for initiation.  Registering a name
// twice replaces the previous definition; registration after tasks are
// running is allowed (the preprocessor emits all registrations up front).
func (vm *VM) Register(name string, body func(*Task)) {
	vm.RegisterType(TaskType{Name: name, Body: body})
}

// RegisterType registers a fully specified tasktype.
func (vm *VM) RegisterType(tt TaskType) {
	if tt.LocalBytes <= 0 {
		tt.LocalBytes = DefaultTaskLocalBytes
	}
	vm.mu.Lock()
	vm.tasktypes[tt.Name] = tt
	vm.mu.Unlock()
}

// taskType looks up a registered tasktype.
func (vm *VM) taskType(name string) (TaskType, bool) {
	vm.mu.Lock()
	defer vm.mu.Unlock()
	tt, ok := vm.tasktypes[name]
	return tt, ok
}

// TaskTypes returns the registered tasktype names, sorted.
func (vm *VM) TaskTypes() []string {
	vm.mu.Lock()
	defer vm.mu.Unlock()
	out := make([]string, 0, len(vm.tasktypes))
	for name := range vm.tasktypes {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// nextUnique returns the next unique number for a taskid.
func (vm *VM) nextUnique() int { return int(vm.uniqueCtr.Add(1)) }

// registerTask records a running task so messages can be routed to it.
func (vm *VM) registerTask(rec *taskRec) {
	vm.mu.Lock()
	vm.tasks[rec.id] = rec
	vm.mu.Unlock()
}

// unregisterTask removes a task from the routing table.
func (vm *VM) unregisterTask(id TaskID) {
	vm.mu.Lock()
	delete(vm.tasks, id)
	vm.mu.Unlock()
}

// lookupTask finds the record of a running task.
func (vm *VM) lookupTask(id TaskID) (*taskRec, bool) {
	vm.mu.Lock()
	defer vm.mu.Unlock()
	rec, ok := vm.tasks[id]
	return rec, ok
}

// cluster returns the run-time structure for cluster n.
func (vm *VM) cluster(n int) (*clusterRT, bool) {
	vm.mu.Lock()
	defer vm.mu.Unlock()
	cl, ok := vm.clusters[n]
	return cl, ok
}

// clusterNumbers returns the configured cluster numbers in ascending order.
func (vm *VM) clusterNumbers() []int {
	vm.mu.Lock()
	defer vm.mu.Unlock()
	out := make([]int, 0, len(vm.clusters))
	for n := range vm.clusters {
		out = append(out, n)
	}
	sort.Ints(out)
	return out
}

// terminated reports whether the VM has been shut down.
func (vm *VM) terminated() bool {
	vm.mu.Lock()
	defer vm.mu.Unlock()
	return vm.stopped
}

// Initiate requests initiation of a top-level task from the execution
// environment (menu option "INITIATE A TASK").  The request is sent to the
// task controller of the placed cluster exactly as a task-issued INITIATE
// would be; the call then waits until a slot is assigned and returns the new
// task's id.  The new task's parent is the user controller, so its replies
// "TO PARENT" reach the user terminal.
func (vm *VM) Initiate(tasktype string, placement Placement, args ...Value) (TaskID, error) {
	if vm.terminated() {
		return NilTask, ErrVMTerminated
	}
	if _, ok := vm.taskType(tasktype); !ok {
		return NilTask, fmt.Errorf("%w: %q", ErrUnknownTaskType, tasktype)
	}
	cl, err := vm.placeCluster(placement, 0)
	if err != nil {
		return NilTask, err
	}
	reply := newInitReply(vm.backend)
	msg := newMessage(msgInitRequest, vm.userCtrl,
		append([]Value{Str(tasktype), ID(vm.userCtrl), Ints(nil)}, args...), vm.msgSeq.Add(1))
	msg.reply = reply
	if err := vm.deliverSystem(nil, cl.controllerID, msg); err != nil {
		return NilTask, err
	}
	id := reply.wait()
	if id.IsNil() {
		return NilTask, ErrVMTerminated
	}
	return id, nil
}

// initReply carries a new task's id back to whoever requested its initiation:
// VM.Initiate and Task.InitiateWait wait on the gate, the task controller (or
// a failure path) delivers exactly once.  It replaces the raw reply channel so
// the wait is scheduler-visible under a deterministic backend.
type initReply struct {
	gate backend.Gate
	id   TaskID
	// fn, when set, replaces the gate: the reply is forwarded (a reply frame
	// back to the node that sent a routed initiate request) instead of waking
	// a local waiter.
	fn func(TaskID)
	// edge is the causal edge id of the routed initiate request this reply
	// answers (0 when unstamped); the requesting node ends the flow on it
	// when the reply lands, closing the cross-node round trip in the trace.
	edge uint64
}

func newInitReply(b backend.Backend) *initReply { return &initReply{gate: b.NewGate()} }

// deliver publishes the assigned id (NilTask on failure) and wakes the
// waiter.  A nil receiver (fire-and-forget INITIATE) is a no-op.
func (r *initReply) deliver(id TaskID) {
	if r == nil {
		return
	}
	if r.fn != nil {
		r.fn(id)
		return
	}
	r.id = id
	r.gate.Open()
}

// wait blocks until the reply has been delivered and returns the id.
func (r *initReply) wait() TaskID {
	r.gate.Wait()
	return r.id
}

// Deterministic reports whether the VM runs on a deterministic scheduling
// backend.  Run-time layers use it to insert extra cooperative scheduling
// points (the interpreter yields between statements) that would only cost
// time under the goroutine backend.
func (vm *VM) Deterministic() bool { return vm.backend.Deterministic() }

// Run initiates a top-level task, waits for it to terminate, and returns its
// id.  It is the convenience used by examples and experiments.
func (vm *VM) Run(tasktype string, placement Placement, args ...Value) (TaskID, error) {
	id, err := vm.Initiate(tasktype, placement, args...)
	if err != nil {
		return NilTask, err
	}
	return id, vm.WaitTask(id)
}

// WaitTask blocks until the task with the given id has terminated.  Waiting
// on an id that is not running returns immediately.
func (vm *VM) WaitTask(id TaskID) error {
	rec, ok := vm.lookupTask(id)
	if !ok {
		return nil
	}
	rec.done.Wait()
	return nil
}

// WaitIdle blocks until every user task initiated so far has terminated.
func (vm *VM) WaitIdle() { vm.userTasks.Wait() }

// FlushUserOutput blocks until the user controller has processed every
// message queued before the call, so terminal output sent with Println or
// SendUser has been written to the configured output.  It is a convenience
// for examples and experiments that interleave their own printing with task
// output.
func (vm *VM) FlushUserOutput() {
	rec, ok := vm.lookupTask(vm.userCtrl)
	if !ok {
		return
	}
	// Land in-flight cross-cluster traffic first: a task's terminal output
	// may still be wire bytes in a router queue (or a fault-injecting
	// transport's delay line), and "queued before the call" includes those.
	vm.flushTransports()
	gate := vm.backend.NewGate()
	msg := newMessage(msgUserSync, vm.userCtrl, nil, vm.msgSeq.Add(1))
	msg.sync = gate
	if rec.queue.put(msg) != putOK {
		recycleMessage(msg)
		return
	}
	gate.Wait()
}

// placeCluster resolves a Placement to a cluster, given the initiating
// cluster (0 when the initiator is the execution environment).
func (vm *VM) placeCluster(p Placement, from int) (*clusterRT, error) {
	nums := vm.clusterNumbers()
	switch p.kind {
	case placeCluster:
		cl, ok := vm.cluster(p.cluster)
		if !ok {
			return nil, fmt.Errorf("%w: %d", ErrNoSuchCluster, p.cluster)
		}
		return cl, nil
	case placeSame:
		if from == 0 {
			from = nums[0]
		}
		cl, ok := vm.cluster(from)
		if !ok {
			return nil, fmt.Errorf("%w: %d", ErrNoSuchCluster, from)
		}
		return cl, nil
	case placeOther:
		best := vm.leastLoaded(nums, from)
		if best == nil {
			return nil, ErrNoOtherCluster
		}
		return best, nil
	default: // placeAny
		best := vm.leastLoaded(nums, 0)
		if best == nil {
			return nil, ErrNoSuchCluster
		}
		return best, nil
	}
}

// leastLoaded returns the cluster with the most free user slots, excluding
// cluster `exclude` (0 excludes nothing).  Ties go to the lowest number.
func (vm *VM) leastLoaded(nums []int, exclude int) *clusterRT {
	var best *clusterRT
	bestFree := -1
	for _, n := range nums {
		if n == exclude {
			continue
		}
		cl, ok := vm.cluster(n)
		if !ok {
			continue
		}
		if free := cl.freeSlots(); free > bestFree {
			best, bestFree = cl, free
		}
	}
	return best
}

// deliverSystem delivers a run-time message to the destination task, charging
// the destination cluster's heap shard for it like any other message.  from
// is the sending task's cluster, or nil when the sender is the execution
// environment; a cross-cluster system message travels through the wire codec
// and the destination's router exactly like user traffic.  On failure (and on
// the routed path, where the router rebuilds the message on the destination
// side) the message header is recycled; the caller must not reuse it.
func (vm *VM) deliverSystem(from *clusterRT, dest TaskID, msg *Message) error {
	if vm.wireRemote(from, dest.Cluster) {
		// Intercepted traffic to a locally hosted task keeps the direct
		// path's ErrNoSuchTask contract (see Task.sendInternal).
		if vm.hosts(dest.Cluster) {
			if _, ok := vm.lookupTask(dest); !ok {
				recycleMessage(msg)
				return fmt.Errorf("%w: %s", ErrNoSuchTask, dest)
			}
		}
		msgType, args, sender, sendSeq, reply := msg.Type, msg.Args, msg.Sender, msg.sendSeq, msg.reply
		recycleMessage(msg)
		_, err := vm.routeRemote(from, dest, msgType, sender, args, sendSeq, reply)
		return err
	}
	rec, ok := vm.lookupTask(dest)
	if !ok {
		recycleMessage(msg)
		return fmt.Errorf("%w: %s", ErrNoSuchTask, dest)
	}
	if from != nil && rec.cluster != from {
		msgType, args, sender, seq, sendSeq, reply := msg.Type, msg.Args, msg.Sender, msg.seq, msg.sendSeq, msg.reply
		recycleMessage(msg)
		_, err := vm.routeMessage(from, rec, msgType, sender, args, seq, sendSeq, reply)
		return err
	}
	if err := vm.chargeMessageOn(rec.cluster.heap, msg); err != nil {
		recycleMessage(msg)
		return err
	}
	switch rec.queue.put(msg) {
	case putOK:
	case putDup:
		// HA duplicate: already delivered in a previous life; the send
		// succeeds from the caller's point of view.
		vm.releaseMessage(msg)
		recycleMessage(msg)
	case putClosed:
		vm.releaseMessage(msg)
		recycleMessage(msg)
		return fmt.Errorf("%w: %s", ErrNoSuchTask, dest)
	}
	return nil
}

// chargeMessageOn allocates the message's shared-memory footprint on the
// given heap shard (always the destination cluster's: the receiver's run-time
// recovers the storage when the message is accepted).
func (vm *VM) chargeMessageOn(heap *memory.Allocator, msg *Message) error {
	size, err := encodedSize(msg.Args)
	if err != nil {
		return err
	}
	off, err := heap.Alloc(size)
	if err != nil {
		return vm.heapErr(err)
	}
	msg.heapOff = off
	msg.heapBytes = size
	msg.heapShard = heap
	if vm.metricsOn() {
		vm.om.heapCharges.Inc()
		vm.om.heapMsgBytes.Observe(int64(size))
	}
	return nil
}

// releaseMessage frees the message's shared-memory footprint from the shard
// it was charged to.
func (vm *VM) releaseMessage(msg *Message) {
	if msg.heapBytes > 0 && msg.heapShard != nil {
		_ = msg.heapShard.Free(msg.heapOff)
		msg.heapBytes = 0
		msg.heapShard = nil
		if vm.metricsOn() {
			vm.om.heapRecovers.Inc()
		}
	}
}

// tracing reports whether events of the given kind are currently recorded.
// Hot paths check it before building an event (taskid rendering, Sprintf
// info strings), so disabled tracing costs one atomic load per event.
func (vm *VM) tracing(kind trace.Kind) bool { return vm.tracer.Wants(kind) }

// record emits a trace event on behalf of a task, stamping it with the task's
// PE clock.  Callers on hot paths guard with vm.tracing(kind) so the event's
// info string is never formatted when the kind is disabled.
func (vm *VM) record(kind trace.Kind, task TaskID, other TaskID, pe *flex.PE, info string) {
	if !vm.tracing(kind) {
		return
	}
	ev := trace.Event{Kind: kind, Task: task.String(), Info: info}
	if !other.IsNil() {
		ev.Other = other.String()
	}
	if pe != nil {
		ev.PE = pe.ID()
		ev.Ticks = pe.Ticks()
	}
	vm.tracer.Record(ev)
}

// timeLimitExpired enforces the configuration's execution time limit by
// killing every user task still running.
func (vm *VM) timeLimitExpired() {
	for _, info := range vm.RunningTasks() {
		if !info.Controller {
			_ = vm.Kill(info.ID)
		}
	}
}

// Shutdown terminates the run (menu option "TERMINATE THE RUN"): every user
// task is killed, controllers are stopped, and the system tables are
// released.  The VM cannot be used afterwards.
func (vm *VM) Shutdown() {
	vm.mu.Lock()
	if vm.stopped {
		vm.mu.Unlock()
		return
	}
	vm.stopped = true
	vm.mu.Unlock()

	if vm.timeLimitTimer != nil {
		vm.timeLimitTimer.Stop()
	}
	if vm.wallClockTimer != nil {
		vm.wallClockTimer.Stop()
	}

	// Snapshot every task record so the teardown below can also wait for the
	// underlying MMOS processes to exit.  The snapshot is sorted so kills,
	// shutdown messages, and their trace events happen in the same order
	// every run — map iteration order must not leak into deterministic runs.
	vm.mu.Lock()
	var all []*taskRec
	for _, rec := range vm.tasks {
		all = append(all, rec)
	}
	vm.mu.Unlock()
	sort.Slice(all, func(i, j int) bool { return all[i].id.less(all[j].id) })

	// Kill user tasks and wait for them to drain.
	for _, rec := range all {
		if !rec.isController {
			rec.kill()
		}
	}
	vm.userTasks.Wait()

	// Unblock anyone still waiting on a routed initiate reply (possibly a
	// request another node will never answer now).
	vm.failPendingReplies()

	// Land whatever a latency-injecting remote transport still holds, then
	// stop the in-process routers: no user task can send any more, and
	// everything still in flight must land (terminal output especially) or
	// be recovered before the controllers are told to exit — a print
	// delivered after the user controller's shutdown message would be lost.
	if vm.remote != nil {
		vm.remote.Flush()
	}
	for _, r := range vm.routers {
		r.stop()
	}

	// Stop the controllers.
	for _, rec := range all {
		if !rec.isController {
			continue
		}
		msg := newMessage(msgShutdown, vm.userCtrl, nil, vm.msgSeq.Add(1))
		// Shutdown must succeed even if the message heap is exhausted, so the
		// message is delivered without charging the heap.
		if rec.queue.put(msg) != putOK {
			recycleMessage(msg)
		}
	}
	for _, rec := range all {
		if rec.isController {
			rec.done.Wait()
		}
	}
	// Wait for the MMOS processes themselves so the kernel is quiescent when
	// Shutdown returns.
	for _, rec := range all {
		if p := rec.getProc(); p != nil {
			p.WaitExited()
		}
	}
	vm.machine.Shared().FreeTable(vm.tableBytes)
}

// Stats summarises run-time activity.
type Stats struct {
	TasksInitiated   int64
	TasksCompleted   int64
	MessagesSent     int64
	MessagesAccepted int64
}

// Stats returns run-time counters.
func (vm *VM) Stats() Stats {
	return Stats{
		TasksInitiated:   vm.initiated.Load(),
		TasksCompleted:   vm.completed.Load(),
		MessagesSent:     vm.msgsSent.Load(),
		MessagesAccepted: vm.msgsAccpt.Load(),
	}
}

// Placement is the <cluster> part of an INITIATE statement.
type Placement struct {
	kind    placementKind
	cluster int
}

type placementKind int

const (
	placeAny placementKind = iota
	placeCluster
	placeOther
	placeSame
)

// OnCluster places the new task on the given cluster number
// ("CLUSTER <number>").
func OnCluster(n int) Placement { return Placement{kind: placeCluster, cluster: n} }

// Any lets the system choose a cluster ("ANY").
func Any() Placement { return Placement{kind: placeAny} }

// Other places the new task on a cluster different from the initiator's
// ("OTHER").
func Other() Placement { return Placement{kind: placeOther} }

// Same places the new task on the initiator's cluster ("SAME").
func Same() Placement { return Placement{kind: placeSame} }

// String renders the placement in Pisces Fortran syntax.
func (p Placement) String() string {
	switch p.kind {
	case placeCluster:
		return fmt.Sprintf("CLUSTER %d", p.cluster)
	case placeOther:
		return "OTHER"
	case placeSame:
		return "SAME"
	default:
		return "ANY"
	}
}
