package core

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/flex"
	"repro/internal/msgcodec"
)

// TaskInfo describes one running task for the DISPLAY RUNNING TASKS view.
type TaskInfo struct {
	ID         TaskID
	TaskType   string
	Parent     TaskID
	Cluster    int
	Slot       int
	PE         int
	State      string
	QueueLen   int
	Controller bool
}

// RunningTasks returns the tasks currently occupying slots, controllers
// included, ordered by cluster then slot.
func (vm *VM) RunningTasks() []TaskInfo {
	vm.mu.Lock()
	recs := make([]*taskRec, 0, len(vm.tasks))
	for _, rec := range vm.tasks {
		recs = append(recs, rec)
	}
	vm.mu.Unlock()

	out := make([]TaskInfo, 0, len(recs))
	for _, rec := range recs {
		info := TaskInfo{
			ID:         rec.id,
			TaskType:   rec.tasktype,
			Parent:     rec.parent,
			Cluster:    rec.cluster.cfg.Number,
			Slot:       rec.slot,
			PE:         rec.cluster.primary.ID(),
			QueueLen:   rec.queue.len(),
			Controller: rec.isController,
		}
		if p := rec.getProc(); p != nil {
			info.State = p.State().String()
		} else {
			info.State = "STARTING"
		}
		out = append(out, info)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Cluster != out[j].Cluster {
			return out[i].Cluster < out[j].Cluster
		}
		return out[i].Slot < out[j].Slot
	})
	return out
}

// Kill terminates a task (menu option "KILL A TASK").  The task unwinds at
// its next run-time call or as soon as it wakes from an ACCEPT wait;
// controllers cannot be killed.
func (vm *VM) Kill(id TaskID) error {
	rec, ok := vm.lookupTask(id)
	if !ok {
		return fmt.Errorf("%w: %s", ErrNoSuchTask, id)
	}
	if rec.isController {
		return fmt.Errorf("core: %s is a controller task and cannot be killed", id)
	}
	vm.om.rec.Record(id.Cluster, msgcodec.EvKill, 0, int64(id.Cluster), int64(id.Slot))
	rec.kill()
	return nil
}

// SendFromUser sends a message to a task on behalf of the user at the
// terminal (menu option "SEND A MESSAGE").  The sender appears as the user
// controller.
func (vm *VM) SendFromUser(to TaskID, msgType string, args ...Value) error {
	if vm.terminated() {
		return ErrVMTerminated
	}
	msg := newMessage(msgType, vm.userCtrl, args, vm.msgSeq.Add(1))
	if err := vm.deliverSystem(nil, to, msg); err != nil {
		return err
	}
	vm.msgsSent.Add(1)
	return nil
}

// QueuedMessage describes one waiting message for the DISPLAY MESSAGE QUEUE
// view.
type QueuedMessage struct {
	Type   string
	Sender TaskID
	Args   int
	Bytes  int
}

// MessageQueue returns the messages waiting in a task's in-queue, oldest
// first.
func (vm *VM) MessageQueue(id TaskID) ([]QueuedMessage, error) {
	rec, ok := vm.lookupTask(id)
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNoSuchTask, id)
	}
	msgs := rec.queue.snapshot()
	out := make([]QueuedMessage, len(msgs))
	for i := range msgs {
		m := &msgs[i]
		out[i] = QueuedMessage{Type: m.Type, Sender: m.Sender, Args: len(m.Args), Bytes: m.heapBytes}
	}
	return out, nil
}

// DeleteMessages removes waiting messages of the given type from a task's
// in-queue (menu option "DELETE MESSAGES"); an empty type removes every
// waiting message.  It returns the number of messages removed; their
// shared-memory storage is recovered.
func (vm *VM) DeleteMessages(id TaskID, msgType string) (int, error) {
	rec, ok := vm.lookupTask(id)
	if !ok {
		return 0, fmt.Errorf("%w: %s", ErrNoSuchTask, id)
	}
	removed := rec.queue.removeType(msgType)
	for _, m := range removed {
		vm.releaseMessage(m)
		recycleMessage(m)
	}
	return len(removed), nil
}

// PELoad describes one processor for the DISPLAY PE LOADING view.
type PELoad struct {
	PE           int
	Unix         bool
	BoundProcs   int
	Ticks        int64
	LocalUsed    int
	LocalHigh    int
	LocalTotal   int
	MaxMultiprog int // configuration bound from Section 9's arithmetic
}

// PELoading returns per-PE loading information.
func (vm *VM) PELoading() []PELoad {
	out := make([]PELoad, 0, vm.machine.NumPE())
	for n := 1; n <= vm.machine.NumPE(); n++ {
		pe := vm.machine.PE(n)
		used, high, total := pe.LocalStats()
		out = append(out, PELoad{
			PE:           n,
			Unix:         pe.IsUnix(),
			BoundProcs:   pe.BoundProcs(),
			Ticks:        pe.Ticks(),
			LocalUsed:    used,
			LocalHigh:    high,
			LocalTotal:   total,
			MaxMultiprog: vm.cfg.MaxMultiprogramming(n),
		})
	}
	return out
}

// ClusterInfo describes one cluster for displays and the Figure 1 rendering.
type ClusterInfo struct {
	Number        int
	PrimaryPE     int
	SecondaryPEs  []int
	Slots         int // user slots
	ReservedSlots int // controller slots preceding the user slots
	FreeSlots     int
	Pending       int
	Occupants     map[int]string // slot index -> tasktype (controllers included)
}

// Clusters returns per-cluster occupancy information.
func (vm *VM) Clusters() []ClusterInfo {
	var out []ClusterInfo
	for _, n := range vm.clusterNumbers() {
		cl, _ := vm.cluster(n)
		occ := make(map[int]string)
		for slot, rec := range cl.occupiedSlots() {
			if rec == reservedMarker {
				occ[slot] = "<starting>"
			} else {
				occ[slot] = rec.tasktype
			}
		}
		out = append(out, ClusterInfo{
			Number:        n,
			PrimaryPE:     cl.cfg.PrimaryPE,
			SecondaryPEs:  append([]int(nil), cl.cfg.SecondaryPEs...),
			Slots:         cl.cfg.Slots,
			ReservedSlots: cl.userLo,
			FreeSlots:     cl.freeSlots(),
			Pending:       cl.pendingCount(),
			Occupants:     occ,
		})
	}
	return out
}

// DumpState writes the DUMP SYSTEM STATE view: clusters, slots, running
// tasks, message queues, PE loading, and shared-memory usage.
func (vm *VM) DumpState(w io.Writer) {
	fmt.Fprintf(w, "PISCES 2 system state dump\n")
	fmt.Fprintf(w, "configuration: %s", vm.cfg.String())

	fmt.Fprintf(w, "\nclusters:\n")
	for _, ci := range vm.Clusters() {
		fmt.Fprintf(w, "  cluster %d  primary PE %d  user slots %d (%d free, %d pending)\n",
			ci.Number, ci.PrimaryPE, ci.Slots, ci.FreeSlots, ci.Pending)
		slots := make([]int, 0, len(ci.Occupants))
		for s := range ci.Occupants {
			slots = append(slots, s)
		}
		sort.Ints(slots)
		for _, s := range slots {
			fmt.Fprintf(w, "    slot %-2d %s\n", s, ci.Occupants[s])
		}
	}

	fmt.Fprintf(w, "\nrunning tasks:\n")
	for _, ti := range vm.RunningTasks() {
		kind := "user"
		if ti.Controller {
			kind = "controller"
		}
		fmt.Fprintf(w, "  %-12s %-26s %-10s pe=%-2d state=%-8s queued=%d\n",
			ti.ID, ti.TaskType, kind, ti.PE, ti.State, ti.QueueLen)
	}

	fmt.Fprintf(w, "\nPE loading:\n")
	for _, pl := range vm.PELoading() {
		if pl.Unix {
			fmt.Fprintf(w, "  PE %-2d unix front-end\n", pl.PE)
			continue
		}
		if pl.BoundProcs == 0 && pl.Ticks == 0 && pl.MaxMultiprog == 0 {
			continue
		}
		fmt.Fprintf(w, "  PE %-2d procs=%-2d ticks=%-10d local=%d/%d max-multiprog=%d\n",
			pl.PE, pl.BoundProcs, pl.Ticks, pl.LocalUsed, pl.LocalTotal, pl.MaxMultiprog)
	}

	u := vm.machine.Shared().Usage()
	fmt.Fprintf(w, "\nshared memory: tables %d/%d bytes (%.3f%%), heap %d in use (high %d), common %d/%d\n",
		u.TableUsed, u.TableTotal, u.TablePercent(), u.HeapInUse, u.HeapHighWater, u.CommonUsed, u.CommonTotal)

	st := vm.Stats()
	fmt.Fprintf(w, "activity: %d tasks initiated, %d completed, %d messages sent, %d accepted\n",
		st.TasksInitiated, st.TasksCompleted, st.MessagesSent, st.MessagesAccepted)
}

// RenderFigure1 renders the virtual-machine organisation diagram of Figure 1
// of the paper from the live system state: each cluster with its slots and
// their occupants (task controller, user controller, user tasks, free slots),
// joined by the message-passing network.
func (vm *VM) RenderFigure1(w io.Writer) {
	fmt.Fprintln(w, "PISCES 2 VIRTUAL MACHINE ORGANIZATION")
	fmt.Fprintln(w, strings.Repeat("=", 60))
	for _, ci := range vm.Clusters() {
		fmt.Fprintf(w, "CLUSTER %d (primary PE %d)\n", ci.Number, ci.PrimaryPE)
		fmt.Fprintln(w, "  Slots")
		for s := 0; s < ci.ReservedSlots+ci.Slots; s++ {
			label, ok := ci.Occupants[s]
			switch {
			case ok && isControllerName(label):
				fmt.Fprintf(w, "  | %-22s | <-- intra-cluster network\n", controllerLabel(label))
			case ok:
				fmt.Fprintf(w, "  | User task: %-11s|\n", label)
			default:
				fmt.Fprintf(w, "  | %-22s |\n", "<not in use>")
			}
		}
		if len(ci.SecondaryPEs) > 0 {
			fmt.Fprintf(w, "  force PEs: %v\n", ci.SecondaryPEs)
		}
		fmt.Fprintln(w, "        |")
	}
	fmt.Fprintln(w, "  Message-passing network connects all clusters")
}

func isControllerName(name string) bool {
	return strings.HasPrefix(name, "pisces.")
}

func controllerLabel(tasktype string) string {
	switch tasktype {
	case TaskControllerType:
		return "Task controller"
	case UserControllerType:
		return "User controller"
	case FileControllerType:
		return "File controller"
	}
	return tasktype
}

// SystemStorage reports the storage-overhead quantities of Section 13.
type SystemStorage struct {
	// SystemLocalBytesPerPE is the PISCES system code+data charged to each
	// used PE's local memory, and LocalPercent its share of that memory.
	SystemLocalBytesPerPE int
	LocalPercent          float64
	// TableBytes is the shared-memory system-table allocation, and
	// TablePercent its share of total shared memory.
	TableBytes   int
	TablePercent float64
	// Shared is the full shared-memory usage snapshot (message heap, SHARED
	// COMMON, tables).
	Shared flex.Usage
}

// SystemStorage returns the Section 13 storage-overhead measurements for this
// VM.
func (vm *VM) SystemStorage() SystemStorage {
	u := vm.machine.Shared().Usage()
	return SystemStorage{
		SystemLocalBytesPerPE: vm.opts.SystemLocalBytes,
		LocalPercent:          100 * float64(vm.opts.SystemLocalBytes) / float64(vm.machine.Config().LocalBytes),
		TableBytes:            vm.tableBytes,
		TablePercent:          100 * float64(vm.tableBytes) / float64(u.Total),
		Shared:                u,
	}
}
