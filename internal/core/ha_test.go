package core

import (
	"bytes"
	"fmt"
	"sort"
	"strings"
	"testing"
	"time"

	"repro/internal/config"
	"repro/internal/sim"
)

// haTestProgram registers a boss on cluster 1 driving ping/pong rounds with
// workers on cluster 2.  Every print is deterministic in content; line order
// between workers may legitimately differ between schedules, so assertions
// compare sorted lines.
const (
	haWorkers = 4
	haRounds  = 6
)

func registerHAProgram(t *testing.T, vm *VM) {
	t.Helper()
	vm.Register("worker", func(task *Task) {
		boss := MustID(task.Arg(0))
		idx := MustInt(task.Arg(1))
		sum := int64(0)
		for r := 0; r < haRounds; r++ {
			res, err := task.Accept(AcceptSpec{Types: []TypeCount{{Type: "ping", Count: 1}}, Delay: Forever})
			if err != nil {
				return
			}
			v := MustInt(res.Accepted[0].Arg(0))
			sum += v
			if err := task.Send(boss, "pong", Int(idx), Int(2*v)); err != nil {
				return
			}
		}
		task.Printf("worker %d sum %d\n", idx, sum)
		_ = task.Send(boss, "bye", Int(idx))
	})
	vm.Register("boss", func(task *Task) {
		ids := make([]TaskID, haWorkers)
		for i := range ids {
			id, err := task.InitiateWait(OnCluster(2), "worker", ID(task.ID()), Int(int64(i)))
			if err != nil {
				t.Errorf("initiate worker %d: %v", i, err)
				return
			}
			ids[i] = id
		}
		total := int64(0)
		for r := 0; r < haRounds; r++ {
			for i, id := range ids {
				if err := task.Send(id, "ping", Int(int64(r*10+i))); err != nil {
					t.Errorf("round %d ping %d: %v", r, i, err)
					return
				}
			}
			res, err := task.Accept(AcceptSpec{Types: []TypeCount{{Type: "pong", Count: haWorkers}}, Delay: Forever})
			if err != nil {
				t.Errorf("round %d accept: %v", r, err)
				return
			}
			for _, m := range res.Accepted {
				total += MustInt(m.Arg(1))
			}
			// Virtual pause: advances the sim clock between rounds so a kill
			// timer lands at a well-defined point in the schedule.
			task.Accept(AcceptSpec{Types: []TypeCount{{Type: "never", Count: 1}}, Delay: time.Millisecond})
		}
		res, err := task.Accept(AcceptSpec{Types: []TypeCount{{Type: "bye", Count: haWorkers}}, Delay: Forever})
		if err != nil || res.TimedOut {
			t.Errorf("bye accept: %v timedOut=%v", err, res.TimedOut)
			return
		}
		task.Printf("boss total %d\n", total)
	})
}

// haExpectedLines computes the program's print output from its semantics.
func haExpectedLines() []string {
	var lines []string
	total := int64(0)
	for i := 0; i < haWorkers; i++ {
		sum := int64(0)
		for r := 0; r < haRounds; r++ {
			v := int64(r*10 + i)
			sum += v
			total += 2 * v
		}
		lines = append(lines, fmt.Sprintf("worker %d sum %d", i, sum))
	}
	lines = append(lines, fmt.Sprintf("boss total %d", total))
	sort.Strings(lines)
	return lines
}

// runHA runs the boss/worker program on a fresh sim-backed HA VM.  When
// killAt >= 0, a timer at that virtual time checkpoints cluster 2, fails it,
// and restores it from the checkpoint.  Returns raw output and the victim
// count reported by FailClusters.
func runHA(t *testing.T, seed int64, killAt time.Duration) (string, int) {
	t.Helper()
	var out bytes.Buffer
	s := sim.New(seed)
	vm, err := NewVM(config.Simple(2, 8), Options{
		UserOutput:    &out,
		AcceptTimeout: 30 * time.Second,
		Backend:       s,
		HA:            true,
	})
	if err != nil {
		t.Fatal(err)
	}
	registerHAProgram(t, vm)

	victims := -1
	if killAt >= 0 {
		vm.Backend().AfterFunc(killAt, func() {
			blob, err := vm.Checkpoint(2)
			if err != nil {
				t.Errorf("checkpoint: %v", err)
				return
			}
			victims = vm.FailClusters(2)
			if err := vm.Restore(blob); err != nil {
				t.Errorf("restore: %v", err)
			}
		})
	}

	if _, err := vm.Initiate("boss", OnCluster(1)); err != nil {
		t.Fatal(err)
	}
	vm.WaitIdle()
	vm.Shutdown()
	return out.String(), victims
}

func sortedLines(s string) []string {
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	sort.Strings(lines)
	return lines
}

// TestHACheckpointRestoreRoundTrip kills cluster 2 at several virtual times
// and checks the program's output is the same multiset of lines as the
// fault-free run (and as the semantics predict), with no duplicated or lost
// prints: replayed sends must be deduplicated by the receiver floors and the
// user controller's floor.
func TestHACheckpointRestoreRoundTrip(t *testing.T) {
	baseline, _ := runHA(t, 1, -1)
	want := haExpectedLines()
	if got := sortedLines(baseline); strings.Join(got, "\n") != strings.Join(want, "\n") {
		t.Fatalf("fault-free output = %q, want lines %q", baseline, want)
	}

	for _, killAt := range []time.Duration{0, 500 * time.Microsecond, 2500 * time.Microsecond, 4700 * time.Microsecond} {
		killAt := killAt
		t.Run(fmt.Sprintf("killAt=%v", killAt), func(t *testing.T) {
			out, victims := runHA(t, 1, killAt)
			if victims <= 0 {
				t.Fatalf("FailClusters reported %d victims; kill did not land mid-run", victims)
			}
			if got := sortedLines(out); strings.Join(got, "\n") != strings.Join(want, "\n") {
				t.Errorf("killAt=%v output lines = %q, want %q", killAt, got, want)
			}
		})
	}
}

// TestHAKillDeterminism repeats one kill schedule and demands byte-identical
// output: recovery itself must be deterministic under the sim backend.
func TestHAKillDeterminism(t *testing.T) {
	first, v1 := runHA(t, 7, 2500*time.Microsecond)
	second, v2 := runHA(t, 7, 2500*time.Microsecond)
	if first != second {
		t.Fatalf("same seed and kill time, different output:\n--- run1\n%s\n--- run2\n%s", first, second)
	}
	if v1 != v2 {
		t.Fatalf("victim counts differ: %d vs %d", v1, v2)
	}
}

// TestHAOffOverheadPaths checks a non-HA VM still runs the same program
// (the HA hooks must be inert when Options.HA is false).
func TestHAOffOverheadPaths(t *testing.T) {
	var out bytes.Buffer
	s := sim.New(3)
	vm, err := NewVM(config.Simple(2, 8), Options{UserOutput: &out, AcceptTimeout: 30 * time.Second, Backend: s})
	if err != nil {
		t.Fatal(err)
	}
	registerHAProgram(t, vm)
	if _, err := vm.Initiate("boss", OnCluster(1)); err != nil {
		t.Fatal(err)
	}
	vm.WaitIdle()
	vm.Shutdown()
	want := haExpectedLines()
	if got := sortedLines(out.String()); strings.Join(got, "\n") != strings.Join(want, "\n") {
		t.Fatalf("non-HA output lines = %q, want %q", got, want)
	}
}
