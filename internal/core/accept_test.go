package core

import (
	"testing"
	"time"

	"repro/internal/config"
)

// runTaskBody runs body as a single top-level task on a small VM and waits
// for it; body failures propagate as test failures through the errs channel.
func runTaskBody(t *testing.T, body func(*Task) error) {
	t.Helper()
	vm := newTestVM(t, config.Simple(2, 4), Options{})
	runTaskBodyOn(t, vm, body)
}

func runTaskBodyOn(t *testing.T, vm *VM, body func(*Task) error) {
	t.Helper()
	errs := make(chan error, 1)
	vm.Register("test-body", func(task *Task) { errs <- body(task) })
	if _, err := vm.Run("test-body", OnCluster(1)); err != nil {
		t.Fatalf("running test body: %v", err)
	}
	if err := <-errs; err != nil {
		t.Fatal(err)
	}
}

func TestAcceptSignalAndSenderTracking(t *testing.T) {
	runTaskBody(t, func(task *Task) error {
		task.Signal("ping")
		if err := task.SendSelf("ping", Int(7), Str("x")); err != nil {
			return err
		}
		m, err := task.AcceptOne("ping")
		if err != nil {
			return err
		}
		if m.Type != "ping" || m.NumArgs() != 2 {
			t.Errorf("message = %+v", m)
		}
		if v := MustInt(m.Arg(0)); v != 7 {
			t.Errorf("arg 0 = %d", v)
		}
		if task.Sender() != task.ID() {
			t.Errorf("SENDER = %s, want self %s", task.Sender(), task.ID())
		}
		// Out-of-range arg is the zero Value.
		if m.Arg(5).Kind != 0 || m.Arg(-1).Kind != 0 {
			t.Error("out-of-range Arg should be zero Value")
		}
		return nil
	})
}

func TestAcceptHandlersReceiveArguments(t *testing.T) {
	runTaskBody(t, func(task *Task) error {
		var handled []int64
		task.OnMessage("work", func(tk *Task, m *Message) {
			handled = append(handled, MustInt(m.Arg(0)))
		})
		for i := int64(1); i <= 3; i++ {
			if err := task.SendSelf("work", Int(i)); err != nil {
				return err
			}
		}
		res, err := task.AcceptN(3, "work")
		if err != nil {
			return err
		}
		if res.Count("work") != 3 {
			t.Errorf("accepted %d, want 3", res.Count("work"))
		}
		if len(handled) != 3 || handled[0] != 1 || handled[2] != 3 {
			t.Errorf("handler saw %v", handled)
		}
		return nil
	})
}

func TestAcceptPerTypeCounts(t *testing.T) {
	runTaskBody(t, func(task *Task) error {
		// Queue 2 "a", 3 "b", 1 "c"; accept 2 a and 1 b: the remaining two b
		// and the c must stay queued.
		for i := 0; i < 2; i++ {
			task.SendSelf("a", Int(int64(i)))
		}
		for i := 0; i < 3; i++ {
			task.SendSelf("b", Int(int64(i)))
		}
		task.SendSelf("c")
		res, err := task.Accept(AcceptSpec{Types: []TypeCount{{Type: "a", Count: 2}, {Type: "b", Count: 1}}})
		if err != nil {
			return err
		}
		if res.Count("a") != 2 || res.Count("b") != 1 || res.Count("c") != 0 {
			t.Errorf("counts: a=%d b=%d c=%d", res.Count("a"), res.Count("b"), res.Count("c"))
		}
		if task.QueueLength() != 3 {
			t.Errorf("queue length = %d, want 3", task.QueueLength())
		}
		return nil
	})
}

func TestAcceptTotalAcrossTypes(t *testing.T) {
	runTaskBody(t, func(task *Task) error {
		task.SendSelf("x")
		task.SendSelf("y")
		task.SendSelf("x")
		// ACCEPT 2 OF x, y: exactly two messages total, in arrival order.
		res, err := task.Accept(AcceptSpec{Total: 2, Types: []TypeCount{{Type: "x"}, {Type: "y"}}})
		if err != nil {
			return err
		}
		if len(res.Accepted) != 2 {
			t.Fatalf("accepted %d messages, want 2", len(res.Accepted))
		}
		if res.Accepted[0].Type != "x" || res.Accepted[1].Type != "y" {
			t.Errorf("acceptance order wrong: %s then %s", res.Accepted[0].Type, res.Accepted[1].Type)
		}
		if task.QueueLength() != 1 {
			t.Errorf("queue length = %d, want 1", task.QueueLength())
		}
		return nil
	})
}

func TestAcceptAllDrainsWithoutWaiting(t *testing.T) {
	runTaskBody(t, func(task *Task) error {
		for i := 0; i < 4; i++ {
			task.SendSelf("burst", Int(int64(i)))
		}
		start := time.Now()
		res, err := task.Accept(AcceptSpec{Types: []TypeCount{{Type: "burst", Count: All}}})
		if err != nil {
			return err
		}
		if res.Count("burst") != 4 {
			t.Errorf("ALL accepted %d, want 4", res.Count("burst"))
		}
		if res.TimedOut {
			t.Error("ALL accept should not time out")
		}
		if time.Since(start) > time.Second {
			t.Error("ALL accept waited instead of draining")
		}
		// ALL with nothing queued also returns immediately.
		res, err = task.Accept(AcceptSpec{Types: []TypeCount{{Type: "burst", Count: All}}})
		if err != nil {
			return err
		}
		if res.Count("burst") != 0 || res.TimedOut {
			t.Errorf("empty ALL accept = %+v", res)
		}
		return nil
	})
}

func TestAcceptAnyMessageWildcard(t *testing.T) {
	runTaskBody(t, func(task *Task) error {
		task.SendSelf("alpha", Int(1))
		task.SendSelf("beta", Int(2))
		task.SendSelf("alpha", Int(3))
		// An explicit type takes precedence over the wildcard; the wildcard
		// picks up everything else.
		res, err := task.Accept(AcceptSpec{Types: []TypeCount{
			{Type: "beta", Count: 1},
			{Type: AnyMessage, Count: 2},
		}})
		if err != nil {
			return err
		}
		if res.Count("beta") != 1 || res.Count("alpha") != 2 {
			t.Errorf("wildcard accept counts: beta=%d alpha=%d", res.Count("beta"), res.Count("alpha"))
		}
		if task.QueueLength() != 0 {
			t.Errorf("queue length = %d, want 0", task.QueueLength())
		}
		return nil
	})
}

func TestAcceptDelayTimeout(t *testing.T) {
	runTaskBody(t, func(task *Task) error {
		timedOut := false
		start := time.Now()
		res, err := task.Accept(AcceptSpec{
			Total: 1,
			Types: []TypeCount{{Type: "never"}},
			Delay: 100 * time.Millisecond,
			OnTimeout: func(*Task) {
				timedOut = true
			},
		})
		if err != nil {
			return err
		}
		if !res.TimedOut || !timedOut {
			t.Error("DELAY clause did not fire")
		}
		if elapsed := time.Since(start); elapsed < 80*time.Millisecond || elapsed > 2*time.Second {
			t.Errorf("timeout fired after %v", elapsed)
		}
		return nil
	})
}

func TestAcceptPartialThenTimeout(t *testing.T) {
	runTaskBody(t, func(task *Task) error {
		task.SendSelf("r")
		res, err := task.Accept(AcceptSpec{
			Types: []TypeCount{{Type: "r", Count: 3}},
			Delay: 100 * time.Millisecond,
		})
		if err != nil {
			return err
		}
		if res.Count("r") != 1 || !res.TimedOut {
			t.Errorf("partial accept: count=%d timedOut=%v", res.Count("r"), res.TimedOut)
		}
		return nil
	})
}

func TestAcceptValidation(t *testing.T) {
	runTaskBody(t, func(task *Task) error {
		if _, err := task.Accept(AcceptSpec{}); err == nil {
			t.Error("empty ACCEPT accepted")
		}
		if _, err := task.Accept(AcceptSpec{Types: []TypeCount{{Type: "a"}, {Type: "a"}}}); err == nil {
			t.Error("duplicate type accepted")
		}
		return nil
	})
}

func TestAcceptWaitsForLateMessages(t *testing.T) {
	vm := newTestVM(t, config.Simple(2, 4), Options{})
	recvID := make(chan TaskID, 1)
	sum := make(chan int64, 1)
	vm.Register("receiver", func(task *Task) {
		recvID <- task.ID()
		res, err := task.AcceptN(3, "add")
		if err != nil {
			panic(err)
		}
		var s int64
		for _, m := range res.ByType["add"] {
			s += MustInt(m.Arg(0))
		}
		sum <- s
	})
	vm.Register("sender", func(task *Task) {
		to := MustID(task.Arg(0))
		for i := int64(1); i <= 3; i++ {
			task.Charge(50)
			if err := task.Send(to, "add", Int(i)); err != nil {
				panic(err)
			}
		}
	})
	rid, err := vm.Initiate("receiver", OnCluster(1))
	if err != nil {
		t.Fatal(err)
	}
	to := <-recvID
	if to != rid {
		t.Fatalf("receiver id mismatch")
	}
	if _, err := vm.Initiate("sender", OnCluster(2), ID(rid)); err != nil {
		t.Fatal(err)
	}
	select {
	case s := <-sum:
		if s != 6 {
			t.Fatalf("sum = %d, want 6", s)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("receiver never accepted the three messages")
	}
	vm.WaitIdle()
}

func TestSendErrors(t *testing.T) {
	runTaskBody(t, func(task *Task) error {
		if err := task.Send(TaskID{Cluster: 9, Slot: 9, Unique: 9}, "m"); err == nil {
			t.Error("send to unknown task accepted")
		}
		if err := task.SendSender("m"); err == nil {
			t.Error("SENDER before any accept should be an error")
		}
		if err := task.SendTaskController(99, "m"); err == nil {
			t.Error("TCONTR of unknown cluster accepted")
		}
		if err := task.BroadcastCluster(99, "m"); err == nil {
			t.Error("broadcast to unknown cluster accepted")
		}
		return nil
	})
}

func TestSendToTaskController(t *testing.T) {
	runTaskBody(t, func(task *Task) error {
		// The task controller ignores unknown message types, but the send
		// itself must succeed and be deliverable.
		return task.SendTaskController(task.Cluster(), "status-request")
	})
}

func TestBroadcast(t *testing.T) {
	vm := newTestVM(t, config.Simple(3, 2), Options{})
	const workers = 4
	readyIDs := make(chan TaskID, workers)
	got := make(chan string, workers)
	vm.Register("listener", func(task *Task) {
		readyIDs <- task.ID()
		m, err := task.AcceptOne("announce")
		if err != nil {
			panic(err)
		}
		got <- MustStr(m.Arg(0))
	})
	for i := 0; i < workers; i++ {
		if _, err := vm.Initiate("listener", Any()); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < workers; i++ {
		<-readyIDs
	}
	vm.Register("announcer", func(task *Task) {
		if err := task.Broadcast("announce", Str("hello all")); err != nil {
			panic(err)
		}
	})
	// ANY placement: the listeners may have filled some clusters, so let the
	// system pick one with a free slot.
	if _, err := vm.Run("announcer", Any()); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < workers; i++ {
		select {
		case s := <-got:
			if s != "hello all" {
				t.Fatalf("listener got %q", s)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("only %d of %d listeners heard the broadcast", i, workers)
		}
	}
	vm.WaitIdle()
}

func TestBroadcastCluster(t *testing.T) {
	vm := newTestVM(t, config.Simple(2, 3), Options{})
	type report struct {
		cluster int
		heard   bool
	}
	reports := make(chan report, 4)
	ready := make(chan struct{}, 4)
	vm.Register("listener", func(task *Task) {
		ready <- struct{}{}
		res, err := task.Accept(AcceptSpec{
			Total: 1,
			Types: []TypeCount{{Type: "targeted"}},
			Delay: 400 * time.Millisecond,
		})
		if err != nil {
			panic(err)
		}
		reports <- report{cluster: task.Cluster(), heard: res.Count("targeted") == 1}
	})
	for _, cl := range []int{1, 1, 2, 2} {
		if _, err := vm.Initiate("listener", OnCluster(cl)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 4; i++ {
		<-ready
	}
	vm.Register("announcer", func(task *Task) {
		if err := task.BroadcastCluster(2, "targeted"); err != nil {
			panic(err)
		}
	})
	if _, err := vm.Run("announcer", OnCluster(1)); err != nil {
		t.Fatal(err)
	}
	vm.WaitIdle()
	close(reports)
	for r := range reports {
		want := r.cluster == 2
		if r.heard != want {
			t.Errorf("cluster %d listener heard=%v, want %v", r.cluster, r.heard, want)
		}
	}
}
