package core

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/backend"
	"repro/internal/flex"
	"repro/internal/loops"
	"repro/internal/mmos"
	"repro/internal/trace"
)

// Lock is a Pisces Fortran LOCK variable: "Variables whose values are 'locks'
// that may be used to control entry and exit of CRITICAL statements"
// (Section 7).  Locks live in shared memory and are visible to every member
// of a force.
type Lock struct {
	vm   *VM
	name string
	sem  backend.Sem // holds one token when unlocked
}

// Name returns the lock variable's name.
func (l *Lock) Name() string { return l.name }

// lockOn acquires the lock on behalf of a process, blocking without the CPU
// while the lock is held elsewhere.
func (l *Lock) lockOn(p *mmos.Proc, holder TaskID, pe *flex.PE) {
	if !l.sem.TryAcquire() {
		if p != nil {
			p.BlockFn(l.sem.Acquire)
		} else {
			l.sem.Acquire()
		}
	}
	if p != nil {
		p.Charge(costLockOp)
	}
	l.vm.record(trace.Lock, holder, NilTask, pe, "lock="+l.name)
}

// unlockOn releases the lock.
func (l *Lock) unlockOn(p *mmos.Proc, holder TaskID, pe *flex.PE) {
	if p != nil {
		p.Charge(costLockOp)
	}
	l.vm.record(trace.Unlock, holder, NilTask, pe, "lock="+l.name)
	if !l.sem.Release() {
		panic(fmt.Sprintf("core: unlock of %q which is not locked", l.name))
	}
}

// NewLock creates a LOCK variable.  Its small shared-memory footprint is
// charged to the SHARED COMMON region.
func (t *Task) NewLock(name string) (*Lock, error) {
	t.checkKilled()
	if err := t.vm.machine.Shared().AllocCommon(8); err != nil {
		return nil, fmt.Errorf("core: allocating LOCK %q: %w", name, err)
	}
	return &Lock{vm: t.vm, name: name, sem: t.vm.backend.NewSem()}, nil
}

// Common is a SHARED COMMON block: "An ordinary Fortran COMMON block, but
// allocated in shared memory so that all force members see the same block"
// (Section 7).  It holds named REAL and INTEGER variables and arrays; every
// force member sees the same storage.  Synchronisation is the program's
// responsibility, through BARRIER and CRITICAL, exactly as in the paper.
type Common struct {
	name  string
	reals []float64
	ints  []int64
	bytes int
}

// Name returns the COMMON block's name.
func (c *Common) Name() string { return c.name }

// Reals returns the block's REAL array.
func (c *Common) Reals() []float64 { return c.reals }

// Ints returns the block's INTEGER array.
func (c *Common) Ints() []int64 { return c.ints }

// Real reads REAL element i.
func (c *Common) Real(i int) float64 { return c.reals[i] }

// SetReal writes REAL element i.
func (c *Common) SetReal(i int, v float64) { c.reals[i] = v }

// Int reads INTEGER element i.
func (c *Common) Int(i int) int64 { return c.ints[i] }

// SetInt writes INTEGER element i.
func (c *Common) SetInt(i int, v int64) { c.ints[i] = v }

// NewSharedCommon allocates a SHARED COMMON block with nReals REAL and nInts
// INTEGER elements.  The storage is charged statically to the shared-memory
// SHARED COMMON region (Section 11: "SHARED COMMON blocks are allocated
// statically in shared memory").
func (t *Task) NewSharedCommon(name string, nReals, nInts int) (*Common, error) {
	t.checkKilled()
	if nReals < 0 || nInts < 0 {
		return nil, fmt.Errorf("core: SHARED COMMON %q with negative extent", name)
	}
	bytes := 8*nReals + 8*nInts
	if err := t.vm.machine.Shared().AllocCommon(bytes); err != nil {
		return nil, fmt.Errorf("core: allocating SHARED COMMON %q: %w", name, err)
	}
	return &Common{name: name, reals: make([]float64, nReals), ints: make([]int64, nInts), bytes: bytes}, nil
}

// Force represents one executed FORCESPLIT: the set of members running the
// same post-split region concurrently.  Members communicate through shared
// variables (SHARED COMMON blocks and captured Go variables) and synchronise
// through barriers and critical regions (Section 7).
type Force struct {
	task    *Task
	members int

	mu  sync.Mutex
	ops []any // collective-operation instances, indexed per member

	aborted backend.Gate // opened by Abort
}

// Members returns the number of force members.  "The number of parallel tasks
// in a force is determined when the program is executed, not when the program
// is written" — it equals 1 (the primary) plus the number of secondary PEs
// the configuration gives the task's cluster.
func (f *Force) Members() int { return f.members }

// ForceMember is the per-member context passed to the post-split region.
type ForceMember struct {
	force  *Force
	index  int
	proc   *mmos.Proc
	pe     *flex.PE
	opIdx  int
	taskID TaskID
}

// Member returns this member's index, 0 .. Members()-1.  Member 0 is the
// primary member (the original task).
func (m *ForceMember) Member() int { return m.index }

// Members returns the force size.
func (m *ForceMember) Members() int { return m.force.members }

// IsPrimary reports whether this member is the primary (the original task).
func (m *ForceMember) IsPrimary() bool { return m.index == 0 }

// Task returns the task that executed the FORCESPLIT.  Only the primary
// member may use it for message operations after the split region ends.
func (m *ForceMember) Task() *Task { return m.force.task }

// Charge adds n ticks of simulated computation to this member's PE.
func (m *ForceMember) Charge(n int64) {
	if m.proc != nil {
		m.proc.Charge(n)
	}
}

// PE returns the processor number this member runs on.
func (m *ForceMember) PE() int { return m.pe.ID() }

// Yield releases the member's PE so co-scheduled work can run; under a
// deterministic backend it is a scheduling point the seeded picker can use to
// interleave other tasks or members.
func (m *ForceMember) Yield() {
	if m.proc != nil {
		m.proc.Yield()
	}
}

// ForceSplit executes a FORCESPLIT statement: the task splits into a force
// whose members all run the region function concurrently, the original task
// continuing as the primary member and one new member starting on each
// secondary PE allocated to the cluster.  ForceSplit returns when every
// member has finished the region; the original task then continues alone.
//
// With no secondary PEs configured, the region runs in the original task only
// ("A task executing a FORCESPLIT in cluster 1 will then cause no parallel
// splitting", Section 9).
func (t *Task) ForceSplit(region func(*ForceMember)) error {
	t.checkKilled()
	cl := t.rec.cluster
	members := cl.forceSize()
	f := &Force{task: t, members: members, aborted: t.vm.backend.NewGate()}

	// Reserve each member's local-memory footprint up front so that either
	// the whole force starts or the FORCESPLIT fails cleanly before any
	// member has run (a partially started force would deadlock at its first
	// barrier).
	for i := 1; i < members; i++ {
		if err := cl.secondaries[i-1].AllocLocal(t.rec.localBytes); err != nil {
			for j := 1; j < i; j++ {
				cl.secondaries[j-1].FreeLocal(t.rec.localBytes)
			}
			return fmt.Errorf("core: FORCESPLIT in cluster %d: %w", cl.cfg.Number, err)
		}
	}

	t.Charge(costForceSplit)
	if t.vm.tracing(trace.ForceSplit) {
		t.vm.record(trace.ForceSplit, t.ID(), NilTask, cl.primary, fmt.Sprintf("members=%d", members))
	}

	wg := t.vm.backend.NewWaitGroup()
	panics := make([]any, members)
	for i := 1; i < members; i++ {
		pe := cl.secondaries[i-1]
		member := &ForceMember{force: f, index: i, pe: pe, taskID: t.ID()}
		wg.Add(1)
		_, err := t.vm.kernel.Spawn(pe, fmt.Sprintf("force/%s#%d", t.ID(), i), 0, func(p *mmos.Proc) {
			defer wg.Done()
			defer pe.FreeLocal(t.rec.localBytes)
			defer func() { panics[member.index] = recover() }()
			member.proc = p
			p.Charge(costForceMember)
			region(member)
		})
		if err != nil {
			// Spawn without a memory charge only fails for malformed PEs,
			// which the configuration validation precludes; treat it as fatal.
			wg.Done()
			pe.FreeLocal(t.rec.localBytes)
			panic(fmt.Sprintf("core: force member %d of %s could not start: %v", i, t.ID(), err))
		}
	}

	primary := &ForceMember{force: f, index: 0, proc: t.rec.getProc(), pe: cl.primary, taskID: t.ID()}
	var primaryPanic any
	func() {
		defer func() { primaryPanic = recover() }()
		region(primary)
	}()

	// Wait for the secondaries without holding the primary PE.
	t.blockFn(wg.Wait)

	if primaryPanic != nil {
		panic(primaryPanic)
	}
	for i, p := range panics {
		if p == nil {
			continue
		}
		if _, isKill := p.(killSentinel); isKill {
			panic(killSentinel{})
		}
		return fmt.Errorf("core: force member %d failed: %v", i, p)
	}
	return nil
}

// collectiveOp returns the shared instance of the member's next collective
// construct, creating it if this member arrives first.  Members execute the
// same program text, so their n-th collective constructs correspond.
func (m *ForceMember) collectiveOp(create func() any) any {
	f := m.force
	idx := m.opIdx
	m.opIdx++
	f.mu.Lock()
	defer f.mu.Unlock()
	for len(f.ops) <= idx {
		f.ops = append(f.ops, nil)
	}
	if f.ops[idx] == nil {
		f.ops[idx] = create()
	}
	return f.ops[idx]
}

// Abort marks the force as no longer able to synchronise: every BARRIER —
// including any a member is already blocked in — degrades to a non-waiting
// statement whose body still runs on the primary member.  A member that must
// skip part of the region containing collective operations (an interpreter
// member whose statement failed, for instance) calls Abort so the remaining
// members are not stranded waiting for arrivals that will never come.
func (m *ForceMember) Abort() { m.force.aborted.Open() }

// Aborted reports whether the force has been aborted.
func (m *ForceMember) Aborted() bool { return m.force.aborted.IsOpen() }

// barrierInstance is one BARRIER statement execution.
type barrierInstance struct {
	mu      sync.Mutex
	arrived int
	allIn   backend.Gate // opened when every member has arrived
	bodyRun backend.Gate // opened when the primary has run the barrier body
}

// Barrier executes a BARRIER statement: "All members of the force pause on
// reaching the start of the barrier.  When all have arrived, the primary
// force member executes the statement sequence, and then all force members
// continue."  A nil body is an empty barrier.
func (m *ForceMember) Barrier(body func()) {
	f := m.force
	if m.Aborted() {
		// An aborted force cannot synchronise: do not wait for (or count
		// toward) arrivals, but keep the primary's body running so the
		// region's output still flows.  The check precedes collectiveOp — a
		// member that skipped part of the region has a misaligned op index,
		// and pairing it with another statement's instance would panic.
		if m.IsPrimary() && body != nil {
			body()
		}
		return
	}
	be := f.task.vm.backend
	b := m.collectiveOp(func() any {
		return &barrierInstance{allIn: be.NewGate(), bodyRun: be.NewGate()}
	}).(*barrierInstance)

	m.Charge(costBarrier)
	if f.task.vm.tracing(trace.BarrierEnter) {
		f.task.vm.record(trace.BarrierEnter, m.taskID, NilTask, m.pe, fmt.Sprintf("member=%d", m.index))
	}

	b.mu.Lock()
	b.arrived++
	last := b.arrived == f.members
	b.mu.Unlock()
	if last {
		b.allIn.Open()
	} else {
		m.block(func() { b.allIn.WaitOr(f.aborted) })
	}

	if m.IsPrimary() {
		if body != nil {
			body()
		}
		b.bodyRun.Open()
	} else {
		m.block(func() { b.bodyRun.WaitOr(f.aborted) })
	}
}

// block releases the member's PE while wait runs.
func (m *ForceMember) block(wait func()) {
	if m.proc != nil {
		m.proc.BlockFn(wait)
	} else {
		wait()
	}
}

// Critical executes a CRITICAL statement: the lock variable is fetched; if
// unlocked it is locked and the statement sequence executed, otherwise the
// member waits until the lock becomes unlocked.
func (m *ForceMember) Critical(l *Lock, body func()) {
	l.lockOn(m.proc, m.taskID, m.pe)
	defer l.unlockOn(m.proc, m.taskID, m.pe)
	body()
}

// Presched executes a PRESCHED DO loop: in a force of N members, member I
// takes iterations I, N+I, 2*N+I, ... of the loop (lo, hi, step).
func (m *ForceMember) Presched(lo, hi, step int, body func(i int)) error {
	idxs, err := loops.Presched(lo, hi, step, m.index, m.force.members)
	if err != nil {
		return err
	}
	for _, i := range idxs {
		body(i)
	}
	return nil
}

// selfschedCounter is the shared iteration counter of one SELFSCHED loop.
type selfschedCounter struct {
	next atomic.Int64
}

func (c *selfschedCounter) Next() (int, bool) {
	v := c.next.Add(1) - 1
	return int(v), true
}

// Selfsched executes a SELFSCHED DO loop: each member takes the "next"
// iteration of those remaining when it arrives at the loop, until all
// iterations are complete.  It returns the number of iterations this member
// executed, which is how the loop's load balance is measured.
func (m *ForceMember) Selfsched(lo, hi, step int, body func(i int)) (int, error) {
	if m.Aborted() {
		// Degraded mode (see Abort): op indices may be misaligned, so the
		// shared counter cannot be paired up.  No member runs any iteration —
		// running them locally could double-execute work another member
		// claimed from the shared counter just before observing the abort.
		return 0, nil
	}
	ctr := m.collectiveOp(func() any { return &selfschedCounter{} }).(*selfschedCounter)
	return loops.Selfsched(lo, hi, step, ctr, body)
}

// Parseg executes a PARSEG statement: the Ith force member executes the Ith,
// N+Ith, 2N+Ith, ... statement sequences.
func (m *ForceMember) Parseg(segments ...func()) error {
	idxs, err := loops.Segments(len(segments), m.index, m.force.members)
	if err != nil {
		return err
	}
	for _, i := range idxs {
		segments[i]()
	}
	return nil
}
