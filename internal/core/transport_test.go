package core

import (
	"bytes"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/config"
)

// pipeTransport connects two VMs in one process: every frame is delivered
// synchronously into the peer VM, the minimal faithful model of the node
// transport's socket (per-sender order preserved, payload consumed before
// Send returns).
type pipeTransport struct {
	mu   sync.Mutex
	peer *VM
	sent int
}

func (p *pipeTransport) Send(f *WireFrame) error {
	p.mu.Lock()
	vm := p.peer
	p.sent++
	p.mu.Unlock()
	// Copy the payload like a socket write would: the sender recovers its
	// shard bytes as soon as Send returns.
	g := *f
	g.Payload = append([]byte(nil), f.Payload...)
	return vm.DeliverWire(&g)
}

func (p *pipeTransport) SendReply(dst int, replyID uint64, id TaskID) error {
	p.mu.Lock()
	vm := p.peer
	p.mu.Unlock()
	vm.DeliverWireReply(replyID, id)
	return nil
}

func (p *pipeTransport) Flush()       {}
func (p *pipeTransport) Close() error { return nil }

// twoNodeVMs boots two VMs over one 2-cluster configuration: vmA hosts
// cluster 1 (and the terminal controllers), vmB hosts cluster 2, with pipe
// transports between them.
func twoNodeVMs(t *testing.T, outA, outB *bytes.Buffer) (*VM, *VM) {
	t.Helper()
	cfg := config.Simple(2, 4)
	trA, trB := &pipeTransport{}, &pipeTransport{}
	vmA, err := NewVM(cfg, Options{UserOutput: outA, Hosted: []int{1}, Remote: trA, AcceptTimeout: 10 * time.Second})
	if err != nil {
		t.Fatalf("vmA: %v", err)
	}
	vmB, err := NewVM(cfg, Options{UserOutput: outB, Hosted: []int{2}, Remote: trB, AcceptTimeout: 10 * time.Second})
	if err != nil {
		vmA.Shutdown()
		t.Fatalf("vmB: %v", err)
	}
	trA.peer, trB.peer = vmB, vmA
	t.Cleanup(func() { vmB.Shutdown(); vmA.Shutdown() })
	return vmA, vmB
}

// TestHostedControllerIDsAgree pins the ghost-controller invariant the whole
// distributed design rests on: both nodes boot the full configuration, so
// the controller taskids each node computes are identical and a taskid can
// cross the wire and still name the same task.
func TestHostedControllerIDsAgree(t *testing.T) {
	var outA, outB bytes.Buffer
	vmA, vmB := twoNodeVMs(t, &outA, &outB)
	if vmA.UserControllerID() != vmB.UserControllerID() {
		t.Fatalf("user controller ids diverge: %s vs %s", vmA.UserControllerID(), vmB.UserControllerID())
	}
	clA, _ := vmA.cluster(2)
	clB, _ := vmB.cluster(2)
	if clA.controllerID != clB.controllerID {
		t.Fatalf("cluster 2 task controller ids diverge: %s vs %s", clA.controllerID, clB.controllerID)
	}
}

// TestRemoteInitiateSendAndReply drives the full routed path: an initiate
// from node A onto node B's cluster (request frame + reply frame), a
// child-to-parent message back across the wire, and terminal output from the
// remote task landing on node A's user controller.
func TestRemoteInitiateSendAndReply(t *testing.T) {
	var outA, outB bytes.Buffer
	vmA, vmB := twoNodeVMs(t, &outA, &outB)

	register := func(vm *VM) {
		vm.Register("child", func(task *Task) {
			task.Printf("child on cluster %d\n", task.Cluster())
			if err := task.SendParent("result", Int(41+int64(task.Cluster()))); err != nil {
				t.Errorf("child send: %v", err)
			}
		})
		vm.Register("main", func(task *Task) {
			id, err := task.InitiateWait(OnCluster(2), "child")
			if err != nil {
				t.Errorf("initiate: %v", err)
				return
			}
			if id.Cluster != 2 {
				t.Errorf("child placed on cluster %d, want 2", id.Cluster)
			}
			m, err := task.AcceptOne("result")
			if err != nil {
				t.Errorf("accept: %v", err)
				return
			}
			if m.Sender != id {
				t.Errorf("sender %s, want %s", m.Sender, id)
			}
			task.Printf("got %d\n", MustInt(m.Arg(0)))
		})
	}
	register(vmA)
	register(vmB)

	if _, err := vmA.Run("main", OnCluster(1)); err != nil {
		t.Fatalf("run: %v", err)
	}
	vmA.FlushUserOutput()
	if got := outA.String(); !strings.Contains(got, "child on cluster 2\n") || !strings.Contains(got, "got 43\n") {
		t.Fatalf("node A output:\n%s", got)
	}
	if outB.Len() != 0 {
		t.Fatalf("node B printed locally:\n%s", outB.String())
	}
}

// TestRemoteBroadcast checks that TO ALL reaches tasks hosted on the other
// node through a broadcast frame.
func TestRemoteBroadcast(t *testing.T) {
	var outA, outB bytes.Buffer
	vmA, vmB := twoNodeVMs(t, &outA, &outB)

	ready := make(chan TaskID, 1)
	got := make(chan int64, 1)
	vmB.Register("listener", func(task *Task) {
		ready <- task.ID()
		m, err := task.AcceptOne("ping")
		if err != nil {
			t.Errorf("listener accept: %v", err)
			return
		}
		got <- MustInt(m.Arg(0))
	})
	vmA.Register("caster", func(task *Task) {
		if err := task.Broadcast("ping", Int(7)); err != nil {
			t.Errorf("broadcast: %v", err)
		}
	})
	// The listener is initiated on node B directly (its env), the caster on
	// node A; the broadcast must cross the transport.
	if _, err := vmB.Initiate("listener", OnCluster(2)); err != nil {
		t.Fatalf("listener: %v", err)
	}
	<-ready
	if _, err := vmA.Run("caster", OnCluster(1)); err != nil {
		t.Fatalf("caster: %v", err)
	}
	select {
	case v := <-got:
		if v != 7 {
			t.Fatalf("broadcast payload %d, want 7", v)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("broadcast never arrived on node B")
	}
}

// selfTransport loops every frame straight back into the same VM, the shape
// of a fault-injecting transport with zero delay.
type selfTransport struct{ vm *VM }

func (s *selfTransport) Send(f *WireFrame) error {
	g := *f
	g.Payload = append([]byte(nil), f.Payload...)
	return s.vm.DeliverWire(&g)
}
func (s *selfTransport) SendReply(dst int, replyID uint64, id TaskID) error {
	s.vm.DeliverWireReply(replyID, id)
	return nil
}
func (s *selfTransport) Flush()       {}
func (s *selfTransport) Close() error { return nil }

// TestInterceptWireKeepsSendErrorContract pins the -netfault semantics: with
// every cross-cluster message intercepted, a send to a task that is not
// running must still fail at the sender with ErrNoSuchTask, exactly like the
// direct path — the conformance sweep asserts baseline-equal output, so the
// intercepted path must not silently swallow program-visible errors.
func TestInterceptWireKeepsSendErrorContract(t *testing.T) {
	tr := &selfTransport{}
	vm, err := NewVM(config.Simple(2, 4), Options{Remote: tr, InterceptWire: true, AcceptTimeout: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	tr.vm = vm
	defer vm.Shutdown()

	errCh := make(chan error, 1)
	vm.Register("prober", func(task *Task) {
		errCh <- task.Send(TaskID{Cluster: 2, Slot: 3, Unique: 999}, "ping")
	})
	if _, err := vm.Run("prober", OnCluster(1)); err != nil {
		t.Fatal(err)
	}
	if err := <-errCh; !errors.Is(err, ErrNoSuchTask) {
		t.Fatalf("intercepted send to a dead task returned %v, want ErrNoSuchTask", err)
	}

	// And a send to a live remote-cluster task still goes through (delayed
	// through the transport, but delivered).
	got := make(chan int64, 1)
	vm.Register("sink", func(task *Task) {
		m, err := task.AcceptOne("ping")
		if err != nil {
			t.Errorf("sink: %v", err)
			return
		}
		got <- MustInt(m.Arg(0))
	})
	id, err := vm.Initiate("sink", OnCluster(2))
	if err != nil {
		t.Fatal(err)
	}
	vm.Register("sender", func(task *Task) {
		errCh <- task.Send(id, "ping", Int(5))
	})
	if _, err := vm.Run("sender", OnCluster(1)); err != nil {
		t.Fatal(err)
	}
	if err := <-errCh; err != nil {
		t.Fatalf("intercepted send to a live task: %v", err)
	}
	if v := <-got; v != 5 {
		t.Fatalf("delivered %d, want 5", v)
	}
}

// TestRemoteHeapRecovered pins the storage contract of the remote path: the
// sender's shard recovers the outbound wire bytes as soon as the transport
// accepts them, and the receiver's shard recovers the charged message when
// it is accepted — both heaps return to their baselines.
func TestRemoteHeapRecovered(t *testing.T) {
	var outA, outB bytes.Buffer
	vmA, vmB := twoNodeVMs(t, &outA, &outB)
	baseA := vmA.Machine().Shared().Usage().HeapInUse
	baseB := vmB.Machine().Shared().Usage().HeapInUse

	done := make(chan struct{})
	vmB.Register("sink", func(task *Task) {
		defer close(done)
		if _, err := task.AcceptN(8, "datum"); err != nil {
			t.Errorf("sink: %v", err)
		}
	})
	vmA.Register("source", func(task *Task) {
		to := MustID(task.Arg(0))
		for i := 0; i < 8; i++ {
			if err := task.Send(to, "datum", Reals(make([]float64, 16))); err != nil {
				t.Errorf("send %d: %v", i, err)
				return
			}
		}
	})
	id, err := vmB.Initiate("sink", OnCluster(2))
	if err != nil {
		t.Fatalf("sink: %v", err)
	}
	if _, err := vmA.Run("source", OnCluster(1), ID(id)); err != nil {
		t.Fatalf("source: %v", err)
	}
	<-done
	vmB.WaitIdle()
	if got := vmA.Machine().Shared().Usage().HeapInUse; got != baseA {
		t.Fatalf("node A heap in use %d, want baseline %d", got, baseA)
	}
	if got := vmB.Machine().Shared().Usage().HeapInUse; got != baseB {
		t.Fatalf("node B heap in use %d, want baseline %d", got, baseB)
	}
}
