package core

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/msgcodec"
	"repro/internal/obs"
	"repro/internal/trace"
)

// Cross-cluster transport seam.
//
// PR 4 made every cross-cluster message travel as real msgcodec wire bytes
// between per-cluster heap shards, but both ends still lived in one process:
// the router lanes in router.go moved the bytes.  This file extracts the seam
// those lanes sat behind into a Transport interface, so a PISCES machine can
// be partitioned across OS processes ("nodes", internal/node): each VM hosts
// a subset of the configured clusters, and a frame whose destination cluster
// is hosted elsewhere is handed to the VM's remote Transport instead of a
// router lane.  The in-process delivery path — decode the wire bytes, charge
// the destination shard, queue on the destination task — is itself exposed as
// the loopback Transport, which is both the degenerate single-process
// implementation and the inbound half every remote transport delivers
// through.
//
// Hosting is structural, not partial: every node boots the FULL configuration
// (all clusters, all controllers), so system-table layout, heap shards, and —
// critically — controller taskids are identical on every node (taskids are
// assigned from one deterministic boot sequence).  Controllers of non-hosted
// clusters are "ghosts": they run their accept loops but nothing is ever
// delivered to them, because the routing decision below intercepts traffic
// for non-hosted clusters before any local lookup.  User tasks are only ever
// placed on hosted clusters by the node that hosts them, so a taskid's
// cluster number always names the one node that can resolve it.

// FrameKind distinguishes the cross-cluster frame types a Transport carries.
type FrameKind uint8

const (
	// FrameMessage is an ordinary routed message (user SEND, routed INITIATE
	// request, TO USER output) addressed to one destination task.
	FrameMessage FrameKind = iota + 1
	// FrameBroadcast is a TO ALL [CLUSTER n] SEND: the receiving node fans it
	// out to every user task it hosts (filtered by Dst when non-zero).
	FrameBroadcast
)

// WireFrame is one cross-cluster message in wire form: the msgcodec-encoded
// argument bytes plus the header fields that travel alongside the packets —
// exactly what the FLEX/32 header carried next to its packet list, now
// explicit so it can cross a socket.
type WireFrame struct {
	Kind FrameKind
	// Src and Dst are cluster numbers.  Src identifies the sending cluster
	// (reply frames for routed initiates travel back toward it); Dst is the
	// destination cluster, or 0 on a machine-wide broadcast.
	Src int
	Dst int
	// Dest is the destination task (FrameMessage only).
	Dest TaskID
	// Type is the message type named in the SEND statement.
	Type string
	// Sender is the taskid of the sending task.
	Sender TaskID
	// Seq is the sender-side sequence number, carried for diagnostics; the
	// receiving VM stamps its own arrival order.
	Seq uint64
	// SendSeq is the sender task's HA send sequence number (0 = unsequenced);
	// receivers use it for duplicate suppression after a recovery replay.
	SendSeq uint64
	// ReplyID, when non-zero, correlates a routed initiate request with the
	// reply frame carrying the new task's id back to the requesting node.
	ReplyID uint64
	// Edge is the causal edge id stamped at the send site (0 = unstamped).
	// It travels in the frame header so the receiving node's trace and
	// flight-recorder events correlate with the sender's.
	Edge uint64
	// Payload is the msgcodec encoding of the argument list.  It is only
	// valid until Send returns: implementations that do not deliver
	// synchronously must copy it.
	Payload []byte
}

// Transport carries cross-cluster wire frames between clusters hosted by
// different VMs (or re-injects them locally with latency, for fault
// injection).  Implementations must preserve per-sender FIFO order for
// frames with the same (Src, Dst) pair.  The frame AND its Payload are
// borrowed: both are valid only until Send returns (the header is pooled,
// the payload bytes live in the sender's heap shard and are recovered at
// that point), so a transport that defers delivery must copy what it needs
// before returning — the batched TCP transport encodes the frame into its
// batch buffer inside Send, a fault transport copies the payload into its
// delay line.
type Transport interface {
	// Send hands one frame to the transport.
	Send(f *WireFrame) error
	// SendReply carries the reply to a routed initiate request back toward
	// cluster dst (the requesting node resolves replyID in its pending
	// table).
	SendReply(dst int, replyID uint64, id TaskID) error
	// Flush blocks until every frame accepted before the call has been
	// delivered (loopback, fault injection) or handed to the network (TCP).
	Flush()
	// Close stops the transport after draining.
	Close() error
}

// loopback is the in-process Transport: frames are delivered straight into
// the hosted destination cluster.  It is the inbound half remote transports
// deliver through (their reader calls vm.DeliverWire, which is Send here)
// and the delegation target of the fault-injecting transport.  The
// shard-resident fast path for sends between two locally hosted clusters
// lives in router.go (routeMessage) and does not pass through this generic
// entry.
type loopback struct{ vm *VM }

// Send delivers one frame to the destination cluster hosted by this VM.
func (l *loopback) Send(f *WireFrame) error { return l.vm.DeliverWire(f) }

// SendReply resolves a routed-initiate reply against this VM's pending
// table.
func (l *loopback) SendReply(dst int, replyID uint64, id TaskID) error {
	l.vm.DeliverWireReply(replyID, id)
	return nil
}

// Flush waits for the router lanes to drain (generic sends deliver
// synchronously, so only lane traffic can be outstanding).
func (l *loopback) Flush() { l.vm.flushRouters() }

// Close is a no-op: the lanes are stopped by VM.Shutdown.
func (l *loopback) Close() error { return nil }

// Loopback returns the VM's in-process transport: the delivery path every
// frame addressed to a hosted cluster takes.  Fault-injecting transports
// wrap it; tests drive it directly.
func (vm *VM) Loopback() Transport { return vm.loop }

// hosts reports whether cluster n's tasks live in this process.  Lock-free:
// the hosted set is an immutable snapshot, replaced wholesale on adoption.
func (vm *VM) hosts(n int) bool {
	m := vm.hosted.Load()
	if m == nil {
		return true
	}
	return (*m)[n]
}

// HostedClusters returns the cluster numbers hosted by this VM, ascending.
func (vm *VM) HostedClusters() []int {
	var out []int
	for _, n := range vm.clusterNumbers() {
		if vm.hosts(n) {
			out = append(out, n)
		}
	}
	return out
}

// homeCluster returns the lowest hosted cluster number; it identifies this
// node in frames whose sender is the execution environment rather than a
// task.  Resolved once at boot — this sits on the per-message remote path.
func (vm *VM) homeCluster() int { return vm.home }

// partial reports whether some configured cluster is hosted elsewhere.
func (vm *VM) partial() bool {
	m := vm.hosted.Load()
	return m != nil && len(*m) < len(vm.clusters)
}

// wireRemote reports whether a message from cluster `from` (nil for the
// execution environment) to cluster dst must travel through the remote
// Transport: always when dst is hosted by another node, and for every
// cross-cluster hop when the VM was booted with InterceptWire (fault
// injection under -sim).
func (vm *VM) wireRemote(from *clusterRT, dst int) bool {
	if !vm.hosts(dst) {
		return true
	}
	if !vm.interceptAll || vm.remote == nil {
		return false
	}
	src := vm.homeCluster()
	if from != nil {
		src = from.cfg.Number
	}
	return src != dst
}

// addPendingReply registers a routed-initiate reply and returns the
// correlation id a reply frame must carry.
func (vm *VM) addPendingReply(r *initReply) uint64 {
	id := vm.replySeq.Add(1)
	vm.pendMu.Lock()
	vm.pendingReplies[id] = r
	vm.pendMu.Unlock()
	return id
}

// takePendingReply removes and returns the pending reply, or nil if it was
// already delivered (or never registered).
func (vm *VM) takePendingReply(id uint64) *initReply {
	vm.pendMu.Lock()
	r := vm.pendingReplies[id]
	delete(vm.pendingReplies, id)
	vm.pendMu.Unlock()
	return r
}

// failPendingReplies delivers NilTask to every reply still pending, so
// initiators blocked in InitiateWait (possibly on another node's behalf)
// unblock at shutdown.
func (vm *VM) failPendingReplies() {
	vm.pendMu.Lock()
	pending := make([]*initReply, 0, len(vm.pendingReplies))
	for id, r := range vm.pendingReplies {
		pending = append(pending, r)
		delete(vm.pendingReplies, id)
	}
	vm.pendMu.Unlock()
	for _, r := range pending {
		r.deliver(NilTask)
	}
}

// replyTransport returns the transport routed-initiate replies travel back
// on: the remote transport when one is configured, the loopback otherwise.
func (vm *VM) replyTransport() Transport {
	if vm.remote != nil {
		return vm.remote
	}
	return vm.loop
}

// routeRemote sends one cross-cluster message through the remote Transport:
// the argument list is codec-encoded into the sender's heap shard (modelling
// the outbound copy exactly like the in-process router path) and the frame is
// handed to the transport, which must copy or transmit the payload before
// returning; the shard bytes are then recovered.  The destination shard is
// charged by the receiving node at delivery — a remote receiver's heap
// exhaustion cannot fail the sender synchronously, so an undeliverable frame
// is dropped there like any message in flight to a terminated task.  from is
// nil when the sender is the execution environment.
func (vm *VM) routeRemote(from *clusterRT, to TaskID, msgType string, sender TaskID, args []Value, sendSeq uint64, reply *initReply) (int, error) {
	if vm.remote == nil {
		return 0, fmt.Errorf("core: cluster %d is not hosted by this node and no remote transport is configured", to.Cluster)
	}
	size, err := encodedSize(args)
	if err != nil {
		return 0, err
	}
	src := vm.homeCluster()
	var payload []byte
	off := -1
	metrics, spans := vm.metricsOn(), vm.spansOn()
	var obsT0 time.Time
	if metrics || spans {
		obsT0 = vm.om.reg.Now()
	}
	if from != nil {
		src = from.cfg.Number
		off, err = from.heap.Alloc(size)
		if err != nil {
			return 0, vm.heapErr(err)
		}
		buf := from.heap.Bytes(off, size)
		payload, err = msgcodec.AppendEncode(buf[:0], args)
		if err == nil && len(payload) > size {
			err = fmt.Errorf("core: wire form of %s (%d bytes) exceeds its packet-model size %d", msgType, len(payload), size)
		}
	} else {
		payload, err = msgcodec.Encode(args)
	}
	if metrics {
		vm.om.encodeNS.ObserveDuration(vm.om.reg.Now().Sub(obsT0))
	}
	if err != nil {
		if off >= 0 {
			_ = from.heap.Free(off)
		}
		return 0, err
	}
	edge := vm.newEdge()
	f := wireFramePool.Get().(*WireFrame)
	*f = WireFrame{
		Kind: FrameMessage, Src: src, Dst: to.Cluster, Dest: to,
		Type: msgType, Sender: sender, Seq: vm.msgSeq.Add(1), SendSeq: sendSeq,
		Edge: edge, Payload: payload,
	}
	if reply != nil {
		reply.edge = edge
		f.ReplyID = vm.addPendingReply(reply)
	}
	vm.om.rec.Record(src, msgcodec.EvSend, edge, int64(src), int64(to.Cluster))
	if spans {
		lane := fmt.Sprintf("send/c%d", src)
		vm.om.reg.Span(lane, "send "+msgType, obsT0)
		vm.om.reg.Flow(edge, lane, obs.FlowStart, obsT0)
	}
	sendErr := vm.remote.Send(f)
	replyID := f.ReplyID
	wireFramePool.Put(f)
	if off >= 0 {
		_ = from.heap.Free(off)
	}
	if sendErr != nil {
		if replyID != 0 {
			if r := vm.takePendingReply(replyID); r != nil {
				r.deliver(NilTask)
			}
		}
		return 0, sendErr
	}
	return size, nil
}

// wireFramePool recycles the frame headers routeRemote hands to Send: the
// Transport contract already makes the frame (like its Payload) valid only
// until Send returns, so the header can be reused the moment it comes back.
var wireFramePool = sync.Pool{New: func() any { return new(WireFrame) }}

// routeBroadcast ships one broadcast frame through the remote Transport so
// nodes hosting other clusters fan it out to their user tasks.  cluster is
// the TO ALL CLUSTER filter (0 = every cluster).
func (vm *VM) routeBroadcast(from *clusterRT, cluster int, msgType string, sender TaskID, args []Value, sendSeq uint64) error {
	if vm.remote == nil {
		return nil
	}
	payload, err := msgcodec.Encode(args)
	if err != nil {
		return err
	}
	// Broadcasts get a real edge (so the recorder sees them, B = -1 marking
	// the fan-out) but no flow events: a flow with several ends renders as a
	// tangle, not a path.
	edge := vm.newEdge()
	vm.om.rec.Record(from.cfg.Number, msgcodec.EvSend, edge, int64(from.cfg.Number), -1)
	f := &WireFrame{
		Kind: FrameBroadcast, Src: from.cfg.Number, Dst: cluster,
		Type: msgType, Sender: sender, Seq: vm.msgSeq.Add(1), SendSeq: sendSeq,
		Edge: edge, Payload: payload,
	}
	return vm.remote.Send(f)
}

// DeliverWire injects a wire frame into this VM: the inbound half of every
// transport.  The payload is decoded, the message charged to the hosted
// destination cluster's heap shard, and queued on the destination task; a
// routed initiate request (ReplyID != 0) gets a reply hook that sends the
// new task's id back through the reply transport.  A frame for a task that
// is not running here is dropped exactly like a message in flight to a
// terminated task (the send already succeeded at the sender).  Callers must
// preserve per-sender arrival order, which a per-peer socket reader or a
// per-lane timer chain does naturally.
func (vm *VM) DeliverWire(f *WireFrame) error {
	var reply *initReply
	if f.ReplyID != 0 {
		rid, src := f.ReplyID, f.Src
		reply = &initReply{fn: func(id TaskID) {
			if err := vm.replyTransport().SendReply(src, rid, id); err != nil {
				vm.userPrintf("pisces: node: initiate reply to cluster %d lost: %v\n", src, err)
			}
		}}
	}
	if f.Kind == FrameBroadcast {
		return vm.deliverWireBroadcast(f)
	}
	rec, ok := vm.lookupTask(f.Dest)
	if !ok || !vm.hosts(f.Dest.Cluster) {
		reply.deliver(NilTask)
		return nil
	}
	// Inbound router half: a remote frame's decode+charge+queue is the same
	// layer a lane's deliver is for in-process traffic, so it carries the same
	// metrics and a router-lane span (lane "router/c<dst><-wire").
	metrics, spans := vm.metricsOn(), vm.spansOn()
	var obsT0 time.Time
	if metrics || spans {
		obsT0 = vm.om.reg.Now()
	}
	if spans {
		edge, stepping, dst, msgType := f.Edge, f.ReplyID != 0, f.Dest.Cluster, f.Type
		defer func() {
			lane := fmt.Sprintf("router/c%d<-wire", dst)
			vm.om.reg.Span(lane, "deliver "+msgType, obsT0)
			// A routed initiate still owes its sender a reply frame, so the
			// flow steps through here and ends when the reply lands back on
			// the requesting node; plain messages end here.
			phase := obs.FlowEnd
			if stepping {
				phase = obs.FlowStep
			}
			vm.om.reg.Flow(edge, lane, phase, obsT0)
		}()
	}
	args, err := msgcodec.Decode(f.Payload)
	if metrics {
		vm.om.decodeNS.ObserveDuration(vm.om.reg.Now().Sub(obsT0))
	}
	if err != nil {
		// Unreachable for run-time-encoded frames; surface loudly rather
		// than lose traffic silently if a peer and this node ever disagree.
		vm.userPrintf("pisces: node: corrupt wire frame %s from %s: %v\n", f.Type, f.Sender, err)
		reply.deliver(NilTask)
		return err
	}
	msg := newMessage(f.Type, f.Sender, args, vm.msgSeq.Add(1))
	msg.sendSeq = f.SendSeq
	msg.edge = f.Edge
	msg.reply = reply
	if err := vm.chargeMessageOn(rec.cluster.heap, msg); err != nil {
		recycleMessage(msg)
		vm.userPrintf("pisces: node: dropping %s for %s: %v\n", f.Type, f.Dest, err)
		reply.deliver(NilTask)
		return err
	}
	// Charge the transfer to the destination PE's clock without occupying its
	// CPU, exactly like the in-process router: the inter-cluster copy is bus
	// (here: network) work, not receiver computation.
	rec.cluster.primary.Charge(int64(costRouteMsg + costSendPacket*((msg.heapBytes-msgcodec.HeaderBytes)/msgcodec.PacketBytes)))
	switch rec.queue.put(msg) {
	case putOK:
	case putDup:
		// Duplicate of a frame admitted before a recovery (replayed sender or
		// re-delivered retention): the original delivery stands.
		vm.releaseMessage(msg)
		recycleMessage(msg)
	case putClosed:
		vm.releaseMessage(msg)
		rep := msg.reply
		recycleMessage(msg)
		rep.deliver(NilTask)
	}
	return nil
}

// deliverWireBroadcast fans an inbound broadcast frame out to every hosted
// user task, in taskid order so deterministic backends replay it.
func (vm *VM) deliverWireBroadcast(f *WireFrame) error {
	args, err := msgcodec.Decode(f.Payload)
	if err != nil {
		vm.userPrintf("pisces: node: corrupt broadcast frame %s from %s: %v\n", f.Type, f.Sender, err)
		return err
	}
	vm.mu.Lock()
	var targets []*taskRec
	for id, rec := range vm.tasks {
		if rec.isController || id == f.Sender {
			continue
		}
		if f.Dst != 0 && id.Cluster != f.Dst {
			continue
		}
		if !vm.hosts(id.Cluster) {
			continue
		}
		targets = append(targets, rec)
	}
	vm.mu.Unlock()
	sort.Slice(targets, func(i, j int) bool { return targets[i].id.less(targets[j].id) })
	for _, rec := range targets {
		msg := newMessage(f.Type, f.Sender, args, vm.msgSeq.Add(1))
		msg.sendSeq = f.SendSeq
		msg.edge = f.Edge
		if err := vm.chargeMessageOn(rec.cluster.heap, msg); err != nil {
			recycleMessage(msg)
			vm.userPrintf("pisces: node: dropping broadcast %s for %s: %v\n", f.Type, rec.id, err)
			continue
		}
		rec.cluster.primary.Charge(int64(costRouteMsg + costSendPacket*((msg.heapBytes-msgcodec.HeaderBytes)/msgcodec.PacketBytes)))
		if rec.queue.put(msg) != putOK {
			vm.releaseMessage(msg)
			recycleMessage(msg)
		}
	}
	return nil
}

// DeliverWireReply resolves an inbound initiate-reply frame against the
// pending table and wakes the initiator.  Unknown ids are ignored (the VM
// may have failed the reply at shutdown already).
func (vm *VM) DeliverWireReply(replyID uint64, id TaskID) {
	r := vm.takePendingReply(replyID)
	if r == nil {
		return
	}
	if r.edge != 0 && vm.spansOn() {
		// Close the cross-node round trip: the routed initiate's flow stepped
		// through the remote node's deliver span and ends on the reply span
		// here, back on the requesting node.
		t0 := vm.om.reg.Now()
		lane := fmt.Sprintf("send/c%d", vm.homeCluster())
		vm.om.reg.Span(lane, "reply", t0)
		vm.om.reg.Flow(r.edge, lane, obs.FlowEnd, t0)
	}
	r.deliver(id)
}

// flushTransports lands in-flight cross-cluster traffic: the in-process
// router lanes always, and the remote transport when one is configured.
func (vm *VM) flushTransports() {
	vm.flushRouters()
	if vm.remote != nil {
		vm.remote.Flush()
	}
}

// recordRouted traces one outbound remote send like a lane delivery would.
func (vm *VM) recordRouted(from *clusterRT, sender, to TaskID, msgType string, size int) {
	if vm.tracing(trace.MsgSend) && from != nil {
		vm.record(trace.MsgSend, sender, to, from.primary,
			fmt.Sprintf("msgtype=%s routed=remote bytes=%d", msgType, size))
	}
}

// LaneStats is the observable state of one in-process router lane (the
// (Src, Dst) cluster pair it serves): how many messages the sending tasks
// delivered inline, how many were queued for the lane task, how many the
// lane task drained from backlog, and the current queue depth.
type LaneStats struct {
	Src, Dst                  int
	Inline, Enqueued, Drained int64
	Depth                     int
}

// RouterStats returns per-lane router counters in (Dst, Src) order, for the
// pisces run summary and tests.
func (vm *VM) RouterStats() []LaneStats {
	var out []LaneStats
	for _, r := range vm.routers {
		r.mu.Lock()
		out = append(out, LaneStats{
			Src: r.src, Dst: r.cl.cfg.Number,
			Inline: r.statInline, Enqueued: r.statEnqueued, Drained: r.statDrained,
			Depth: len(r.q),
		})
		r.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Dst != out[j].Dst {
			return out[i].Dst < out[j].Dst
		}
		return out[i].Src < out[j].Src
	})
	return out
}
