package core

import (
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/config"
)

// forceConfig is a single cluster on PE 3 with 3 secondary PEs, so forces
// have 4 members.
func forceConfig() *config.Configuration {
	return config.Simple(1, 2).WithForces(1, 10, 11, 12)
}

func TestForceSplitMemberCount(t *testing.T) {
	vm := newTestVM(t, forceConfig(), Options{})
	runTaskBodyOn(t, vm, func(task *Task) error {
		var members int32
		seen := make([]atomic.Bool, 8)
		err := task.ForceSplit(func(m *ForceMember) {
			atomic.AddInt32(&members, 1)
			seen[m.Member()].Store(true)
			if m.Members() != 4 {
				t.Errorf("member %d sees force size %d, want 4", m.Member(), m.Members())
			}
			if (m.Member() == 0) != m.IsPrimary() {
				t.Errorf("IsPrimary wrong for member %d", m.Member())
			}
			if m.IsPrimary() && m.PE() != 3 {
				t.Errorf("primary member on PE %d, want 3", m.PE())
			}
			if !m.IsPrimary() && (m.PE() < 10 || m.PE() > 12) {
				t.Errorf("secondary member on PE %d, want 10..12", m.PE())
			}
			m.Charge(10)
		})
		if err != nil {
			return err
		}
		if members != 4 {
			t.Errorf("force ran %d members, want 4", members)
		}
		for i := 0; i < 4; i++ {
			if !seen[i].Load() {
				t.Errorf("member index %d never ran", i)
			}
		}
		return nil
	})
}

func TestForceSplitWithoutSecondaries(t *testing.T) {
	// "Allocate no secondary PE's to run forces for cluster 1.  A task
	// executing a FORCESPLIT in cluster 1 will then cause no parallel
	// splitting."
	vm := newTestVM(t, config.Simple(1, 2), Options{})
	runTaskBodyOn(t, vm, func(task *Task) error {
		count := 0
		err := task.ForceSplit(func(m *ForceMember) {
			count++
			if m.Members() != 1 || !m.IsPrimary() {
				t.Errorf("degenerate force: members=%d primary=%v", m.Members(), m.IsPrimary())
			}
		})
		if err != nil {
			return err
		}
		if count != 1 {
			t.Errorf("region ran %d times, want 1", count)
		}
		return nil
	})
}

func TestForceSecondaryPEsRunConcurrently(t *testing.T) {
	vm := newTestVM(t, forceConfig(), Options{})
	runTaskBodyOn(t, vm, func(task *Task) error {
		var inside, peak atomic.Int32
		return task.ForceSplit(func(m *ForceMember) {
			cur := inside.Add(1)
			for {
				p := peak.Load()
				if cur <= p || peak.CompareAndSwap(p, cur) {
					break
				}
			}
			// Rendezvous so every member is inside the region at once.
			m.Barrier(func() {
				if got := peak.Load(); got != 4 {
					t.Errorf("only %d members were concurrently active, want 4", got)
				}
			})
			inside.Add(-1)
		})
	})
}

func TestBarrierPrimaryRunsBody(t *testing.T) {
	vm := newTestVM(t, forceConfig(), Options{})
	runTaskBodyOn(t, vm, func(task *Task) error {
		var bodyRuns atomic.Int32
		var afterBody atomic.Int32
		err := task.ForceSplit(func(m *ForceMember) {
			for iter := 0; iter < 3; iter++ {
				m.Barrier(func() { bodyRuns.Add(1) })
				// Every member must observe the body of iteration iter done.
				if got := bodyRuns.Load(); got != int32(iter+1) {
					t.Errorf("member %d iter %d: body runs = %d", m.Member(), iter, got)
				}
				afterBody.Add(1)
			}
		})
		if err != nil {
			return err
		}
		if bodyRuns.Load() != 3 {
			t.Errorf("barrier body ran %d times, want 3 (primary only)", bodyRuns.Load())
		}
		if afterBody.Load() != 12 {
			t.Errorf("post-barrier section ran %d times, want 12", afterBody.Load())
		}
		return nil
	})
}

func TestCriticalMutualExclusion(t *testing.T) {
	vm := newTestVM(t, forceConfig(), Options{})
	runTaskBodyOn(t, vm, func(task *Task) error {
		lock, err := task.NewLock("sum-lock")
		if err != nil {
			return err
		}
		common, err := task.NewSharedCommon("sums", 1, 1)
		if err != nil {
			return err
		}
		const perMember = 200
		err = task.ForceSplit(func(m *ForceMember) {
			for i := 0; i < perMember; i++ {
				m.Critical(lock, func() {
					// Unsynchronised read-modify-write, protected only by the
					// CRITICAL section.
					common.SetInt(0, common.Int(0)+1)
				})
			}
		})
		if err != nil {
			return err
		}
		if got := common.Int(0); got != 4*perMember {
			t.Errorf("critical-protected counter = %d, want %d", got, 4*perMember)
		}
		return nil
	})
}

func TestPreschedPartitionAcrossMembers(t *testing.T) {
	vm := newTestVM(t, forceConfig(), Options{})
	runTaskBodyOn(t, vm, func(task *Task) error {
		const n = 103
		var mu sync.Mutex
		counts := make(map[int]int)
		err := task.ForceSplit(func(m *ForceMember) {
			if err := m.Presched(1, n, 1, func(i int) {
				mu.Lock()
				counts[i]++
				mu.Unlock()
			}); err != nil {
				t.Errorf("presched: %v", err)
			}
		})
		if err != nil {
			return err
		}
		if len(counts) != n {
			t.Errorf("presched covered %d iterations, want %d", len(counts), n)
		}
		for i, c := range counts {
			if c != 1 {
				t.Errorf("iteration %d executed %d times", i, c)
			}
		}
		return nil
	})
}

func TestSelfschedPartitionAndRepeatedLoops(t *testing.T) {
	vm := newTestVM(t, forceConfig(), Options{})
	runTaskBodyOn(t, vm, func(task *Task) error {
		const n = 97
		const rounds = 3
		var total atomic.Int64
		var mu sync.Mutex
		perRound := make([]map[int]int, rounds)
		for r := range perRound {
			perRound[r] = make(map[int]int)
		}
		err := task.ForceSplit(func(m *ForceMember) {
			for r := 0; r < rounds; r++ {
				m.Barrier(nil)
				did, err := m.Selfsched(1, n, 1, func(i int) {
					mu.Lock()
					perRound[r][i]++
					mu.Unlock()
				})
				if err != nil {
					t.Errorf("selfsched: %v", err)
				}
				total.Add(int64(did))
			}
		})
		if err != nil {
			return err
		}
		if total.Load() != int64(n*rounds) {
			t.Errorf("selfsched executed %d iterations, want %d", total.Load(), n*rounds)
		}
		for r := 0; r < rounds; r++ {
			if len(perRound[r]) != n {
				t.Errorf("round %d covered %d iterations, want %d", r, len(perRound[r]), n)
			}
			for i, c := range perRound[r] {
				if c != 1 {
					t.Errorf("round %d iteration %d executed %d times", r, i, c)
				}
			}
		}
		return nil
	})
}

func TestParseg(t *testing.T) {
	vm := newTestVM(t, forceConfig(), Options{})
	runTaskBodyOn(t, vm, func(task *Task) error {
		var runs [6]atomic.Int32
		segs := make([]func(), 6)
		for i := range segs {
			segs[i] = func() { runs[i].Add(1) }
		}
		if err := task.ForceSplit(func(m *ForceMember) {
			if err := m.Parseg(segs...); err != nil {
				t.Errorf("parseg: %v", err)
			}
		}); err != nil {
			return err
		}
		for i := range runs {
			if got := runs[i].Load(); got != 1 {
				t.Errorf("segment %d ran %d times, want 1", i, got)
			}
		}
		return nil
	})
}

func TestSharedCommonVisibleToAllMembers(t *testing.T) {
	vm := newTestVM(t, forceConfig(), Options{})
	runTaskBodyOn(t, vm, func(task *Task) error {
		common, err := task.NewSharedCommon("grid", 16, 0)
		if err != nil {
			return err
		}
		if common.Name() != "grid" || len(common.Reals()) != 16 || len(common.Ints()) != 0 {
			t.Errorf("common shape wrong: %q %d %d", common.Name(), len(common.Reals()), len(common.Ints()))
		}
		err = task.ForceSplit(func(m *ForceMember) {
			// Each member fills its presched share...
			m.Presched(1, 16, 1, func(i int) { common.SetReal(i-1, float64(i)) })
			m.Barrier(nil)
			// ...and then every member must see the whole array filled.
			for i := 0; i < 16; i++ {
				if common.Real(i) != float64(i+1) {
					t.Errorf("member %d sees element %d = %v", m.Member(), i, common.Real(i))
				}
			}
		})
		return err
	})
}

func TestSharedCommonAccountingAndErrors(t *testing.T) {
	vm := newTestVM(t, forceConfig(), Options{})
	runTaskBodyOn(t, vm, func(task *Task) error {
		before := vm.Machine().Shared().Usage().CommonUsed
		if _, err := task.NewSharedCommon("block", 100, 50); err != nil {
			return err
		}
		after := vm.Machine().Shared().Usage().CommonUsed
		if after-before != 8*150 {
			t.Errorf("SHARED COMMON charged %d bytes, want %d", after-before, 8*150)
		}
		if _, err := task.NewSharedCommon("bad", -1, 0); err == nil {
			t.Error("negative extent accepted")
		}
		// Exhausting the SHARED COMMON region must fail cleanly.
		if _, err := task.NewSharedCommon("huge", 1<<22, 0); err == nil {
			t.Error("oversized SHARED COMMON accepted")
		}
		return nil
	})
}

func TestForceSplitPropagatesMemberFailure(t *testing.T) {
	vm := newTestVM(t, forceConfig(), Options{})
	errs := make(chan error, 1)
	vm.Register("force-fails", func(task *Task) {
		errs <- task.ForceSplit(func(m *ForceMember) {
			if m.Member() == 2 {
				panic("member 2 exploded")
			}
		})
	})
	if _, err := vm.Run("force-fails", OnCluster(1)); err != nil {
		t.Fatal(err)
	}
	if err := <-errs; err == nil {
		t.Fatal("force member panic was not reported")
	}
}

func TestLockTracingAndDoubleUnlockPanics(t *testing.T) {
	vm := newTestVM(t, config.Simple(1, 1), Options{})
	runTaskBodyOn(t, vm, func(task *Task) error {
		lock, err := task.NewLock("l")
		if err != nil {
			return err
		}
		if lock.Name() != "l" {
			t.Errorf("lock name %q", lock.Name())
		}
		defer func() {
			if recover() == nil {
				t.Error("unlocking an unlocked lock should panic")
			}
		}()
		lock.unlockOn(nil, task.ID(), nil)
		return nil
	})
}

func BenchmarkForceBarrier(b *testing.B) {
	vm, err := NewVM(forceConfig(), Options{})
	if err != nil {
		b.Fatal(err)
	}
	defer vm.Shutdown()
	done := make(chan struct{})
	vm.Register("bench", func(task *Task) {
		task.ForceSplit(func(m *ForceMember) {
			for i := 0; i < b.N; i++ {
				m.Barrier(nil)
			}
		})
		close(done)
	})
	if _, err := vm.Initiate("bench", OnCluster(1)); err != nil {
		b.Fatal(err)
	}
	<-done
}
