package core

import (
	"errors"
	"testing"
	"time"

	"repro/internal/config"
	"repro/internal/flex"
	"repro/internal/msgcodec"
)

// TestCrossClusterCodecRoundTrip sends every argument kind across a cluster
// boundary and back.  The arguments pass through msgcodec.Encode on the
// sender's shard and Decode on the destination's — twice — so any codec
// asymmetry shows up as a value mismatch here.
func TestCrossClusterCodecRoundTrip(t *testing.T) {
	vm, err := NewVM(config.Simple(2, 2), Options{AcceptTimeout: 30 * time.Second})
	if err != nil {
		t.Fatal(err)
	}

	win := Win(Window{Owner: TaskID{Cluster: 1, Slot: 3, Unique: 9}, ArrayID: 4})
	sent := []Value{
		Int(-42),
		Real(3.25),
		Bool(true),
		Str("across the wire"),
		ID(TaskID{Cluster: 2, Slot: 1, Unique: 77}),
		win,
		Ints([]int64{1, -2, 3}),
		Reals([]float64{0.5, -0.25}),
	}

	vm.Register("echo", func(task *Task) {
		m, err := task.AcceptOne("probe")
		if err != nil {
			task.Printf("echo: %v\n", err)
			return
		}
		if err := task.SendSender("reply", m.Args...); err != nil {
			task.Printf("echo: %v\n", err)
		}
	})
	result := make(chan []Value, 1)
	vm.Register("prober", func(task *Task) {
		to := MustID(task.Arg(0))
		if err := task.Send(to, "probe", sent...); err != nil {
			t.Errorf("cross-cluster send: %v", err)
			result <- nil
			return
		}
		m, err := task.AcceptOne("reply")
		if err != nil {
			t.Errorf("reply: %v", err)
			result <- nil
			return
		}
		result <- append([]Value(nil), m.Args...)
	})

	echoID, err := vm.Initiate("echo", OnCluster(2))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := vm.Initiate("prober", OnCluster(1), ID(echoID)); err != nil {
		t.Fatal(err)
	}
	got := <-result
	vm.WaitIdle()
	vm.Shutdown()

	if len(got) != len(sent) {
		t.Fatalf("round trip returned %d args, want %d", len(got), len(sent))
	}
	for i := range sent {
		if !msgcodec.Equal(sent[i], got[i]) {
			t.Errorf("arg %d changed across the wire: sent %+v, got %+v", i, sent[i], got[i])
		}
	}
	for i, shard := range vm.Machine().Shared().HeapShards() {
		if in := shard.InUse(); in != 0 {
			t.Errorf("heap shard %d still holds %d bytes after shutdown", i, in)
		}
	}
}

// TestIntraClusterSendsStayOnOwnShard pins the tentpole property: message
// traffic wholly inside one cluster performs no allocation on any other
// cluster's heap shard.
func TestIntraClusterSendsStayOnOwnShard(t *testing.T) {
	vm, err := NewVM(config.Simple(2, 4), Options{AcceptTimeout: 30 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer vm.Shutdown()

	shared := vm.Machine().Shared()
	if n := shared.NumHeapShards(); n != 2 {
		t.Fatalf("NumHeapShards = %d, want one per cluster (2)", n)
	}
	// Cluster numbers ascend with shard index: shard 0 belongs to cluster 1.
	otherBefore := shared.HeapShard(0).Stats()

	done := make(chan struct{})
	vm.Register("pong2", func(task *Task) {
		for {
			m, err := task.AcceptOne("ping", "stop")
			if err != nil || m.Type == "stop" {
				return
			}
			if err := task.SendSender("pong"); err != nil {
				return
			}
		}
	})
	vm.Register("ping2", func(task *Task) {
		defer close(done)
		to := MustID(task.Arg(0))
		for i := 0; i < 50; i++ {
			if err := task.Send(to, "ping", Int(int64(i)), Str("payload")); err != nil {
				t.Error(err)
				return
			}
			if _, err := task.AcceptOne("pong"); err != nil {
				t.Error(err)
				return
			}
		}
		_ = task.Send(to, "stop")
	})

	pongID, err := vm.Initiate("pong2", OnCluster(2))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := vm.Initiate("ping2", OnCluster(2), ID(pongID)); err != nil {
		t.Fatal(err)
	}
	<-done
	vm.WaitIdle()

	otherAfter := shared.HeapShard(0).Stats()
	// The initiate requests from the driver are charged to cluster 2's shard;
	// nothing in this workload may touch cluster 1's.
	if otherAfter.Allocs != otherBefore.Allocs {
		t.Errorf("cluster 1's shard saw %d allocations during an all-cluster-2 workload",
			otherAfter.Allocs-otherBefore.Allocs)
	}
	if used := shared.HeapShard(1).Stats().Allocs; used == 0 {
		t.Error("cluster 2's shard recorded no allocations; traffic went somewhere unexpected")
	}
}

// TestCrossClusterInitiateCarriesArrays covers the routed initiate path: an
// INITIATE aimed at another cluster moves its argument list (including
// arrays) through the wire codec to the destination's task controller.
func TestCrossClusterInitiateCarriesArrays(t *testing.T) {
	vm, err := NewVM(config.Simple(2, 2), Options{AcceptTimeout: 30 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer vm.Shutdown()

	sum := make(chan int64, 1)
	vm.Register("summer", func(task *Task) {
		vals, err := AsInts(task.Arg(0))
		if err != nil {
			t.Errorf("summer: %v", err)
			sum <- 0
			return
		}
		var s int64
		for _, v := range vals {
			s += v
		}
		sum <- s
	})
	vm.Register("starter", func(task *Task) {
		if err := task.Initiate(OnCluster(2), "summer", Ints([]int64{3, 5, 7, 11})); err != nil {
			t.Errorf("starter: %v", err)
			sum <- 0
		}
	})
	if _, err := vm.Initiate("starter", OnCluster(1)); err != nil {
		t.Fatal(err)
	}
	if got := <-sum; got != 26 {
		t.Errorf("array arrived as sum %d, want 26", got)
	}
	vm.WaitIdle()
}

// TestCrossClusterSendHeapExhaustion pins the error contract of the routed
// path: a cross-cluster send the destination cluster's shard cannot hold
// fails at the sender with ErrHeapExhausted (the destination storage is
// reserved at send time), exactly like the pre-shard global heap did — it
// must not vanish in flight.
func TestCrossClusterSendHeapExhaustion(t *testing.T) {
	machineCfg := flex.DefaultConfig()
	machineCfg.SharedBytes = 160 * 1024
	machineCfg.TableBytes = 32 * 1024
	machineCfg.CommonBytes = 32 * 1024 // ~48 KiB of heap per cluster shard
	machine := flex.MustNewMachine(machineCfg)
	vm, err := NewVMOn(machine, config.Simple(2, 2), Options{AcceptTimeout: 3 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer vm.Shutdown()

	ready := make(chan TaskID, 1)
	release := make(chan struct{})
	vm.Register("hoarder", func(task *Task) {
		ready <- task.ID()
		<-release
		_, _ = task.Accept(AcceptSpec{Types: []TypeCount{{Type: "blob", Count: All}}})
	})
	result := make(chan error, 1)
	vm.Register("flooder", func(task *Task) {
		to := MustID(task.Arg(0))
		payload := make([]float64, 1000)
		var sendErr error
		for i := 0; i < 16; i++ {
			if err := task.Send(to, "blob", Reals(payload)); err != nil {
				sendErr = err
				break
			}
		}
		close(release)
		if sendErr == nil {
			result <- errors.New("destination shard never exhausted")
			return
		}
		if !errors.Is(sendErr, ErrHeapExhausted) {
			result <- sendErr
			return
		}
		result <- nil
	})

	hoarderID, err := vm.Initiate("hoarder", OnCluster(1))
	if err != nil {
		t.Fatal(err)
	}
	<-ready
	if _, err := vm.Initiate("flooder", OnCluster(2), ID(hoarderID)); err != nil {
		t.Fatal(err)
	}
	if err := <-result; err != nil {
		t.Fatal(err)
	}
	vm.WaitIdle()
}
