package core

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"repro/internal/config"
	"repro/internal/obs"
)

// TestVMMetricsAndSpans boots a two-cluster VM with full instrumentation on
// and pins that every core-layer metric family is populated by a simple
// cross-cluster ping-pong: heap charge/recover counters, message-size and
// codec histograms, accept wait, and router-lane spans in the Chrome trace.
func TestVMMetricsAndSpans(t *testing.T) {
	reg := obs.New()
	reg.Enable(obs.Metrics | obs.Spans)
	vm, err := NewVM(config.Simple(2, 2), Options{AcceptTimeout: 30 * time.Second, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	if vm.Obs() != reg {
		t.Fatalf("Obs() did not return the configured registry")
	}

	vm.Register("echo", func(task *Task) {
		m, err := task.AcceptOne("probe")
		if err != nil {
			return
		}
		_ = task.SendSender("reply", m.Args...)
	})
	done := make(chan struct{})
	vm.Register("prober", func(task *Task) {
		defer close(done)
		to := MustID(task.Arg(0))
		if err := task.Send(to, "probe", Str("ping")); err != nil {
			t.Errorf("send: %v", err)
			return
		}
		if _, err := task.AcceptOne("reply"); err != nil {
			t.Errorf("reply: %v", err)
		}
	})
	echoID, err := vm.Initiate("echo", OnCluster(2))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := vm.Initiate("prober", OnCluster(1), ID(echoID)); err != nil {
		t.Fatal(err)
	}
	<-done
	vm.WaitIdle()
	vm.Shutdown()

	s := reg.Snapshot()
	counters := make(map[string]int64)
	for _, c := range s.Counters {
		counters[c.Name] = c.Value
	}
	if counters["core.heap.charge"] == 0 {
		t.Errorf("core.heap.charge = 0, want > 0")
	}
	if counters["core.heap.recover"] != counters["core.heap.charge"] {
		t.Errorf("heap recover %d != charge %d after clean shutdown",
			counters["core.heap.recover"], counters["core.heap.charge"])
	}
	hists := make(map[string]obs.HistSnap)
	for _, h := range s.Hists {
		hists[h.Name] = h
	}
	for _, name := range []string{"core.heap.msg.bytes", "codec.encode.ns", "codec.decode.ns", "core.accept.wait.ns"} {
		if hists[name].Count == 0 {
			t.Errorf("%s: no observations", name)
		}
	}

	spans, dropped := reg.Spans()
	if dropped != 0 || len(spans) == 0 {
		t.Fatalf("spans = %d dropped = %d", len(spans), dropped)
	}
	sawRouter := false
	for _, sp := range spans {
		if strings.HasPrefix(sp.Lane, "router/") && strings.HasPrefix(sp.Name, "deliver ") {
			sawRouter = true
		}
	}
	if !sawRouter {
		t.Errorf("no router-lane deliver spans captured; lanes: %v", laneSet(spans))
	}
	var buf bytes.Buffer
	if err := reg.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	if !json.Valid(buf.Bytes()) {
		t.Fatalf("Chrome trace is not valid JSON:\n%s", buf.String())
	}
}

func laneSet(spans []obs.Span) []string {
	seen := map[string]bool{}
	var out []string
	for _, s := range spans {
		if !seen[s.Lane] {
			seen[s.Lane] = true
			out = append(out, s.Lane)
		}
	}
	return out
}

// TestVMMetricsDisabledByDefault pins that a VM booted without a registry
// creates a private disabled one and leaves it empty.
func TestVMMetricsDisabledByDefault(t *testing.T) {
	vm := newTestVM(t, config.Simple(2, 2), Options{})
	if vm.Obs() == nil {
		t.Fatal("Obs() is nil")
	}
	if vm.metricsOn() || vm.spansOn() {
		t.Fatal("default registry has families enabled")
	}
	done := make(chan struct{})
	vm.Register("noop", func(task *Task) { close(done) })
	if _, err := vm.Initiate("noop", Any()); err != nil {
		t.Fatal(err)
	}
	<-done
	vm.WaitIdle()
	s := vm.Obs().Snapshot()
	for _, c := range s.Counters {
		if c.Value != 0 {
			t.Errorf("disabled counter %s = %d", c.Name, c.Value)
		}
	}
	for _, h := range s.Hists {
		if h.Count != 0 {
			t.Errorf("disabled histogram %s count = %d", h.Name, h.Count)
		}
	}
}
