package core

import (
	"fmt"

	"repro/internal/mmos"
)

// Controller tasktype names, visible in the execution environment's displays.
const (
	TaskControllerType = "pisces.task-controller"
	UserControllerType = "pisces.user-controller"
	FileControllerType = "pisces.file-controller"
)

// startControllers spawns the operating system of the virtual machine: "The
// operating system is represented as a set of 'controller' tasks that run in
// slots in the clusters" (Section 5).  Every cluster gets a task controller;
// the terminal cluster also gets the user controller and the file controller.
func (vm *VM) startControllers() error {
	for _, n := range vm.clusterNumbers() {
		cl, _ := vm.cluster(n)
		ctrlID, err := vm.startController(cl, TaskControllerType, vm.taskControllerBody(cl))
		if err != nil {
			return err
		}
		cl.controllerID = ctrlID
		if cl.terminal {
			userID, err := vm.startController(cl, UserControllerType, vm.userControllerBody())
			if err != nil {
				return err
			}
			vm.userCtrl = userID
			fileID, err := vm.startController(cl, FileControllerType, vm.fileControllerBody())
			if err != nil {
				return err
			}
			vm.fileCtrl = fileID
			vm.files.owner = fileID
		}
	}
	return nil
}

// startController creates one controller task in a reserved slot of the
// cluster and spawns its process on the cluster's primary PE.
func (vm *VM) startController(cl *clusterRT, tasktype string, body func(*Task)) (TaskID, error) {
	rec := &taskRec{
		tasktype:     tasktype,
		cluster:      cl,
		isController: true,
		localBytes:   DefaultTaskLocalBytes,
	}
	rec.wake, rec.queue, rec.done = newTaskRecParts(vm.backend)
	if vm.ha {
		// Controllers are never replayed, but they need duplicate-suppression
		// floors: a replayed task regenerates its TO USER prints and INITIATE
		// requests, and the controller side must drop (or re-answer) them.
		rec.queue.ha = newTaskHA(false)
	}
	slot, err := cl.placeController(rec)
	if err != nil {
		return NilTask, err
	}
	rec.slot = slot
	rec.id = TaskID{Cluster: cl.cfg.Number, Slot: slot, Unique: vm.nextUnique()}
	rec.parent = rec.id // controllers are their own parents
	vm.registerTask(rec)

	ready := vm.backend.NewGate()
	procBody := func(p *mmos.Proc) {
		rec.setProc(p)
		ready.Open()
		defer vm.finishController(rec)
		ctx := newTask(vm, rec, nil)
		body(ctx)
	}
	if _, err := vm.kernel.Spawn(cl.primary, tasktype+"/"+rec.id.String(), rec.localBytes, procBody); err != nil {
		vm.unregisterTask(rec.id)
		cl.clearSlot(slot)
		return NilTask, fmt.Errorf("core: starting %s in cluster %d: %w", tasktype, cl.cfg.Number, err)
	}
	ready.Wait()
	return rec.id, nil
}

// finishController tears a controller down at shutdown.
func (vm *VM) finishController(rec *taskRec) {
	if r := recover(); r != nil {
		if _, isKill := r.(killSentinel); !isKill {
			vm.userPrintf("pisces: controller %s failed: %v\n", rec.id, r)
		}
	}
	for _, m := range rec.queue.close() {
		vm.releaseMessage(m)
		recycleMessage(m)
	}
	vm.unregisterTask(rec.id)
	rec.cluster.clearSlot(rec.slot)
	rec.done.Open()
}

// taskControllerBody is the body of a cluster's task controller, "responsible
// for initiating, terminating, and monitoring the operation of user tasks
// within their cluster" (Section 5).  It fields INITIATE requests, starting
// the task when a slot is free and holding the request otherwise.
func (vm *VM) taskControllerBody(cl *clusterRT) func(*Task) {
	return func(t *Task) {
		t.OnMessage(msgInitRequest, func(t *Task, m *Message) {
			req, err := decodeInitRequest(m)
			if err != nil {
				vm.userPrintf("pisces: task controller %s: bad initiate request: %v\n", t.ID(), err)
				return
			}
			if err := cl.request(req); err != nil {
				vm.userPrintf("pisces: task controller %s: %v\n", t.ID(), err)
			}
		})
		for {
			res, err := t.Accept(AcceptSpec{
				Total: 1,
				Types: []TypeCount{{Type: msgInitRequest}, {Type: msgTaskDone}, {Type: msgShutdown}},
				Delay: Forever,
			})
			if err != nil {
				return
			}
			if res.Count(msgShutdown) > 0 {
				return
			}
			// The controller fully owns its accepted messages: the initiate
			// handler has already run (retaining only the argument slice, never
			// the header), so the headers go back to the pool.
			t.RecycleAccept(res)
		}
	}
}

// decodeInitRequest unpacks the arguments of an initiate-request message:
// tasktype name, parent taskid, a reserved argument, then the user arguments.
func decodeInitRequest(m *Message) (pendingInit, error) {
	if m.NumArgs() < 3 {
		return pendingInit{}, fmt.Errorf("initiate request with %d arguments", m.NumArgs())
	}
	tasktype, err := AsStr(m.Arg(0))
	if err != nil {
		return pendingInit{}, err
	}
	parent, err := AsID(m.Arg(1))
	if err != nil {
		return pendingInit{}, err
	}
	return pendingInit{
		tasktype: tasktype,
		parent:   parent,
		args:     m.Args[3:],
		reply:    m.reply,
		key:      initKey{parent: parent, seq: m.sendSeq},
	}, nil
}

// userControllerBody is the body of the user controller, "responsible for
// control of communication with user terminals that are directly accessible
// from their cluster" (Section 5).  Messages sent TO USER are written to the
// configured output; "print" messages are written verbatim, any other type is
// shown with its type and arguments.
func (vm *VM) userControllerBody() func(*Task) {
	return func(t *Task) {
		printMsg := func(t *Task, m *Message) {
			if m.Type == "print" && m.NumArgs() == 1 {
				if s, err := AsStr(m.Arg(0)); err == nil {
					vm.userPrintf("%s", s)
					return
				}
			}
			vm.userPrintf("[%s -> USER] %s %s\n", m.Sender, m.Type, formatArgs(m.Args))
		}
		for {
			// The user controller fields whatever user tasks choose to send
			// TO USER, so it accepts any message type.
			res, err := t.Accept(AcceptSpec{
				Total: 1,
				Types: []TypeCount{{Type: AnyMessage}},
				Delay: Forever,
			})
			if err != nil {
				return
			}
			if res.Count(msgShutdown) > 0 {
				return
			}
			for _, m := range res.Accepted {
				switch m.Type {
				case msgShutdown:
				case msgUserSync:
					if m.sync != nil {
						m.sync.Open()
					}
				default:
					printMsg(t, m)
				}
			}
			t.RecycleAccept(res)
		}
	}
}

// formatArgs renders message arguments for terminal display.
func formatArgs(args []Value) string {
	out := "("
	for i, a := range args {
		if i > 0 {
			out += ", "
		}
		switch {
		case a.Kind == 0:
			out += "?"
		default:
			out += formatValue(a)
		}
	}
	return out + ")"
}

func formatValue(v Value) string {
	switch v.Kind {
	case kindInteger:
		return fmt.Sprintf("%d", v.Integer)
	case kindReal:
		return fmt.Sprintf("%g", v.Real)
	case kindLogical:
		return fmt.Sprintf("%v", v.Logical)
	case kindCharacter:
		return fmt.Sprintf("%q", v.Character)
	case kindTaskID:
		return taskIDFromCodec(v.TaskID).String()
	case kindWindow:
		return fmt.Sprintf("WINDOW(owner=%s array=%d)", taskIDFromCodec(v.Window.Owner), v.Window.ArrayID)
	case kindIntArray:
		return fmt.Sprintf("INTEGER[%d]", len(v.IntArray))
	case kindRealArray:
		return fmt.Sprintf("REAL[%d]", len(v.RealArray))
	}
	return "?"
}

// fileControllerBody is the body of the file controller, "responsible for
// control of access to the files on disks directly accessible from their
// cluster" (Section 5).  It owns the file-resident arrays created through
// VM.CreateFileArray and services window read and write requests on them; the
// run-time routes those requests through vm.files, so the controller's
// message loop only needs to stay alive (and answer directory queries) until
// shutdown.
func (vm *VM) fileControllerBody() func(*Task) {
	return func(t *Task) {
		t.OnMessage("directory", func(t *Task, m *Message) {
			names := vm.files.names()
			_ = t.SendSender("directory-reply", Str(fmt.Sprintf("%v", names)))
		})
		for {
			res, err := t.Accept(AcceptSpec{
				Total: 1,
				Types: []TypeCount{{Type: "directory"}, {Type: msgShutdown}},
				Delay: Forever,
			})
			if err != nil {
				return
			}
			if res.Count(msgShutdown) > 0 {
				return
			}
			t.RecycleAccept(res)
		}
	}
}
