package core

import (
	"fmt"
	"time"

	"repro/internal/msgcodec"
	"repro/internal/trace"
)

// Forever, used as the Delay of an AcceptSpec, waits indefinitely for the
// requested messages (no DELAY clause timeout).
const Forever = time.Duration(-1)

// All, used as a TypeCount count, accepts every message of the type that has
// already been received ("may specify 'ALL' to indicate that all messages of
// that type that have been received should be processed").
const All = -1

// AnyMessage, used as a TypeCount type, matches any message type not listed
// explicitly in the same ACCEPT.  The controllers use it to field whatever
// the user tasks send them; it is an extension over the paper's ACCEPT.
const AnyMessage = anyType

// TypeCount names one message type in an ACCEPT statement together with the
// number of messages of that type required.  Count 0 means the type
// contributes to the statement's shared Total; Count > 0 requires that many
// messages of this type; Count == All drains whatever has already arrived.
type TypeCount struct {
	Type  string
	Count int
}

// AcceptSpec is the Pisces Fortran ACCEPT statement:
//
//	ACCEPT <number> OF
//	   <message type 1>
//	   <message type 2> ...
//	DELAY <time value> THEN <statement sequence>
//	END ACCEPT
type AcceptSpec struct {
	// Total is the <number> of messages to accept across all listed types
	// whose Count is 0.  Ignored when every type carries its own count.
	Total int
	// Types lists the message types taken from the in-queue by this ACCEPT.
	Types []TypeCount
	// Delay is the DELAY clause: how long to wait for messages that have not
	// yet arrived.  Zero uses the system-provided timeout; Forever disables
	// the timeout.
	Delay time.Duration
	// OnTimeout, if non-nil, is the THEN statement sequence executed when the
	// wait exceeds Delay.
	OnTimeout func(*Task)
}

// AcceptResult reports what an ACCEPT statement processed.
type AcceptResult struct {
	// Accepted lists the accepted messages in acceptance order (handler
	// types included — the handler has already run for them).
	Accepted []*Message
	// ByType groups the accepted messages by message type.
	ByType map[string][]*Message
	// TimedOut reports that the DELAY expired before the requested messages
	// all arrived.
	TimedOut bool
}

// Count returns the number of accepted messages of the given type.
func (r *AcceptResult) Count(msgType string) int { return len(r.ByType[msgType]) }

// First returns the first accepted message of the given type, or nil.
func (r *AcceptResult) First(msgType string) *Message {
	if ms := r.ByType[msgType]; len(ms) > 0 {
		return ms[0]
	}
	return nil
}

// AcceptOne accepts a single message of any of the listed types, waiting with
// the system default timeout.  It is the most common ACCEPT form.
func (t *Task) AcceptOne(types ...string) (*Message, error) {
	spec := AcceptSpec{Total: 1}
	for _, ty := range types {
		spec.Types = append(spec.Types, TypeCount{Type: ty})
	}
	res, err := t.Accept(spec)
	if err != nil {
		return nil, err
	}
	if len(res.Accepted) == 0 {
		return nil, fmt.Errorf("core: ACCEPT timed out waiting for %v", types)
	}
	return res.Accepted[0], nil
}

// AcceptN accepts n messages of the single listed type.
func (t *Task) AcceptN(n int, msgType string) (*AcceptResult, error) {
	return t.Accept(AcceptSpec{Types: []TypeCount{{Type: msgType, Count: n}}})
}

// typeReq is the remaining requirement for one message type of an ACCEPT
// statement.
type typeReq struct {
	name   string
	count  int  // remaining per-type count; All means drain everything
	shared bool // charged against the statement's shared total
}

// acceptState tracks the remaining requirements of one ACCEPT statement.  It
// is a small slice — ACCEPT statements list a handful of types — scanned
// linearly, so matching allocates nothing; each Task keeps one acceptState
// that is reset per ACCEPT, so the steady-state accept path performs no
// per-call map or state allocation at all.
type acceptState struct {
	reqs      []typeReq
	wildcard  int        // index into reqs of the anyType entry, or -1
	needTotal int        // remaining shared total
	scratch   []*Message // reusable takeMatching output buffer
}

// reset re-arms the state for one ACCEPT statement, reusing its storage.
func (st *acceptState) reset(spec AcceptSpec) error {
	st.reqs = st.reqs[:0]
	st.wildcard = -1
	st.needTotal = 0
	hasShared := false
	for _, tc := range spec.Types {
		for i := range st.reqs {
			if st.reqs[i].name == tc.Type {
				return fmt.Errorf("core: ACCEPT lists message type %q twice", tc.Type)
			}
		}
		r := typeReq{name: tc.Type}
		switch {
		case tc.Count == All:
			r.count = All
		case tc.Count > 0:
			r.count = tc.Count
		default:
			r.shared = true
			hasShared = true
		}
		if tc.Type == anyType {
			st.wildcard = len(st.reqs)
		}
		st.reqs = append(st.reqs, r)
	}
	if hasShared {
		st.needTotal = spec.Total
		if st.needTotal <= 0 {
			st.needTotal = 1
		}
	}
	return nil
}

// match resolves a message type to its requirement entry: the explicit entry
// if the type is listed, else the wildcard entry (resolved once at reset, not
// per message), else nil.
func (st *acceptState) match(msgType string) *typeReq {
	for i := range st.reqs {
		if st.reqs[i].name == msgType {
			return &st.reqs[i]
		}
	}
	if st.wildcard >= 0 {
		return &st.reqs[st.wildcard]
	}
	return nil
}

// satisfied reports whether every requirement has been met.
func (st *acceptState) satisfied() bool {
	if st.needTotal > 0 {
		return false
	}
	for i := range st.reqs {
		r := &st.reqs[i]
		if r.shared || r.count == All {
			continue
		}
		if r.count > 0 {
			return false
		}
	}
	return true
}

// drain takes whatever matching messages are currently queued and processes
// them; takeMatching updates the remaining requirements in place.
func (st *acceptState) drain(t *Task, res *AcceptResult) {
	taken := t.rec.queue.takeMatching(st, st.scratch[:0])
	i := 0
	defer func() {
		// processAccepted can unwind mid-batch on a kill (Charge checks the
		// kill flag) or on a handler panic.  The remaining taken messages are
		// no longer in the queue, so the termination path cannot recover
		// their heap storage — release it here.  releaseMessage is
		// idempotent, so the in-flight message is safe either way.
		for ; i < len(taken); i++ {
			t.vm.releaseMessage(taken[i])
		}
		// Keep the grown buffer but drop the message pointers: the messages
		// now belong to the result, and a task-lifetime scratch must not pin
		// them.
		for j := range taken {
			taken[j] = nil
		}
		st.scratch = taken[:0]
	}()
	for ; i < len(taken); i++ {
		t.processAccepted(taken[i], res)
	}
}

// Accept executes an ACCEPT statement: messages of the listed types are taken
// from the in-queue in arrival order and processed (handler types through
// their handler, signal types by counting) until the requested numbers have
// been processed.  If the messages have not yet arrived the task waits,
// releasing its PE; waiting is bounded by the DELAY clause.
func (t *Task) Accept(spec AcceptSpec) (*AcceptResult, error) {
	t.checkKilled()
	if len(spec.Types) == 0 {
		return nil, fmt.Errorf("core: ACCEPT statement lists no message types")
	}
	// Reuse the task's accept state unless this is a re-entrant ACCEPT (from
	// a message handler or an OnTimeout callback) whose outer statement still
	// owns it.
	var st *acceptState
	if t.accActive {
		st = new(acceptState)
	} else {
		st = &t.acc
		t.accActive = true
		defer func() { t.accActive = false }()
	}
	if err := st.reset(spec); err != nil {
		return nil, err
	}

	// HA mode: bracket the statement with its consumption-log record, and on
	// a freshly restored task drive the replay of the corresponding
	// checkpointed record (see ha.go).  Controllers keep floors but no log.
	if h := t.rec.queue.ha; h != nil && h.logOn {
		t.haBeginAccept()
		res, err := t.acceptLoop(spec, st)
		t.rec.queue.haEndAccept(res != nil && res.TimedOut)
		return res, err
	}
	return t.acceptLoop(spec, st)
}

// acceptLoop is the body of an ACCEPT statement once its matching state has
// been armed: drain, wait, time out.
func (t *Task) acceptLoop(spec AcceptSpec, st *acceptState) (*AcceptResult, error) {
	timeout := spec.Delay
	if timeout == 0 {
		timeout = t.vm.opts.AcceptTimeout
	}
	var deadline time.Time
	hasDeadline := timeout != Forever
	if hasDeadline {
		deadline = t.vm.backend.Now().Add(timeout)
	}

	res := &AcceptResult{ByType: make(map[string][]*Message)}
	for {
		t.checkKilled()
		st.drain(t, res)
		if st.satisfied() {
			return res, nil
		}

		// Wait for more messages, the deadline, or a kill.  Message arrival
		// and kill pulse the same per-task event; the loop re-checks both
		// conditions after every wake, so collapsed pulses are harmless.
		signaled := true
		var obsT0 time.Time
		if t.vm.metricsOn() {
			obsT0 = t.vm.om.reg.Now()
		}
		if hasDeadline {
			remaining := deadline.Sub(t.vm.backend.Now())
			if remaining <= 0 {
				return t.acceptTimeout(spec, st, res)
			}
			t.blockFn(func() { signaled = t.rec.wake.WaitTimeout(remaining) })
		} else {
			t.blockFn(func() { t.rec.wake.Wait() })
		}
		if !obsT0.IsZero() {
			t.vm.om.acceptWait.ObserveDuration(t.vm.om.reg.Now().Sub(obsT0))
		}
		if !signaled {
			// One final drain before reporting the timeout, in case messages
			// arrived in the same instant.
			st.drain(t, res)
			if st.satisfied() {
				return res, nil
			}
			return t.acceptTimeout(spec, st, res)
		}
	}
}

// acceptTimeout finishes an ACCEPT whose DELAY expired: "the task continues
// execution, starting with the statement sequence given in the DELAY clause
// (or with a system-generated 'timeout' message)".
func (t *Task) acceptTimeout(spec AcceptSpec, st *acceptState, res *AcceptResult) (*AcceptResult, error) {
	res.TimedOut = true
	if spec.OnTimeout != nil {
		spec.OnTimeout(t)
	}
	return res, nil
}

// processAccepted runs the handler (if the type has one), updates SENDER,
// records the trace event, charges ticks, and recovers the message's
// shared-memory storage.
func (t *Task) processAccepted(m *Message, res *AcceptResult) {
	t.lastSender = m.Sender
	packets := 0
	if m.heapBytes > msgcodec.HeaderBytes {
		packets = (m.heapBytes - msgcodec.HeaderBytes) / msgcodec.PacketBytes
	}
	// Recover the shard storage before anything that can unwind on a kill:
	// the arguments live in the Go argument slice, not the arena, so the
	// handler below never reads the released bytes.
	t.vm.releaseMessage(m)
	t.Charge(int64(costAcceptMsg + costAcceptPacket*packets))
	t.vm.msgsAccpt.Add(1)
	if m.edge != 0 {
		// Close the causal pair in the flight recorder: this accept consumed
		// a routed message; the edge links it to the EvSend on the sender's
		// node (possibly another process's dump).
		t.vm.om.rec.Record(t.ID().Cluster, msgcodec.EvAccept, m.edge,
			int64(t.ID().Cluster), int64(m.Sender.Cluster))
	}
	if t.vm.tracing(trace.MsgAccept) {
		t.vm.record(trace.MsgAccept, t.ID(), m.Sender, t.rec.cluster.primary,
			fmt.Sprintf("msgtype=%s args=%d", m.Type, len(m.Args)))
	}
	if h, ok := t.handlers[m.Type]; ok {
		h(t, m)
	}
	res.Accepted = append(res.Accepted, m)
	res.ByType[m.Type] = append(res.ByType[m.Type], m)
}
