package core

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/backend"
	"repro/internal/memory"
	"repro/internal/msgcodec"
	"repro/internal/obs"
)

// Cross-cluster message routing.
//
// The message heap is sharded per cluster (see clusterRT.heap), so a message
// cannot simply be charged to "the heap" any more: intra-cluster sends
// allocate on the one shard both tasks share, while an inter-cluster send
// has to move the argument bytes from the sender's shard to the receiver's.
// That move is exactly the wire path of the FLEX/32 run-time — "messages
// consist of a header and a list of packets containing the arguments"
// (Section 11) — so it goes through msgcodec for real: the sender encodes the
// argument list into its own shard, and the destination cluster's router
// decodes the bytes into a fresh message charged to the destination shard.
// Header fields that never leave the run-time (type, sender, sequence number,
// the initiate-reply linkage) travel alongside the packet bytes, the way the
// original header carried queue linkage next to the packets.
//
// Every cluster of a multi-cluster machine runs one router lane per source
// cluster (a task woken through a backend event), so deterministic (-sim)
// runs schedule router hops exactly like any other task and replay them
// byte-identically from the seed.  One lane per (source, destination) pair
// keeps messages between a given pair of tasks in send order while letting
// traffic from different clusters decode concurrently — a single lane per
// destination would serialise a fan-in that the senders produced in
// parallel.  The router does not occupy the destination PE's CPU — on the
// FLEX/32 the inter-cluster copy was the shared-memory bus at work, not a
// process competing for the receiver's processor — but the decode cost is
// still charged to the destination cluster's primary PE clock so
// simulated-time experiments see the transfer.

// routerBatch bounds how many queued wire messages the router takes per lock
// acquisition.  Draining in small batches keeps the queue lock cheap under
// fan-in bursts without letting one drain hold the destination PE for an
// unbounded stretch.
const routerBatch = 16

// wireMsg is one cross-cluster message in flight: codec-encoded argument
// bytes in the source cluster's heap shard, plus the header fields the router
// needs to rebuild the message on the destination side.  dest is the
// receiving task's record, resolved once on the send side; its in-queue's
// closed flag is the liveness check at delivery time.
type wireMsg struct {
	dest    *taskRec
	msgType string
	sender  TaskID
	seq     uint64
	sendSeq uint64 // HA send sequence number (0 = unsequenced)
	edge    uint64 // causal edge id stamped at the send site

	srcHeap *memory.Allocator // source shard holding the wire bytes
	off     int               // allocation offset in srcHeap
	destOff int               // storage reserved on the destination shard at send time
	size    int               // charged bytes (header + packets model)
	wireLen int               // codec bytes actually written at off

	// reply carries the initiate-reply linkage for routed initiate requests.
	reply *initReply
	// flush, when non-nil, marks a barrier token: the router opens the gate
	// once everything enqueued before it has been delivered.  No payload.
	flush backend.Gate
	// enq is the backend-clock enqueue time, stamped only when metrics are
	// enabled and the message took the queued (non-inline) path; the drain
	// observes enqueue->delivery lane queue time from it.
	enq time.Time
}

// clusterRouter delivers inbound cross-cluster messages for one destination
// cluster from one source cluster.
//
// Delivery has two modes.  When the lane has no backlog (empty queue, no
// batch in flight), the sending task delivers its own message inline — the
// common uncongested case, and the one that keeps concurrent senders
// decoding in parallel instead of funnelling through one task.  When the
// lane has backlog, messages queue and the lane task drains them in small
// batches.
//
// The ordering contract is per sender task: a task's messages to a given
// receiver arrive in send order.  A sending task is itself serial, so its
// next send cannot start while its previous inline delivery is still in
// progress; and the inline path is taken only when the queue is empty AND no
// batch is being delivered, so a sender whose earlier message is still
// queued (or in a batch) can never leapfrog it.  Concurrent inline
// deliveries by different senders are unordered with respect to each other,
// exactly as concurrent direct sends always were.
type clusterRouter struct {
	vm   *VM
	cl   *clusterRT // destination cluster this lane serves
	src  int        // source cluster this lane receives from
	wake backend.Event
	done backend.Gate

	mu       sync.Mutex
	q        []wireMsg
	batching bool // the lane task is delivering a taken batch
	closed   bool

	// Lane observability (vm.RouterStats): inline deliveries by sending
	// tasks, messages queued for the lane task, and backlog messages the
	// lane task drained.  Guarded by mu; bumping them costs nothing extra
	// because every path below already holds it.
	statInline   int64
	statEnqueued int64
	statDrained  int64
}

// startRouters spawns the router lanes: for every destination cluster, one
// lane per other (source) cluster, in (destination, source) order so spawn
// order is deterministic.  Single-cluster machines skip routing entirely:
// every send is intra-cluster.
func (vm *VM) startRouters() error {
	nums := vm.clusterNumbers()
	if len(nums) < 2 {
		return nil
	}
	for _, n := range nums {
		cl, _ := vm.cluster(n)
		cl.router = make(map[int]*clusterRouter, len(nums)-1)
		for _, src := range nums {
			if src == n {
				continue
			}
			r := &clusterRouter{vm: vm, cl: cl, src: src, wake: vm.backend.NewEvent(), done: vm.backend.NewGate()}
			vm.backend.Spawn(fmt.Sprintf("pisces.router/c%d-c%d", src, n), r.run)
			cl.router[src] = r
			vm.routers = append(vm.routers, r)
		}
	}
	return nil
}

// routeMessage sends one message across clusters: the argument list is
// codec-encoded into the sender's heap shard, the message's storage on the
// destination shard is reserved, and the wire bytes are handed to the
// destination cluster's router.  Reserving the destination storage here —
// not at delivery — keeps the pre-shard error contract: a send that the
// receiving cluster cannot hold fails with ErrHeapExhausted at the sender
// instead of vanishing in flight.  It returns the charged byte size so the
// caller can charge send ticks; both allocations are owned by the router
// from here on.  from is the sending cluster (it must differ from the
// destination's), dest the receiving task's record.
func (vm *VM) routeMessage(from *clusterRT, dest *taskRec, msgType string, sender TaskID, args []Value, seq, sendSeq uint64, reply *initReply) (int, error) {
	var spanT0 time.Time
	if vm.spansOn() {
		spanT0 = vm.om.reg.Now()
	}
	size, err := encodedSize(args)
	if err != nil {
		return 0, err
	}
	off, err := from.heap.Alloc(size)
	if err != nil {
		return 0, vm.heapErr(err)
	}
	// Encode straight into the shard's arena: the packet-model size always
	// bounds the wire size (a packet holds more than an argument's wire
	// overhead), so the append never outgrows the allocation.
	buf := from.heap.Bytes(off, size)
	var obsT0 time.Time
	if vm.metricsOn() {
		obsT0 = vm.om.reg.Now()
	}
	wire, err := msgcodec.AppendEncode(buf[:0], args)
	if !obsT0.IsZero() {
		vm.om.encodeNS.ObserveDuration(vm.om.reg.Now().Sub(obsT0))
	}
	if err != nil {
		_ = from.heap.Free(off)
		return 0, err
	}
	if len(wire) > size {
		_ = from.heap.Free(off)
		return 0, fmt.Errorf("core: wire form of %s (%d bytes) exceeds its packet-model size %d", msgType, len(wire), size)
	}
	destOff, err := dest.cluster.heap.Alloc(size)
	if err != nil {
		_ = from.heap.Free(off)
		return 0, vm.heapErr(err)
	}
	// The destination-shard reservation is this message's heap charge (the
	// delivered message takes ownership of it in deliver, not through
	// chargeMessageOn), so count it here to keep charge/recover balanced.
	if vm.metricsOn() {
		vm.om.heapCharges.Inc()
		vm.om.heapMsgBytes.Observe(int64(size))
	}
	edge := vm.newEdge()
	if reply != nil {
		reply.edge = edge
	}
	w := wireMsg{
		dest: dest, msgType: msgType, sender: sender, seq: seq, sendSeq: sendSeq, edge: edge,
		srcHeap: from.heap, off: off, destOff: destOff, size: size, wireLen: len(wire),
		reply: reply,
	}
	// The send-side half of the causal pair: a flight-recorder event and, when
	// spans are live, a small send span the flow arrow starts inside.
	vm.om.rec.Record(from.cfg.Number, msgcodec.EvSend, edge,
		int64(from.cfg.Number), int64(dest.cluster.cfg.Number))
	if !spanT0.IsZero() {
		lane := fmt.Sprintf("send/c%d", from.cfg.Number)
		vm.om.reg.Span(lane, "send "+msgType, spanT0)
		vm.om.reg.Flow(edge, lane, obs.FlowStart, spanT0)
	}
	if !dest.cluster.router[from.cfg.Number].send(w) {
		_ = from.heap.Free(off)
		_ = dest.cluster.heap.Free(destOff)
		reply.deliver(NilTask)
		return 0, ErrVMTerminated
	}
	return size, nil
}

// send hands one wire message to the lane: delivered inline by the calling
// task when the lane has no backlog, queued for the lane task otherwise.  It
// reports false if the lane has already been stopped (VM shutdown).
func (r *clusterRouter) send(w wireMsg) bool {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return false
	}
	if len(r.q) == 0 && !r.batching {
		r.statInline++
		r.mu.Unlock()
		r.deliver(&w)
		return true
	}
	if r.vm.metricsOn() {
		w.enq = r.vm.om.reg.Now()
	}
	r.q = append(r.q, w)
	r.statEnqueued++
	r.mu.Unlock()
	r.wake.Pulse()
	return true
}

// enqueue appends one wire message for the lane task without the inline fast
// path (used by flush tokens, which must observe queue order strictly).  It
// reports false if the lane has already been stopped.
func (r *clusterRouter) enqueue(w wireMsg) bool {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return false
	}
	r.q = append(r.q, w)
	r.statEnqueued++
	r.mu.Unlock()
	r.wake.Pulse()
	return true
}

// run is the router task body: wait for wire messages, drain them in small
// batches, exit once stopped and fully drained.  Waiting goes through the
// backend event, so the wait is scheduler-visible under a deterministic
// backend; the done gate is opened on exit for stop to wait on.
func (r *clusterRouter) run() {
	defer r.done.Open()
	batch := make([]wireMsg, 0, routerBatch)
	for {
		r.mu.Lock()
		for len(r.q) == 0 {
			if r.closed {
				r.mu.Unlock()
				return
			}
			r.mu.Unlock()
			r.wake.Wait()
			r.mu.Lock()
		}
		r.batching = true
		n := len(r.q)
		if n > routerBatch {
			n = routerBatch
		}
		batch = append(batch[:0], r.q[:n]...)
		r.statDrained += int64(n)
		rest := copy(r.q, r.q[n:])
		for i := rest; i < len(r.q); i++ {
			r.q[i] = wireMsg{} // drop heap/gate references
		}
		r.q = r.q[:rest]
		r.mu.Unlock()
		for i := range batch {
			r.deliver(&batch[i])
			batch[i] = wireMsg{}
		}
		r.mu.Lock()
		r.batching = false
		r.mu.Unlock()
	}
}

// deliver decodes one wire message into the destination shard and queues it
// on the destination task.  The wire bytes are freed from the source shard
// unconditionally — delivered or dropped, the in-flight copy is recovered.
func (r *clusterRouter) deliver(w *wireMsg) {
	if w.flush != nil {
		w.flush.Open()
		return
	}
	metrics, spans := r.vm.metricsOn(), r.vm.spansOn()
	var obsT0 time.Time
	if metrics || spans {
		obsT0 = r.vm.om.reg.Now()
		if metrics && !w.enq.IsZero() {
			r.vm.om.laneQueue.ObserveDuration(obsT0.Sub(w.enq))
		}
	}
	args, derr := msgcodec.Decode(w.srcHeap.Bytes(w.off, w.wireLen))
	if metrics {
		r.vm.om.decodeNS.ObserveDuration(r.vm.om.reg.Now().Sub(obsT0))
	}
	if spans {
		defer func() {
			lane := fmt.Sprintf("router/c%d->c%d", r.src, r.cl.cfg.Number)
			r.vm.om.reg.Span(lane, "deliver "+w.msgType, obsT0)
			// End the causal flow inside the deliver span: the viewer draws
			// the arrow from the send span to this slice.
			r.vm.om.reg.Flow(w.edge, lane, obs.FlowEnd, obsT0)
		}()
	}
	_ = w.srcHeap.Free(w.off)
	if derr != nil {
		// Unreachable for run-time-encoded messages; surface loudly rather
		// than lose traffic silently if the codec and router ever disagree.
		_ = r.cl.heap.Free(w.destOff)
		r.vm.userPrintf("pisces: router cluster %d: corrupt wire message %s from %s: %v\n",
			r.cl.cfg.Number, w.msgType, w.sender, derr)
		w.reply.deliver(NilTask)
		return
	}
	// Charge the transfer to the destination PE's clock without occupying its
	// CPU: the inter-cluster copy is bus work, not receiver computation.
	r.cl.primary.Charge(int64(costRouteMsg + costSendPacket*((w.size-msgcodec.HeaderBytes)/msgcodec.PacketBytes)))

	// The destination-shard storage was reserved at send time; the message
	// just takes ownership of it here.
	msg := newMessage(w.msgType, w.sender, args, w.seq)
	msg.sendSeq = w.sendSeq
	msg.edge = w.edge
	msg.reply = w.reply
	msg.heapOff, msg.heapBytes, msg.heapShard = w.destOff, w.size, r.cl.heap
	switch w.dest.queue.put(msg) {
	case putOK:
	case putDup:
		// HA duplicate suppression: the receiver admitted this send sequence
		// number in a previous life; drop the re-delivery.
		r.vm.releaseMessage(msg)
		recycleMessage(msg)
	case putClosed:
		// Receiver terminated while the message was in flight (or, for an
		// initiate request, the VM is shutting down): the send already
		// succeeded from the sender's point of view, the message is dropped
		// like any message queued at a task's termination.
		r.vm.releaseMessage(msg)
		recycleMessage(msg)
		w.reply.deliver(NilTask)
	}
}

// flushRouters blocks until every wire message enqueued before the call has
// been delivered, by pushing a flush token through each router's queue.
func (vm *VM) flushRouters() {
	for _, r := range vm.routers {
		g := vm.backend.NewGate()
		if r.enqueue(wireMsg{flush: g}) {
			g.Wait()
		}
	}
}

// stop drains the router and waits for its task to exit.  Pending wire
// messages are still delivered (or their storage recovered) before the task
// returns, so shutdown leaves every heap shard empty of in-flight traffic.
func (r *clusterRouter) stop() {
	r.mu.Lock()
	r.closed = true
	r.mu.Unlock()
	r.wake.Pulse()
	r.done.Wait()
}
