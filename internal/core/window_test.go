package core

import (
	"testing"
	"time"

	"repro/internal/config"
	"repro/internal/rect"
)

func TestArrayBasics(t *testing.T) {
	vm := newTestVM(t, config.Simple(1, 2), Options{})
	runTaskBodyOn(t, vm, func(task *Task) error {
		a, err := task.NewArray("grid", 4, 5)
		if err != nil {
			return err
		}
		if a.Rows() != 4 || a.Cols() != 5 || a.Name() != "grid" || a.Owner() != task.ID() {
			t.Errorf("array metadata wrong: %+v", a)
		}
		if err := a.Set(2, 3, 7.5); err != nil {
			return err
		}
		if v, err := a.Get(2, 3); err != nil || v != 7.5 {
			t.Errorf("Get = %v, %v", v, err)
		}
		if err := a.Set(0, 1, 1); err == nil {
			t.Error("out-of-range Set accepted")
		}
		if _, err := a.Get(5, 1); err == nil {
			t.Error("out-of-range Get accepted")
		}
		a.Fill(1.25)
		if v, _ := a.Get(4, 5); v != 1.25 {
			t.Errorf("Fill failed: %v", v)
		}
		if _, err := task.NewArray("bad", 0, 5); err == nil {
			t.Error("zero-dimension array accepted")
		}
		return nil
	})
}

func TestArrayChargesLocalMemory(t *testing.T) {
	vm := newTestVM(t, config.Simple(1, 2), Options{})
	pe := vm.Machine().PE(3)
	var during int
	runTaskBodyOn(t, vm, func(task *Task) error {
		if _, err := task.NewArray("big", 100, 100); err != nil {
			return err
		}
		during, _, _ = pe.LocalStats()
		return nil
	})
	vm.WaitIdle()
	after, _, _ := pe.LocalStats()
	if during-after < 8*100*100 {
		t.Errorf("array storage not recovered at task termination: during=%d after=%d", during, after)
	}
}

func TestWindowCreateShrinkReadWrite(t *testing.T) {
	vm := newTestVM(t, config.Simple(1, 2), Options{})
	runTaskBodyOn(t, vm, func(task *Task) error {
		a, err := task.NewArray("data", 6, 6)
		if err != nil {
			return err
		}
		for r := 1; r <= 6; r++ {
			for c := 1; c <= 6; c++ {
				a.Set(r, c, float64(10*r+c))
			}
		}
		w, err := task.WholeWindow(a)
		if err != nil {
			return err
		}
		if w.Rows() != 6 || w.Cols() != 6 || w.Size() != 36 {
			t.Errorf("whole window shape %dx%d", w.Rows(), w.Cols())
		}
		if w.Owner != task.ID() {
			t.Errorf("window owner %s", w.Owner)
		}

		// Shrink to rows 2..3, cols 4..6 and read through it.
		sub, err := w.Shrink(rect.New(2, 3, 4, 6))
		if err != nil {
			return err
		}
		data, err := task.ReadWindow(sub)
		if err != nil {
			return err
		}
		want := []float64{24, 25, 26, 34, 35, 36}
		if len(data) != len(want) {
			t.Fatalf("read %d elements, want %d", len(data), len(want))
		}
		for i := range want {
			if data[i] != want[i] {
				t.Errorf("element %d = %v, want %v", i, data[i], want[i])
			}
		}

		// Write through a window and observe it in the owner's array.
		if err := task.WriteWindow(sub, []float64{1, 2, 3, 4, 5, 6}); err != nil {
			return err
		}
		if v, _ := a.Get(3, 6); v != 6 {
			t.Errorf("write through window not visible: %v", v)
		}
		if err := task.WriteWindow(sub, []float64{1, 2}); err == nil {
			t.Error("shape-mismatched write accepted")
		}

		// Shrinking beyond the window is rejected; growing is impossible.
		if _, err := sub.Shrink(rect.New(1, 6, 1, 6)); err == nil {
			t.Error("growing shrink accepted")
		}
		// Windows on regions outside the array are rejected.
		if _, err := task.WindowOn(a, rect.New(1, 7, 1, 6)); err == nil {
			t.Error("window outside array accepted")
		}
		return nil
	})
}

func TestWindowOwnershipRule(t *testing.T) {
	vm := newTestVM(t, config.Simple(2, 2), Options{})
	ownerArr := make(chan *Array, 1)
	ownerReady := make(chan TaskID, 1)
	release := make(chan struct{})
	vm.Register("owner", func(task *Task) {
		a, err := task.NewArray("mine", 3, 3)
		if err != nil {
			panic(err)
		}
		ownerArr <- a
		ownerReady <- task.ID()
		// Stay alive until the test is done so the array remains resolvable.
		_, _ = task.Accept(AcceptSpec{Total: 1, Types: []TypeCount{{Type: "done"}}, Delay: Forever})
		close(release)
	})
	ownerID, err := vm.Initiate("owner", OnCluster(1))
	if err != nil {
		t.Fatal(err)
	}
	a := <-ownerArr
	<-ownerReady

	errs := make(chan error, 1)
	vm.Register("stranger", func(task *Task) {
		// A task cannot create a window on an array it does not own...
		if _, err := task.WindowOn(a, rect.Whole(3, 3)); err == nil {
			errs <- nil
			return
		}
		// ...but it can read and write through a window value it was given.
		w := Window{Owner: a.Owner(), ArrayID: a.ID(), Region: rect.Whole(3, 3)}
		if err := task.WriteWindow(w, make([]float64, 9)); err != nil {
			errs <- err
			return
		}
		_, err := task.ReadWindow(w)
		errs <- err
	})
	if _, err := vm.Run("stranger", OnCluster(2)); err != nil {
		t.Fatal(err)
	}
	if err := <-errs; err != nil {
		t.Fatal(err)
	}
	if err := vm.SendFromUser(ownerID, "done"); err != nil {
		t.Fatal(err)
	}
	<-release
	vm.WaitIdle()
}

func TestWindowOnTerminatedOwnerFails(t *testing.T) {
	vm := newTestVM(t, config.Simple(1, 2), Options{})
	winCh := make(chan Window, 1)
	vm.Register("ephemeral", func(task *Task) {
		a, err := task.NewArray("gone", 2, 2)
		if err != nil {
			panic(err)
		}
		w, err := task.WholeWindow(a)
		if err != nil {
			panic(err)
		}
		winCh <- w
	})
	if _, err := vm.Run("ephemeral", OnCluster(1)); err != nil {
		t.Fatal(err)
	}
	w := <-winCh
	runTaskBodyOn(t, vm, func(task *Task) error {
		if _, err := task.ReadWindow(w); err == nil {
			t.Error("read through a window whose owner terminated should fail")
		}
		return nil
	})
}

func TestWindowRowBandsPartitioning(t *testing.T) {
	vm := newTestVM(t, config.Simple(1, 2), Options{})
	runTaskBodyOn(t, vm, func(task *Task) error {
		a, err := task.NewArray("field", 10, 4)
		if err != nil {
			return err
		}
		w, err := task.WholeWindow(a)
		if err != nil {
			return err
		}
		bands, err := w.RowBands(3)
		if err != nil {
			return err
		}
		if len(bands) != 3 {
			t.Fatalf("bands = %d", len(bands))
		}
		total := 0
		for _, b := range bands {
			if b.Owner != w.Owner || b.ArrayID != w.ArrayID {
				t.Error("band window lost its owner/array identity")
			}
			total += b.Size()
		}
		if total != w.Size() {
			t.Errorf("bands cover %d elements, want %d", total, w.Size())
		}
		return nil
	})
}

func TestWindowValueThroughMessages(t *testing.T) {
	// The full Section 8 pattern: the owner partitions its array into window
	// values and sends them to worker tasks; each worker reads its partition,
	// processes it, and writes the result back through the window.
	vm := newTestVM(t, config.Simple(2, 4), Options{})
	const rows, cols, workers = 8, 6, 4

	vm.Register("worker", func(task *Task) {
		m, err := task.AcceptOne("partition")
		if err != nil {
			panic(err)
		}
		w := MustWin(m.Arg(0))
		data, err := task.ReadWindow(w)
		if err != nil {
			panic(err)
		}
		for i := range data {
			data[i] *= 2
		}
		if err := task.WriteWindow(w, data); err != nil {
			panic(err)
		}
		if err := task.SendParent("partition-done"); err != nil {
			panic(err)
		}
	})
	vm.Register("owner", func(task *Task) {
		a, err := task.NewArray("field", rows, cols)
		if err != nil {
			panic(err)
		}
		for r := 1; r <= rows; r++ {
			for c := 1; c <= cols; c++ {
				a.Set(r, c, 1)
			}
		}
		whole, err := task.WholeWindow(a)
		if err != nil {
			panic(err)
		}
		bands, err := whole.RowBands(workers)
		if err != nil {
			panic(err)
		}
		for _, band := range bands {
			id, err := task.InitiateWait(Any(), "worker")
			if err != nil {
				panic(err)
			}
			if err := task.Send(id, "partition", Win(band)); err != nil {
				panic(err)
			}
		}
		if _, err := task.AcceptN(workers, "partition-done"); err != nil {
			panic(err)
		}
		// Every element must have been doubled exactly once.
		for r := 1; r <= rows; r++ {
			for c := 1; c <= cols; c++ {
				if v, _ := a.Get(r, c); v != 2 {
					panic("element not processed exactly once")
				}
			}
		}
		task.SendParent("all-ok")
	})

	ownerID, err := vm.Initiate("owner", OnCluster(1))
	if err != nil {
		t.Fatal(err)
	}
	if err := vm.WaitTask(ownerID); err != nil {
		t.Fatal(err)
	}
	vm.WaitIdle()
	ops, bytes := vm.WindowTraffic()
	if ops < int64(2*workers) {
		t.Errorf("window ops = %d, want at least %d", ops, 2*workers)
	}
	if bytes != int64(2*8*rows*cols) {
		t.Errorf("window bytes = %d, want %d (one read + one write of the array)", bytes, 2*8*rows*cols)
	}
}

func TestFileArrays(t *testing.T) {
	vm := newTestVM(t, config.Simple(1, 2), Options{})
	w, err := vm.CreateFileArray("input.dat", 5, 5)
	if err != nil {
		t.Fatal(err)
	}
	if w.Owner != vm.FileControllerID() {
		t.Fatalf("file array owner = %s, want file controller %s", w.Owner, vm.FileControllerID())
	}
	if _, err := vm.CreateFileArray("input.dat", 5, 5); err == nil {
		t.Fatal("duplicate file array accepted")
	}
	if _, err := vm.CreateFileArray("bad", 0, 1); err == nil {
		t.Fatal("zero-dimension file array accepted")
	}
	arr, ok := vm.FileArray("input.dat")
	if !ok {
		t.Fatal("FileArray lookup failed")
	}
	arr.Fill(3)

	runTaskBodyOn(t, vm, func(task *Task) error {
		fw, err := task.RequestFileWindow("input.dat")
		if err != nil {
			return err
		}
		data, err := task.ReadWindow(fw)
		if err != nil {
			return err
		}
		if len(data) != 25 || data[0] != 3 {
			t.Errorf("file window read %d elements, first %v", len(data), data[0])
		}
		sub, err := fw.Shrink(rect.New(1, 1, 1, 5))
		if err != nil {
			return err
		}
		if err := task.WriteWindow(sub, []float64{9, 9, 9, 9, 9}); err != nil {
			return err
		}
		if _, err := task.RequestFileWindow("missing.dat"); err == nil {
			t.Error("window on unknown file array accepted")
		}
		return nil
	})
	if v, _ := arr.Get(1, 3); v != 9 {
		t.Fatalf("file array write not visible: %v", v)
	}
}

func TestFileControllerDirectory(t *testing.T) {
	vm := newTestVM(t, config.Simple(1, 2), Options{})
	if _, err := vm.CreateFileArray("a.dat", 2, 2); err != nil {
		t.Fatal(err)
	}
	if _, err := vm.CreateFileArray("b.dat", 2, 2); err != nil {
		t.Fatal(err)
	}
	runTaskBodyOn(t, vm, func(task *Task) error {
		if err := task.Send(vm.FileControllerID(), "directory"); err != nil {
			return err
		}
		m, err := task.Accept(AcceptSpec{Total: 1, Types: []TypeCount{{Type: "directory-reply"}}, Delay: 3 * time.Second})
		if err != nil {
			return err
		}
		if m.TimedOut {
			t.Error("file controller never answered the directory request")
			return nil
		}
		reply := MustStr(m.First("directory-reply").Arg(0))
		if reply != "[a.dat b.dat]" {
			t.Errorf("directory reply = %q", reply)
		}
		return nil
	})
}
