// Package mmos simulates MMOS, the "simple Unix-like kernel" that the FLEX/32
// runs on PEs 3-20 (paper, Section 11).  The PISCES 2 run-time library uses
// MMOS only for a few services: process creation and termination, terminal
// input/output, storage allocation, and "swapping the CPU among ready
// processes".  This package provides exactly those services over the
// simulated machine in internal/flex.
//
// A Proc is the kernel's view of one running program: it is bound to a PE,
// and it must hold the PE's CPU to execute.  All PISCES blocking operations
// (ACCEPT waits, barriers, critical regions, waiting for a free slot) release
// the CPU while the process is blocked, which is what bounds the degree of
// multiprogramming on each PE to the slot counts chosen in the configuration.
package mmos

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/backend"
	"repro/internal/flex"
)

// State is the scheduling state of a process.
type State int32

// Process states.
const (
	// Ready means the process exists but does not currently hold its PE's CPU.
	Ready State = iota
	// Running means the process holds its PE's CPU.
	Running
	// Blocked means the process is waiting on an event (message arrival,
	// barrier, lock, slot) and has released the CPU.
	Blocked
	// Exited means the process has terminated.
	Exited
)

// String returns the conventional short name of the state.
func (s State) String() string {
	switch s {
	case Ready:
		return "READY"
	case Running:
		return "RUNNING"
	case Blocked:
		return "BLOCKED"
	case Exited:
		return "EXITED"
	}
	return fmt.Sprintf("State(%d)", int32(s))
}

// Kernel is the per-machine MMOS instance.
type Kernel struct {
	machine *flex.Machine
	backend backend.Backend

	mu     sync.Mutex
	nextID int
	procs  map[int]*Proc
	// cpus holds the per-PE CPU tokens used under a deterministic backend,
	// where the PE's own channel token would block invisibly to the
	// scheduler.  Keyed by PE number, created lazily.
	cpus map[int]backend.Sem

	spawned     atomic.Int64
	exited      atomic.Int64
	cpuSwitches atomic.Int64
}

// NewKernel creates a kernel controlling the given machine, scheduling
// processes on raw goroutines.
func NewKernel(m *flex.Machine) *Kernel { return NewKernelOn(m, backend.Default()) }

// NewKernelOn creates a kernel that spawns its processes through the given
// scheduling backend.  With a deterministic backend every process becomes a
// cooperatively scheduled task and the per-PE CPU exclusivity is enforced
// with backend semaphores instead of the PE's channel token.
func NewKernelOn(m *flex.Machine, b backend.Backend) *Kernel {
	return &Kernel{machine: m, backend: b, procs: make(map[int]*Proc), nextID: 1}
}

// cpuToken is the exclusive-CPU interface a process acquires to run.  The
// flex.PE itself satisfies it (the goroutine path); deterministic backends
// substitute a scheduler-visible semaphore.
type cpuToken interface {
	Acquire()
	Release()
}

// semCPU adapts a backend semaphore to the cpuToken interface.
type semCPU struct{ sem backend.Sem }

func (c semCPU) Acquire() { c.sem.Acquire() }
func (c semCPU) Release() { c.sem.Release() }

// cpuFor returns the CPU token processes on pe must hold to execute.
func (k *Kernel) cpuFor(pe *flex.PE) cpuToken {
	if !k.backend.Deterministic() {
		return pe
	}
	k.mu.Lock()
	defer k.mu.Unlock()
	if k.cpus == nil {
		k.cpus = make(map[int]backend.Sem)
	}
	s, ok := k.cpus[pe.ID()]
	if !ok {
		s = k.backend.NewSem()
		k.cpus[pe.ID()] = s
	}
	return semCPU{sem: s}
}

// Machine returns the machine this kernel controls.
func (k *Kernel) Machine() *flex.Machine { return k.machine }

// Proc is one MMOS process.
type Proc struct {
	kernel *Kernel
	id     int
	name   string
	pe     *flex.PE
	cpu    cpuToken

	state  atomic.Int32
	done   chan struct{}
	doneMu sync.Once
	exited backend.Gate

	localBytes int // local memory charged at spawn, released at exit
}

// Spawn creates a process named name on PE pe and runs body in a new
// goroutine.  localBytes of the PE's local memory are charged to the process
// for its lifetime (program text + data, as in the paper's storage
// measurements).  The body receives the Proc and runs with the CPU already
// held; it must use Yield/Block for scheduling points and must not return
// while blocked.  Spawn returns once the process exists (not once it has run).
func (k *Kernel) Spawn(pe *flex.PE, name string, localBytes int, body func(*Proc)) (*Proc, error) {
	if pe == nil {
		return nil, fmt.Errorf("mmos: spawn %q on nil PE", name)
	}
	if pe.IsUnix() {
		return nil, fmt.Errorf("mmos: PE %d runs Unix only and cannot host PISCES processes", pe.ID())
	}
	if localBytes > 0 {
		if err := pe.AllocLocal(localBytes); err != nil {
			return nil, fmt.Errorf("mmos: spawn %q: %w", name, err)
		}
	}

	k.mu.Lock()
	id := k.nextID
	k.nextID++
	p := &Proc{kernel: k, id: id, name: name, pe: pe, done: make(chan struct{}),
		exited: k.backend.NewGate(), localBytes: localBytes}
	p.state.Store(int32(Ready))
	k.procs[id] = p
	k.mu.Unlock()
	p.cpu = k.cpuFor(pe)

	pe.BindProc()
	k.spawned.Add(1)

	k.backend.Spawn(name, func() {
		p.acquireCPU()
		defer p.exit()
		body(p)
	})
	return p, nil
}

// exit tears the process down: releases the CPU if held, releases local
// memory, and marks the process exited.
func (p *Proc) exit() {
	if State(p.state.Load()) == Running {
		p.releaseCPU()
	}
	p.state.Store(int32(Exited))
	if p.localBytes > 0 {
		p.pe.FreeLocal(p.localBytes)
	}
	p.pe.UnbindProc()
	p.kernel.exited.Add(1)
	p.kernel.mu.Lock()
	delete(p.kernel.procs, p.id)
	p.kernel.mu.Unlock()
	p.doneMu.Do(func() { close(p.done) })
	p.exited.Open()
}

// ID returns the kernel-assigned process id.
func (p *Proc) ID() int { return p.id }

// Name returns the process name given at Spawn.
func (p *Proc) Name() string { return p.name }

// PE returns the processor the process is bound to.
func (p *Proc) PE() *flex.PE { return p.pe }

// State returns the process's scheduling state.
func (p *Proc) State() State { return State(p.state.Load()) }

// Done returns a channel closed when the process has exited.  Under a
// deterministic backend prefer WaitExited, which pumps the scheduler.
func (p *Proc) Done() <-chan struct{} { return p.done }

// WaitExited blocks until the process has exited.  It is safe in both
// scheduling contexts: task code parks; the external driver pumps.
func (p *Proc) WaitExited() { p.exited.Wait() }

func (p *Proc) acquireCPU() {
	p.cpu.Acquire()
	p.state.Store(int32(Running))
	p.kernel.cpuSwitches.Add(1)
}

func (p *Proc) releaseCPU() {
	p.state.Store(int32(Ready))
	p.cpu.Release()
}

// Charge advances the PE clock by n ticks on behalf of this process.  The
// caller must be Running.
func (p *Proc) Charge(n int64) {
	p.pe.Charge(n)
}

// Yield releases the CPU so other ready processes on the same PE can run,
// then re-acquires it.  This is MMOS "swapping the CPU among ready
// processes"; the PISCES run-time yields at every statement-level runtime
// call so the slot-bounded multiprogramming of a cluster's primary PE is
// visible in the simulation.
func (p *Proc) Yield() {
	p.Charge(1)
	p.releaseCPU()
	// Re-enter the backend's ready set between releasing and re-acquiring
	// the CPU: with an uncontended CPU token the release/acquire pair alone
	// never parks, so without this a deterministic backend would get no
	// scheduling point out of a yield (a force member alone on its PE would
	// run its whole region uninterleaved).  A no-op on the goroutine backend.
	p.kernel.backend.Yield()
	p.acquireCPU()
}

// Block releases the CPU, waits until wake is closed (or receives a value),
// then re-acquires the CPU.  Every blocking PISCES primitive is built on
// Block so that a blocked task never occupies its PE.
func (p *Proc) Block(wake <-chan struct{}) {
	p.state.Store(int32(Blocked))
	p.cpu.Release()
	<-wake
	p.cpu.Acquire()
	p.state.Store(int32(Running))
	p.kernel.cpuSwitches.Add(1)
}

// BlockFn releases the CPU, runs wait (which must block until the awaited
// condition holds), then re-acquires the CPU.
func (p *Proc) BlockFn(wait func()) {
	p.state.Store(int32(Blocked))
	p.cpu.Release()
	wait()
	p.cpu.Acquire()
	p.state.Store(int32(Running))
	p.kernel.cpuSwitches.Add(1)
}

// Stats is a snapshot of kernel-wide counters.
type Stats struct {
	Live        int
	Spawned     int64
	Exited      int64
	CPUSwitches int64
}

// Stats returns kernel counters.
func (k *Kernel) Stats() Stats {
	k.mu.Lock()
	live := len(k.procs)
	k.mu.Unlock()
	return Stats{
		Live:        live,
		Spawned:     k.spawned.Load(),
		Exited:      k.exited.Load(),
		CPUSwitches: k.cpuSwitches.Load(),
	}
}

// Procs returns a snapshot of the live processes, for the execution
// environment's displays.
func (k *Kernel) Procs() []*Proc {
	k.mu.Lock()
	defer k.mu.Unlock()
	out := make([]*Proc, 0, len(k.procs))
	for _, p := range k.procs {
		out = append(out, p)
	}
	return out
}

// ProcsOnPE returns the live processes bound to PE number pe.
func (k *Kernel) ProcsOnPE(pe int) []*Proc {
	k.mu.Lock()
	defer k.mu.Unlock()
	var out []*Proc
	for _, p := range k.procs {
		if p.pe.ID() == pe {
			out = append(out, p)
		}
	}
	return out
}
