package mmos

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/flex"
)

func newKernel(t testing.TB) *Kernel {
	t.Helper()
	return NewKernel(flex.MustNewMachine(flex.DefaultConfig()))
}

func TestSpawnRunsBody(t *testing.T) {
	k := newKernel(t)
	pe := k.Machine().PE(3)
	var ran atomic.Bool
	p, err := k.Spawn(pe, "worker", 0, func(p *Proc) {
		ran.Store(true)
		p.Charge(5)
	})
	if err != nil {
		t.Fatal(err)
	}
	<-p.Done()
	if !ran.Load() {
		t.Fatal("body did not run")
	}
	if p.State() != Exited {
		t.Fatalf("state = %v, want Exited", p.State())
	}
	if pe.Ticks() < 5 {
		t.Fatalf("ticks = %d, want >= 5", pe.Ticks())
	}
	st := k.Stats()
	if st.Spawned != 1 || st.Exited != 1 || st.Live != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestSpawnOnUnixPERejected(t *testing.T) {
	k := newKernel(t)
	if _, err := k.Spawn(k.Machine().PE(1), "bad", 0, func(*Proc) {}); err == nil {
		t.Fatal("spawn on Unix PE should fail")
	}
	if _, err := k.Spawn(nil, "bad", 0, func(*Proc) {}); err == nil {
		t.Fatal("spawn on nil PE should fail")
	}
}

func TestSpawnChargesLocalMemory(t *testing.T) {
	k := newKernel(t)
	pe := k.Machine().PE(4)
	release := make(chan struct{})
	p, err := k.Spawn(pe, "holder", 4096, func(p *Proc) {
		p.BlockFn(func() { <-release })
	})
	if err != nil {
		t.Fatal(err)
	}
	// Wait for the process to block so memory is definitely charged.
	waitState(t, p, Blocked)
	used, _, _ := pe.LocalStats()
	if used != 4096 {
		t.Fatalf("local used = %d, want 4096", used)
	}
	close(release)
	<-p.Done()
	used, _, _ = pe.LocalStats()
	if used != 0 {
		t.Fatalf("local used after exit = %d, want 0", used)
	}

	// A spawn whose local memory cannot be satisfied must fail cleanly.
	if _, err := k.Spawn(pe, "huge", flex.LocalMemoryBytes+1, func(*Proc) {}); err == nil {
		t.Fatal("expected local memory exhaustion at spawn")
	}
}

func waitState(t *testing.T, p *Proc, want State) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if p.State() == want {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("process %q never reached state %v (now %v)", p.Name(), want, p.State())
}

// TestSinglePEMultiprogramming verifies that two processes bound to the same
// PE never execute simultaneously: the observed concurrency inside the
// critical body is always 1.
func TestSinglePEMultiprogramming(t *testing.T) {
	k := newKernel(t)
	pe := k.Machine().PE(5)
	var inside, maxInside atomic.Int32
	var wg sync.WaitGroup
	body := func(p *Proc) {
		for i := 0; i < 50; i++ {
			cur := inside.Add(1)
			for {
				prev := maxInside.Load()
				if cur <= prev || maxInside.CompareAndSwap(prev, cur) {
					break
				}
			}
			inside.Add(-1)
			p.Yield()
		}
	}
	for i := 0; i < 4; i++ {
		wg.Add(1)
		p, err := k.Spawn(pe, "mp", 0, func(p *Proc) { defer wg.Done(); body(p) })
		if err != nil {
			t.Fatal(err)
		}
		_ = p
	}
	wg.Wait()
	if maxInside.Load() != 1 {
		t.Fatalf("observed %d processes running simultaneously on one PE", maxInside.Load())
	}
}

// TestTwoPEsRunConcurrently verifies that processes on different PEs can
// overlap in time.
func TestTwoPEsRunConcurrently(t *testing.T) {
	k := newKernel(t)
	var both sync.WaitGroup
	both.Add(2)
	barrier := make(chan struct{})
	meet := func(p *Proc) {
		both.Done()
		p.BlockFn(func() { <-barrier })
	}
	p1, err := k.Spawn(k.Machine().PE(3), "a", 0, meet)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := k.Spawn(k.Machine().PE(4), "b", 0, meet)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() { both.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("processes on different PEs failed to run concurrently")
	}
	close(barrier)
	<-p1.Done()
	<-p2.Done()
}

func TestBlockReleasesCPU(t *testing.T) {
	k := newKernel(t)
	pe := k.Machine().PE(6)
	wake := make(chan struct{})
	blocker, err := k.Spawn(pe, "blocker", 0, func(p *Proc) {
		p.Block(wake)
	})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, blocker, Blocked)

	// While the first process is blocked, another process on the same PE
	// must be able to run to completion.
	var ran atomic.Bool
	runner, err := k.Spawn(pe, "runner", 0, func(p *Proc) { ran.Store(true) })
	if err != nil {
		t.Fatal(err)
	}
	<-runner.Done()
	if !ran.Load() {
		t.Fatal("second process did not run while first was blocked")
	}
	close(wake)
	<-blocker.Done()
}

func TestProcsViews(t *testing.T) {
	k := newKernel(t)
	release := make(chan struct{})
	var ps []*Proc
	for i := 0; i < 3; i++ {
		p, err := k.Spawn(k.Machine().PE(3+i), "view", 0, func(p *Proc) {
			p.BlockFn(func() { <-release })
		})
		if err != nil {
			t.Fatal(err)
		}
		ps = append(ps, p)
	}
	for _, p := range ps {
		waitState(t, p, Blocked)
	}
	if got := len(k.Procs()); got != 3 {
		t.Fatalf("live procs = %d, want 3", got)
	}
	if got := len(k.ProcsOnPE(4)); got != 1 {
		t.Fatalf("procs on PE 4 = %d, want 1", got)
	}
	if got := k.Machine().PE(4).BoundProcs(); got != 1 {
		t.Fatalf("bound procs on PE 4 = %d, want 1", got)
	}
	close(release)
	for _, p := range ps {
		<-p.Done()
	}
	if got := len(k.Procs()); got != 0 {
		t.Fatalf("live procs after exit = %d, want 0", got)
	}
}

func TestStateString(t *testing.T) {
	cases := map[State]string{Ready: "READY", Running: "RUNNING", Blocked: "BLOCKED", Exited: "EXITED", State(99): "State(99)"}
	for s, want := range cases {
		if got := s.String(); got != want {
			t.Errorf("State(%d).String() = %q, want %q", s, got, want)
		}
	}
}

func BenchmarkSpawnExit(b *testing.B) {
	k := newKernel(b)
	pe := k.Machine().PE(3)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p, err := k.Spawn(pe, "bench", 0, func(*Proc) {})
		if err != nil {
			b.Fatal(err)
		}
		<-p.Done()
	}
}

func BenchmarkYield(b *testing.B) {
	k := newKernel(b)
	pe := k.Machine().PE(3)
	done := make(chan struct{})
	_, err := k.Spawn(pe, "bench", 0, func(p *Proc) {
		for i := 0; i < b.N; i++ {
			p.Yield()
		}
		close(done)
	})
	if err != nil {
		b.Fatal(err)
	}
	<-done
}
