package memory

import (
	"errors"
	"fmt"
	"sync/atomic"
)

// ErrBudgetExceeded is returned by Alloc when the allocation would fit the
// arena but exceeds the tenant budget attached to the allocator.
var ErrBudgetExceeded = errors.New("memory: heap budget exceeded")

// Budget caps the summed live allocation (bytes in use, including headers)
// across every allocator it is attached to.  Where the arena bounds what one
// shard can physically hold, a Budget bounds what one *tenant* may hold
// across all of its shards: a serving daemon attaches one Budget to every
// heap shard of a session's VM, so the tenant's total heap use is capped
// regardless of how its messages spread over clusters.
//
// A nil *Budget is valid and unlimited.  Budget is safe for concurrent use.
type Budget struct {
	max  int64
	used atomic.Int64
}

// NewBudget creates a budget allowing max live bytes; max <= 0 is unlimited
// (equivalent to a nil Budget).
func NewBudget(max int64) *Budget {
	if max <= 0 {
		return nil
	}
	return &Budget{max: max}
}

// Max returns the budget cap in bytes (0 for unlimited/nil).
func (b *Budget) Max() int64 {
	if b == nil {
		return 0
	}
	return b.max
}

// Used returns the bytes currently charged against the budget.
func (b *Budget) Used() int64 {
	if b == nil {
		return 0
	}
	return b.used.Load()
}

// tryCharge atomically reserves n bytes, failing without side effects if the
// reservation would exceed the cap.
func (b *Budget) tryCharge(n int64) bool {
	if b == nil {
		return true
	}
	for {
		u := b.used.Load()
		if u+n > b.max {
			return false
		}
		if b.used.CompareAndSwap(u, u+n) {
			return true
		}
	}
}

// release returns n bytes to the budget.
func (b *Budget) release(n int64) {
	if b == nil {
		return
	}
	b.used.Add(-n)
}

// SetBudget attaches a tenant budget to the allocator.  Every subsequent
// Alloc charges the budget (with the same size the allocator's own inUse
// accounting uses, so charges and releases balance exactly) and fails with
// ErrBudgetExceeded when the charge would push the budget past its cap.
// Attach before the allocator is in use: blocks already live when the budget
// arrives were never charged, and freeing them would over-release.
func (a *Allocator) SetBudget(b *Budget) {
	a.mu.Lock()
	a.budget = b
	a.mu.Unlock()
}

// budgetErr formats the budget-exhaustion failure for Alloc.
func budgetErr(n int, b *Budget) error {
	return fmt.Errorf("%w: requested %d bytes, %d in use of %d budgeted",
		ErrBudgetExceeded, n, b.Used(), b.Max())
}
