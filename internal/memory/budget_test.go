package memory

import (
	"errors"
	"testing"
)

func TestBudgetCapsAcrossShards(t *testing.T) {
	// Two shards share one 256-byte tenant budget; each shard's arena alone
	// could hold far more.
	b := NewBudget(256)
	s1, s2 := New(4096), New(4096)
	s1.SetBudget(b)
	s2.SetBudget(b)

	// 64 usable + 8 header = 72 charged per allocation: three fit in 256.
	off1, err := s1.Alloc(64)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s2.Alloc(64); err != nil {
		t.Fatal(err)
	}
	if _, err := s1.Alloc(64); err != nil {
		t.Fatal(err)
	}
	_, err = s2.Alloc(64)
	if !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("fourth alloc err = %v; want ErrBudgetExceeded", err)
	}
	if got := b.Used(); got != 3*72 {
		t.Fatalf("budget used = %d; want %d", got, 3*72)
	}

	// Freeing on one shard releases budget for the other.
	if err := s1.Free(off1); err != nil {
		t.Fatal(err)
	}
	if _, err := s2.Alloc(64); err != nil {
		t.Fatalf("alloc after free: %v", err)
	}
}

// TestBudgetBalancesNoSplitBlocks exercises the branch where the allocator
// hands out a whole block larger than the request: the budget must be
// charged with the actual block size, or the matching Free would release
// more than was charged and the budget would drift negative.
func TestBudgetBalancesNoSplitBlocks(t *testing.T) {
	b := NewBudget(1 << 20)
	a := New(64) // one block: 56 usable bytes after the header
	a.SetBudget(b)
	// Requesting 48 leaves rem=8 < headerSize+align, so the full 56-byte
	// block is handed out.
	off, err := a.Alloc(48)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := b.Used(), int64(a.InUse()); got != want {
		t.Fatalf("budget used = %d; allocator inUse = %d; must match", got, want)
	}
	if err := a.Free(off); err != nil {
		t.Fatal(err)
	}
	if got := b.Used(); got != 0 {
		t.Fatalf("budget used after free = %d; want 0", got)
	}
}

func TestBudgetResetReleases(t *testing.T) {
	b := NewBudget(1 << 20)
	a := New(4096)
	a.SetBudget(b)
	for i := 0; i < 5; i++ {
		if _, err := a.Alloc(32); err != nil {
			t.Fatal(err)
		}
	}
	if b.Used() == 0 {
		t.Fatal("budget not charged")
	}
	a.Reset()
	if got := b.Used(); got != 0 {
		t.Fatalf("budget used after Reset = %d; want 0", got)
	}
}

func TestBudgetFailedChargeHasNoSideEffects(t *testing.T) {
	b := NewBudget(64)
	a := New(4096)
	a.SetBudget(b)
	if _, err := a.Alloc(128); !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("err = %v; want ErrBudgetExceeded", err)
	}
	if a.InUse() != 0 || b.Used() != 0 {
		t.Fatalf("failed charge mutated state: inUse=%d used=%d", a.InUse(), b.Used())
	}
	st := a.Stats()
	if st.Failures != 1 {
		t.Fatalf("failures = %d; want 1", st.Failures)
	}
	// The arena itself is untouched: a small allocation still succeeds.
	if _, err := a.Alloc(16); err != nil {
		t.Fatal(err)
	}
}

func TestNilBudgetUnlimited(t *testing.T) {
	if NewBudget(0) != nil || NewBudget(-1) != nil {
		t.Fatal("non-positive budgets must be nil (unlimited)")
	}
	var b *Budget
	if !b.tryCharge(1 << 40) {
		t.Fatal("nil budget refused a charge")
	}
	b.release(1 << 40) // must not panic
	if b.Max() != 0 || b.Used() != 0 {
		t.Fatal("nil budget accessors must return zero")
	}
}
