// Package memory provides a simple explicit heap allocator over a fixed byte
// arena.  The PISCES 2 run-time system keeps three kinds of state in the
// FLEX/32 shared memory: system tables, a message heap with explicit
// allocation and deallocation, and statically allocated SHARED COMMON blocks
// (paper, Section 11, "Shared Memory Use").  This package implements the
// message-heap part: a first-fit free-list allocator with coalescing, plus the
// accounting (bytes in use, high-water mark, allocation counts) needed by the
// Section 13 storage-overhead experiment.
//
// The allocator hands out offsets into the arena rather than Go pointers so
// that callers can treat the arena exactly the way the original system treated
// physical shared memory: a flat array of bytes addressed by offset.
package memory

import (
	"errors"
	"fmt"
	"math"
	"sync"
)

// ErrOutOfMemory is returned by Alloc when no free block is large enough.
var ErrOutOfMemory = errors.New("memory: arena exhausted")

// ErrBadFree is returned by Free when the offset does not correspond to a
// live allocation.
var ErrBadFree = errors.New("memory: free of unallocated offset")

// headerSize is the per-allocation bookkeeping overhead, in bytes.  The real
// FLEX run-time kept a small header on every message-heap block; we model the
// same cost so storage measurements include it.
const headerSize = 8

// align rounds sizes up to 8-byte boundaries, matching the packet granularity
// used by the message system.
const align = 8

// block describes one region of the arena, either free or allocated.
type block struct {
	off  int // offset of the usable region (after the header)
	size int // usable size in bytes
	free bool
}

// Allocator is a first-fit free-list allocator over a fixed-size arena.
// The zero value is not usable; call New.
//
// Allocator is safe for concurrent use; in the simulated machine many PEs
// allocate message blocks from the single shared memory at once.
//
// The arena's backing bytes are materialised lazily, on the first Bytes
// call: most allocations are pure accounting (a message charge records its
// offset and size but the argument data lives in Go values), so an allocator
// whose storage is never addressed — a heap shard with no wire traffic —
// costs only its free-list.
type Allocator struct {
	mu     sync.Mutex
	size   int
	arena  []byte  // nil until the first Bytes call
	blocks []block // ordered by offset

	inUse     int
	highWater int
	allocs    uint64
	frees     uint64
	failures  uint64

	// budget, when non-nil, caps this allocator's live bytes as part of a
	// tenant-wide total shared with sibling shards.  See SetBudget.
	budget *Budget
}

// New creates an allocator managing size bytes of arena.
func New(size int) *Allocator {
	if size < headerSize {
		size = headerSize
	}
	a := &Allocator{size: size}
	a.blocks = []block{{off: headerSize, size: size - headerSize, free: true}}
	return a
}

// Size returns the total arena size in bytes.
func (a *Allocator) Size() int { return a.size }

// Alloc reserves n usable bytes and returns the offset of the reserved region.
// The region is zeroed.
func (a *Allocator) Alloc(n int) (int, error) {
	if n <= 0 {
		n = align
	}

	a.mu.Lock()
	defer a.mu.Unlock()

	// Sizes near MaxInt would overflow roundUp into a negative request, which
	// the first-fit scan below could accept (size < n is false for negative n)
	// and then panic slicing the arena.  No real arena can satisfy them anyway.
	if n > math.MaxInt-align {
		a.failures++
		return 0, fmt.Errorf("%w: requested %d bytes overflows the allocator", ErrOutOfMemory, n)
	}
	n = roundUp(n)

	for i := range a.blocks {
		if !a.blocks[i].free || a.blocks[i].size < n {
			continue
		}
		off := a.blocks[i].off
		// Decide the placement before mutating anything: the no-split branch
		// hands out the whole block, and the budget must be charged with that
		// actual size so Free's release (block size + header) balances it.
		rem := a.blocks[i].size - n
		split := rem >= headerSize+align
		if !split {
			n = a.blocks[i].size
		}
		if !a.budget.tryCharge(int64(n + headerSize)) {
			a.failures++
			return 0, budgetErr(n, a.budget)
		}
		if split {
			newBlock := block{off: off + n + headerSize, size: rem - headerSize, free: true}
			a.blocks[i].size = n
			a.blocks[i].free = false
			a.blocks = append(a.blocks, block{})
			copy(a.blocks[i+2:], a.blocks[i+1:])
			a.blocks[i+1] = newBlock
		} else {
			a.blocks[i].free = false
		}
		if a.arena != nil {
			// A nil arena holds no stale data to clear: bytes are only ever
			// written through Bytes, which materialises it first.
			zero(a.arena[off : off+n])
		}
		a.inUse += n + headerSize
		if a.inUse > a.highWater {
			a.highWater = a.inUse
		}
		a.allocs++
		return off, nil
	}
	a.failures++
	return 0, fmt.Errorf("%w: requested %d bytes, %d in use of %d", ErrOutOfMemory, n, a.inUse, a.size)
}

// Free releases the allocation at offset off, coalescing adjacent free blocks.
func (a *Allocator) Free(off int) error {
	a.mu.Lock()
	defer a.mu.Unlock()

	i := a.find(off)
	if i < 0 || a.blocks[i].free {
		return fmt.Errorf("%w: offset %d", ErrBadFree, off)
	}
	a.blocks[i].free = true
	a.inUse -= a.blocks[i].size + headerSize
	a.budget.release(int64(a.blocks[i].size + headerSize))
	a.frees++
	a.coalesce(i)
	return nil
}

// find returns the index of the block whose usable region starts at off, or -1.
func (a *Allocator) find(off int) int {
	lo, hi := 0, len(a.blocks)
	for lo < hi {
		mid := (lo + hi) / 2
		switch {
		case a.blocks[mid].off == off:
			return mid
		case a.blocks[mid].off < off:
			lo = mid + 1
		default:
			hi = mid
		}
	}
	return -1
}

// coalesce merges the block at index i with free neighbours.
func (a *Allocator) coalesce(i int) {
	// Merge with the following block first so the index stays valid.
	for i+1 < len(a.blocks) && a.blocks[i+1].free {
		a.blocks[i].size += a.blocks[i+1].size + headerSize
		a.blocks = append(a.blocks[:i+1], a.blocks[i+2:]...)
	}
	for i > 0 && a.blocks[i-1].free {
		a.blocks[i-1].size += a.blocks[i].size + headerSize
		a.blocks = append(a.blocks[:i], a.blocks[i+1:]...)
		i--
	}
}

// Bytes returns the usable bytes of the allocation at offset off with length n.
// The caller must not retain the slice across a Free of the same offset.
func (a *Allocator) Bytes(off, n int) []byte {
	a.mu.Lock()
	if a.arena == nil {
		a.arena = make([]byte, a.size)
	}
	b := a.arena[off : off+n]
	a.mu.Unlock()
	return b
}

// Stats is a snapshot of allocator accounting.
type Stats struct {
	ArenaSize  int    // total bytes managed
	InUse      int    // bytes currently allocated, including headers
	HighWater  int    // maximum of InUse over the allocator's lifetime
	FreeBytes  int    // usable bytes currently free
	Allocs     uint64 // successful Alloc calls
	Frees      uint64 // successful Free calls
	Failures   uint64 // Alloc calls that returned ErrOutOfMemory
	FreeBlocks int    // number of free blocks (fragmentation indicator)
	LargestRun int    // largest single free block
}

// Stats returns a snapshot of the allocator's accounting counters.
func (a *Allocator) Stats() Stats {
	a.mu.Lock()
	defer a.mu.Unlock()
	s := Stats{
		ArenaSize: a.size,
		InUse:     a.inUse,
		HighWater: a.highWater,
		Allocs:    a.allocs,
		Frees:     a.frees,
		Failures:  a.failures,
	}
	for _, b := range a.blocks {
		if b.free {
			s.FreeBytes += b.size
			s.FreeBlocks++
			if b.size > s.LargestRun {
				s.LargestRun = b.size
			}
		}
	}
	return s
}

// Aggregate rolls per-shard snapshots up into one combined snapshot, for
// reporting on a heap that has been partitioned into several independent
// allocators (one per cluster).  Sizes, byte counts, and operation counters
// sum; LargestRun is the maximum over shards because free runs cannot span a
// shard boundary.  The combined HighWater is the sum of per-shard high-water
// marks, which upper-bounds the true simultaneous peak (the shards need not
// have peaked at the same instant).
func Aggregate(stats ...Stats) Stats {
	var out Stats
	for _, s := range stats {
		out.ArenaSize += s.ArenaSize
		out.InUse += s.InUse
		out.HighWater += s.HighWater
		out.FreeBytes += s.FreeBytes
		out.Allocs += s.Allocs
		out.Frees += s.Frees
		out.Failures += s.Failures
		out.FreeBlocks += s.FreeBlocks
		if s.LargestRun > out.LargestRun {
			out.LargestRun = s.LargestRun
		}
	}
	return out
}

// InUse returns the number of bytes currently allocated, including headers.
func (a *Allocator) InUse() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.inUse
}

// HighWater returns the maximum number of bytes ever simultaneously allocated.
func (a *Allocator) HighWater() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.highWater
}

// Reset returns the allocator to its initial, fully free state.  The
// high-water mark and cumulative counters are preserved so long-run
// experiments can report them after repeated phases.
func (a *Allocator) Reset() {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.blocks = []block{{off: headerSize, size: a.size - headerSize, free: true}}
	a.budget.release(int64(a.inUse))
	a.inUse = 0
}

func roundUp(n int) int {
	if r := n % align; r != 0 {
		n += align - r
	}
	return n
}

func zero(b []byte) {
	for i := range b {
		b[i] = 0
	}
}
