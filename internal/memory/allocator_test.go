package memory

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestAllocBasic(t *testing.T) {
	a := New(4096)
	off, err := a.Alloc(100)
	if err != nil {
		t.Fatalf("Alloc: %v", err)
	}
	if off < headerSize {
		t.Fatalf("offset %d overlaps the first header", off)
	}
	if got := a.InUse(); got < 100 {
		t.Fatalf("InUse = %d, want >= 100", got)
	}
	if err := a.Free(off); err != nil {
		t.Fatalf("Free: %v", err)
	}
	if got := a.InUse(); got != 0 {
		t.Fatalf("InUse after free = %d, want 0", got)
	}
}

func TestAllocZeroesMemory(t *testing.T) {
	a := New(1024)
	off, err := a.Alloc(64)
	if err != nil {
		t.Fatal(err)
	}
	b := a.Bytes(off, 64)
	for i := range b {
		b[i] = 0xFF
	}
	if err := a.Free(off); err != nil {
		t.Fatal(err)
	}
	off2, err := a.Alloc(64)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range a.Bytes(off2, 64) {
		if v != 0 {
			t.Fatalf("byte %d not zeroed after reuse: %#x", i, v)
		}
	}
}

func TestAllocRoundsUp(t *testing.T) {
	a := New(1024)
	off, err := a.Alloc(1)
	if err != nil {
		t.Fatal(err)
	}
	if got := a.InUse(); got != align+headerSize {
		t.Fatalf("InUse = %d, want %d", got, align+headerSize)
	}
	if err := a.Free(off); err != nil {
		t.Fatal(err)
	}
}

func TestAllocExhaustion(t *testing.T) {
	a := New(256)
	var offs []int
	for {
		off, err := a.Alloc(32)
		if err != nil {
			if !errors.Is(err, ErrOutOfMemory) {
				t.Fatalf("unexpected error: %v", err)
			}
			break
		}
		offs = append(offs, off)
	}
	if len(offs) == 0 {
		t.Fatal("no allocations succeeded at all")
	}
	st := a.Stats()
	if st.Failures == 0 {
		t.Fatal("expected at least one recorded failure")
	}
	for _, off := range offs {
		if err := a.Free(off); err != nil {
			t.Fatalf("Free(%d): %v", off, err)
		}
	}
	// After freeing everything, a large allocation should succeed again
	// (coalescing restored one big block).
	if _, err := a.Alloc(st.ArenaSize / 2); err != nil {
		t.Fatalf("allocation after full free failed: %v", err)
	}
}

func TestDoubleFree(t *testing.T) {
	a := New(1024)
	off, err := a.Alloc(16)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Free(off); err != nil {
		t.Fatal(err)
	}
	if err := a.Free(off); !errors.Is(err, ErrBadFree) {
		t.Fatalf("double free: got %v, want ErrBadFree", err)
	}
	if err := a.Free(12345); !errors.Is(err, ErrBadFree) {
		t.Fatalf("bogus free: got %v, want ErrBadFree", err)
	}
}

func TestCoalescingRestoresLargestRun(t *testing.T) {
	a := New(8192)
	initial := a.Stats().LargestRun
	var offs []int
	for i := 0; i < 16; i++ {
		off, err := a.Alloc(128)
		if err != nil {
			t.Fatal(err)
		}
		offs = append(offs, off)
	}
	// Free in an interleaved order to exercise both coalescing directions.
	order := []int{1, 3, 5, 7, 9, 11, 13, 15, 0, 2, 4, 6, 8, 10, 12, 14}
	for _, i := range order {
		if err := a.Free(offs[i]); err != nil {
			t.Fatal(err)
		}
	}
	st := a.Stats()
	if st.FreeBlocks != 1 {
		t.Fatalf("FreeBlocks = %d, want 1 after full coalescing", st.FreeBlocks)
	}
	if st.LargestRun != initial {
		t.Fatalf("LargestRun = %d, want %d", st.LargestRun, initial)
	}
}

func TestHighWaterMark(t *testing.T) {
	a := New(4096)
	o1, _ := a.Alloc(512)
	o2, _ := a.Alloc(512)
	hw := a.HighWater()
	if hw < 1024 {
		t.Fatalf("high water %d, want >= 1024", hw)
	}
	a.Free(o1)
	a.Free(o2)
	if a.HighWater() != hw {
		t.Fatalf("high water changed after frees: %d != %d", a.HighWater(), hw)
	}
	if a.InUse() != 0 {
		t.Fatalf("in use %d after freeing everything", a.InUse())
	}
}

func TestReset(t *testing.T) {
	a := New(2048)
	for i := 0; i < 4; i++ {
		if _, err := a.Alloc(64); err != nil {
			t.Fatal(err)
		}
	}
	a.Reset()
	if a.InUse() != 0 {
		t.Fatalf("InUse after Reset = %d", a.InUse())
	}
	if _, err := a.Alloc(1024); err != nil {
		t.Fatalf("large alloc after Reset failed: %v", err)
	}
}

// TestStatsFreeAccounting checks the identity: arena = in-use + free + headers
// of free blocks + leading header reserve.
func TestStatsAccounting(t *testing.T) {
	a := New(4096)
	var offs []int
	for i := 0; i < 7; i++ {
		off, err := a.Alloc(100)
		if err != nil {
			t.Fatal(err)
		}
		offs = append(offs, off)
	}
	a.Free(offs[2])
	a.Free(offs[4])
	st := a.Stats()
	total := st.InUse + st.FreeBytes + st.FreeBlocks*headerSize
	if total != st.ArenaSize {
		t.Fatalf("accounting mismatch: inUse %d + free %d + headers = %d, arena %d",
			st.InUse, st.FreeBytes, total, st.ArenaSize)
	}
}

// Property: any sequence of allocations followed by freeing all of them
// returns the allocator to zero bytes in use with a single free block.
func TestQuickAllocFreeAll(t *testing.T) {
	f := func(sizes []uint16) bool {
		a := New(1 << 20)
		var offs []int
		for _, s := range sizes {
			n := int(s%2048) + 1
			off, err := a.Alloc(n)
			if err != nil {
				// Exhaustion is acceptable behaviour; stop allocating.
				break
			}
			offs = append(offs, off)
		}
		for _, off := range offs {
			if err := a.Free(off); err != nil {
				return false
			}
		}
		st := a.Stats()
		return st.InUse == 0 && st.FreeBlocks == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: live allocations never overlap each other.
func TestQuickNoOverlap(t *testing.T) {
	f := func(seed int64, count uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		a := New(1 << 16)
		type alloc struct{ off, size int }
		var live []alloc
		for i := 0; i < int(count); i++ {
			if len(live) > 0 && rng.Intn(3) == 0 {
				k := rng.Intn(len(live))
				if err := a.Free(live[k].off); err != nil {
					return false
				}
				live = append(live[:k], live[k+1:]...)
				continue
			}
			n := rng.Intn(512) + 1
			off, err := a.Alloc(n)
			if err != nil {
				continue
			}
			live = append(live, alloc{off, roundUp(n)})
		}
		for i := range live {
			for j := i + 1; j < len(live); j++ {
				ai, aj := live[i], live[j]
				if ai.off < aj.off+aj.size && aj.off < ai.off+ai.size {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkAllocFree(b *testing.B) {
	a := New(1 << 20)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		off, err := a.Alloc(128)
		if err != nil {
			b.Fatal(err)
		}
		if err := a.Free(off); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAllocFreeFragmented(b *testing.B) {
	a := New(1 << 20)
	// Pre-fragment the arena.
	var pins []int
	for i := 0; i < 200; i++ {
		off, err := a.Alloc(64)
		if err != nil {
			b.Fatal(err)
		}
		if i%2 == 0 {
			pins = append(pins, off)
		} else if err := a.Free(off); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		off, err := a.Alloc(48)
		if err != nil {
			b.Fatal(err)
		}
		if err := a.Free(off); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	for _, off := range pins {
		a.Free(off)
	}
}

// TestAllocOverflowGuard covers the roundUp overflow: sizes near MaxInt used
// to wrap into a negative request that the first-fit scan accepted and then
// slice-panicked on.  They must fail cleanly with ErrOutOfMemory.
func TestAllocOverflowGuard(t *testing.T) {
	a := New(4096)
	for _, n := range []int{math.MaxInt, math.MaxInt - 1, math.MaxInt - align + 1} {
		off, err := a.Alloc(n)
		if !errors.Is(err, ErrOutOfMemory) {
			t.Fatalf("Alloc(%d) = (%d, %v), want ErrOutOfMemory", n, off, err)
		}
	}
	st := a.Stats()
	if st.Failures != 3 {
		t.Errorf("Failures = %d, want 3", st.Failures)
	}
	// The arena must remain fully usable after the rejected requests.
	off, err := a.Alloc(64)
	if err != nil {
		t.Fatalf("Alloc(64) after overflow attempts: %v", err)
	}
	if err := a.Free(off); err != nil {
		t.Fatal(err)
	}
}

// TestAggregate checks the multi-shard stats roll-up used by the per-cluster
// message-heap shards.
func TestAggregate(t *testing.T) {
	a, b := New(4096), New(8192)
	offA, err := a.Alloc(100)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.Alloc(200); err != nil {
		t.Fatal(err)
	}
	if err := a.Free(offA); err != nil {
		t.Fatal(err)
	}
	got := Aggregate(a.Stats(), b.Stats())
	if got.ArenaSize != 4096+8192 {
		t.Errorf("ArenaSize = %d, want %d", got.ArenaSize, 4096+8192)
	}
	if got.InUse != b.Stats().InUse {
		t.Errorf("InUse = %d, want %d (only shard b holds storage)", got.InUse, b.Stats().InUse)
	}
	if got.HighWater != a.Stats().HighWater+b.Stats().HighWater {
		t.Errorf("HighWater = %d, want per-shard sum", got.HighWater)
	}
	if got.Allocs != 2 || got.Frees != 1 {
		t.Errorf("Allocs/Frees = %d/%d, want 2/1", got.Allocs, got.Frees)
	}
	if got.LargestRun != b.Stats().LargestRun {
		t.Errorf("LargestRun = %d, want max over shards %d", got.LargestRun, b.Stats().LargestRun)
	}
	if empty := Aggregate(); empty != (Stats{}) {
		t.Errorf("Aggregate() = %+v, want zero", empty)
	}
}
