package flex

import (
	"sync"
	"testing"
	"testing/quick"
)

func TestDefaultConfigMatchesPaper(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.NumPE != 20 {
		t.Errorf("NumPE = %d, want 20", cfg.NumPE)
	}
	if cfg.LocalBytes != 1<<20 {
		t.Errorf("LocalBytes = %d, want 1 MiB", cfg.LocalBytes)
	}
	if cfg.SharedBytes != 2304*1024 {
		t.Errorf("SharedBytes = %d, want 2.25 MiB", cfg.SharedBytes)
	}
	if cfg.UnixPEs != 2 {
		t.Errorf("UnixPEs = %d, want 2", cfg.UnixPEs)
	}
	m := MustNewMachine(cfg)
	mmos := m.MMOSPEs()
	if len(mmos) != 18 {
		t.Fatalf("MMOS PEs = %d, want 18", len(mmos))
	}
	if mmos[0] != 3 || mmos[len(mmos)-1] != 20 {
		t.Fatalf("MMOS PE range = %d..%d, want 3..20", mmos[0], mmos[len(mmos)-1])
	}
	if !m.PE(1).IsUnix() || !m.PE(2).IsUnix() {
		t.Error("PEs 1 and 2 should run Unix only")
	}
	if m.PE(3).IsUnix() {
		t.Error("PE 3 should run MMOS")
	}
}

func TestNewMachineValidation(t *testing.T) {
	cases := []Config{
		{NumPE: 0},
		{NumPE: 4, UnixPEs: 4},
		{NumPE: 4, UnixPEs: -1},
		{NumPE: 4, SharedBytes: 1024, TableBytes: 512, CommonBytes: 600},
	}
	for i, cfg := range cases {
		if _, err := NewMachine(cfg); err == nil {
			t.Errorf("case %d: expected error for %+v", i, cfg)
		}
	}
}

func TestPEOutOfRange(t *testing.T) {
	m := MustNewMachine(DefaultConfig())
	if m.PE(0) != nil || m.PE(21) != nil || m.PE(-3) != nil {
		t.Fatal("out-of-range PE lookups must return nil")
	}
	if m.PE(1) == nil || m.PE(20) == nil {
		t.Fatal("in-range PE lookups must not return nil")
	}
	if m.PE(7).ID() != 7 {
		t.Fatalf("PE(7).ID() = %d", m.PE(7).ID())
	}
}

func TestCPUExclusion(t *testing.T) {
	m := MustNewMachine(DefaultConfig())
	pe := m.PE(5)

	pe.Acquire()
	if !pe.Busy() {
		t.Fatal("PE should be busy while held")
	}
	if pe.TryAcquire() {
		t.Fatal("TryAcquire succeeded while CPU held")
	}
	pe.Release()
	if pe.Busy() {
		t.Fatal("PE should be idle after release")
	}
	if !pe.TryAcquire() {
		t.Fatal("TryAcquire failed on idle CPU")
	}
	pe.Release()
}

func TestCPUMutualExclusionConcurrent(t *testing.T) {
	m := MustNewMachine(DefaultConfig())
	pe := m.PE(3)
	const workers = 8
	const iters = 200
	var counter int // protected only by the PE CPU token
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				pe.Acquire()
				counter++
				pe.Charge(1)
				pe.Release()
			}
		}()
	}
	wg.Wait()
	if counter != workers*iters {
		t.Fatalf("counter = %d, want %d (CPU token did not provide mutual exclusion)", counter, workers*iters)
	}
	if pe.Ticks() != int64(workers*iters) {
		t.Fatalf("ticks = %d, want %d", pe.Ticks(), workers*iters)
	}
}

func TestReleaseWithoutHoldPanics(t *testing.T) {
	m := MustNewMachine(DefaultConfig())
	pe := m.PE(4)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on double release")
		}
	}()
	pe.Release()
}

func TestLocalMemoryAccounting(t *testing.T) {
	m := MustNewMachine(DefaultConfig())
	pe := m.PE(3)
	if err := pe.AllocLocal(1000); err != nil {
		t.Fatal(err)
	}
	if err := pe.AllocLocal(LocalMemoryBytes); err == nil {
		t.Fatal("expected local memory exhaustion")
	}
	used, high, total := pe.LocalStats()
	if used != 1000 || high != 1000 || total != LocalMemoryBytes {
		t.Fatalf("stats = (%d,%d,%d)", used, high, total)
	}
	pe.FreeLocal(1000)
	used, high, _ = pe.LocalStats()
	if used != 0 || high != 1000 {
		t.Fatalf("after free: used %d high %d", used, high)
	}
	pe.FreeLocal(999999) // over-free clamps to zero
	used, _, _ = pe.LocalStats()
	if used != 0 {
		t.Fatalf("over-free left used = %d", used)
	}
}

func TestSharedMemoryRegions(t *testing.T) {
	m := MustNewMachine(DefaultConfig())
	sh := m.Shared()
	if err := sh.AllocTable(4096); err != nil {
		t.Fatal(err)
	}
	if err := sh.AllocCommon(10000); err != nil {
		t.Fatal(err)
	}
	off, err := sh.Heap().Alloc(256)
	if err != nil {
		t.Fatal(err)
	}
	u := sh.Usage()
	if u.TableUsed != 4096 {
		t.Errorf("TableUsed = %d", u.TableUsed)
	}
	if u.CommonUsed != 10000 {
		t.Errorf("CommonUsed = %d", u.CommonUsed)
	}
	if u.HeapInUse == 0 {
		t.Error("HeapInUse = 0 after allocation")
	}
	if u.Total != SharedMemoryBytes {
		t.Errorf("Total = %d", u.Total)
	}
	if p := u.TablePercent(); p <= 0 || p > 1 {
		t.Errorf("TablePercent = %f, want small positive", p)
	}
	if err := sh.Heap().Free(off); err != nil {
		t.Fatal(err)
	}
	sh.FreeTable(4096)
	sh.FreeCommon(10000)
	u = sh.Usage()
	if u.TableUsed != 0 || u.CommonUsed != 0 || u.HeapInUse != 0 {
		t.Errorf("usage not returned to zero: %+v", u)
	}
}

func TestSharedMemoryRegionExhaustion(t *testing.T) {
	cfg := DefaultConfig()
	m := MustNewMachine(cfg)
	sh := m.Shared()
	if err := sh.AllocTable(cfg.TableBytes + 1); err == nil {
		t.Error("expected table exhaustion")
	}
	if err := sh.AllocCommon(cfg.CommonBytes + 1); err == nil {
		t.Error("expected common exhaustion")
	}
}

func TestTickAccounting(t *testing.T) {
	m := MustNewMachine(DefaultConfig())
	m.PE(3).Charge(10)
	m.PE(4).Charge(25)
	m.PE(5).Charge(-5) // negative charges are ignored
	if got := m.MaxTicks(); got != 25 {
		t.Fatalf("MaxTicks = %d, want 25", got)
	}
	if got := m.TotalTicks(); got != 35 {
		t.Fatalf("TotalTicks = %d, want 35", got)
	}
}

func TestBindProcCount(t *testing.T) {
	m := MustNewMachine(DefaultConfig())
	pe := m.PE(9)
	for i := 0; i < 5; i++ {
		pe.BindProc()
	}
	pe.UnbindProc()
	if got := pe.BoundProcs(); got != 4 {
		t.Fatalf("BoundProcs = %d, want 4", got)
	}
}

// Property: usage percentages are always within [0, 100] and monotone with
// respect to allocation for the table region.
func TestQuickTablePercentBounds(t *testing.T) {
	f := func(sizes []uint16) bool {
		m := MustNewMachine(DefaultConfig())
		sh := m.Shared()
		prev := 0.0
		for _, s := range sizes {
			if err := sh.AllocTable(int(s % 2048)); err != nil {
				return true // exhaustion is fine
			}
			p := sh.Usage().TablePercent()
			if p < prev || p < 0 || p > 100 {
				return false
			}
			prev = p
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// TestShardHeap covers the per-cluster heap partitioning: shards cover the
// whole heap region, allocate independently, roll up into the machine-wide
// usage, and resharding is refused while storage is live.
func TestShardHeap(t *testing.T) {
	m := MustNewMachine(DefaultConfig())
	sh := m.Shared()
	heapBytes := sh.HeapStats().ArenaSize

	if err := sh.ShardHeap(3); err != nil {
		t.Fatal(err)
	}
	if n := sh.NumHeapShards(); n != 3 {
		t.Fatalf("NumHeapShards = %d, want 3", n)
	}
	total := 0
	for i := 0; i < 3; i++ {
		total += sh.HeapShard(i).Size()
	}
	if total != heapBytes {
		t.Errorf("shard sizes sum to %d, want the full heap region %d", total, heapBytes)
	}
	if sh.HeapShard(3) != nil || sh.HeapShard(-1) != nil {
		t.Error("out-of-range shard index did not return nil")
	}

	off, err := sh.HeapShard(1).Alloc(256)
	if err != nil {
		t.Fatal(err)
	}
	if got := sh.Usage().HeapInUse; got != sh.HeapShard(1).InUse() {
		t.Errorf("Usage().HeapInUse = %d, want shard roll-up %d", got, sh.HeapShard(1).InUse())
	}
	if err := sh.ShardHeap(2); err == nil {
		t.Error("resharding with live allocations was not refused")
	}
	if err := sh.HeapShard(1).Free(off); err != nil {
		t.Fatal(err)
	}
	if err := sh.ShardHeap(1); err != nil {
		t.Errorf("resharding an all-free heap: %v", err)
	}
	if got := sh.HeapStats().ArenaSize; got != heapBytes {
		t.Errorf("arena size after unsharding = %d, want %d", got, heapBytes)
	}
	if err := sh.ShardHeap(0); err == nil {
		t.Error("ShardHeap(0) accepted")
	}
}
