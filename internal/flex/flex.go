// Package flex simulates the Flexible FLEX/32 multicomputer used by the
// PISCES 2 implementation described in the paper (Section 11):
//
//   - 20 processors (PEs), each a National Semiconductor 32032;
//   - 1 Mbyte of local memory on each processor;
//   - 2.25 Mbyte of shared memory accessible by all processors;
//   - disks attached to PEs 1 and 2;
//   - PEs 1 and 2 run Unix and hold the file system, PEs 3-20 run MMOS and
//     are allocated to one user at a time.
//
// The simulator models the properties PISCES 2 actually relies on rather than
// the NS32032 instruction set: each PE executes at most one process at a time
// (an exclusive CPU token), each PE has a tick clock used for trace
// timestamps, local memory consumption is metered per PE, and the single
// shared memory is partitioned the same three ways the paper describes —
// a system-table region, a message heap with explicit allocate/free, and a
// region for SHARED COMMON blocks.
package flex

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/memory"
)

// Hardware constants of the NASA Langley FLEX/32 configuration (Section 11).
const (
	// NumPE is the number of processors in the machine.
	NumPE = 20
	// LocalMemoryBytes is the local memory attached to each PE (1 Mbyte).
	LocalMemoryBytes = 1 << 20
	// SharedMemoryBytes is the globally accessible shared memory (2.25 Mbyte).
	SharedMemoryBytes = 2304 * 1024
	// FirstMMOSPE is the lowest-numbered PE running MMOS; PEs 1 and 2 run
	// Unix only and are not available for PISCES user tasks.
	FirstMMOSPE = 3
	// LastMMOSPE is the highest-numbered PE.
	LastMMOSPE = 20
)

// Config describes a simulated machine.  The zero value is not useful; use
// DefaultConfig for the NASA Langley FLEX/32.
type Config struct {
	NumPE       int // total number of PEs, numbered 1..NumPE
	LocalBytes  int // local memory per PE
	SharedBytes int // total shared memory
	TableBytes  int // shared-memory region reserved for system tables
	CommonBytes int // shared-memory region reserved for SHARED COMMON blocks
	UnixPEs     int // the first UnixPEs processors run Unix only
	TickQuantum int64
}

// DefaultConfig returns the NASA Langley FLEX/32 configuration described in
// Section 11 of the paper.  One quarter of shared memory is reserved for
// SHARED COMMON and a small region for system tables; the remainder is the
// message heap.
func DefaultConfig() Config {
	return Config{
		NumPE:       NumPE,
		LocalBytes:  LocalMemoryBytes,
		SharedBytes: SharedMemoryBytes,
		TableBytes:  64 * 1024,
		CommonBytes: 512 * 1024,
		UnixPEs:     2,
		TickQuantum: 1,
	}
}

// Machine is a simulated FLEX/32.
type Machine struct {
	cfg    Config
	pes    []*PE
	shared *SharedMemory
}

// NewMachine builds a machine from cfg.  Invalid configurations (no PEs,
// regions exceeding shared memory) are rejected.
func NewMachine(cfg Config) (*Machine, error) {
	if cfg.NumPE <= 0 {
		return nil, fmt.Errorf("flex: NumPE must be positive, got %d", cfg.NumPE)
	}
	if cfg.UnixPEs < 0 || cfg.UnixPEs >= cfg.NumPE {
		return nil, fmt.Errorf("flex: UnixPEs %d out of range for %d PEs", cfg.UnixPEs, cfg.NumPE)
	}
	if cfg.TableBytes+cfg.CommonBytes >= cfg.SharedBytes {
		return nil, fmt.Errorf("flex: table (%d) + common (%d) regions exceed shared memory (%d)",
			cfg.TableBytes, cfg.CommonBytes, cfg.SharedBytes)
	}
	if cfg.TickQuantum <= 0 {
		cfg.TickQuantum = 1
	}
	m := &Machine{cfg: cfg}
	m.pes = make([]*PE, cfg.NumPE)
	for i := range m.pes {
		m.pes[i] = newPE(i+1, cfg.LocalBytes, i < cfg.UnixPEs)
	}
	m.shared = newSharedMemory(cfg)
	return m, nil
}

// MustNewMachine is NewMachine that panics on error, for use with known-good
// configurations such as DefaultConfig.
func MustNewMachine(cfg Config) *Machine {
	m, err := NewMachine(cfg)
	if err != nil {
		panic(err)
	}
	return m
}

// Config returns the configuration the machine was built with.
func (m *Machine) Config() Config { return m.cfg }

// NumPE returns the number of processors.
func (m *Machine) NumPE() int { return len(m.pes) }

// PE returns the processor numbered n (1-based), or nil if out of range.
func (m *Machine) PE(n int) *PE {
	if n < 1 || n > len(m.pes) {
		return nil
	}
	return m.pes[n-1]
}

// MMOSPEs returns the numbers of the PEs available to run PISCES user code
// (those not reserved for Unix).
func (m *Machine) MMOSPEs() []int {
	var out []int
	for _, pe := range m.pes {
		if !pe.unix {
			out = append(out, pe.id)
		}
	}
	return out
}

// Shared returns the machine's shared memory.
func (m *Machine) Shared() *SharedMemory { return m.shared }

// MaxTicks returns the largest tick count over all PEs — the "makespan" of a
// simulated run.
func (m *Machine) MaxTicks() int64 {
	var max int64
	for _, pe := range m.pes {
		if t := pe.Ticks(); t > max {
			max = t
		}
	}
	return max
}

// TotalTicks returns the sum of tick counts over all PEs — total simulated
// processor work.
func (m *Machine) TotalTicks() int64 {
	var sum int64
	for _, pe := range m.pes {
		sum += pe.Ticks()
	}
	return sum
}

// PE is one simulated processor: an exclusive CPU, a tick clock, and a local
// memory meter.
type PE struct {
	id   int
	unix bool

	cpu chan struct{} // capacity-1 token; holding it means "running on this PE"

	ticks atomic.Int64

	mu         sync.Mutex
	localTotal int
	localUsed  int
	localHigh  int

	bound   atomic.Int32 // processes currently bound to this PE
	running atomic.Int32 // processes currently holding the CPU (0 or 1)
}

func newPE(id, localBytes int, unix bool) *PE {
	pe := &PE{id: id, unix: unix, localTotal: localBytes}
	pe.cpu = make(chan struct{}, 1)
	pe.cpu <- struct{}{}
	return pe
}

// ID returns the 1-based processor number.
func (p *PE) ID() int { return p.id }

// IsUnix reports whether the PE is reserved for the Unix front end and thus
// unavailable for PISCES user tasks.
func (p *PE) IsUnix() bool { return p.unix }

// Acquire blocks until the caller holds the PE's CPU.
func (p *PE) Acquire() {
	<-p.cpu
	p.running.Store(1)
}

// TryAcquire attempts to take the CPU without blocking.
func (p *PE) TryAcquire() bool {
	select {
	case <-p.cpu:
		p.running.Store(1)
		return true
	default:
		return false
	}
}

// Release gives the CPU back.  It must only be called by the holder.
func (p *PE) Release() {
	p.running.Store(0)
	select {
	case p.cpu <- struct{}{}:
	default:
		panic(fmt.Sprintf("flex: PE %d released while not held", p.id))
	}
}

// Busy reports whether some process currently holds the CPU.
func (p *PE) Busy() bool { return p.running.Load() == 1 }

// Charge advances the PE's tick clock by n ticks of simulated work.
func (p *PE) Charge(n int64) {
	if n > 0 {
		p.ticks.Add(n)
	}
}

// Ticks returns the PE's clock reading.  Trace lines include "PE number and
// ticks count" (Section 12).
func (p *PE) Ticks() int64 { return p.ticks.Load() }

// BindProc records that a process has been created on this PE; UnbindProc
// records its termination.  The count feeds the "DISPLAY PE LOADING" view of
// the execution environment.
func (p *PE) BindProc() { p.bound.Add(1) }

// UnbindProc decrements the bound-process count.
func (p *PE) UnbindProc() { p.bound.Add(-1) }

// BoundProcs returns the number of processes currently bound to the PE.
func (p *PE) BoundProcs() int { return int(p.bound.Load()) }

// AllocLocal reserves n bytes of the PE's local memory.
func (p *PE) AllocLocal(n int) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.localUsed+n > p.localTotal {
		return fmt.Errorf("flex: PE %d local memory exhausted (%d + %d > %d)",
			p.id, p.localUsed, n, p.localTotal)
	}
	p.localUsed += n
	if p.localUsed > p.localHigh {
		p.localHigh = p.localUsed
	}
	return nil
}

// FreeLocal releases n bytes of the PE's local memory.
func (p *PE) FreeLocal(n int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.localUsed -= n
	if p.localUsed < 0 {
		p.localUsed = 0
	}
}

// LocalStats returns (used, high-water, total) bytes of local memory.
func (p *PE) LocalStats() (used, high, total int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.localUsed, p.localHigh, p.localTotal
}

// SharedMemory models the FLEX/32 shared memory partitioned into the three
// regions of Section 11: system tables, the message heap, and SHARED COMMON.
// The message heap can additionally be split into independent shards (one per
// virtual-machine cluster) so that senders in different clusters never
// contend on one allocator lock; the physical memory is still one region, the
// shards are disjoint slices of it.
type SharedMemory struct {
	total     int
	heapBytes int

	mu          sync.Mutex
	tableTotal  int
	tableUsed   int
	tableHigh   int
	commonTotal int
	commonUsed  int
	commonHigh  int

	shards []*memory.Allocator
}

func newSharedMemory(cfg Config) *SharedMemory {
	heapBytes := cfg.SharedBytes - cfg.TableBytes - cfg.CommonBytes
	return &SharedMemory{
		total:       cfg.SharedBytes,
		heapBytes:   heapBytes,
		tableTotal:  cfg.TableBytes,
		commonTotal: cfg.CommonBytes,
		shards:      []*memory.Allocator{memory.New(heapBytes)},
	}
}

// Total returns the total shared memory size in bytes.
func (s *SharedMemory) Total() int { return s.total }

// Heap returns the first message-heap shard.  An unsharded machine (the
// default) has exactly one, covering the whole heap region.
func (s *SharedMemory) Heap() *memory.Allocator { return s.HeapShard(0) }

// ShardHeap repartitions the message-heap region into n equal, independently
// locked allocators.  It is called once at virtual-machine boot, before any
// message storage is allocated; resharding a heap that still holds live
// allocations is refused so no outstanding offset can be orphaned.
func (s *SharedMemory) ShardHeap(n int) error {
	if n < 1 {
		return fmt.Errorf("flex: heap must have at least one shard, got %d", n)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, sh := range s.shards {
		if sh.InUse() > 0 {
			return fmt.Errorf("flex: cannot reshard message heap with %d bytes live", sh.InUse())
		}
	}
	per := s.heapBytes / n
	shards := make([]*memory.Allocator, n)
	for i := range shards {
		size := per
		if i == n-1 {
			size = s.heapBytes - per*(n-1) // last shard absorbs the remainder
		}
		shards[i] = memory.New(size)
	}
	s.shards = shards
	return nil
}

// NumHeapShards returns the number of message-heap shards.
func (s *SharedMemory) NumHeapShards() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.shards)
}

// HeapShard returns shard i of the message heap, or nil if out of range.
func (s *SharedMemory) HeapShard(i int) *memory.Allocator {
	s.mu.Lock()
	defer s.mu.Unlock()
	if i < 0 || i >= len(s.shards) {
		return nil
	}
	return s.shards[i]
}

// HeapShards returns all message-heap shards, in shard order.
func (s *SharedMemory) HeapShards() []*memory.Allocator {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]*memory.Allocator(nil), s.shards...)
}

// HeapStats returns the message-heap accounting rolled up over every shard —
// the machine-wide quantity the Section 13 storage report uses.
func (s *SharedMemory) HeapStats() memory.Stats {
	shards := s.HeapShards()
	stats := make([]memory.Stats, len(shards))
	for i, sh := range shards {
		stats[i] = sh.Stats()
	}
	return memory.Aggregate(stats...)
}

// AllocTable reserves n bytes of the system-table region.  Table entries
// (cluster and slot records) are allocated once at boot and persist for the
// run, so there is no corresponding free.
func (s *SharedMemory) AllocTable(n int) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.tableUsed+n > s.tableTotal {
		return fmt.Errorf("flex: system-table region exhausted (%d + %d > %d)", s.tableUsed, n, s.tableTotal)
	}
	s.tableUsed += n
	if s.tableUsed > s.tableHigh {
		s.tableHigh = s.tableUsed
	}
	return nil
}

// FreeTable releases n bytes of the system-table region (used when a run is
// torn down and the machine is rebooted for the next user).
func (s *SharedMemory) FreeTable(n int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.tableUsed -= n
	if s.tableUsed < 0 {
		s.tableUsed = 0
	}
}

// AllocCommon statically reserves n bytes of the SHARED COMMON region.
func (s *SharedMemory) AllocCommon(n int) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.commonUsed+n > s.commonTotal {
		return fmt.Errorf("flex: SHARED COMMON region exhausted (%d + %d > %d)", s.commonUsed, n, s.commonTotal)
	}
	s.commonUsed += n
	if s.commonUsed > s.commonHigh {
		s.commonHigh = s.commonUsed
	}
	return nil
}

// FreeCommon releases n bytes of the SHARED COMMON region.
func (s *SharedMemory) FreeCommon(n int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.commonUsed -= n
	if s.commonUsed < 0 {
		s.commonUsed = 0
	}
}

// Usage is a snapshot of shared-memory consumption by region, the quantity
// reported in Section 13 of the paper.
type Usage struct {
	Total int

	TableUsed  int
	TableHigh  int
	TableTotal int

	CommonUsed  int
	CommonHigh  int
	CommonTotal int

	HeapInUse     int
	HeapHighWater int
	HeapTotal     int
}

// Usage returns a snapshot of all three shared-memory regions.
func (s *SharedMemory) Usage() Usage {
	s.mu.Lock()
	tu, th, tt := s.tableUsed, s.tableHigh, s.tableTotal
	cu, ch, ct := s.commonUsed, s.commonHigh, s.commonTotal
	s.mu.Unlock()
	hs := s.HeapStats()
	return Usage{
		Total:         s.total,
		TableUsed:     tu,
		TableHigh:     th,
		TableTotal:    tt,
		CommonUsed:    cu,
		CommonHigh:    ch,
		CommonTotal:   ct,
		HeapInUse:     hs.InUse,
		HeapHighWater: hs.HighWater,
		HeapTotal:     hs.ArenaSize,
	}
}

// TablePercent returns the system-table usage as a percentage of total shared
// memory — the "< 0.3% of shared memory (for system tables)" figure of
// Section 13.
func (u Usage) TablePercent() float64 {
	if u.Total == 0 {
		return 0
	}
	return 100 * float64(u.TableUsed) / float64(u.Total)
}

// HeapPercent returns message-heap usage as a percentage of total shared memory.
func (u Usage) HeapPercent() float64 {
	if u.Total == 0 {
		return 0
	}
	return 100 * float64(u.HeapInUse) / float64(u.Total)
}
