package experiments

import (
	"fmt"
	"io"
	"time"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/schedule"
	"repro/internal/stats"
)

// E7Params controls the SCHEDULE-comparison experiment.
type E7Params struct {
	// Layers and UnitsPerLayer define the dependency graph: every unit in
	// layer k depends on every unit in layer k-1 (a layered DAG, the shape of
	// a blocked triangular solve or a multi-stage assembly).
	Layers        int
	UnitsPerLayer int
	// UnitCost is the tick cost of one unit of work.
	UnitCost int64
	// Workers is the number of PEs given to both systems.
	Workers int
}

// DefaultE7Params returns the parameters used by cmd/experiments.
func DefaultE7Params() E7Params {
	return E7Params{Layers: 6, UnitsPerLayer: 12, UnitCost: 40, Workers: 4}
}

// E7Result compares the two programming systems on the same task graph and
// the same simulated hardware.
type E7Result struct {
	SerialTicks   int64
	ScheduleTicks int64
	PiscesTicks   int64
	// Speedups relative to the serial execution.
	ScheduleSpeedup float64
	PiscesSpeedup   float64
}

// RunE7 reproduces the Section 3 comparison: the same layered task graph is
// executed (a) under a SCHEDULE-style scheduler that maps units onto workers
// automatically, and (b) as a PISCES 2 program in which the programmer maps
// the work explicitly — a force whose members take the units of each layer
// with a prescheduled partition and synchronise with a barrier between
// layers.  Both run on the same number of PEs of the same simulated FLEX/32;
// the measure is the simulated makespan in ticks.
func RunE7(w io.Writer, p E7Params) (*E7Result, error) {
	res := &E7Result{}
	res.SerialTicks = int64(p.Layers) * int64(p.UnitsPerLayer) * p.UnitCost

	// --- SCHEDULE-style automatic mapping -------------------------------------
	// The dependency graph is declared exactly as a SCHEDULE user would
	// declare it; the work-queue execution is simulated in virtual time
	// (RunVirtual) so the measured makespan reflects the 20-PE machine rather
	// than the host running the simulator.
	{
		g := schedule.NewGraph()
		for layer := 0; layer < p.Layers; layer++ {
			for u := 0; u < p.UnitsPerLayer; u++ {
				name := fmt.Sprintf("L%dU%d", layer, u)
				g.Call(name, p.UnitCost, func() {})
				if layer > 0 {
					for prev := 0; prev < p.UnitsPerLayer; prev++ {
						g.Depends(name, fmt.Sprintf("L%dU%d", layer-1, prev))
					}
				}
			}
		}
		_, makespan, err := g.RunVirtual(p.Workers)
		if err != nil {
			return nil, err
		}
		res.ScheduleTicks = makespan
	}

	// --- PISCES 2 with programmer-controlled mapping ---------------------------
	{
		cfg := config.Simple(1, 2)
		pes := make([]int, 0, p.Workers-1)
		for pe := 7; len(pes) < p.Workers-1 && pe <= 20; pe++ {
			pes = append(pes, pe)
		}
		cfg = cfg.WithForces(1, pes...)
		vm, err := core.NewVM(cfg, core.Options{AcceptTimeout: 60 * time.Second})
		if err != nil {
			return nil, err
		}
		ticksCh := make(chan int64, 1)
		vm.Register("layered", func(t *core.Task) {
			machine := t.VM().Machine()
			start := machine.MaxTicks()
			err := t.ForceSplit(func(m *core.ForceMember) {
				for layer := 0; layer < p.Layers; layer++ {
					m.Presched(1, p.UnitsPerLayer, 1, func(int) { m.Charge(p.UnitCost) })
					m.Barrier(nil)
				}
			})
			if err != nil {
				t.Printf("layered: %v\n", err)
				ticksCh <- -1
				return
			}
			ticksCh <- machine.MaxTicks() - start
		})
		if _, err := vm.Run("layered", core.OnCluster(1)); err != nil {
			vm.Shutdown()
			return nil, err
		}
		ticks := <-ticksCh
		vm.Shutdown()
		if ticks < 0 {
			return nil, fmt.Errorf("experiments: PISCES layered run failed")
		}
		res.PiscesTicks = ticks
	}

	res.ScheduleSpeedup = stats.Speedup(float64(res.SerialTicks), float64(res.ScheduleTicks))
	res.PiscesSpeedup = stats.Speedup(float64(res.SerialTicks), float64(res.PiscesTicks))

	t := stats.NewTable(fmt.Sprintf("E7: layered task graph (%d layers x %d units, cost %d) on %d PEs",
		p.Layers, p.UnitsPerLayer, p.UnitCost, p.Workers),
		"system", "mapping", "simulated ticks", "speedup vs serial")
	t.AddRowf("serial", "single PE", res.SerialTicks, "1.00")
	t.AddRowf("SCHEDULE-style", "automatic (work queue)", res.ScheduleTicks, fmt.Sprintf("%.2f", res.ScheduleSpeedup))
	t.AddRowf("PISCES 2", "programmer-controlled (force + barrier)", res.PiscesTicks, fmt.Sprintf("%.2f", res.PiscesSpeedup))
	fmt.Fprint(w, t.String())
	fmt.Fprintf(w, "expected shape: both systems reach similar speedups on this regular graph; the\n")
	fmt.Fprintf(w, "difference is who chose the mapping (SCHEDULE's scheduler vs the PISCES configuration).\n")
	return res, nil
}
