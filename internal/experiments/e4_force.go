package experiments

import (
	"fmt"
	"io"
	"time"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/loops"
	"repro/internal/stats"
)

// E4Params controls the force-performance experiment.
type E4Params struct {
	// RegularIterations and RegularCost define the regular workload: many
	// iterations of identical cost.
	RegularIterations int
	RegularCost       int64
	// IrregularIterations and IrregularMaxCost define the irregular workload:
	// few iterations whose costs vary pseudo-randomly between 1 and
	// IrregularMaxCost ticks, so a static (prescheduled) partition can be
	// unlucky while self-scheduling balances the load dynamically.
	IrregularIterations int
	IrregularMaxCost    int64
	// ForceSizes lists the force sizes (members) to measure; 1 is the serial
	// baseline.
	ForceSizes []int
}

// DefaultE4Params returns the parameters used by cmd/experiments.
func DefaultE4Params() E4Params {
	return E4Params{
		RegularIterations:   4096,
		RegularCost:         8,
		IrregularIterations: 192,
		IrregularMaxCost:    512,
		ForceSizes:          []int{1, 2, 4, 8, 12},
	}
}

// irregularCost is a deterministic pseudo-random per-iteration cost.
func irregularCost(i int, max int64) int64 {
	h := uint64(i) * 2654435761
	h ^= h >> 13
	h *= 0x9e3779b97f4a7c15
	h ^= h >> 31
	return 1 + int64(h%uint64(max))
}

// E4Row is one measured configuration.
type E4Row struct {
	Members    int
	Discipline string // PRESCHED or SELFSCHED
	Workload   string // regular or irregular
	Ticks      int64
	Speedup    float64
}

// E4Result holds all measured rows.
type E4Result struct {
	Rows []E4Row
}

// Best returns the measured speedup for the given discipline/workload at the
// largest force size.
func (r *E4Result) Best(discipline, workload string) float64 {
	best := 0.0
	for _, row := range r.Rows {
		if row.Discipline == discipline && row.Workload == workload && row.Speedup > best {
			best = row.Speedup
		}
	}
	return best
}

// RunE4 measures force performance: the same parallel loop run serially and
// under forces of increasing size, with PRESCHED and SELFSCHED scheduling and
// with regular and irregular per-iteration cost.  Time is measured in
// simulated ticks (the makespan over the PEs used), which makes the results
// deterministic.  These are the "detailed timing measurements" the paper
// defers in Section 13.
func RunE4(w io.Writer, p E4Params) (*E4Result, error) {
	res := &E4Result{}
	serial := map[string]int64{} // workload -> serial ticks

	for _, workload := range []string{"regular", "irregular"} {
		for _, discipline := range []string{"PRESCHED", "SELFSCHED"} {
			for _, members := range p.ForceSizes {
				ticks, err := runForceWorkload(p, workload, discipline, members)
				if err != nil {
					return nil, err
				}
				if members == 1 {
					// Serial reference: identical for both disciplines, keep
					// the first measurement.
					if _, ok := serial[workload]; !ok {
						serial[workload] = ticks
					}
					ticks = serial[workload]
				}
				row := E4Row{Members: members, Discipline: discipline, Workload: workload, Ticks: ticks}
				row.Speedup = stats.Speedup(float64(serial[workload]), float64(ticks))
				res.Rows = append(res.Rows, row)
			}
		}
	}

	t := stats.NewTable("E4: force performance in simulated ticks (lower is better)",
		"workload", "discipline", "members", "ticks", "speedup", "efficiency")
	for _, row := range res.Rows {
		t.AddRowf(row.Workload, row.Discipline, row.Members, row.Ticks,
			fmt.Sprintf("%.2f", row.Speedup),
			fmt.Sprintf("%.2f", row.Speedup/float64(row.Members)))
	}
	fmt.Fprint(w, t.String())
	fmt.Fprintf(w, "expected shape: near-linear speedup for the regular workload under both disciplines;\n")
	fmt.Fprintf(w, "SELFSCHED tracks or beats PRESCHED on the irregular workload at larger force sizes.\n")
	return res, nil
}

// runForceWorkload measures one (workload, discipline, members) cell.
func runForceWorkload(p E4Params, workload, discipline string, members int) (int64, error) {
	// One cluster on PE 3; members-1 secondary PEs starting at PE 7.
	cfg := config.Simple(1, 2)
	if members > 1 {
		pes := make([]int, 0, members-1)
		for pe := 7; len(pes) < members-1 && pe <= 20; pe++ {
			pes = append(pes, pe)
		}
		cfg = cfg.WithForces(1, pes...)
	}
	vm, err := core.NewVM(cfg, core.Options{AcceptTimeout: 30 * time.Second})
	if err != nil {
		return 0, err
	}
	defer vm.Shutdown()

	iterations := p.RegularIterations
	cost := func(i int) int64 { return p.RegularCost }
	if workload == "irregular" {
		iterations = p.IrregularIterations
		cost = func(i int) int64 { return irregularCost(i, p.IrregularMaxCost) }
	}

	// For SELFSCHED the iteration-to-member assignment is the one dynamic
	// claiming produces in *simulated* time (the member whose clock is
	// furthest behind claims the next iteration).  Precomputing it with
	// loops.ListSchedule keeps the measurement independent of how many host
	// CPUs the simulator happens to run on; the live members then execute
	// exactly that assignment on their PEs.  selfschedClaimCost models the
	// shared-counter access each claim performs.
	const selfschedClaimCost = 1
	var selfAssign [][]int
	if discipline == "SELFSCHED" {
		costs := make([]int64, iterations)
		for i := range costs {
			costs[i] = cost(i + 1)
		}
		var err error
		selfAssign, _, err = loops.ListSchedule(costs, members, selfschedClaimCost)
		if err != nil {
			return 0, err
		}
	}

	ticksCh := make(chan int64, 1)
	vm.Register("loop", func(t *core.Task) {
		machine := t.VM().Machine()
		start := machine.MaxTicks()
		err := t.ForceSplit(func(m *core.ForceMember) {
			// All members rendezvous before the timed loop so the measurement
			// starts from a common point (member start-up is not part of the
			// loop's load balance).
			m.Barrier(nil)
			switch discipline {
			case "PRESCHED":
				m.Presched(1, iterations, 1, func(i int) { m.Charge(cost(i)) })
			default:
				for _, pos := range selfAssign[m.Member()] {
					m.Charge(selfschedClaimCost + cost(pos+1))
				}
			}
			m.Barrier(nil)
		})
		if err != nil {
			t.Printf("loop: %v\n", err)
			ticksCh <- -1
			return
		}
		ticksCh <- machine.MaxTicks() - start
	})
	if _, err := vm.Run("loop", core.OnCluster(1)); err != nil {
		return 0, err
	}
	ticks := <-ticksCh
	if ticks < 0 {
		return 0, fmt.Errorf("experiments: force workload failed")
	}
	return ticks, nil
}
