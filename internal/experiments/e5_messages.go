package experiments

import (
	"fmt"
	"io"
	"sort"
	"time"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/stats"
)

// E5Params controls the message-system experiment.
type E5Params struct {
	// PingPongRounds is the number of request/reply round trips measured.
	PingPongRounds int
	// FanInSenders and FanInMessages define the fan-in workload: each sender
	// sends FanInMessages messages to one collector.
	FanInSenders  int
	FanInMessages int
	// FanInWindows is how many measurement windows the fan-in delivery is
	// split into: the reported rate is the median window's, which a single
	// slow scheduling hiccup (the noise flagged in the PR 4 numbers) cannot
	// drag around the way it dragged a single whole-run measurement.  Zero
	// means 5.
	FanInWindows int
	// QueueGrowthMessages is the number of unaccepted messages queued while
	// heap growth is sampled.
	QueueGrowthMessages int
	// PayloadReals is the number of REAL values carried by each message.
	PayloadReals int
}

// DefaultE5Params returns the parameters used by cmd/experiments.
func DefaultE5Params() E5Params {
	return E5Params{
		PingPongRounds:      500,
		FanInSenders:        6,
		FanInMessages:       100,
		FanInWindows:        5,
		QueueGrowthMessages: 256,
		PayloadReals:        8,
	}
}

// E5Result holds the message-system measurements.
type E5Result struct {
	// PingPongPerRound is the mean wall-clock time of one send/accept round
	// trip, and PingPongTicks the simulated ticks charged per round trip.
	PingPongPerRound time.Duration
	PingPongTicks    float64
	// FanInMessagesPerSec is the median per-window wall-clock delivery rate
	// of the fan-in; FanInRateMin/Max bound the spread across the windows
	// and FanInWindowRates holds every window's rate, delivery order.
	// FanInRateP50/P95 summarise the window-rate distribution through the
	// runtime histogram type, which is what the printed report shows — a
	// median/p95 pair is comparable across runs in a way min..max (one
	// scheduling hiccup wide) never was.
	FanInMessagesPerSec float64
	FanInRateMin        float64
	FanInRateMax        float64
	FanInRateP50        float64
	FanInRateP95        float64
	FanInWindowRates    []float64
	FanInDelivered      int
	// Queue growth: heap bytes per queued message and whether the heap
	// returned to its baseline after the queue was drained.
	BytesPerQueuedMessage float64
	HeapRecovered         bool
}

// RunE5 measures the asynchronous message system of Section 6: round-trip
// latency between two tasks in different clusters, many-to-one throughput,
// and the shared-memory cost of letting messages wait unaccepted in an
// in-queue.
func RunE5(w io.Writer, p E5Params) (*E5Result, error) {
	res := &E5Result{}

	// --- ping-pong latency ---------------------------------------------------
	{
		vm, err := core.NewVM(config.Simple(2, 2), core.Options{AcceptTimeout: 30 * time.Second})
		if err != nil {
			return nil, err
		}
		echoReady := make(chan core.TaskID, 1)
		vm.Register("echo", func(t *core.Task) {
			echoReady <- t.ID()
			for {
				m, err := t.AcceptOne("ping", "stop")
				if err != nil || m.Type == "stop" {
					return
				}
				if err := t.SendSender("pong", m.Arg(0)); err != nil {
					return
				}
			}
		})
		done := make(chan [2]int64, 1) // {elapsed ns, ticks}
		vm.Register("pinger", func(t *core.Task) {
			to := core.MustID(t.Arg(0))
			machine := t.VM().Machine()
			startTicks := machine.TotalTicks()
			start := time.Now()
			for i := 0; i < p.PingPongRounds; i++ {
				if err := t.Send(to, "ping", core.Int(int64(i))); err != nil {
					t.Printf("pinger: %v\n", err)
					break
				}
				if _, err := t.AcceptOne("pong"); err != nil {
					t.Printf("pinger: %v\n", err)
					break
				}
			}
			elapsed := time.Since(start)
			_ = t.Send(to, "stop")
			done <- [2]int64{int64(elapsed), machine.TotalTicks() - startTicks}
		})
		echoID, err := vm.Initiate("echo", core.OnCluster(1))
		if err != nil {
			vm.Shutdown()
			return nil, err
		}
		<-echoReady
		if _, err := vm.Initiate("pinger", core.OnCluster(2), core.ID(echoID)); err != nil {
			vm.Shutdown()
			return nil, err
		}
		r := <-done
		vm.WaitIdle()
		vm.Shutdown()
		res.PingPongPerRound = time.Duration(r[0] / int64(p.PingPongRounds))
		res.PingPongTicks = float64(r[1]) / float64(p.PingPongRounds)
	}

	// --- fan-in throughput ---------------------------------------------------
	{
		vm, err := core.NewVM(config.Simple(4, 4), core.Options{AcceptTimeout: 60 * time.Second})
		if err != nil {
			return nil, err
		}
		total := p.FanInSenders * p.FanInMessages
		windows := p.FanInWindows
		if windows <= 0 {
			windows = 5
		}
		if windows > total {
			windows = total
		}
		collectorReady := make(chan core.TaskID, 1)
		collected := make(chan []float64, 1)
		vm.Register("collector", func(t *core.Task) {
			collectorReady <- t.ID()
			// Accept the stream in fixed-count windows, timing each: the
			// per-window rates expose the spread a single whole-run window
			// hides, and their median is robust against one slow window.
			rates := make([]float64, 0, windows)
			remaining := total
			for w := 0; w < windows; w++ {
				count := remaining / (windows - w)
				if count == 0 {
					continue
				}
				start := time.Now()
				if _, err := t.AcceptN(count, "datum"); err != nil {
					t.Printf("collector: %v\n", err)
					break
				}
				if elapsed := time.Since(start); elapsed > 0 {
					rates = append(rates, float64(count)/elapsed.Seconds())
				}
				remaining -= count
			}
			collected <- rates
		})
		vm.Register("producer", func(t *core.Task) {
			to := core.MustID(t.Arg(0))
			payload := make([]float64, p.PayloadReals)
			for i := 0; i < p.FanInMessages; i++ {
				if err := t.Send(to, "datum", core.Reals(payload)); err != nil {
					t.Printf("producer: %v\n", err)
					return
				}
			}
		})
		collectorID, err := vm.Initiate("collector", core.OnCluster(1))
		if err != nil {
			vm.Shutdown()
			return nil, err
		}
		<-collectorReady
		for i := 0; i < p.FanInSenders; i++ {
			if _, err := vm.Initiate("producer", core.Any(), core.ID(collectorID)); err != nil {
				vm.Shutdown()
				return nil, err
			}
		}
		rates := <-collected
		vm.WaitIdle()
		st := vm.Stats()
		vm.Shutdown()
		res.FanInDelivered = int(st.MessagesAccepted)
		res.FanInWindowRates = rates
		if len(rates) > 0 {
			sorted := append([]float64(nil), rates...)
			sort.Float64s(sorted)
			res.FanInRateMin = sorted[0]
			res.FanInRateMax = sorted[len(sorted)-1]
			mid := len(sorted) / 2
			if len(sorted)%2 == 0 {
				res.FanInMessagesPerSec = (sorted[mid-1] + sorted[mid]) / 2
			} else {
				res.FanInMessagesPerSec = sorted[mid]
			}
			// Summarise the window rates through the runtime histogram so the
			// report's spread line uses the same quantile machinery as the
			// -stats distributions.
			hreg := obs.New()
			h := hreg.Histogram("e5.fanin.window.rate", "")
			for _, r := range rates {
				h.Observe(int64(r + 0.5))
			}
			hs := hreg.Snapshot().Hists[0]
			res.FanInRateP50 = hs.Quantile(0.50)
			res.FanInRateP95 = hs.Quantile(0.95)
		}
	}

	// --- unaccepted-queue growth ----------------------------------------------
	{
		vm, err := core.NewVM(config.Simple(2, 2), core.Options{AcceptTimeout: 30 * time.Second})
		if err != nil {
			return nil, err
		}
		// Machine-wide heap usage is the per-cluster shard roll-up.
		heap := vm.Machine().Shared()
		baseline := heap.HeapStats().InUse
		hoardReady := make(chan core.TaskID, 1)
		vm.Register("hoard", func(t *core.Task) {
			hoardReady <- t.ID()
			if _, err := t.Accept(core.AcceptSpec{Total: 1, Types: []core.TypeCount{{Type: "drain"}}, Delay: core.Forever}); err != nil {
				return
			}
			_, _ = t.Accept(core.AcceptSpec{Types: []core.TypeCount{{Type: "datum", Count: core.All}}})
		})
		id, err := vm.Initiate("hoard", core.OnCluster(1))
		if err != nil {
			vm.Shutdown()
			return nil, err
		}
		<-hoardReady
		payload := make([]float64, p.PayloadReals)
		for i := 0; i < p.QueueGrowthMessages; i++ {
			if err := vm.SendFromUser(id, "datum", core.Reals(payload)); err != nil {
				vm.Shutdown()
				return nil, err
			}
		}
		grown := heap.HeapStats().InUse
		res.BytesPerQueuedMessage = float64(grown-baseline) / float64(p.QueueGrowthMessages)
		if err := vm.SendFromUser(id, "drain"); err != nil {
			vm.Shutdown()
			return nil, err
		}
		vm.WaitIdle()
		after := heap.HeapStats().InUse
		res.HeapRecovered = after <= baseline
		vm.Shutdown()
	}

	t := stats.NewTable("E5: message system behaviour (Section 6/11)",
		"measurement", "value")
	t.AddRow("ping-pong round trip (wall clock)", res.PingPongPerRound.String())
	t.AddRow("ping-pong round trip (simulated ticks)", fmt.Sprintf("%.1f", res.PingPongTicks))
	t.AddRow(fmt.Sprintf("fan-in delivery rate (median of %d windows)", len(res.FanInWindowRates)),
		fmt.Sprintf("%.0f messages/s", res.FanInMessagesPerSec))
	t.AddRow(fmt.Sprintf("fan-in window rate (p50 / p95 of %d windows)", len(res.FanInWindowRates)),
		fmt.Sprintf("%.0f / %.0f messages/s", res.FanInRateP50, res.FanInRateP95))
	t.AddRow("shared-memory cost per queued message", fmt.Sprintf("%.0f bytes", res.BytesPerQueuedMessage))
	t.AddRow("heap recovered after queue drained", fmt.Sprintf("%v", res.HeapRecovered))
	fmt.Fprint(w, t.String())
	return res, nil
}
