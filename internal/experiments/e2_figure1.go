package experiments

import (
	"io"
	"time"

	"repro/internal/config"
	"repro/internal/core"
)

// RunE2 reproduces Figure 1 of the paper — the virtual machine organisation —
// by booting a three-cluster configuration, populating some slots with user
// tasks (leaving others free), and rendering the live structure: task
// controllers in every cluster, the user controller in the terminal cluster,
// user tasks in occupied slots, "<not in use>" slots, and the message-passing
// network joining the clusters.
func RunE2(w io.Writer) error {
	cfg := config.Simple(3, 3)
	vm, err := core.NewVM(cfg, core.Options{AcceptTimeout: 5 * time.Second})
	if err != nil {
		return err
	}
	defer vm.Shutdown()

	// A couple of user tasks occupy slots while the figure is rendered; they
	// simply wait for a message that arrives when the experiment is done.
	started := make(chan core.TaskID, 4)
	vm.Register("user-task", func(t *core.Task) {
		started <- t.ID()
		_, _ = t.Accept(core.AcceptSpec{Total: 1, Types: []core.TypeCount{{Type: "finish"}}, Delay: core.Forever})
	})
	var ids []core.TaskID
	for _, cl := range []int{1, 1, 3} {
		id, err := vm.Initiate("user-task", core.OnCluster(cl))
		if err != nil {
			return err
		}
		ids = append(ids, id)
	}
	for range ids {
		<-started
	}

	vm.RenderFigure1(w)

	for _, id := range ids {
		_ = vm.SendFromUser(id, "finish")
	}
	vm.WaitIdle()
	return nil
}
