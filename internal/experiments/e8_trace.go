package experiments

import (
	"fmt"
	"io"
	"time"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/trace"
)

// E8Result holds the trace produced by the demonstration program.
type E8Result struct {
	Events   []trace.Event
	Analysis trace.Analysis
}

// RunE8 exercises the Section 12 tracing facility: all eight event types are
// enabled, a small program runs (task initiation, message exchange, a force
// with a barrier and a critical section), the trace lines are shown in the
// Section 12 format, and the off-line analysis is produced from them.
func RunE8(w io.Writer) (*E8Result, error) {
	sink := &trace.MemorySink{}
	cfg := config.Simple(2, 2).WithForces(1, 7, 8)
	for _, k := range trace.Kinds() {
		cfg.TraceEvents = append(cfg.TraceEvents, k.String())
	}
	vm, err := core.NewVM(cfg, core.Options{
		AcceptTimeout: 30 * time.Second,
		TraceSinks:    []trace.Sink{sink},
	})
	if err != nil {
		return nil, err
	}
	defer vm.Shutdown()

	vm.Register("traced-worker", func(t *core.Task) {
		m, err := t.AcceptOne("work")
		if err != nil {
			return
		}
		n := core.MustInt(m.Arg(0))
		_ = t.SendSender("result", core.Int(n*n))
	})
	vm.Register("traced-main", func(t *core.Task) {
		// Message traffic with a child task.
		child, err := t.InitiateWait(core.Other(), "traced-worker")
		if err != nil {
			t.Printf("traced-main: %v\n", err)
			return
		}
		if err := t.Send(child, "work", core.Int(7)); err != nil {
			t.Printf("traced-main: %v\n", err)
			return
		}
		if _, err := t.AcceptOne("result"); err != nil {
			t.Printf("traced-main: %v\n", err)
			return
		}
		// Force activity: barrier, lock, unlock.
		lock, err := t.NewLock("trace-lock")
		if err != nil {
			t.Printf("traced-main: %v\n", err)
			return
		}
		_ = t.ForceSplit(func(m *core.ForceMember) {
			m.Critical(lock, func() {})
			m.Barrier(nil)
		})
	})
	if _, err := vm.Run("traced-main", core.OnCluster(1)); err != nil {
		return nil, err
	}
	vm.WaitIdle()

	events := sink.Events()
	res := &E8Result{Events: events, Analysis: trace.Analyze(events)}

	fmt.Fprintf(w, "E8: execution trace (%d events; Section 12 line format)\n", len(events))
	limit := len(events)
	if limit > 25 {
		limit = 25
	}
	for _, e := range events[:limit] {
		fmt.Fprintln(w, "  "+e.Line())
	}
	if len(events) > limit {
		fmt.Fprintf(w, "  ... %d more events\n", len(events)-limit)
	}
	fmt.Fprintln(w)
	fmt.Fprint(w, res.Analysis.Report())
	return res, nil
}
