package experiments

import (
	"fmt"
	"io"
	"time"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/stats"
)

// E3Result summarises the Section 9 worked mapping example.
type E3Result struct {
	// ForceSizes maps cluster number to the number of members a FORCESPLIT
	// produces there (cluster 1 -> 1, cluster 2 -> 6, clusters 3 and 4 -> 10).
	ForceSizes map[int]int
	// MaxMultiprogramming maps PE number to the maximum number of tasks that
	// may time-share it (the "4+4=8" arithmetic of Section 9).
	MaxMultiprogramming map[int]int
	// MeasuredMembers maps cluster number to the member count actually
	// observed when a task in that cluster executed a FORCESPLIT.
	MeasuredMembers map[int]int
}

// RunE3 reproduces the Section 9 example: the configuration itself, the
// force sizes it implies, the maximum multiprogramming degree of every PE,
// and a live check that FORCESPLIT really produces those member counts
// (including the degenerate no-splitting case of cluster 1).
func RunE3(w io.Writer) (*E3Result, error) {
	cfg := config.Section9Example()
	res := &E3Result{
		ForceSizes:          make(map[int]int),
		MaxMultiprogramming: make(map[int]int),
		MeasuredMembers:     make(map[int]int),
	}
	for _, cl := range cfg.Clusters {
		res.ForceSizes[cl.Number] = cl.ForceSize()
	}
	for pe := 3; pe <= 20; pe++ {
		res.MaxMultiprogramming[pe] = cfg.MaxMultiprogramming(pe)
	}

	fmt.Fprint(w, cfg.String())

	t := stats.NewTable("E3: force size and PE loading implied by the Section 9 mapping",
		"cluster", "primary PE", "secondary PEs", "slots", "FORCESPLIT members")
	for _, n := range cfg.ClusterNumbers() {
		cl := cfg.Cluster(n)
		t.AddRowf(n, cl.PrimaryPE, fmt.Sprintf("%v", cl.SecondaryPEs), cl.Slots, cl.ForceSize())
	}
	fmt.Fprint(w, t.String())

	t2 := stats.NewTable("maximum simultaneous tasks per PE (paper: \"4+4=8\" on PEs 7-15)",
		"PEs", "max multiprogramming")
	t2.AddRow("3-6 (cluster primaries)", fmt.Sprintf("%d", res.MaxMultiprogramming[3]))
	t2.AddRow("7-15 (forces for clusters 3 and 4)", fmt.Sprintf("%d", res.MaxMultiprogramming[7]))
	t2.AddRow("16-20 (forces for cluster 2)", fmt.Sprintf("%d", res.MaxMultiprogramming[16]))
	fmt.Fprint(w, t2.String())

	// Live check: execute a FORCESPLIT in clusters 1, 2, and 3 and count the
	// members that actually run.
	vm, err := core.NewVM(cfg, core.Options{AcceptTimeout: 10 * time.Second})
	if err != nil {
		return nil, err
	}
	defer vm.Shutdown()
	members := make(chan [2]int, 8)
	vm.Register("probe", func(t *core.Task) {
		lock, err := t.NewLock("probe-lock")
		if err != nil {
			t.Printf("probe: %v\n", err)
			return
		}
		count := 0
		err = t.ForceSplit(func(m *core.ForceMember) {
			m.Critical(lock, func() { count++ })
		})
		if err != nil {
			t.Printf("probe: %v\n", err)
			return
		}
		members <- [2]int{t.Cluster(), count}
	})
	for _, cl := range []int{1, 2, 3} {
		if _, err := vm.Run("probe", core.OnCluster(cl)); err != nil {
			return nil, err
		}
	}
	for i := 0; i < 3; i++ {
		pair := <-members
		res.MeasuredMembers[pair[0]] = pair[1]
	}

	t3 := stats.NewTable("measured FORCESPLIT member counts (live run)",
		"cluster", "configured", "measured")
	for _, cl := range []int{1, 2, 3} {
		t3.AddRowf(cl, res.ForceSizes[cl], res.MeasuredMembers[cl])
	}
	fmt.Fprint(w, t3.String())
	return res, nil
}
