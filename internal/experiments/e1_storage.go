package experiments

import (
	"fmt"
	"io"
	"time"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/stats"
)

// E1Result holds the Section 13 storage-overhead measurements.
type E1Result struct {
	// SystemLocalBytes and LocalPercent are the per-PE PISCES system
	// footprint; the paper reports "less than 2.5% of each PE's local memory".
	SystemLocalBytes int
	LocalPercent     float64
	// TableBytes and TablePercent are the shared-memory system tables; the
	// paper reports "less than 0.3% of shared memory".
	TableBytes   int
	TablePercent float64
	// Message-heap behaviour: bytes in use while messages sit unaccepted,
	// the high-water mark, and bytes in use after every message is accepted
	// ("Storage used for message passing is dynamically recovered and
	// reused").
	HeapDuringBurst int
	HeapHighWater   int
	HeapAfterBurst  int
	BurstMessages   int
}

// RunE1 measures the storage overhead of the running system, reproducing the
// only numbers the paper reports (Section 13).
func RunE1(w io.Writer) (*E1Result, error) {
	vm, err := core.NewVM(config.Section9Example(), core.Options{AcceptTimeout: 10 * time.Second})
	if err != nil {
		return nil, err
	}
	defer vm.Shutdown()

	res := &E1Result{}
	st := vm.SystemStorage()
	res.SystemLocalBytes = st.SystemLocalBytesPerPE
	res.LocalPercent = st.LocalPercent
	res.TableBytes = st.TableBytes
	res.TablePercent = st.TablePercent

	// Message-heap recovery: a sender floods a receiver that does not accept
	// until told to; the heap grows while the messages wait in the in-queue
	// and returns to its baseline once they are accepted.
	const burst = 200
	res.BurstMessages = burst
	// The heap is sharded per cluster; the Section 13 numbers are the
	// machine-wide roll-up over every shard (memory.Aggregate via HeapStats).
	heap := vm.Machine().Shared()

	ready := make(chan core.TaskID, 1)
	accepted := make(chan struct{})
	vm.Register("hoarder", func(t *core.Task) {
		ready <- t.ID()
		if _, err := t.Accept(core.AcceptSpec{Total: 1, Types: []core.TypeCount{{Type: "go"}}, Delay: core.Forever}); err != nil {
			return
		}
		if _, err := t.AcceptN(burst, "datum"); err != nil {
			return
		}
		close(accepted)
	})
	vm.Register("flooder", func(t *core.Task) {
		to := core.MustID(t.Arg(0))
		payload := make([]float64, 16)
		for i := 0; i < burst; i++ {
			if err := t.Send(to, "datum", core.Reals(payload)); err != nil {
				t.Printf("flooder: %v\n", err)
				return
			}
		}
		if err := t.Send(to, "go"); err != nil {
			t.Printf("flooder: %v\n", err)
		}
	})

	hoarderID, err := vm.Initiate("hoarder", core.OnCluster(1))
	if err != nil {
		return nil, err
	}
	<-ready
	if _, err := vm.Initiate("flooder", core.OnCluster(2), core.ID(hoarderID)); err != nil {
		return nil, err
	}
	vm.WaitIdle()
	<-accepted

	// During the burst is approximated by the high-water mark (the burst has
	// completed by the time we sample), which is what Section 13 cares about:
	// "the amount of shared memory used for message passing only becomes
	// significant when large numbers of messages ... are sent and left
	// waiting in a task's in-queue without being accepted."
	hs := heap.HeapStats()
	res.HeapHighWater = hs.HighWater
	res.HeapDuringBurst = res.HeapHighWater
	res.HeapAfterBurst = hs.InUse

	t := stats.NewTable("E1: storage overhead (paper, Section 13)",
		"quantity", "measured", "share", "paper")
	t.AddRow("PISCES system code+data per PE",
		fmt.Sprintf("%d bytes", res.SystemLocalBytes),
		fmt.Sprintf("%.2f%% of 1 MB local", res.LocalPercent),
		"< 2.5%")
	t.AddRow("system tables in shared memory",
		fmt.Sprintf("%d bytes", res.TableBytes),
		fmt.Sprintf("%.3f%% of 2.25 MB shared", res.TablePercent),
		"< 0.3%")
	t.AddRow(fmt.Sprintf("message heap, %d unaccepted messages", burst),
		fmt.Sprintf("%d bytes high water", res.HeapHighWater),
		fmt.Sprintf("%.2f%% of shared", stats.Percent(float64(res.HeapHighWater), float64(vm.Machine().Shared().Total()))),
		"grows only while unaccepted")
	t.AddRow("message heap after all accepted",
		fmt.Sprintf("%d bytes", res.HeapAfterBurst),
		"",
		"dynamically recovered and reused")
	fmt.Fprint(w, t.String())
	return res, nil
}
