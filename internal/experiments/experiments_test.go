package experiments

import (
	"bytes"
	"io"
	"strings"
	"testing"
)

func TestDescribeAndRunUnknown(t *testing.T) {
	for _, n := range Names {
		if Describe(n) == "unknown experiment" {
			t.Errorf("experiment %s has no description", n)
		}
	}
	if Describe("e99") != "unknown experiment" {
		t.Error("unknown experiment should say so")
	}
	if err := Run("e99", io.Discard); err == nil {
		t.Error("running an unknown experiment should fail")
	}
}

func TestE1StorageMatchesPaperBounds(t *testing.T) {
	var buf bytes.Buffer
	res, err := RunE1(&buf)
	if err != nil {
		t.Fatal(err)
	}
	// The paper's Section 13 claims.
	if res.LocalPercent >= 2.5 {
		t.Errorf("system local memory share %.2f%%, paper claims < 2.5%%", res.LocalPercent)
	}
	if res.TablePercent >= 0.3 {
		t.Errorf("system table share %.3f%%, paper claims < 0.3%%", res.TablePercent)
	}
	// Message storage grows while unaccepted and is recovered afterwards.
	if res.HeapHighWater <= 0 {
		t.Error("message heap never grew during the burst")
	}
	if res.HeapAfterBurst != 0 {
		t.Errorf("message heap not recovered: %d bytes still in use", res.HeapAfterBurst)
	}
	if !strings.Contains(buf.String(), "E1: storage overhead") {
		t.Error("report missing its table")
	}
}

func TestE2RendersFigure1(t *testing.T) {
	var buf bytes.Buffer
	if err := RunE2(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"VIRTUAL MACHINE ORGANIZATION", "Task controller", "User controller", "User task", "<not in use>", "Message-passing network"} {
		if !strings.Contains(out, want) {
			t.Errorf("figure missing %q", want)
		}
	}
}

func TestE3MappingMatchesSection9(t *testing.T) {
	var buf bytes.Buffer
	res, err := RunE3(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if res.ForceSizes[1] != 1 || res.ForceSizes[2] != 6 || res.ForceSizes[3] != 10 || res.ForceSizes[4] != 10 {
		t.Errorf("force sizes %v", res.ForceSizes)
	}
	if res.MaxMultiprogramming[7] != 8 || res.MaxMultiprogramming[16] != 4 {
		t.Errorf("max multiprogramming %v", res.MaxMultiprogramming)
	}
	// The live FORCESPLIT member counts must equal the configured force sizes.
	for _, cl := range []int{1, 2, 3} {
		if res.MeasuredMembers[cl] != res.ForceSizes[cl] {
			t.Errorf("cluster %d measured %d members, configured %d", cl, res.MeasuredMembers[cl], res.ForceSizes[cl])
		}
	}
}

func TestE4ForceSpeedupShape(t *testing.T) {
	var buf bytes.Buffer
	p := E4Params{
		RegularIterations:   512,
		RegularCost:         8,
		IrregularIterations: 96,
		IrregularMaxCost:    256,
		ForceSizes:          []int{1, 4, 8},
	}
	res, err := RunE4(&buf, p)
	if err != nil {
		t.Fatal(err)
	}
	// Who wins and by roughly what factor: the regular workload must show
	// substantial speedup for both disciplines at 8 members, and
	// self-scheduling must not lose to prescheduling on the irregular
	// workload by more than a small margin (it usually wins).
	if best := res.Best("PRESCHED", "regular"); best < 5 {
		t.Errorf("PRESCHED regular best speedup %.2f, want >= 5 at 8 members", best)
	}
	if best := res.Best("SELFSCHED", "regular"); best < 4 {
		t.Errorf("SELFSCHED regular best speedup %.2f, want >= 4 at 8 members", best)
	}
	pre := res.Best("PRESCHED", "irregular")
	self := res.Best("SELFSCHED", "irregular")
	if self < pre*0.9 {
		t.Errorf("SELFSCHED irregular best %.2f much worse than PRESCHED %.2f", self, pre)
	}
	// Every row's speedup is at most the member count (no super-linear
	// artefacts from the accounting).
	for _, row := range res.Rows {
		if row.Speedup > float64(row.Members)+0.01 {
			t.Errorf("row %+v shows super-linear speedup", row)
		}
	}
}

func TestE5MessageSystem(t *testing.T) {
	var buf bytes.Buffer
	p := E5Params{
		PingPongRounds:      50,
		FanInSenders:        3,
		FanInMessages:       20,
		QueueGrowthMessages: 64,
		PayloadReals:        4,
	}
	res, err := RunE5(&buf, p)
	if err != nil {
		t.Fatal(err)
	}
	if res.PingPongPerRound <= 0 {
		t.Error("ping-pong latency not measured")
	}
	if res.PingPongTicks <= 0 {
		t.Error("ping-pong tick cost not measured")
	}
	if res.FanInMessagesPerSec <= 0 || res.FanInDelivered < p.FanInSenders*p.FanInMessages {
		t.Errorf("fan-in: rate %.0f delivered %d", res.FanInMessagesPerSec, res.FanInDelivered)
	}
	// Each queued message costs at least a header's worth of shared memory
	// and the heap must be recovered after draining.
	if res.BytesPerQueuedMessage < 64 {
		t.Errorf("bytes per queued message %.0f, want >= 64 (header)", res.BytesPerQueuedMessage)
	}
	if !res.HeapRecovered {
		t.Error("message heap was not recovered after the queue drained")
	}
}

func TestE6WindowTrafficRatio(t *testing.T) {
	var buf bytes.Buffer
	p := E6Params{N: 48, Groups: 2, WorkersPerGroup: 2}
	res, err := RunE6(&buf, p)
	if err != nil {
		t.Fatal(err)
	}
	// Windows move each element exactly twice (one read + one write).
	if res.WindowBytes != 2*res.ArrayBytes {
		t.Errorf("window bytes %d, want exactly 2x array (%d)", res.WindowBytes, 2*res.ArrayBytes)
	}
	// Shipping through two partitioning levels costs about twice as much.
	if res.Ratio < 1.9 || res.Ratio > 2.1 {
		t.Errorf("shipped/window ratio %.2f, want about 2", res.Ratio)
	}
}

func TestE7ScheduleComparison(t *testing.T) {
	var buf bytes.Buffer
	p := E7Params{Layers: 4, UnitsPerLayer: 8, UnitCost: 20, Workers: 4}
	res, err := RunE7(&buf, p)
	if err != nil {
		t.Fatal(err)
	}
	if res.SerialTicks != 4*8*20 {
		t.Errorf("serial ticks %d", res.SerialTicks)
	}
	// Both systems must get a real speedup on 4 workers, and be within ~30%
	// of one another on this regular graph (the paper's point is that they
	// differ in who controls the mapping, not in achievable performance).
	if res.ScheduleSpeedup < 2.5 || res.PiscesSpeedup < 2.5 {
		t.Errorf("speedups too low: SCHEDULE %.2f, PISCES %.2f", res.ScheduleSpeedup, res.PiscesSpeedup)
	}
	ratio := res.PiscesSpeedup / res.ScheduleSpeedup
	if ratio < 0.7 || ratio > 1.4 {
		t.Errorf("systems diverge too much: SCHEDULE %.2f vs PISCES %.2f", res.ScheduleSpeedup, res.PiscesSpeedup)
	}
}

func TestE8TraceCoversAllEventKinds(t *testing.T) {
	var buf bytes.Buffer
	res, err := RunE8(&buf)
	if err != nil {
		t.Fatal(err)
	}
	a := res.Analysis
	if a.CountByKind == nil {
		t.Fatal("no analysis produced")
	}
	// The demonstration program must exercise every one of the eight
	// traceable event kinds of Section 12.
	counts := map[string]int{}
	for k, n := range a.CountByKind {
		counts[k.String()] = n
	}
	for _, kind := range []string{"TASK-INIT", "TASK-TERM", "MSG-SEND", "MSG-ACCEPT", "LOCK", "UNLOCK", "BARRIER", "FORCE-SPLIT"} {
		if counts[kind] == 0 {
			t.Errorf("trace has no %s events", kind)
		}
	}
	if !strings.Contains(buf.String(), "Trace analysis") {
		t.Error("report missing the analysis section")
	}
}

func TestRunAllWritesEverySection(t *testing.T) {
	if testing.Short() {
		t.Skip("running every experiment is slow")
	}
	var buf bytes.Buffer
	if err := Run("all", &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, n := range Names {
		if !strings.Contains(out, "==== "+n) {
			t.Errorf("combined run missing section %s", n)
		}
	}
}
