// Package experiments regenerates every quantitative artifact of the paper's
// evaluation (see DESIGN.md, "Per-experiment index"):
//
//	E1  Section 13 storage-overhead measurements
//	E2  Figure 1, the virtual-machine organisation diagram
//	E3  the Section 9 worked mapping example
//	E4  force performance (PRESCHED vs SELFSCHED vs serial) — the timing
//	    measurements the paper defers
//	E5  message-system behaviour (latency, fan-in, unaccepted-queue growth)
//	E6  window-based partitioning vs shipping array data through every level
//	E7  the Section 3 comparison against a SCHEDULE-style scheduler
//	E8  the Section 12 tracing facility
//
// Each experiment has a Run function that performs the measurement on the
// simulated FLEX/32 and writes a report; the structured results are returned
// so the benchmark harness and tests can check the shape of the outcome
// (who wins, by roughly what factor) without parsing text.
package experiments

import (
	"fmt"
	"io"
	"sort"
)

// Experiment names in canonical order.
var Names = []string{"e1", "e2", "e3", "e4", "e5", "e6", "e7", "e8"}

// Describe returns a one-line description of an experiment.
func Describe(name string) string {
	switch name {
	case "e1":
		return "Section 13 storage overhead (system local memory, shared-memory tables, message-heap recovery)"
	case "e2":
		return "Figure 1: virtual machine organization rendered from a live system"
	case "e3":
		return "Section 9 worked example: mapping clusters and forces onto the 18 MMOS PEs"
	case "e4":
		return "Force performance: PRESCHED vs SELFSCHED vs serial over force sizes"
	case "e5":
		return "Message system: ping-pong latency, fan-in, broadcast, unaccepted-queue growth"
	case "e6":
		return "Windows: hierarchical partitioning vs shipping array data through every level"
	case "e7":
		return "Comparison with a SCHEDULE-style automatically mapped scheduler"
	case "e8":
		return "Section 12 tracing facility and off-line analysis"
	default:
		return "unknown experiment"
	}
}

// Run executes the named experiment (or "all") and writes its report to w.
func Run(name string, w io.Writer) error {
	run := map[string]func(io.Writer) error{
		"e1": func(w io.Writer) error { _, err := RunE1(w); return err },
		"e2": RunE2,
		"e3": func(w io.Writer) error { _, err := RunE3(w); return err },
		"e4": func(w io.Writer) error { _, err := RunE4(w, DefaultE4Params()); return err },
		"e5": func(w io.Writer) error { _, err := RunE5(w, DefaultE5Params()); return err },
		"e6": func(w io.Writer) error { _, err := RunE6(w, DefaultE6Params()); return err },
		"e7": func(w io.Writer) error { _, err := RunE7(w, DefaultE7Params()); return err },
		"e8": func(w io.Writer) error { _, err := RunE8(w); return err },
	}
	if name == "all" {
		names := make([]string, len(Names))
		copy(names, Names)
		sort.Strings(names)
		for _, n := range names {
			fmt.Fprintf(w, "==== %s: %s ====\n", n, Describe(n))
			if err := run[n](w); err != nil {
				return fmt.Errorf("%s: %w", n, err)
			}
			fmt.Fprintln(w)
		}
		return nil
	}
	f, ok := run[name]
	if !ok {
		return fmt.Errorf("experiments: unknown experiment %q (want one of %v or all)", name, Names)
	}
	return f(w)
}
