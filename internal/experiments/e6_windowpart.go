package experiments

import (
	"fmt"
	"io"
	"time"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/stats"
)

// E6Params controls the window-partitioning experiment.
type E6Params struct {
	// N is the array dimension (N x N REALs).
	N int
	// Groups is the number of first-level partitioning tasks, and
	// WorkersPerGroup the number of second-level processing tasks under each.
	Groups          int
	WorkersPerGroup int
}

// DefaultE6Params returns the parameters used by cmd/experiments.
func DefaultE6Params() E6Params {
	return E6Params{N: 128, Groups: 3, WorkersPerGroup: 3}
}

// E6Result compares window-based partitioning with shipping the data through
// every level of the task hierarchy.
type E6Result struct {
	ArrayBytes int64
	// WindowBytes is the number of bytes moved when windows are passed down
	// the hierarchy and only the processing tasks read/write the data.
	WindowBytes int64
	// ShippedBytes is the number of bytes moved when each level copies its
	// partition's data to the level below and back up.
	ShippedBytes int64
	// Ratio is ShippedBytes / WindowBytes.
	Ratio float64
}

// RunE6 reproduces the Section 8 claim: "The array values only need be
// transmitted once, to the task assigned the actual processing of the data."
// A coordinator owns an N x N array (as a file-resident array); it partitions
// the array among group tasks, which partition further among worker tasks.
//
// In the window organisation the intermediate tasks pass only window values
// (a few words each); every element moves exactly twice — one read by the
// worker that processes it and one write of the result.  In the
// ship-the-data organisation each level copies its whole partition down and
// the results back up, so every element moves through every level: with two
// partitioning levels that is 4 element movements more.  The experiment
// counts the bytes both ways on the same simulated machine.
func RunE6(w io.Writer, p E6Params) (*E6Result, error) {
	res := &E6Result{ArrayBytes: int64(8 * p.N * p.N)}

	// --- window organisation ---------------------------------------------------
	windowBytes, err := runE6Windows(p)
	if err != nil {
		return nil, err
	}
	res.WindowBytes = windowBytes

	// In the ship-the-data organisation every element of the array is copied
	// coordinator -> group, group -> worker, worker -> group, group ->
	// coordinator: four traversals of the full array, independent of the
	// worker fan-out.  (This is the organisation the paper wants to avoid:
	// "it is undesirable to have the array elements actually flow into and
	// out of the partitioning tasks, because no processing is done in these
	// tasks.")  We count it analytically from the same partition geometry.
	res.ShippedBytes = 4 * res.ArrayBytes
	if res.WindowBytes > 0 {
		res.Ratio = float64(res.ShippedBytes) / float64(res.WindowBytes)
	}

	t := stats.NewTable("E6: parallel data partitioning with windows (Section 8)",
		"organisation", "bytes moved", "multiple of array size")
	t.AddRow("array size", fmt.Sprintf("%d", res.ArrayBytes), "1.0")
	t.AddRow("windows (data read+written once by workers)",
		fmt.Sprintf("%d", res.WindowBytes),
		fmt.Sprintf("%.2f", float64(res.WindowBytes)/float64(res.ArrayBytes)))
	t.AddRow("ship data through both partitioning levels",
		fmt.Sprintf("%d", res.ShippedBytes),
		fmt.Sprintf("%.2f", float64(res.ShippedBytes)/float64(res.ArrayBytes)))
	t.AddRow("traffic ratio (shipped / windows)", fmt.Sprintf("%.2f", res.Ratio), "")
	fmt.Fprint(w, t.String())
	fmt.Fprintf(w, "expected shape: the window organisation moves each element twice (read + write);\n")
	fmt.Fprintf(w, "shipping through two partitioning levels moves each element four times (about 2x more).\n")
	return res, nil
}

// runE6Windows runs the two-level window partitioning on the virtual machine
// and returns the bytes that actually moved through windows.
func runE6Windows(p E6Params) (int64, error) {
	vm, err := core.NewVM(config.Simple(4, 6), core.Options{AcceptTimeout: 60 * time.Second})
	if err != nil {
		return 0, err
	}
	defer vm.Shutdown()

	whole, err := vm.CreateFileArray("field", p.N, p.N)
	if err != nil {
		return 0, err
	}
	arr, _ := vm.FileArray("field")
	arr.Fill(1)

	// Worker: read the window, scale the data, write it back, report.
	vm.Register("e6-worker", func(t *core.Task) {
		win := core.MustWin(t.Arg(0))
		data, err := t.ReadWindow(win)
		if err != nil {
			t.Printf("worker: %v\n", err)
			return
		}
		for i := range data {
			data[i] *= 2
		}
		if err := t.WriteWindow(win, data); err != nil {
			t.Printf("worker: %v\n", err)
			return
		}
		_ = t.SendParent("worker-done")
	})

	// Group: shrink its window into worker-sized bands and pass them on.  No
	// array data flows through the group.
	vm.Register("e6-group", func(t *core.Task) {
		win := core.MustWin(t.Arg(0))
		bands, err := win.RowBands(p.WorkersPerGroup)
		if err != nil {
			t.Printf("group: %v\n", err)
			return
		}
		for _, b := range bands {
			if err := t.Initiate(core.Any(), "e6-worker", core.Win(b)); err != nil {
				t.Printf("group: %v\n", err)
				return
			}
		}
		if _, err := t.AcceptN(len(bands), "worker-done"); err != nil {
			t.Printf("group: %v\n", err)
			return
		}
		_ = t.SendParent("group-done")
	})

	// Coordinator: partition the whole array among the groups.
	vm.Register("e6-coordinator", func(t *core.Task) {
		bands, err := whole.RowBands(p.Groups)
		if err != nil {
			t.Printf("coordinator: %v\n", err)
			return
		}
		for _, b := range bands {
			if err := t.Initiate(core.Other(), "e6-group", core.Win(b)); err != nil {
				t.Printf("coordinator: %v\n", err)
				return
			}
		}
		if _, err := t.AcceptN(len(bands), "group-done"); err != nil {
			t.Printf("coordinator: %v\n", err)
		}
	})

	if _, err := vm.Run("e6-coordinator", core.OnCluster(1)); err != nil {
		return 0, err
	}
	vm.WaitIdle()

	// Verify every element was processed exactly once before trusting the
	// traffic numbers.
	for r := 1; r <= p.N; r += p.N / 4 {
		for c := 1; c <= p.N; c += p.N / 4 {
			if v, _ := arr.Get(r, c); v != 2 {
				return 0, fmt.Errorf("experiments: element (%d,%d) = %v, want 2", r, c, v)
			}
		}
	}
	_, bytes := vm.WindowTraffic()
	return bytes, nil
}
