// Package loops implements the parallel loop scheduling disciplines of the
// PISCES 2 force construct (paper, Section 7):
//
//   - PRESCHED DO loops: "in a force of N members, each member should take
//     1/N of the loop iterations.  The Ith force member takes iterations
//     I, N+I, 2*N+I, etc."  (cyclic / interleaved prescheduling)
//
//   - SELFSCHED DO loops: "each force member takes the 'next' iteration when
//     it arrives at the loop ... until all iterations are complete."
//     (dynamic self-scheduling off a shared counter)
//
//   - PARSEG parallel segments: "The Ith force member executes the Ith, N+I,
//     2*N+I, etc. statement sequences, just as for a PRESCHED DO loop."
//
// The partitioning arithmetic is kept here as pure functions so it can be
// property-tested independently of the run-time system; internal/core wires
// these functions to real force members and to the shared-memory counter used
// by self-scheduling.
package loops

import "fmt"

// Iterations expands a Fortran-style DO loop control (lo, hi, step) into the
// ordered list of iteration index values.  A zero step is invalid.  Like
// Fortran DO, the loop body executes zero times when the bounds are crossed.
func Iterations(lo, hi, step int) ([]int, error) {
	var out []int
	if err := ForEach(lo, hi, step, func(i int) bool {
		out = append(out, i)
		return true
	}); err != nil {
		return nil, err
	}
	return out, nil
}

// ForEach calls body for each index value of the (lo, hi, step) DO loop in
// order, without materialising the iteration list; body returning false stops
// the loop early.  It is the allocation-free form of Iterations used by the
// interpreter's sequential DO loops.
func ForEach(lo, hi, step int, body func(i int) bool) error {
	if step == 0 {
		return fmt.Errorf("loops: DO loop step must be nonzero")
	}
	if step > 0 {
		for i := lo; i <= hi; i += step {
			if !body(i) {
				return nil
			}
		}
	} else {
		for i := lo; i >= hi; i += step {
			if !body(i) {
				return nil
			}
		}
	}
	return nil
}

// Count returns the number of iterations of a (lo, hi, step) DO loop without
// materialising them.
func Count(lo, hi, step int) (int, error) {
	if step == 0 {
		return 0, fmt.Errorf("loops: DO loop step must be nonzero")
	}
	if step > 0 {
		if lo > hi {
			return 0, nil
		}
		return (hi-lo)/step + 1, nil
	}
	if lo < hi {
		return 0, nil
	}
	return (lo-hi)/(-step) + 1, nil
}

// Presched returns the iteration index values assigned to force member
// `member` (0-based) out of `members` total, under PRESCHED interleaving:
// member i takes positions i, i+N, i+2N, ... of the iteration sequence.
func Presched(lo, hi, step, member, members int) ([]int, error) {
	if members <= 0 {
		return nil, fmt.Errorf("loops: force must have at least one member, got %d", members)
	}
	if member < 0 || member >= members {
		return nil, fmt.Errorf("loops: member %d out of range [0,%d)", member, members)
	}
	all, err := Iterations(lo, hi, step)
	if err != nil {
		return nil, err
	}
	var out []int
	for pos := member; pos < len(all); pos += members {
		out = append(out, all[pos])
	}
	return out, nil
}

// PreschedPosition maps the k-th local iteration of a member to its global
// position in the iteration sequence, i.e. member + k*members.
func PreschedPosition(member, members, k int) int {
	return member + k*members
}

// Counter is the shared iteration counter used by SELFSCHED loops.  In the
// real system this counter lives in shared memory and is updated under a
// lock; implementations in internal/core provide that.  The package also
// provides LocalCounter for tests and sequential baselines.
type Counter interface {
	// Next returns the next unclaimed position (0-based) and true, or false
	// when all positions have been handed out.
	Next() (int, bool)
}

// LocalCounter is a process-local Counter handing out 0..n-1.  It is not safe
// for concurrent use; internal/core wraps the shared-memory equivalent in the
// force's critical-section machinery.
type LocalCounter struct {
	next, limit int
}

// NewLocalCounter returns a counter over n positions.
func NewLocalCounter(n int) *LocalCounter { return &LocalCounter{limit: n} }

// Next implements Counter.
func (c *LocalCounter) Next() (int, bool) {
	if c.next >= c.limit {
		return 0, false
	}
	v := c.next
	c.next++
	return v, true
}

// Selfsched drains iterations from the counter, translating claimed positions
// into iteration index values of the (lo, hi, step) loop, and calls body for
// each.  It returns the number of iterations this member executed.
func Selfsched(lo, hi, step int, ctr Counter, body func(i int)) (int, error) {
	n, err := Count(lo, hi, step)
	if err != nil {
		return 0, err
	}
	done := 0
	for {
		pos, ok := ctr.Next()
		if !ok {
			return done, nil
		}
		if pos >= n {
			return done, nil
		}
		body(lo + pos*step)
		done++
	}
}

// Segments returns the indices (0-based) of the PARSEG statement sequences
// executed by force member `member` of `members`, out of total segments.
func Segments(total, member, members int) ([]int, error) {
	if members <= 0 {
		return nil, fmt.Errorf("loops: force must have at least one member, got %d", members)
	}
	if member < 0 || member >= members {
		return nil, fmt.Errorf("loops: member %d out of range [0,%d)", member, members)
	}
	if total < 0 {
		return nil, fmt.Errorf("loops: negative segment count %d", total)
	}
	var out []int
	for s := member; s < total; s += members {
		out = append(out, s)
	}
	return out, nil
}

// ListSchedule simulates self-scheduling in virtual time: iterations are
// claimed in index order, each by the member whose accumulated cost is
// currently smallest (the member that would arrive at the loop first).  It
// returns the per-member iteration positions and the resulting makespan (the
// largest accumulated cost).  claimCost models the per-claim overhead of the
// shared iteration counter.
//
// The force run-time's live SELFSCHED loop makes the same decisions in real
// time on real processors; ListSchedule is used by the performance
// experiments so that dynamic scheduling outcomes are measured in simulated
// time, independent of how many host CPUs the simulator itself happens to
// run on.
func ListSchedule(costs []int64, members int, claimCost int64) ([][]int, int64, error) {
	if members <= 0 {
		return nil, 0, fmt.Errorf("loops: members must be positive, got %d", members)
	}
	assign := make([][]int, members)
	loads := make([]int64, members)
	for i, c := range costs {
		// Pick the least-loaded member; ties go to the lowest index, which is
		// the member that reached the counter first.
		best := 0
		for m := 1; m < members; m++ {
			if loads[m] < loads[best] {
				best = m
			}
		}
		assign[best] = append(assign[best], i)
		if c < 0 {
			c = 0
		}
		loads[best] += c + claimCost
	}
	makespan := int64(0)
	for _, l := range loads {
		if l > makespan {
			makespan = l
		}
	}
	return assign, makespan, nil
}

// Block returns the contiguous [lo, hi) block of positions assigned to
// `member` when n positions are divided into `members` near-equal blocks.
// PISCES 2 itself uses cyclic prescheduling; block partitioning is provided
// for the window-based data-partitioning examples (Section 8), where each
// sub-task receives a contiguous band of an array.
func Block(n, member, members int) (lo, hi int, err error) {
	if members <= 0 {
		return 0, 0, fmt.Errorf("loops: members must be positive, got %d", members)
	}
	if member < 0 || member >= members {
		return 0, 0, fmt.Errorf("loops: member %d out of range [0,%d)", member, members)
	}
	if n < 0 {
		return 0, 0, fmt.Errorf("loops: negative position count %d", n)
	}
	base := n / members
	rem := n % members
	lo = member*base + min(member, rem)
	size := base
	if member < rem {
		size++
	}
	return lo, lo + size, nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
