package loops

import (
	"reflect"
	"sort"
	"testing"
	"testing/quick"
)

func TestIterations(t *testing.T) {
	cases := []struct {
		lo, hi, step int
		want         []int
	}{
		{1, 5, 1, []int{1, 2, 3, 4, 5}},
		{1, 10, 3, []int{1, 4, 7, 10}},
		{1, 9, 3, []int{1, 4, 7}},
		{5, 1, 1, nil},
		{5, 1, -2, []int{5, 3, 1}},
		{3, 3, 1, []int{3}},
		{0, -6, -3, []int{0, -3, -6}},
	}
	for _, c := range cases {
		got, err := Iterations(c.lo, c.hi, c.step)
		if err != nil {
			t.Fatalf("Iterations(%d,%d,%d): %v", c.lo, c.hi, c.step, err)
		}
		if !reflect.DeepEqual(got, c.want) {
			t.Errorf("Iterations(%d,%d,%d) = %v, want %v", c.lo, c.hi, c.step, got, c.want)
		}
		n, err := Count(c.lo, c.hi, c.step)
		if err != nil {
			t.Fatal(err)
		}
		if n != len(c.want) {
			t.Errorf("Count(%d,%d,%d) = %d, want %d", c.lo, c.hi, c.step, n, len(c.want))
		}
	}
	if _, err := Iterations(1, 5, 0); err == nil {
		t.Error("zero step should be rejected")
	}
	if _, err := Count(1, 5, 0); err == nil {
		t.Error("zero step should be rejected by Count")
	}
	// ForEach visits the same sequence as Iterations without materialising it.
	for _, c := range cases {
		var got []int
		if err := ForEach(c.lo, c.hi, c.step, func(i int) bool {
			got = append(got, i)
			return true
		}); err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, c.want) {
			t.Errorf("ForEach(%d,%d,%d) visited %v, want %v", c.lo, c.hi, c.step, got, c.want)
		}
	}
	// Early stop.
	var seen []int
	if err := ForEach(1, 10, 1, func(i int) bool {
		seen = append(seen, i)
		return i < 3
	}); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seen, []int{1, 2, 3}) {
		t.Errorf("ForEach early stop visited %v", seen)
	}
	if err := ForEach(1, 5, 0, func(int) bool { return true }); err == nil {
		t.Error("zero step should be rejected by ForEach")
	}
}

func TestPreschedPaperExample(t *testing.T) {
	// "The Ith force member takes iterations I, N+I, 2*N+I, etc."
	// With 1-based member numbering in the paper and a DO 1,12 loop over 3
	// members, member 1 takes 1,4,7,10; member 2 takes 2,5,8,11; etc.
	want := map[int][]int{
		0: {1, 4, 7, 10},
		1: {2, 5, 8, 11},
		2: {3, 6, 9, 12},
	}
	for member, w := range want {
		got, err := Presched(1, 12, 1, member, 3)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, w) {
			t.Errorf("member %d: got %v, want %v", member, got, w)
		}
	}
}

func TestPreschedErrors(t *testing.T) {
	if _, err := Presched(1, 10, 1, 0, 0); err == nil {
		t.Error("zero members accepted")
	}
	if _, err := Presched(1, 10, 1, 5, 3); err == nil {
		t.Error("member out of range accepted")
	}
	if _, err := Presched(1, 10, 0, 0, 2); err == nil {
		t.Error("zero step accepted")
	}
}

func TestPreschedPosition(t *testing.T) {
	if got := PreschedPosition(2, 5, 3); got != 17 {
		t.Fatalf("PreschedPosition = %d, want 17", got)
	}
}

// Property: PRESCHED over any member count partitions the iteration space —
// every iteration appears exactly once across members, none are lost or
// duplicated, and the same program text works for any force size (Section 7:
// "The same program text may be executed without change by a force of any
// number of members").
func TestQuickPreschedPartition(t *testing.T) {
	f := func(loRaw, span, stepRaw int8, membersRaw uint8) bool {
		lo := int(loRaw)
		step := int(stepRaw)
		if step == 0 {
			step = 1
		}
		n := int(span % 40)
		if n < 0 {
			n = -n
		}
		hi := lo + (n-1)*step
		if n == 0 {
			hi = lo - step // empty loop
		}
		members := int(membersRaw%8) + 1

		all, err := Iterations(lo, hi, step)
		if err != nil {
			return false
		}
		var merged []int
		for m := 0; m < members; m++ {
			part, err := Presched(lo, hi, step, m, members)
			if err != nil {
				return false
			}
			merged = append(merged, part...)
		}
		if len(merged) != len(all) {
			return false
		}
		sort.Ints(merged)
		sorted := append([]int(nil), all...)
		sort.Ints(sorted)
		return reflect.DeepEqual(merged, sorted)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestSelfschedCoversAllIterations(t *testing.T) {
	ctr := NewLocalCounter(10)
	var got []int
	n, err := Selfsched(2, 20, 2, ctr, func(i int) { got = append(got, i) })
	if err != nil {
		t.Fatal(err)
	}
	if n != 10 {
		t.Fatalf("executed %d iterations, want 10", n)
	}
	want := []int{2, 4, 6, 8, 10, 12, 14, 16, 18, 20}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v want %v", got, want)
	}
}

func TestSelfschedSharedCounterAcrossMembers(t *testing.T) {
	// Several members draining the same counter must cover each iteration
	// exactly once in total.
	ctr := NewLocalCounter(23)
	seen := map[int]int{}
	total := 0
	for member := 0; member < 4; member++ {
		n, err := Selfsched(1, 23, 1, ctr, func(i int) { seen[i]++ })
		if err != nil {
			t.Fatal(err)
		}
		total += n
	}
	if total != 23 {
		t.Fatalf("total iterations %d, want 23", total)
	}
	for i := 1; i <= 23; i++ {
		if seen[i] != 1 {
			t.Fatalf("iteration %d executed %d times", i, seen[i])
		}
	}
}

func TestSelfschedCounterLargerThanLoop(t *testing.T) {
	// A counter with more positions than the loop has iterations must not
	// run the body past the end.
	ctr := NewLocalCounter(100)
	count := 0
	n, err := Selfsched(1, 5, 1, ctr, func(int) { count++ })
	if err != nil {
		t.Fatal(err)
	}
	if n != 5 || count != 5 {
		t.Fatalf("n=%d count=%d, want 5", n, count)
	}
}

func TestSelfschedZeroStep(t *testing.T) {
	if _, err := Selfsched(1, 5, 0, NewLocalCounter(5), func(int) {}); err == nil {
		t.Fatal("zero step accepted")
	}
}

func TestSegments(t *testing.T) {
	// PARSEG with 5 segments over 2 members: member 0 gets 0,2,4; member 1 gets 1,3.
	s0, err := Segments(5, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	s1, err := Segments(5, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(s0, []int{0, 2, 4}) || !reflect.DeepEqual(s1, []int{1, 3}) {
		t.Fatalf("segments: %v / %v", s0, s1)
	}
	if _, err := Segments(5, 3, 2); err == nil {
		t.Error("out-of-range member accepted")
	}
	if _, err := Segments(-1, 0, 2); err == nil {
		t.Error("negative total accepted")
	}
	if _, err := Segments(5, 0, 0); err == nil {
		t.Error("zero members accepted")
	}
}

func TestBlock(t *testing.T) {
	// 10 positions over 3 members: sizes 4,3,3.
	bounds := [][2]int{{0, 4}, {4, 7}, {7, 10}}
	for m, want := range bounds {
		lo, hi, err := Block(10, m, 3)
		if err != nil {
			t.Fatal(err)
		}
		if lo != want[0] || hi != want[1] {
			t.Errorf("Block(10,%d,3) = [%d,%d), want [%d,%d)", m, lo, hi, want[0], want[1])
		}
	}
	if _, _, err := Block(10, 0, 0); err == nil {
		t.Error("zero members accepted")
	}
	if _, _, err := Block(-1, 0, 1); err == nil {
		t.Error("negative n accepted")
	}
	if _, _, err := Block(10, 2, 2); err == nil {
		t.Error("member out of range accepted")
	}
}

// Property: Block partitions [0,n) into contiguous, non-overlapping,
// complete ranges whose sizes differ by at most one.
func TestQuickBlockPartition(t *testing.T) {
	f := func(nRaw uint16, membersRaw uint8) bool {
		n := int(nRaw % 1000)
		members := int(membersRaw%16) + 1
		prevHi := 0
		minSize, maxSize := 1<<30, -1
		for m := 0; m < members; m++ {
			lo, hi, err := Block(n, m, members)
			if err != nil {
				return false
			}
			if lo != prevHi || hi < lo {
				return false
			}
			size := hi - lo
			if size < minSize {
				minSize = size
			}
			if size > maxSize {
				maxSize = size
			}
			prevHi = hi
		}
		return prevHi == n && maxSize-minSize <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestListSchedule(t *testing.T) {
	// Four iterations of very uneven cost over two members: greedy claiming
	// puts the expensive one alone.
	costs := []int64{100, 1, 1, 1}
	assign, makespan, err := ListSchedule(costs, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if makespan != 100 {
		t.Fatalf("makespan = %d, want 100", makespan)
	}
	if len(assign[0]) != 1 || len(assign[1]) != 3 {
		t.Fatalf("assignment = %v", assign)
	}
	if _, _, err := ListSchedule(costs, 0, 0); err == nil {
		t.Fatal("zero members accepted")
	}
	// Negative costs are clamped rather than corrupting the schedule.
	if _, ms, err := ListSchedule([]int64{-5, 10}, 1, 0); err != nil || ms != 10 {
		t.Fatalf("negative cost handling: %d, %v", ms, err)
	}
}

// Property: ListSchedule assigns every iteration exactly once, its makespan is
// at least the average load and at most the serial total, and never worse
// than the worst single iteration.
func TestQuickListScheduleBounds(t *testing.T) {
	f := func(raw []uint8, membersRaw uint8) bool {
		members := int(membersRaw%8) + 1
		costs := make([]int64, len(raw))
		var total, maxCost int64
		for i, r := range raw {
			costs[i] = int64(r%50) + 1
			total += costs[i]
			if costs[i] > maxCost {
				maxCost = costs[i]
			}
		}
		assign, makespan, err := ListSchedule(costs, members, 0)
		if err != nil {
			return false
		}
		seen := make([]bool, len(costs))
		count := 0
		for _, idxs := range assign {
			for _, i := range idxs {
				if i < 0 || i >= len(costs) || seen[i] {
					return false
				}
				seen[i] = true
				count++
			}
		}
		if count != len(costs) {
			return false
		}
		if len(costs) == 0 {
			return makespan == 0
		}
		avg := total / int64(members)
		return makespan >= avg && makespan <= total && makespan >= maxCost
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkPresched(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := Presched(1, 1024, 1, i%8, 8); err != nil {
			b.Fatal(err)
		}
	}
}
