package obs

import (
	"encoding/binary"
	"fmt"
	"time"
)

// Trace wire format: the blob a follower node attaches to its drain ack so
// the coordinator can merge every node's spans and flows into one Chrome
// trace with per-node process tracks.  Big-endian, versioned; span and flow
// order is capture order, so the encoding of a deterministic run is
// byte-stable.
//
//	u8  version (traceWireVersion)
//	u32 nSpans { u16-len lane, u16-len name, i64 start, i64 dur }...
//	u32 nFlows { u64 edge, u16-len lane, u8 phase, i64 ts }...
//	i64 dropped

const traceWireVersion = 1

var errTraceWire = fmt.Errorf("obs: malformed trace blob")

// EncodeTrace serialises a process trace's spans and flows (Pid and Name are
// the receiver's to assign; they do not travel).
func EncodeTrace(p ProcessTrace) []byte {
	b := []byte{traceWireVersion}
	b = binary.BigEndian.AppendUint32(b, uint32(len(p.Spans)))
	for _, s := range p.Spans {
		b = appendName(b, s.Lane)
		b = appendName(b, s.Name)
		b = binary.BigEndian.AppendUint64(b, uint64(s.Start))
		b = binary.BigEndian.AppendUint64(b, uint64(s.Dur))
	}
	b = binary.BigEndian.AppendUint32(b, uint32(len(p.Flows)))
	for _, f := range p.Flows {
		b = binary.BigEndian.AppendUint64(b, f.Edge)
		b = appendName(b, f.Lane)
		b = append(b, f.Phase)
		b = binary.BigEndian.AppendUint64(b, uint64(f.TS))
	}
	b = binary.BigEndian.AppendUint64(b, uint64(p.Dropped))
	return b
}

// DecodeTrace reverses EncodeTrace.
func DecodeTrace(b []byte) (ProcessTrace, error) {
	var p ProcessTrace
	if len(b) < 1 || b[0] != traceWireVersion {
		return p, errTraceWire
	}
	b = b[1:]
	n, b, err := takeCount(b)
	if err != nil {
		return p, err
	}
	for i := 0; i < n; i++ {
		var s Span
		if s.Lane, b, err = takeName(b); err != nil {
			return p, err
		}
		if s.Name, b, err = takeName(b); err != nil {
			return p, err
		}
		var v int64
		if v, b, err = takeI64(b); err != nil {
			return p, err
		}
		s.Start = time.Duration(v)
		if v, b, err = takeI64(b); err != nil {
			return p, err
		}
		s.Dur = time.Duration(v)
		p.Spans = append(p.Spans, s)
	}
	if n, b, err = takeCount(b); err != nil {
		return p, err
	}
	for i := 0; i < n; i++ {
		var f Flow
		if len(b) < 8 {
			return p, errTraceWire
		}
		f.Edge = binary.BigEndian.Uint64(b)
		b = b[8:]
		if f.Lane, b, err = takeName(b); err != nil {
			return p, err
		}
		if len(b) < 1 {
			return p, errTraceWire
		}
		f.Phase = b[0]
		b = b[1:]
		var v int64
		if v, b, err = takeI64(b); err != nil {
			return p, err
		}
		f.TS = time.Duration(v)
		p.Flows = append(p.Flows, f)
	}
	var v int64
	if v, b, err = takeI64(b); err != nil {
		return p, err
	}
	p.Dropped = v
	if len(b) != 0 {
		return p, errTraceWire
	}
	return p, nil
}
