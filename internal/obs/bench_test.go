package obs

import (
	"testing"
	"time"
)

// BenchmarkDisabledGuard measures the cost an instrumented call site pays
// when observability is off: one atomic mask load.  This is the "near zero"
// number quoted in the README.
func BenchmarkDisabledGuard(b *testing.B) {
	r := New()
	h := r.Histogram("h", "ns")
	var t0 time.Time
	for i := 0; i < b.N; i++ {
		if r.Has(Metrics) {
			t0 = r.Now()
		}
		if !t0.IsZero() {
			h.ObserveDuration(r.Now().Sub(t0))
		}
	}
}

// BenchmarkDisabledGuardNil is the same guard through a nil registry.
func BenchmarkDisabledGuardNil(b *testing.B) {
	var r *Registry
	for i := 0; i < b.N; i++ {
		if r.Has(Metrics) {
			b.Fatal("nil registry enabled")
		}
	}
}

// BenchmarkHistogramObserve is the enabled hot path: atomic count/sum/bucket
// adds plus a max CAS.
func BenchmarkHistogramObserve(b *testing.B) {
	h := &Histogram{}
	for i := 0; i < b.N; i++ {
		h.Observe(int64(i)&0xffff + 1)
	}
}

// BenchmarkCounterAdd is the counter hot path.
func BenchmarkCounterAdd(b *testing.B) {
	r := New()
	c := r.Counter("c")
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

// BenchmarkSpanCapture measures one enabled span capture (two clock reads
// plus a mutexed buffer append).
func BenchmarkSpanCapture(b *testing.B) {
	r := New()
	r.spans.limit = 1 << 30
	r.Enable(Spans)
	for i := 0; i < b.N; i++ {
		r.Span("lane", "op", r.Now())
	}
}
