package obs

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/msgcodec"
)

// Recorder is the always-on flight recorder: a set of per-shard rings of
// fixed-size structured events that never allocates on the record path.  It
// exists so a failed run leaves a black box behind — the last events before
// a deadlock, quota kill, node death, or drain timeout — dumpable as a
// msgcodec blackbox container and decodable offline by `pisces blackbox`.
//
// Shards decouple writers: the message path records under the sending or
// accepting cluster's shard, so two clusters' hot paths never contend on one
// ring.  Every event still takes a global sequence number, which is what
// lets Events reconstruct one emission-ordered timeline at dump time and
// lets `pisces blackbox` merge several nodes' dumps by causal edge.
//
// Each shard's slots are guarded by that shard's mutex, held only for the
// handful of plain word stores that fill a slot.  One uncontended lock is
// far cheaper than publishing six fields through sequentially-consistent
// atomics (each a full fence that cannot hide the ring's cache misses), and
// it makes Events/Dump exact even while writers are still recording (the
// serving daemon's live events endpoint) — a reader can never observe a slot
// mid-overwrite.  Under the deterministic sim backend recording is
// single-threaded, so dumps are byte-stable per seed.
type Recorder struct {
	node   uint8
	clock  atomic.Pointer[func() time.Time]
	seq    atomic.Uint64
	shards []recShard
}

// recShard is one ring.  The mutex and write position are padded onto their
// own cache line so shards never false-share.
type recShard struct {
	mu    sync.Mutex
	pos   uint64
	_     [6]uint64
	slots []recSlot
}

// recSlot is one fixed-size event slot (see msgcodec.BlackboxEvent for the
// field meanings).  seq 0 means never written.
type recSlot struct {
	seq  uint64
	ts   int64
	edge uint64
	kind uint32
	a    int64
	b    int64
}

// Default ring geometry: 4 shards x 1024 slots keeps the last ~4k events at
// ~50B/slot — a few hundred KiB per node, always affordable.
const (
	defaultRecShards = 4
	defaultRecSlots  = 1024
)

// NewRecorder builds a recorder for the given node id.  shards and slots
// are rounded up to powers of two; zero or negative selects the defaults.
func NewRecorder(nodeID, shards, slots int) *Recorder {
	if shards <= 0 {
		shards = defaultRecShards
	}
	if slots <= 0 {
		slots = defaultRecSlots
	}
	shards = ceilPow2(shards)
	slots = ceilPow2(slots)
	r := &Recorder{node: uint8(nodeID), shards: make([]recShard, shards)}
	for i := range r.shards {
		r.shards[i].slots = make([]recSlot, slots)
	}
	clk := time.Now
	r.clock.Store(&clk)
	return r
}

func ceilPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// SetClock rebinds the recorder's time source (the VM points it at its
// backend clock, so simulated runs stamp virtual time).
func (r *Recorder) SetClock(now func() time.Time) {
	if r == nil || now == nil {
		return
	}
	r.clock.Store(&now)
}

// NodeID returns the node id events are stamped with.
func (r *Recorder) NodeID() int {
	if r == nil {
		return 0
	}
	return int(r.node)
}

// Record appends one event to the ring of shard (hashed down to the shard
// count).  Nil-safe and allocation-free: a nil recorder costs one branch,
// and the live path is one clock read, one sequence stamp, and one shard
// lock around plain stores.
func (r *Recorder) Record(shard int, kind uint8, edge uint64, a, b int64) {
	if r == nil {
		return
	}
	ts := (*r.clock.Load())().UnixNano()
	s := &r.shards[shard&(len(r.shards)-1)]
	seq := r.seq.Add(1)
	s.mu.Lock()
	sl := &s.slots[s.pos&uint64(len(s.slots)-1)]
	s.pos++
	sl.seq = seq
	sl.ts = ts
	sl.edge = edge
	sl.kind = uint32(kind)
	sl.a = a
	sl.b = b
	s.mu.Unlock()
}

// Events returns every retained event in emission order (by global sequence
// number), the reconstruction `pisces blackbox` prints and dumps encode.
func (r *Recorder) Events() []msgcodec.BlackboxEvent {
	if r == nil {
		return nil
	}
	var out []msgcodec.BlackboxEvent
	for si := range r.shards {
		s := &r.shards[si]
		s.mu.Lock()
		for i := range s.slots {
			sl := &s.slots[i]
			if sl.seq == 0 {
				continue
			}
			out = append(out, msgcodec.BlackboxEvent{
				Seq:   sl.seq,
				TS:    sl.ts,
				Edge:  sl.edge,
				Kind:  uint8(sl.kind),
				Node:  r.node,
				Shard: uint16(si),
				A:     sl.a,
				B:     sl.b,
			})
		}
		s.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out
}

// Dump freezes the recorder into a msgcodec blackbox container, stamped with
// the recorder clock's current reading (virtual under -sim).
func (r *Recorder) Dump() ([]byte, error) {
	if r == nil {
		return msgcodec.EncodeBlackbox(0, 0, nil)
	}
	now := (*r.clock.Load())().UnixNano()
	return msgcodec.EncodeBlackbox(int(r.node), now, r.Events())
}
