// Package obs is the runtime observability layer: a metrics registry of
// atomic counters, gauges and fixed-bucket histograms plus lightweight span
// tracing with Chrome trace-event export.
//
// The design goals, in order:
//
//  1. Near-zero cost when disabled.  Every instrumented call site loads one
//     atomic mask word (the same idiom as the VM trace kind-mask) before
//     doing any work; a disabled registry costs one predictable branch.
//  2. Lock-free hot path when enabled.  Counters, gauges and histogram
//     observations are plain atomic ops; call sites pre-resolve *Counter /
//     *Histogram handles once and bump them without touching the registry.
//  3. Deterministic output.  Snapshots, tables and encoded wire blobs are
//     rendered in sorted name order, independent of registration order, so
//     two runs of the same seeded simulation produce byte-identical output.
//  4. Pluggable clock.  Timestamps come from the owning backend's clock, so
//     under the deterministic simulation backend all durations are virtual
//     time and seed-stable.
package obs

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/stats"
)

// Mask selects which instrumentation families are live.
type Mask uint32

const (
	// Metrics enables counters, gauges and histograms.
	Metrics Mask = 1 << iota
	// Spans enables span capture for trace export.
	Spans
)

// Registry is a named set of metrics plus a span buffer.  The zero value is
// not ready; use New.  A nil *Registry is legal everywhere and behaves as a
// permanently disabled registry, so callers can thread one unconditionally.
type Registry struct {
	mask  atomic.Uint32
	clock atomic.Pointer[func() time.Time]
	rec   atomic.Pointer[Recorder]

	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram

	spans spanBuf
}

// New returns an empty, disabled registry reading the wall clock.
func New() *Registry {
	r := &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
	r.spans.limit = defaultSpanLimit
	clk := time.Now
	r.clock.Store(&clk)
	return r
}

// Enable turns the given instrumentation families on.
func (r *Registry) Enable(m Mask) {
	if r == nil {
		return
	}
	for {
		old := r.mask.Load()
		if r.mask.CompareAndSwap(old, old|uint32(m)) {
			return
		}
	}
}

// Disable turns the given instrumentation families off.
func (r *Registry) Disable(m Mask) {
	if r == nil {
		return
	}
	for {
		old := r.mask.Load()
		if r.mask.CompareAndSwap(old, old&^uint32(m)) {
			return
		}
	}
}

// Has reports whether every family in m is enabled.  This is the hot-path
// guard: one atomic load and a compare.
func (r *Registry) Has(m Mask) bool {
	return r != nil && Mask(r.mask.Load())&m == m
}

// Any reports whether at least one family in m is enabled.
func (r *Registry) Any(m Mask) bool {
	return r != nil && Mask(r.mask.Load())&m != 0
}

// SetClock rebinds the time source (the VM points it at its backend clock so
// simulated runs stamp virtual time).  The span epoch — the zero point of
// exported trace timestamps — is the clock reading at the first SetClock or
// first captured span, whichever comes first.
func (r *Registry) SetClock(now func() time.Time) {
	if r == nil || now == nil {
		return
	}
	r.clock.Store(&now)
	r.spans.setEpoch(now())
	r.rec.Load().SetClock(now)
}

// AttachRecorder binds a flight recorder to this registry, so the layers a
// registry travels through can reach the node's recorder, and so a later
// SetClock rebinds the recorder's clock along with the registry's.  The
// recorder inherits the registry's current clock immediately.
func (r *Registry) AttachRecorder(rec *Recorder) {
	if r == nil || rec == nil {
		return
	}
	rec.SetClock(*r.clock.Load())
	r.rec.Store(rec)
}

// Recorder returns the attached flight recorder, nil if none.  Nil-safe.
func (r *Registry) Recorder() *Recorder {
	if r == nil {
		return nil
	}
	return r.rec.Load()
}

// Now reads the registry clock.
func (r *Registry) Now() time.Time {
	if r == nil {
		return time.Time{}
	}
	return (*r.clock.Load())()
}

// Counter returns the named counter, registering it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, registering it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, registering it on first use.  The
// unit tag ("ns", "B", ...) drives rendering only; observations are raw
// int64s.  A histogram re-requested with a different unit keeps the first.
func (r *Registry) Histogram(name, unit string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = &Histogram{unit: unit}
		r.hists[name] = h
	}
	return h
}

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	n atomic.Int64
}

// Add increments the counter by d.
func (c *Counter) Add(d int64) { c.n.Add(d) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.n.Add(1) }

// Load returns the current count.
func (c *Counter) Load() int64 { return c.n.Load() }

// Gauge is an instantaneous atomic value (queue depth, connection count).
type Gauge struct {
	n atomic.Int64
}

// Set stores the gauge value.
func (g *Gauge) Set(v int64) { g.n.Store(v) }

// Add moves the gauge by d.
func (g *Gauge) Add(d int64) { g.n.Add(d) }

// Load returns the current value.
func (g *Gauge) Load() int64 { return g.n.Load() }

// Snapshot captures every registered metric at one instant, sorted by name.
type Snapshot struct {
	Counters []CounterSnap
	Gauges   []GaugeSnap
	Hists    []HistSnap
}

// CounterSnap is one counter's value in a Snapshot.
type CounterSnap struct {
	Name  string
	Value int64
}

// GaugeSnap is one gauge's value in a Snapshot.
type GaugeSnap struct {
	Name  string
	Value int64
}

// Snapshot captures the registry's metrics.  Output order is sorted by name
// within each metric kind, so the result is deterministic regardless of the
// interleaving of concurrent registrations.
func (r *Registry) Snapshot() *Snapshot {
	s := &Snapshot{}
	if r == nil {
		return s
	}
	r.mu.Lock()
	counters := make(map[string]*Counter, len(r.counters))
	for k, v := range r.counters {
		counters[k] = v
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for k, v := range r.gauges {
		gauges[k] = v
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for k, v := range r.hists {
		hists[k] = v
	}
	r.mu.Unlock()

	for name, c := range counters {
		s.Counters = append(s.Counters, CounterSnap{Name: name, Value: c.Load()})
	}
	for name, g := range gauges {
		s.Gauges = append(s.Gauges, GaugeSnap{Name: name, Value: g.Load()})
	}
	for name, h := range hists {
		s.Hists = append(s.Hists, h.snap(name))
	}
	s.sort()
	return s
}

func (s *Snapshot) sort() {
	sort.Slice(s.Counters, func(i, j int) bool { return s.Counters[i].Name < s.Counters[j].Name })
	sort.Slice(s.Gauges, func(i, j int) bool { return s.Gauges[i].Name < s.Gauges[j].Name })
	sort.Slice(s.Hists, func(i, j int) bool { return s.Hists[i].Name < s.Hists[j].Name })
}

// Merge folds other into s: counters, gauges and histogram buckets with the
// same name are summed (gauges sum too — for cluster-wide aggregation a sum
// of per-node queue depths is the machine-wide depth), maxima take the max.
// Metrics present only in other are adopted.  The result stays sorted.
func (s *Snapshot) Merge(other *Snapshot) {
	if other == nil {
		return
	}
	ci := indexBy(s.Counters, func(c CounterSnap) string { return c.Name })
	for _, c := range other.Counters {
		if i, ok := ci[c.Name]; ok {
			s.Counters[i].Value += c.Value
		} else {
			s.Counters = append(s.Counters, c)
		}
	}
	gi := indexBy(s.Gauges, func(g GaugeSnap) string { return g.Name })
	for _, g := range other.Gauges {
		if i, ok := gi[g.Name]; ok {
			s.Gauges[i].Value += g.Value
		} else {
			s.Gauges = append(s.Gauges, g)
		}
	}
	hi := indexBy(s.Hists, func(h HistSnap) string { return h.Name })
	for _, h := range other.Hists {
		if i, ok := hi[h.Name]; ok {
			s.Hists[i].merge(h)
		} else {
			s.Hists = append(s.Hists, h.clone())
		}
	}
	s.sort()
}

// Prefix renames every metric in the snapshot to p + name, in place, and
// returns s.  It scopes a per-tenant registry's series for aggregation into
// a daemon-wide view ("tenant.p7." + "core.heap.charge") without the hot
// paths ever paying for the longer names: sessions record under plain names
// and the serving layer prefixes at snapshot time.  Names stay sorted —
// prefixing every name with the same string preserves their order.
func (s *Snapshot) Prefix(p string) *Snapshot {
	if p == "" {
		return s
	}
	for i := range s.Counters {
		s.Counters[i].Name = p + s.Counters[i].Name
	}
	for i := range s.Gauges {
		s.Gauges[i].Name = p + s.Gauges[i].Name
	}
	for i := range s.Hists {
		s.Hists[i].Name = p + s.Hists[i].Name
	}
	return s
}

func indexBy[T any](xs []T, key func(T) string) map[string]int {
	m := make(map[string]int, len(xs))
	for i, x := range xs {
		m[key(x)] = i
	}
	return m
}

// Table renders the snapshot as fixed-width report tables: one for counters
// and gauges, one for histogram summaries (count, p50/p95/p99, max).  Rows
// are in sorted name order.
func (s *Snapshot) Tables(title string) []*stats.Table {
	var out []*stats.Table
	if len(s.Counters)+len(s.Gauges) > 0 {
		t := stats.NewTable(title, "metric", "value")
		for _, c := range s.Counters {
			t.AddRowf(c.Name, c.Value)
		}
		for _, g := range s.Gauges {
			t.AddRowf(g.Name+" (gauge)", g.Value)
		}
		out = append(out, t)
	}
	if len(s.Hists) > 0 {
		t := stats.NewTable(title+" distributions", "histogram", "count", "p50", "p95", "p99", "max")
		for _, h := range s.Hists {
			t.AddRowf(h.Name, h.Count,
				h.format(h.Quantile(0.50)),
				h.format(h.Quantile(0.95)),
				h.format(h.Quantile(0.99)),
				h.format(float64(h.Max)))
		}
		out = append(out, t)
	}
	return out
}
