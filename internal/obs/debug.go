package obs

import (
	"expvar"
	"fmt"
	"io"
	"net/http"
	"net/http/pprof"
	"strings"
)

// DebugHandler returns the debug HTTP surface for a running node:
//
//	/metrics        Prometheus-style text exposition of the registry
//	/debug/vars     standard expvar JSON (memstats, cmdline)
//	/debug/pprof/   net/http/pprof profiles
//
// It is mounted by `pisces serve -debug-addr` on a side listener, never on
// the runtime's own mesh ports.
func DebugHandler(r *Registry) http.Handler {
	return DebugHandlerSource(r.Snapshot)
}

// DebugHandlerSource is DebugHandler with a pluggable snapshot source, for
// servers whose metrics view is assembled from several registries (the
// serving daemon merges its own registry with per-tenant session snapshots
// under tenant.<id>. prefixes).
func DebugHandlerSource(snapshot func() *Snapshot) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		WritePrometheus(w, snapshot())
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/", func(w http.ResponseWriter, req *http.Request) {
		if req.URL.Path != "/" {
			http.NotFound(w, req)
			return
		}
		fmt.Fprint(w, "pisces debug listener\n\n/metrics\n/debug/vars\n/debug/pprof/\n")
	})
	return mux
}

// WritePrometheus renders a snapshot in the Prometheus text exposition
// format.  Metric names are sanitised (dots and dashes become underscores)
// and prefixed "pisces_"; histograms expose _count, _sum and quantile
// gauges rather than raw buckets, which is what the log-bucket layout is
// summarising anyway.
func WritePrometheus(w io.Writer, s *Snapshot) {
	for _, c := range s.Counters {
		name := promName(c.Name)
		fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", name, name, c.Value)
	}
	for _, g := range s.Gauges {
		name := promName(g.Name)
		fmt.Fprintf(w, "# TYPE %s gauge\n%s %d\n", name, name, g.Value)
	}
	for _, h := range s.Hists {
		name := promName(h.Name)
		fmt.Fprintf(w, "# TYPE %s summary\n", name)
		for _, q := range []float64{0.5, 0.95, 0.99} {
			fmt.Fprintf(w, "%s{quantile=%q} %g\n", name, fmt.Sprintf("%g", q), h.Quantile(q))
		}
		fmt.Fprintf(w, "%s_sum %d\n%s_count %d\n%s_max %d\n", name, h.Sum, name, h.Count, name, h.Max)
	}
}

func promName(s string) string {
	var sb strings.Builder
	sb.WriteString("pisces_")
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
			sb.WriteRune(r)
		default:
			sb.WriteByte('_')
		}
	}
	return sb.String()
}
