package obs

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"
)

// Output-path helper shared by every artifact writer — `-trace-out` files,
// flight-recorder dumps, the serving daemon's history journal — so two
// sessions (or two nodes dumping into one directory) can't silently clobber
// each other's files, and so generated filenames never smuggle path
// separators or shell metacharacters out of an id or timestamp.

// SanitizeFileName reduces s to a safe single path component: anything
// outside [A-Za-z0-9._-] becomes '_', and an empty or dot-only result
// becomes "out".
func SanitizeFileName(s string) string {
	var sb strings.Builder
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '.', r == '_', r == '-':
			sb.WriteRune(r)
		default:
			sb.WriteByte('_')
		}
	}
	out := sb.String()
	if strings.Trim(out, ".") == "" {
		return "out"
	}
	return out
}

// UniquePath returns path if nothing exists there, else the first
// "path.N" (N = 1, 2, ...) that is free.  It is a best-effort rotation —
// two processes racing for the same name can still collide — but it keeps
// the common case (a second session reusing a -trace-out name, two dumps in
// one directory) from overwriting the first artifact.
func UniquePath(path string) string {
	if _, err := os.Lstat(path); os.IsNotExist(err) {
		return path
	}
	for n := 1; ; n++ {
		p := fmt.Sprintf("%s.%d", path, n)
		if _, err := os.Lstat(p); os.IsNotExist(err) {
			return p
		}
	}
}

// DumpFileName builds a flight-recorder dump filename embedding the node id
// and the dump instant (virtual under -sim, so deterministic runs produce
// deterministic names): "blackbox-n<id>-<unix-nanos>.bin".
func DumpFileName(nodeID int, ts time.Time) string {
	return SanitizeFileName(fmt.Sprintf("blackbox-n%d-%d.bin", nodeID, ts.UnixNano()))
}

// WriteDump writes a recorder dump blob into dir (created if missing) under
// a DumpFileName derived from the recorder's node id and clock, rotated via
// UniquePath.  Returns the path written.
func WriteDump(dir string, rec *Recorder) (string, error) {
	blob, err := rec.Dump()
	if err != nil {
		return "", err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	now := time.Now()
	if rec != nil {
		now = (*rec.clock.Load())()
	}
	path := UniquePath(filepath.Join(dir, DumpFileName(rec.NodeID(), now)))
	if err := os.WriteFile(path, blob, 0o644); err != nil {
		return "", err
	}
	return path, nil
}
