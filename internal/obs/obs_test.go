package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestBucketBoundsRoundTrip(t *testing.T) {
	vals := []int64{1, 2, 3, 4, 5, 7, 8, 15, 16, 100, 1000, 1 << 20, 1<<40 + 12345, 1<<62 + 999}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 10000; i++ {
		vals = append(vals, 1+rng.Int63())
	}
	for _, v := range vals {
		i := bucketOf(v)
		lo, hi := bucketBounds(i)
		if v < lo || v >= hi {
			t.Fatalf("value %d mapped to bucket %d with bounds [%d,%d)", v, i, lo, hi)
		}
		if i < 0 || i >= numBuckets {
			t.Fatalf("value %d mapped out of range: %d", v, i)
		}
	}
}

func TestHistogramQuantiles(t *testing.T) {
	h := &Histogram{unit: "ns"}
	for v := int64(1); v <= 1000; v++ {
		h.Observe(v)
	}
	s := h.snap("q")
	if s.Count != 1000 || s.Max != 1000 {
		t.Fatalf("count/max = %d/%d, want 1000/1000", s.Count, s.Max)
	}
	for _, tc := range []struct {
		p    float64
		want float64
		tol  float64
	}{
		{0.50, 500, 0.15}, // log buckets: 25% relative width, interpolation tightens it
		{0.95, 950, 0.15},
		{0.99, 990, 0.15},
		{1.00, 1000, 0.01},
	} {
		got := s.Quantile(tc.p)
		if got < tc.want*(1-tc.tol) || got > tc.want*(1+tc.tol) {
			t.Errorf("p%.0f = %.1f, want %.1f ±%.0f%%", tc.p*100, got, tc.want, tc.tol*100)
		}
	}
	if q := s.Quantile(1.0); q > float64(s.Max) {
		t.Errorf("p100 = %.1f exceeds max %d", q, s.Max)
	}
}

func TestHistogramZerosAndNegatives(t *testing.T) {
	h := &Histogram{}
	h.Observe(0)
	h.Observe(-5)
	h.Observe(10)
	s := h.snap("z")
	if s.Count != 3 || s.Zeros != 2 {
		t.Fatalf("count/zeros = %d/%d, want 3/2", s.Count, s.Zeros)
	}
	if q := s.Quantile(0.5); q != 0 {
		t.Fatalf("median with 2/3 zeros = %.1f, want 0", q)
	}
}

// TestSnapshotOrderDeterministic pins the ordering contract: snapshot and
// table output are sorted by name, independent of registration order.
func TestSnapshotOrderDeterministic(t *testing.T) {
	names := []string{"zeta", "alpha", "mid.dle", "beta"}
	a, b := New(), New()
	for _, n := range names {
		a.Counter(n).Add(1)
		a.Histogram("h."+n, "ns").Observe(5)
	}
	for i := len(names) - 1; i >= 0; i-- {
		b.Counter(names[i]).Add(1)
		b.Histogram("h."+names[i], "ns").Observe(5)
	}
	sa, sb := a.Snapshot(), b.Snapshot()
	if !reflect.DeepEqual(sa, sb) {
		t.Fatalf("snapshots differ by registration order:\n%v\n%v", sa, sb)
	}
	var got []string
	for _, c := range sa.Counters {
		got = append(got, c.Name)
	}
	want := []string{"alpha", "beta", "mid.dle", "zeta"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("counter order = %v, want %v", got, want)
	}
	ta, tb := renderTables(sa), renderTables(sb)
	if ta != tb {
		t.Fatalf("table output differs by registration order:\n%s\n%s", ta, tb)
	}
	if !bytes.Equal(sa.Encode(), sb.Encode()) {
		t.Fatalf("wire encoding differs by registration order")
	}
}

func renderTables(s *Snapshot) string {
	var sb strings.Builder
	for _, t := range s.Tables("m") {
		sb.WriteString(t.String())
	}
	return sb.String()
}

// TestRegistryRace hammers Counter registration, Add and Snapshot from
// parallel goroutines; run under -race this is the concurrency guard for
// the registry.
func TestRegistryRace(t *testing.T) {
	r := New()
	r.Enable(Metrics)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				r.Counter(fmt.Sprintf("c%d", i%17)).Inc()
				r.Gauge("g").Add(1)
				r.Histogram("h", "ns").Observe(int64(i))
				if i%10 == 0 {
					r.Snapshot()
				}
			}
		}(g)
	}
	wg.Wait()
	s := r.Snapshot()
	var total int64
	for _, c := range s.Counters {
		total += c.Value
	}
	if total != 8*200 {
		t.Fatalf("counter total = %d, want %d", total, 8*200)
	}
	for _, h := range s.Hists {
		if h.Count != 8*200 {
			t.Fatalf("histogram count = %d, want %d", h.Count, 8*200)
		}
	}
}

func TestSnapshotWireRoundTrip(t *testing.T) {
	r := New()
	r.Counter("sent").Add(42)
	r.Gauge("depth").Set(-3)
	h := r.Histogram("lat", "ns")
	for _, v := range []int64{0, 1, 50, 999, 123456, 1 << 33} {
		h.Observe(v)
	}
	s := r.Snapshot()
	got, err := DecodeSnapshot(s.Encode())
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !reflect.DeepEqual(s, got) {
		t.Fatalf("round trip mismatch:\n%v\n%v", s, got)
	}
	if _, err := DecodeSnapshot(s.Encode()[:5]); err == nil {
		t.Fatalf("truncated blob decoded without error")
	}
	if _, err := DecodeSnapshot([]byte{99}); err == nil {
		t.Fatalf("bad version decoded without error")
	}
}

func TestSnapshotMerge(t *testing.T) {
	a, b := New(), New()
	a.Counter("x").Add(1)
	a.Counter("only.a").Add(5)
	b.Counter("x").Add(2)
	b.Counter("only.b").Add(7)
	ha, hb := a.Histogram("h", "ns"), b.Histogram("h", "ns")
	ha.Observe(10)
	ha.Observe(100)
	hb.Observe(1000)
	sa := a.Snapshot()
	sa.Merge(b.Snapshot())
	want := map[string]int64{"only.a": 5, "only.b": 7, "x": 3}
	for _, c := range sa.Counters {
		if c.Value != want[c.Name] {
			t.Errorf("merged %s = %d, want %d", c.Name, c.Value, want[c.Name])
		}
	}
	if len(sa.Hists) != 1 || sa.Hists[0].Count != 3 || sa.Hists[0].Max != 1000 {
		t.Fatalf("merged histogram = %+v", sa.Hists)
	}
	// Merging must preserve sorted order so encodings stay canonical.
	for i := 1; i < len(sa.Counters); i++ {
		if sa.Counters[i-1].Name >= sa.Counters[i].Name {
			t.Fatalf("merged counters unsorted: %v", sa.Counters)
		}
	}
}

func TestSpanCaptureAndChromeTrace(t *testing.T) {
	r := New()
	base := time.Unix(1000, 0)
	now := base
	r.SetClock(func() time.Time { return now })
	r.Enable(Spans)

	start := now
	now = now.Add(1500 * time.Nanosecond)
	r.Span("lane/b", "work \"quoted\"", start)
	start = now
	now = now.Add(2 * time.Microsecond)
	r.Span("lane/a", "more", start)

	spans, dropped := r.Spans()
	if dropped != 0 || len(spans) != 2 {
		t.Fatalf("spans = %d dropped = %d", len(spans), dropped)
	}
	if spans[0].Start != 0 || spans[0].Dur != 1500*time.Nanosecond {
		t.Fatalf("span[0] = %+v", spans[0])
	}

	var buf bytes.Buffer
	if err := r.WriteChromeTrace(&buf); err != nil {
		t.Fatalf("write trace: %v", err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v\n%s", err, buf.String())
	}
	// 2 lanes x 2 metadata events + 2 spans.
	if len(doc.TraceEvents) != 6 {
		t.Fatalf("trace events = %d, want 6\n%s", len(doc.TraceEvents), buf.String())
	}
}

func TestSpansDisabledByDefault(t *testing.T) {
	r := New()
	r.Span("l", "n", time.Now())
	if spans, _ := r.Spans(); len(spans) != 0 {
		t.Fatalf("disabled registry captured %d spans", len(spans))
	}
	var nilReg *Registry
	if nilReg.Has(Spans) || nilReg.Any(Metrics) {
		t.Fatalf("nil registry claims enabled families")
	}
	nilReg.Span("l", "n", time.Now()) // must not panic
	if s := nilReg.Snapshot(); len(s.Counters) != 0 {
		t.Fatalf("nil registry snapshot non-empty")
	}
}

func TestSpanBufferBound(t *testing.T) {
	r := New()
	r.spans.limit = 4
	r.Enable(Spans)
	for i := 0; i < 10; i++ {
		r.Span("l", "n", r.Now())
	}
	spans, dropped := r.Spans()
	if len(spans) != 4 || dropped != 6 {
		t.Fatalf("spans/dropped = %d/%d, want 4/6", len(spans), dropped)
	}
}

func TestDebugHandler(t *testing.T) {
	r := New()
	r.Counter("wire.frames").Add(9)
	r.Histogram("lat.ns", "ns").Observe(123)
	srv := httptest.NewServer(DebugHandler(r))
	defer srv.Close()
	for path, want := range map[string]string{
		"/metrics":    "pisces_wire_frames 9",
		"/debug/vars": "memstats",
		"/":           "/debug/pprof/",
	} {
		res, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		var buf bytes.Buffer
		buf.ReadFrom(res.Body)
		res.Body.Close()
		if res.StatusCode != 200 || !strings.Contains(buf.String(), want) {
			t.Errorf("GET %s = %d, body missing %q:\n%s", path, res.StatusCode, want, buf.String())
		}
	}
}

func TestSnapshotPrefix(t *testing.T) {
	r := New()
	r.Counter("core.heap.charge").Add(3)
	r.Gauge("queue.depth").Set(7)
	r.Histogram("pfi.stmt.ns", "ns").Observe(50)
	s := r.Snapshot().Prefix("tenant.p1.")
	if s.Counters[0].Name != "tenant.p1.core.heap.charge" {
		t.Fatalf("counter name = %q", s.Counters[0].Name)
	}
	if s.Gauges[0].Name != "tenant.p1.queue.depth" {
		t.Fatalf("gauge name = %q", s.Gauges[0].Name)
	}
	if s.Hists[0].Name != "tenant.p1.pfi.stmt.ns" {
		t.Fatalf("hist name = %q", s.Hists[0].Name)
	}

	// Prefixed tenant snapshots merge into a daemon view without colliding
	// with the unprefixed series or each other.
	base := New()
	base.Counter("core.heap.charge").Add(10)
	merged := base.Snapshot()
	merged.Merge(s)
	r2 := New()
	r2.Counter("core.heap.charge").Add(4)
	merged.Merge(r2.Snapshot().Prefix("tenant.p2."))
	byName := map[string]int64{}
	for _, c := range merged.Counters {
		byName[c.Name] = c.Value
	}
	want := map[string]int64{
		"core.heap.charge":           10,
		"tenant.p1.core.heap.charge": 3,
		"tenant.p2.core.heap.charge": 4,
	}
	for k, v := range want {
		if byName[k] != v {
			t.Errorf("merged[%q] = %d, want %d", k, byName[k], v)
		}
	}
}

func TestDebugHandlerSource(t *testing.T) {
	r := New()
	r.Counter("sessions.completed").Add(2)
	merged := func() *Snapshot {
		s := r.Snapshot()
		tr := New()
		tr.Counter("prog.statements").Add(5)
		s.Merge(tr.Snapshot().Prefix("tenant.p1."))
		return s
	}
	srv := httptest.NewServer(DebugHandlerSource(merged))
	defer srv.Close()
	res, err := srv.Client().Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	buf.ReadFrom(res.Body)
	res.Body.Close()
	for _, want := range []string{"pisces_sessions_completed 2", "pisces_tenant_p1_prog_statements 5"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("/metrics missing %q:\n%s", want, buf.String())
		}
	}
}
