package obs

import (
	"fmt"
	"math"
	"math/bits"
	"sync/atomic"
	"time"
)

// Histogram is a fixed-bucket log-scale histogram with a lock-free Observe.
// Buckets cover the full positive int64 range with 4 sub-buckets per octave
// (relative bucket width 25%), which is plenty for latency and size
// distributions; values <= 0 are counted separately as "zeros".  Observe is
// a handful of atomic adds plus a CAS loop for the running maximum, so hot
// paths can hold a *Histogram and observe without locking.
type Histogram struct {
	unit    string
	zeros   counter64
	count   counter64
	sum     counter64
	max     maxTracker
	buckets [numBuckets]counter64
}

// numBuckets: values 1..3 get exact buckets 1..3 (index = value), larger
// values map to (exp*4 + top-2-mantissa-bits) - 4 + 4.  Index 0 is unused by
// positive values; the top index for v = 2^63-1 is 63*4+3-4+4 = 255.
const numBuckets = 256

// bucketOf maps a positive value to its bucket index.
func bucketOf(v int64) int {
	if v < 4 {
		return int(v) // 1..3 exact
	}
	u := uint64(v)
	e := bits.Len64(u) - 1 // floor(log2), >= 2
	m := (u >> uint(e-2)) & 3
	return e*4 + int(m) - 4
}

// bucketBounds returns the half-open value range [lo, hi) of bucket i.
func bucketBounds(i int) (lo, hi int64) {
	if i < 4 {
		return int64(i), int64(i) + 1
	}
	e := (i + 4) / 4
	m := int64(i+4) % 4
	width := int64(1) << uint(e-2)
	lo = (4 + m) << uint(e-2)
	hi = lo + width
	if hi < lo { // top bucket: lo+width overflows int64
		hi = math.MaxInt64
	}
	return lo, hi
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	h.count.add(1)
	if v <= 0 {
		h.zeros.add(1)
		return
	}
	h.sum.add(v)
	h.buckets[bucketOf(v)].add(1)
	h.max.update(v)
}

// ObserveDuration records a duration in nanoseconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(int64(d)) }

// Count returns the number of observations so far.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.load()
}

// snap captures the histogram into a named HistSnap.
func (h *Histogram) snap(name string) HistSnap {
	s := HistSnap{Name: name, Unit: h.unit}
	s.Zeros = h.zeros.load()
	s.Count = h.count.load()
	s.Sum = h.sum.load()
	s.Max = h.max.load()
	for i := range h.buckets {
		if n := h.buckets[i].load(); n != 0 {
			s.Buckets = append(s.Buckets, BucketSnap{Index: uint8(i), Count: n})
		}
	}
	return s
}

// HistSnap is a histogram captured at one instant.  Only non-empty buckets
// are kept, in ascending index order.
type HistSnap struct {
	Name    string
	Unit    string
	Zeros   int64
	Count   int64
	Sum     int64
	Max     int64
	Buckets []BucketSnap
}

// BucketSnap is one non-empty bucket in a HistSnap.
type BucketSnap struct {
	Index uint8
	Count int64
}

func (s HistSnap) clone() HistSnap {
	s.Buckets = append([]BucketSnap(nil), s.Buckets...)
	return s
}

// merge folds other's observations into s (same-name histograms from
// different nodes).  Bucket lists stay sorted by index.
func (s *HistSnap) merge(other HistSnap) {
	s.Zeros += other.Zeros
	s.Count += other.Count
	s.Sum += other.Sum
	if other.Max > s.Max {
		s.Max = other.Max
	}
	if s.Unit == "" {
		s.Unit = other.Unit
	}
	merged := make([]BucketSnap, 0, len(s.Buckets)+len(other.Buckets))
	i, j := 0, 0
	for i < len(s.Buckets) || j < len(other.Buckets) {
		switch {
		case j >= len(other.Buckets) || (i < len(s.Buckets) && s.Buckets[i].Index < other.Buckets[j].Index):
			merged = append(merged, s.Buckets[i])
			i++
		case i >= len(s.Buckets) || other.Buckets[j].Index < s.Buckets[i].Index:
			merged = append(merged, other.Buckets[j])
			j++
		default:
			merged = append(merged, BucketSnap{Index: s.Buckets[i].Index, Count: s.Buckets[i].Count + other.Buckets[j].Count})
			i++
			j++
		}
	}
	s.Buckets = merged
}

// Quantile estimates the p-quantile (0 <= p <= 1) by linear interpolation
// within the containing bucket, clamped to the observed maximum.
func (s HistSnap) Quantile(p float64) float64 {
	if s.Count == 0 {
		return 0
	}
	target := int64(math.Ceil(p * float64(s.Count)))
	if target < 1 {
		target = 1
	}
	if target > s.Count {
		target = s.Count
	}
	cum := s.Zeros
	if cum >= target {
		return 0
	}
	for _, b := range s.Buckets {
		if cum+b.Count >= target {
			lo, hi := bucketBounds(int(b.Index))
			if hi > s.Max && s.Max >= lo {
				hi = s.Max
			}
			frac := float64(target-cum) / float64(b.Count)
			return float64(lo) + frac*float64(hi-lo)
		}
		cum += b.Count
	}
	return float64(s.Max)
}

// Mean returns the mean of positive observations (zeros dilute it).
func (s HistSnap) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}

// format renders a bucket-interpolated value in the histogram's unit.
func (s HistSnap) format(v float64) string {
	switch s.Unit {
	case "ns":
		return time.Duration(v).Round(time.Nanosecond).String()
	case "B":
		return fmt.Sprintf("%.0fB", v)
	default:
		return fmt.Sprintf("%.0f", v)
	}
}

type counter64 struct{ v atomic.Int64 }

func (c *counter64) add(d int64) { c.v.Add(d) }
func (c *counter64) load() int64 { return c.v.Load() }

type maxTracker struct{ v atomic.Int64 }

func (m *maxTracker) update(x int64) {
	for {
		cur := m.v.Load()
		if x <= cur || m.v.CompareAndSwap(cur, x) {
			return
		}
	}
}
func (m *maxTracker) load() int64 { return m.v.Load() }
