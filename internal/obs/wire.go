package obs

import (
	"encoding/binary"
	"fmt"
)

// Snapshot wire format: the blob a follower node attaches to its drain acks
// so the coordinator can merge a cluster-wide view.  Big-endian, versioned,
// and emitted in sorted name order so the encoding of a deterministic run is
// byte-stable.
//
//	u8  version (snapWireVersion)
//	u32 nCounters { u16-len name, i64 value }...
//	u32 nGauges   { u16-len name, i64 value }...
//	u32 nHists    { u16-len name, u16-len unit,
//	                i64 zeros, i64 count, i64 sum, i64 max,
//	                u32 nBuckets { u8 index, i64 count }... }...

const snapWireVersion = 1

var errSnapWire = fmt.Errorf("obs: malformed snapshot blob")

// Encode serialises the snapshot.
func (s *Snapshot) Encode() []byte {
	b := []byte{snapWireVersion}
	b = binary.BigEndian.AppendUint32(b, uint32(len(s.Counters)))
	for _, c := range s.Counters {
		b = appendName(b, c.Name)
		b = binary.BigEndian.AppendUint64(b, uint64(c.Value))
	}
	b = binary.BigEndian.AppendUint32(b, uint32(len(s.Gauges)))
	for _, g := range s.Gauges {
		b = appendName(b, g.Name)
		b = binary.BigEndian.AppendUint64(b, uint64(g.Value))
	}
	b = binary.BigEndian.AppendUint32(b, uint32(len(s.Hists)))
	for _, h := range s.Hists {
		b = appendName(b, h.Name)
		b = appendName(b, h.Unit)
		b = binary.BigEndian.AppendUint64(b, uint64(h.Zeros))
		b = binary.BigEndian.AppendUint64(b, uint64(h.Count))
		b = binary.BigEndian.AppendUint64(b, uint64(h.Sum))
		b = binary.BigEndian.AppendUint64(b, uint64(h.Max))
		b = binary.BigEndian.AppendUint32(b, uint32(len(h.Buckets)))
		for _, bk := range h.Buckets {
			b = append(b, bk.Index)
			b = binary.BigEndian.AppendUint64(b, uint64(bk.Count))
		}
	}
	return b
}

// DecodeSnapshot reverses Encode.
func DecodeSnapshot(b []byte) (*Snapshot, error) {
	if len(b) < 1 || b[0] != snapWireVersion {
		return nil, errSnapWire
	}
	b = b[1:]
	s := &Snapshot{}
	n, b, err := takeCount(b)
	if err != nil {
		return nil, err
	}
	for i := 0; i < n; i++ {
		var c CounterSnap
		if c.Name, b, err = takeName(b); err != nil {
			return nil, err
		}
		if c.Value, b, err = takeI64(b); err != nil {
			return nil, err
		}
		s.Counters = append(s.Counters, c)
	}
	if n, b, err = takeCount(b); err != nil {
		return nil, err
	}
	for i := 0; i < n; i++ {
		var g GaugeSnap
		if g.Name, b, err = takeName(b); err != nil {
			return nil, err
		}
		if g.Value, b, err = takeI64(b); err != nil {
			return nil, err
		}
		s.Gauges = append(s.Gauges, g)
	}
	if n, b, err = takeCount(b); err != nil {
		return nil, err
	}
	for i := 0; i < n; i++ {
		var h HistSnap
		if h.Name, b, err = takeName(b); err != nil {
			return nil, err
		}
		if h.Unit, b, err = takeName(b); err != nil {
			return nil, err
		}
		if h.Zeros, b, err = takeI64(b); err != nil {
			return nil, err
		}
		if h.Count, b, err = takeI64(b); err != nil {
			return nil, err
		}
		if h.Sum, b, err = takeI64(b); err != nil {
			return nil, err
		}
		if h.Max, b, err = takeI64(b); err != nil {
			return nil, err
		}
		var nb int
		if nb, b, err = takeCount(b); err != nil {
			return nil, err
		}
		for j := 0; j < nb; j++ {
			if len(b) < 1 {
				return nil, errSnapWire
			}
			bk := BucketSnap{Index: b[0]}
			b = b[1:]
			if bk.Count, b, err = takeI64(b); err != nil {
				return nil, err
			}
			h.Buckets = append(h.Buckets, bk)
		}
		s.Hists = append(s.Hists, h)
	}
	if len(b) != 0 {
		return nil, errSnapWire
	}
	return s, nil
}

func appendName(b []byte, s string) []byte {
	b = binary.BigEndian.AppendUint16(b, uint16(len(s)))
	return append(b, s...)
}

func takeName(b []byte) (string, []byte, error) {
	if len(b) < 2 {
		return "", nil, errSnapWire
	}
	n := int(binary.BigEndian.Uint16(b))
	b = b[2:]
	if len(b) < n {
		return "", nil, errSnapWire
	}
	return string(b[:n]), b[n:], nil
}

func takeCount(b []byte) (int, []byte, error) {
	if len(b) < 4 {
		return 0, nil, errSnapWire
	}
	return int(binary.BigEndian.Uint32(b)), b[4:], nil
}

func takeI64(b []byte) (int64, []byte, error) {
	if len(b) < 8 {
		return 0, nil, errSnapWire
	}
	return int64(binary.BigEndian.Uint64(b)), b[8:], nil
}
