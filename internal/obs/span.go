package obs

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"time"
)

// defaultSpanLimit bounds the span buffer; past it new spans are counted as
// dropped rather than growing without bound.
const defaultSpanLimit = 1 << 20

// Span is one completed timed region.  Start is relative to the registry's
// span epoch (the clock reading when the clock was bound), so spans from a
// simulated run are pure virtual-time offsets.
type Span struct {
	Lane  string // trace lane ("pfi/c1 1.2.7", "router/c2<-wire", "node/0 tx peer1")
	Name  string // what happened ("stmt SEND", "deliver RESULT", ...)
	Start time.Duration
	Dur   time.Duration
}

type spanBuf struct {
	mu       sync.Mutex
	epoch    time.Time
	epochSet bool
	spans    []Span
	dropped  int64
	limit    int
}

func (b *spanBuf) setEpoch(t time.Time) {
	b.mu.Lock()
	if !b.epochSet {
		b.epoch = t
		b.epochSet = true
	}
	b.mu.Unlock()
}

func (b *spanBuf) add(lane, name string, start, end time.Time) {
	b.mu.Lock()
	if !b.epochSet {
		b.epoch = start
		b.epochSet = true
	}
	if len(b.spans) >= b.limit {
		b.dropped++
		b.mu.Unlock()
		return
	}
	b.spans = append(b.spans, Span{
		Lane:  lane,
		Name:  name,
		Start: start.Sub(b.epoch),
		Dur:   end.Sub(start),
	})
	b.mu.Unlock()
}

// Span records a completed region that began at start; its end is the
// registry clock's current reading.  Call sites guard with Has(Spans) and an
// untouched zero start so the disabled path never reads the clock:
//
//	var t0 time.Time
//	if reg.Has(obs.Spans) { t0 = reg.Now() }
//	... work ...
//	if !t0.IsZero() { reg.Span(lane, name, t0) }
func (r *Registry) Span(lane, name string, start time.Time) {
	if !r.Has(Spans) {
		return
	}
	r.spans.add(lane, name, start, r.Now())
}

// SpanAt records a completed region with explicit endpoints (for call sites
// that already read the clock twice).
func (r *Registry) SpanAt(lane, name string, start, end time.Time) {
	if !r.Has(Spans) {
		return
	}
	r.spans.add(lane, name, start, end)
}

// Spans returns a copy of the captured spans in capture order, plus the
// number dropped after the buffer filled.
func (r *Registry) Spans() (spans []Span, dropped int64) {
	if r == nil {
		return nil, 0
	}
	r.spans.mu.Lock()
	spans = append([]Span(nil), r.spans.spans...)
	dropped = r.spans.dropped
	r.spans.mu.Unlock()
	return spans, dropped
}

// WriteChromeTrace emits the captured spans as Chrome trace-event-format
// JSON (the "traceEvents" array form) loadable in chrome://tracing and
// Perfetto.  Each distinct lane becomes one thread row (tid), named via a
// thread_name metadata event; spans are complete events (ph "X") with
// microsecond timestamps.  Lanes are ordered by name and events by capture
// order, so output for a deterministic run is byte-stable.
func (r *Registry) WriteChromeTrace(w io.Writer) error {
	spans, dropped := r.Spans()
	lanes := make(map[string]int)
	var laneNames []string
	for _, s := range spans {
		if _, ok := lanes[s.Lane]; !ok {
			lanes[s.Lane] = 0
			laneNames = append(laneNames, s.Lane)
		}
	}
	sort.Strings(laneNames)
	for i, name := range laneNames {
		lanes[name] = i + 1
	}

	var sb strings.Builder
	sb.WriteString("{\"traceEvents\":[")
	first := true
	item := func(s string) {
		if !first {
			sb.WriteString(",\n")
		}
		first = false
		sb.WriteString(s)
	}
	for _, name := range laneNames {
		item(fmt.Sprintf(`{"ph":"M","pid":1,"tid":%d,"name":"thread_name","args":{"name":%s}}`,
			lanes[name], quoteJSON(name)))
		item(fmt.Sprintf(`{"ph":"M","pid":1,"tid":%d,"name":"thread_sort_index","args":{"sort_index":%d}}`,
			lanes[name], lanes[name]))
	}
	for _, s := range spans {
		item(fmt.Sprintf(`{"ph":"X","pid":1,"tid":%d,"name":%s,"cat":"pisces","ts":%s,"dur":%s}`,
			lanes[s.Lane], quoteJSON(s.Name), micros(s.Start), micros(s.Dur)))
	}
	sb.WriteString("],\"displayTimeUnit\":\"ns\"")
	if dropped > 0 {
		fmt.Fprintf(&sb, ",\"otherData\":{\"droppedSpans\":%d}", dropped)
	}
	sb.WriteString("}\n")
	_, err := io.WriteString(w, sb.String())
	return err
}

// micros renders a duration as a decimal microsecond count with nanosecond
// precision, without float formatting jitter.
func micros(d time.Duration) string {
	ns := d.Nanoseconds()
	neg := ""
	if ns < 0 {
		neg, ns = "-", -ns
	}
	if ns%1000 == 0 {
		return fmt.Sprintf("%s%d", neg, ns/1000)
	}
	return fmt.Sprintf("%s%d.%03d", neg, ns/1000, ns%1000)
}

// quoteJSON renders s as a JSON string literal.  Lane and span names are
// ASCII identifiers in practice; anything exotic is escaped numerically.
func quoteJSON(s string) string {
	var sb strings.Builder
	sb.WriteByte('"')
	for _, r := range s {
		switch {
		case r == '"' || r == '\\':
			sb.WriteByte('\\')
			sb.WriteRune(r)
		case r < 0x20 || r > 0x7e:
			fmt.Fprintf(&sb, `\u%04x`, r)
		default:
			sb.WriteRune(r)
		}
	}
	sb.WriteByte('"')
	return sb.String()
}
