package obs

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"time"
)

// defaultSpanLimit bounds the span buffer; past it new spans are counted as
// dropped rather than growing without bound.
const defaultSpanLimit = 1 << 20

// Span is one completed timed region.  Start is relative to the registry's
// span epoch (the clock reading when the clock was bound), so spans from a
// simulated run are pure virtual-time offsets.
type Span struct {
	Lane  string // trace lane ("pfi/c1 1.2.7", "router/c2<-wire", "node/0 tx peer1")
	Name  string // what happened ("stmt SEND", "deliver RESULT", ...)
	Start time.Duration
	Dur   time.Duration
}

// Flow phases, mirroring the Chrome trace-event flow phases: a flow starts
// inside one span, optionally steps through intermediate spans, and ends
// inside the final one.  The viewer draws an arrow between consecutive
// events sharing an id, which is how a routed message's causal path renders
// across lanes (and, in a merged mesh trace, across node process tracks).
const (
	FlowStart byte = 's'
	FlowStep  byte = 't'
	FlowEnd   byte = 'f'
)

// Flow is one causal flow event: the message identified by Edge touched Lane
// at TS.  TS is relative to the span epoch, like Span.Start.
type Flow struct {
	Edge  uint64 // causal edge id; the flow id in the exported trace
	Lane  string // lane whose enclosing span the event binds to
	Phase byte   // FlowStart, FlowStep or FlowEnd
	TS    time.Duration
}

type spanBuf struct {
	mu       sync.Mutex
	epoch    time.Time
	epochSet bool
	spans    []Span
	flows    []Flow
	dropped  int64
	limit    int
}

func (b *spanBuf) setEpoch(t time.Time) {
	b.mu.Lock()
	if !b.epochSet {
		b.epoch = t
		b.epochSet = true
	}
	b.mu.Unlock()
}

func (b *spanBuf) add(lane, name string, start, end time.Time) {
	b.mu.Lock()
	if !b.epochSet {
		b.epoch = start
		b.epochSet = true
	}
	if len(b.spans) >= b.limit {
		b.dropped++
		b.mu.Unlock()
		return
	}
	b.spans = append(b.spans, Span{
		Lane:  lane,
		Name:  name,
		Start: start.Sub(b.epoch),
		Dur:   end.Sub(start),
	})
	b.mu.Unlock()
}

// Span records a completed region that began at start; its end is the
// registry clock's current reading.  Call sites guard with Has(Spans) and an
// untouched zero start so the disabled path never reads the clock:
//
//	var t0 time.Time
//	if reg.Has(obs.Spans) { t0 = reg.Now() }
//	... work ...
//	if !t0.IsZero() { reg.Span(lane, name, t0) }
func (r *Registry) Span(lane, name string, start time.Time) {
	if !r.Has(Spans) {
		return
	}
	r.spans.add(lane, name, start, r.Now())
}

// SpanAt records a completed region with explicit endpoints (for call sites
// that already read the clock twice).
func (r *Registry) SpanAt(lane, name string, start, end time.Time) {
	if !r.Has(Spans) {
		return
	}
	r.spans.add(lane, name, start, end)
}

// Flow records one causal flow event for edge at instant at, bound to lane.
// Call sites emit it alongside the span the event should visually attach to
// (same lane, at inside the span), guarded by the same Has(Spans) check.
func (r *Registry) Flow(edge uint64, lane string, phase byte, at time.Time) {
	if edge == 0 || !r.Has(Spans) {
		return
	}
	b := &r.spans
	b.mu.Lock()
	if !b.epochSet {
		b.epoch = at
		b.epochSet = true
	}
	if len(b.flows) < b.limit {
		b.flows = append(b.flows, Flow{Edge: edge, Lane: lane, Phase: phase, TS: at.Sub(b.epoch)})
	} else {
		b.dropped++
	}
	b.mu.Unlock()
}

// Flows returns a copy of the captured flow events in capture order.
func (r *Registry) Flows() []Flow {
	if r == nil {
		return nil
	}
	r.spans.mu.Lock()
	flows := append([]Flow(nil), r.spans.flows...)
	r.spans.mu.Unlock()
	return flows
}

// Spans returns a copy of the captured spans in capture order, plus the
// number dropped after the buffer filled.
func (r *Registry) Spans() (spans []Span, dropped int64) {
	if r == nil {
		return nil, 0
	}
	r.spans.mu.Lock()
	spans = append([]Span(nil), r.spans.spans...)
	dropped = r.spans.dropped
	r.spans.mu.Unlock()
	return spans, dropped
}

// ProcessTrace is one process's worth of trace data for a merged export:
// the coordinator of a mesh run collects the followers' spans and flows and
// writes them all as one trace, each node on its own process track.
type ProcessTrace struct {
	Pid     int    // trace process id (node id + 1 in mesh exports)
	Name    string // process_name metadata ("" = no metadata row)
	Spans   []Span
	Flows   []Flow
	Dropped int64
}

// Trace captures this registry's spans and flows as a single-process trace.
func (r *Registry) Trace(pid int, name string) ProcessTrace {
	spans, dropped := r.Spans()
	return ProcessTrace{Pid: pid, Name: name, Spans: spans, Flows: r.Flows(), Dropped: dropped}
}

// WriteChromeTrace emits the captured spans as Chrome trace-event-format
// JSON (the "traceEvents" array form) loadable in chrome://tracing and
// Perfetto.  Each distinct lane becomes one thread row (tid), named via a
// thread_name metadata event; spans are complete events (ph "X") with
// microsecond timestamps.  Lanes are ordered by name and events by capture
// order, so output for a deterministic run is byte-stable.
func (r *Registry) WriteChromeTrace(w io.Writer) error {
	return WriteChromeTraceMulti(w, []ProcessTrace{r.Trace(1, "")})
}

// WriteChromeTraceMulti emits several processes' spans and flows as one
// Chrome trace-event JSON document.  Each ProcessTrace renders under its own
// pid (with a process_name metadata row when Name is set); lanes become
// thread rows per process, sorted by name.  Flow events (ph "s"/"t"/"f",
// keyed by the causal edge id) bind to the span enclosing their timestamp on
// their lane, so a routed message draws as a connected arrow — across
// process tracks when its endpoints live on different nodes.  Output is
// byte-stable for deterministic runs: processes render in the given order,
// lanes sorted, events in capture order.
func WriteChromeTraceMulti(w io.Writer, procs []ProcessTrace) error {
	var sb strings.Builder
	sb.WriteString("{\"traceEvents\":[")
	first := true
	item := func(s string) {
		if !first {
			sb.WriteString(",\n")
		}
		first = false
		sb.WriteString(s)
	}
	var dropped int64
	for _, p := range procs {
		lanes := make(map[string]int)
		var laneNames []string
		for _, s := range p.Spans {
			if _, ok := lanes[s.Lane]; !ok {
				lanes[s.Lane] = 0
				laneNames = append(laneNames, s.Lane)
			}
		}
		for _, f := range p.Flows {
			if _, ok := lanes[f.Lane]; !ok {
				lanes[f.Lane] = 0
				laneNames = append(laneNames, f.Lane)
			}
		}
		sort.Strings(laneNames)
		for i, name := range laneNames {
			lanes[name] = i + 1
		}
		if p.Name != "" {
			item(fmt.Sprintf(`{"ph":"M","pid":%d,"name":"process_name","args":{"name":%s}}`,
				p.Pid, quoteJSON(p.Name)))
			item(fmt.Sprintf(`{"ph":"M","pid":%d,"name":"process_sort_index","args":{"sort_index":%d}}`,
				p.Pid, p.Pid))
		}
		for _, name := range laneNames {
			item(fmt.Sprintf(`{"ph":"M","pid":%d,"tid":%d,"name":"thread_name","args":{"name":%s}}`,
				p.Pid, lanes[name], quoteJSON(name)))
			item(fmt.Sprintf(`{"ph":"M","pid":%d,"tid":%d,"name":"thread_sort_index","args":{"sort_index":%d}}`,
				p.Pid, lanes[name], lanes[name]))
		}
		for _, s := range p.Spans {
			item(fmt.Sprintf(`{"ph":"X","pid":%d,"tid":%d,"name":%s,"cat":"pisces","ts":%s,"dur":%s}`,
				p.Pid, lanes[s.Lane], quoteJSON(s.Name), micros(s.Start), micros(s.Dur)))
		}
		for _, f := range p.Flows {
			bp := ""
			if f.Phase != FlowStart {
				// Bind steps and ends to the enclosing slice, so the arrow
				// lands on the deliver span rather than the next slice.
				bp = `,"bp":"e"`
			}
			item(fmt.Sprintf(`{"ph":"%c","pid":%d,"tid":%d,"name":"msg","cat":"flow","id":"%#x","ts":%s%s}`,
				f.Phase, p.Pid, lanes[f.Lane], f.Edge, micros(f.TS), bp))
		}
		dropped += p.Dropped
	}
	sb.WriteString("],\"displayTimeUnit\":\"ns\"")
	if dropped > 0 {
		fmt.Fprintf(&sb, ",\"otherData\":{\"droppedSpans\":%d}", dropped)
	}
	sb.WriteString("}\n")
	_, err := io.WriteString(w, sb.String())
	return err
}

// micros renders a duration as a decimal microsecond count with nanosecond
// precision, without float formatting jitter.
func micros(d time.Duration) string {
	ns := d.Nanoseconds()
	neg := ""
	if ns < 0 {
		neg, ns = "-", -ns
	}
	if ns%1000 == 0 {
		return fmt.Sprintf("%s%d", neg, ns/1000)
	}
	return fmt.Sprintf("%s%d.%03d", neg, ns/1000, ns%1000)
}

// quoteJSON renders s as a JSON string literal.  Lane and span names are
// ASCII identifiers in practice; anything exotic is escaped numerically.
func quoteJSON(s string) string {
	var sb strings.Builder
	sb.WriteByte('"')
	for _, r := range s {
		switch {
		case r == '"' || r == '\\':
			sb.WriteByte('\\')
			sb.WriteRune(r)
		case r < 0x20 || r > 0x7e:
			fmt.Fprintf(&sb, `\u%04x`, r)
		default:
			sb.WriteRune(r)
		}
	}
	sb.WriteByte('"')
	return sb.String()
}
