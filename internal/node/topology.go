// Package node is the distributed runtime of the PISCES 2 reproduction: it
// places the clusters of one configured virtual machine into separate OS
// processes ("nodes") and carries the cross-cluster wire traffic of
// internal/core over TCP.
//
// Every node boots the FULL configuration (so system tables, heap shards,
// and controller taskids are identical everywhere — see internal/core's
// transport seam) but hosts tasks only for its assigned cluster subset;
// frames for clusters hosted elsewhere travel as length-prefixed msgcodec
// payloads (internal/msgcodec framing) between peers.  Node 0 hosts the
// terminal cluster — and with it the user controller, so all program output
// appears on node 0 — and coordinates the shutdown drain.
package node

import (
	"bytes"
	"crypto/sha256"
	"fmt"
	"sort"

	"repro/internal/config"
)

// Topology is the static assignment of clusters to nodes, agreed during the
// handshake: every node derives it from the shared configuration with
// Partition, and a peer whose topology differs is refused.
type Topology struct {
	// Nodes is the number of node processes.
	Nodes int
	// clusters holds the configured cluster numbers, ascending.
	clusters []int
	// nodeOf maps cluster number -> node id.
	nodeOf map[int]int
}

// Partition assigns clusters to nodes in ascending contiguous blocks: node 0
// receives the first block (and with it the lowest — terminal — cluster),
// remainders go to the lowest node ids.  It fails when there are more nodes
// than clusters: a node must host at least one cluster.
func Partition(clusters []int, nodes int) (Topology, error) {
	if nodes < 1 {
		return Topology{}, fmt.Errorf("node: %d nodes", nodes)
	}
	if len(clusters) < nodes {
		return Topology{}, fmt.Errorf("node: %d nodes for %d clusters; every node must host a cluster", nodes, len(clusters))
	}
	sorted := append([]int(nil), clusters...)
	sort.Ints(sorted)
	t := Topology{Nodes: nodes, clusters: sorted, nodeOf: make(map[int]int, len(sorted))}
	base, rem := len(sorted)/nodes, len(sorted)%nodes
	i := 0
	for n := 0; n < nodes; n++ {
		take := base
		if n < rem {
			take++
		}
		for k := 0; k < take; k++ {
			t.nodeOf[sorted[i]] = n
			i++
		}
	}
	return t, nil
}

// NodeOf returns the node hosting the given cluster.
func (t Topology) NodeOf(cluster int) (int, bool) {
	n, ok := t.nodeOf[cluster]
	return n, ok
}

// Clusters returns the cluster numbers hosted by the given node, ascending.
func (t Topology) Clusters(node int) []int {
	var out []int
	for _, c := range t.clusters {
		if t.nodeOf[c] == node {
			out = append(out, c)
		}
	}
	return out
}

// Equal reports whether two topologies assign identically.
func (t Topology) Equal(o Topology) bool {
	if t.Nodes != o.Nodes || len(t.clusters) != len(o.clusters) {
		return false
	}
	for i, c := range t.clusters {
		if o.clusters[i] != c || t.nodeOf[c] != o.nodeOf[c] {
			return false
		}
	}
	return true
}

// String renders the assignment for diagnostics and the README-style summary.
func (t Topology) String() string {
	var b bytes.Buffer
	for n := 0; n < t.Nodes; n++ {
		if n > 0 {
			b.WriteString(" ")
		}
		fmt.Fprintf(&b, "node%d:%v", n, t.Clusters(n))
	}
	return b.String()
}

// appendTo serialises the topology for the handshake frame.
func (t Topology) appendTo(b []byte) []byte {
	b = appendU32(b, uint32(t.Nodes))
	b = appendU32(b, uint32(len(t.clusters)))
	for _, c := range t.clusters {
		b = appendU32(b, uint32(c))
		b = appendU32(b, uint32(t.nodeOf[c]))
	}
	return b
}

// decodeTopology reverses appendTo, returning the remaining bytes.
func decodeTopology(b []byte) (Topology, []byte, error) {
	nodes, b, err := takeU32(b)
	if err != nil {
		return Topology{}, nil, err
	}
	n, b, err := takeU32(b)
	if err != nil {
		return Topology{}, nil, err
	}
	// The count arrives from an unauthenticated peer (the handshake runs
	// before fingerprint validation): bound it by the bytes actually present
	// — 8 per entry — before sizing any allocation, or a forged count could
	// reserve gigabytes the same way an unchecked length prefix would.
	if int(n) > len(b)/8 {
		return Topology{}, nil, errProto
	}
	t := Topology{Nodes: int(nodes), nodeOf: make(map[int]int, n)}
	for i := uint32(0); i < n; i++ {
		var c, owner uint32
		if c, b, err = takeU32(b); err != nil {
			return Topology{}, nil, err
		}
		if owner, b, err = takeU32(b); err != nil {
			return Topology{}, nil, err
		}
		t.clusters = append(t.clusters, int(c))
		t.nodeOf[int(c)] = int(owner)
	}
	return t, b, nil
}

// Fingerprint hashes everything two nodes must agree on before exchanging
// traffic: the configuration (its canonical save form), the topology, and
// the program source.  A handshake with a different fingerprint is refused —
// a node running a different program or cluster layout would silently
// mis-deliver taskids.
func Fingerprint(cfg *config.Configuration, topo Topology, source string) [32]byte {
	var b bytes.Buffer
	_ = cfg.Save(&b)
	b.Write(topo.appendTo(nil))
	b.WriteString(source)
	return sha256.Sum256(b.Bytes())
}
