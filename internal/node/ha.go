package node

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/msgcodec"
)

// Transport-level fault tolerance: sender-side frame retention.
//
// In HA mode every node periodically checkpoints its hosted clusters and
// streams the blob to a buddy (node.go).  A checkpoint only captures state
// that reached the dying node's VM before the cut — everything a peer sent
// AFTER the cut must be re-deliverable, so each sender keeps a copy of every
// counted data frame it hands a lane until the receiving node acknowledges a
// checkpoint covering it:
//
//	sender                       receiver X                  X's buddy B
//	  | -- data frames  ------->  | (delivers, counts)         |
//	  |                           | -- fCkpt{epoch,blob} ----> | (stores)
//	  |                           | <---- fCkptAck{epoch} ---- |
//	  | <-- fCkptMark{count} ---  | (only after the ack)       |
//	  | drops retained idx<=count |                            |
//
// The mark's count is the number of counted frames X's lane had delivered
// when the checkpoint was CUT (a pre-cut snapshot, so over-retention is the
// safe direction), and it is only broadcast after the buddy's ack — a blob
// lost with a dying X can never have released the retention that would
// rebuild its contents.  When X dies, each sender replays its retained
// backlog onto B's lane under the route lock; B's restored admission floors
// drop whatever the blob already covers.

// retFrame is one retained data frame: the encoded payload (kind byte +
// body, no length prefix), its 1-based position in the lane's counted-frame
// order, and — for initiate requests — the ReplyID and, once the reply was
// observed, the taskid the request was answered with.
type retFrame struct {
	idx     uint64
	payload []byte
	replyID uint64
	initID  core.TaskID
}

// setHA flips the transport into retention mode.  Must be called before any
// traffic flows.
func (tr *transport) setHA() {
	tr.haRetain = true
	tr.reroute = make(map[int]int)
	tr.pendInit = make(map[uint64]*retFrame)
}

// countRecv counts one delivered counted frame from the given source lane
// (tr.nodeID for a buddy's local replay).
func (tr *transport) countRecv(from int) {
	tr.recv.Add(1)
	if tr.haRetain && from >= 0 && from < len(tr.recvFrom) {
		tr.recvFrom[from].Add(1)
	}
}

// recvSnapshot returns the per-source delivered counts.  Taken immediately
// BEFORE a checkpoint cut, these are the marks to broadcast once the buddy
// acks the blob: every frame counted here reached the VM before the cut, so
// its effect is inside the checkpoint.
func (tr *transport) recvSnapshot() map[int]uint64 {
	out := make(map[int]uint64, len(tr.recvFrom))
	for _, p := range tr.allPeers() {
		out[p.id] = tr.recvFrom[p.id].Load()
	}
	return out
}

// retainPayloadLocked copies one counted frame into the lane's retention log.
// Caller holds p.mu and has already counted the frame sent.
func (p *peer) retainPayloadLocked(tr *transport, payload []byte, replyID uint64) {
	p.sentIdx++
	rf := &retFrame{idx: p.sentIdx, payload: append([]byte(nil), payload...), replyID: replyID}
	p.retained = append(p.retained, rf)
	if replyID != 0 {
		tr.pendMu.Lock()
		tr.pendInit[replyID] = rf
		tr.pendMu.Unlock()
	}
}

// retainDeadLocked handles an enqueue on a dead lane: counted data frames are
// encoded into scratch space and retained for the rebalance replay (the
// sender must not see an error — the frame happened, its delivery is the
// buddy's), control frames are dropped, and frames arriving after the replay
// already ran are redundant with the buddy's own lane.  Caller holds p.mu.
func (p *peer) retainDeadLocked(tr *transport, counted bool, replyID uint64, encode func(batch []byte) []byte) error {
	if !counted || p.replayed {
		return nil
	}
	start := len(p.batch)
	batch, payloadStart := msgcodec.BeginFrame(p.batch)
	batch = encode(batch)
	batch, err := msgcodec.EndFrame(batch, payloadStart, 0)
	if err != nil {
		p.batch = batch[:start]
		return err
	}
	tr.sent.Add(1)
	p.retainPayloadLocked(tr, batch[payloadStart:], replyID)
	p.batch = batch[:start]
	return nil
}

// markDead flips the lane toward a dead node into retention mode and settles
// its drain accounting: the retained prefix the peer had acknowledged lives
// on only in the buddy-held checkpoint blob (never to be recv-counted
// again), so it leaves the sent balance; everything else is still retained
// and will be recv-counted when replayed.  Idempotent, and safe after a
// write error already set p.dead — the accounting still runs exactly once.
func (tr *transport) markDead(node int) {
	tr.mu.Lock()
	p := tr.peers[node]
	tr.mu.Unlock()
	if p == nil {
		return
	}
	p.mu.Lock()
	first := !p.deadDone
	p.dead, p.deadDone = true, true
	if first {
		tr.lost.Add(p.ackIdx)
		// The open batch can never be written; its counted frames are all in
		// retention already.
		p.batch = p.batch[:0]
		p.frames, p.counted = 0, 0
	}
	p.cond.Broadcast() // wake credit waiters and the writer
	p.mu.Unlock()
	if first {
		_ = p.conn.Close() // unblock a writer mid-syscall
	}
}

// isDead reports whether the lane toward the node has been marked dead.
func (tr *transport) isDead(node int) bool {
	tr.mu.Lock()
	p := tr.peers[node]
	tr.mu.Unlock()
	if p == nil {
		return false
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.dead
}

// ackRetained drops the retained prefix a peer's checkpoint mark covers.
// Marks from a peer already marked dead are ignored: the death accounting
// has settled and the frames will be replayed instead (over-replay is safe,
// under-retention is not).
func (tr *transport) ackRetained(node int, count uint64) {
	tr.mu.Lock()
	p := tr.peers[node]
	tr.mu.Unlock()
	if p == nil {
		return
	}
	var freed []uint64
	p.mu.Lock()
	if !p.dead && count > p.ackIdx {
		drop := 0
		for drop < len(p.retained) && p.retained[drop].idx <= count {
			if id := p.retained[drop].replyID; id != 0 {
				freed = append(freed, id)
			}
			drop++
		}
		if drop > 0 {
			n := copy(p.retained, p.retained[drop:])
			for i := n; i < len(p.retained); i++ {
				p.retained[i] = nil
			}
			p.retained = p.retained[:n]
		}
		p.ackIdx = count
	}
	p.mu.Unlock()
	if len(freed) > 0 {
		tr.pendMu.Lock()
		for _, id := range freed {
			delete(tr.pendInit, id)
		}
		tr.pendMu.Unlock()
	}
}

// noteInitReply annotates the retained initiate-request frame the reply
// answers with the assigned taskid, so a replay of the request re-creates
// the task under the same identity (via a restore plan).
func (tr *transport) noteInitReply(replyID uint64, id core.TaskID) {
	if !tr.haRetain || replyID == 0 {
		return
	}
	tr.pendMu.Lock()
	if rf := tr.pendInit[replyID]; rf != nil {
		rf.initID = id
	}
	tr.pendMu.Unlock()
}

// replayRetained hands every frame retained toward the dead node to the
// adopting buddy — onto the buddy's lane, or straight into the local VM when
// this node IS the buddy — then reroutes the dead node's clusters.  Each
// annotated initiate request is preceded by its restore plan so the
// controller re-creates the task under its recorded id.  The caller must
// hold routeMu exclusively: that is what guarantees the replayed backlog
// precedes every newly routed frame on the buddy's lane, the order the
// restored admission floors assume.  Returns the number of frames replayed.
func (tr *transport) replayRetained(dead, buddy int, vm *core.VM) (int, error) {
	tr.mu.Lock()
	pd := tr.peers[dead]
	tr.mu.Unlock()
	if pd == nil {
		return 0, nil
	}
	pd.mu.Lock()
	frames := pd.retained
	pd.retained = nil
	pd.replayed = true
	pd.mu.Unlock()

	local := buddy == tr.nodeID
	var pb *peer
	if !local {
		var err error
		pb, err = tr.peerFor(buddy)
		if err != nil {
			return 0, err
		}
	}
	var firstErr error
	for _, rf := range frames {
		if rf.replyID != 0 {
			tr.pendMu.Lock()
			id := rf.initID
			delete(tr.pendInit, rf.replyID)
			tr.pendMu.Unlock()
			if id != core.NilTask {
				if f, err := decodeDataFrameHeader(rf.payload); err == nil {
					if local {
						_ = vm.PlanRestoredInit(f.Dst, f.Sender, f.SendSeq, id)
					} else {
						plan := encodeRestorePlan(f.Dst, f.Sender, f.SendSeq, id)
						if err := pb.enqueue(tr, false, false, 0, func(batch []byte) []byte {
							return append(batch, plan...)
						}); err != nil && firstErr == nil {
							firstErr = err
						}
					}
				}
			}
		}
		if local {
			if err := tr.deliverLocal(rf.payload, vm); err != nil && firstErr == nil {
				firstErr = err
			}
			continue
		}
		// Uncredited (the replay must not stall on a window the busy buddy
		// has not refilled) and uncounted (the original enqueue already
		// counted these frames sent; the buddy counts them received).
		payload := rf.payload
		if err := pb.enqueue(tr, false, false, 0, func(batch []byte) []byte {
			return append(batch, payload...)
		}); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	tr.reroute[dead] = buddy
	return len(frames), firstErr
}

// deliverLocal is the buddy's local half of a replay: decode one retained
// frame and feed it to the (already restored) VM, counting it received on
// this node's own lane so the drain balance matches the original send count.
func (tr *transport) deliverLocal(payload []byte, vm *core.VM) error {
	if len(payload) == 0 {
		return errProto
	}
	kind, body := payload[0], payload[1:]
	switch kind {
	case fMsg, fBcast:
		var f core.WireFrame
		if err := decodeWireFrameInto(&f, kind, body); err != nil {
			return err
		}
		tr.countRecv(tr.nodeID)
		return vm.DeliverWire(&f)
	case fInitReply:
		replyID, id, err := decodeInitReply(body)
		if err != nil {
			return err
		}
		tr.countRecv(tr.nodeID)
		vm.DeliverWireReply(replyID, id)
		return nil
	default:
		return fmt.Errorf("node %d: retained frame of unexpected type 0x%02x", tr.nodeID, kind)
	}
}
