package node

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"net"
	"sort"
	"sync"
	"time"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/msgcodec"
	"repro/internal/obs"
	"repro/internal/pfi"
)

// Options configure one node process.
type Options struct {
	// NodeID is this node's index into Addrs.
	NodeID int
	// Addrs lists every node's listen address, in node-id order; the mesh
	// size is len(Addrs).
	Addrs []string
	// Listener optionally provides the already-bound listener for this node
	// (tests bind on port 0 first and pass the result to avoid races); when
	// nil, Start listens on Addrs[NodeID].
	Listener net.Listener
	// Config is the full machine configuration, identical on every node.
	Config *config.Configuration
	// Source is the Pisces Fortran program, identical on every node; it is
	// compiled and its tasktypes registered so routed INITIATE requests find
	// them here.  Optional when Register supplies Go tasktypes instead.
	Source string
	// Main overrides the entry tasktype (node 0 only).
	Main string
	// Register, when non-nil, registers extra Go tasktypes on the VM
	// (benchmarks, tests).  It must be identical on every node.
	Register func(*core.VM)
	// Out receives user-terminal output.  Only node 0 hosts the user
	// controller, so follower nodes write nothing here in normal operation
	// (run-time diagnostics excepted).
	Out io.Writer
	// Log receives node-runtime diagnostics (connection events, drain
	// warnings); nil discards them.
	Log io.Writer
	// AcceptTimeout is the VM's system ACCEPT timeout.
	AcceptTimeout time.Duration
	// ConnectTimeout bounds mesh establishment; zero means 10 seconds.
	ConnectTimeout time.Duration
	// Metrics receives node- and VM-layer metrics and spans.  Nil creates a
	// private disabled registry.  When metrics are enabled, followers attach
	// a metric snapshot to every drain ack, so the coordinator can print one
	// merged cluster-wide view (FollowerSnapshots).
	Metrics *obs.Registry
	// Wire tunes the batched wire path (batch buffer size, linger, credit
	// window); the zero value selects the defaults documented on WireConfig.
	// Every node of a mesh should run the same settings.
	Wire WireConfig
	// HA enables fault tolerance: peer heartbeats and failure detection,
	// periodic checkpoints streamed to a buddy node, sender-side frame
	// retention, and automatic rebalancing of a dead node's clusters (see
	// ha.go and ha_node.go).  Must be identical on every node.  Node 0 is not
	// recoverable (it hosts the user controller); one failure per checkpoint
	// interval is tolerated.
	HA bool
	// HeartbeatInterval is the HA heartbeat and detector sweep period; zero
	// means defaultHeartbeatInterval.
	HeartbeatInterval time.Duration
	// SuspicionAfter declares a peer dead after this much silence; zero means
	// defaultSuspicionAfter.  It must exceed HeartbeatInterval plus the
	// worst-case frame delay or live peers get declared dead.
	SuspicionAfter time.Duration
	// CheckpointInterval is the HA checkpoint period; zero means
	// defaultCheckpointInterval.
	CheckpointInterval time.Duration
	// BlackboxDir, when set, is where the node writes flight-recorder dumps
	// on failure paths (a peer death rebalance, a drain that never quiesces,
	// a tenant limit kill).  The recorder itself is always on; the directory
	// only controls whether failures leave a dump file behind.
	BlackboxDir string
}

// Node is one running node process: a partial VM plus the TCP mesh.
type Node struct {
	opts Options
	topo Topology
	fp   [32]byte

	tr   *transport
	vm   *core.VM
	prog *pfi.Program
	ln   net.Listener

	readers sync.WaitGroup
	acks    chan drainAck

	inMu    sync.Mutex
	inConns []net.Conn

	// Observability: the registry shared with the VM plus resolved node-layer
	// histogram handles; snapMu guards the latest metric snapshot received
	// from each follower (coordinator only).
	reg          *obs.Registry
	rec          *obs.Recorder  // always-on flight recorder (see BlackboxDump)
	frameRead    *obs.Histogram // node.frame.read.ns: blocking ReadFrame time (inter-frame arrival gap + read)
	frameDeliver *obs.Histogram // node.frame.deliver.ns: decode -> VM delivery
	snapMu       sync.Mutex
	followerSnap map[int]*obs.Snapshot
	// followerTrace holds the latest span/flow trace blob received from each
	// follower's drain ack (coordinator only, spans enabled), decoded; it is
	// what WriteMeshTrace merges into per-node process tracks.
	followerTrace map[int]obs.ProcessTrace

	// Fault tolerance (HA mode only; nil/zero otherwise).  ckptMu guards the
	// blobs this node stores as other peers' buddy plus the pre-cut receive
	// snapshots of this node's own un-acked checkpoint epochs; rebalMu
	// serialises rebalances (one membership change at a time).
	det        *detector
	ckptMu     sync.Mutex
	ckptFrom   map[int][]byte
	ckptEpoch  uint64
	pendMark   map[uint64]map[int]uint64
	rebalMu    sync.Mutex
	haDeaths   *obs.Counter // node.ha.deaths: peers this node saw die
	haReplayed *obs.Counter // node.ha.replayed: retained frames replayed to a buddy
	haCkptTx   *obs.Counter // node.ha.ckpt.tx: checkpoints shipped to the buddy
	haCkptRx   *obs.Counter // node.ha.ckpt.rx: checkpoints stored for peers

	shutdownOnce sync.Once
	shutdownCh   chan struct{}
	closeOnce    sync.Once
	closeErr     error
}

// Start establishes the mesh (listen, dial every peer, verify the handshake
// fingerprint both ways), boots the partial VM, registers the program's
// tasktypes, and begins pumping inbound frames.  It returns once the node is
// fully operational; on node 0 the caller then drives RunMain and Close,
// followers call ServeUntilShutdown.
func Start(opts Options) (*Node, error) {
	if opts.Log == nil {
		opts.Log = io.Discard
	}
	if opts.Out == nil {
		opts.Out = io.Discard
	}
	if opts.ConnectTimeout <= 0 {
		opts.ConnectTimeout = 10 * time.Second
	}
	if opts.NodeID < 0 || opts.NodeID >= len(opts.Addrs) {
		return nil, fmt.Errorf("node: id %d outside the %d-address mesh", opts.NodeID, len(opts.Addrs))
	}
	topo, err := Partition(opts.Config.ClusterNumbers(), len(opts.Addrs))
	if err != nil {
		return nil, err
	}
	reg := opts.Metrics
	if reg == nil {
		reg = obs.New()
	}
	n := &Node{
		opts:          opts,
		topo:          topo,
		fp:            Fingerprint(opts.Config, topo, opts.Source),
		tr:            newTransport(opts.NodeID, topo, reg, opts.Wire),
		acks:          make(chan drainAck, 4*len(opts.Addrs)),
		shutdownCh:    make(chan struct{}),
		reg:           reg,
		rec:           obs.NewRecorder(opts.NodeID, 0, 0),
		frameRead:     reg.Histogram("node.frame.read.ns", "ns"),
		frameDeliver:  reg.Histogram("node.frame.deliver.ns", "ns"),
		followerSnap:  make(map[int]*obs.Snapshot),
		followerTrace: make(map[int]obs.ProcessTrace),
	}
	reg.AttachRecorder(n.rec)
	if opts.HA {
		if n.opts.HeartbeatInterval <= 0 {
			n.opts.HeartbeatInterval = defaultHeartbeatInterval
		}
		if n.opts.SuspicionAfter <= 0 {
			n.opts.SuspicionAfter = defaultSuspicionAfter
		}
		if n.opts.CheckpointInterval <= 0 {
			n.opts.CheckpointInterval = defaultCheckpointInterval
		}
		n.tr.setHA() // before any traffic: retention must never miss a frame
		ids := make([]int, len(opts.Addrs))
		for i := range ids {
			ids[i] = i
		}
		n.det = newDetector(opts.NodeID, ids, n.opts.SuspicionAfter, reg.Now)
		n.ckptFrom = make(map[int][]byte)
		n.pendMark = make(map[uint64]map[int]uint64)
		n.haDeaths = reg.Counter("node.ha.deaths")
		n.haReplayed = reg.Counter("node.ha.replayed")
		n.haCkptTx = reg.Counter("node.ha.ckpt.tx")
		n.haCkptRx = reg.Counter("node.ha.ckpt.rx")
	}

	ln := opts.Listener
	if ln == nil {
		ln, err = net.Listen("tcp", opts.Addrs[opts.NodeID])
		if err != nil {
			return nil, fmt.Errorf("node %d: listen: %w", opts.NodeID, err)
		}
	}
	n.ln = ln

	var meshT0 time.Time
	if reg.Has(obs.Spans) {
		meshT0 = reg.Now()
	}
	inbound, err := n.connectMesh()
	if err != nil {
		_ = ln.Close()
		_ = n.tr.Close()
		return nil, err
	}
	if !meshT0.IsZero() {
		reg.Span(fmt.Sprintf("node/%d mesh", opts.NodeID), "handshake", meshT0)
	}

	vm, err := core.NewVM(opts.Config, core.Options{
		UserOutput:     opts.Out,
		Hosted:         topo.Clusters(opts.NodeID),
		Remote:         n.tr,
		AcceptTimeout:  opts.AcceptTimeout,
		Metrics:        reg,
		HA:             opts.HA,
		NodeID:         opts.NodeID,
		FlightRecorder: n.rec,
		FailureSink:    func(reason string) { n.dumpBlackbox(reason) },
	})
	if err != nil {
		_ = ln.Close()
		_ = n.tr.Close()
		return nil, err
	}
	n.vm = vm
	n.tr.bind(vm)

	if opts.Source != "" {
		prog, err := pfi.Compile(opts.Source)
		if err != nil {
			vm.Shutdown()
			_ = ln.Close()
			_ = n.tr.Close()
			return nil, err
		}
		n.prog = prog
		prog.Register(vm)
	}
	if opts.Register != nil {
		opts.Register(vm)
	}

	for from, conn := range inbound {
		n.inMu.Lock()
		n.inConns = append(n.inConns, conn)
		n.inMu.Unlock()
		n.readers.Add(1)
		go n.readLoop(from, conn)
	}
	if opts.HA && len(opts.Addrs) > 1 {
		n.readers.Add(1)
		go n.haLoop()
	}
	fmt.Fprintf(opts.Log, "node %d up: hosting clusters %v of [%s]\n", opts.NodeID, topo.Clusters(opts.NodeID), topo)
	return n, nil
}

// connectMesh dials every peer and accepts every peer's dial, handshaking
// both directions.  The dialed connection carries this node's outbound
// frames; the accepted one carries the peer's.
func (n *Node) connectMesh() (map[int]net.Conn, error) {
	me, addrs := n.opts.NodeID, n.opts.Addrs
	want := len(addrs) - 1
	deadline := time.Now().Add(n.opts.ConnectTimeout)

	type accepted struct {
		from int
		conn net.Conn
		err  error
	}
	acceptCh := make(chan accepted, 4*want+16)
	stopAccept := make(chan struct{})
	defer close(stopAccept)
	// Accept until the mesh is complete, not a fixed count: a stray
	// connection (a port scanner, a health probe) or a failed handshake must
	// not use up a peer's only chance to join.  Each handshake runs in its
	// own goroutine so one stalled dialer cannot block the others.
	go func() {
		for {
			conn, err := n.ln.Accept()
			if err != nil {
				return // listener closed (mesh complete or Start failed)
			}
			select {
			case <-stopAccept:
				_ = conn.Close()
				return
			default:
			}
			go func(conn net.Conn) {
				from, err := n.handshakeAccept(conn, deadline)
				if err != nil {
					_ = conn.Close()
				}
				select {
				case acceptCh <- accepted{from: from, conn: conn, err: err}:
				default:
					_ = conn.Close() // collector gone or flooded; drop
				}
			}(conn)
		}
	}()

	var dialErr error
	for id := 0; id < len(addrs); id++ {
		if id == me {
			continue
		}
		conn, err := n.dialPeer(id, deadline)
		if err != nil {
			dialErr = err
			break
		}
		n.tr.addPeer(id, conn)
	}
	if dialErr != nil {
		return nil, dialErr
	}

	inbound := make(map[int]net.Conn, want)
	for len(inbound) < want {
		wait := time.Until(deadline)
		if wait <= 0 {
			return nil, fmt.Errorf("node %d: timed out waiting for %d inbound peers", me, want-len(inbound))
		}
		select {
		case a := <-acceptCh:
			if a.err != nil {
				fmt.Fprintf(n.opts.Log, "node %d: inbound handshake failed: %v\n", me, a.err)
				continue
			}
			if _, dup := inbound[a.from]; dup {
				_ = a.conn.Close()
				continue
			}
			inbound[a.from] = a.conn
		case <-time.After(wait):
		}
	}
	return inbound, nil
}

// dialPeer connects to one peer with retries (peers boot concurrently) and
// completes the outbound handshake.
func (n *Node) dialPeer(id int, deadline time.Time) (net.Conn, error) {
	var lastErr error
	for time.Now().Before(deadline) {
		conn, err := net.DialTimeout("tcp", n.opts.Addrs[id], time.Until(deadline))
		if err != nil {
			lastErr = err
			time.Sleep(50 * time.Millisecond)
			continue
		}
		// Frames are small and latency-sensitive (a ping-pong style program
		// sends one frame per hop); Nagle coalescing would serialise the
		// whole message path on the ACK clock.
		if tc, ok := conn.(*net.TCPConn); ok {
			_ = tc.SetNoDelay(true)
		}
		if err := n.handshakeDial(conn, id, deadline); err != nil {
			_ = conn.Close()
			return nil, err
		}
		return conn, nil
	}
	return nil, fmt.Errorf("node %d: dialing node %d: %w", n.opts.NodeID, id, lastErr)
}

// handshakeDial sends our hello and validates the peer's answer.
func (n *Node) handshakeDial(conn net.Conn, peerID int, deadline time.Time) error {
	_ = conn.SetDeadline(deadline)
	defer conn.SetDeadline(time.Time{})
	if err := msgcodec.WriteFrame(conn, encodeHello(hello{version: protoVersion, nodeID: n.opts.NodeID, fingerprint: n.fp, topo: n.topo}), 0); err != nil {
		return err
	}
	h, err := readHello(conn)
	if err != nil {
		return err
	}
	if h.nodeID != peerID {
		return fmt.Errorf("node %d: dialed node %d but %d answered", n.opts.NodeID, peerID, h.nodeID)
	}
	return n.validateHello(h)
}

// handshakeAccept validates an inbound hello and answers with ours.
func (n *Node) handshakeAccept(conn net.Conn, deadline time.Time) (int, error) {
	_ = conn.SetDeadline(deadline)
	defer conn.SetDeadline(time.Time{})
	h, err := readHello(conn)
	if err != nil {
		return 0, err
	}
	if err := n.validateHello(h); err != nil {
		return 0, err
	}
	if err := msgcodec.WriteFrame(conn, encodeHello(hello{version: protoVersion, nodeID: n.opts.NodeID, fingerprint: n.fp, topo: n.topo}), 0); err != nil {
		return 0, err
	}
	return h.nodeID, nil
}

func readHello(conn net.Conn) (hello, error) {
	payload, err := msgcodec.ReadFrame(conn, nil, 0)
	if err != nil {
		return hello{}, err
	}
	if len(payload) == 0 || payload[0] != fHello {
		return hello{}, fmt.Errorf("node: handshake: expected hello frame")
	}
	return decodeHello(payload[1:])
}

func (n *Node) validateHello(h hello) error {
	switch {
	case h.version != protoVersion:
		return fmt.Errorf("node: protocol version %d, want %d", h.version, protoVersion)
	case h.nodeID < 0 || h.nodeID >= len(n.opts.Addrs) || h.nodeID == n.opts.NodeID:
		return fmt.Errorf("node: peer claims node id %d", h.nodeID)
	case h.fingerprint != n.fp:
		return fmt.Errorf("node: fingerprint mismatch: the peer runs a different configuration, topology, or program")
	case !h.topo.Equal(n.topo):
		return fmt.Errorf("node: topology mismatch: %s vs %s", h.topo, n.topo)
	}
	return nil
}

// VM returns the node's (partial) virtual machine.
func (n *Node) VM() *core.VM { return n.vm }

// Program returns the compiled Pisces Fortran program, nil when the node was
// started with Go tasktypes only.
func (n *Node) Program() *pfi.Program { return n.prog }

// Topology returns the cluster-to-node assignment.
func (n *Node) Topology() Topology { return n.topo }

// TransportCounts reports the wire frames this node sent and received
// (messages, broadcasts, and initiate replies; control frames excluded).
func (n *Node) TransportCounts() (sent, recv uint64) { return n.tr.counts() }

// Obs returns the node's observability registry (never nil; shared with the
// VM and the transport).
func (n *Node) Obs() *obs.Registry { return n.reg }

// FollowerSnapshots returns the latest metric snapshot received from each
// follower during drain rounds (coordinator only; empty when metrics are off
// or no drain has completed yet).
func (n *Node) FollowerSnapshots() map[int]*obs.Snapshot {
	n.snapMu.Lock()
	defer n.snapMu.Unlock()
	out := make(map[int]*obs.Snapshot, len(n.followerSnap))
	for id, s := range n.followerSnap {
		out[id] = s
	}
	return out
}

// Recorder returns the node's always-on flight recorder.
func (n *Node) Recorder() *obs.Recorder { return n.rec }

// BlackboxDump freezes the node's flight recorder into a msgcodec blackbox
// container (decodable offline with `pisces blackbox`).
func (n *Node) BlackboxDump() ([]byte, error) { return n.rec.Dump() }

// dumpBlackbox writes a flight-recorder dump into Options.BlackboxDir (a
// no-op when unset), logging the path so operators can find the artifact.
// It is called on every node-level failure path: a limit kill, a peer death
// rebalance, a drain that never quiesced.
func (n *Node) dumpBlackbox(reason string) {
	if n.opts.BlackboxDir == "" {
		return
	}
	path, err := obs.WriteDump(n.opts.BlackboxDir, n.rec)
	if err != nil {
		fmt.Fprintf(n.opts.Log, "node %d: blackbox dump (%s) failed: %v\n", n.opts.NodeID, reason, err)
		return
	}
	fmt.Fprintf(n.opts.Log, "node %d: blackbox dump (%s): %s\n", n.opts.NodeID, reason, path)
}

// WriteMeshTrace writes one merged Chrome trace covering every node: this
// node's spans and flows on process track 1 ("node 0" — only the coordinator
// merges), and each follower's latest drain-ack trace blob on track id+1.
// Flow events that start on one node and end on another share their causal
// edge id, so the viewer draws the arrow across process tracks.
func (n *Node) WriteMeshTrace(w io.Writer) error {
	procs := []obs.ProcessTrace{n.reg.Trace(n.opts.NodeID+1, fmt.Sprintf("node %d", n.opts.NodeID))}
	n.snapMu.Lock()
	ids := make([]int, 0, len(n.followerTrace))
	for id := range n.followerTrace {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		p := n.followerTrace[id]
		p.Pid = id + 1
		p.Name = fmt.Sprintf("node %d", id)
		procs = append(procs, p)
	}
	n.snapMu.Unlock()
	return obs.WriteChromeTraceMulti(w, procs)
}

// Addr returns the listener's actual address (tests bind port 0).
func (n *Node) Addr() string { return n.ln.Addr().String() }

// readLoop is the socket half of one peer's inbound pipeline: it pulls
// length-prefixed frames off the connection and hands them to the lane's
// deliverLoop through a bounded stage, recycling delivered frame buffers.
// Splitting read from deliver pipelines decode/VM-delivery across source
// peers (each lane's syscall wait overlaps the others' decode work) while
// the per-lane stage keeps frames in per-sender order; when the stage fills,
// the reader stops pulling and TCP pushes back on the sending node.  A
// connection error from the coordinator is treated as shutdown: a follower
// must not outlive node 0.
func (n *Node) readLoop(from int, conn net.Conn) {
	defer n.readers.Done()
	defer conn.Close()
	work := make(chan []byte, stageDepth)
	free := make(chan []byte, stageDepth)
	n.readers.Add(1)
	go n.deliverLoop(from, work, free)
	// The deliver stage drains until work is closed, so the reader can
	// always close it on exit without stranding queued frames.
	defer close(work)
	br := bufio.NewReaderSize(conn, 64<<10)
	// Per-lane inbound counters, named from the receiver's side so a merged
	// cluster-wide snapshot shows every lane from both endpoints (tx counted
	// by the sender, rx by the receiver) without colliding.
	rxFrames := n.reg.Counter(fmt.Sprintf("node.rx.n%d->n%d.frames", from, n.opts.NodeID))
	rxBytes := n.reg.Counter(fmt.Sprintf("node.rx.n%d->n%d.bytes", from, n.opts.NodeID))
	for {
		var buf []byte
		select {
		case buf = <-free:
		default: // stage still holds every buffer; allocate a fresh one
		}
		metrics := n.reg.Has(obs.Metrics)
		var readT0 time.Time
		if metrics {
			readT0 = n.reg.Now()
		}
		payload, err := msgcodec.ReadFrame(br, buf, 0)
		if err != nil {
			if !errors.Is(err, io.EOF) && !errors.Is(err, net.ErrClosed) && !n.shuttingDown() {
				fmt.Fprintf(n.opts.Log, "node %d: reading from node %d: %v\n", n.opts.NodeID, from, err)
			}
			if from == 0 && n.opts.NodeID != 0 {
				n.signalShutdown()
			}
			return
		}
		if metrics {
			n.frameRead.ObserveDuration(n.reg.Now().Sub(readT0))
			rxFrames.Inc()
			rxBytes.Add(int64(len(payload)) + msgcodec.FrameOverhead)
		}
		if n.det != nil {
			// Any frame is a sign of life; the dedicated heartbeat only
			// matters for peers that would otherwise be silent.
			n.det.Heard(from)
		}
		if len(payload) == 0 {
			continue
		}
		work <- payload
	}
}

// deliverLoop is the VM half of one peer's inbound pipeline: it decodes each
// frame and delivers it, in arrival (per-sender FIFO) order, returning the
// buffer to the reader afterwards.  It also runs the receiver side of the
// credit protocol: credits for delivered data frames go back to the sender
// in chunks, or immediately whenever the stage runs dry — so a sender whose
// window is smaller than the chunk never stalls waiting for a grant that
// isn't coming.  The loop drains until the reader closes the stage; protocol
// frames (even fShutdown) must not end it early, or a full stage would wedge
// the reader.
func (n *Node) deliverLoop(from int, work <-chan []byte, free chan<- []byte) {
	defer n.readers.Done()
	rxLane := fmt.Sprintf("node/%d rx<-n%d", n.opts.NodeID, from)
	pending := 0             // delivered-but-ungranted credited frames
	var frame core.WireFrame // reused per frame; DeliverWire does not retain it
	for payload := range work {
		metrics := n.reg.Has(obs.Metrics)
		var deliverT0 time.Time
		if metrics || n.reg.Has(obs.Spans) {
			deliverT0 = n.reg.Now()
		}
		kind, body := payload[0], payload[1:]
		switch kind {
		case fMsg, fBcast:
			if err := decodeWireFrameInto(&frame, kind, body); err != nil {
				fmt.Fprintf(n.opts.Log, "node %d: bad frame from node %d: %v\n", n.opts.NodeID, from, err)
				break
			}
			n.tr.countRecv(from)
			_ = n.vm.DeliverWire(&frame)
			pending++
			if metrics {
				n.frameDeliver.ObserveDuration(n.reg.Now().Sub(deliverT0))
			}
			n.reg.Span(rxLane, "rx "+frame.Type, deliverT0)
		case fInitReply:
			replyID, id, err := decodeInitReply(body)
			if err != nil {
				fmt.Fprintf(n.opts.Log, "node %d: bad initiate reply from node %d: %v\n", n.opts.NodeID, from, err)
				break
			}
			n.tr.countRecv(from)
			// Record the assigned taskid on the retained request frame (if it
			// is still retained), so a post-death replay re-creates the task
			// under the identity the parent already holds.
			n.tr.noteInitReply(replyID, id)
			n.vm.DeliverWireReply(replyID, id)
		case fCredit:
			if c, err := decodeCredit(body); err == nil {
				n.tr.addCredits(from, c)
			}
		case fDrain:
			epoch, err := decodeDrain(body)
			if err != nil {
				break
			}
			n.answerDrain(epoch)
		case fDrainAck:
			ack, err := decodeDrainAck(body)
			if err != nil {
				break
			}
			// A follower with metrics enabled piggybacks its current metric
			// snapshot; keep the latest per node for the merged view.
			if len(ack.stats) > 0 {
				if snap, err := obs.DecodeSnapshot(ack.stats); err == nil {
					n.snapMu.Lock()
					n.followerSnap[ack.from] = snap
					n.snapMu.Unlock()
				} else {
					fmt.Fprintf(n.opts.Log, "node %d: bad stats blob from node %d: %v\n", n.opts.NodeID, ack.from, err)
				}
			}
			// Same piggyback pattern for span/flow traces: keep the latest
			// blob per follower for the merged mesh trace.
			if len(ack.trace) > 0 {
				if tr, err := obs.DecodeTrace(ack.trace); err == nil {
					n.snapMu.Lock()
					n.followerTrace[ack.from] = tr
					n.snapMu.Unlock()
				} else {
					fmt.Fprintf(n.opts.Log, "node %d: bad trace blob from node %d: %v\n", n.opts.NodeID, ack.from, err)
				}
			}
			select {
			case n.acks <- ack:
			default: // a stale round's ack nobody is collecting
			}
		case fHeartbeat:
			// Sign-of-life only; the readLoop already fed the detector.
		case fCkpt:
			_, epoch, blob, err := decodeCkpt(body)
			if err != nil {
				fmt.Fprintf(n.opts.Log, "node %d: bad checkpoint from node %d: %v\n", n.opts.NodeID, from, err)
				break
			}
			// storeCheckpoint copies the blob: the payload buffer is recycled.
			n.storeCheckpoint(from, epoch, blob)
		case fCkptAck:
			if _, epoch, err := decodeCkptAck(body); err == nil {
				n.broadcastMarks(epoch)
			}
		case fCkptMark:
			if _, count, err := decodeCkptMark(body); err == nil {
				n.tr.ackRetained(from, count)
			}
		case fRebalance, fRebalanceReady:
			dead, buddy, err := decodeRebalance(body)
			if err != nil {
				break
			}
			// Off the deliver stage: a rebalance blocks on the route lock and
			// (on the buddy) the restore, while senders holding the route lock
			// shared may be waiting on credits only this loop can deliver.
			ready := kind == fRebalanceReady
			n.readers.Add(1)
			go func() {
				defer n.readers.Done()
				if ready {
					n.handleRebalanceReady(dead, buddy)
				} else {
					n.handleRebalance(dead, buddy)
				}
			}()
		case fRestorePlan:
			cluster, parent, seq, id, err := decodeRestorePlan(body)
			if err != nil {
				break
			}
			if err := n.vm.PlanRestoredInit(cluster, parent, seq, id); err != nil {
				fmt.Fprintf(n.opts.Log, "node %d: restore plan from node %d: %v\n", n.opts.NodeID, from, err)
			}
		case fShutdown:
			n.signalShutdown()
		default:
			fmt.Fprintf(n.opts.Log, "node %d: unknown frame type 0x%02x from node %d\n", n.opts.NodeID, kind, from)
		}
		if pending > 0 && (pending >= creditGrantChunk || len(work) == 0) {
			n.tr.grantCredits(from, pending)
			pending = 0
		}
		select {
		case free <- payload[:0]:
		default:
		}
	}
}

func (n *Node) signalShutdown() {
	n.shutdownOnce.Do(func() { close(n.shutdownCh) })
}

func (n *Node) shuttingDown() bool {
	select {
	case <-n.shutdownCh:
		return true
	default:
		return false
	}
}

// idleWithin reports whether every locally hosted user task terminated
// within d.
func (n *Node) idleWithin(d time.Duration) bool {
	done := make(chan struct{})
	go func() {
		n.vm.WaitIdle()
		close(done)
	}()
	select {
	case <-done:
		return true
	case <-time.After(d):
		return false
	}
}

// answerDrain reports this node's quiescence for one drain round: whether
// local user tasks are idle, and the frame totals whose global balance tells
// the coordinator nothing is in flight.  Handled inline on the coordinator's
// deliver stage — node 0 sends nothing but control frames after its program
// finished, so blocking here cannot starve a message the idle wait depends
// on.  Outbound batches are flushed before the counts are read, so a frame
// lingering in an open batch cannot be reported sent-but-unreceivable for
// the whole round.
func (n *Node) answerDrain(epoch uint32) {
	idle := n.idleWithin(2 * time.Second)
	n.tr.Flush()
	sent, recv := n.tr.counts()
	ack := drainAck{from: n.opts.NodeID, epoch: epoch, sent: sent, recv: recv, idle: idle}
	// Piggyback this node's metric snapshot on the ack so the coordinator's
	// final summary covers the whole mesh.  Skipped (empty blob) when metrics
	// are off — the drain protocol itself stays snapshot-free.
	if n.reg.Has(obs.Metrics) {
		ack.stats = n.reg.Snapshot().Encode()
	}
	if n.reg.Has(obs.Spans) {
		ack.trace = obs.EncodeTrace(n.reg.Trace(0, ""))
	}
	_ = n.tr.sendControl(0, encodeDrainAck(ack))
}

// RunMain runs the program's entry tasktype on this node (the coordinator)
// and waits for the locally observable part of the run to finish: the main
// task, every local task, and the user-output flush.  Remotely hosted tasks
// are drained by Close.
func (n *Node) RunMain(args ...core.Value) error {
	if n.prog == nil {
		return fmt.Errorf("node %d: no program source was provided", n.opts.NodeID)
	}
	return n.prog.Run(n.vm, pfi.Options{Main: n.opts.Main}, args...)
}

// ServeUntilShutdown blocks until the coordinator orders shutdown (or its
// connection drops), then tears the local VM down.  Follower nodes call it
// after Start.
func (n *Node) ServeUntilShutdown() error {
	if n.opts.NodeID == 0 {
		return fmt.Errorf("node 0 coordinates: call RunMain and Close instead")
	}
	<-n.shutdownCh
	return n.Close()
}

// drainQuiesce is the coordinated shutdown drain: the coordinator repeats
// drain rounds until every node reports idle user tasks AND the global frame
// counts balance AND those counts were already seen one round earlier — so
// no frame was in flight between the two observations.  It returns an error
// when the mesh does not quiesce within the timeout (shutdown proceeds
// anyway; undelivered traffic at that point is a program that never
// terminates, which a single-process run would also hang on).
func (n *Node) drainQuiesce(timeout time.Duration) error {
	if len(n.opts.Addrs) == 1 {
		return nil
	}
	deadline := time.Now().Add(timeout)
	var prevSent, prevRecv uint64
	havePrev := false
	for epoch := uint32(1); time.Now().Before(deadline); epoch++ {
		var roundT0 time.Time
		if n.reg.Has(obs.Spans) {
			roundT0 = n.reg.Now()
		}
		// Dead peers (HA mode) are out of the round: their lanes drop control
		// frames and their traffic has been settled into the survivors' counts
		// by markDead/replay.  Re-list each round — a peer can die mid-drain.
		peers := 0
		for id := range n.opts.Addrs {
			if id == n.opts.NodeID || n.tr.isDead(id) {
				continue
			}
			peers++
			_ = n.tr.sendControl(id, encodeDrain(epoch))
		}
		got := make(map[int]drainAck, peers)
		roundDeadline := time.Now().Add(5 * time.Second)
		for len(got) < peers && time.Now().Before(roundDeadline) && time.Now().Before(deadline) {
			select {
			case a := <-n.acks:
				if a.epoch == epoch {
					got[a.from] = a
				}
			case <-time.After(100 * time.Millisecond):
			}
		}
		if !roundT0.IsZero() {
			n.reg.Span(fmt.Sprintf("node/%d drain", n.opts.NodeID), fmt.Sprintf("round %d", epoch), roundT0)
		}
		if len(got) < peers {
			continue
		}
		selfIdle := n.idleWithin(2 * time.Second)
		n.tr.Flush()
		sent, recv := n.tr.counts()
		allIdle := selfIdle
		for _, a := range got {
			sent += a.sent
			recv += a.recv
			allIdle = allIdle && a.idle
		}
		if allIdle && sent == recv {
			if havePrev && sent == prevSent && recv == prevRecv {
				return nil
			}
			prevSent, prevRecv, havePrev = sent, recv, true
		} else {
			havePrev = false
		}
		time.Sleep(10 * time.Millisecond)
	}
	return fmt.Errorf("node %d: mesh did not quiesce within %s", n.opts.NodeID, timeout)
}

// Close shuts the node down.  On the coordinator it first drains the mesh to
// quiescence and orders every follower to shut down; on any node it then
// stops the VM, the listener, and the connections.
func (n *Node) Close() error {
	n.closeOnce.Do(func() {
		if n.opts.NodeID == 0 && len(n.opts.Addrs) > 1 {
			if err := n.drainQuiesce(30 * time.Second); err != nil {
				fmt.Fprintf(n.opts.Log, "pisces: %v (shutting down anyway)\n", err)
				n.closeErr = err
				n.dumpBlackbox("drain timeout")
			}
			for id := range n.opts.Addrs {
				if id == n.opts.NodeID {
					continue
				}
				_ = n.tr.sendControl(id, []byte{fShutdown})
			}
			// Push the shutdown frames onto the wire before the connections
			// come down; a follower missing them still exits when its
			// coordinator lane reads EOF, but only after its own timeout.
			n.tr.Flush()
		}
		n.signalShutdown()
		n.vm.Shutdown()
		_ = n.ln.Close()
		_ = n.tr.Close()
		// Close the inbound connections too: the readers must exit even if a
		// peer never tears its outbound side down.
		n.inMu.Lock()
		for _, c := range n.inConns {
			_ = c.Close()
		}
		n.inMu.Unlock()
		n.readers.Wait()
	})
	return n.closeErr
}
