package node_test

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"repro/internal/config"
	"repro/internal/core"
)

// BenchmarkNodeFanIn measures routed message throughput across the real
// node transport: four producer tasks on node 1 (cluster 2) fan b.N
// messages with an 8-REAL payload into one collector on node 0 (cluster 1),
// every message paying the full path — codec encode into the sender's shard,
// length-prefixed TCP frame over loopback, decode and shard charge on the
// receiving node.  Producers run a credit window (one flush/credit round
// trip per 128 messages) so the collector's heap shard bounds backlog the
// way a real fan-in must; the msgs/s metric is the collector's own
// first-to-last delivery rate.  This is the PR 5 baseline the CI bench job
// tracks (BENCH_pr5.json).
func BenchmarkNodeFanIn(b *testing.B) {
	const senders = 4
	const window = 128
	cfg := config.Simple(2, senders+1)
	collected := make(chan time.Duration, 1)
	ready := make(chan core.TaskID, 1)
	register := func(vm *core.VM) {
		vm.Register("collector", func(t *core.Task) {
			total := int(core.MustInt(t.Arg(0)))
			ready <- t.ID()
			start := time.Now()
			handle := func(res *core.AcceptResult, got *int) {
				for _, m := range res.Accepted {
					switch m.Type {
					case "datum":
						*got++
					case "flush":
						if err := t.Send(m.Sender, "credit"); err != nil {
							b.Errorf("credit: %v", err)
						}
					}
				}
				t.RecycleAccept(res)
			}
			for got := 0; got < total; {
				// Block for one message, then drain whatever else arrived:
				// an ALL-only ACCEPT never waits, so the blocking step is
				// what parks the collector between bursts.
				res, err := t.Accept(core.AcceptSpec{
					Total: 1,
					Types: []core.TypeCount{{Type: "datum"}, {Type: "flush"}},
					Delay: core.Forever,
				})
				if err != nil {
					b.Errorf("collector: %v", err)
					break
				}
				handle(res, &got)
				res, err = t.Accept(core.AcceptSpec{
					Types: []core.TypeCount{{Type: "datum", Count: core.All}, {Type: "flush", Count: core.All}},
				})
				if err != nil {
					b.Errorf("collector drain: %v", err)
					break
				}
				handle(res, &got)
			}
			collected <- time.Since(start)
		})
		vm.Register("producer", func(t *core.Task) {
			to := core.MustID(t.Arg(0))
			count := int(core.MustInt(t.Arg(1)))
			payload := make([]float64, 8)
			for sent := 0; sent < count; {
				n := window
				if left := count - sent; left < n {
					n = left
				}
				for i := 0; i < n; i++ {
					if err := t.Send(to, "datum", core.Reals(payload)); err != nil {
						b.Errorf("producer: %v", err)
						return
					}
				}
				sent += n
				if err := t.Send(to, "flush"); err != nil {
					b.Errorf("flush: %v", err)
					return
				}
				if _, err := t.AcceptOne("credit"); err != nil {
					b.Errorf("await credit: %v", err)
					return
				}
			}
		})
	}
	var out bytes.Buffer
	nodes := startMesh(b, 2, cfg, "", &out, register)
	followerDone := make(chan struct{})
	go func() {
		defer close(followerDone)
		_ = nodes[1].ServeUntilShutdown()
	}()
	defer func() {
		b.StopTimer()
		_ = nodes[0].Close()
		<-followerDone
		if s := out.String(); strings.Contains(s, "dropping") {
			b.Fatalf("transport dropped traffic:\n%s", s)
		}
	}()

	per := b.N / senders
	if per == 0 {
		per = 1
	}
	total := per * senders

	b.ResetTimer()
	id, err := nodes[0].VM().Initiate("collector", core.OnCluster(1), core.Int(int64(total)))
	if err != nil {
		b.Fatalf("collector: %v", err)
	}
	<-ready
	for i := 0; i < senders; i++ {
		if _, err := nodes[1].VM().Initiate("producer", core.OnCluster(2), core.ID(id), core.Int(int64(per))); err != nil {
			b.Fatalf("producer %d: %v", i, err)
		}
	}
	elapsed := <-collected
	b.StopTimer()
	nodes[1].VM().WaitIdle()
	nodes[0].VM().WaitIdle()
	if elapsed > 0 {
		b.ReportMetric(float64(total)/elapsed.Seconds(), "msgs/s")
	}
	b.ReportAllocs()
}
