package node_test

import (
	"bytes"
	"encoding/json"
	"testing"

	"repro/internal/config"
	"repro/internal/node"
	"repro/internal/obs"
)

// TestMeshTraceCrossNodeFlows is the causal-tracing acceptance: a 2-node mesh
// run with spans enabled yields one merged Chrome trace (node 0's own spans
// plus the trace blob each follower ships on its drain ack) in which at least
// one causal flow starts (ph "s") on one node's process track and terminates
// (ph "t"/"f") on the other's — the arrow Perfetto draws from the send span
// on one node to the delivery on its peer.
func TestMeshTraceCrossNodeFlows(t *testing.T) {
	src := corpusSource(t, "crosscluster.pf")
	cfg := config.Simple(2, 4)
	var out bytes.Buffer
	nodes := startMesh(t, 2, cfg, src, &out, nil, func(i int, o *node.Options) {
		reg := obs.New()
		reg.Enable(obs.Spans)
		o.Metrics = reg
	})
	runDistributed(t, nodes)

	var buf bytes.Buffer
	if err := nodes[0].WriteMeshTrace(&buf); err != nil {
		t.Fatalf("merged trace: %v", err)
	}
	var doc struct {
		TraceEvents []struct {
			Ph  string `json:"ph"`
			Cat string `json:"cat"`
			Pid int    `json:"pid"`
			ID  string `json:"id"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("merged trace is not valid JSON: %v\n%s", err, buf.String())
	}

	pids := map[int]bool{}
	startPid := map[string]int{} // flow id -> pid of its ph "s" event
	for _, ev := range doc.TraceEvents {
		pids[ev.Pid] = true
		if ev.Cat == "flow" && ev.Ph == "s" {
			startPid[ev.ID] = ev.Pid
		}
	}
	if len(pids) < 2 {
		t.Fatalf("merged trace has %d process tracks, want 2 (follower trace blob missing?)", len(pids))
	}
	crossNode := 0
	for _, ev := range doc.TraceEvents {
		if ev.Cat != "flow" || (ev.Ph != "t" && ev.Ph != "f") {
			continue
		}
		if from, ok := startPid[ev.ID]; ok && from != ev.Pid {
			crossNode++
		}
	}
	if crossNode == 0 {
		t.Fatalf("no flow connects a send on one node track to a delivery on another (%d flow starts, %d events)",
			len(startPid), len(doc.TraceEvents))
	}
}
