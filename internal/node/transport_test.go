package node_test

import (
	"bytes"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/node"
	"repro/internal/sim"
)

// TestWireConfigVariantsMatchSingleProcess sweeps the batched wire path's
// edge configurations over a real 2-node mesh: every variant must reproduce
// the single-process output byte-for-byte.  The variants pin the transport
// edges the defaults never hit: a credit window of 1 (every data frame waits
// for the receiver's grant — only the stage-empty grant rule makes this make
// progress), batching forced off (flush-per-frame PR 5 semantics), a batch
// buffer smaller than a single frame (crosscluster.pf ships array arguments
// well over 24 bytes, so every frame overflows the buffer and must travel
// whole), and a lingering writer whose partial batches wait out a deadline.
func TestWireConfigVariantsMatchSingleProcess(t *testing.T) {
	src := corpusSource(t, "crosscluster.pf")
	cfg := config.Simple(2, 4)
	want := singleProcessOutput(t, cfg, src)
	if !strings.Contains(want, "ARRAY SUM") {
		t.Fatalf("reference output unexpected:\n%s", want)
	}

	variants := []struct {
		name string
		wire node.WireConfig
	}{
		{"credit-window-1", node.WireConfig{CreditWindow: 1}},
		{"unbatched", node.WireConfig{Unbatched: true}},
		{"frame-bigger-than-batch-buffer", node.WireConfig{BatchBytes: 24, CreditWindow: 2}},
		{"linger", node.WireConfig{BatchBytes: 256, BatchDelay: 2 * time.Millisecond, CreditWindow: 4}},
		{"no-flow-control", node.WireConfig{CreditWindow: -1}},
	}
	for _, v := range variants {
		t.Run(v.name, func(t *testing.T) {
			var out bytes.Buffer
			nodes := startMesh(t, 2, cfg, src, &out, nil, func(i int, o *node.Options) {
				o.Wire = v.wire
			})
			runDistributed(t, nodes)
			if got := out.String(); got != want {
				t.Fatalf("output differs under %+v:\n--- got ---\n%s--- want ---\n%s", v.wire, got, want)
			}
		})
	}
}

// TestFaultTransportBatchWindow pins the fault transport's model of the
// batched wire path on the virtual clock: with a pure batch window (no
// latency, no drops), every frame a lane accepts inside the window departs
// together at the window's close — the first arrival is delayed by exactly
// the window, the rest land nanoseconds behind it (the monotone per-lane
// clamp), and per-sender FIFO order survives the shared departure time.
func TestFaultTransportBatchWindow(t *testing.T) {
	const count = 16
	const window = 50 * time.Millisecond
	s := sim.New(3)
	ft := node.NewFaultTransport(3, node.FaultProfile{BatchWindow: window})
	var out bytes.Buffer
	vm, err := core.NewVM(config.Simple(2, 4), core.Options{
		UserOutput:    &out,
		Backend:       s,
		Remote:        ft,
		InterceptWire: true,
		AcceptTimeout: 30 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	ft.Bind(vm)
	defer vm.Shutdown()

	var mu sync.Mutex
	var sendStart time.Time
	var order []int64
	var arrivals []time.Time

	vm.Register("producer", func(task *core.Task) {
		mu.Lock()
		sendStart = s.Now()
		mu.Unlock()
		for i := 0; i < count; i++ {
			if err := task.SendParent("datum", core.Int(int64(i))); err != nil {
				t.Errorf("producer send %d: %v", i, err)
				return
			}
		}
	})
	vm.Register("sink", func(task *core.Task) {
		if err := task.Initiate(core.OnCluster(2), "producer"); err != nil {
			t.Errorf("initiate producer: %v", err)
			return
		}
		for i := 0; i < count; i++ {
			m, err := task.AcceptOne("datum")
			if err != nil {
				t.Errorf("accept %d: %v", i, err)
				return
			}
			mu.Lock()
			order = append(order, core.MustInt(m.Arg(0)))
			arrivals = append(arrivals, s.Now())
			mu.Unlock()
		}
	})

	if _, err := vm.Run("sink", core.OnCluster(1)); err != nil {
		t.Fatal(err)
	}

	mu.Lock()
	defer mu.Unlock()
	if len(order) != count {
		t.Fatalf("sink accepted %d messages, want %d", len(order), count)
	}
	for i, got := range order {
		if got != int64(i) {
			t.Fatalf("per-sender FIFO broken: position %d got seq %d (order %v)", i, got, order)
		}
	}
	// All sends happen at one virtual instant, so they share a single batch
	// window: nothing arrives before the window closes, and the whole batch
	// lands within the nanosecond FIFO spacing once it does.
	firstDelay := arrivals[0].Sub(sendStart)
	if firstDelay < window {
		t.Fatalf("first arrival after %v, want the full %v batch window", firstDelay, window)
	}
	if firstDelay > window+time.Millisecond {
		t.Fatalf("first arrival after %v; delay should be the bare %v window (no latency configured)", firstDelay, window)
	}
	if spread := arrivals[count-1].Sub(arrivals[0]); spread > time.Microsecond {
		t.Fatalf("batch arrivals spread over %v, want one shared departure (ns-scale spacing)", spread)
	}
}
