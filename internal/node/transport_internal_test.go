package node

import (
	"io"
	"net"
	"testing"

	"repro/internal/core"
	"repro/internal/obs"
)

// TestBroadcastPartialFailureKeepsDrainBalance pins the broadcast accounting
// fix: a broadcast over one dead and one live lane must still reach the live
// peer, must report the failure, and must count only the live lane's copy in
// the drain balance — the dead lane's copy is written off as lost, so the
// sent/recv books stay balanced and a later drain round can still converge.
func TestBroadcastPartialFailureKeepsDrainBalance(t *testing.T) {
	topo, err := Partition([]int{1, 2, 3}, 3)
	if err != nil {
		t.Fatal(err)
	}
	tr := newTransport(0, topo, obs.New(), WireConfig{Unbatched: true})
	defer tr.Close()

	live, liveFar := net.Pipe()
	go func() { _, _ = io.Copy(io.Discard, liveFar) }()
	tr.addPeer(1, live)

	dead, deadFar := net.Pipe()
	_ = dead.Close()
	_ = deadFar.Close()
	tr.addPeer(2, dead)

	f := &core.WireFrame{Kind: core.FrameBroadcast, Src: 1, Dst: 0, Seq: 1, Type: "tick", Payload: []byte("x")}
	if err := tr.Send(f); err == nil {
		t.Fatal("broadcast over a dead lane reported total success")
	}
	tr.Flush()
	if sent, recv := tr.counts(); sent != 1 || recv != 0 {
		t.Fatalf("after partial broadcast failure: sent %d recv %d, want 1 0 (only the live lane's copy counted)", sent, recv)
	}

	// The failed lane keeps reporting, keeps forwarding to the live peer, and
	// stays out of the books: no phantom imbalance accumulates.
	if err := tr.Send(f); err == nil {
		t.Fatal("second broadcast over the dead lane reported total success")
	}
	tr.Flush()
	if sent, _ := tr.counts(); sent != 2 {
		t.Fatalf("sent = %d after two partial broadcasts, want 2", sent)
	}
}
