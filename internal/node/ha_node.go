package node

import (
	"fmt"
	"time"

	"repro/internal/msgcodec"
	"repro/internal/obs"
)

// Node-level fault tolerance: the heartbeat/checkpoint loop and the rebalance
// protocol.  The transport half (frame retention and replay) lives in ha.go;
// the VM half (admission floors, consumption-log replay, checkpoint encoding)
// in core/ha.go.
//
// Failure handling in three acts:
//
//  1. Detection.  Every node heartbeats every peer (uncredited control
//     frames); any inbound frame counts as a sign of life.  A peer silent for
//     SuspicionAfter is declared dead by the detector — finally, with no
//     resurrection.
//  2. Verdict.  The rebalance leader — the lowest live node id — picks the
//     dead node's buddy (the next live id after it, cyclically: the node that
//     holds its latest checkpoint) and broadcasts fRebalance.  A follower that
//     merely SUSPECTS a peer waits for the verdict, so the mesh agrees on one
//     membership change at a time.  Node 0 hosts the user controller and
//     cannot be replaced; followers that lose it shut down.
//  3. Recovery.  The buddy adopts the dead node's clusters, restores the last
//     checkpoint blob it stored, and broadcasts fRebalanceReady.  On that
//     signal every node replays its retained post-checkpoint frames onto the
//     buddy's lane (restore plans first) and reroutes the dead node's
//     clusters there.  The restored admission floors drop whatever the blob
//     already covered, so over-replay is harmless.
//
// One failure per checkpoint interval is tolerated: a second node dying
// before the first recovery completes (or taking the only copy of a blob with
// it) is not recoverable.

// defaultCheckpointInterval balances recovery work (everything after the last
// cut is replayed from retention) against checkpoint traffic (each tick
// serialises the hosted clusters and ships the blob to the buddy).
const defaultCheckpointInterval = 250 * time.Millisecond

// haLoop is the HA heartbeat: on every tick it beats each live peer, sweeps
// the failure detector, and periodically cuts a checkpoint.  Deaths are
// handled on their own goroutine so a slow restore never pauses the
// heartbeats that keep THIS node alive in its peers' detectors.
func (n *Node) haLoop() {
	defer n.readers.Done()
	hb := time.NewTicker(n.opts.HeartbeatInterval)
	defer hb.Stop()
	ck := time.NewTicker(n.opts.CheckpointInterval)
	defer ck.Stop()
	beat := encodeHeartbeat(n.opts.NodeID)
	for {
		select {
		case <-n.shutdownCh:
			return
		case <-hb.C:
			for _, id := range n.det.Alive() {
				if id != n.opts.NodeID {
					_ = n.tr.sendControl(id, beat)
				}
			}
			for _, dead := range n.det.Check() {
				dead := dead
				n.readers.Add(1)
				go func() {
					defer n.readers.Done()
					n.handleDeath(dead)
				}()
			}
		case <-ck.C:
			n.checkpointTick()
		}
	}
}

// checkpointTick cuts one checkpoint of the hosted clusters and streams it to
// the buddy.  The per-source receive counts are snapshotted BEFORE the cut:
// every frame counted there reached the VM before the checkpoint, so its
// effect is inside the blob and the snapshot is safe to broadcast as
// retention marks — but only once the buddy acks the blob (fCkptAck), never
// before.  Releasing retention against an unacked blob would let the blob
// and the frames that rebuild it die together.
func (n *Node) checkpointTick() {
	buddy := n.nextLive(n.opts.NodeID)
	if buddy < 0 {
		return // no live peer to hold the blob
	}
	snap := n.tr.recvSnapshot()
	blob, err := n.vm.Checkpoint(n.vm.HostedClusters()...)
	if err != nil {
		fmt.Fprintf(n.opts.Log, "node %d: checkpoint failed: %v\n", n.opts.NodeID, err)
		return
	}
	n.ckptMu.Lock()
	n.ckptEpoch++
	epoch := n.ckptEpoch
	n.pendMark[epoch] = snap
	n.ckptMu.Unlock()
	if err := n.tr.sendControl(buddy, encodeCkpt(n.opts.NodeID, epoch, blob)); err != nil {
		fmt.Fprintf(n.opts.Log, "node %d: shipping checkpoint %d to node %d: %v\n", n.opts.NodeID, epoch, buddy, err)
		return
	}
	n.rec.Record(0, msgcodec.EvCheckpoint, 0, int64(n.opts.NodeID), int64(epoch))
	if n.reg.Has(obs.Metrics) {
		n.haCkptTx.Inc()
	}
}

// storeCheckpoint is the buddy side of a checkpoint: keep the latest blob for
// the peer and ack it, releasing the peer's retention marks.
func (n *Node) storeCheckpoint(from int, epoch uint64, blob []byte) {
	n.ckptMu.Lock()
	n.ckptFrom[from] = append(n.ckptFrom[from][:0], blob...)
	n.ckptMu.Unlock()
	// Record the stored epoch: a survivor's dump proves which checkpoint of a
	// dead peer it held at the moment of failure.
	n.rec.Record(0, msgcodec.EvCheckpoint, 0, int64(from), int64(epoch))
	if n.reg.Has(obs.Metrics) {
		n.haCkptRx.Inc()
	}
	_ = n.tr.sendControl(from, encodeCkptAck(n.opts.NodeID, epoch))
}

// broadcastMarks releases the retention the acked checkpoint epoch covers:
// each peer may drop its retained frames up to the count this node had
// delivered from that peer when the checkpoint was cut.
func (n *Node) broadcastMarks(epoch uint64) {
	n.ckptMu.Lock()
	snap, ok := n.pendMark[epoch]
	for e := range n.pendMark {
		if e <= epoch {
			delete(n.pendMark, e)
		}
	}
	n.ckptMu.Unlock()
	if !ok {
		return
	}
	for id, count := range snap {
		if id == n.opts.NodeID || n.det.Dead(id) {
			continue
		}
		_ = n.tr.sendControl(id, encodeCkptMark(n.opts.NodeID, count))
	}
}

// nextLive returns the next live node after the given id, cyclically, or -1
// when none exists.  Applied to self it picks this node's checkpoint buddy;
// applied to a dead node it picks the adopter — the same formula, so the node
// chosen to restore a blob is the node the blob was streamed to.
func (n *Node) nextLive(after int) int {
	total := len(n.opts.Addrs)
	for i := 1; i < total; i++ {
		id := (after + i) % total
		if id != after && !n.det.Dead(id) {
			return id
		}
	}
	return -1
}

// handleDeath reacts to a locally detected death.  Only the rebalance leader
// (lowest live id) issues the verdict; everyone else waits for fRebalance so
// the mesh processes one agreed membership change, not N racing ones.
func (n *Node) handleDeath(dead int) {
	n.rec.Record(0, msgcodec.EvHeartbeatMiss, 0, int64(dead), 0)
	if n.reg.Has(obs.Metrics) {
		n.haDeaths.Inc()
	}
	if dead == 0 && n.opts.NodeID != 0 {
		// Node 0 hosts the user controller and the terminal cluster; no buddy
		// can impersonate it for the user.  The run is over.
		fmt.Fprintf(n.opts.Log, "node %d: coordinator (node 0) lost; shutting down\n", n.opts.NodeID)
		n.signalShutdown()
		return
	}
	alive := n.det.Alive()
	if len(alive) == 0 || alive[0] != n.opts.NodeID {
		return // not the leader; the verdict will arrive as fRebalance
	}
	buddy := n.nextLive(dead)
	if buddy < 0 {
		fmt.Fprintf(n.opts.Log, "node %d: node %d died with no live buddy; shutting down\n", n.opts.NodeID, dead)
		n.signalShutdown()
		return
	}
	fmt.Fprintf(n.opts.Log, "node %d: declaring node %d dead; node %d adopts clusters %v\n",
		n.opts.NodeID, dead, buddy, n.topo.Clusters(dead))
	verdict := encodeRebalance(fRebalance, dead, buddy)
	for _, id := range alive {
		if id != n.opts.NodeID && id != dead {
			_ = n.tr.sendControl(id, verdict)
		}
	}
	n.handleRebalance(dead, buddy)
}

// handleRebalance applies a rebalance verdict: mark the death everywhere,
// and — on the buddy — adopt, restore, and tell the mesh the restored state
// is ready for replays.  Everyone else holds their retained frames until
// fRebalanceReady; replaying into a buddy that has not restored yet would
// race the admission floors the replay depends on.
func (n *Node) handleRebalance(dead, buddy int) {
	n.rebalMu.Lock()
	defer n.rebalMu.Unlock()
	if n.shuttingDown() {
		return
	}
	n.det.MarkDead(dead)
	n.tr.markDead(dead)
	if buddy != n.opts.NodeID {
		return
	}
	n.adoptAndRestore(dead)
	ready := encodeRebalance(fRebalanceReady, dead, buddy)
	for _, id := range n.det.Alive() {
		if id != n.opts.NodeID {
			_ = n.tr.sendControl(id, ready)
		}
	}
	n.finishRebalance(dead, buddy)
}

// handleRebalanceReady finishes a rebalance on a non-buddy node: replay the
// retained backlog and reroute.  The ready frame travels on the buddy's lane
// while the verdict travels on the leader's, so it can arrive FIRST — the
// death marking below is not redundant, it is the frame's first effect then.
func (n *Node) handleRebalanceReady(dead, buddy int) {
	n.rebalMu.Lock()
	defer n.rebalMu.Unlock()
	if n.shuttingDown() {
		return
	}
	n.det.MarkDead(dead)
	n.tr.markDead(dead)
	n.finishRebalance(dead, buddy)
}

// adoptAndRestore takes over the dead node's clusters and rebuilds them from
// the last checkpoint blob this node stored for it.  No blob means the peer
// died before its first checkpoint shipped: the clusters restart empty, and
// the retained-frame replay alone rebuilds what it can.
func (n *Node) adoptAndRestore(dead int) {
	clusters := n.topo.Clusters(dead)
	n.vm.AdoptClusters(clusters...)
	n.ckptMu.Lock()
	blob := n.ckptFrom[dead]
	n.ckptMu.Unlock()
	if len(blob) == 0 {
		fmt.Fprintf(n.opts.Log, "node %d: no checkpoint stored for node %d; clusters %v restart empty\n",
			n.opts.NodeID, dead, clusters)
		return
	}
	if err := n.vm.Restore(blob); err != nil {
		fmt.Fprintf(n.opts.Log, "node %d: restoring node %d's checkpoint: %v\n", n.opts.NodeID, dead, err)
	}
}

// finishRebalance replays this node's retained frames onto the buddy and
// flips the route, atomically with respect to every concurrent send (the
// exclusive route lock is what keeps the replayed backlog ahead of newly
// routed frames on the buddy's lane).
func (n *Node) finishRebalance(dead, buddy int) {
	var t0 time.Time
	if n.reg.Has(obs.Spans) {
		t0 = n.reg.Now()
	}
	n.tr.routeMu.Lock()
	replayed, err := n.tr.replayRetained(dead, buddy, n.vm)
	n.tr.routeMu.Unlock()
	if err != nil {
		fmt.Fprintf(n.opts.Log, "node %d: replaying retained frames for node %d: %v\n", n.opts.NodeID, dead, err)
	}
	if n.reg.Has(obs.Metrics) {
		n.haReplayed.Add(int64(replayed))
	}
	if !t0.IsZero() {
		n.reg.Span(fmt.Sprintf("node/%d ha", n.opts.NodeID), fmt.Sprintf("rebalance n%d->n%d", dead, buddy), t0)
	}
	fmt.Fprintf(n.opts.Log, "node %d: rerouted node %d's clusters to node %d (%d retained frames replayed)\n",
		n.opts.NodeID, dead, buddy, replayed)
	// A rebalance IS a failure: leave the black box behind while the events
	// leading up to the death are still in the ring.
	n.dumpBlackbox(fmt.Sprintf("rebalance n%d->n%d", dead, buddy))
}

// Terminate tears the node down abruptly — no drain, no shutdown frames, no
// VM flush — simulating a kill -9 for fault-tolerance tests.  Peers see the
// connections drop and the heartbeats stop.  The VM's tasks are abandoned,
// not stopped: their sends fail into the closed transport, which is exactly
// what a killed process's in-flight work looks like from the outside.
func (n *Node) Terminate() {
	n.closeOnce.Do(func() {
		n.signalShutdown()
		_ = n.ln.Close()
		_ = n.tr.Close()
		n.inMu.Lock()
		for _, c := range n.inConns {
			_ = c.Close()
		}
		n.inMu.Unlock()
		n.readers.Wait()
	})
}
