package node

import (
	"bufio"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/msgcodec"
	"repro/internal/obs"
)

// peer is one outbound connection: this node's lane for frames toward one
// other node.  Writes are serialised by mu and flushed per frame, so a
// sending task's frame is on the wire (preserving its per-sender order)
// before its Send returns — which is also what lets the sender's heap shard
// recover the payload bytes immediately.
type peer struct {
	id   int
	conn net.Conn
	mu   sync.Mutex
	bw   *bufio.Writer
	err  error

	// Per-lane wire counters (node.tx.n<me>->n<id>.*), resolved at addPeer;
	// bumped only when metrics are enabled.
	txFrames *obs.Counter
	txBytes  *obs.Counter
}

// writeFrame serialises one protocol payload onto the peer's connection.
// All frame types pass through here — data and control alike — so the
// per-lane counters see the node's complete wire activity.
func (p *peer) writeFrame(tr *transport, payload []byte) error {
	metrics := tr.reg.Has(obs.Metrics)
	var t0 time.Time
	if metrics {
		t0 = tr.reg.Now()
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.err != nil {
		return p.err
	}
	if err := msgcodec.WriteFrame(p.bw, payload, 0); err != nil {
		p.err = err
		return err
	}
	if err := p.bw.Flush(); err != nil {
		p.err = err
		return err
	}
	if metrics {
		tr.frameWrite.ObserveDuration(tr.reg.Now().Sub(t0))
		p.txFrames.Inc()
		p.txBytes.Add(int64(len(payload)) + msgcodec.FrameOverhead)
	}
	return nil
}

// transport is the TCP implementation of core.Transport: frames for a
// cluster hosted elsewhere are serialised onto the owning node's peer
// connection; inbound frames are pumped into the local VM by the per-peer
// reader loops in node.go.
type transport struct {
	nodeID int
	topo   Topology

	// reg is the node's observability registry (never nil); frameWrite is
	// the resolved node.frame.write.ns histogram.
	reg        *obs.Registry
	frameWrite *obs.Histogram

	mu    sync.Mutex
	peers map[int]*peer // node id -> outbound connection

	// sent and recv count wire frames (messages, broadcasts, initiate
	// replies) for the shutdown drain's global quiescence check.
	sent atomic.Uint64
	recv atomic.Uint64

	vm atomic.Pointer[core.VM] // bound after the VM is booted
}

func newTransport(nodeID int, topo Topology, reg *obs.Registry) *transport {
	return &transport{
		nodeID:     nodeID,
		topo:       topo,
		reg:        reg,
		frameWrite: reg.Histogram("node.frame.write.ns", "ns"),
		peers:      make(map[int]*peer),
	}
}

func (tr *transport) bind(vm *core.VM) { tr.vm.Store(vm) }

func (tr *transport) addPeer(id int, conn net.Conn) {
	tr.mu.Lock()
	tr.peers[id] = &peer{
		id: id, conn: conn, bw: bufio.NewWriter(conn),
		txFrames: tr.reg.Counter(fmt.Sprintf("node.tx.n%d->n%d.frames", tr.nodeID, id)),
		txBytes:  tr.reg.Counter(fmt.Sprintf("node.tx.n%d->n%d.bytes", tr.nodeID, id)),
	}
	tr.mu.Unlock()
}

func (tr *transport) peerFor(node int) (*peer, error) {
	tr.mu.Lock()
	p := tr.peers[node]
	tr.mu.Unlock()
	if p == nil {
		return nil, fmt.Errorf("node %d: no connection to node %d", tr.nodeID, node)
	}
	return p, nil
}

// ownerOf maps a destination cluster to its hosting node.
func (tr *transport) ownerOf(cluster int) (int, error) {
	n, ok := tr.topo.NodeOf(cluster)
	if !ok {
		return 0, fmt.Errorf("node %d: cluster %d is not in the topology", tr.nodeID, cluster)
	}
	return n, nil
}

// Send implements core.Transport: one frame onto the owning peer's
// connection — or, for a machine-wide broadcast, onto every peer's.
func (tr *transport) Send(f *core.WireFrame) error {
	buf := encodeWireFrame(make([]byte, 0, 64+len(f.Payload)), f)
	if f.Kind == core.FrameBroadcast && f.Dst == 0 {
		var firstErr error
		tr.mu.Lock()
		ids := make([]*peer, 0, len(tr.peers))
		for _, p := range tr.peers {
			ids = append(ids, p)
		}
		tr.mu.Unlock()
		for _, p := range ids {
			if err := p.writeFrame(tr, buf); err != nil && firstErr == nil {
				firstErr = err
			} else if err == nil {
				tr.sent.Add(1)
			}
		}
		return firstErr
	}
	owner, err := tr.ownerOf(f.Dst)
	if err != nil {
		return err
	}
	if owner == tr.nodeID {
		// The core only routes remotely for non-hosted clusters, so this is
		// a topology/hosting disagreement worth failing loudly on.
		return fmt.Errorf("node %d: frame for cluster %d routed remotely but hosted here", tr.nodeID, f.Dst)
	}
	p, err := tr.peerFor(owner)
	if err != nil {
		return err
	}
	if err := p.writeFrame(tr, buf); err != nil {
		return err
	}
	tr.sent.Add(1)
	return nil
}

// SendReply carries a routed-initiate reply back to the node hosting the
// requesting cluster.
func (tr *transport) SendReply(dst int, replyID uint64, id core.TaskID) error {
	owner, err := tr.ownerOf(dst)
	if err != nil {
		return err
	}
	if owner == tr.nodeID {
		if vm := tr.vm.Load(); vm != nil {
			vm.DeliverWireReply(replyID, id)
			return nil
		}
		return fmt.Errorf("node %d: reply for local cluster %d before the VM is bound", tr.nodeID, dst)
	}
	p, err := tr.peerFor(owner)
	if err != nil {
		return err
	}
	if err := p.writeFrame(tr, encodeInitReply(make([]byte, 0, 32), replyID, id)); err != nil {
		return err
	}
	tr.sent.Add(1)
	return nil
}

// Flush is a no-op: writes are synchronous and flushed per frame, so every
// frame accepted before the call is already on the wire.
func (tr *transport) Flush() {}

// Close tears the peer connections down.
func (tr *transport) Close() error {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	var firstErr error
	for _, p := range tr.peers {
		if err := p.conn.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// counts returns the frames sent/received so far (drain protocol).
func (tr *transport) counts() (sent, recv uint64) { return tr.sent.Load(), tr.recv.Load() }
