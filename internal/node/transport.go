package node

import (
	"fmt"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/msgcodec"
	"repro/internal/obs"
)

// Batched wire path.
//
// PR 5's transport wrote one frame per message under a per-peer lock and
// flushed it to the kernel before the sender's Send returned: correct, but
// the per-frame syscall put loopback TCP a factor of ~3 behind the
// in-process router.  The path is now built around three ideas:
//
//  1. Frame coalescing.  Each peer has an open batch buffer; senders append
//     length-prefixed frames to it (msgcodec batch framing) and a dedicated
//     writer goroutine hands the whole batch to the kernel in ONE write.
//     While the writer is in the syscall, new frames accumulate in the next
//     batch, so coalescing adapts to load with no mandatory latency: an idle
//     lane flushes a lone frame immediately, a busy lane packs hundreds of
//     frames per syscall.  WireConfig.BatchDelay optionally lingers a
//     partial batch to trade latency for fewer, larger writes.
//  2. Zero-copy batch encode.  The frame encoder writes DIRECTLY from the
//     sender's heap-shard arena into the batch buffer (BeginFrame/EndFrame
//     backfill the length prefix), so payload bytes are copied exactly once.
//     The copy happens inside Send, which is the batch-handoff point: the
//     sender's shard storage is recoverable as soon as Send returns, even
//     though the bytes reach the wire later.  (PR 5's "synchronous write ⇒
//     shard recovers immediately" invariant is gone; handoff-time copy is
//     what replaces it.)
//  3. Credit-based flow control.  Each lane starts with WireConfig
//     CreditWindow credits; a data frame consumes one, and the receiver
//     returns credits on the control-frame channel (fCredit) as it delivers
//     frames to its VM.  A slow node therefore stalls its senders at a
//     bounded queue depth instead of growing an unbounded batch buffer.
//
// The byte stream is identical to per-frame writes (a batch is just
// concatenated length-prefixed frames), so the receiver's framing layer is
// unchanged; batching is invisible to the protocol apart from fCredit.

// WireConfig tunes the batched wire path.  The zero value selects defaults;
// every node of a mesh should run the same values (the settings are
// per-process, not negotiated).
type WireConfig struct {
	// BatchBytes is the target batch-buffer size: the writer stops lingering
	// once the open batch reaches it, and recycled buffers are capped near
	// it.  A single frame larger than BatchBytes still travels — the batch
	// buffer grows for it and is written whole.  <= 0 means 64 KiB.
	BatchBytes int
	// BatchDelay is the longest a partial batch may linger waiting for more
	// frames before the writer flushes it.  0 flushes as soon as the writer
	// is free (natural coalescing: batching then comes only from frames that
	// arrive while the previous write syscall runs, which costs no latency).
	// Values in the 50–200µs range trade that latency for larger batches.
	BatchDelay time.Duration
	// CreditWindow is the per-lane flow-control window: how many credited
	// data frames may be in flight toward a peer before Send stalls waiting
	// for the receiver's credit grants.  0 means 1024; negative disables
	// flow control (unbounded sender queues — benchmarks only).
	CreditWindow int
	// Unbatched forces PR 5 semantics: every frame is flushed to the kernel
	// before Send returns.  For A/B comparison and the dist-smoke matrix.
	Unbatched bool
}

const (
	defaultBatchBytes   = 64 << 10
	defaultCreditWindow = 1024
	// creditGrantChunk is how many delivered frames a receiver accumulates
	// before returning credits.  Grants also go out whenever the inbound
	// stage runs dry, so a sender whose window is smaller than the chunk
	// (tests run windows of 1) still makes progress.
	creditGrantChunk = 64
	// stageDepth bounds the receiver's decode/deliver stage, in frames; when
	// it fills, the reader stops pulling from the socket and TCP pushes back
	// on the sending node's writer.
	stageDepth = 256
)

func (c WireConfig) withDefaults() WireConfig {
	if c.BatchBytes <= 0 {
		c.BatchBytes = defaultBatchBytes
	}
	switch {
	case c.CreditWindow == 0:
		c.CreditWindow = defaultCreditWindow
	case c.CreditWindow < 0:
		c.CreditWindow = 0 // disabled
	}
	return c
}

// peer is one outbound connection: this node's lane for frames toward one
// other node.  Senders append frames to the open batch under mu; the writer
// goroutine swaps the batch out and writes it WITHOUT holding mu, so a slow
// peer's syscall never blocks the tasks filling the next batch.
type peer struct {
	id   int
	conn net.Conn

	mu   sync.Mutex
	cond *sync.Cond // writer wake-ups, credit grants, flush/write completion

	batch    []byte    // open batch: concatenated length-prefixed frames
	spare    []byte    // recycled buffer for the next batch (double buffering)
	frames   int       // frames in the open batch
	counted  int       // of those, frames counted in transport.sent (loss accounting)
	openedAt time.Time // when the open batch got its first frame (linger deadline)
	flushReq bool      // flush the open batch now, regardless of linger
	writing  bool      // the writer is inside conn.Write
	closed   bool
	err      error

	credits int // remaining flow-control credits toward this peer

	// HA lane state (haRetain mode only; guarded by mu).  sentIdx numbers the
	// counted data frames enqueued on this lane, in lane order — the receiver
	// numbers its deliveries identically (TCP FIFO, same framing), which is
	// what makes checkpoint marks exact.  retained keeps the encoded frames
	// whose effects are not yet covered by a peer-acknowledged checkpoint;
	// dead flips the lane to retain-only (frames are kept, never written),
	// and replayed marks that the retained backlog has been handed to the
	// adopting buddy, after which new frames toward this lane are redundant.
	dead     bool
	deadDone bool // markDead accounting ran (dead may be set first by a write error)
	replayed bool
	sentIdx  uint64
	ackIdx   uint64
	retained []*retFrame

	// Per-lane wire counters (node.tx.n<me>->n<id>.*), resolved at addPeer;
	// bumped only when metrics are enabled.
	txFrames *obs.Counter
	txBytes  *obs.Counter
}

// enqueue appends one frame to the peer's open batch and wakes the writer.
// encode appends the frame payload to the batch (the length prefix is
// reserved and backfilled around it, so payload bytes are copied exactly
// once, straight from their source into the batch buffer).  A credited frame
// consumes one flow-control credit and may stall here until the receiver
// grants more; a counted frame participates in the drain protocol's global
// sent/recv balance.  In Unbatched mode the call additionally waits for the
// frame to reach the kernel, restoring flush-per-frame semantics.
func (p *peer) enqueue(tr *transport, credited, counted bool, replyID uint64, encode func(batch []byte) []byte) error {
	metrics := tr.reg.Has(obs.Metrics)
	p.mu.Lock()
	if credited && tr.cfg.CreditWindow > 0 && !p.dead && p.credits <= 0 {
		// A stall is a flow-control anomaly worth forensics: record which
		// peer's window ran dry before blocking.
		tr.reg.Recorder().Record(p.id, msgcodec.EvCreditStall, 0, int64(p.id), 0)
		var t0 time.Time
		if metrics {
			t0 = tr.reg.Now()
			tr.creditStalls.Inc()
		}
		for p.credits <= 0 && p.err == nil && !p.closed && !p.dead {
			p.cond.Wait()
		}
		if metrics {
			tr.creditStallNS.ObserveDuration(tr.reg.Now().Sub(t0))
		}
	}
	if p.dead {
		// The peer is dead (or the lane broke in HA mode): counted data
		// frames go straight into retention for the rebalance replay, control
		// frames evaporate.  Senders never see an error — the frame's effect
		// is the adopting buddy's problem now.
		err := p.retainDeadLocked(tr, counted, replyID, encode)
		p.mu.Unlock()
		return err
	}
	if p.err != nil {
		err := p.err
		p.mu.Unlock()
		return err
	}
	if p.closed {
		p.mu.Unlock()
		return net.ErrClosed
	}
	if credited && tr.cfg.CreditWindow > 0 {
		p.credits--
	}
	start := len(p.batch)
	batch, payloadStart := msgcodec.BeginFrame(p.batch)
	batch = encode(batch)
	batch, err := msgcodec.EndFrame(batch, payloadStart, 0)
	p.batch = batch
	if err != nil {
		p.mu.Unlock()
		return err
	}
	if start == 0 {
		p.openedAt = time.Now()
	}
	p.frames++
	if counted {
		p.counted++
		tr.sent.Add(1)
		if tr.haRetain {
			p.retainPayloadLocked(tr, p.batch[payloadStart:], replyID)
		}
	}
	nbytes := len(p.batch) - start
	if tr.cfg.Unbatched {
		p.flushReq = true
		p.cond.Broadcast()
		for (len(p.batch) > 0 || p.writing) && p.err == nil {
			p.cond.Wait()
		}
		err = p.err
	} else if start == 0 {
		p.cond.Broadcast() // first frame of a batch: wake the writer
	}
	p.mu.Unlock()
	if metrics {
		p.txFrames.Inc()
		p.txBytes.Add(int64(nbytes))
	}
	return err
}

// writeLoop is the peer's writer goroutine: it swaps the open batch out and
// hands it to the kernel in one write, then recycles the buffer.  It holds
// mu only across the swap, never across the syscall.  It exits on a write
// error or once the peer is closed and drained; frames that can no longer
// reach the wire are added to the transport's lost count so the drain
// protocol's sent/recv balance stays consistent.
func (p *peer) writeLoop(tr *transport) {
	defer tr.writers.Done()
	for {
		p.mu.Lock()
		for len(p.batch) == 0 && p.err == nil && !p.closed && !p.dead {
			p.cond.Wait()
		}
		if p.err != nil || ((p.closed || p.dead) && len(p.batch) == 0) {
			// In HA retention mode every counted frame was copied into the
			// retention log at enqueue; its fate (replayed to the buddy, or
			// accounted lost at markDead) is decided there, not here.
			if !tr.haRetain {
				tr.lost.Add(uint64(p.counted))
			}
			p.counted, p.frames = 0, 0
			p.batch = nil
			p.cond.Broadcast()
			p.mu.Unlock()
			return
		}
		// Optional linger: give a partial batch up to BatchDelay to fill
		// before paying the syscall.  Flush requests, errors, and close all
		// cut the linger short.
		if d := tr.cfg.BatchDelay; d > 0 {
			deadline := p.openedAt.Add(d)
			for len(p.batch) < tr.cfg.BatchBytes && !p.flushReq && p.err == nil && !p.closed {
				wait := time.Until(deadline)
				if wait <= 0 {
					break
				}
				p.mu.Unlock()
				time.Sleep(wait)
				p.mu.Lock()
			}
			if p.err != nil {
				p.mu.Unlock()
				continue // top of loop handles the error exit
			}
		}
		buf, frames, counted := p.batch, p.frames, p.counted
		p.batch = p.spare[:0]
		p.spare = nil
		p.frames, p.counted = 0, 0
		p.flushReq = false
		p.writing = true
		p.mu.Unlock()

		metrics := tr.reg.Has(obs.Metrics)
		var t0 time.Time
		if metrics {
			t0 = tr.reg.Now()
		}
		_, werr := p.conn.Write(buf)
		if metrics {
			tr.batchWrite.ObserveDuration(tr.reg.Now().Sub(t0))
			tr.batchFrames.Observe(int64(frames))
			tr.batchBytes.Observe(int64(len(buf)))
		}

		p.mu.Lock()
		p.writing = false
		if werr != nil {
			if tr.haRetain {
				// A broken lane in HA mode flips to retention instead of
				// poisoning senders: the failed batch's counted frames are
				// already in the retention log, and the death accounting runs
				// when the failure detector's verdict reaches markDead.  Drop
				// whatever queued up since the swap for the same reason — or
				// the non-empty batch keeps this loop retrying a broken
				// connection until the verdict lands.
				p.dead = true
				p.batch = p.batch[:0]
				p.frames, p.counted = 0, 0
			} else {
				p.err = werr
				tr.lost.Add(uint64(counted))
			}
		} else if p.spare == nil && cap(buf) <= 4*tr.cfg.BatchBytes {
			p.spare = buf[:0] // keep modest buffers; let outliers be collected
		}
		p.cond.Broadcast() // wake Flush/Unbatched waiters (and error out senders)
		p.mu.Unlock()
	}
}

// flush blocks until every frame enqueued on this peer before the call has
// been handed to the kernel (or the lane has failed).
func (p *peer) flush() {
	p.mu.Lock()
	p.flushReq = true
	p.cond.Broadcast()
	for (len(p.batch) > 0 || p.writing) && p.err == nil {
		p.cond.Wait()
	}
	p.mu.Unlock()
}

// transport is the TCP implementation of core.Transport: frames for a
// cluster hosted elsewhere are appended to the owning peer's batch; inbound
// frames are pumped into the local VM by the per-peer reader/deliver
// pipeline in node.go.
type transport struct {
	nodeID int
	topo   Topology
	cfg    WireConfig

	// reg is the node's observability registry (never nil) plus the
	// resolved batch/credit instruments.
	reg           *obs.Registry
	batchWrite    *obs.Histogram // node.batch.write.ns: one batch's write syscall
	batchFrames   *obs.Histogram // node.batch.frames: frames coalesced per batch
	batchBytes    *obs.Histogram // node.batch.bytes: bytes per batch
	creditStallNS *obs.Histogram // node.credit.stall.ns: sender wait for credits
	creditStalls  *obs.Counter   // node.credit.stalls
	creditsTx     *obs.Counter   // node.credit.grants.tx
	creditsRx     *obs.Counter   // node.credit.grants.rx

	mu    sync.Mutex
	peers map[int]*peer // node id -> outbound connection

	writers sync.WaitGroup

	// sent and recv count wire frames (messages, broadcasts, initiate
	// replies) for the shutdown drain's global quiescence check; sent is
	// bumped at batch handoff (enqueue), recv at VM delivery.  lost counts
	// sent frames that a failed or closed lane can never deliver, so a
	// partial broadcast failure cannot wedge the drain's balance.
	sent atomic.Uint64
	recv atomic.Uint64
	lost atomic.Uint64

	// HA retention state.  haRetain is set once, before any traffic, when the
	// node runs with fault tolerance on.  routeMu orders sends against a
	// rebalance: Send/SendReply hold it shared across route-and-enqueue, the
	// rebalance holds it exclusively across replay-and-retarget, so every
	// frame replayed to a buddy lands on the buddy's lane BEFORE any newly
	// routed frame — the ordering the receiver's admission floors assume.
	// reroute maps a dead node to the node that adopted its clusters
	// (consulted by ownerOf, guarded by routeMu).  pendInit indexes retained
	// initiate-request frames by ReplyID so the observed reply can annotate
	// them with the assigned taskid.  recvFrom counts delivered counted
	// frames per source lane: the drain balance sums only live sources, and
	// the pre-checkpoint snapshot of these counters is what checkpoint marks
	// carry.
	haRetain bool
	routeMu  sync.RWMutex
	reroute  map[int]int
	pendMu   sync.Mutex
	pendInit map[uint64]*retFrame
	recvFrom []atomic.Uint64

	vm atomic.Pointer[core.VM] // bound after the VM is booted
}

func newTransport(nodeID int, topo Topology, reg *obs.Registry, cfg WireConfig) *transport {
	return &transport{
		nodeID:        nodeID,
		topo:          topo,
		cfg:           cfg.withDefaults(),
		reg:           reg,
		batchWrite:    reg.Histogram("node.batch.write.ns", "ns"),
		batchFrames:   reg.Histogram("node.batch.frames", "n"),
		batchBytes:    reg.Histogram("node.batch.bytes", "B"),
		creditStallNS: reg.Histogram("node.credit.stall.ns", "ns"),
		creditStalls:  reg.Counter("node.credit.stalls"),
		creditsTx:     reg.Counter("node.credit.grants.tx"),
		creditsRx:     reg.Counter("node.credit.grants.rx"),
		peers:         make(map[int]*peer),
		recvFrom:      make([]atomic.Uint64, topo.Nodes),
	}
}

func (tr *transport) bind(vm *core.VM) { tr.vm.Store(vm) }

func (tr *transport) addPeer(id int, conn net.Conn) {
	p := &peer{
		id: id, conn: conn,
		credits:  tr.cfg.CreditWindow,
		txFrames: tr.reg.Counter(fmt.Sprintf("node.tx.n%d->n%d.frames", tr.nodeID, id)),
		txBytes:  tr.reg.Counter(fmt.Sprintf("node.tx.n%d->n%d.bytes", tr.nodeID, id)),
	}
	p.cond = sync.NewCond(&p.mu)
	tr.mu.Lock()
	tr.peers[id] = p
	tr.mu.Unlock()
	tr.writers.Add(1)
	go p.writeLoop(tr)
}

func (tr *transport) peerFor(node int) (*peer, error) {
	tr.mu.Lock()
	p := tr.peers[node]
	tr.mu.Unlock()
	if p == nil {
		return nil, fmt.Errorf("node %d: no connection to node %d", tr.nodeID, node)
	}
	return p, nil
}

// allPeers snapshots the peer set in node-id order.
func (tr *transport) allPeers() []*peer {
	tr.mu.Lock()
	out := make([]*peer, 0, len(tr.peers))
	for _, p := range tr.peers {
		out = append(out, p)
	}
	tr.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].id < out[j].id })
	return out
}

// ownerOf maps a destination cluster to its hosting node, following the
// adoption chain when earlier owners have died.  In HA mode the caller must
// hold routeMu (shared suffices).
func (tr *transport) ownerOf(cluster int) (int, error) {
	n, ok := tr.topo.NodeOf(cluster)
	if !ok {
		return 0, fmt.Errorf("node %d: cluster %d is not in the topology", tr.nodeID, cluster)
	}
	for i := 0; i < len(tr.reroute); i++ {
		next, ok := tr.reroute[n]
		if !ok {
			break
		}
		n = next
	}
	return n, nil
}

// Send implements core.Transport: the frame is encoded straight into the
// owning peer's open batch — or, for a machine-wide broadcast, into every
// peer's.  A peer whose lane already failed contributes the first error but
// does not stop the remaining peers from getting their copy, and only the
// copies actually handed to a live lane are counted sent, so a partial
// broadcast failure leaves the drain protocol's books balanced.
func (tr *transport) Send(f *core.WireFrame) error {
	enc := func(batch []byte) []byte { return encodeWireFrame(batch, f) }
	tr.routeMu.RLock()
	defer tr.routeMu.RUnlock()
	if f.Kind == core.FrameBroadcast && f.Dst == 0 {
		var firstErr error
		for _, p := range tr.allPeers() {
			if err := p.enqueue(tr, true, true, 0, enc); err != nil && firstErr == nil {
				firstErr = err
			}
		}
		return firstErr
	}
	owner, err := tr.ownerOf(f.Dst)
	if err != nil {
		return err
	}
	if owner == tr.nodeID {
		if tr.haRetain {
			// This node adopted the destination cluster while the sender's
			// routing decision was in flight: deliver locally.  Neither side
			// of the drain balance counts a local delivery.
			if vm := tr.vm.Load(); vm != nil {
				return vm.DeliverWire(f)
			}
		}
		// The core only routes remotely for non-hosted clusters, so this is
		// a topology/hosting disagreement worth failing loudly on.
		return fmt.Errorf("node %d: frame for cluster %d routed remotely but hosted here", tr.nodeID, f.Dst)
	}
	p, err := tr.peerFor(owner)
	if err != nil {
		return err
	}
	return p.enqueue(tr, true, true, f.ReplyID, enc)
}

// SendReply carries a routed-initiate reply back to the node hosting the
// requesting cluster.  Replies are counted in the drain balance but not
// credited: they ride the control channel so a reply can never deadlock
// against the data window it would unblock.
func (tr *transport) SendReply(dst int, replyID uint64, id core.TaskID) error {
	tr.routeMu.RLock()
	defer tr.routeMu.RUnlock()
	owner, err := tr.ownerOf(dst)
	if err != nil {
		return err
	}
	if owner == tr.nodeID {
		if vm := tr.vm.Load(); vm != nil {
			vm.DeliverWireReply(replyID, id)
			return nil
		}
		return fmt.Errorf("node %d: reply for local cluster %d before the VM is bound", tr.nodeID, dst)
	}
	p, err := tr.peerFor(owner)
	if err != nil {
		return err
	}
	return p.enqueue(tr, false, true, 0, func(batch []byte) []byte {
		return encodeInitReply(batch, replyID, id)
	})
}

// sendControl enqueues one protocol control frame (drain, drain ack,
// shutdown, credit grant) on the given peer: uncredited and outside the
// drain balance.
func (tr *transport) sendControl(node int, payload []byte) error {
	p, err := tr.peerFor(node)
	if err != nil {
		return err
	}
	return p.enqueue(tr, false, false, 0, func(batch []byte) []byte {
		return append(batch, payload...)
	})
}

// grantCredits returns n delivered-frame credits to the peer; called from
// the node's delivery stage as frames land in the VM.
func (tr *transport) grantCredits(node int, n int) {
	if n <= 0 || tr.cfg.CreditWindow <= 0 {
		return
	}
	if err := tr.sendControl(node, encodeCredit(uint32(n))); err == nil && tr.reg.Has(obs.Metrics) {
		tr.creditsTx.Inc()
	}
}

// addCredits applies an inbound credit grant from the peer and wakes any
// sender stalled on the window.
func (tr *transport) addCredits(node int, n uint32) {
	p, err := tr.peerFor(node)
	if err != nil {
		return
	}
	p.mu.Lock()
	p.credits += int(n)
	p.cond.Broadcast()
	p.mu.Unlock()
	if tr.reg.Has(obs.Metrics) {
		tr.creditsRx.Inc()
	}
}

// Flush implements core.Transport: it blocks until every frame accepted
// before the call has been handed to the kernel.  With batching this is a
// real wait (an open batch may still be lingering), which is what keeps the
// VM's shutdown and user-output flushes honest.
func (tr *transport) Flush() {
	for _, p := range tr.allPeers() {
		p.flush()
	}
}

// Close stops the writers and tears the peer connections down.  Closing the
// connections first unblocks any writer stuck in a syscall against a dead
// peer; the writers then drain or discard what is left and exit.
func (tr *transport) Close() error {
	peers := tr.allPeers()
	for _, p := range peers {
		p.mu.Lock()
		p.closed = true
		p.cond.Broadcast()
		p.mu.Unlock()
	}
	var firstErr error
	for _, p := range peers {
		if err := p.conn.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	tr.writers.Wait()
	return firstErr
}

// counts returns the frames handed to live lanes and received so far (drain
// protocol).  Frames a failed lane accepted but can never deliver are
// subtracted from sent: the receiver will never count them, and a constant
// phantom imbalance would otherwise hang every later drain round.  In HA
// mode, frames received FROM a node that has since died are likewise
// subtracted from recv — their sender's sent counter vanished with it, and
// the adopting buddy's replayed regeneration is what re-balances the books.
func (tr *transport) counts() (sent, recv uint64) {
	recv = tr.recv.Load()
	if tr.haRetain {
		for _, p := range tr.allPeers() {
			p.mu.Lock()
			dead := p.dead
			p.mu.Unlock()
			if dead && p.id >= 0 && p.id < len(tr.recvFrom) {
				recv -= tr.recvFrom[p.id].Load()
			}
		}
	}
	return tr.sent.Load() - tr.lost.Load(), recv
}
