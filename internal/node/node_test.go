package node_test

import (
	"bytes"
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/config"
	"repro/internal/conformance"
	"repro/internal/core"
	"repro/internal/node"
	"repro/internal/obs"
	"repro/internal/pfi"
)

// corpusSource fetches one embedded conformance program.
func corpusSource(t testing.TB, name string) string {
	t.Helper()
	_, srcs := conformance.Corpus()
	src, ok := srcs[name]
	if !ok {
		t.Fatalf("corpus program %q not found", name)
	}
	return src
}

// singleProcessOutput runs the program on one full VM, the reference the
// distributed run must match byte for byte.
func singleProcessOutput(t testing.TB, cfg *config.Configuration, src string) string {
	t.Helper()
	var out bytes.Buffer
	vm, err := core.NewVM(cfg, core.Options{UserOutput: &out, AcceptTimeout: 30 * time.Second})
	if err != nil {
		t.Fatalf("reference vm: %v", err)
	}
	prog, err := pfi.Compile(src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	runErr := prog.Run(vm, pfi.Options{})
	vm.Shutdown()
	if runErr != nil {
		t.Fatalf("reference run: %v", runErr)
	}
	return out.String()
}

// startMesh boots an n-node mesh in-process over loopback TCP and returns
// the nodes, node 0 first.  Listeners are bound up front so no port races.
func startMesh(t testing.TB, nodes int, cfg *config.Configuration, src string, out *bytes.Buffer, register func(*core.VM), mutate ...func(i int, o *node.Options)) []*node.Node {
	t.Helper()
	listeners := make([]net.Listener, nodes)
	addrs := make([]string, nodes)
	for i := range listeners {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatalf("listen: %v", err)
		}
		listeners[i] = ln
		addrs[i] = ln.Addr().String()
	}
	started := make([]*node.Node, nodes)
	errs := make([]error, nodes)
	var wg sync.WaitGroup
	for i := 0; i < nodes; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			o := node.Options{
				NodeID: i, Addrs: addrs, Listener: listeners[i],
				Config: cfg, Source: src, Register: register,
				AcceptTimeout:  30 * time.Second,
				ConnectTimeout: 20 * time.Second,
			}
			if i == 0 && out != nil {
				o.Out = out
			}
			for _, m := range mutate {
				m(i, &o)
			}
			started[i], errs[i] = node.Start(o)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("node %d: %v", i, err)
		}
	}
	t.Cleanup(func() {
		for _, n := range started {
			if n != nil {
				_ = n.Close()
			}
		}
	})
	return started
}

// runDistributed drives a mesh to completion: followers serve, node 0 runs
// the program and coordinates shutdown.
func runDistributed(t testing.TB, nodes []*node.Node) {
	t.Helper()
	var wg sync.WaitGroup
	for _, f := range nodes[1:] {
		wg.Add(1)
		go func(f *node.Node) {
			defer wg.Done()
			if err := f.ServeUntilShutdown(); err != nil {
				t.Errorf("follower: %v", err)
			}
		}(f)
	}
	if err := nodes[0].RunMain(); err != nil {
		t.Errorf("run: %v", err)
	}
	if err := nodes[0].Close(); err != nil {
		t.Errorf("close: %v", err)
	}
	wg.Wait()
}

// TestPartition pins the contiguous assignment and its edge cases.
func TestPartition(t *testing.T) {
	topo, err := node.Partition([]int{1, 2, 3, 4, 5}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if got := fmt.Sprint(topo.Clusters(0)); got != "[1 2 3]" {
		t.Fatalf("node 0 clusters %s", got)
	}
	if got := fmt.Sprint(topo.Clusters(1)); got != "[4 5]" {
		t.Fatalf("node 1 clusters %s", got)
	}
	if owner, _ := topo.NodeOf(4); owner != 1 {
		t.Fatalf("cluster 4 owner %d", owner)
	}
	if _, err := node.Partition([]int{1}, 2); err == nil {
		t.Fatal("2 nodes for 1 cluster must fail")
	}
}

// TestCrossClusterDistributedMatchesSingleProcess is the tentpole
// acceptance: crosscluster.pf (taskid, window, and array arguments crossing
// clusters) over two real OS-level TCP connections produces byte-identical
// user output to the single-process run.
func TestCrossClusterDistributedMatchesSingleProcess(t *testing.T) {
	src := corpusSource(t, "crosscluster.pf")
	cfg := config.Simple(2, 4)
	want := singleProcessOutput(t, cfg, src)
	if !strings.Contains(want, "ARRAY SUM") {
		t.Fatalf("reference output unexpected:\n%s", want)
	}

	var out bytes.Buffer
	nodes := startMesh(t, 2, cfg, src, &out, nil)
	runDistributed(t, nodes)
	if got := out.String(); got != want {
		t.Fatalf("distributed output differs:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestSumsqDistributedMatchesSingleProcess covers the second acceptance
// program: INITIATE fan-out with ANY placement, message totalling, and a
// force region on the coordinator's cluster.
func TestSumsqDistributedMatchesSingleProcess(t *testing.T) {
	src := corpusSource(t, "fanin.pf")
	cfg := config.Simple(2, 4)
	want := singleProcessOutput(t, cfg, src)

	var out bytes.Buffer
	nodes := startMesh(t, 2, cfg, src, &out, nil)
	runDistributed(t, nodes)
	if got := out.String(); got != want {
		t.Fatalf("distributed output differs:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestThreeNodeMesh runs a corpus program across three nodes so frames
// cross more than one peer connection.
func TestThreeNodeMesh(t *testing.T) {
	src := corpusSource(t, "placement.pf")
	cfg := config.Simple(3, 4)
	want := singleProcessOutput(t, cfg, src)

	var out bytes.Buffer
	nodes := startMesh(t, 3, cfg, src, &out, nil)
	runDistributed(t, nodes)
	if got := out.String(); got != want {
		t.Fatalf("distributed output differs:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestStrayConnectionDoesNotBlockMesh: a connection that is not a peer (a
// port scanner, a health probe) must not consume the accept slot a real
// peer needs — the mesh must still form.
func TestStrayConnectionDoesNotBlockMesh(t *testing.T) {
	src := corpusSource(t, "fanin.pf")
	cfg := config.Simple(2, 4)
	want := singleProcessOutput(t, cfg, src)

	listeners := make([]net.Listener, 2)
	addrs := make([]string, 2)
	for i := range listeners {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		listeners[i] = ln
		addrs[i] = ln.Addr().String()
	}
	// The stray connections arrive before node 1 even starts dialing: one
	// that immediately closes and one that sends garbage.
	for _, addr := range addrs {
		c1, err := net.Dial("tcp", addr)
		if err != nil {
			t.Fatal(err)
		}
		_ = c1.Close()
		c2, err := net.Dial("tcp", addr)
		if err != nil {
			t.Fatal(err)
		}
		_, _ = c2.Write([]byte("GET / HTTP/1.0\r\n\r\n"))
		defer c2.Close()
	}

	var out bytes.Buffer
	started := make([]*node.Node, 2)
	errs := make([]error, 2)
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			o := node.Options{
				NodeID: i, Addrs: addrs, Listener: listeners[i],
				Config: cfg, Source: src,
				AcceptTimeout: 30 * time.Second, ConnectTimeout: 20 * time.Second,
			}
			if i == 0 {
				o.Out = &out
			}
			started[i], errs[i] = node.Start(o)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("node %d failed to join past the stray connections: %v", i, err)
		}
	}
	t.Cleanup(func() {
		for _, n := range started {
			_ = n.Close()
		}
	})
	runDistributed(t, started)
	if got := out.String(); got != want {
		t.Fatalf("output differs:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestDistributedMetricsAggregation: with metrics enabled on every node, the
// followers piggyback their metric snapshots on drain acks, so after Close
// the coordinator can merge one cluster-wide view that includes both ends of
// every wire lane.
func TestDistributedMetricsAggregation(t *testing.T) {
	src := corpusSource(t, "fanin.pf")
	cfg := config.Simple(2, 4)

	regs := make([]*obs.Registry, 2)
	for i := range regs {
		regs[i] = obs.New()
		regs[i].Enable(obs.Metrics | obs.Spans)
	}
	var out bytes.Buffer
	nodes := startMesh(t, 2, cfg, src, &out, nil, func(i int, o *node.Options) {
		o.Metrics = regs[i]
	})
	runDistributed(t, nodes)

	snaps := nodes[0].FollowerSnapshots()
	follower, ok := snaps[1]
	if !ok {
		t.Fatalf("no snapshot from node 1 after drain; have %v", snaps)
	}
	counterOf := func(s *obs.Snapshot, name string) int64 {
		for _, c := range s.Counters {
			if c.Name == name {
				return c.Value
			}
		}
		return -1
	}
	if v := counterOf(follower, "node.tx.n1->n0.frames"); v <= 0 {
		t.Fatalf("follower snapshot node.tx.n1->n0.frames = %d, want > 0", v)
	}
	merged := regs[0].Snapshot()
	for _, s := range snaps {
		merged.Merge(s)
	}
	// Both endpoints of the n0<->n1 lane must be visible in the merged view,
	// and the receiver-side frame count must match the sender's.
	for _, name := range []string{
		"node.tx.n0->n1.frames", "node.rx.n0->n1.frames",
		"node.tx.n1->n0.frames", "node.rx.n1->n0.frames",
	} {
		if v := counterOf(merged, name); v <= 0 {
			t.Fatalf("merged snapshot %s = %d, want > 0", name, v)
		}
	}
	// The follower snapshots at drain-ack time, so frames the coordinator
	// sends afterwards (the shutdown order) are on tx but not yet on the
	// follower's rx: the receiver count trails the sender's, never leads it.
	if tx, rx := counterOf(merged, "node.tx.n0->n1.bytes"), counterOf(merged, "node.rx.n0->n1.bytes"); rx <= 0 || rx > tx {
		t.Fatalf("lane n0->n1 byte counts inconsistent: tx %d, rx %d", tx, rx)
	}
	spans, _ := regs[0].Spans()
	lanes := make(map[string]bool, len(spans))
	for _, s := range spans {
		lanes[s.Lane] = true
	}
	if !lanes["node/0 mesh"] || !lanes["node/0 drain"] {
		t.Fatalf("coordinator span lanes missing mesh/drain: %v", lanes)
	}
}

// TestFingerprintMismatchRefused: a node running different source must be
// refused during the handshake, not mis-deliver frames later.
func TestFingerprintMismatchRefused(t *testing.T) {
	cfg := config.Simple(2, 4)
	lnA, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	lnB, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addrs := []string{lnA.Addr().String(), lnB.Addr().String()}
	srcA := corpusSource(t, "fanin.pf")
	srcB := corpusSource(t, "placement.pf")

	results := make(chan error, 2)
	go func() {
		n, err := node.Start(node.Options{NodeID: 0, Addrs: addrs, Listener: lnA, Config: cfg, Source: srcA, ConnectTimeout: 3 * time.Second})
		if n != nil {
			_ = n.Close()
		}
		results <- err
	}()
	go func() {
		n, err := node.Start(node.Options{NodeID: 1, Addrs: addrs, Listener: lnB, Config: cfg, Source: srcB, ConnectTimeout: 3 * time.Second})
		if n != nil {
			_ = n.Close()
		}
		results <- err
	}()
	failures := 0
	for i := 0; i < 2; i++ {
		// Either side may report the mismatch itself, see the refusing peer
		// close the connection (EOF), or time out waiting for a valid peer.
		if err := <-results; err != nil {
			failures++
		}
	}
	if failures == 0 {
		t.Fatal("mismatched fingerprints formed a mesh")
	}
}
