package node

import (
	"sync"
	"time"
)

// detector is the per-node failure detector: a peer that has not been heard
// from for suspicionAfter is declared dead.  "Heard from" means any inbound
// frame on the peer's lane — data, credit, drain, or heartbeat — so a busy
// peer never needs to compete with its own payload traffic to stay alive;
// the dedicated heartbeat only matters for peers that would otherwise be
// silent.
//
// The clock is injected.  Under the deterministic backend the node passes
// the registry's virtual clock, so suspicion timeouts replay exactly like
// every other timer; the wall clock is used only in real multi-process runs.
//
// Death is final: once a peer is declared dead it stays dead even if frames
// from it arrive later (a TCP segment can outlive the verdict).  Recovery
// reassigns the dead node's clusters rather than readmitting the node, so
// resurrection would split ownership.
// Default HA timing.  The suspicion timeout clears one heartbeat interval
// plus DefaultFaultProfile().MaxDelay() (112ms) with a ~2x margin, so even a
// peer whose every heartbeat is maximally delayed and retransmitted is never
// falsely suspected (verified by TestDetectorNoFalsePositiveUnderMaxLatency).
const (
	defaultHeartbeatInterval = 25 * time.Millisecond
	defaultSuspicionAfter    = 10 * defaultHeartbeatInterval
)

type detector struct {
	mu       sync.Mutex
	now      func() time.Time
	after    time.Duration
	lastSeen map[int]time.Time
	dead     map[int]bool
	self     int
}

func newDetector(self int, peers []int, after time.Duration, now func() time.Time) *detector {
	d := &detector{
		now:      now,
		after:    after,
		lastSeen: make(map[int]time.Time, len(peers)),
		dead:     make(map[int]bool, len(peers)),
		self:     self,
	}
	start := now()
	for _, p := range peers {
		if p != self {
			d.lastSeen[p] = start
		}
	}
	return d
}

// Heard records a sign of life from peer.  Frames from already-dead peers do
// not resurrect them.
func (d *detector) Heard(peer int) {
	d.mu.Lock()
	if _, tracked := d.lastSeen[peer]; tracked && !d.dead[peer] {
		d.lastSeen[peer] = d.now()
	}
	d.mu.Unlock()
}

// Check sweeps the suspicion timeout and returns the peers that crossed it
// since the last sweep, in ascending id order for determinism.  Peers
// already marked dead (by Check or MarkDead) are not reported again.
func (d *detector) Check() []int {
	d.mu.Lock()
	defer d.mu.Unlock()
	cutoff := d.now().Add(-d.after)
	var newly []int
	for peer, seen := range d.lastSeen {
		if !d.dead[peer] && !seen.After(cutoff) {
			d.dead[peer] = true
			newly = append(newly, peer)
		}
	}
	sortInts(newly)
	return newly
}

// MarkDead records an externally decided death (a rebalance verdict from the
// leader, or a hard connection error) so Check never re-reports it.
func (d *detector) MarkDead(peer int) {
	d.mu.Lock()
	if _, tracked := d.lastSeen[peer]; tracked {
		d.dead[peer] = true
	}
	d.mu.Unlock()
}

// Dead reports whether peer has been declared dead.
func (d *detector) Dead(peer int) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.dead[peer]
}

// Alive returns the live membership including self, ascending.  The lowest
// id in this set is the rebalance leader.
func (d *detector) Alive() []int {
	d.mu.Lock()
	defer d.mu.Unlock()
	live := []int{d.self}
	for peer := range d.lastSeen {
		if !d.dead[peer] {
			live = append(live, peer)
		}
	}
	sortInts(live)
	return live
}

func sortInts(s []int) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
