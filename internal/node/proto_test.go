package node

import (
	"testing"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/msgcodec"
)

// TestWireFrameRoundTrip pins the frame layout: every header field and the
// payload survive encode/decode for both frame kinds.
func TestWireFrameRoundTrip(t *testing.T) {
	payload, err := msgcodec.Encode([]msgcodec.Arg{msgcodec.Int(42), msgcodec.Str("hi")})
	if err != nil {
		t.Fatal(err)
	}
	frames := []*core.WireFrame{
		{
			Kind: core.FrameMessage, Src: 1, Dst: 2,
			Dest:   core.TaskID{Cluster: 2, Slot: 3, Unique: 17},
			Sender: core.TaskID{Cluster: 1, Slot: 1, Unique: 9},
			Type:   "pisces.initiate", Seq: 7, ReplyID: 123,
			Payload: payload,
		},
		{
			Kind: core.FrameBroadcast, Src: 2, Dst: 0,
			Sender: core.TaskID{Cluster: 2, Slot: 4, Unique: 5},
			Type:   "ping", Seq: 99,
			Payload: payload,
		},
	}
	for _, f := range frames {
		buf := encodeWireFrame(nil, f)
		got, err := decodeWireFrame(buf[0], buf[1:])
		if err != nil {
			t.Fatalf("%v: decode: %v", f.Kind, err)
		}
		if got.Kind != f.Kind || got.Src != f.Src || got.Dst != f.Dst ||
			got.Dest != f.Dest || got.Sender != f.Sender ||
			got.Type != f.Type || got.Seq != f.Seq || got.ReplyID != f.ReplyID {
			t.Fatalf("header mismatch:\ngot  %+v\nwant %+v", got, f)
		}
		if string(got.Payload) != string(f.Payload) {
			t.Fatalf("payload mismatch")
		}
	}
}

// TestProtoRejectsTruncation: every decoder must fail cleanly (no panic, no
// garbage) on every prefix of a valid frame — a peer can die mid-write.
func TestProtoRejectsTruncation(t *testing.T) {
	full := encodeWireFrame(nil, &core.WireFrame{
		Kind: core.FrameMessage, Src: 1, Dst: 2,
		Dest: core.TaskID{Cluster: 2}, Sender: core.TaskID{Cluster: 1},
		Type: "t", Seq: 1, Payload: []byte{0, 0},
	})
	for n := 1; n < len(full)-2; n++ {
		if _, err := decodeWireFrame(full[0], full[1:n]); err == nil {
			t.Fatalf("truncated frame of %d bytes decoded", n)
		}
	}
	h := encodeHello(hello{version: protoVersion, nodeID: 1, topo: mustPartition(t, []int{1, 2}, 2)})
	for n := 1; n < len(h)-1; n++ {
		if _, err := decodeHello(h[1:n]); err == nil {
			t.Fatalf("truncated hello of %d bytes decoded", n)
		}
	}
	if _, _, err := decodeInitReply(nil); err == nil {
		t.Fatal("empty initiate reply decoded")
	}
	// A forged topology count must be rejected by comparing against the
	// bytes actually present, BEFORE sizing any allocation: the handshake
	// runs pre-authentication, so this is the same attack surface as an
	// oversized frame length prefix.
	forged := appendU32(appendU32(nil, 2), 0xFFFF_FFF0)
	if _, _, err := decodeTopology(forged); err == nil {
		t.Fatal("forged topology count decoded")
	}
	if _, err := decodeDrainAck([]byte{1, 2}); err == nil {
		t.Fatal("truncated drain ack decoded")
	}
}

func mustPartition(t *testing.T, clusters []int, nodes int) Topology {
	t.Helper()
	topo, err := Partition(clusters, nodes)
	if err != nil {
		t.Fatal(err)
	}
	return topo
}

// TestFingerprintSensitivity: any of configuration, topology, or program
// changing must change the handshake fingerprint.
func TestFingerprintSensitivity(t *testing.T) {
	cfgA := config.Simple(2, 4)
	cfgB := config.Simple(2, 5)
	topo2 := mustPartition(t, []int{1, 2}, 2)
	topo1 := mustPartition(t, []int{1, 2}, 1)
	base := Fingerprint(cfgA, topo2, "src")
	if Fingerprint(cfgB, topo2, "src") == base {
		t.Error("configuration change kept the fingerprint")
	}
	if Fingerprint(cfgA, topo1, "src") == base {
		t.Error("topology change kept the fingerprint")
	}
	if Fingerprint(cfgA, topo2, "other") == base {
		t.Error("program change kept the fingerprint")
	}
}
