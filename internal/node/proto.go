package node

import (
	"encoding/binary"
	"fmt"

	"repro/internal/core"
)

// Node wire protocol: every TCP frame is a length-prefixed payload
// (msgcodec.WriteFrame/ReadFrame) whose first byte selects one of the frame
// types below.  Message bodies are the same msgcodec argument encoding the
// in-process routers move between heap shards; the surrounding fields are
// the run-time header that travels alongside the packets.
//
// Integers are big-endian; strings carry a u16 length.  The protocol is
// deliberately positional and versioned through the handshake fingerprint:
// two nodes built from different sources refuse each other at fHello.

// Version 3 added the fCredit control frame (credit-based flow control for
// the batched wire path).  Version 4 is the fault-tolerance revision: fMsg
// and fBcast carry the sender's HA send sequence number (duplicate
// suppression across a recovery replay breaks silently without it, so the
// field is unconditional), and the 0x09–0x0e control frames implement
// heartbeats, buddy checkpoint streaming, and partition rebalancing.
// Version 5 is the causal-tracing revision: fMsg and fBcast carry the
// sender's 64-bit causal edge id, and drain acks piggyback the follower's
// span/flow trace blob next to the metric snapshot so the coordinator can
// merge a cross-node Chrome trace.  An older peer would mis-parse every data
// frame, so the handshake refuses the mix.
const protoVersion = 5

// Frame type bytes.
const (
	fHello          = 0x01 // handshake: version, node id, fingerprint, topology
	fMsg            = 0x02 // routed message (core.FrameMessage)
	fBcast          = 0x03 // broadcast fan-out (core.FrameBroadcast)
	fInitReply      = 0x04 // reply to a routed initiate request
	fDrain          = 0x05 // coordinator -> follower: report quiescence
	fDrainAck       = 0x06 // follower -> coordinator: idle flag + frame counts
	fShutdown       = 0x07 // coordinator -> follower: shut the VM down and exit
	fCredit         = 0x08 // receiver -> sender: delivered-frame credits for this lane
	fHeartbeat      = 0x09 // uncredited liveness beacon, sent every heartbeat interval
	fCkpt           = 0x0a // node -> buddy: checkpoint blob of the sender's clusters
	fCkptAck        = 0x0b // buddy -> node: the checkpoint epoch is safely held
	fCkptMark       = 0x0c // node -> every peer: delivered-frame high-water mark; drop retention below it
	fRebalance      = 0x0d // leader -> everyone: a node is dead, its buddy takes over
	fRebalanceReady = 0x0e // buddy -> everyone: the partition is restored; retarget and replay
	fRestorePlan    = 0x0f // replayer -> buddy: re-create this initiate's task under its old id
)

var errProto = fmt.Errorf("node: malformed protocol frame")

func appendU32(b []byte, v uint32) []byte { return binary.BigEndian.AppendUint32(b, v) }
func appendU64(b []byte, v uint64) []byte { return binary.BigEndian.AppendUint64(b, v) }

func appendString(b []byte, s string) []byte {
	b = binary.BigEndian.AppendUint16(b, uint16(len(s)))
	return append(b, s...)
}

func appendTaskID(b []byte, t core.TaskID) []byte {
	b = appendU32(b, uint32(int32(t.Cluster)))
	b = appendU32(b, uint32(int32(t.Slot)))
	return appendU32(b, uint32(int32(t.Unique)))
}

func takeU32(b []byte) (uint32, []byte, error) {
	if len(b) < 4 {
		return 0, nil, errProto
	}
	return binary.BigEndian.Uint32(b), b[4:], nil
}

func takeU64(b []byte) (uint64, []byte, error) {
	if len(b) < 8 {
		return 0, nil, errProto
	}
	return binary.BigEndian.Uint64(b), b[8:], nil
}

func takeString(b []byte) (string, []byte, error) {
	if len(b) < 2 {
		return "", nil, errProto
	}
	n := int(binary.BigEndian.Uint16(b))
	b = b[2:]
	if len(b) < n {
		return "", nil, errProto
	}
	return string(b[:n]), b[n:], nil
}

func takeTaskID(b []byte) (core.TaskID, []byte, error) {
	var t core.TaskID
	var v uint32
	var err error
	if v, b, err = takeU32(b); err != nil {
		return t, nil, err
	}
	t.Cluster = int(int32(v))
	if v, b, err = takeU32(b); err != nil {
		return t, nil, err
	}
	t.Slot = int(int32(v))
	if v, b, err = takeU32(b); err != nil {
		return t, nil, err
	}
	t.Unique = int(int32(v))
	return t, b, nil
}

// hello is the handshake payload.
type hello struct {
	version     int
	nodeID      int
	fingerprint [32]byte
	topo        Topology
}

func encodeHello(h hello) []byte {
	b := []byte{fHello}
	b = appendU32(b, uint32(h.version))
	b = appendU32(b, uint32(h.nodeID))
	b = append(b, h.fingerprint[:]...)
	return h.topo.appendTo(b)
}

func decodeHello(b []byte) (hello, error) {
	var h hello
	var v uint32
	var err error
	if v, b, err = takeU32(b); err != nil {
		return h, err
	}
	h.version = int(v)
	if v, b, err = takeU32(b); err != nil {
		return h, err
	}
	h.nodeID = int(v)
	if len(b) < len(h.fingerprint) {
		return h, errProto
	}
	copy(h.fingerprint[:], b)
	b = b[len(h.fingerprint):]
	if h.topo, b, err = decodeTopology(b); err != nil {
		return h, err
	}
	if len(b) != 0 {
		return h, errProto
	}
	return h, nil
}

// encodeWireFrame serialises a core frame (fMsg or fBcast) into buf.
func encodeWireFrame(buf []byte, f *core.WireFrame) []byte {
	switch f.Kind {
	case core.FrameBroadcast:
		buf = append(buf, fBcast)
		buf = appendU32(buf, uint32(f.Src))
		buf = appendU32(buf, uint32(f.Dst))
		buf = appendTaskID(buf, f.Sender)
		buf = appendU64(buf, f.Seq)
		buf = appendU64(buf, f.SendSeq)
		buf = appendU64(buf, f.Edge)
	default:
		buf = append(buf, fMsg)
		buf = appendU32(buf, uint32(f.Src))
		buf = appendU32(buf, uint32(f.Dst))
		buf = appendTaskID(buf, f.Dest)
		buf = appendTaskID(buf, f.Sender)
		buf = appendU64(buf, f.Seq)
		buf = appendU64(buf, f.SendSeq)
		buf = appendU64(buf, f.ReplyID)
		buf = appendU64(buf, f.Edge)
	}
	buf = appendString(buf, f.Type)
	return append(buf, f.Payload...)
}

// decodeWireFrame reverses encodeWireFrame for the given frame type byte.
// The returned frame's Payload aliases b.
func decodeWireFrame(kind byte, b []byte) (*core.WireFrame, error) {
	f := &core.WireFrame{}
	if err := decodeWireFrameInto(f, kind, b); err != nil {
		return nil, err
	}
	return f, nil
}

// decodeWireFrameInto decodes into a caller-owned frame, so a delivery loop
// can reuse one header for its whole lifetime instead of allocating per
// frame (DeliverWire does not retain the frame).  f.Payload aliases b.
func decodeWireFrameInto(f *core.WireFrame, kind byte, b []byte) error {
	f.Dest, f.ReplyID = core.NilTask, 0
	var v uint32
	var err error
	if v, b, err = takeU32(b); err != nil {
		return err
	}
	f.Src = int(v)
	if v, b, err = takeU32(b); err != nil {
		return err
	}
	f.Dst = int(v)
	switch kind {
	case fBcast:
		f.Kind = core.FrameBroadcast
	case fMsg:
		f.Kind = core.FrameMessage
		if f.Dest, b, err = takeTaskID(b); err != nil {
			return err
		}
	default:
		return errProto
	}
	if f.Sender, b, err = takeTaskID(b); err != nil {
		return err
	}
	if f.Seq, b, err = takeU64(b); err != nil {
		return err
	}
	if f.SendSeq, b, err = takeU64(b); err != nil {
		return err
	}
	if kind == fMsg {
		if f.ReplyID, b, err = takeU64(b); err != nil {
			return err
		}
	}
	if f.Edge, b, err = takeU64(b); err != nil {
		return err
	}
	if f.Type, b, err = takeString(b); err != nil {
		return err
	}
	f.Payload = b
	return nil
}

func encodeInitReply(buf []byte, replyID uint64, id core.TaskID) []byte {
	buf = append(buf, fInitReply)
	buf = appendU64(buf, replyID)
	return appendTaskID(buf, id)
}

func decodeInitReply(b []byte) (uint64, core.TaskID, error) {
	replyID, b, err := takeU64(b)
	if err != nil {
		return 0, core.NilTask, err
	}
	id, b, err := takeTaskID(b)
	if err != nil {
		return 0, core.NilTask, err
	}
	if len(b) != 0 {
		return 0, core.NilTask, errProto
	}
	return replyID, id, nil
}

// encodeCredit builds a credit grant: the receiver returns n consumed
// credits to the sending peer after delivering that many credited data
// frames to its VM.  Credits ride the ordinary control-frame channel (the
// receiver's outbound peer connection) and are themselves uncredited, so a
// grant can never be blocked by the very window it replenishes.
func encodeCredit(n uint32) []byte { return appendU32([]byte{fCredit}, n) }

func decodeCredit(b []byte) (uint32, error) {
	n, b, err := takeU32(b)
	if err != nil || len(b) != 0 {
		return 0, errProto
	}
	return n, nil
}

// drainAck is a follower's answer to one drain round.  When the follower has
// metrics enabled it piggybacks its current metric snapshot (obs wire
// encoding) so the coordinator can merge a cluster-wide view without an extra
// protocol round; an empty blob means metrics are off.  Spans piggyback the
// same way: trace carries the follower's span/flow blob (obs.EncodeTrace) so
// the coordinator can write one merged Chrome trace with a process track per
// node; empty means spans are off.
type drainAck struct {
	from  int
	epoch uint32
	sent  uint64
	recv  uint64
	idle  bool
	stats []byte
	trace []byte
}

func encodeDrain(epoch uint32) []byte { return appendU32([]byte{fDrain}, epoch) }

func decodeDrain(b []byte) (uint32, error) {
	epoch, b, err := takeU32(b)
	if err != nil || len(b) != 0 {
		return 0, errProto
	}
	return epoch, nil
}

// --- fault-tolerance control frames (protocol v4) ---------------------------

// encodeHeartbeat builds the liveness beacon.  The lane already identifies
// the sender; the id travels anyway so a heartbeat is self-describing in a
// packet capture.
func encodeHeartbeat(from int) []byte { return appendU32([]byte{fHeartbeat}, uint32(from)) }

func decodeHeartbeat(b []byte) (int, error) {
	v, b, err := takeU32(b)
	if err != nil || len(b) != 0 {
		return 0, errProto
	}
	return int(int32(v)), nil
}

// encodeCkpt wraps one checkpoint blob for buddy streaming.  The blob bytes
// are the msgcodec checkpoint container produced by core.VM.Checkpoint; the
// node layer treats them as opaque.
func encodeCkpt(from int, epoch uint64, blob []byte) []byte {
	b := []byte{fCkpt}
	b = appendU32(b, uint32(from))
	b = appendU64(b, epoch)
	return append(b, blob...)
}

func decodeCkpt(b []byte) (from int, epoch uint64, blob []byte, err error) {
	var v uint32
	if v, b, err = takeU32(b); err != nil {
		return 0, 0, nil, err
	}
	if epoch, b, err = takeU64(b); err != nil {
		return 0, 0, nil, err
	}
	return int(int32(v)), epoch, b, nil
}

// encodeCkptAck acknowledges that the buddy holds the given checkpoint epoch.
// Retention marks are gated on this ack: a sender may only tell its peers to
// drop retained frames once the blob those frames' effects live in is safely
// held by the node that would replay them.
func encodeCkptAck(from int, epoch uint64) []byte {
	return appendU64(appendU32([]byte{fCkptAck}, uint32(from)), epoch)
}

func decodeCkptAck(b []byte) (int, uint64, error) {
	v, b, err := takeU32(b)
	if err != nil {
		return 0, 0, err
	}
	epoch, b, err := takeU64(b)
	if err != nil || len(b) != 0 {
		return 0, 0, errProto
	}
	return int(int32(v)), epoch, nil
}

// encodeCkptMark is the retention high-water mark: "my acked checkpoint
// covers the first `count` counted frames your lane delivered to me — drop
// them from retention".  Counts are per-lane and exact because both ends
// number counted frames in the lane's FIFO order.
func encodeCkptMark(from int, count uint64) []byte {
	return appendU64(appendU32([]byte{fCkptMark}, uint32(from)), count)
}

func decodeCkptMark(b []byte) (int, uint64, error) {
	v, b, err := takeU32(b)
	if err != nil {
		return 0, 0, err
	}
	count, b, err := takeU64(b)
	if err != nil || len(b) != 0 {
		return 0, 0, errProto
	}
	return int(int32(v)), count, nil
}

// encodeRebalance is the leader's verdict: node `dead` is gone and node
// `buddy` takes over its clusters.  encodeRebalanceReady is the buddy's
// all-clear with the same payload shape.
func encodeRebalance(kind byte, dead, buddy int) []byte {
	return appendU32(appendU32([]byte{kind}, uint32(dead)), uint32(buddy))
}

func decodeRebalance(b []byte) (dead, buddy int, err error) {
	var d, bd uint32
	if d, b, err = takeU32(b); err != nil {
		return 0, 0, err
	}
	if bd, b, err = takeU32(b); err != nil || len(b) != 0 {
		return 0, 0, errProto
	}
	return int(int32(d)), int(int32(bd)), nil
}

// encodeRestorePlan carries one initiate-identity plan ahead of a replayed
// request frame: the buddy's controller must re-create the (parent, seq)
// initiate under the recorded id, not a fresh one, or the id the parent
// already holds would dangle.  Travels on the same lane as the replayed
// frames, so FIFO delivers the plan first.
func encodeRestorePlan(cluster int, parent core.TaskID, seq uint64, id core.TaskID) []byte {
	b := appendU32([]byte{fRestorePlan}, uint32(int32(cluster)))
	b = appendTaskID(b, parent)
	b = appendU64(b, seq)
	return appendTaskID(b, id)
}

func decodeRestorePlan(b []byte) (cluster int, parent core.TaskID, seq uint64, id core.TaskID, err error) {
	var v uint32
	if v, b, err = takeU32(b); err != nil {
		return
	}
	cluster = int(int32(v))
	if parent, b, err = takeTaskID(b); err != nil {
		return
	}
	if seq, b, err = takeU64(b); err != nil {
		return
	}
	if id, b, err = takeTaskID(b); err != nil {
		return
	}
	if len(b) != 0 {
		err = errProto
	}
	return
}

// decodeDataFrameHeader peeks the routing header of a retained data frame
// (the payload bytes the transport kept, without the length prefix) so the
// rebalance path can rebuild initiate-plan information from the request
// frames themselves.  Returns the frame with Payload aliasing b.
func decodeDataFrameHeader(payload []byte) (*core.WireFrame, error) {
	if len(payload) == 0 {
		return nil, errProto
	}
	return decodeWireFrame(payload[0], payload[1:])
}

func encodeDrainAck(a drainAck) []byte {
	b := []byte{fDrainAck}
	b = appendU32(b, uint32(a.from))
	b = appendU32(b, a.epoch)
	b = appendU64(b, a.sent)
	b = appendU64(b, a.recv)
	if a.idle {
		b = append(b, 1)
	} else {
		b = append(b, 0)
	}
	b = appendU32(b, uint32(len(a.stats)))
	b = append(b, a.stats...)
	b = appendU32(b, uint32(len(a.trace)))
	return append(b, a.trace...)
}

func decodeDrainAck(b []byte) (drainAck, error) {
	var a drainAck
	var v uint32
	var err error
	if v, b, err = takeU32(b); err != nil {
		return a, err
	}
	a.from = int(v)
	if a.epoch, b, err = takeU32(b); err != nil {
		return a, err
	}
	if a.sent, b, err = takeU64(b); err != nil {
		return a, err
	}
	if a.recv, b, err = takeU64(b); err != nil {
		return a, err
	}
	if len(b) < 1 {
		return a, errProto
	}
	a.idle = b[0] != 0
	b = b[1:]
	if v, b, err = takeU32(b); err != nil {
		return a, err
	}
	if len(b) < int(v) {
		return a, errProto
	}
	if v > 0 {
		a.stats = append([]byte(nil), b[:v]...)
	}
	b = b[v:]
	if v, b, err = takeU32(b); err != nil {
		return a, err
	}
	if len(b) != int(v) {
		return a, errProto
	}
	if v > 0 {
		a.trace = append([]byte(nil), b...)
	}
	return a, nil
}
