package node

import (
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"testing"
	"time"
)

// fakeClock drives the detector without wall time, the way the sim backend's
// virtual clock does in deterministic runs.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Unix(0, 0)}
}

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

// TestDetectorNoFalsePositiveUnderMaxLatency pins the safety side of the
// default timing: a peer whose heartbeats all arrive, but each with an
// adversarial delay up to the fault profile's worst case (full jitter plus
// every retransmit slot), is never declared dead.  The delay schedule
// alternates 0 and MaxDelay — the pattern that maximises the gap between
// consecutive arrivals (one interval plus the full delay bound) — and then a
// seeded random schedule sweeps the space in between.
func TestDetectorNoFalsePositiveUnderMaxLatency(t *testing.T) {
	maxDelay := DefaultFaultProfile().MaxDelay()
	if defaultSuspicionAfter <= defaultHeartbeatInterval+maxDelay {
		t.Fatalf("defaults unsound: suspicion %v must exceed heartbeat %v + max delay %v",
			defaultSuspicionAfter, defaultHeartbeatInterval, maxDelay)
	}

	schedules := map[string]func(i int) time.Duration{
		"worst-case-alternating": func(i int) time.Duration {
			if i%2 == 0 {
				return 0
			}
			return maxDelay
		},
	}
	rng := rand.New(rand.NewSource(42))
	schedules["seeded-random"] = func(i int) time.Duration {
		return time.Duration(rng.Int63n(int64(maxDelay) + 1))
	}

	for name, delay := range schedules {
		t.Run(name, func(t *testing.T) {
			clk := newFakeClock()
			d := newDetector(0, []int{0, 1}, defaultSuspicionAfter, clk.now)
			// Heartbeat i is sent at i*interval and heard at send+delay(i).
			// Walk 200 intervals in 1ms steps, sweeping Check at every step.
			const beats = 200
			arrivals := make([]time.Duration, beats)
			for i := 0; i < beats; i++ {
				arrivals[i] = time.Duration(i)*defaultHeartbeatInterval + delay(i)
			}
			next := 0
			for elapsed := time.Duration(0); elapsed < beats*defaultHeartbeatInterval; elapsed += time.Millisecond {
				clk.advance(time.Millisecond)
				for next < beats && arrivals[next] <= elapsed {
					d.Heard(1)
					next++
				}
				if dead := d.Check(); len(dead) != 0 {
					t.Fatalf("false positive at %v: declared %v dead", elapsed, dead)
				}
			}
		})
	}
}

// TestDetectorDetectionLatencyBound pins the liveness side: a peer that goes
// silent is declared dead no earlier than the suspicion timeout and no later
// than the timeout plus one sweep interval.
func TestDetectorDetectionLatencyBound(t *testing.T) {
	clk := newFakeClock()
	d := newDetector(0, []int{0, 1, 2}, defaultSuspicionAfter, clk.now)
	sweep := defaultHeartbeatInterval

	// Both peers speak for a while; then peer 2 goes silent at silentFrom.
	var silentFrom time.Duration
	for elapsed := time.Duration(0); ; elapsed += sweep {
		clk.advance(sweep)
		d.Heard(1)
		if elapsed < 5*defaultHeartbeatInterval {
			d.Heard(2)
			silentFrom = elapsed
		}
		dead := d.Check()
		if len(dead) == 0 {
			if elapsed > silentFrom+defaultSuspicionAfter+sweep {
				t.Fatalf("peer 2 silent since %v still alive at %v (bound %v)",
					silentFrom, elapsed, silentFrom+defaultSuspicionAfter+sweep)
			}
			continue
		}
		if !reflect.DeepEqual(dead, []int{2}) {
			t.Fatalf("declared %v dead, want [2]", dead)
		}
		if elapsed < silentFrom+defaultSuspicionAfter {
			t.Fatalf("peer 2 declared dead at %v, before the suspicion bound %v",
				elapsed, silentFrom+defaultSuspicionAfter)
		}
		break
	}
	if d.Dead(1) || !d.Dead(2) {
		t.Fatalf("Dead() state wrong: 1=%v 2=%v", d.Dead(1), d.Dead(2))
	}
}

// TestDetectorFlappingPeer pins that death is final: a peer that times out
// and then starts talking again stays dead — Heard does not resurrect it,
// Check does not re-report it, and the live set excludes it permanently.
func TestDetectorFlappingPeer(t *testing.T) {
	clk := newFakeClock()
	d := newDetector(0, []int{0, 1, 2}, defaultSuspicionAfter, clk.now)

	clk.advance(defaultSuspicionAfter + time.Millisecond)
	d.Heard(1)
	if dead := d.Check(); !reflect.DeepEqual(dead, []int{2}) {
		t.Fatalf("declared %v dead, want [2]", dead)
	}

	// The flap: late frames from the dead peer arrive.
	for i := 0; i < 10; i++ {
		d.Heard(2)
		clk.advance(time.Millisecond)
		if dead := d.Check(); len(dead) != 0 {
			t.Fatalf("re-reported death: %v", dead)
		}
		if !d.Dead(2) {
			t.Fatal("late frames resurrected peer 2")
		}
	}
	if got := d.Alive(); !reflect.DeepEqual(got, []int{0, 1}) {
		t.Fatalf("Alive() = %v, want [0 1]", got)
	}

	// MarkDead on an already-dead or unknown peer is a no-op.
	d.MarkDead(2)
	d.MarkDead(99)
	if dead := d.Check(); len(dead) != 0 {
		t.Fatalf("MarkDead leaked into Check: %v", dead)
	}
}

// TestDetectorSeedStable pins that a detector run is a pure function of its
// heartbeat schedule: the same seed produces the identical sequence of
// (sweep, deaths) events, so a recovery schedule replays like a fault
// schedule does.
func TestDetectorSeedStable(t *testing.T) {
	trial := func(seed int64) string {
		rng := rand.New(rand.NewSource(seed))
		clk := newFakeClock()
		d := newDetector(0, []int{0, 1, 2, 3}, defaultSuspicionAfter, clk.now)
		var events string
		for sweep := 0; sweep < 400; sweep++ {
			clk.advance(defaultHeartbeatInterval)
			for peer := 1; peer <= 3; peer++ {
				// Per-sweep chance a peer's heartbeat is heard decays with the
				// peer id, so higher ids die at seed-dependent sweeps.
				if rng.Float64() < 1.0-0.2*float64(peer) {
					d.Heard(peer)
				}
			}
			if dead := d.Check(); len(dead) != 0 {
				events += fmt.Sprintf("%d:%v;", sweep, dead)
			}
		}
		return events
	}
	for _, seed := range []int64{0, 7, 12345} {
		a, b := trial(seed), trial(seed)
		if a != b {
			t.Fatalf("seed %d not reproducible:\n%s\nvs\n%s", seed, a, b)
		}
	}
	if trial(0) == "" {
		t.Fatal("no deaths across 400 sweeps; the trial exercises nothing")
	}
}

// TestDetectorLeaderElection pins the leader rule used by rebalancing: the
// lowest live id leads, and leadership moves down the id order as nodes die.
func TestDetectorLeaderElection(t *testing.T) {
	clk := newFakeClock()
	d := newDetector(2, []int{0, 1, 2, 3}, defaultSuspicionAfter, clk.now)
	if got := d.Alive(); !reflect.DeepEqual(got, []int{0, 1, 2, 3}) {
		t.Fatalf("Alive() = %v, want [0 1 2 3]", got)
	}
	d.MarkDead(0)
	if got := d.Alive(); !reflect.DeepEqual(got, []int{1, 2, 3}) {
		t.Fatalf("after node 0 death Alive() = %v, want [1 2 3]", got)
	}
	d.MarkDead(1)
	if got := d.Alive(); !reflect.DeepEqual(got, []int{2, 3}) {
		t.Fatalf("after node 1 death Alive() = %v, want [2 3]", got)
	}
}
