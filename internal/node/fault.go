package node

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"repro/internal/backend"
	"repro/internal/core"
)

// FaultProfile shapes the injected network behaviour.
type FaultProfile struct {
	// Base is the fixed latency added to every frame.
	Base time.Duration
	// Jitter adds a uniformly distributed extra delay in [0, Jitter).
	Jitter time.Duration
	// DropRate is the per-attempt probability a frame is "lost on the wire".
	// A lost attempt is really dropped — it never delivers — and the link's
	// retry loop sends the frame again after Retransmit, so one frame can be
	// dropped several times in a row (geometrically, capped at
	// maxRetransmits so a hostile PRNG cannot stall a lane unboundedly).
	// The LAST attempt always delivers: the run-time's send semantics (a
	// send that returned has happened) must hold on every schedule, so loss
	// is visible only as retry latency and in Stats().
	DropRate float64
	// Retransmit is the delay each dropped attempt adds before the retry.
	Retransmit time.Duration
	// BatchWindow models the TCP transport's sender-side frame coalescing:
	// every frame a lane accepts within one open window departs together at
	// the window's close (then pays its own sampled delay on top), the way a
	// real batch leaves in one write syscall.  Windows are tracked on the
	// backend clock, so under -sim batching is virtual-time deterministic
	// like every other fault.  Zero disables coalescing (frames depart as
	// they are sent).
	BatchWindow time.Duration
}

// DefaultFaultProfile returns delays large enough to reorder traffic between
// lanes under the sim backend's virtual clock without slowing wall-clock
// test runs (virtual time costs nothing), with batch coalescing enabled so
// the conformance sweep exercises the batched wire path's timing.
func DefaultFaultProfile() FaultProfile {
	return FaultProfile{Base: 2 * time.Millisecond, Jitter: 8 * time.Millisecond, DropRate: 0.05, Retransmit: 25 * time.Millisecond, BatchWindow: 2 * time.Millisecond}
}

// maxRetransmits bounds the drop/retry loop per frame: after this many
// losses the next attempt is forced through.
const maxRetransmits = 4

// MaxDelay returns the worst-case delivery delay of a single frame under the
// profile: full batch window, base latency, maximum jitter, and every
// retransmit slot consumed.  The failure detector's suspicion timeout must
// exceed one heartbeat interval plus this bound or a merely unlucky peer
// gets declared dead.
func (p FaultProfile) MaxDelay() time.Duration {
	return p.BatchWindow + p.Base + p.Jitter + maxRetransmits*p.Retransmit
}

// laneKey identifies one FIFO delay line: messages keep per-(src,dst) order,
// reply frames travel on a per-destination reply lane.
type laneKey struct {
	src, dst int
	reply    bool
}

// FaultTransport is a deterministic fault/latency-injecting core.Transport:
// every frame is re-injected into the local VM's loopback delivery after a
// seeded delay, scheduled on the VM's backend so that under -sim the whole
// "network" runs on the virtual clock and replays byte-identically from the
// seed.  Ordering stays per-lane FIFO — due times within a lane are forced
// monotone, modelling a link that delays but never reorders one sender's
// traffic — while different lanes reorder freely against each other, which
// is exactly the schedule freedom a real multi-node mesh has and a
// single-process run never exercises.
//
// Used with core.Options{Remote: ft, InterceptWire: true} on a VM hosting
// every cluster: all cross-cluster traffic then pays simulated network
// delay.  Bind must be called with the VM before tasks run.
type FaultTransport struct {
	profile FaultProfile

	mu          sync.Mutex
	rng         *rand.Rand
	vm          *core.VM
	be          backend.Backend
	lanes       map[laneKey]time.Time
	batches     map[laneKey]time.Time
	outstanding int
	idleWaits   []backend.Gate
	delivered   int64
	faults      int64

	// retained holds, per destination cluster, copies of every message frame
	// delivered since the cluster's last MarkEpoch.  A kill/restore harness
	// checkpoints a cluster, calls MarkEpoch, and on failure re-injects the
	// retained post-checkpoint traffic with ReplayRetained — the senders have
	// moved on and will never resend it themselves.  Retention only runs for
	// clusters that have had MarkEpoch called, so fault-only runs pay
	// nothing.  byReply indexes the retained initiate-request frames by
	// ReplyID, so the reply crossing back through SendReply can annotate the
	// request with the taskid it was answered with (initID): replaying the
	// request then re-creates the task under the same id.
	retained map[int][]*retainedFrame
	byReply  map[uint64]*retainedFrame
}

// retainedFrame is one delivered frame kept for post-restore re-delivery.
type retainedFrame struct {
	f      *core.WireFrame
	initID core.TaskID // id assigned to a ReplyID frame, once observed
}

// NewFaultTransport builds a fault transport with its own seeded PRNG.  The
// same seed and the same VM schedule reproduce the same delays.
func NewFaultTransport(seed int64, p FaultProfile) *FaultTransport {
	return &FaultTransport{profile: p, rng: rand.New(rand.NewSource(seed)), lanes: make(map[laneKey]time.Time), batches: make(map[laneKey]time.Time)}
}

// Bind attaches the transport to the VM it delays traffic for.
func (ft *FaultTransport) Bind(vm *core.VM) {
	ft.mu.Lock()
	ft.vm = vm
	ft.be = vm.Backend()
	ft.mu.Unlock()
}

// Stats reports how many frames were delivered and how many paid a
// retransmission fault.
func (ft *FaultTransport) Stats() (delivered, faults int64) {
	ft.mu.Lock()
	defer ft.mu.Unlock()
	return ft.delivered, ft.faults
}

// schedule computes the frame's due time on its lane and arranges fn to run
// then.  Callers hold no locks.
func (ft *FaultTransport) schedule(key laneKey, fn func()) error {
	ft.mu.Lock()
	if ft.vm == nil {
		ft.mu.Unlock()
		return fmt.Errorf("node: fault transport used before Bind")
	}
	delay := ft.profile.Base
	if ft.profile.Jitter > 0 {
		delay += time.Duration(ft.rng.Int63n(int64(ft.profile.Jitter)))
	}
	// Drop/retry loop: each attempt is lost with DropRate, pays Retransmit,
	// and tries again; the attempt after maxRetransmits losses always gets
	// through.  Sampled at schedule time so the whole retry history is fixed
	// by the seed and the send order.
	if ft.profile.DropRate > 0 {
		for tries := 0; tries < maxRetransmits && ft.rng.Float64() < ft.profile.DropRate; tries++ {
			delay += ft.profile.Retransmit
			ft.faults++
		}
	}
	now := ft.be.Now()
	// Batch coalescing: a lane's frames share the open batch window's
	// departure time, then each pays its sampled wire delay from there.  The
	// first frame past the close opens the next window.
	depart := now
	if w := ft.profile.BatchWindow; w > 0 {
		if dl, ok := ft.batches[key]; ok && now.Before(dl) {
			depart = dl
		} else {
			depart = now.Add(w)
			ft.batches[key] = depart
		}
	}
	due := depart.Add(delay)
	// Per-lane FIFO: a frame never fires before its predecessor on the same
	// lane.  The extra nanosecond keeps due times strictly monotone so timer
	// ties cannot reorder a lane even in principle.
	if last, ok := ft.lanes[key]; ok && !due.After(last) {
		due = last.Add(time.Nanosecond)
	}
	ft.lanes[key] = due
	ft.outstanding++
	be := ft.be
	ft.mu.Unlock()

	be.AfterFunc(due.Sub(now), func() {
		fn()
		ft.mu.Lock()
		ft.outstanding--
		ft.delivered++
		var wake []backend.Gate
		if ft.outstanding == 0 {
			wake, ft.idleWaits = ft.idleWaits, nil
		}
		ft.mu.Unlock()
		for _, g := range wake {
			g.Open()
		}
	})
	return nil
}

// Send delays the frame on its lane and re-injects it through the VM's
// loopback delivery.
func (ft *FaultTransport) Send(f *core.WireFrame) error {
	// The caller recovers the payload's shard bytes when Send returns: the
	// delayed frame needs its own copy.
	g := *f
	g.Payload = append([]byte(nil), f.Payload...)
	vm := ft.vm
	return ft.schedule(laneKey{src: f.Src, dst: f.Dst}, func() {
		_ = vm.Loopback().Send(&g)
		ft.retain(&g)
	})
}

// retain records a delivered frame for possible ReplayRetained, when its
// destination cluster has retention armed.
func (ft *FaultTransport) retain(f *core.WireFrame) {
	ft.mu.Lock()
	if ft.retained != nil {
		if frames, ok := ft.retained[f.Dst]; ok {
			rf := &retainedFrame{f: f}
			ft.retained[f.Dst] = append(frames, rf)
			if f.ReplyID != 0 {
				if ft.byReply == nil {
					ft.byReply = make(map[uint64]*retainedFrame)
				}
				ft.byReply[f.ReplyID] = rf
			}
		}
	}
	ft.mu.Unlock()
}

// MarkEpoch arms (or re-arms) retention for a destination cluster: frames
// delivered to it from now on are kept until the next MarkEpoch.  A recovery
// harness calls it immediately after every Checkpoint of that cluster, so
// the retained traffic is exactly the post-checkpoint delta a restore needs
// re-delivered.
func (ft *FaultTransport) MarkEpoch(cluster int) {
	ft.mu.Lock()
	if ft.retained == nil {
		ft.retained = make(map[int][]*retainedFrame)
	}
	for id, rf := range ft.byReply {
		if rf.f.Dst == cluster {
			delete(ft.byReply, id)
		}
	}
	ft.retained[cluster] = nil
	ft.mu.Unlock()
}

// ReplayRetained re-injects every frame delivered to the cluster since its
// last MarkEpoch, in original delivery order, bypassing the delay line (the
// frames already paid their delays once).  Called after core.Restore; the
// restored tasks' duplicate-suppression floors admit each frame at most
// once, and initiate requests whose reply was observed re-create their task
// under the recorded id (PlanRestoredInit).  Returns the number of frames
// re-injected.
func (ft *FaultTransport) ReplayRetained(cluster int) int {
	ft.mu.Lock()
	frames := ft.retained[cluster]
	vm := ft.vm
	ft.mu.Unlock()
	for _, rf := range frames {
		if rf.f.ReplyID != 0 && rf.initID != core.NilTask {
			_ = vm.PlanRestoredInit(rf.f.Dst, rf.f.Sender, rf.f.SendSeq, rf.initID)
		}
		g := *rf.f
		_ = vm.Loopback().Send(&g)
	}
	return len(frames)
}

// KillAt schedules fn on the transport's backend clock — under -sim, at an
// exact virtual time, making a fault-injection schedule (kill node, restore
// from checkpoint) as reproducible as the delays.  Bind must have been
// called.
func (ft *FaultTransport) KillAt(d time.Duration, fn func()) error {
	ft.mu.Lock()
	be := ft.be
	ft.mu.Unlock()
	if be == nil {
		return fmt.Errorf("node: KillAt before Bind")
	}
	be.AfterFunc(d, fn)
	return nil
}

// SendReply delays an initiate reply on the destination's reply lane.  When
// the request frame this reply answers is retained, the assigned id is
// recorded on it so a replay can re-create the task under the same id.
func (ft *FaultTransport) SendReply(dst int, replyID uint64, id core.TaskID) error {
	ft.mu.Lock()
	if rf, ok := ft.byReply[replyID]; ok {
		rf.initID = id
	}
	ft.mu.Unlock()
	vm := ft.vm
	return ft.schedule(laneKey{dst: dst, reply: true}, func() {
		vm.DeliverWireReply(replyID, id)
	})
}

// Flush blocks until every frame accepted before the call has been
// delivered.  Under -sim the wait pumps the scheduler, so the virtual clock
// advances to the pending due times and the delay line empties
// deterministically.
func (ft *FaultTransport) Flush() {
	ft.mu.Lock()
	if ft.outstanding == 0 || ft.be == nil {
		ft.mu.Unlock()
		return
	}
	g := ft.be.NewGate()
	ft.idleWaits = append(ft.idleWaits, g)
	ft.mu.Unlock()
	g.Wait()
}

// Close drains the delay line.
func (ft *FaultTransport) Close() error {
	ft.Flush()
	return nil
}
