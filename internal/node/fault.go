package node

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"repro/internal/backend"
	"repro/internal/core"
)

// FaultProfile shapes the injected network behaviour.
type FaultProfile struct {
	// Base is the fixed latency added to every frame.
	Base time.Duration
	// Jitter adds a uniformly distributed extra delay in [0, Jitter).
	Jitter time.Duration
	// DropRate is the probability a frame is "lost on the wire" and shows up
	// only after Retransmit: faults are modelled as retransmission delay, not
	// actual loss, because the run-time's send semantics (a send that
	// returned has happened) must hold on every schedule.
	DropRate float64
	// Retransmit is the extra delay a dropped frame pays.
	Retransmit time.Duration
	// BatchWindow models the TCP transport's sender-side frame coalescing:
	// every frame a lane accepts within one open window departs together at
	// the window's close (then pays its own sampled delay on top), the way a
	// real batch leaves in one write syscall.  Windows are tracked on the
	// backend clock, so under -sim batching is virtual-time deterministic
	// like every other fault.  Zero disables coalescing (frames depart as
	// they are sent).
	BatchWindow time.Duration
}

// DefaultFaultProfile returns delays large enough to reorder traffic between
// lanes under the sim backend's virtual clock without slowing wall-clock
// test runs (virtual time costs nothing), with batch coalescing enabled so
// the conformance sweep exercises the batched wire path's timing.
func DefaultFaultProfile() FaultProfile {
	return FaultProfile{Base: 2 * time.Millisecond, Jitter: 8 * time.Millisecond, DropRate: 0.05, Retransmit: 25 * time.Millisecond, BatchWindow: 2 * time.Millisecond}
}

// laneKey identifies one FIFO delay line: messages keep per-(src,dst) order,
// reply frames travel on a per-destination reply lane.
type laneKey struct {
	src, dst int
	reply    bool
}

// FaultTransport is a deterministic fault/latency-injecting core.Transport:
// every frame is re-injected into the local VM's loopback delivery after a
// seeded delay, scheduled on the VM's backend so that under -sim the whole
// "network" runs on the virtual clock and replays byte-identically from the
// seed.  Ordering stays per-lane FIFO — due times within a lane are forced
// monotone, modelling a link that delays but never reorders one sender's
// traffic — while different lanes reorder freely against each other, which
// is exactly the schedule freedom a real multi-node mesh has and a
// single-process run never exercises.
//
// Used with core.Options{Remote: ft, InterceptWire: true} on a VM hosting
// every cluster: all cross-cluster traffic then pays simulated network
// delay.  Bind must be called with the VM before tasks run.
type FaultTransport struct {
	profile FaultProfile

	mu          sync.Mutex
	rng         *rand.Rand
	vm          *core.VM
	be          backend.Backend
	lanes       map[laneKey]time.Time
	batches     map[laneKey]time.Time
	outstanding int
	idleWaits   []backend.Gate
	delivered   int64
	faults      int64
}

// NewFaultTransport builds a fault transport with its own seeded PRNG.  The
// same seed and the same VM schedule reproduce the same delays.
func NewFaultTransport(seed int64, p FaultProfile) *FaultTransport {
	return &FaultTransport{profile: p, rng: rand.New(rand.NewSource(seed)), lanes: make(map[laneKey]time.Time), batches: make(map[laneKey]time.Time)}
}

// Bind attaches the transport to the VM it delays traffic for.
func (ft *FaultTransport) Bind(vm *core.VM) {
	ft.mu.Lock()
	ft.vm = vm
	ft.be = vm.Backend()
	ft.mu.Unlock()
}

// Stats reports how many frames were delivered and how many paid a
// retransmission fault.
func (ft *FaultTransport) Stats() (delivered, faults int64) {
	ft.mu.Lock()
	defer ft.mu.Unlock()
	return ft.delivered, ft.faults
}

// schedule computes the frame's due time on its lane and arranges fn to run
// then.  Callers hold no locks.
func (ft *FaultTransport) schedule(key laneKey, fn func()) error {
	ft.mu.Lock()
	if ft.vm == nil {
		ft.mu.Unlock()
		return fmt.Errorf("node: fault transport used before Bind")
	}
	delay := ft.profile.Base
	if ft.profile.Jitter > 0 {
		delay += time.Duration(ft.rng.Int63n(int64(ft.profile.Jitter)))
	}
	if ft.profile.DropRate > 0 && ft.rng.Float64() < ft.profile.DropRate {
		delay += ft.profile.Retransmit
		ft.faults++
	}
	now := ft.be.Now()
	// Batch coalescing: a lane's frames share the open batch window's
	// departure time, then each pays its sampled wire delay from there.  The
	// first frame past the close opens the next window.
	depart := now
	if w := ft.profile.BatchWindow; w > 0 {
		if dl, ok := ft.batches[key]; ok && now.Before(dl) {
			depart = dl
		} else {
			depart = now.Add(w)
			ft.batches[key] = depart
		}
	}
	due := depart.Add(delay)
	// Per-lane FIFO: a frame never fires before its predecessor on the same
	// lane.  The extra nanosecond keeps due times strictly monotone so timer
	// ties cannot reorder a lane even in principle.
	if last, ok := ft.lanes[key]; ok && !due.After(last) {
		due = last.Add(time.Nanosecond)
	}
	ft.lanes[key] = due
	ft.outstanding++
	be := ft.be
	ft.mu.Unlock()

	be.AfterFunc(due.Sub(now), func() {
		fn()
		ft.mu.Lock()
		ft.outstanding--
		ft.delivered++
		var wake []backend.Gate
		if ft.outstanding == 0 {
			wake, ft.idleWaits = ft.idleWaits, nil
		}
		ft.mu.Unlock()
		for _, g := range wake {
			g.Open()
		}
	})
	return nil
}

// Send delays the frame on its lane and re-injects it through the VM's
// loopback delivery.
func (ft *FaultTransport) Send(f *core.WireFrame) error {
	// The caller recovers the payload's shard bytes when Send returns: the
	// delayed frame needs its own copy.
	g := *f
	g.Payload = append([]byte(nil), f.Payload...)
	vm := ft.vm
	return ft.schedule(laneKey{src: f.Src, dst: f.Dst}, func() {
		_ = vm.Loopback().Send(&g)
	})
}

// SendReply delays an initiate reply on the destination's reply lane.
func (ft *FaultTransport) SendReply(dst int, replyID uint64, id core.TaskID) error {
	vm := ft.vm
	return ft.schedule(laneKey{dst: dst, reply: true}, func() {
		vm.DeliverWireReply(replyID, id)
	})
}

// Flush blocks until every frame accepted before the call has been
// delivered.  Under -sim the wait pumps the scheduler, so the virtual clock
// advances to the pending due times and the delay line empties
// deterministically.
func (ft *FaultTransport) Flush() {
	ft.mu.Lock()
	if ft.outstanding == 0 || ft.be == nil {
		ft.mu.Unlock()
		return
	}
	g := ft.be.NewGate()
	ft.idleWaits = append(ft.idleWaits, g)
	ft.mu.Unlock()
	g.Wait()
}

// Close drains the delay line.
func (ft *FaultTransport) Close() error {
	ft.Flush()
	return nil
}
