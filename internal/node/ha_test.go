package node_test

import (
	"bytes"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/config"
	"repro/internal/msgcodec"
	"repro/internal/node"
	"repro/internal/obs"
)

// haKillSource spreads timed workers over all three clusters so a mid-run
// node kill lands while tasks hold live state on the dying node.  Each
// STEPPER grinds through 12 timed steps (a never-satisfied ACCEPT whose
// DELAY paces the loop at 50ms), so the run lasts long enough for a
// checkpoint to cut and for the failure detector to fire mid-flight.  The
// printed total is a pure function of the worker ids — arrival order,
// scheduling, and recovery cannot change it.
const haKillSource = `
TASKTYPE MAIN
      INTEGER W, NW
      INTEGER TOTAL
      SIGNAL RES
      NW = 6
      ON CLUSTER 3 INITIATE STEPPER(1)
      ON CLUSTER 3 INITIATE STEPPER(2)
      ON CLUSTER 2 INITIATE STEPPER(3)
      ON CLUSTER 2 INITIATE STEPPER(4)
      ON CLUSTER 1 INITIATE STEPPER(5)
      ON CLUSTER 3 INITIATE STEPPER(6)
      ACCEPT NW OF RES
      TOTAL = 0
      DO 20 W = 1, NW
        TOTAL = TOTAL + MSGI('RES', W, 1)
20    CONTINUE
      PRINT *, 'TOTAL', TOTAL
END TASKTYPE

TASKTYPE STEPPER(ME)
      INTEGER ME
      INTEGER I, ACC
      SIGNAL TICK
      ACC = 0
      DO 10 I = 1, 12
        ACC = ACC + ME * I
        ACCEPT 1 OF
          TICK
        DELAY 0.05 THEN
          ACC = ACC + 0
        END ACCEPT
10    CONTINUE
      TO PARENT SEND RES(ACC)
END TASKTYPE
`

// TestHAKillNodeMatchesSingleProcess is the tentpole acceptance: a 3-node HA
// mesh whose node 2 is killed mid-run (abrupt teardown, no drain) produces
// byte-identical user output to the single-process run.  Node 2's workers die
// with it; node 0 — its checkpoint buddy — detects the death, adopts cluster
// 3, restores the last blob, and the restored workers finish the job.
func TestHAKillNodeMatchesSingleProcess(t *testing.T) {
	cfg := config.Simple(3, 4)
	want := singleProcessOutput(t, cfg, haKillSource)
	if !strings.Contains(want, "TOTAL") {
		t.Fatalf("reference output unexpected:\n%s", want)
	}

	reg := obs.New()
	reg.Enable(obs.Metrics)
	var out bytes.Buffer
	var logs [3]bytes.Buffer
	nodes := startMesh(t, 3, cfg, haKillSource, &out, nil, func(i int, o *node.Options) {
		o.HA = true
		o.CheckpointInterval = 50 * time.Millisecond
		o.Log = &logs[i]
		if i == 0 {
			o.Metrics = reg
		}
	})

	var wg sync.WaitGroup
	for _, f := range nodes[1:] {
		wg.Add(1)
		go func(f *node.Node) {
			defer wg.Done()
			_ = f.ServeUntilShutdown() // node 2 is terminated underneath this
		}(f)
	}
	// Kill node 2 a few checkpoints in, while its steppers are mid-loop.
	kill := time.AfterFunc(250*time.Millisecond, nodes[2].Terminate)
	defer kill.Stop()

	if err := nodes[0].RunMain(); err != nil {
		t.Errorf("run: %v", err)
	}
	if err := nodes[0].Close(); err != nil {
		t.Errorf("close: %v", err)
	}
	wg.Wait()

	if got := out.String(); got != want {
		t.Fatalf("output diverges after node kill:\n--- got ---\n%s--- want ---\n%s--- node logs ---\n0:\n%s1:\n%s2:\n%s",
			got, want, logs[0].String(), logs[1].String(), logs[2].String())
	}
	// The run must actually have recovered, or the kill landed after the work
	// was done and the test pinned nothing.
	counterOf := func(s *obs.Snapshot, name string) int64 {
		for _, c := range s.Counters {
			if c.Name == name {
				return c.Value
			}
		}
		return -1
	}
	snap := reg.Snapshot()
	if v := counterOf(snap, "node.ha.deaths"); v < 1 {
		t.Errorf("node.ha.deaths = %d, want >= 1; node 0 log:\n%s", v, logs[0].String())
	}
	if v := counterOf(snap, "node.ha.ckpt.rx"); v < 1 {
		t.Errorf("node.ha.ckpt.rx = %d, want >= 1 (node 0 is node 2's buddy)", v)
	}
	if !strings.Contains(logs[0].String(), "rerouted node 2's clusters to node 0") {
		t.Errorf("node 0 never completed the rebalance; log:\n%s", logs[0].String())
	}
	// Failure forensics: the survivor's flight recorder must hold the dead
	// node's story — the checkpoints it stored as node 2's buddy (proving
	// which epoch the restore came from) and the death declaration itself.
	dump, err := nodes[0].BlackboxDump()
	if err != nil {
		t.Fatalf("blackbox dump: %v", err)
	}
	_, _, events, err := msgcodec.DecodeBlackbox(dump)
	if err != nil {
		t.Fatalf("blackbox decode: %v", err)
	}
	lastEpoch, death := int64(-1), false
	for _, ev := range events {
		switch ev.Kind {
		case msgcodec.EvCheckpoint:
			if ev.A == 2 && ev.B > lastEpoch {
				lastEpoch = ev.B
			}
		case msgcodec.EvHeartbeatMiss:
			if ev.A == 2 {
				death = true
			}
		}
	}
	if lastEpoch < 1 {
		t.Errorf("survivor's dump holds no checkpoint of node 2 (last epoch %d, %d events)", lastEpoch, len(events))
	}
	if !death {
		t.Errorf("survivor's dump holds no heartbeat-miss for node 2 (%d events)", len(events))
	}
}

// TestHAMeshSurvivesWithoutFailure pins that HA mode is inert when nothing
// dies: the heartbeats, checkpoints, and retention accounting must not change
// the program's output or wedge the shutdown drain.
func TestHAMeshSurvivesWithoutFailure(t *testing.T) {
	src := corpusSource(t, "crosscluster.pf")
	cfg := config.Simple(2, 4)
	want := singleProcessOutput(t, cfg, src)

	var out bytes.Buffer
	nodes := startMesh(t, 2, cfg, src, &out, nil, func(i int, o *node.Options) {
		o.HA = true
		o.CheckpointInterval = 20 * time.Millisecond
	})
	runDistributed(t, nodes)
	if got := out.String(); got != want {
		t.Fatalf("HA-mode output differs:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}
