package pfi

import (
	"strings"
	"testing"
	"time"

	"repro/internal/config"
	"repro/internal/core"
)

// interpret compiles and runs src on a VM booted for cfg, returning the user
// terminal output and the compiled program.
func interpret(t *testing.T, cfg *config.Configuration, src string, opts Options, args ...core.Value) (string, *Program, error) {
	t.Helper()
	var buf strings.Builder
	vm, err := core.NewVM(cfg, core.Options{UserOutput: &buf, AcceptTimeout: 30 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer vm.Shutdown()
	p, err := Compile(src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	runErr := p.Run(vm, opts, args...)
	return buf.String(), p, runErr
}

func wantLines(t *testing.T, got string, want ...string) {
	t.Helper()
	if got != strings.Join(want, "\n")+"\n" {
		t.Errorf("output:\n%q\nwant lines %q", got, want)
	}
}

// TestSequentialFortran drives the ordinary Fortran 77 subset: declarations,
// arrays, DO loops (both forms), block and logical IF, GOTO, intrinsics.
func TestSequentialFortran(t *testing.T) {
	src := `TASKTYPE MAIN
      INTEGER I, J, K, A(5), B(3,3)
      REAL X
      J = 0
      DO 10 I = 1, 5
        A(I) = I * I
        J = J + A(I)
10    CONTINUE
      PRINT *, 'SUMSQ', J
      IF (J .GT. 50) THEN
        PRINT *, 'BIG'
      ELSE IF (J .EQ. 55) THEN
        PRINT *, 'EXACT'
      ELSE
        PRINT *, 'SMALL'
      END IF
      X = SQRT(REAL(A(4)))
      PRINT *, 'ROOT', X
      B(2,3) = 7
      PRINT *, 'B23', B(2, 3)
      I = 0
40    CONTINUE
      I = I + 1
      IF (I .LT. 3) GOTO 40
      PRINT *, 'LOOPED', I
      DO K = 1, 3
        IF (K .EQ. 2) GOTO 60
      END DO
60    CONTINUE
      PRINT *, 'DONE', MOD(7, 3), MIN(4, 2, 9), ABS(-2.5)
      IF (1.EQ.1 .AND. .NOT. 2 .GT. 3) PRINT *, 'DOTTED'
      WRITE(*,*) 'WROTE', 2 ** 3, 7 / 2, 7.0 / 2.0
      STOP
END TASKTYPE
`
	out, p, err := interpret(t, config.Simple(1, 2), src, Options{})
	if err != nil {
		t.Fatal(err)
	}
	wantLines(t, out,
		"SUMSQ 55",
		"BIG",
		"ROOT 4",
		"B23 7",
		"LOOPED 3",
		"DONE 1 2 2.5",
		"DOTTED",
		"WROTE 8 3 3.5",
	)
	if got := p.Counters().Get("tasks.completed"); got != 1 {
		t.Errorf("tasks.completed = %d", got)
	}
	if got := p.Counters().Get("loop.iterations"); got != 5+2 {
		t.Errorf("loop.iterations = %d, want 7", got)
	}
}

// TestInterpretPingPong exercises INITIATE, SEND to PARENT/SENDER/taskid
// variables, ACCEPT, and the SENDER/MSGI/NMSG intrinsics across two clusters.
func TestInterpretPingPong(t *testing.T) {
	src := `TASKTYPE MAIN
      TASKID WID
      SIGNAL READY
      ON OTHER INITIATE ECHO
      ACCEPT 1 OF READY
      WID = SENDER
      TO WID SEND PING(7)
      ACCEPT 1 OF PONG
      PRINT *, 'PONG VALUE', MSGI('PONG', 1, 1)
      TO WID SEND STOP
END TASKTYPE

TASKTYPE ECHO
      INTEGER V
      TO PARENT SEND READY
20    CONTINUE
      ACCEPT 1 OF PING, STOP
      IF (NMSG('STOP') .GT. 0) RETURN
      V = MSGI('PING', 1, 1)
      TO SENDER SEND PONG(V + 1)
      GOTO 20
END TASKTYPE
`
	out, p, err := interpret(t, config.Simple(2, 4), src, Options{})
	if err != nil {
		t.Fatal(err)
	}
	wantLines(t, out, "PONG VALUE 8")
	c := p.Counters()
	if got := c.Get("initiates"); got != 1 {
		t.Errorf("initiates = %d, want 1", got)
	}
	if got := c.Get("sends"); got != 4 { // READY, PING, PONG, STOP
		t.Errorf("sends = %d, want 4", got)
	}
	if got := c.Get("accepts"); got != 4 {
		t.Errorf("accepts = %d, want 4", got)
	}
	if got := c.Get("tasks.completed"); got != 2 {
		t.Errorf("tasks.completed = %d, want 2", got)
	}
}

// TestInterpretForcePresched exercises FORCESPLIT, PRESCHED DO, SHARED
// COMMON, LOCK/CRITICAL, BARRIER, and the MEMBERS intrinsic on a four-member
// force.
func TestInterpretForcePresched(t *testing.T) {
	src := `TASKTYPE MAIN
      INTEGER N
      REAL PRIV
      SHARED COMMON /ACC/ FSUM
      LOCK SUMLK
      N = 20
      FORCESPLIT
      PRIV = 0.0
      PRESCHED DO 30 I = 1, N
        PRIV = PRIV + REAL(I)
30    CONTINUE
      CRITICAL SUMLK
        FSUM = FSUM + PRIV
      END CRITICAL
      BARRIER
        PRINT *, 'MEMBERS', MEMBERS()
        PRINT *, 'SUM', FSUM
      END BARRIER
END TASKTYPE
`
	cfg := config.Simple(1, 2).WithForces(1, 7, 8, 9)
	out, p, err := interpret(t, cfg, src, Options{})
	if err != nil {
		t.Fatal(err)
	}
	wantLines(t, out, "MEMBERS 4", "SUM 210")
	c := p.Counters()
	if got := c.Get("forcesplits"); got != 1 {
		t.Errorf("forcesplits = %d, want 1", got)
	}
	if got := c.Get("barriers"); got != 4 { // one execution per member
		t.Errorf("barriers = %d, want 4", got)
	}
	if got := c.Get("criticals"); got != 4 {
		t.Errorf("criticals = %d, want 4", got)
	}
	if got := c.Get("loop.iterations"); got != 20 {
		t.Errorf("loop.iterations = %d, want 20", got)
	}
}

// TestInterpretSelfschedParseg covers the other two force scheduling
// disciplines on a single-member force (sequential degeneration).
func TestInterpretSelfschedParseg(t *testing.T) {
	src := `TASKTYPE MAIN
      INTEGER J
      SHARED COMMON /ACC/ TOT
      J = 0
      FORCESPLIT
      SELFSCHED DO 10 I = 1, 10
      J = J + I
10    CONTINUE
      CRITICAL LK
        TOT = TOT + REAL(J)
      END CRITICAL
      PARSEG
        PRINT *, 'SEG1'
      NEXTSEG
        PRINT *, 'SEG2'
      ENDSEG
      BARRIER
        PRINT *, 'TOT', TOT
      END BARRIER
END TASKTYPE
`
	out, _, err := interpret(t, config.Simple(1, 2), src, Options{})
	if err != nil {
		t.Fatal(err)
	}
	wantLines(t, out, "SEG1", "SEG2", "TOT 55")
}

// TestAcceptDelayTimeout exercises the DELAY ... THEN timeout path and the
// TIMEDOUT intrinsic.
func TestAcceptDelayTimeout(t *testing.T) {
	src := `TASKTYPE MAIN
      ACCEPT 1 OF
        NEVER
      DELAY 0.05 THEN
        PRINT *, 'TIMED OUT'
        IF (TIMEDOUT()) PRINT *, 'IN BODY', NMSG('NEVER')
      END ACCEPT
      IF (TIMEDOUT()) PRINT *, 'FLAG T'
END TASKTYPE
`
	out, p, err := interpret(t, config.Simple(1, 2), src, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// TIMEDOUT()/NMSG must already reflect this ACCEPT inside its own DELAY
	// body, not just after END ACCEPT.
	wantLines(t, out, "TIMED OUT", "IN BODY 0", "FLAG T")
	if got := p.Counters().Get("accept.timeouts"); got != 1 {
		t.Errorf("accept.timeouts = %d, want 1", got)
	}
}

// TestUnresolvedGotoFails: a GOTO whose label does not exist must be a
// reported error, not a silent early task exit.
func TestUnresolvedGotoFails(t *testing.T) {
	src := "TASKTYPE MAIN\n      GOTO 99\n      PRINT *, 'UNREACHED'\nEND TASKTYPE\n"
	_, p, err := interpret(t, config.Simple(1, 2), src, Options{})
	if err == nil || !strings.Contains(err.Error(), "GOTO 99") {
		t.Errorf("err = %v, want unresolved-GOTO error", err)
	}
	if got := p.Counters().Get("tasks.completed"); got != 0 {
		t.Errorf("tasks.completed = %d for a failed task", got)
	}
}

// TestSecondaryMemberStopFails: STOP inside a force region must be an error
// (a deserting member would hang the others at the next barrier).
func TestSecondaryMemberStopFails(t *testing.T) {
	src := `TASKTYPE MAIN
      FORCESPLIT
      IF (MEMBER() .GT. 1) STOP
END TASKTYPE
`
	cfg := config.Simple(1, 2).WithForces(1, 7)
	_, _, err := interpret(t, cfg, src, Options{})
	if err == nil || !strings.Contains(err.Error(), "desert the force") {
		t.Errorf("err = %v, want desertion error", err)
	}
}

// TestForceMemberErrorDoesNotDeadlock: a member hitting a run-time error
// before a BARRIER must not hang the force — the statement is skipped, the
// barrier completes, and the error is reported after the join.
func TestForceMemberErrorDoesNotDeadlock(t *testing.T) {
	src := `TASKTYPE MAIN
      INTEGER A(2)
      FORCESPLIT
      A(MEMBER() * 2) = 1
      BARRIER
        PRINT *, 'THROUGH'
      END BARRIER
END TASKTYPE
`
	out, err := interpretWithTimeout(t, config.Simple(1, 2).WithForces(1, 7), src)
	if err == nil || !strings.Contains(err.Error(), "force member 2") {
		t.Errorf("err = %v, want force member 2 subscript error", err)
	}
	if !strings.Contains(out, "THROUGH") {
		t.Errorf("barrier body did not run: %q", out)
	}
}

// interpretWithTimeout guards force-alignment tests against regressions that
// deadlock instead of failing.
func interpretWithTimeout(t *testing.T, cfg *config.Configuration, src string) (string, error) {
	t.Helper()
	done := make(chan struct{})
	var out string
	var err error
	go func() {
		defer close(done)
		out, _, err = interpret(t, cfg, src, Options{})
	}()
	select {
	case <-done:
		return out, err
	case <-time.After(20 * time.Second):
		t.Fatal("interpreted program deadlocked")
		return "", nil
	}
}

// TestSignalDeclInsideForce: SIGNAL executed by every member of a force must
// not race on the task's signal table (primary-only registration).
func TestSignalDeclInsideForce(t *testing.T) {
	src := `TASKTYPE MAIN
      FORCESPLIT
      SIGNAL DONE
      BARRIER
        PRINT *, 'OK'
      END BARRIER
END TASKTYPE
`
	out, err := interpretWithTimeout(t, config.Simple(1, 2).WithForces(1, 7, 8), src)
	if err != nil {
		t.Fatal(err)
	}
	wantLines(t, out, "OK")
}

// TestGotoOutOfBarrierBodyFails: a control transfer out of a BARRIER body
// would move only the primary; it must be an error, not a divergence hang.
func TestGotoOutOfBarrierBodyFails(t *testing.T) {
	src := `TASKTYPE MAIN
      FORCESPLIT
      BARRIER
        GOTO 40
      END BARRIER
      BARRIER
      END BARRIER
40    CONTINUE
END TASKTYPE
`
	_, err := interpretWithTimeout(t, config.Simple(1, 2).WithForces(1, 7), src)
	if err == nil || !strings.Contains(err.Error(), "BARRIER body") {
		t.Errorf("err = %v, want barrier-body transfer error", err)
	}
}

// TestSelfschedBoundErrorStaysAligned: a member whose SELFSCHED bounds fail
// to evaluate must skip the collective without desynchronising the force's
// collective numbering (the following BARRIER must still complete).
func TestSelfschedBoundErrorStaysAligned(t *testing.T) {
	src := `TASKTYPE MAIN
      FORCESPLIT
      SELFSCHED DO 30 I = 1, INT(MSGI('T', 1, 1))
      CONTINUE
30    CONTINUE
      BARRIER
        PRINT *, 'JOINED'
      END BARRIER
END TASKTYPE
`
	out, err := interpretWithTimeout(t, config.Simple(1, 2).WithForces(1, 7), src)
	if err == nil || !strings.Contains(err.Error(), "MSGI") {
		t.Errorf("err = %v, want MSGI-before-ACCEPT error", err)
	}
	if !strings.Contains(out, "JOINED") {
		t.Errorf("force did not rejoin at the barrier: %q", out)
	}
}

// TestSkippedCollectiveAbortsForce: when a member's error skips a compound
// statement containing a BARRIER, the force degrades its synchronisation
// (core's force abort) instead of stranding the members that do reach it.
func TestSkippedCollectiveAbortsForce(t *testing.T) {
	src := `TASKTYPE MAIN
      INTEGER A(2)
      A(1) = 1
      A(2) = 1
      FORCESPLIT
      IF (A(MEMBER()) .GT. 0) THEN
        BARRIER
          PRINT *, 'IN'
        END BARRIER
      END IF
END TASKTYPE
`
	// Three members: member 3 errors evaluating A(3), skips the IF block (and
	// with it the BARRIER); members 1 and 2 must still get through.
	out, err := interpretWithTimeout(t, config.Simple(1, 2).WithForces(1, 7, 8), src)
	if err == nil || !strings.Contains(err.Error(), "force member 3") {
		t.Errorf("err = %v, want member-3 subscript error", err)
	}
	if !strings.Contains(out, "IN") {
		t.Errorf("barrier body did not run after force abort: %q", out)
	}
}

// TestSharedCommonInsideRegionRejected: SHARED COMMON executed after the
// split would create member-private storage; it must be a diagnostic, not a
// silent wrong answer.
func TestSharedCommonInsideRegionRejected(t *testing.T) {
	src := `TASKTYPE MAIN
      FORCESPLIT
      SHARED COMMON /ACC/ FSUM
      BARRIER
      END BARRIER
END TASKTYPE
`
	_, err := interpretWithTimeout(t, config.Simple(1, 2).WithForces(1, 7), src)
	if err == nil || !strings.Contains(err.Error(), "before FORCESPLIT") {
		t.Errorf("err = %v, want declare-before-FORCESPLIT diagnostic", err)
	}
}

// TestPostAbortCollectivesDoNotPanic: after a member skips a collective and
// aborts the force, its misaligned op index must not pair with another
// statement's collective instance (formerly an interface-conversion panic).
func TestPostAbortCollectivesDoNotPanic(t *testing.T) {
	src := `TASKTYPE MAIN
      INTEGER N
      FORCESPLIT
      IF (MEMBER() .EQ. 1) N = 5
      SELFSCHED DO 30 I = 1, N
      CONTINUE
30    CONTINUE
      BARRIER
        PRINT *, 'END'
      END BARRIER
END TASKTYPE
`
	out, err := interpretWithTimeout(t, config.Simple(1, 2).WithForces(1, 7, 8), src)
	if err == nil || !strings.Contains(err.Error(), "used before it is set") {
		t.Errorf("err = %v, want the real unset-variable diagnostic", err)
	}
	if !strings.Contains(out, "END") {
		t.Errorf("degraded barrier did not run its body: %q", out)
	}
}

// TestPreSplitAcceptVisibleToAllMembers: the ACCEPT result from before the
// split steers region control flow identically on every member — a
// divergence here would strand the primary at the barrier.
func TestPreSplitAcceptVisibleToAllMembers(t *testing.T) {
	src := `TASKTYPE MAIN
      ON ANY INITIATE CHILD
      ACCEPT 1 OF PING
      FORCESPLIT
      IF (NMSG('PING') .GT. 0) THEN
        BARRIER
          PRINT *, 'SYNCED'
        END BARRIER
      END IF
END TASKTYPE

TASKTYPE CHILD
      TO PARENT SEND PING(1)
END TASKTYPE
`
	out, err := interpretWithTimeout(t, config.Simple(1, 4).WithForces(1, 7), src)
	if err != nil {
		t.Fatal(err)
	}
	wantLines(t, out, "SYNCED")
}

// TestArrayParamReshapedTo2D: a 1-D message array bound to a parameter
// declared two-dimensional is reshaped in Fortran (column-major) storage
// order, not rejected.
func TestArrayParamReshapedTo2D(t *testing.T) {
	src := `TASKTYPE MAIN
      INTEGER M(6), I
      DO 10 I = 1, 6
      M(I) = I
10    CONTINUE
      ON ANY INITIATE T(M)
      ACCEPT 1 OF R
      PRINT *, 'V', MSGI('R', 1, 1)
END TASKTYPE

TASKTYPE T(M)
      INTEGER M(2, 3)
      TO PARENT SEND R(M(2, 1))
END TASKTYPE
`
	out, _, err := interpret(t, config.Simple(1, 4), src, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Column-major: element (2,1) is the second stored value.
	wantLines(t, out, "V 2")
}

// TestGotoLabeledEndIf: a labelled END IF is a legal GOTO target (transfer to
// just after the block); a labelled END DO cycles the loop.
func TestGotoLabeledEndIf(t *testing.T) {
	src := `TASKTYPE MAIN
      INTEGER I, S
      IF (1 .EQ. 1) THEN
        GOTO 100
        PRINT *, 'SKIPPED'
100   END IF
      PRINT *, 'AFTER'
      S = 0
      DO I = 1, 3
        S = S + 1
        IF (S .GT. 90) PRINT *, 'NEVER'
        GOTO 200
        S = S + 100
200   END DO
      PRINT *, 'S', S
END TASKTYPE
`
	out, _, err := interpret(t, config.Simple(1, 2), src, Options{})
	if err != nil {
		t.Fatal(err)
	}
	wantLines(t, out, "AFTER", "S 3")
}

// TestRunTwiceResetsError: a Program may be re-Run; a failed first run must
// not poison a successful second run.
func TestRunTwiceResetsError(t *testing.T) {
	var buf strings.Builder
	vm, err := core.NewVM(config.Simple(1, 2), core.Options{UserOutput: &buf, AcceptTimeout: 30 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer vm.Shutdown()
	p, err := Compile("TASKTYPE MAIN(FAIL)\n      INTEGER FAIL, X\n      IF (FAIL .GT. 0) X = 1 / (FAIL - FAIL)\n      PRINT *, 'OK'\nEND TASKTYPE\n")
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Run(vm, Options{}, core.Int(1)); err == nil {
		t.Fatal("first run should fail with division by zero")
	}
	if err := p.Run(vm, Options{}, core.Int(0)); err != nil {
		t.Errorf("second run reported stale error: %v", err)
	}
}

// TestSharedDoTerminator: nested DO loops ending on one shared label (legal
// Fortran 77) close every enclosing loop.
func TestSharedDoTerminator(t *testing.T) {
	src := `TASKTYPE MAIN
      INTEGER I, J, S
      S = 0
      DO 10 I = 1, 3
      DO 10 J = 1, 2
      S = S + 1
10    CONTINUE
      PRINT *, 'S', S
END TASKTYPE
`
	out, _, err := interpret(t, config.Simple(1, 2), src, Options{})
	if err != nil {
		t.Fatal(err)
	}
	wantLines(t, out, "S 6")

	// Reusing a terminator label for a later, disjoint loop is illegal
	// Fortran and must be a diagnostic, not a silently empty loop body.
	reuse := `TASKTYPE MAIN
      INTEGER I, J, S
      S = 0
      DO 10 I = 1, 3
      S = S + 1
10    CONTINUE
      DO 10 J = 1, 3
      S = S + 10
10    CONTINUE
END TASKTYPE
`
	if _, err := Compile(reuse); err == nil || !strings.Contains(err.Error(), "already used") {
		t.Errorf("reused DO terminator label: err = %v, want duplicate-label diagnostic", err)
	}
}

// TestSpacelessBlocks: Fortran blanks are optional around block keywords; the
// closers must match the openers' tolerance.
func TestSpacelessBlocks(t *testing.T) {
	src := `TASKTYPE MAIN
      INTEGER I
      I = 1
      IF(I.GT.1)THEN
        PRINT *, 'GT'
      ELSEIF(I.EQ.1)THEN
        PRINT *, 'EQ'
      ELSE
        PRINT *, 'LT'
      ENDIF
END TASKTYPE
`
	out, _, err := interpret(t, config.Simple(1, 2), src, Options{})
	if err != nil {
		t.Fatal(err)
	}
	wantLines(t, out, "EQ")
}

// TestAcceptInsideForceRegion: an ACCEPT the primary member executes inside
// a FORCESPLIT region must remain visible to MSG* after the region (when the
// region is nested inside a block and execution continues after it).
func TestAcceptInsideForceRegion(t *testing.T) {
	src := `TASKTYPE MAIN
      ON ANY INITIATE CHILD
      IF (1 .EQ. 1) THEN
      FORCESPLIT
      ACCEPT 1 OF HI
      END IF
      PRINT *, 'GOT', MSGI('HI', 1, 1)
END TASKTYPE

TASKTYPE CHILD
      TO PARENT SEND HI(5)
END TASKTYPE
`
	out, _, err := interpret(t, config.Simple(1, 2), src, Options{})
	if err != nil {
		t.Fatal(err)
	}
	wantLines(t, out, "GOT 5")
}

// TestParamBinding covers scalar and array initiation arguments.
func TestParamBinding(t *testing.T) {
	src := `TASKTYPE MAIN(BASE, XS)
      INTEGER BASE, I, S
      S = BASE
      DO 10 I = 1, 3
      S = S + INT(XS(I))
10    CONTINUE
      PRINT *, 'S', S
END TASKTYPE
`
	out, _, err := interpret(t, config.Simple(1, 2), src, Options{},
		core.Int(100), core.Reals([]float64{1, 2, 3}))
	if err != nil {
		t.Fatal(err)
	}
	wantLines(t, out, "S 106")
}

// TestArrayParamSurvivesDeclaration: the type declaration Fortran requires
// for a dummy array must preserve (and convert) the INITIATE-passed data,
// not zero it.
func TestArrayParamSurvivesDeclaration(t *testing.T) {
	src := `TASKTYPE MAIN(A)
      INTEGER A(3), I, S
      REAL R(3)
      S = 0
      DO 10 I = 1, 3
      S = S + A(I)
10    CONTINUE
      PRINT *, 'SUM', S
END TASKTYPE
`
	out, _, err := interpret(t, config.Simple(1, 2), src, Options{},
		core.Ints([]int64{10, 20, 30}))
	if err != nil {
		t.Fatal(err)
	}
	wantLines(t, out, "SUM 60")
}

func TestMainTaskTypeSelection(t *testing.T) {
	src := "TASKTYPE ALPHA\n      PRINT *, 'A'\nEND TASKTYPE\nTASKTYPE BETA\n      PRINT *, 'B'\nEND TASKTYPE\n"
	p, err := Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	if name, err := p.MainTaskType(""); err != nil || name != "ALPHA" {
		t.Errorf("default main = %q, %v; want first tasktype ALPHA", name, err)
	}
	if name, err := p.MainTaskType("beta"); err != nil || name != "BETA" {
		t.Errorf("explicit main = %q, %v", name, err)
	}
	if _, err := p.MainTaskType("GAMMA"); err == nil {
		t.Error("unknown main tasktype accepted")
	}

	src = "TASKTYPE OTHER\n      CONTINUE\nEND TASKTYPE\nTASKTYPE MAIN\n      CONTINUE\nEND TASKTYPE\n"
	p, err = Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	if name, _ := p.MainTaskType(""); name != "MAIN" {
		t.Errorf("main = %q, want MAIN when a MAIN tasktype exists", name)
	}
}

func TestCompileErrors(t *testing.T) {
	cases := map[string]string{
		"no tasktypes":       "      X = 1\n",
		"unsupported stmt":   "TASKTYPE T\n      FROB THE KNOB\nEND TASKTYPE\n",
		"unclosed block if":  "TASKTYPE T\n      IF (1 .EQ. 1) THEN\n      X = 1\nEND TASKTYPE\n",
		"stray endif":        "TASKTYPE T\n      END IF\nEND TASKTYPE\n",
		"stray else":         "TASKTYPE T\n      ELSE\nEND TASKTYPE\n",
		"do no terminator":   "TASKTYPE T\n      DO 10 I = 1, 5\n      X = I\nEND TASKTYPE\n",
		"enddo unopened":     "TASKTYPE T\n      END DO\nEND TASKTYPE\n",
		"goto no label":      "TASKTYPE T\n      GOTO X\nEND TASKTYPE\n",
		"unknown call":       "TASKTYPE T\n      CALL FROBNICATE(1)\nEND TASKTYPE\n",
		"plain common":       "TASKTYPE T\n      COMMON /B/ X\nEND TASKTYPE\n",
		"bad expression":     "TASKTYPE T\n      X = 1 +\nEND TASKTYPE\n",
		"bad print":          "TASKTYPE T\n      PRINT 'X'\nEND TASKTYPE\n",
		"presched no label":  "TASKTYPE T\nPRESCHED DO 10 I = 1, 5\n      X = I\nEND TASKTYPE\n",
		"forcesplit in do":   "TASKTYPE T\n      DO I = 1, 2\nFORCESPLIT\n      END DO\nEND TASKTYPE\n",
		"dup tasktype":       "TASKTYPE T\nEND TASKTYPE\nTASKTYPE T\nEND TASKTYPE\n",
		"bad dotted op":      "TASKTYPE T\n      X = 1 .FOO. 2\nEND TASKTYPE\n",
		"unterminated quote": "TASKTYPE T\n      PRINT *, 'OOPS\nEND TASKTYPE\n",
	}
	for name, src := range cases {
		if _, err := Compile(src); err == nil {
			t.Errorf("%s: expected a compile error", name)
		}
	}
}

// TestRuntimeErrors verifies that run-time failures are reported through
// Program.Err with source position, not silently swallowed.
func TestRuntimeErrors(t *testing.T) {
	cases := map[string]string{
		"unset variable":  "TASKTYPE MAIN\n      X = Y + 1\nEND TASKTYPE\n",
		"bad subscript":   "TASKTYPE MAIN\n      INTEGER A(3)\n      A(9) = 1\nEND TASKTYPE\n",
		"send to non-id":  "TASKTYPE MAIN\n      W = 2\nTO W SEND M(1)\nEND TASKTYPE\n",
		"unknown taskt":   "TASKTYPE MAIN\nON ANY INITIATE NOSUCH(1)\nEND TASKTYPE\n",
		"division zero":   "TASKTYPE MAIN\n      I = 0\n      J = 4 / I\nEND TASKTYPE\n",
		"msg before acc":  "TASKTYPE MAIN\n      I = MSGI('X', 1, 1)\nEND TASKTYPE\n",
		"param mismatch":  "TASKTYPE MAIN(A, B)\n      CONTINUE\nEND TASKTYPE\n",
		"if cond numeric": "TASKTYPE MAIN\n      IF (1 + 2) PRINT *, 'NO'\nEND TASKTYPE\n",
	}
	for name, src := range cases {
		out, p, err := interpret(t, config.Simple(1, 2), src, Options{})
		if err == nil {
			t.Errorf("%s: expected a run-time error", name)
			continue
		}
		if p.Err() == nil {
			t.Errorf("%s: Program.Err lost the error", name)
		}
		if !strings.Contains(out, "*** PFI error") {
			t.Errorf("%s: error not surfaced on the user terminal: %q", name, out)
		}
	}
}

// TestSecondaryMemberMessageGuard: message statements inside a force region
// are limited to the primary member.
func TestSecondaryMemberMessageGuard(t *testing.T) {
	src := `TASKTYPE MAIN
      FORCESPLIT
      TO PARENT SEND HELLO
END TASKTYPE
`
	cfg := config.Simple(1, 2).WithForces(1, 7)
	_, _, err := interpret(t, cfg, src, Options{})
	if err == nil || !strings.Contains(err.Error(), "primary member") {
		t.Errorf("err = %v, want primary-member guard", err)
	}
}

func TestExpressionEvaluation(t *testing.T) {
	// Pure-arithmetic evaluation without a VM: a bare execState with a frame.
	// All expressions compile against one slot table; the frame is created
	// after compilation (slots are assigned during compile) with N pre-set.
	tc := &taskCompiler{tab: newSlotTable()}
	nSlot := tc.tab.slotOf("N")
	st := &execState{p: mustCompile(t, "TASKTYPE T\nEND TASKTYPE\n")}
	cases := map[string]string{
		"1 + 2 * 3":            "7",
		"(1 + 2) * 3":          "9",
		"2 ** 3 ** 2":          "512", // right-associative
		"-2 ** 2":              "-4",  // unary minus binds looser than **
		"7 / 2":                "3",
		"7.0 / 2":              "3.5",
		"N - 1":                "9",
		"1.5E2":                "150",
		"1D1":                  "10",
		".5 + .5":              "1",
		"1 .LT. 2":             "T",
		"1 .GE. 2":             "F",
		"1 <= 2 .AND. 3 /= 4":  "T",
		".TRUE. .NEQV. .TRUE.": "F",
		"'A' .LT. 'B'":         "T",
		"MAX(1, 5, 3)":         "5",
		"NINT(2.6)":            "3",
		"MOD(9.5, 3.0)":        "0.5",
		"IABS(-4)":             "4",
		"AMAX1(1.0, 2.5)":      "2.5",
		"3 ** 4":               "81",
		"2 ** 62":              "4611686018427387904",
		"1 ** 2000000000":      "1", // must not spin O(exp)
		// Above 2**53: must compare on int64, not float64.
		"MIN(9007199254740993, 9007199254740992)": "9007199254740992",
		"MAX(9007199254740993, 9007199254740992)": "9007199254740993",
	}
	compiled := make(map[string]cexpr, len(cases))
	for src := range cases {
		e, err := parseExprString(src, 1)
		if err != nil {
			t.Errorf("%s: parse: %v", src, err)
			continue
		}
		compiled[src] = tc.compileExpr(e)
	}
	st.f = newFrame(tc.tab)
	st.f.slots[nSlot].v = intVal(10)
	for src, want := range cases {
		ce := compiled[src]
		if ce == nil {
			continue
		}
		v, err := ce(st)
		if err != nil {
			t.Errorf("%s: eval: %v", src, err)
			continue
		}
		if got := v.format(); got != want {
			t.Errorf("%s = %s, want %s", src, got, want)
		}
	}
}

func mustCompile(t *testing.T, src string) *Program {
	t.Helper()
	p, err := Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestWindowDeclarationDefinesZeroWindow: a declared-but-never-assigned
// WINDOW variable reads as the zero window (the run-time's documented
// treatment in value.windowPayload) rather than tripping use-before-set —
// programs have no statement form that manufactures a window value, so this
// is the only way a .pf program can put a WINDOW into a message it
// originates.
func TestWindowDeclarationDefinesZeroWindow(t *testing.T) {
	src := `TASKTYPE MAIN
      WINDOW W
      PRINT *, 'ROWS', WROWS(W)
      PRINT *, 'COLS', WCOLS(W)
END TASKTYPE
`
	out, _, err := interpret(t, config.Simple(1, 2), src, Options{})
	if err != nil {
		t.Fatal(err)
	}
	wantLines(t, out, "ROWS 0", "COLS 0")
}
