// Package pfi is the Pisces Fortran interpreter: it executes Pisces Fortran
// (.pf) programs directly on an in-memory core.VM, with no Fortran compiler
// in the loop.  Where internal/pfc translates a program into Fortran 77 plus
// run-time-library calls (the paper's Section 10 tool chain for the real
// FLEX/32), pfi closes the loop for the reproduction: both consume the same
// statement-level AST from pfc.Parse, and pfi maps every Pisces statement
// onto the Go run-time —
//
//	ON <placement> INITIATE <tasktype>(<args>)  -> Task.Initiate
//	TO <dest> SEND <msgtype>(<args>)            -> Task.Send and friends
//	ACCEPT ... DELAY ... THEN ... END ACCEPT    -> Task.Accept
//	FORCESPLIT                                  -> Task.ForceSplit (the rest of
//	                                               the sequence is the region)
//	BARRIER / CRITICAL / PARSEG                 -> ForceMember equivalents
//	PRESCHED DO / SELFSCHED DO                  -> ForceMember.Presched/Selfsched
//	SHARED COMMON / LOCK / TASKID / WINDOW      -> shared frames, core.Lock,
//	                                               TASKID and WINDOW values
//
// The ordinary Fortran 77 subset covers what the paper's example programs
// use: INTEGER/REAL/LOGICAL/CHARACTER declarations, DIMENSION, assignments,
// arithmetic/relational/logical expressions, one- and two-dimensional arrays,
// logical and block IF, DO loops (label and END DO forms, including nested
// loops sharing one terminator), GOTO, CONTINUE, STOP, RETURN, and
// list-directed PRINT/WRITE.  Fixed-form continuation lines, FORMAT, and
// user subprograms are not interpreted (lines outside TASKTYPE definitions
// are ignored); handler-declared message types behave like signals, with
// their arguments readable through the MSG* intrinsics; statement labels
// belong on ordinary Fortran lines (put a labelled CONTINUE before a Pisces
// statement to make it a GOTO target).
//
// Compilation is a two-phase pipeline: the parse phase builds statement and
// expression trees, and the slot/codegen phase (resolve.go, codegen.go)
// resolves every name to a frame-slot index and emits pre-bound Go closures
// with folded constants and pre-resolved intrinsic dispatch, so execution
// performs no map lookups or string switches.  Compiled units are cached by
// source text: compiling the same source again (a repeated `pisces run`, a
// benchmark loop) skips lexing, parsing, and code generation entirely and
// only allocates the per-Program run state (activity counters, error slot).
//
// Inside a FORCESPLIT region, message and terminal statements (INITIATE,
// SEND, ACCEPT, PRINT) are limited to the primary member, and a failing
// statement is recorded and skipped rather than aborting the member — an
// aborting member would strand the others at the next BARRIER — with the
// first recorded error failing the task once the force has joined.  STOP,
// RETURN, and GOTOs out of the region desert the force and are errors for
// every member.
//
// Beyond the standard numeric intrinsics, programs can query the run-time:
// SELF, PARENT, SENDER (taskids), CLUSTER, MEMBER, MEMBERS, QLEN, and — after
// an ACCEPT — TIMEDOUT(), NMSG('T'), and MSGI/MSGR/MSGS/MSGT/MSGW('T', i, j)
// for the j-th argument of the i-th accepted message of type T.
//
// Interpreter activity is counted through a stats.Counters set (statements,
// initiates, sends, accepts, force splits, loop iterations, ...), exposed by
// Program.Counters for reports and regression tracking.
package pfi

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/msgcodec"
	"repro/internal/obs"
	"repro/internal/pfc"
	"repro/internal/stats"
)

// Error is a compile- or run-time error with a source line number.
type Error struct {
	Line int
	Msg  string
}

func (e *Error) Error() string { return fmt.Sprintf("pfi: line %d: %s", e.Line, e.Msg) }

func errf(line int, format string, args ...any) error {
	return &Error{Line: line, Msg: fmt.Sprintf(format, args...)}
}

// Options tune how a compiled program runs.
type Options struct {
	// Main names the tasktype initiated as the program's entry point.  Empty
	// selects the tasktype named MAIN, or the first tasktype in the source.
	Main string
	// Placement is the cluster placement of the main task; the zero value is
	// ANY.
	Placement core.Placement
}

// taskProgram is one compiled TASKTYPE: its slot table and closure-compiled
// body.  It is immutable after compilation and shared by every Program that
// resolves to the same cached compiled unit.
type taskProgram struct {
	name       string
	params     []string
	paramSlots []int
	tab        *slotTable
	body       []cstmt
	line       int
}

// compiledUnit is the immutable product of compiling one source text: the
// parsed program plus its slot-compiled tasktypes.  Units are cached and
// shared between Programs; all mutable run state lives on the Program.
type compiledUnit struct {
	source *pfc.Program
	tasks  []*taskProgram
	byName map[string]*taskProgram
	weight int64 // estimated retained bytes, the UnitCache eviction unit
}

// counterSet holds resolved handles into the program's stats.Counters so hot
// interpreter paths bump them without a map lookup.
type counterSet struct {
	tasksStarted   *stats.Counter
	tasksCompleted *stats.Counter
	statements     *stats.Counter
	initiates      *stats.Counter
	sends          *stats.Counter
	accepts        *stats.Counter
	acceptTimeouts *stats.Counter
	forceSplits    *stats.Counter
	barriers       *stats.Counter
	criticals      *stats.Counter
	loopIterations *stats.Counter
	prints         *stats.Counter
}

// Program is a compiled Pisces Fortran program, ready to register its
// tasktypes on a VM and run.
type Program struct {
	// Source is the parsed pfc program the interpreter was compiled from.
	Source *pfc.Program

	unit     *compiledUnit
	counters *stats.Counters
	cs       counterSet

	mu     sync.Mutex
	runErr error
}

// Compile parses and compiles Pisces Fortran source text.  Compiled code is
// cached by source text in the bounded process-wide DefaultCache, so
// compiling the same program again returns a fresh Program (own counters,
// own error state) over the shared compiled unit without re-parsing.
// Long-lived processes that compile untrusted or unbounded program streams
// should use their own NewUnitCache (or CompileUncached) instead.
func Compile(src string) (*Program, error) {
	return defaultCache.Compile(src)
}

// CompileUncached parses and compiles without consulting or populating the
// compiled-unit cache.  It exists for benchmarks and tools that measure the
// true compilation cost.
func CompileUncached(src string) (*Program, error) {
	u, err := compileUnit(src)
	if err != nil {
		return nil, err
	}
	return newProgram(u), nil
}

// compileUnit runs the full pipeline: parse, statement compilation, slot
// resolution, and closure code generation.
func compileUnit(src string) (*compiledUnit, error) {
	parsed, err := pfc.Parse(src)
	if err != nil {
		return nil, err
	}
	if len(parsed.TaskTypes) == 0 {
		return nil, errf(1, "program declares no TASKTYPE")
	}
	u := &compiledUnit{
		source: parsed,
		byName: make(map[string]*taskProgram),
	}
	for _, tt := range parsed.TaskTypes {
		nodes, err := compileBody(tt.Body)
		if err != nil {
			return nil, fmt.Errorf("tasktype %s: %w", tt.Name, err)
		}
		tc := &taskCompiler{tab: newSlotTable()}
		params := pfc.UpperAll(tt.Params)
		paramSlots := make([]int, len(params))
		for i, p := range params {
			paramSlots[i] = tc.tab.slotOf(p)
		}
		tp := &taskProgram{
			name:       tt.Name,
			params:     params,
			paramSlots: paramSlots,
			tab:        tc.tab,
			body:       tc.compileSeq(nodes),
			line:       tt.Line,
		}
		if _, dup := u.byName[tp.name]; dup {
			return nil, errf(tt.Line, "tasktype %s defined twice", tt.Name)
		}
		u.tasks = append(u.tasks, tp)
		u.byName[tp.name] = tp
	}
	u.weight = unitWeight(src, u)
	return u, nil
}

// unitWeight estimates the retained size of a compiled unit in bytes: the
// source text (which the cache interns as its key) plus the parsed AST and
// a fixed cost per compiled statement and slot.  Nested statements compile
// into closures reachable from their parent cstmt, so the per-statement
// charge is deliberately generous.  An estimate is all the eviction policy
// needs; exact retained size is not observable in Go anyway.
func unitWeight(src string, u *compiledUnit) int64 {
	w := int64(len(src)) * 2
	for _, tp := range u.tasks {
		w += 256
		w += int64(len(tp.body)) * 192
		w += int64(len(tp.tab.names)) * 96
	}
	return w
}

// newProgram wraps a compiled unit with fresh run state.
func newProgram(u *compiledUnit) *Program {
	p := &Program{
		Source:   u.source,
		unit:     u,
		counters: stats.NewCounters(),
	}
	p.cs = counterSet{
		tasksStarted:   p.counters.Counter("tasks.started"),
		tasksCompleted: p.counters.Counter("tasks.completed"),
		statements:     p.counters.Counter("statements"),
		initiates:      p.counters.Counter("initiates"),
		sends:          p.counters.Counter("sends"),
		accepts:        p.counters.Counter("accepts"),
		acceptTimeouts: p.counters.Counter("accept.timeouts"),
		forceSplits:    p.counters.Counter("forcesplits"),
		barriers:       p.counters.Counter("barriers"),
		criticals:      p.counters.Counter("criticals"),
		loopIterations: p.counters.Counter("loop.iterations"),
		prints:         p.counters.Counter("prints"),
	}
	return p
}

// TaskTypes returns the compiled tasktype names, sorted.
func (p *Program) TaskTypes() []string {
	out := make([]string, 0, len(p.unit.tasks))
	for _, tp := range p.unit.tasks {
		out = append(out, tp.name)
	}
	sort.Strings(out)
	return out
}

// Counters returns the interpreter's activity counters.
func (p *Program) Counters() *stats.Counters { return p.counters }

// StatsTable renders the interpreter counters as a report table.
func (p *Program) StatsTable() string {
	return p.counters.Table("interpreter activity").String()
}

// Err returns the first run-time error any interpreted task hit, if any.
func (p *Program) Err() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.runErr
}

func (p *Program) fail(tp *taskProgram, t *core.Task, err error) {
	p.mu.Lock()
	if p.runErr == nil {
		p.runErr = fmt.Errorf("tasktype %s (task %s): %w", tp.name, t.ID(), err)
	}
	p.mu.Unlock()
	// Surface the failure on the user terminal too, like a crashed task would.
	_ = t.SendUser("print", core.Str(fmt.Sprintf("*** PFI error in TASKTYPE %s: %v\n", tp.name, err)))
}

// Register registers every compiled tasktype on the VM, so INITIATE
// statements (and the execution environment) can start interpreted tasks.
func (p *Program) Register(vm *core.VM) {
	for _, tp := range p.unit.tasks {
		vm.Register(tp.name, p.taskBody(tp))
	}
}

// taskBody builds the Go tasktype body that interprets one task.
func (p *Program) taskBody(tp *taskProgram) func(*core.Task) {
	return func(t *core.Task) {
		p.cs.tasksStarted.Inc()
		st := &execState{
			p:     p,
			tp:    tp,
			t:     t,
			f:     newFrame(tp.tab),
			locks: &lockTable{byName: make(map[string]*core.Lock)},
			yield: t.VM().Deterministic(),
		}
		// The enable mask is sampled once per task, like yield: a task that
		// starts with metrics off interprets with zero instrumentation cost.
		reg := t.VM().Obs()
		if reg.Has(obs.Metrics) {
			st.obsReg = reg
			st.obsStmt = reg.Histogram("pfi.stmt.ns", "ns")
		}
		var spanT0 time.Time
		if reg.Has(obs.Spans) {
			spanT0 = reg.Now()
			id := t.ID()
			defer reg.Span(fmt.Sprintf("pfi/c%d %s", id.Cluster, id), "task "+tp.name, spanT0)
		}
		if err := st.bindParams(); err != nil {
			p.fail(tp, t, err)
			return
		}
		c, err := st.execSeq(tp.body)
		if err != nil {
			p.fail(tp, t, err)
			return
		}
		if c.kind == ctlGoto {
			p.fail(tp, t, fmt.Errorf("GOTO %s: no such statement label reachable in TASKTYPE %s", c.label, tp.name))
			return
		}
		p.cs.tasksCompleted.Inc()
	}
}

// bindParams binds the INITIATE argument list to the tasktype's parameter
// slots.
func (st *execState) bindParams() error {
	args := st.t.Args()
	if len(args) > len(st.tp.params) {
		return fmt.Errorf("tasktype %s takes %d parameter(s), initiated with %d argument(s)",
			st.tp.name, len(st.tp.params), len(args))
	}
	for i, param := range st.tp.params {
		if i >= len(args) {
			return fmt.Errorf("tasktype %s takes %d parameter(s), initiated with %d argument(s)",
				st.tp.name, len(st.tp.params), len(args))
		}
		v := args[i]
		b := &st.f.slots[st.tp.paramSlots[i]]
		switch v.Kind {
		case msgcodec.KindIntArray:
			a := newArray(kInt, len(v.IntArray), 0)
			for j, x := range v.IntArray {
				a.data[j] = intVal(x)
			}
			b.arr = a
		case msgcodec.KindRealArray:
			a := newArray(kReal, len(v.RealArray), 0)
			for j, x := range v.RealArray {
				a.data[j] = realVal(x)
			}
			b.arr = a
		default:
			val, err := fromCoreValue(v)
			if err != nil {
				return fmt.Errorf("parameter %s: %v", param, err)
			}
			b.kind = val.kind
			b.v = val
		}
	}
	return nil
}

// MainTaskType resolves the program's entry tasktype: the explicit name if
// given, else MAIN, else the first tasktype in the source.
func (p *Program) MainTaskType(main string) (string, error) {
	if main != "" {
		name := strings.ToUpper(main)
		if _, ok := p.unit.byName[name]; !ok {
			return "", fmt.Errorf("pfi: tasktype %q not found (have %v)", main, p.TaskTypes())
		}
		return name, nil
	}
	if _, ok := p.unit.byName["MAIN"]; ok {
		return "MAIN", nil
	}
	return p.unit.tasks[0].name, nil
}

// Run registers the program's tasktypes on the VM, initiates the main
// tasktype with the given arguments, and waits until every task the program
// started has terminated and its terminal output has been flushed.  It
// returns the first run-time error any interpreted task hit.  A program may
// be Run repeatedly (each Run reports only its own errors; the activity
// counters accumulate across runs).
func (p *Program) Run(vm *core.VM, opts Options, args ...core.Value) error {
	p.mu.Lock()
	p.runErr = nil
	p.mu.Unlock()
	p.Register(vm)
	main, err := p.MainTaskType(opts.Main)
	if err != nil {
		return err
	}
	if _, err := vm.Run(main, opts.Placement, args...); err != nil {
		return err
	}
	vm.WaitIdle()
	vm.FlushUserOutput()
	return p.Err()
}

// Interpret compiles the source and runs it on the VM in one call: the
// "pisces run" path.
func Interpret(vm *core.VM, src string, opts Options, args ...core.Value) (*Program, error) {
	p, err := Compile(src)
	if err != nil {
		return nil, err
	}
	if err := p.Run(vm, opts, args...); err != nil {
		return p, err
	}
	return p, nil
}
