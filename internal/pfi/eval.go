package pfi

import (
	"fmt"
	"math"
	"strconv"
	"strings"
	"sync"

	"repro/internal/core"
	"repro/internal/msgcodec"
)

// valKind is the run-time type of an interpreter value, mirroring the Pisces
// Fortran data types.  kNone is the zero value, so a zeroed binding or value
// reads as "unset".
type valKind uint8

const (
	kNone valKind = iota
	kInt
	kReal
	kBool
	kStr
	kTaskID
	kWindow
)

func (k valKind) String() string {
	switch k {
	case kInt:
		return "INTEGER"
	case kReal:
		return "REAL"
	case kBool:
		return "LOGICAL"
	case kStr:
		return "CHARACTER"
	case kTaskID:
		return "TASKID"
	case kWindow:
		return "WINDOW"
	}
	return "?"
}

// value is one interpreter value.  WINDOW payloads sit behind a pointer:
// they are rare, and keeping them out of line keeps the value struct small
// enough that the constant copying on the evaluation hot path stays cheap.
type value struct {
	kind valKind
	b    bool
	i    int64
	r    float64
	s    string
	id   core.TaskID
	win  *core.Window
}

func intVal(v int64) value      { return value{kind: kInt, i: v} }
func realVal(v float64) value   { return value{kind: kReal, r: v} }
func boolVal(v bool) value      { return value{kind: kBool, b: v} }
func strVal(v string) value     { return value{kind: kStr, s: v} }
func idVal(v core.TaskID) value { return value{kind: kTaskID, id: v} }
func winVal(v core.Window) value {
	return value{kind: kWindow, win: &v}
}
func zeroVal(k valKind) value { return value{kind: k} }
func implicitKind(name string) valKind {
	if name != "" && name[0] >= 'I' && name[0] <= 'N' {
		return kInt
	}
	return kReal
}

// toInt converts a numeric value to INTEGER (truncating, as Fortran does).
func (v value) toInt() (int64, error) {
	switch v.kind {
	case kInt:
		return v.i, nil
	case kReal:
		return int64(v.r), nil
	}
	return 0, fmt.Errorf("%s value where a number is required", v.kind)
}

// toReal converts a numeric value to REAL.
func (v value) toReal() (float64, error) {
	switch v.kind {
	case kInt:
		return float64(v.i), nil
	case kReal:
		return v.r, nil
	}
	return 0, fmt.Errorf("%s value where a number is required", v.kind)
}

// truth returns the LOGICAL interpretation of the value.
func (v value) truth() (bool, error) {
	if v.kind != kBool {
		return false, fmt.Errorf("%s value where a LOGICAL is required", v.kind)
	}
	return v.b, nil
}

// format renders the value for PRINT/WRITE output.
func (v value) format() string {
	switch v.kind {
	case kInt:
		return strconv.FormatInt(v.i, 10)
	case kReal:
		return strconv.FormatFloat(v.r, 'g', -1, 64)
	case kBool:
		if v.b {
			return "T"
		}
		return "F"
	case kStr:
		return v.s
	case kTaskID:
		return v.id.String()
	case kWindow:
		return v.windowPayload().String()
	}
	return "?"
}

// windowPayload returns the WINDOW payload, treating a never-assigned WINDOW
// variable as the zero window.
func (v value) windowPayload() core.Window {
	if v.win == nil {
		return core.Window{}
	}
	return *v.win
}

// convert coerces a value to the declared kind of its destination.  Numeric
// kinds inter-convert (Fortran assignment conversion); everything else must
// match exactly.
func convert(v value, k valKind) (value, error) {
	if v.kind == k {
		return v, nil
	}
	switch {
	case k == kInt && v.kind == kReal:
		return intVal(int64(v.r)), nil
	case k == kReal && v.kind == kInt:
		return realVal(float64(v.i)), nil
	}
	return value{}, fmt.Errorf("cannot assign %s value to %s variable", v.kind, k)
}

// array is one declared array: 1-based, one- or two-dimensional, of a single
// element kind.  Arrays are shared by reference between force members, so
// they double as the shared data of a force region (SHARED COMMON arrays in
// particular).
type array struct {
	kind valKind
	rows int
	cols int // 0 for a one-dimensional array
	data []value
}

func newArray(kind valKind, rows, cols int) *array {
	n := rows
	if cols > 0 {
		n = rows * cols
	}
	a := &array{kind: kind, rows: rows, cols: cols, data: make([]value, n)}
	for i := range a.data {
		a.data[i] = zeroVal(kind)
	}
	return a
}

// offset1 resolves a one-subscript element reference.
func (a *array) offset1(name string, i1 int64) (int, error) {
	if a.cols != 0 {
		return 0, fmt.Errorf("array %s needs 2 subscripts, got 1", name)
	}
	if i1 < 1 || i1 > int64(a.rows) {
		return 0, fmt.Errorf("subscript %d outside array %s(%d)", i1, name, a.rows)
	}
	return int(i1 - 1), nil
}

// offset2 resolves a two-subscript element reference (column-major, as
// Fortran stores arrays).
func (a *array) offset2(name string, i1, i2 int64) (int, error) {
	if a.cols == 0 {
		return 0, fmt.Errorf("array %s needs 1 subscript, got 2", name)
	}
	if i1 < 1 || i1 > int64(a.rows) || i2 < 1 || i2 > int64(a.cols) {
		return 0, fmt.Errorf("subscripts (%d,%d) outside array %s(%d,%d)", i1, i2, name, a.rows, a.cols)
	}
	return int(i2-1)*a.rows + int(i1-1), nil
}

// sharedCell is one SHARED COMMON scalar: a mutex-protected cell shared by
// every member of a force (the program is still responsible for higher-level
// synchronisation through BARRIER and CRITICAL, exactly as in the paper).
type sharedCell struct {
	mu sync.Mutex
	v  value
}

func (c *sharedCell) load() value {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.v
}

func (c *sharedCell) store(v value) {
	c.mu.Lock()
	c.v = v
	c.mu.Unlock()
}

// binding is the run-time state of one resolved name slot.  At any moment a
// name is a scalar (v set), a shared cell, an array, or still unset; the
// compiled code checks in that order, preserving the dynamic declaration
// semantics of the map-based interpreter.
type binding struct {
	v    value       // scalar value; v.kind == kNone means unset
	kind valKind     // declared scalar kind; kNone means implicit typing
	arr  *array      // non-nil once declared as an array
	cell *sharedCell // non-nil once declared SHARED COMMON
}

// frame holds one task's (or one force member's) variables as a slot-indexed
// binding vector — slot indices are assigned per tasktype at compile time by
// the resolver, so the hot path never looks names up in a map.  Scalars are
// per-frame; arrays and shared cells are shared by reference when a frame is
// copied for a force member, which gives SHARED COMMON its paper semantics
// while keeping ordinary scalars member-private.
type frame struct {
	tab   *slotTable
	slots []binding
}

func newFrame(tab *slotTable) *frame {
	return &frame{tab: tab, slots: make([]binding, tab.size())}
}

// copyForMember clones the frame for a secondary force member: scalars are
// copied (member-private), arrays and shared cells are shared by reference.
func (f *frame) copyForMember() *frame {
	g := &frame{tab: f.tab, slots: make([]binding, len(f.slots))}
	copy(g.slots, f.slots)
	return g
}

// declaredKind returns the kind a scalar slot would take on first assignment.
func (f *frame) declaredKind(slot int) valKind {
	if k := f.slots[slot].kind; k != kNone {
		return k
	}
	return f.tab.implicit[slot]
}

// --- operators ---------------------------------------------------------------

// binOp is a compiled binary operator: the operator string is resolved to an
// opcode once at compile time, so evaluation dispatches on a small integer.
type binOp uint8

const (
	opAdd binOp = iota
	opSub
	opMul
	opDiv
	opPow
	opEQ
	opNE
	opLT
	opLE
	opGT
	opGE
	opAND
	opOR
	opEQV
	opNEQV
)

// binOpCode maps the lexer's canonical operator names to opcodes.
var binOpCode = map[string]binOp{
	"+": opAdd, "-": opSub, "*": opMul, "/": opDiv, "**": opPow,
	"EQ": opEQ, "NE": opNE, "LT": opLT, "LE": opLE, "GT": opGT, "GE": opGE,
	"AND": opAND, "OR": opOR, "EQV": opEQV, "NEQV": opNEQV,
}

// opSource renders an opcode in source form for error messages.
func opSource(op binOp) string {
	switch op {
	case opAdd:
		return "+"
	case opSub:
		return "-"
	case opMul:
		return "*"
	case opDiv:
		return "/"
	case opPow:
		return "**"
	case opEQ:
		return ".EQ."
	case opNE:
		return ".NE."
	case opLT:
		return ".LT."
	case opLE:
		return ".LE."
	case opGT:
		return ".GT."
	case opGE:
		return ".GE."
	case opAND:
		return ".AND."
	case opOR:
		return ".OR."
	case opEQV:
		return ".EQV."
	default:
		return ".NEQV."
	}
}

func negVal(x value) (value, error) {
	switch x.kind {
	case kInt:
		return intVal(-x.i), nil
	case kReal:
		return realVal(-x.r), nil
	}
	return value{}, fmt.Errorf("unary - applied to %s value", x.kind)
}

func notVal(x value) (value, error) {
	b, err := x.truth()
	if err != nil {
		return value{}, err
	}
	return boolVal(!b), nil
}

func applyBinary(op binOp, x, y value) (value, error) {
	switch {
	case op <= opPow:
		return applyArith(op, x, y)
	case op <= opGE:
		return applyCompare(op, x, y)
	}
	a, err := x.truth()
	if err != nil {
		return value{}, err
	}
	b, err := y.truth()
	if err != nil {
		return value{}, err
	}
	switch op {
	case opAND:
		return boolVal(a && b), nil
	case opOR:
		return boolVal(a || b), nil
	case opEQV:
		return boolVal(a == b), nil
	default:
		return boolVal(a != b), nil
	}
}

// applyArith implements Fortran numeric rules: INTEGER op INTEGER stays
// INTEGER (including truncating division); mixed operands promote to REAL.
func applyArith(op binOp, x, y value) (value, error) {
	if x.kind == kInt && y.kind == kInt {
		switch op {
		case opAdd:
			return intVal(x.i + y.i), nil
		case opSub:
			return intVal(x.i - y.i), nil
		case opMul:
			return intVal(x.i * y.i), nil
		case opDiv:
			if y.i == 0 {
				return value{}, fmt.Errorf("INTEGER division by zero")
			}
			return intVal(x.i / y.i), nil
		default:
			return intPow(x.i, y.i)
		}
	}
	a, err := x.toReal()
	if err != nil {
		return value{}, fmt.Errorf("operator %s: %v", opSource(op), err)
	}
	b, err := y.toReal()
	if err != nil {
		return value{}, fmt.Errorf("operator %s: %v", opSource(op), err)
	}
	switch op {
	case opAdd:
		return realVal(a + b), nil
	case opSub:
		return realVal(a - b), nil
	case opMul:
		return realVal(a * b), nil
	case opDiv:
		if b == 0 {
			return value{}, fmt.Errorf("REAL division by zero")
		}
		return realVal(a / b), nil
	default:
		return realVal(math.Pow(a, b)), nil
	}
}

func intPow(base, exp int64) (value, error) {
	if exp < 0 {
		if base == 0 {
			return value{}, fmt.Errorf("0 ** negative exponent")
		}
		// Fortran INTEGER ** negative truncates toward zero.
		switch base {
		case 1:
			return intVal(1), nil
		case -1:
			if exp%2 == 0 {
				return intVal(1), nil
			}
			return intVal(-1), nil
		default:
			return intVal(0), nil
		}
	}
	// Exponentiation by squaring: O(log exp) even for absurd exponents.
	result := int64(1)
	for exp > 0 {
		if exp&1 == 1 {
			result *= base
		}
		base *= base
		exp >>= 1
	}
	return intVal(result), nil
}

func applyCompare(op binOp, x, y value) (value, error) {
	// TASKID and CHARACTER values support equality comparison.
	if x.kind == kTaskID && y.kind == kTaskID {
		switch op {
		case opEQ:
			return boolVal(x.id == y.id), nil
		case opNE:
			return boolVal(x.id != y.id), nil
		}
		return value{}, fmt.Errorf("TASKID values only compare with .EQ./.NE.")
	}
	if x.kind == kStr && y.kind == kStr {
		switch op {
		case opEQ:
			return boolVal(x.s == y.s), nil
		case opNE:
			return boolVal(x.s != y.s), nil
		case opLT:
			return boolVal(x.s < y.s), nil
		case opLE:
			return boolVal(x.s <= y.s), nil
		case opGT:
			return boolVal(x.s > y.s), nil
		default:
			return boolVal(x.s >= y.s), nil
		}
	}
	a, err := x.toReal()
	if err != nil {
		return value{}, fmt.Errorf("comparison %s: %v", opSource(op), err)
	}
	b, err := y.toReal()
	if err != nil {
		return value{}, fmt.Errorf("comparison %s: %v", opSource(op), err)
	}
	switch op {
	case opEQ:
		return boolVal(a == b), nil
	case opNE:
		return boolVal(a != b), nil
	case opLT:
		return boolVal(a < b), nil
	case opLE:
		return boolVal(a <= b), nil
	case opGT:
		return boolVal(a > b), nil
	default:
		return boolVal(a >= b), nil
	}
}

// --- intrinsics --------------------------------------------------------------

// intrinsicFn is one compiled built-in function.  Implementations must not
// retain args: the slice aliases the execState's argument stack.
type intrinsicFn func(st *execState, args []value) (value, error)

// intrinsicAliases maps the classic Fortran type-specific generic names onto
// the base intrinsic.
var intrinsicAliases = map[string]string{
	"IABS": "ABS", "DABS": "ABS",
	"AMOD": "MOD",
	"MIN0": "MIN", "AMIN0": "MIN", "AMIN1": "MIN", "MIN1": "MIN",
	"MAX0": "MAX", "AMAX0": "MAX", "AMAX1": "MAX", "MAX1": "MAX",
	"FLOAT": "REAL", "DBLE": "REAL",
	"IFIX": "INT", "IDINT": "INT",
	"ALOG": "LOG", "DLOG": "LOG", "DSQRT": "SQRT", "DEXP": "EXP",
	"DSIN": "SIN", "DCOS": "COS",
}

// resolveIntrinsic resolves a (possibly aliased) name to its intrinsic
// implementation at compile time, or nil when the name is not an intrinsic.
func resolveIntrinsic(name string) intrinsicFn {
	if base, ok := intrinsicAliases[name]; ok {
		name = base
	}
	return intrinsicTable[name]
}

// intrinsicTable is the pre-resolved dispatch table for every built-in
// function: the compiler binds the implementation once per call site, so
// evaluation never switches on the function name.
var intrinsicTable map[string]intrinsicFn

func ifail(name, format string, a ...any) (value, error) {
	return value{}, fmt.Errorf(name+": "+format, a...)
}

func init() {
	intrinsicTable = map[string]intrinsicFn{
		// --- Pisces run-time queries ---
		"SELF": func(st *execState, _ []value) (value, error) {
			return idVal(st.t.ID()), nil
		},
		"PARENT": func(st *execState, _ []value) (value, error) {
			return idVal(st.t.Parent()), nil
		},
		"SENDER": func(st *execState, _ []value) (value, error) {
			return idVal(st.t.Sender()), nil
		},
		"CLUSTER": func(st *execState, _ []value) (value, error) {
			return intVal(int64(st.t.Cluster())), nil
		},
		"MEMBER": func(st *execState, _ []value) (value, error) {
			// 1-based, matching the paper's "the Ith force member".
			if st.m == nil {
				return intVal(1), nil
			}
			return intVal(int64(st.m.Member() + 1)), nil
		},
		"MEMBERS": func(st *execState, _ []value) (value, error) {
			if st.m == nil {
				return intVal(1), nil
			}
			return intVal(int64(st.m.Members())), nil
		},
		"QLEN": func(st *execState, _ []value) (value, error) {
			return intVal(int64(st.t.QueueLength())), nil
		},

		// --- last ACCEPT result ---
		"TIMEDOUT": func(st *execState, _ []value) (value, error) {
			if st.lastAccept == nil {
				return boolVal(false), nil
			}
			return boolVal(st.lastAccept.TimedOut), nil
		},
		"NMSG": func(st *execState, args []value) (value, error) {
			if len(args) != 1 || args[0].kind != kStr {
				return ifail("NMSG", "needs one CHARACTER message-type argument")
			}
			if st.lastAccept == nil {
				return intVal(0), nil
			}
			return intVal(int64(st.lastAccept.Count(strings.ToUpper(args[0].s)))), nil
		},
		"MSGI": msgArgFn("MSGI", kInt),
		"MSGR": msgArgFn("MSGR", kReal),
		"MSGS": msgArgFn("MSGS", kStr),
		"MSGT": msgArgFn("MSGT", kTaskID),
		"MSGW": msgArgFn("MSGW", kWindow),

		// --- windows ---
		"WROWS": func(_ *execState, args []value) (value, error) {
			if len(args) != 1 || args[0].kind != kWindow {
				return ifail("WROWS", "needs one WINDOW argument")
			}
			return intVal(int64(args[0].windowPayload().Rows())), nil
		},
		"WCOLS": func(_ *execState, args []value) (value, error) {
			if len(args) != 1 || args[0].kind != kWindow {
				return ifail("WCOLS", "needs one WINDOW argument")
			}
			return intVal(int64(args[0].windowPayload().Cols())), nil
		},

		// --- numeric intrinsics ---
		"ABS": func(_ *execState, args []value) (value, error) {
			if len(args) != 1 {
				return ifail("ABS", "needs one argument")
			}
			if args[0].kind == kInt {
				if args[0].i < 0 {
					return intVal(-args[0].i), nil
				}
				return args[0], nil
			}
			r, err := args[0].toReal()
			if err != nil {
				return ifail("ABS", "%v", err)
			}
			return realVal(math.Abs(r)), nil
		},
		"MOD": func(_ *execState, args []value) (value, error) {
			if len(args) != 2 {
				return ifail("MOD", "needs two arguments")
			}
			if args[0].kind == kInt && args[1].kind == kInt {
				if args[1].i == 0 {
					return ifail("MOD", "division by zero")
				}
				return intVal(args[0].i % args[1].i), nil
			}
			a, err1 := args[0].toReal()
			b, err2 := args[1].toReal()
			if err1 != nil || err2 != nil || b == 0 {
				return ifail("MOD", "bad arguments")
			}
			return realVal(math.Mod(a, b)), nil
		},
		"MIN": minMaxFn("MIN"),
		"MAX": minMaxFn("MAX"),
		"INT": func(_ *execState, args []value) (value, error) {
			if len(args) != 1 {
				return ifail("INT", "needs one argument")
			}
			n, err := args[0].toInt()
			if err != nil {
				return ifail("INT", "%v", err)
			}
			return intVal(n), nil
		},
		"NINT": func(_ *execState, args []value) (value, error) {
			if len(args) != 1 {
				return ifail("NINT", "needs one argument")
			}
			r, err := args[0].toReal()
			if err != nil {
				return ifail("NINT", "%v", err)
			}
			return intVal(int64(math.Round(r))), nil
		},
		"REAL": func(_ *execState, args []value) (value, error) {
			if len(args) != 1 {
				return ifail("REAL", "needs one argument")
			}
			r, err := args[0].toReal()
			if err != nil {
				return ifail("REAL", "%v", err)
			}
			return realVal(r), nil
		},
		"SQRT": realFn("SQRT", func(r float64) (float64, error) {
			if r < 0 {
				return 0, fmt.Errorf("SQRT: negative argument %g", r)
			}
			return math.Sqrt(r), nil
		}),
		"EXP": realFn("EXP", func(r float64) (float64, error) { return math.Exp(r), nil }),
		"LOG": realFn("LOG", func(r float64) (float64, error) {
			if r <= 0 {
				return 0, fmt.Errorf("LOG: non-positive argument %g", r)
			}
			return math.Log(r), nil
		}),
		"SIN": realFn("SIN", func(r float64) (float64, error) { return math.Sin(r), nil }),
		"COS": realFn("COS", func(r float64) (float64, error) { return math.Cos(r), nil }),
	}
}

// realFn builds a one-REAL-argument intrinsic.
func realFn(name string, f func(float64) (float64, error)) intrinsicFn {
	return func(_ *execState, args []value) (value, error) {
		if len(args) != 1 {
			return ifail(name, "needs one argument")
		}
		r, err := args[0].toReal()
		if err != nil {
			return ifail(name, "%v", err)
		}
		out, err := f(r)
		if err != nil {
			return value{}, err
		}
		return realVal(out), nil
	}
}

// minMaxFn builds the MIN/MAX variadic intrinsics.
func minMaxFn(name string) intrinsicFn {
	wantMin := name == "MIN"
	return func(_ *execState, args []value) (value, error) {
		if len(args) < 2 {
			return ifail(name, "needs at least two arguments")
		}
		allInt := true
		for _, a := range args {
			if a.kind != kInt {
				allInt = false
			}
		}
		if allInt {
			// Compare on int64 directly: going through float64 loses
			// precision above 2**53.
			best := args[0].i
			for _, a := range args[1:] {
				if (wantMin && a.i < best) || (!wantMin && a.i > best) {
					best = a.i
				}
			}
			return intVal(best), nil
		}
		best, err := args[0].toReal()
		if err != nil {
			return ifail(name, "%v", err)
		}
		for _, a := range args[1:] {
			r, err := a.toReal()
			if err != nil {
				return ifail(name, "%v", err)
			}
			if (wantMin && r < best) || (!wantMin && r > best) {
				best = r
			}
		}
		return realVal(best), nil
	}
}

// msgArgFn builds MSGI/MSGR/MSGS/MSGT/MSGW('TYPE', i, j): the j-th argument
// of the i-th accepted message of the given type from the task's most recent
// ACCEPT statement (both indices 1-based).
func msgArgFn(name string, want valKind) intrinsicFn {
	return func(st *execState, args []value) (value, error) {
		if len(args) != 3 || args[0].kind != kStr {
			return value{}, fmt.Errorf("%s needs ('TYPE', message, argument)", name)
		}
		msgType := strings.ToUpper(args[0].s)
		i, err1 := args[1].toInt()
		j, err2 := args[2].toInt()
		if err1 != nil || err2 != nil {
			return value{}, fmt.Errorf("%s indices must be INTEGER", name)
		}
		if st.lastAccept == nil {
			return value{}, fmt.Errorf("%s used before any ACCEPT", name)
		}
		msgs := st.lastAccept.ByType[msgType]
		if i < 1 || i > int64(len(msgs)) {
			return value{}, fmt.Errorf("%s: message %d of type %s not accepted (have %d)", name, i, msgType, len(msgs))
		}
		m := msgs[i-1]
		if j < 1 || j > int64(len(m.Args)) {
			return value{}, fmt.Errorf("%s: message %s has %d arguments, asked for %d", name, msgType, len(m.Args), j)
		}
		v, err := fromCoreValue(m.Args[j-1])
		if err != nil {
			return value{}, fmt.Errorf("%s: %v", name, err)
		}
		cv, err := convert(v, want)
		if err != nil {
			return value{}, fmt.Errorf("%s: %v", name, err)
		}
		return cv, nil
	}
}

// --- core.Value conversions --------------------------------------------------

// fromCoreValue converts a message/initiation argument to an interpreter
// value.  Array arguments are handled separately by bindParams.
func fromCoreValue(v core.Value) (value, error) {
	switch v.Kind {
	case msgcodec.KindInteger:
		return intVal(v.Integer), nil
	case msgcodec.KindReal:
		return realVal(v.Real), nil
	case msgcodec.KindLogical:
		return boolVal(v.Logical), nil
	case msgcodec.KindCharacter:
		return strVal(v.Character), nil
	case msgcodec.KindTaskID:
		id, err := core.AsID(v)
		if err != nil {
			return value{}, err
		}
		return idVal(id), nil
	case msgcodec.KindWindow:
		w, err := core.AsWin(v)
		if err != nil {
			return value{}, err
		}
		return winVal(w), nil
	}
	return value{}, fmt.Errorf("%s argument has no scalar interpreter form", v.Kind)
}

// toCoreValue converts an interpreter value to a message argument.
func toCoreValue(v value) (core.Value, error) {
	switch v.kind {
	case kInt:
		return core.Int(v.i), nil
	case kReal:
		return core.Real(v.r), nil
	case kBool:
		return core.Bool(v.b), nil
	case kStr:
		return core.Str(v.s), nil
	case kTaskID:
		return core.ID(v.id), nil
	case kWindow:
		return core.Win(v.windowPayload()), nil
	}
	return core.Value{}, fmt.Errorf("internal error: unknown value kind %d", v.kind)
}
