package pfi

import (
	"fmt"
	"math"
	"strconv"
	"strings"
	"sync"

	"repro/internal/core"
	"repro/internal/msgcodec"
)

// valKind is the run-time type of an interpreter value, mirroring the Pisces
// Fortran data types.
type valKind uint8

const (
	kInt valKind = iota
	kReal
	kBool
	kStr
	kTaskID
	kWindow
)

func (k valKind) String() string {
	switch k {
	case kInt:
		return "INTEGER"
	case kReal:
		return "REAL"
	case kBool:
		return "LOGICAL"
	case kStr:
		return "CHARACTER"
	case kTaskID:
		return "TASKID"
	case kWindow:
		return "WINDOW"
	}
	return "?"
}

// value is one interpreter value.
type value struct {
	kind valKind
	i    int64
	r    float64
	b    bool
	s    string
	id   core.TaskID
	win  core.Window
}

func intVal(v int64) value          { return value{kind: kInt, i: v} }
func realVal(v float64) value       { return value{kind: kReal, r: v} }
func boolVal(v bool) value          { return value{kind: kBool, b: v} }
func strVal(v string) value         { return value{kind: kStr, s: v} }
func idVal(v core.TaskID) value     { return value{kind: kTaskID, id: v} }
func winVal(v core.Window) value    { return value{kind: kWindow, win: v} }
func zeroVal(k valKind) value       { return value{kind: k} }
func implicitKind(name string) valKind {
	if name != "" && name[0] >= 'I' && name[0] <= 'N' {
		return kInt
	}
	return kReal
}

// toInt converts a numeric value to INTEGER (truncating, as Fortran does).
func (v value) toInt() (int64, error) {
	switch v.kind {
	case kInt:
		return v.i, nil
	case kReal:
		return int64(v.r), nil
	}
	return 0, fmt.Errorf("%s value where a number is required", v.kind)
}

// toReal converts a numeric value to REAL.
func (v value) toReal() (float64, error) {
	switch v.kind {
	case kInt:
		return float64(v.i), nil
	case kReal:
		return v.r, nil
	}
	return 0, fmt.Errorf("%s value where a number is required", v.kind)
}

// truth returns the LOGICAL interpretation of the value.
func (v value) truth() (bool, error) {
	if v.kind != kBool {
		return false, fmt.Errorf("%s value where a LOGICAL is required", v.kind)
	}
	return v.b, nil
}

// format renders the value for PRINT/WRITE output.
func (v value) format() string {
	switch v.kind {
	case kInt:
		return strconv.FormatInt(v.i, 10)
	case kReal:
		return strconv.FormatFloat(v.r, 'g', -1, 64)
	case kBool:
		if v.b {
			return "T"
		}
		return "F"
	case kStr:
		return v.s
	case kTaskID:
		return v.id.String()
	case kWindow:
		return v.win.String()
	}
	return "?"
}

// convert coerces a value to the declared kind of its destination.  Numeric
// kinds inter-convert (Fortran assignment conversion); everything else must
// match exactly.
func convert(v value, k valKind) (value, error) {
	if v.kind == k {
		return v, nil
	}
	switch {
	case k == kInt && v.kind == kReal:
		return intVal(int64(v.r)), nil
	case k == kReal && v.kind == kInt:
		return realVal(float64(v.i)), nil
	}
	return value{}, fmt.Errorf("cannot assign %s value to %s variable", v.kind, k)
}

// array is one declared array: 1-based, one- or two-dimensional, of a single
// element kind.  Arrays are shared by reference between force members, so
// they double as the shared data of a force region (SHARED COMMON arrays in
// particular).
type array struct {
	kind valKind
	rows int
	cols int // 0 for a one-dimensional array
	data []value
}

func newArray(kind valKind, rows, cols int) *array {
	n := rows
	if cols > 0 {
		n = rows * cols
	}
	a := &array{kind: kind, rows: rows, cols: cols, data: make([]value, n)}
	for i := range a.data {
		a.data[i] = zeroVal(kind)
	}
	return a
}

func (a *array) offset(name string, idx []int64) (int, error) {
	if a.cols == 0 {
		if len(idx) != 1 {
			return 0, fmt.Errorf("array %s needs 1 subscript, got %d", name, len(idx))
		}
		if idx[0] < 1 || idx[0] > int64(a.rows) {
			return 0, fmt.Errorf("subscript %d outside array %s(%d)", idx[0], name, a.rows)
		}
		return int(idx[0] - 1), nil
	}
	if len(idx) != 2 {
		return 0, fmt.Errorf("array %s needs 2 subscripts, got %d", name, len(idx))
	}
	if idx[0] < 1 || idx[0] > int64(a.rows) || idx[1] < 1 || idx[1] > int64(a.cols) {
		return 0, fmt.Errorf("subscripts (%d,%d) outside array %s(%d,%d)", idx[0], idx[1], name, a.rows, a.cols)
	}
	// Column-major order, as Fortran stores arrays.
	return int((idx[1]-1))*a.rows + int(idx[0]-1), nil
}

// sharedCell is one SHARED COMMON scalar: a mutex-protected cell shared by
// every member of a force (the program is still responsible for higher-level
// synchronisation through BARRIER and CRITICAL, exactly as in the paper).
type sharedCell struct {
	mu sync.Mutex
	v  value
}

func (c *sharedCell) load() value {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.v
}

func (c *sharedCell) store(v value) {
	c.mu.Lock()
	c.v = v
	c.mu.Unlock()
}

// frame holds one task's (or one force member's) variables.  Scalars are
// per-frame; arrays and shared cells are shared by reference when a frame is
// copied for a force member, which gives SHARED COMMON its paper semantics
// while keeping ordinary scalars member-private.
type frame struct {
	vars   map[string]value
	kinds  map[string]valKind
	arrays map[string]*array
	shared map[string]*sharedCell
}

func newFrame() *frame {
	return &frame{
		vars:   make(map[string]value),
		kinds:  make(map[string]valKind),
		arrays: make(map[string]*array),
		shared: make(map[string]*sharedCell),
	}
}

// copyForMember clones the frame for a secondary force member: scalars are
// copied (member-private), arrays and shared cells are shared by reference.
func (f *frame) copyForMember() *frame {
	g := newFrame()
	for k, v := range f.vars {
		g.vars[k] = v
	}
	for k, v := range f.kinds {
		g.kinds[k] = v
	}
	for k, v := range f.arrays {
		g.arrays[k] = v
	}
	for k, v := range f.shared {
		g.shared[k] = v
	}
	return g
}

// declaredKind returns the kind a scalar name would take on first assignment.
func (f *frame) declaredKind(name string) valKind {
	if k, ok := f.kinds[name]; ok {
		return k
	}
	return implicitKind(name)
}

// --- expression evaluation ---------------------------------------------------

func (st *execState) eval(e expr) (value, error) {
	switch e := e.(type) {
	case litE:
		return e.v, nil
	case nameE:
		return st.evalName(e.name)
	case callE:
		return st.evalCall(e)
	case unE:
		x, err := st.eval(e.x)
		if err != nil {
			return value{}, err
		}
		return applyUnary(e.op, x)
	case binE:
		x, err := st.eval(e.x)
		if err != nil {
			return value{}, err
		}
		y, err := st.eval(e.y)
		if err != nil {
			return value{}, err
		}
		return applyBinary(e.op, x, y)
	}
	return value{}, fmt.Errorf("internal error: unknown expression %T", e)
}

func (st *execState) evalName(name string) (value, error) {
	if v, ok := st.f.vars[name]; ok {
		return v, nil
	}
	if c, ok := st.f.shared[name]; ok {
		return c.load(), nil
	}
	if _, ok := st.f.arrays[name]; ok {
		return value{}, fmt.Errorf("array %s used without subscripts", name)
	}
	if v, ok, err := st.intrinsic(name, nil); ok {
		return v, err
	}
	return value{}, fmt.Errorf("variable %s used before it is set", name)
}

func (st *execState) evalCall(e callE) (value, error) {
	if a, ok := st.f.arrays[e.name]; ok {
		idx, err := st.evalSubscripts(e.args)
		if err != nil {
			return value{}, err
		}
		off, err := a.offset(e.name, idx)
		if err != nil {
			return value{}, err
		}
		return a.data[off], nil
	}
	args := make([]value, len(e.args))
	for i, a := range e.args {
		v, err := st.eval(a)
		if err != nil {
			return value{}, err
		}
		args[i] = v
	}
	if v, ok, err := st.intrinsic(e.name, args); ok {
		return v, err
	}
	return value{}, fmt.Errorf("%s is neither a declared array nor a known function", e.name)
}

func (st *execState) evalSubscripts(args []expr) ([]int64, error) {
	idx := make([]int64, len(args))
	for i, a := range args {
		v, err := st.eval(a)
		if err != nil {
			return nil, err
		}
		n, err := v.toInt()
		if err != nil {
			return nil, err
		}
		idx[i] = n
	}
	return idx, nil
}

// evalInt evaluates an expression and converts to INTEGER.
func (st *execState) evalInt(e expr) (int64, error) {
	v, err := st.eval(e)
	if err != nil {
		return 0, err
	}
	return v.toInt()
}

// assign stores a value into a scalar, shared cell, or array element.
func (st *execState) assign(name string, index []expr, v value) error {
	if index == nil {
		if c, ok := st.f.shared[name]; ok {
			cv, err := convert(v, c.load().kind)
			if err != nil {
				return fmt.Errorf("%s: %v", name, err)
			}
			c.store(cv)
			return nil
		}
		if _, ok := st.f.arrays[name]; ok {
			return fmt.Errorf("array %s assigned without subscripts", name)
		}
		cv, err := convert(v, st.f.declaredKind(name))
		if err != nil {
			return fmt.Errorf("%s: %v", name, err)
		}
		st.f.vars[name] = cv
		return nil
	}
	a, ok := st.f.arrays[name]
	if !ok {
		return fmt.Errorf("%s is not a declared array", name)
	}
	idx, err := st.evalSubscripts(index)
	if err != nil {
		return err
	}
	off, err := a.offset(name, idx)
	if err != nil {
		return err
	}
	cv, err := convert(v, a.kind)
	if err != nil {
		return fmt.Errorf("%s: %v", name, err)
	}
	a.data[off] = cv
	return nil
}

// --- operators ---------------------------------------------------------------

func applyUnary(op string, x value) (value, error) {
	switch op {
	case "-":
		switch x.kind {
		case kInt:
			return intVal(-x.i), nil
		case kReal:
			return realVal(-x.r), nil
		}
		return value{}, fmt.Errorf("unary - applied to %s value", x.kind)
	case "NOT":
		b, err := x.truth()
		if err != nil {
			return value{}, err
		}
		return boolVal(!b), nil
	}
	return value{}, fmt.Errorf("internal error: unknown unary operator %q", op)
}

func applyBinary(op string, x, y value) (value, error) {
	switch op {
	case "+", "-", "*", "/", "**":
		return applyArith(op, x, y)
	case "EQ", "NE", "LT", "LE", "GT", "GE":
		return applyCompare(op, x, y)
	case "AND", "OR", "EQV", "NEQV":
		a, err := x.truth()
		if err != nil {
			return value{}, err
		}
		b, err := y.truth()
		if err != nil {
			return value{}, err
		}
		switch op {
		case "AND":
			return boolVal(a && b), nil
		case "OR":
			return boolVal(a || b), nil
		case "EQV":
			return boolVal(a == b), nil
		default:
			return boolVal(a != b), nil
		}
	}
	return value{}, fmt.Errorf("internal error: unknown operator %q", op)
}

// applyArith implements Fortran numeric rules: INTEGER op INTEGER stays
// INTEGER (including truncating division); mixed operands promote to REAL.
func applyArith(op string, x, y value) (value, error) {
	if x.kind == kInt && y.kind == kInt {
		switch op {
		case "+":
			return intVal(x.i + y.i), nil
		case "-":
			return intVal(x.i - y.i), nil
		case "*":
			return intVal(x.i * y.i), nil
		case "/":
			if y.i == 0 {
				return value{}, fmt.Errorf("INTEGER division by zero")
			}
			return intVal(x.i / y.i), nil
		case "**":
			return intPow(x.i, y.i)
		}
	}
	a, err := x.toReal()
	if err != nil {
		return value{}, fmt.Errorf("operator %s: %v", opSource(op), err)
	}
	b, err := y.toReal()
	if err != nil {
		return value{}, fmt.Errorf("operator %s: %v", opSource(op), err)
	}
	switch op {
	case "+":
		return realVal(a + b), nil
	case "-":
		return realVal(a - b), nil
	case "*":
		return realVal(a * b), nil
	case "/":
		if b == 0 {
			return value{}, fmt.Errorf("REAL division by zero")
		}
		return realVal(a / b), nil
	case "**":
		return realVal(math.Pow(a, b)), nil
	}
	return value{}, fmt.Errorf("internal error: unknown arithmetic operator %q", op)
}

func intPow(base, exp int64) (value, error) {
	if exp < 0 {
		if base == 0 {
			return value{}, fmt.Errorf("0 ** negative exponent")
		}
		// Fortran INTEGER ** negative truncates toward zero.
		switch base {
		case 1:
			return intVal(1), nil
		case -1:
			if exp%2 == 0 {
				return intVal(1), nil
			}
			return intVal(-1), nil
		default:
			return intVal(0), nil
		}
	}
	// Exponentiation by squaring: O(log exp) even for absurd exponents.
	result := int64(1)
	for exp > 0 {
		if exp&1 == 1 {
			result *= base
		}
		base *= base
		exp >>= 1
	}
	return intVal(result), nil
}

func applyCompare(op string, x, y value) (value, error) {
	// TASKID and CHARACTER values support equality comparison.
	if x.kind == kTaskID && y.kind == kTaskID {
		switch op {
		case "EQ":
			return boolVal(x.id == y.id), nil
		case "NE":
			return boolVal(x.id != y.id), nil
		}
		return value{}, fmt.Errorf("TASKID values only compare with .EQ./.NE.")
	}
	if x.kind == kStr && y.kind == kStr {
		switch op {
		case "EQ":
			return boolVal(x.s == y.s), nil
		case "NE":
			return boolVal(x.s != y.s), nil
		case "LT":
			return boolVal(x.s < y.s), nil
		case "LE":
			return boolVal(x.s <= y.s), nil
		case "GT":
			return boolVal(x.s > y.s), nil
		default:
			return boolVal(x.s >= y.s), nil
		}
	}
	a, err := x.toReal()
	if err != nil {
		return value{}, fmt.Errorf("comparison .%s.: %v", op, err)
	}
	b, err := y.toReal()
	if err != nil {
		return value{}, fmt.Errorf("comparison .%s.: %v", op, err)
	}
	switch op {
	case "EQ":
		return boolVal(a == b), nil
	case "NE":
		return boolVal(a != b), nil
	case "LT":
		return boolVal(a < b), nil
	case "LE":
		return boolVal(a <= b), nil
	case "GT":
		return boolVal(a > b), nil
	default:
		return boolVal(a >= b), nil
	}
}

func opSource(op string) string {
	switch op {
	case "+", "-", "*", "/", "**":
		return op
	default:
		return "." + op + "."
	}
}

// --- intrinsics --------------------------------------------------------------

// intrinsicAliases maps the classic Fortran type-specific generic names onto
// the base intrinsic.
var intrinsicAliases = map[string]string{
	"IABS": "ABS", "DABS": "ABS",
	"AMOD": "MOD",
	"MIN0": "MIN", "AMIN0": "MIN", "AMIN1": "MIN", "MIN1": "MIN",
	"MAX0": "MAX", "AMAX0": "MAX", "AMAX1": "MAX", "MAX1": "MAX",
	"FLOAT": "REAL", "DBLE": "REAL",
	"IFIX": "INT", "IDINT": "INT",
	"ALOG": "LOG", "DLOG": "LOG", "DSQRT": "SQRT", "DEXP": "EXP",
	"DSIN": "SIN", "DCOS": "COS",
}

// intrinsic evaluates a built-in function.  The boolean result reports
// whether the name is an intrinsic at all (so undeclared variables and
// unknown functions produce their own errors).
func (st *execState) intrinsic(name string, args []value) (value, bool, error) {
	if base, ok := intrinsicAliases[name]; ok {
		name = base
	}
	fail := func(format string, a ...any) (value, bool, error) {
		return value{}, true, fmt.Errorf(name+": "+format, a...)
	}
	switch name {
	// --- Pisces run-time queries ---
	case "SELF":
		return idVal(st.t.ID()), true, nil
	case "PARENT":
		return idVal(st.t.Parent()), true, nil
	case "SENDER":
		return idVal(st.t.Sender()), true, nil
	case "CLUSTER":
		return intVal(int64(st.t.Cluster())), true, nil
	case "MEMBER":
		// 1-based, matching the paper's "the Ith force member".
		if st.m == nil {
			return intVal(1), true, nil
		}
		return intVal(int64(st.m.Member() + 1)), true, nil
	case "MEMBERS":
		if st.m == nil {
			return intVal(1), true, nil
		}
		return intVal(int64(st.m.Members())), true, nil
	case "QLEN":
		return intVal(int64(st.t.QueueLength())), true, nil

	// --- last ACCEPT result ---
	case "TIMEDOUT":
		if st.lastAccept == nil {
			return boolVal(false), true, nil
		}
		return boolVal(st.lastAccept.TimedOut), true, nil
	case "NMSG":
		if len(args) != 1 || args[0].kind != kStr {
			return fail("needs one CHARACTER message-type argument")
		}
		if st.lastAccept == nil {
			return intVal(0), true, nil
		}
		return intVal(int64(st.lastAccept.Count(strings.ToUpper(args[0].s)))), true, nil
	case "MSGI", "MSGR", "MSGS", "MSGT", "MSGW":
		v, err := st.msgArg(name, args)
		return v, true, err

	// --- windows ---
	case "WROWS", "WCOLS":
		if len(args) != 1 || args[0].kind != kWindow {
			return fail("needs one WINDOW argument")
		}
		if name == "WROWS" {
			return intVal(int64(args[0].win.Rows())), true, nil
		}
		return intVal(int64(args[0].win.Cols())), true, nil

	// --- numeric intrinsics ---
	case "ABS":
		if len(args) != 1 {
			return fail("needs one argument")
		}
		if args[0].kind == kInt {
			if args[0].i < 0 {
				return intVal(-args[0].i), true, nil
			}
			return args[0], true, nil
		}
		r, err := args[0].toReal()
		if err != nil {
			return fail("%v", err)
		}
		return realVal(math.Abs(r)), true, nil
	case "MOD":
		if len(args) != 2 {
			return fail("needs two arguments")
		}
		if args[0].kind == kInt && args[1].kind == kInt {
			if args[1].i == 0 {
				return fail("division by zero")
			}
			return intVal(args[0].i % args[1].i), true, nil
		}
		a, err1 := args[0].toReal()
		b, err2 := args[1].toReal()
		if err1 != nil || err2 != nil || b == 0 {
			return fail("bad arguments")
		}
		return realVal(math.Mod(a, b)), true, nil
	case "MIN", "MAX":
		if len(args) < 2 {
			return fail("needs at least two arguments")
		}
		allInt := true
		for _, a := range args {
			if a.kind != kInt {
				allInt = false
			}
		}
		if allInt {
			// Compare on int64 directly: going through float64 loses
			// precision above 2**53.
			best := args[0].i
			for _, a := range args[1:] {
				if (name == "MIN" && a.i < best) || (name == "MAX" && a.i > best) {
					best = a.i
				}
			}
			return intVal(best), true, nil
		}
		best, err := args[0].toReal()
		if err != nil {
			return fail("%v", err)
		}
		for _, a := range args[1:] {
			r, err := a.toReal()
			if err != nil {
				return fail("%v", err)
			}
			if (name == "MIN" && r < best) || (name == "MAX" && r > best) {
				best = r
			}
		}
		return realVal(best), true, nil
	case "INT":
		if len(args) != 1 {
			return fail("needs one argument")
		}
		n, err := args[0].toInt()
		if err != nil {
			return fail("%v", err)
		}
		return intVal(n), true, nil
	case "NINT":
		if len(args) != 1 {
			return fail("needs one argument")
		}
		r, err := args[0].toReal()
		if err != nil {
			return fail("%v", err)
		}
		return intVal(int64(math.Round(r))), true, nil
	case "REAL":
		if len(args) != 1 {
			return fail("needs one argument")
		}
		r, err := args[0].toReal()
		if err != nil {
			return fail("%v", err)
		}
		return realVal(r), true, nil
	case "SQRT", "EXP", "LOG", "SIN", "COS":
		if len(args) != 1 {
			return fail("needs one argument")
		}
		r, err := args[0].toReal()
		if err != nil {
			return fail("%v", err)
		}
		switch name {
		case "SQRT":
			if r < 0 {
				return fail("negative argument %g", r)
			}
			return realVal(math.Sqrt(r)), true, nil
		case "EXP":
			return realVal(math.Exp(r)), true, nil
		case "LOG":
			if r <= 0 {
				return fail("non-positive argument %g", r)
			}
			return realVal(math.Log(r)), true, nil
		case "SIN":
			return realVal(math.Sin(r)), true, nil
		default:
			return realVal(math.Cos(r)), true, nil
		}
	}
	return value{}, false, nil
}

// msgArg implements MSGI/MSGR/MSGS/MSGT/MSGW('TYPE', i, j): the j-th argument
// of the i-th accepted message of the given type from the task's most recent
// ACCEPT statement (both indices 1-based).
func (st *execState) msgArg(name string, args []value) (value, error) {
	if len(args) != 3 || args[0].kind != kStr {
		return value{}, fmt.Errorf("%s needs ('TYPE', message, argument)", name)
	}
	msgType := strings.ToUpper(args[0].s)
	i, err1 := args[1].toInt()
	j, err2 := args[2].toInt()
	if err1 != nil || err2 != nil {
		return value{}, fmt.Errorf("%s indices must be INTEGER", name)
	}
	if st.lastAccept == nil {
		return value{}, fmt.Errorf("%s used before any ACCEPT", name)
	}
	msgs := st.lastAccept.ByType[msgType]
	if i < 1 || i > int64(len(msgs)) {
		return value{}, fmt.Errorf("%s: message %d of type %s not accepted (have %d)", name, i, msgType, len(msgs))
	}
	m := msgs[i-1]
	if j < 1 || j > int64(len(m.Args)) {
		return value{}, fmt.Errorf("%s: message %s has %d arguments, asked for %d", name, msgType, len(m.Args), j)
	}
	v, err := fromCoreValue(m.Args[j-1])
	if err != nil {
		return value{}, fmt.Errorf("%s: %v", name, err)
	}
	want := map[string]valKind{"MSGI": kInt, "MSGR": kReal, "MSGS": kStr, "MSGT": kTaskID, "MSGW": kWindow}[name]
	cv, err := convert(v, want)
	if err != nil {
		return value{}, fmt.Errorf("%s: %v", name, err)
	}
	return cv, nil
}

// --- core.Value conversions --------------------------------------------------

// fromCoreValue converts a message/initiation argument to an interpreter
// value.  Array arguments are handled separately by bindParam.
func fromCoreValue(v core.Value) (value, error) {
	switch v.Kind {
	case msgcodec.KindInteger:
		return intVal(v.Integer), nil
	case msgcodec.KindReal:
		return realVal(v.Real), nil
	case msgcodec.KindLogical:
		return boolVal(v.Logical), nil
	case msgcodec.KindCharacter:
		return strVal(v.Character), nil
	case msgcodec.KindTaskID:
		id, err := core.AsID(v)
		if err != nil {
			return value{}, err
		}
		return idVal(id), nil
	case msgcodec.KindWindow:
		w, err := core.AsWin(v)
		if err != nil {
			return value{}, err
		}
		return winVal(w), nil
	}
	return value{}, fmt.Errorf("%s argument has no scalar interpreter form", v.Kind)
}

// toCoreValue converts an interpreter value to a message argument.
func toCoreValue(v value) (core.Value, error) {
	switch v.kind {
	case kInt:
		return core.Int(v.i), nil
	case kReal:
		return core.Real(v.r), nil
	case kBool:
		return core.Bool(v.b), nil
	case kStr:
		return core.Str(v.s), nil
	case kTaskID:
		return core.ID(v.id), nil
	case kWindow:
		return core.Win(v.win), nil
	}
	return core.Value{}, fmt.Errorf("internal error: unknown value kind %d", v.kind)
}
