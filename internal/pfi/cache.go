package pfi

import (
	"container/list"
	"sync"
	"sync/atomic"
)

// DefaultCacheBytes is the weight bound of the package-level compile cache
// and of any UnitCache built with NewUnitCache(0).  Compiled units weigh a
// few KB each (see unitWeight), so the default holds on the order of a
// thousand distinct programs — far more than a CLI run or test suite needs,
// small enough that a long-lived daemon cannot grow without limit.
const DefaultCacheBytes = 16 << 20

// UnitCache memoises compiled units by source text so repeated Compile calls
// on the same program skip lexing, parsing, and code generation.  Unlike the
// process-wide sync.Map it replaces, a UnitCache is an explicit handle — a
// serving daemon shares one across every tenant, while fuzzers and
// benchmarks build private caches (or use CompileUncached) so their garbage
// cannot pollute anyone else's — and it is bounded: entries are evicted in
// least-recently-used order once the summed compiled-unit weight exceeds the
// configured maximum.
//
// A UnitCache is safe for concurrent use.
type UnitCache struct {
	mu       sync.Mutex
	maxBytes int64
	weight   int64
	ll       *list.List               // front = most recently used; values are *cacheEntry
	entries  map[string]*list.Element // source text -> element

	hits      atomic.Int64
	misses    atomic.Int64
	evictions atomic.Int64
}

type cacheEntry struct {
	src  string
	unit *compiledUnit
}

// NewUnitCache builds a cache bounded to maxBytes of compiled-unit weight;
// maxBytes <= 0 selects DefaultCacheBytes.
func NewUnitCache(maxBytes int64) *UnitCache {
	if maxBytes <= 0 {
		maxBytes = DefaultCacheBytes
	}
	return &UnitCache{
		maxBytes: maxBytes,
		ll:       list.New(),
		entries:  make(map[string]*list.Element),
	}
}

// Compile parses and compiles src, consulting and populating the cache.  A
// hit returns a fresh Program (own counters, own error state) over the
// shared compiled unit without re-parsing.
func (c *UnitCache) Compile(src string) (*Program, error) {
	p, _, err := c.CompileTrace(src)
	return p, err
}

// CompileTrace is Compile plus a report of whether the unit came from the
// cache, so callers (the serving daemon) can attribute hit/miss traffic per
// tenant.
func (c *UnitCache) CompileTrace(src string) (*Program, bool, error) {
	if u := c.lookup(src); u != nil {
		return newProgram(u), true, nil
	}
	u, err := compileUnit(src)
	if err != nil {
		return nil, false, err
	}
	c.insert(src, u)
	return newProgram(u), false, nil
}

// lookup returns the cached unit for src and marks it most recently used,
// or nil on a miss.
func (c *UnitCache) lookup(src string) *compiledUnit {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[src]
	if !ok {
		c.misses.Add(1)
		return nil
	}
	c.ll.MoveToFront(el)
	c.hits.Add(1)
	return el.Value.(*cacheEntry).unit
}

// insert stores a freshly compiled unit, evicting least-recently-used
// entries until the cache is back under its weight bound.  The entry being
// inserted is never evicted, so a single unit heavier than the whole bound
// still compiles and caches (and is evicted by the next insert).
func (c *UnitCache) insert(src string, u *compiledUnit) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[src]; ok {
		// Two goroutines compiled the same source concurrently; keep the
		// entry that won and let the duplicate unit be collected.
		c.ll.MoveToFront(el)
		return
	}
	el := c.ll.PushFront(&cacheEntry{src: src, unit: u})
	c.entries[src] = el
	c.weight += u.weight
	for c.weight > c.maxBytes && c.ll.Len() > 1 {
		back := c.ll.Back()
		ent := back.Value.(*cacheEntry)
		c.ll.Remove(back)
		delete(c.entries, ent.src)
		c.weight -= ent.unit.weight
		c.evictions.Add(1)
	}
}

// CacheStats is a snapshot of a UnitCache's accounting.
type CacheStats struct {
	Hits      int64 // lookups that found a compiled unit
	Misses    int64 // lookups that had to compile
	Evictions int64 // units dropped to stay under MaxBytes
	Entries   int   // compiled units currently cached
	Weight    int64 // summed weight of cached units, in bytes
	MaxBytes  int64 // configured weight bound
}

// Stats returns a snapshot of the cache's counters.
func (c *UnitCache) Stats() CacheStats {
	c.mu.Lock()
	entries := c.ll.Len()
	weight := c.weight
	maxBytes := c.maxBytes
	c.mu.Unlock()
	return CacheStats{
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Evictions: c.evictions.Load(),
		Entries:   entries,
		Weight:    weight,
		MaxBytes:  maxBytes,
	}
}

// defaultCache backs the package-level Compile, preserving its historical
// behaviour (repeated `pisces run`, benchmark loops, and test suites share
// compiled units process-wide) while bounding what used to be an unbounded
// sync.Map.
var defaultCache = NewUnitCache(0)

// DefaultCache returns the process-wide cache used by Compile.
func DefaultCache() *UnitCache { return defaultCache }
