package pfi

import (
	"fmt"
	"strings"
	"sync"

	"repro/internal/core"
	"repro/internal/loops"
	"repro/internal/obs"
)

// ctlKind is the control-flow outcome of executing a statement sequence.
type ctlKind int

const (
	ctlNext   ctlKind = iota
	ctlGoto           // transfer to a statement label (propagates outward until found)
	ctlStop           // STOP: terminate the task
	ctlReturn         // RETURN/END: terminate the task body normally
)

type ctl struct {
	kind  ctlKind
	label string
}

var ctlOK = ctl{kind: ctlNext}

// lockTable is the task-level LOCK variable registry, shared by every member
// of the task's forces.
type lockTable struct {
	mu     sync.Mutex
	byName map[string]*core.Lock
}

// get returns the named lock, creating it on first use.
func (lt *lockTable) get(t *core.Task, name string) (*core.Lock, error) {
	lt.mu.Lock()
	defer lt.mu.Unlock()
	if l, ok := lt.byName[name]; ok {
		return l, nil
	}
	l, err := t.NewLock(name)
	if err != nil {
		return nil, err
	}
	lt.byName[name] = l
	return l, nil
}

// stickyErr collects the first error raised inside a FORCESPLIT region.
// Inside a region, a failing statement is recorded and skipped rather than
// aborting the member: an aborting member would desert the force and leave
// the others waiting forever at the next BARRIER, turning a reportable error
// into a deadlock.  Skipping one statement keeps every member aligned on the
// region's collective operations, and the recorded error fails the task once
// the force has joined.
type stickyErr struct {
	mu  sync.Mutex
	err error
}

func (s *stickyErr) record(err error) {
	s.mu.Lock()
	if s.err == nil {
		s.err = err
	}
	s.mu.Unlock()
}

func (s *stickyErr) get() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

// execState is the execution context of one task (or one force member of a
// task): the frame, the optional member handle, and the most recent ACCEPT
// result for the MSG* intrinsics.
type execState struct {
	p          *Program
	tp         *taskProgram
	t          *core.Task
	m          *core.ForceMember
	f          *frame
	locks      *lockTable
	lastAccept *core.AcceptResult
	forceSize  int        // cached cluster force size; 0 = not yet computed
	sticky     *stickyErr // non-nil inside a FORCESPLIT region
	argv       []value    // intrinsic argument stack, reused across calls
	// yield makes every statement boundary a scheduling point.  It is set
	// only under a deterministic backend, where per-statement yields let the
	// seeded scheduler explore statement-level interleavings; the goroutine
	// backend keeps its statement loop free of per-statement CPU churn.
	yield bool
	// obsReg/obsStmt are set at task start only when metrics are enabled, so
	// the statement loop pays a nil check per statement when they are off
	// (the enable mask is sampled once per task, like yield).
	obsReg  *obs.Registry
	obsStmt *obs.Histogram
}

// schedPoint offers the deterministic scheduler a chance to interleave
// another task between two interpreted statements.
func (st *execState) schedPoint() {
	if !st.yield {
		return
	}
	if st.m != nil {
		st.m.Yield()
	} else {
		st.t.Yield()
	}
}

// requirePrimary guards message and terminal operations inside a force
// region: only the primary member owns the task's message machinery.
func (st *execState) requirePrimary(op string) error {
	if st.m != nil && !st.m.IsPrimary() {
		return fmt.Errorf("%s inside a FORCESPLIT region is limited to the primary member (use a BARRIER body)", op)
	}
	return nil
}

// execSeq executes a compiled statement sequence, resolving GOTOs whose
// target label is in this sequence and propagating every other control
// transfer outward.  Inside a force region (sticky mode) a failing statement
// is recorded and skipped so the member stays aligned on the region's
// collectives.
func (st *execState) execSeq(ns []cstmt) (ctl, error) {
	pc := 0
	for pc < len(ns) {
		s := &ns[pc]
		st.p.cs.statements.Inc()
		st.schedPoint()
		var c ctl
		var err error
		if st.obsStmt != nil {
			t0 := st.obsReg.Now()
			c, err = s.run(st)
			st.obsStmt.ObserveDuration(st.obsReg.Now().Sub(t0))
		} else {
			c, err = s.run(st)
		}
		if err != nil {
			if s.line > 0 {
				if _, ok := err.(*Error); !ok {
					err = &Error{Line: s.line, Msg: err.Error()}
				}
			}
			if st.sticky != nil {
				st.sticky.record(st.memberErr(err))
				if st.m != nil && s.collective {
					// Skipping a statement that contains collective
					// operations would strand the other members at them;
					// degrade the whole force's synchronisation instead.
					st.m.Abort()
				}
				pc++
				continue
			}
			return ctl{}, err
		}
		switch c.kind {
		case ctlNext:
			pc++
		case ctlGoto:
			if i, ok := findLabel(ns, c.label); ok {
				pc = i
				continue
			}
			return c, nil
		default:
			return c, nil
		}
	}
	return ctlOK, nil
}

// memberErr stamps an error with the force-member number when raised inside
// a region.
func (st *execState) memberErr(err error) error {
	if st.m != nil {
		return fmt.Errorf("force member %d: %w", st.m.Member()+1, err)
	}
	return err
}

func findLabel(ns []cstmt, label string) (int, bool) {
	for i := range ns {
		if ns[i].label == label {
			return i, true
		}
	}
	return 0, false
}

// --- ordinary statements -----------------------------------------------------

func (st *execState) execDo(d *cdo) (ctl, error) {
	lo, hi, step, err := st.loopBounds(d.lo, d.hi, d.step)
	if err != nil {
		return ctl{}, err
	}
	var brk ctl
	var bodyErr error
	err = loops.ForEach(lo, hi, step, func(i int) bool {
		st.p.cs.loopIterations.Inc()
		if e := d.store(st, intVal(int64(i))); e != nil {
			bodyErr = e
			return false
		}
		c, e := st.execSeq(d.body)
		if e != nil {
			bodyErr = e
			return false
		}
		if c.kind != ctlNext {
			brk = c
			return false
		}
		return true
	})
	if err != nil {
		return ctl{}, err
	}
	if bodyErr != nil {
		return ctl{}, bodyErr
	}
	if brk.kind != ctlNext {
		return brk, nil
	}
	return ctlOK, nil
}

func (st *execState) loopBounds(lo, hi, step cexpr) (l, h, s int, err error) {
	lv, err := st.evalInt(lo)
	if err != nil {
		return 0, 0, 0, err
	}
	hv, err := st.evalInt(hi)
	if err != nil {
		return 0, 0, 0, err
	}
	sv, err := st.evalInt(step)
	if err != nil {
		return 0, 0, 0, err
	}
	return int(lv), int(hv), int(sv), nil
}

func (st *execState) execPrint(items []cexpr) error {
	if err := st.requirePrimary("PRINT"); err != nil {
		return err
	}
	var sb strings.Builder
	for i, e := range items {
		v, err := e(st)
		if err != nil {
			return err
		}
		if i > 0 {
			sb.WriteByte(' ')
		}
		sb.WriteString(v.format())
	}
	st.p.cs.prints.Inc()
	return st.printLine(sb.String())
}

// printLine sends one line of output to the user terminal by way of the user
// controller, as "TO USER SEND" does.
func (st *execState) printLine(line string) error {
	return st.t.SendUser("print", core.Str(line+"\n"))
}

func (st *execState) execDecl(items []cdeclItem) error {
	for i := range items {
		d := &items[i]
		b := &st.f.slots[d.slot]
		if len(d.dims) == 0 {
			b.kind = d.kind
			if c := b.cell; c != nil {
				cv, err := convert(c.load(), d.kind)
				if err != nil {
					return fmt.Errorf("%s: %v", d.name, err)
				}
				c.store(cv)
				continue
			}
			if b.v.kind != kNone {
				cv, err := convert(b.v, d.kind)
				if err != nil {
					return fmt.Errorf("%s: %v", d.name, err)
				}
				b.v = cv
				continue
			}
			if d.kind == kWindow {
				// A WINDOW declaration defines the zero window: the run-time
				// already treats a never-assigned WINDOW as zero (see
				// value.windowPayload), and programs have no other way to
				// manufacture a window value, so reading one before its first
				// assignment must not be a use-before-set error.
				b.v = value{kind: kWindow}
			}
			continue
		}
		rows, cols, err := st.arrayExtents(d)
		if err != nil {
			return err
		}
		if a := b.arr; a != nil {
			// Re-declaration (typing a SHARED COMMON array, or the required
			// declaration of an array-valued tasktype parameter): re-kind and
			// reshape the existing storage in place, preserving its values in
			// Fortran storage order, so every sharer sees the change and
			// INITIATE-passed data survives — including 1-D message arrays
			// bound to parameters declared two-dimensional.
			n := rows
			if cols > 0 {
				n = rows * cols
			}
			if len(a.data) != n {
				return fmt.Errorf("array %s re-declared with conflicting extents", d.name)
			}
			for i := range a.data {
				cv, err := convert(a.data[i], d.kind)
				if err != nil {
					return fmt.Errorf("%s: %v", d.name, err)
				}
				a.data[i] = cv
			}
			a.kind = d.kind
			a.rows, a.cols = rows, cols
			continue
		}
		b.arr = newArray(d.kind, rows, cols)
	}
	return nil
}

func (st *execState) arrayExtents(d *cdeclItem) (rows, cols int, err error) {
	r, err := st.evalInt(d.dims[0])
	if err != nil {
		return 0, 0, err
	}
	if r < 1 {
		return 0, 0, fmt.Errorf("array %s has non-positive extent %d", d.name, r)
	}
	rows = int(r)
	if len(d.dims) == 2 {
		cv, err := st.evalInt(d.dims[1])
		if err != nil {
			return 0, 0, err
		}
		if cv < 1 {
			return 0, 0, fmt.Errorf("array %s has non-positive extent %d", d.name, cv)
		}
		cols = int(cv)
	}
	return rows, cols, nil
}

// --- Pisces statements -------------------------------------------------------

func (st *execState) execInitiate(c *cinitiate) error {
	if err := st.requirePrimary("INITIATE"); err != nil {
		return err
	}
	var placement core.Placement
	switch c.placement {
	case placeAny:
		placement = core.Any()
	case placeOther:
		placement = core.Other()
	case placeSame:
		placement = core.Same()
	case placeCluster:
		cl, err := st.evalInt(c.clusterX)
		if err != nil {
			return err
		}
		placement = core.OnCluster(int(cl))
	}
	args, err := st.evalSendArgs(c.args)
	if err != nil {
		return err
	}
	st.p.cs.initiates.Inc()
	return st.t.Initiate(placement, c.tasktype, args...)
}

func (st *execState) execSend(c *csend) error {
	if err := st.requirePrimary("SEND"); err != nil {
		return err
	}
	args, err := st.evalSendArgs(c.args)
	if err != nil {
		return err
	}
	st.p.cs.sends.Inc()
	switch c.dest {
	case destParent:
		return st.t.SendParent(c.msgType, args...)
	case destSelf:
		return st.t.SendSelf(c.msgType, args...)
	case destSender:
		return st.t.SendSender(c.msgType, args...)
	case destUser:
		return st.t.SendUser(c.msgType, args...)
	case destAll:
		return st.t.Broadcast(c.msgType, args...)
	case destAllCluster:
		cl, err := st.evalInt(c.clusterX)
		if err != nil {
			return err
		}
		return st.t.BroadcastCluster(int(cl), c.msgType, args...)
	case destTContr:
		cl, err := st.evalInt(c.clusterX)
		if err != nil {
			return err
		}
		return st.t.SendTaskController(int(cl), c.msgType, args...)
	default:
		v, err := c.destX(st)
		if err != nil {
			return err
		}
		if v.kind != kTaskID {
			return fmt.Errorf("SEND destination is %s, not a TASKID", v.kind)
		}
		return st.t.Send(v.id, c.msgType, args...)
	}
}

func (st *execState) execAccept(a *caccept) (ctl, error) {
	if err := st.requirePrimary("ACCEPT"); err != nil {
		return ctl{}, err
	}
	spec, err := st.acceptSpec(a)
	if err != nil {
		return ctl{}, err
	}
	res, err := st.t.Accept(spec)
	if err != nil {
		return ctl{}, err
	}
	if old := st.lastAccept; old != nil && old != res && st.m == nil && st.sticky == nil {
		// Outside any force region the interpreter is the sole owner of the
		// previous result; its message headers go back to the run-time pool.
		st.t.RecycleAccept(old)
	}
	st.lastAccept = res
	st.p.cs.accepts.Inc()
	if res.TimedOut {
		st.p.cs.acceptTimeouts.Inc()
		// The DELAY ... THEN sequence runs with the ACCEPT's result already
		// installed, so TIMEDOUT(), NMSG, and MSG* reflect this ACCEPT.
		if len(a.onTimeout) > 0 {
			return st.execSeq(a.onTimeout)
		}
	}
	return ctlOK, nil
}

// forceMembers returns the force size of the task's cluster (1 + the
// cluster's secondary PEs), computed once per task: Configuration() clones
// the whole mapping, too costly to repeat on every FORCESPLIT.
func (st *execState) forceMembers() int {
	if st.forceSize == 0 {
		st.forceSize = 1
		cfg := st.t.VM().Configuration()
		if cl := cfg.Cluster(st.t.Cluster()); cl != nil {
			st.forceSize = cl.ForceSize()
		}
	}
	return st.forceSize
}

func (st *execState) execForce(body []cstmt) (ctl, error) {
	if st.m != nil {
		return ctl{}, fmt.Errorf("nested FORCESPLIT")
	}
	st.p.cs.forceSplits.Inc()
	// Pre-copy the secondary members' frames so no member reads the primary's
	// frame while the primary is already executing the region.
	members := st.forceMembers()
	frames := make([]*frame, members)
	for i := 1; i < members; i++ {
		frames[i] = st.f.copyForMember()
	}
	sticky := &stickyErr{}
	// Captured once before the split: every member reads the same pre-split
	// ACCEPT result (MSG*/NMSG/TIMEDOUT intrinsics), so region control flow
	// that depends on it stays identical across the force.  The primary's
	// post-region result is written back only after ForceSplit has joined.
	preAccept := st.lastAccept
	primAccept := preAccept
	err := st.t.ForceSplit(func(m *core.ForceMember) {
		sub := &execState{p: st.p, tp: st.tp, t: st.t, m: m, locks: st.locks,
			sticky: sticky, lastAccept: preAccept, yield: st.yield,
			obsReg: st.obsReg, obsStmt: st.obsStmt}
		if m.IsPrimary() {
			sub.f = st.f
		} else {
			sub.f = frames[m.Member()]
		}
		c, _ := sub.execSeq(body) // statement errors are in sticky
		if m.IsPrimary() {
			primAccept = sub.lastAccept
		}
		// A control transfer out of the region deserts the force — the other
		// members would wait forever at their next barrier — so it is an
		// error for every member, the primary included.
		switch c.kind {
		case ctlGoto:
			sticky.record(sub.memberErr(fmt.Errorf("GOTO %s escapes the FORCESPLIT region", c.label)))
		case ctlStop, ctlReturn:
			sticky.record(sub.memberErr(fmt.Errorf("STOP/RETURN inside a FORCESPLIT region would desert the force")))
		}
	})
	if err != nil {
		return ctl{}, err
	}
	// The primary continues as the task after the force: state it changed in
	// the region (its latest ACCEPT) must survive.
	st.lastAccept = primAccept
	if err := sticky.get(); err != nil {
		return ctl{}, err
	}
	return ctlOK, nil
}

func (st *execState) execBarrier(body []cstmt) (ctl, error) {
	st.p.cs.barriers.Inc()
	if st.m == nil {
		return st.execSeq(body)
	}
	var c ctl
	var err error
	st.m.Barrier(func() { c, err = st.execSeq(body) })
	if err != nil {
		return ctl{}, err
	}
	if c.kind != ctlNext {
		// The body ran on the primary only; transferring control out of it
		// would take the primary somewhere the other members are not going.
		return ctl{}, fmt.Errorf("control transfer out of a BARRIER body is not allowed")
	}
	return ctlOK, nil
}

func (st *execState) execCritical(name string, body []cstmt) (ctl, error) {
	st.p.cs.criticals.Inc()
	if st.m == nil {
		// Outside a force the task is the only possible holder; the body runs
		// directly.
		return st.execSeq(body)
	}
	l, err := st.locks.get(st.t, name)
	if err != nil {
		return ctl{}, err
	}
	var c ctl
	var bodyErr error
	st.m.Critical(l, func() { c, bodyErr = st.execSeq(body) })
	if bodyErr != nil {
		return ctl{}, bodyErr
	}
	return c, nil
}

func (st *execState) execScheduledDo(d *csched) (ctl, error) {
	lo, hi, step, err := st.loopBounds(d.lo, d.hi, d.step)
	if err != nil {
		// execSeq's sticky handler aborts the force for us: this node is a
		// collective the member cannot execute.
		return ctl{}, err
	}
	var brk ctl
	var bodyErr error
	aborted := false
	iter := func(i int) {
		if aborted {
			return
		}
		st.p.cs.loopIterations.Inc()
		if e := d.store(st, intVal(int64(i))); e != nil {
			bodyErr, aborted = e, true
			return
		}
		c, e := st.execSeq(d.body)
		if e != nil {
			bodyErr, aborted = e, true
			return
		}
		if c.kind != ctlNext {
			brk, aborted = c, true
		}
	}
	if st.m != nil {
		if !d.selfsched {
			err = st.m.Presched(lo, hi, step, iter)
		} else {
			_, err = st.m.Selfsched(lo, hi, step, iter)
		}
	} else {
		// Outside a force the scheduled loop degenerates to the whole
		// iteration space, exactly as a one-member force would run it.
		err = loops.ForEach(lo, hi, step, func(i int) bool {
			iter(i)
			return !aborted
		})
	}
	if err != nil {
		return ctl{}, err
	}
	if bodyErr != nil {
		return ctl{}, bodyErr
	}
	if brk.kind != ctlNext {
		if st.m != nil {
			// The transfer fired on one member's iteration only; following it
			// would diverge this member from the rest of the force.
			return ctl{}, fmt.Errorf("control transfer out of a scheduled DO loop is not allowed inside a force")
		}
		return brk, nil
	}
	return ctlOK, nil
}

func (st *execState) execParseg(segments [][]cstmt) (ctl, error) {
	var brk ctl
	var bodyErr error
	aborted := false
	run := func(seg []cstmt) {
		if aborted {
			return
		}
		c, e := st.execSeq(seg)
		if e != nil {
			bodyErr, aborted = e, true
			return
		}
		if c.kind != ctlNext {
			brk, aborted = c, true
		}
	}
	if st.m != nil {
		fns := make([]func(), len(segments))
		for i, seg := range segments {
			seg := seg
			fns[i] = func() { run(seg) }
		}
		if err := st.m.Parseg(fns...); err != nil {
			return ctl{}, err
		}
	} else {
		for _, seg := range segments {
			run(seg)
		}
	}
	if bodyErr != nil {
		return ctl{}, bodyErr
	}
	if brk.kind != ctlNext {
		if st.m != nil {
			// The transfer fired in one member's segment only.
			return ctl{}, fmt.Errorf("control transfer out of a PARSEG segment is not allowed inside a force")
		}
		return brk, nil
	}
	return ctlOK, nil
}

// execSharedCommon declares the block's variables as shared storage: arrays
// become frame arrays (shared by reference between members), scalars become
// mutex-protected shared cells.
func (st *execState) execSharedCommon(blockName string, items []cdeclItem) error {
	if st.m != nil {
		// Member frames were copied at the split; storage created now would be
		// member-private, silently breaking the block's sharing semantics.
		return fmt.Errorf("SHARED COMMON /%s/ must be declared before FORCESPLIT", blockName)
	}
	for i := range items {
		d := &items[i]
		b := &st.f.slots[d.slot]
		if len(d.dims) > 0 {
			if b.arr != nil {
				continue // already declared (re-execution or prior typing)
			}
			kind := d.kind
			if b.kind != kNone {
				kind = b.kind
			}
			rows, cols, err := st.arrayExtents(d)
			if err != nil {
				return err
			}
			b.arr = newArray(kind, rows, cols)
			continue
		}
		if b.cell != nil {
			continue
		}
		kind := st.f.declaredKind(d.slot)
		cell := &sharedCell{v: zeroVal(kind)}
		if b.v.kind != kNone {
			cv, err := convert(b.v, kind)
			if err != nil {
				return fmt.Errorf("%s: %v", d.name, err)
			}
			cell.v = cv
			b.v = value{}
		}
		b.cell = cell
	}
	return nil
}
