// Closure code generation: the second compile phase that turns the parsed
// statement/expression trees into pre-bound Go closures.  Every name is
// resolved to a frame slot (see resolve.go), every operator to an opcode,
// and every intrinsic to its implementation, so executing a statement walks
// no tree, switches on no strings, and looks up no maps.  Constant
// subexpressions are folded at compile time.
package pfi

import (
	"fmt"
	"time"

	"repro/internal/core"
)

// cexpr is one compiled expression.
type cexpr func(*execState) (value, error)

// cstore stores a value into a compiled assignment target.
type cstore func(*execState, value) error

// csendArg produces one message/initiation argument.
type csendArg func(*execState) (core.Value, error)

// cstmt is one compiled, executable statement.
type cstmt struct {
	run   func(*execState) (ctl, error)
	label string
	line  int
	// collective marks a statement whose subtree contains a construct other
	// force members synchronise on (BARRIER, or the shared iteration counter
	// of SELFSCHED DO); precomputed so the sticky error path need not walk
	// the statement tree.
	collective bool
}

// taskCompiler compiles one tasktype's statements against its slot table.
type taskCompiler struct {
	tab *slotTable
}

// seqCollective reports whether any statement of a compiled sequence is (or
// contains) a collective construct.
func seqCollective(ns []cstmt) bool {
	for i := range ns {
		if ns[i].collective {
			return true
		}
	}
	return false
}

// compileSeq compiles a statement sequence.
func (tc *taskCompiler) compileSeq(ns []node) []cstmt {
	out := make([]cstmt, len(ns))
	for i := range ns {
		out[i] = tc.compileStmt(&ns[i])
	}
	return out
}

// compileStmt compiles one statement node into its closure.
func (tc *taskCompiler) compileStmt(n *node) cstmt {
	s := cstmt{label: n.label, line: n.line}
	switch n.kind {
	case nAssign:
		rhs := tc.compileExpr(n.rhs)
		store := tc.compileStore(n.name, n.index)
		s.run = func(st *execState) (ctl, error) {
			v, err := rhs(st)
			if err != nil {
				return ctl{}, err
			}
			return ctlOK, store(st, v)
		}

	case nIf:
		cond := tc.compileExpr(n.cond)
		body := tc.compileSeq(n.body)
		elseBody := tc.compileSeq(n.elseBody)
		s.collective = seqCollective(body) || seqCollective(elseBody)
		s.run = func(st *execState) (ctl, error) {
			v, err := cond(st)
			if err != nil {
				return ctl{}, err
			}
			b, err := v.truth()
			if err != nil {
				return ctl{}, fmt.Errorf("IF condition: %v", err)
			}
			if b {
				return st.execSeq(body)
			}
			return st.execSeq(elseBody)
		}

	case nDo:
		d := &cdo{
			store: tc.compileStore(n.name, nil),
			lo:    tc.compileExpr(n.lo),
			hi:    tc.compileExpr(n.hi),
			step:  tc.compileExpr(n.step),
			body:  tc.compileSeq(n.body),
		}
		s.collective = seqCollective(d.body)
		s.run = func(st *execState) (ctl, error) { return st.execDo(d) }

	case nGoto:
		target := n.target
		s.run = func(*execState) (ctl, error) { return ctl{kind: ctlGoto, label: target}, nil }

	case nContinue:
		s.run = func(*execState) (ctl, error) { return ctlOK, nil }

	case nStop:
		var stopX cexpr
		if n.stopX != nil {
			stopX = tc.compileExpr(n.stopX)
		}
		s.run = func(st *execState) (ctl, error) {
			if stopX != nil {
				v, err := stopX(st)
				if err != nil {
					return ctl{}, err
				}
				if err := st.printLine("STOP " + v.format()); err != nil {
					return ctl{}, err
				}
			}
			return ctl{kind: ctlStop}, nil
		}

	case nReturn:
		s.run = func(*execState) (ctl, error) { return ctl{kind: ctlReturn}, nil }

	case nPrint:
		items := tc.compileExprs(n.items)
		s.run = func(st *execState) (ctl, error) { return ctlOK, st.execPrint(items) }

	case nDecl:
		items := tc.compileDeclItems(n.decls)
		s.run = func(st *execState) (ctl, error) { return ctlOK, st.execDecl(items) }

	case nCall:
		s.run = tc.compileCallStmt(n)

	case nInitiate:
		c := &cinitiate{tasktype: n.name, placement: n.placement, args: tc.compileSendArgs(n.items)}
		if n.clusterX != nil {
			c.clusterX = tc.compileExpr(n.clusterX)
		}
		s.run = func(st *execState) (ctl, error) { return ctlOK, st.execInitiate(c) }

	case nSend:
		c := &csend{msgType: n.name, dest: n.dest, args: tc.compileSendArgs(n.items)}
		if n.clusterX != nil {
			c.clusterX = tc.compileExpr(n.clusterX)
		}
		if n.destX != nil {
			c.destX = tc.compileExpr(n.destX)
		}
		s.run = func(st *execState) (ctl, error) { return ctlOK, st.execSend(c) }

	case nAccept:
		a := &caccept{}
		if n.accept.total != nil {
			a.total = tc.compileExpr(n.accept.total)
		}
		for _, ty := range n.accept.types {
			ct := cacceptType{name: ty.name, all: ty.all}
			if ty.count != nil {
				ct.count = tc.compileExpr(ty.count)
			}
			a.types = append(a.types, ct)
		}
		if n.accept.delay != nil {
			a.delay = tc.compileExpr(n.accept.delay)
		}
		a.onTimeout = tc.compileSeq(n.accept.onTimeout)
		s.collective = seqCollective(a.onTimeout)
		s.run = func(st *execState) (ctl, error) { return st.execAccept(a) }

	case nForce:
		body := tc.compileSeq(n.body)
		s.collective = seqCollective(body)
		s.run = func(st *execState) (ctl, error) { return st.execForce(body) }

	case nBarrier:
		body := tc.compileSeq(n.body)
		s.collective = true
		s.run = func(st *execState) (ctl, error) { return st.execBarrier(body) }

	case nCritical:
		name := n.name
		body := tc.compileSeq(n.body)
		s.collective = seqCollective(body)
		s.run = func(st *execState) (ctl, error) { return st.execCritical(name, body) }

	case nPresched, nSelfsched:
		c := &csched{
			store:     tc.compileStore(n.name, nil),
			lo:        tc.compileExpr(n.lo),
			hi:        tc.compileExpr(n.hi),
			step:      tc.compileExpr(n.step),
			body:      tc.compileSeq(n.body),
			selfsched: n.kind == nSelfsched,
		}
		s.collective = c.selfsched || seqCollective(c.body)
		s.run = func(st *execState) (ctl, error) { return st.execScheduledDo(c) }

	case nParseg:
		segs := make([][]cstmt, len(n.segments))
		for i, seg := range n.segments {
			segs[i] = tc.compileSeq(seg)
		}
		for _, seg := range segs {
			if seqCollective(seg) {
				s.collective = true
			}
		}
		s.run = func(st *execState) (ctl, error) { return st.execParseg(segs) }

	case nSharedCommon:
		name := n.name
		items := tc.compileDeclItems(n.decls)
		s.run = func(st *execState) (ctl, error) { return ctlOK, st.execSharedCommon(name, items) }

	case nLockDecl:
		names := make([]string, len(n.decls))
		for i, d := range n.decls {
			names[i] = d.name
		}
		s.run = func(st *execState) (ctl, error) {
			for _, name := range names {
				if _, err := st.locks.get(st.t, name); err != nil {
					return ctl{}, err
				}
			}
			return ctlOK, nil
		}

	case nSignalDecl:
		name := n.name
		s.run = func(st *execState) (ctl, error) {
			// Task.Signal mutates task-level state; inside a force only the
			// primary (the member that may ACCEPT) registers the declaration —
			// concurrent members would race on the task's signal table.
			if st.m == nil || st.m.IsPrimary() {
				st.t.Signal(name)
			}
			return ctlOK, nil
		}

	case nHandlerDecl:
		// The interpreter has no Fortran handler subroutines; handler-declared
		// message types are counted like signals and their arguments remain
		// readable through the MSG* intrinsics after an ACCEPT.
		s.run = func(*execState) (ctl, error) { return ctlOK, nil }

	default:
		kind := n.kind
		s.run = func(*execState) (ctl, error) {
			return ctl{}, fmt.Errorf("internal error: unknown node kind %d", kind)
		}
	}
	return s
}

// compileCallStmt compiles CALL CHARGE/YIELD (the only supported CALLs,
// validated at parse time).
func (tc *taskCompiler) compileCallStmt(n *node) func(*execState) (ctl, error) {
	if n.name == "CHARGE" {
		arg := tc.compileExpr(n.items[0])
		return func(st *execState) (ctl, error) {
			ticks, err := st.evalInt(arg)
			if err != nil {
				return ctl{}, err
			}
			if st.m != nil {
				st.m.Charge(ticks)
			} else {
				st.t.Charge(ticks)
			}
			return ctlOK, nil
		}
	}
	return func(st *execState) (ctl, error) {
		if st.m == nil {
			st.t.Yield()
		}
		return ctlOK, nil
	}
}

// compiled statement payloads --------------------------------------------------

// cdo is a compiled DO loop.
type cdo struct {
	store        cstore
	lo, hi, step cexpr
	body         []cstmt
}

// csched is a compiled PRESCHED/SELFSCHED DO loop.
type csched struct {
	store        cstore
	lo, hi, step cexpr
	body         []cstmt
	selfsched    bool
}

// cdeclItem is one compiled declaration entry.
type cdeclItem struct {
	slot int
	name string
	kind valKind
	dims []cexpr
}

// cinitiate is a compiled INITIATE statement.
type cinitiate struct {
	tasktype  string
	placement placeKind
	clusterX  cexpr
	args      []csendArg
}

// csend is a compiled SEND statement.
type csend struct {
	msgType         string
	dest            destKind
	clusterX, destX cexpr
	args            []csendArg
}

// cacceptType is one compiled message-type entry of an ACCEPT.
type cacceptType struct {
	name  string
	all   bool
	count cexpr
}

// caccept is a compiled ACCEPT statement.
type caccept struct {
	total     cexpr
	types     []cacceptType
	delay     cexpr
	onTimeout []cstmt
}

// --- declaration compilation --------------------------------------------------

func (tc *taskCompiler) compileDeclItems(items []declItem) []cdeclItem {
	out := make([]cdeclItem, len(items))
	for i, d := range items {
		out[i] = cdeclItem{
			slot: tc.tab.slotOf(d.name),
			name: d.name,
			kind: d.kind,
			dims: tc.compileExprs(d.dims),
		}
	}
	return out
}

// --- expression compilation ---------------------------------------------------

func (tc *taskCompiler) compileExprs(es []expr) []cexpr {
	if len(es) == 0 {
		return nil
	}
	out := make([]cexpr, len(es))
	for i, e := range es {
		out[i] = tc.compileExpr(e)
	}
	return out
}

// compileExpr folds constant subexpressions, then generates the evaluation
// closure.
func (tc *taskCompiler) compileExpr(e expr) cexpr {
	return tc.gen(foldExpr(e))
}

// foldExpr evaluates constant subtrees at compile time.  A constant subtree
// whose evaluation errors (1/0 in dead code, say) is left to fail at run
// time, preserving the interpreter's error placement.
func foldExpr(e expr) expr {
	switch e := e.(type) {
	case unE:
		x := foldExpr(e.x)
		if lx, ok := x.(litE); ok {
			var v value
			var err error
			if e.op == "-" {
				v, err = negVal(lx.v)
			} else {
				v, err = notVal(lx.v)
			}
			if err == nil {
				return litE{v: v}
			}
		}
		return unE{op: e.op, x: x}
	case binE:
		x, y := foldExpr(e.x), foldExpr(e.y)
		if lx, ok := x.(litE); ok {
			if ly, ok := y.(litE); ok {
				if op, known := binOpCode[e.op]; known {
					if v, err := applyBinary(op, lx.v, ly.v); err == nil {
						return litE{v: v}
					}
				}
			}
		}
		return binE{op: e.op, x: x, y: y}
	case callE:
		args := make([]expr, len(e.args))
		for i, a := range e.args {
			args[i] = foldExpr(a)
		}
		return callE{name: e.name, args: args}
	default:
		return e
	}
}

func (tc *taskCompiler) gen(e expr) cexpr {
	switch e := e.(type) {
	case litE:
		v := e.v
		return func(*execState) (value, error) { return v, nil }

	case nameE:
		slot := tc.tab.slotOf(e.name)
		name := e.name
		fn := resolveIntrinsic(e.name)
		return func(st *execState) (value, error) {
			b := &st.f.slots[slot]
			if b.v.kind != kNone {
				return b.v, nil
			}
			if b.cell != nil {
				return b.cell.load(), nil
			}
			if b.arr != nil {
				return value{}, fmt.Errorf("array %s used without subscripts", name)
			}
			if fn != nil {
				return fn(st, nil)
			}
			return value{}, fmt.Errorf("variable %s used before it is set", name)
		}

	case callE:
		return tc.genCall(e)

	case unE:
		x := tc.gen(e.x)
		if e.op == "-" {
			return func(st *execState) (value, error) {
				v, err := x(st)
				if err != nil {
					return value{}, err
				}
				return negVal(v)
			}
		}
		return func(st *execState) (value, error) {
			v, err := x(st)
			if err != nil {
				return value{}, err
			}
			return notVal(v)
		}

	case binE:
		op, known := binOpCode[e.op]
		if !known {
			// A lexer/parser operator without an opcode is a compiler bug;
			// fail loudly instead of miscompiling to the zero opcode.
			err := fmt.Errorf("internal error: unknown operator %q", e.op)
			return func(*execState) (value, error) { return value{}, err }
		}
		x, y := tc.gen(e.x), tc.gen(e.y)
		return func(st *execState) (value, error) {
			xv, err := x(st)
			if err != nil {
				return value{}, err
			}
			yv, err := y(st)
			if err != nil {
				return value{}, err
			}
			return applyBinary(op, xv, yv)
		}
	}
	err := fmt.Errorf("internal error: unknown expression %T", e)
	return func(*execState) (value, error) { return value{}, err }
}

// genCall compiles NAME(args): an array element reference or an intrinsic
// call — Fortran syntax does not distinguish the two, so the closure checks
// the slot's array binding first, then dispatches to the pre-resolved
// intrinsic.
func (tc *taskCompiler) genCall(e callE) cexpr {
	slot := tc.tab.slotOf(e.name)
	name := e.name
	fn := resolveIntrinsic(e.name)
	args := make([]cexpr, len(e.args))
	for i, a := range e.args {
		args[i] = tc.gen(a)
	}
	return func(st *execState) (value, error) {
		if a := st.f.slots[slot].arr; a != nil {
			off, err := st.evalOffset(a, name, args)
			if err != nil {
				return value{}, err
			}
			return a.data[off], nil
		}
		if fn == nil {
			return value{}, fmt.Errorf("%s is neither a declared array nor a known function", name)
		}
		// Arguments are evaluated onto the execState's argument stack, so
		// nested intrinsic calls share one growing buffer instead of
		// allocating a slice per call.
		base := len(st.argv)
		for _, a := range args {
			v, err := a(st)
			if err != nil {
				st.argv = st.argv[:base]
				return value{}, err
			}
			st.argv = append(st.argv, v)
		}
		v, err := fn(st, st.argv[base:])
		st.argv = st.argv[:base]
		return v, err
	}
}

// compileStore compiles an assignment target: a scalar/shared-cell name, or
// an array element.
func (tc *taskCompiler) compileStore(name string, index []expr) cstore {
	slot := tc.tab.slotOf(name)
	if index == nil {
		return func(st *execState, v value) error { return st.storeScalar(slot, v) }
	}
	idx := make([]cexpr, len(index))
	for i, e := range index {
		idx[i] = tc.compileExpr(e)
	}
	return func(st *execState, v value) error {
		a := st.f.slots[slot].arr
		if a == nil {
			return fmt.Errorf("%s is not a declared array", name)
		}
		off, err := st.evalOffset(a, name, idx)
		if err != nil {
			return err
		}
		cv, err := convert(v, a.kind)
		if err != nil {
			return fmt.Errorf("%s: %v", name, err)
		}
		a.data[off] = cv
		return nil
	}
}

// compileSendArgs compiles message/initiation arguments; a bare array name
// passes the whole array as an INTEGER or REAL array argument.
func (tc *taskCompiler) compileSendArgs(items []expr) []csendArg {
	out := make([]csendArg, len(items))
	for i, e := range items {
		if ne, ok := e.(nameE); ok {
			slot := tc.tab.slotOf(ne.name)
			name := ne.name
			inner := tc.compileExpr(e)
			out[i] = func(st *execState) (core.Value, error) {
				if a := st.f.slots[slot].arr; a != nil {
					return arrayToCore(name, a)
				}
				v, err := inner(st)
				if err != nil {
					return core.Value{}, err
				}
				return toCoreValue(v)
			}
			continue
		}
		inner := tc.compileExpr(e)
		out[i] = func(st *execState) (core.Value, error) {
			v, err := inner(st)
			if err != nil {
				return core.Value{}, err
			}
			return toCoreValue(v)
		}
	}
	return out
}

// --- shared runtime helpers used by the compiled closures ---------------------

// evalOffset evaluates compiled subscripts against an array binding.
func (st *execState) evalOffset(a *array, name string, idx []cexpr) (int, error) {
	switch len(idx) {
	case 1:
		v, err := idx[0](st)
		if err != nil {
			return 0, err
		}
		i1, err := v.toInt()
		if err != nil {
			return 0, err
		}
		return a.offset1(name, i1)
	case 2:
		v1, err := idx[0](st)
		if err != nil {
			return 0, err
		}
		i1, err := v1.toInt()
		if err != nil {
			return 0, err
		}
		v2, err := idx[1](st)
		if err != nil {
			return 0, err
		}
		i2, err := v2.toInt()
		if err != nil {
			return 0, err
		}
		return a.offset2(name, i1, i2)
	}
	if a.cols == 0 {
		return 0, fmt.Errorf("array %s needs 1 subscript, got %d", name, len(idx))
	}
	return 0, fmt.Errorf("array %s needs 2 subscripts, got %d", name, len(idx))
}

// storeScalar stores into a scalar slot: shared cells first, then the
// declared-kind conversion of an ordinary scalar.
func (st *execState) storeScalar(slot int, v value) error {
	b := &st.f.slots[slot]
	if c := b.cell; c != nil {
		cv, err := convert(v, c.load().kind)
		if err != nil {
			return fmt.Errorf("%s: %v", st.f.tab.name(slot), err)
		}
		c.store(cv)
		return nil
	}
	if b.arr != nil {
		return fmt.Errorf("array %s assigned without subscripts", st.f.tab.name(slot))
	}
	cv, err := convert(v, st.f.declaredKind(slot))
	if err != nil {
		return fmt.Errorf("%s: %v", st.f.tab.name(slot), err)
	}
	b.v = cv
	return nil
}

// evalInt evaluates a compiled expression and converts to INTEGER.
func (st *execState) evalInt(e cexpr) (int64, error) {
	v, err := e(st)
	if err != nil {
		return 0, err
	}
	return v.toInt()
}

// evalSendArgs evaluates compiled message/initiation arguments into a fresh
// slice (the run-time retains it as the message's argument list).
func (st *execState) evalSendArgs(args []csendArg) ([]core.Value, error) {
	out := make([]core.Value, len(args))
	for i, a := range args {
		v, err := a(st)
		if err != nil {
			return nil, err
		}
		out[i] = v
	}
	return out, nil
}

func arrayToCore(name string, a *array) (core.Value, error) {
	switch a.kind {
	case kInt:
		vs := make([]int64, len(a.data))
		for i, v := range a.data {
			vs[i] = v.i
		}
		return core.Ints(vs), nil
	case kReal:
		vs := make([]float64, len(a.data))
		for i, v := range a.data {
			vs[i] = v.r
		}
		return core.Reals(vs), nil
	}
	return core.Value{}, fmt.Errorf("array %s of kind %s cannot be a message argument", name, a.kind)
}

// acceptSpec evaluates a compiled ACCEPT head into a core.AcceptSpec.
func (st *execState) acceptSpec(a *caccept) (core.AcceptSpec, error) {
	spec := core.AcceptSpec{}
	if a.total != nil {
		total, err := st.evalInt(a.total)
		if err != nil {
			return spec, err
		}
		spec.Total = int(total)
	}
	spec.Types = make([]core.TypeCount, len(a.types))
	for i, ty := range a.types {
		tycount := core.TypeCount{Type: ty.name}
		switch {
		case ty.all:
			tycount.Count = core.All
		case ty.count != nil:
			cnt, err := st.evalInt(ty.count)
			if err != nil {
				return spec, err
			}
			tycount.Count = int(cnt)
		}
		spec.Types[i] = tycount
	}
	if a.delay != nil {
		secs, err := a.delay(st)
		if err != nil {
			return spec, err
		}
		s, err := secs.toReal()
		if err != nil {
			return spec, fmt.Errorf("DELAY: %v", err)
		}
		spec.Delay = time.Duration(s * float64(time.Second))
		if spec.Delay <= 0 {
			spec.Delay = time.Nanosecond
		}
	}
	return spec, nil
}
