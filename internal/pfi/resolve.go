// Slot resolution: the compile-time pass that turns every name a tasktype
// mentions — scalar variables, arrays, SHARED COMMON members, DO control
// variables, parameters — into a frame-slot index.  The run-time frame is
// then a flat []binding vector indexed by these slots, so the interpreter's
// hot path performs no map lookups at all.
//
// Resolution is purely syntactic: a slot is assigned the first time codegen
// meets the name, and the same name always resolves to the same slot within
// one tasktype.  What the slot *is* at run time (scalar, array, shared cell,
// or still unset) stays dynamic, exactly as in the map-based interpreter:
// declarations execute as statements and flip the slot's binding.  A name
// that is also an intrinsic (SELF, SENDER, ...) still gets a slot — an
// assignment to it shadows the intrinsic, which the compiled reader checks
// slot-first.
package pfi

// slotTable is one tasktype's name-to-slot mapping, shared by the compiled
// code and every frame created for the tasktype.
type slotTable struct {
	index    map[string]int
	names    []string  // slot -> name, for error messages and tests
	implicit []valKind // slot -> implicit Fortran kind (I-N rule)
}

func newSlotTable() *slotTable {
	return &slotTable{index: make(map[string]int)}
}

// slotOf returns the slot index for a name, assigning the next free slot on
// first reference.  Names are already upper-cased by the lexer.
func (tab *slotTable) slotOf(name string) int {
	if i, ok := tab.index[name]; ok {
		return i
	}
	i := len(tab.names)
	tab.index[name] = i
	tab.names = append(tab.names, name)
	tab.implicit = append(tab.implicit, implicitKind(name))
	return i
}

// lookup reports the slot of a name without assigning one.
func (tab *slotTable) lookup(name string) (int, bool) {
	i, ok := tab.index[name]
	return i, ok
}

// size returns the number of resolved slots (the frame length).
func (tab *slotTable) size() int { return len(tab.names) }

// name returns the source name of a slot.
func (tab *slotTable) name(slot int) string { return tab.names[slot] }
