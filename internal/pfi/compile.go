package pfi

import (
	"strings"

	"repro/internal/pfc"
)

// nodeKind identifies one executable statement node.
type nodeKind int

const (
	nAssign nodeKind = iota
	nIf
	nDo
	nGoto
	nContinue
	nStop
	nReturn
	nPrint
	nDecl
	nCall
	nInitiate
	nSend
	nAccept
	nForce
	nBarrier
	nCritical
	nPresched
	nSelfsched
	nParseg
	nSharedCommon
	nLockDecl
	nSignalDecl
	nHandlerDecl
)

// placeKind is the resolved INITIATE placement form.
type placeKind int

const (
	placeAny placeKind = iota
	placeOther
	placeSame
	placeCluster
)

// destKind is the resolved SEND destination form.
type destKind int

const (
	destParent destKind = iota
	destSelf
	destSender
	destUser
	destAll
	destAllCluster
	destTContr
	destExpr
)

// declItem is one declared name with optional array extents.
type declItem struct {
	name string
	kind valKind
	dims []expr
}

// acceptTypeNode is one message-type entry of an ACCEPT statement.
type acceptTypeNode struct {
	name  string
	all   bool
	count expr // nil: charge against the shared total
}

// acceptNode is a compiled ACCEPT statement.
type acceptNode struct {
	total     expr // nil when only per-type counts are given
	types     []acceptTypeNode
	delay     expr // nil: system-provided timeout
	onTimeout []node
}

// node is one compiled, executable statement.
type node struct {
	kind  nodeKind
	line  int
	label string

	name  string // assign/do variable, call/tasktype/msgtype/lock name
	index []expr // assignment subscripts
	rhs   expr   // assignment right-hand side
	cond  expr   // IF condition

	body     []node // IF-then, DO body, BARRIER/CRITICAL body, FORCESPLIT region
	elseBody []node // IF-else

	lo, hi, step expr // DO bounds

	target string // GOTO label
	items  []expr // PRINT items, CALL/INITIATE/SEND arguments
	stopX  expr   // STOP message

	decls []declItem

	placement placeKind
	clusterX  expr // CLUSTER <n> placement / TCONTR <n> / ALL CLUSTER <n>
	dest      destKind
	destX     expr

	accept   *acceptNode
	segments [][]node

	// trailLabel is the statement label carried by a block IF's END IF line:
	// a GOTO target that transfers to just after the block, materialised as a
	// labelled CONTINUE following this node.
	trailLabel string
}

// appendNode appends a compiled node, expanding a labelled block closer into
// the trailing CONTINUE that serves as its GOTO target.
func appendNode(ns []node, n node) []node {
	ns = append(ns, n)
	if n.trailLabel != "" {
		ns = append(ns, node{kind: nContinue, line: n.line, label: n.trailLabel})
	}
	return ns
}

// fortranStmt is one ordinary Fortran statement line, label stripped.
type fortranStmt struct {
	label string
	text  string
	line  int
}

// item is one element of the flattened statement stream: either a structured
// Pisces statement or an ordinary Fortran line.
type item struct {
	ps *pfc.Stmt
	ft *fortranStmt
}

// flatten turns a pfc statement sequence into the interpreter's item stream,
// splitting multi-line Fortran texts and dropping comments and blank lines.
func flatten(body []pfc.Stmt) []item {
	var out []item
	for i := range body {
		st := &body[i]
		if st.Kind != pfc.StmtFortran {
			out = append(out, item{ps: st})
			continue
		}
		for _, line := range strings.Split(st.Text, "\n") {
			if pfc.IsComment(line) || strings.TrimSpace(line) == "" {
				continue
			}
			label, text := splitLabel(line)
			if text == "" {
				text = "CONTINUE"
			}
			out = append(out, item{ft: &fortranStmt{label: label, text: text, line: st.Line}})
		}
	}
	return out
}

// splitLabel splits a leading numeric statement label from the statement
// text.
func splitLabel(line string) (label, text string) {
	t := strings.TrimSpace(line)
	i := 0
	for i < len(t) && isDigit(t[i]) {
		i++
	}
	if i == 0 || (i < len(t) && t[i] != ' ' && t[i] != '\t') {
		return "", t
	}
	return t[:i], strings.TrimSpace(t[i:])
}

type compiler struct {
	items []item
	pos   int
	// closedLabels records DO-terminator labels already consumed by a nested
	// loop, so nested DO loops sharing one terminator (legal Fortran 77)
	// close every enclosing loop.  Labels are unique per program unit, so an
	// entry is never consumed by an unrelated loop.
	closedLabels map[string]bool
	// loopDepth tracks DO-loop nesting so FORCESPLIT (whose region is the
	// remainder of its sequence) is rejected inside loop bodies in every loop
	// form.
	loopDepth int
}

// compileBody compiles a complete statement sequence (a tasktype body or a
// nested block body owned by a structured Pisces statement).
func compileBody(body []pfc.Stmt) ([]node, error) {
	c := &compiler{items: flatten(body)}
	ns, stop, stopIt, err := c.compileSeq(nil)
	if err != nil {
		return nil, err
	}
	if stop != "" {
		return nil, errf(stopIt.line, "%s without a matching opening statement", stop)
	}
	return ns, nil
}

// compileSeq compiles statements until the stream ends or a block-closing
// keyword in stops is reached (the closer is consumed and returned).
func (c *compiler) compileSeq(stops map[string]bool) ([]node, string, fortranStmt, error) {
	var ns []node
	for c.pos < len(c.items) {
		it := c.items[c.pos]
		if it.ft != nil {
			if head := blockStop(it.ft.text); head != "" {
				if stops[head] {
					c.pos++
					return ns, head, *it.ft, nil
				}
				return nil, "", fortranStmt{}, errf(it.ft.line, "%s without a matching opening statement", head)
			}
		}
		if it.ps != nil && it.ps.Kind == pfc.StmtForceSplit {
			// FORCESPLIT: the remainder of the current sequence is the force
			// region — all members run it, then the original task continues.
			if c.loopDepth > 0 {
				return nil, "", fortranStmt{}, errf(it.ps.Line, "FORCESPLIT is not allowed inside a DO loop body")
			}
			c.pos++
			rest, stop, stopIt, err := c.compileSeq(stops)
			if err != nil {
				return nil, "", fortranStmt{}, err
			}
			ns = append(ns, node{kind: nForce, line: it.ps.Line, body: rest})
			return ns, stop, stopIt, nil
		}
		n, err := c.compileOne()
		if err != nil {
			return nil, "", fortranStmt{}, err
		}
		ns = appendNode(ns, n)
	}
	return ns, "", fortranStmt{}, nil
}

// compileOne compiles the statement at the current position, consuming any
// further lines its block structure owns.
func (c *compiler) compileOne() (node, error) {
	it := c.items[c.pos]
	c.pos++
	if it.ps != nil {
		return c.compilePisces(it.ps)
	}
	return c.compileFortran(*it.ft)
}

// checkFreshTerminator rejects a loop whose terminator label was already
// consumed by an earlier, disjoint loop: statement labels are unique per
// program unit, and compiling on would silently give the new loop an empty
// body.  (A loop opened while an enclosing loop with the same label is still
// being compiled — the legal shared-terminator form — sees the label as not
// yet consumed.)
func (c *compiler) checkFreshTerminator(term string, line int) error {
	if c.closedLabels == nil {
		c.closedLabels = make(map[string]bool)
	}
	if c.closedLabels[term] {
		return errf(line, "DO terminator label %s already used by an earlier loop", term)
	}
	return nil
}

// compileUntilLabel compiles a label-terminated loop body: statements up to
// and including the one carrying the terminator label.  A terminator already
// consumed by a nested loop (shared-terminator form, "DO 10 ... DO 10 ...
// 10 CONTINUE") also closes this loop.
func (c *compiler) compileUntilLabel(term string, line int) ([]node, error) {
	var body []node
	for {
		if c.closedLabels[term] {
			return body, nil
		}
		if c.pos >= len(c.items) {
			return nil, errf(line, "DO loop terminator label %s not found", term)
		}
		it := c.items[c.pos]
		isTerm := it.ft != nil && it.ft.label == term
		n, err := c.compileOne()
		if err != nil {
			return nil, err
		}
		body = appendNode(body, n)
		if isTerm {
			c.closedLabels[term] = true
			return body, nil
		}
	}
}

// blockStop classifies a Fortran line as a block-closing keyword: "ELSE",
// "ELSEIF", "ENDIF", or "ENDDO" ("" for anything else).  Like the statement
// keywords, closers are recognised with or without blanks ("ELSE IF(X)THEN"
// and "ELSEIF (X) THEN" both close).
func blockStop(text string) string {
	if rest, ok := kwRest(text, "ELSEIF"); ok && strings.HasPrefix(rest, "(") {
		return "ELSEIF"
	}
	if rest, ok := kwRest(text, "ELSE"); ok {
		if rest == "" {
			return "ELSE"
		}
		if sub, ok := kwRest(rest, "IF"); ok && strings.HasPrefix(sub, "(") {
			return "ELSEIF"
		}
		return ""
	}
	if rest, ok := kwRest(text, "ENDIF"); ok && rest == "" {
		return "ENDIF"
	}
	if rest, ok := kwRest(text, "ENDDO"); ok && rest == "" {
		return "ENDDO"
	}
	if rest, ok := kwRest(text, "END"); ok {
		if sub, ok := kwRest(rest, "IF"); ok && sub == "" {
			return "ENDIF"
		}
		if sub, ok := kwRest(rest, "DO"); ok && sub == "" {
			return "ENDDO"
		}
	}
	return ""
}

// --- ordinary Fortran statements ---------------------------------------------

// compileFortran compiles one ordinary Fortran statement (possibly consuming
// further lines for DO and block-IF constructs).
func (c *compiler) compileFortran(ft fortranStmt) (node, error) {
	n, err := c.compileFortranInner(ft, true)
	if err != nil {
		return node{}, err
	}
	n.label = ft.label
	n.line = ft.line
	return n, nil
}

// compileFortranInner compiles the statement text; blocks controls whether
// multi-line constructs (block IF, DO) are allowed — they are not inside a
// logical IF.
func (c *compiler) compileFortranInner(ft fortranStmt, blocks bool) (node, error) {
	text := ft.text
	line := ft.line
	if rest, ok := kwRest(text, "IF"); ok && strings.HasPrefix(rest, "(") {
		return c.compileIf(rest, line, blocks)
	}
	if rest, ok := kwRest(text, "DO"); ok {
		if !blocks {
			return node{}, errf(line, "DO is not allowed in a logical IF")
		}
		return c.compileDo(rest, line)
	}
	if rest, ok := kwRest(text, "GOTO"); ok {
		return compileGoto(rest, line)
	}
	if rest, ok := kwRest(text, "GO"); ok {
		if sub, ok := kwRest(rest, "TO"); ok {
			return compileGoto(sub, line)
		}
	}
	if _, ok := kwRest(text, "CONTINUE"); ok {
		return node{kind: nContinue}, nil
	}
	if rest, ok := kwRest(text, "STOP"); ok {
		n := node{kind: nStop}
		if strings.TrimSpace(rest) != "" {
			e, err := parseExprString(rest, line)
			if err != nil {
				return node{}, err
			}
			n.stopX = e
		}
		return n, nil
	}
	if _, ok := kwRest(text, "RETURN"); ok {
		return node{kind: nReturn}, nil
	}
	if rest, ok := kwRest(text, "END"); ok && strings.TrimSpace(rest) == "" {
		return node{kind: nReturn}, nil
	}
	if rest, ok := kwRest(text, "PRINT"); ok {
		return compilePrint(rest, line)
	}
	if rest, ok := kwRest(text, "WRITE"); ok {
		return compileWrite(rest, line)
	}
	if rest, ok := kwRest(text, "CALL"); ok {
		return compileCall(rest, line)
	}
	for kw, k := range declKeywords {
		if rest, ok := kwRest(text, kw); ok {
			return compileDecl(kw, k, rest, line)
		}
	}
	if rest, ok := kwRest(text, "DIMENSION"); ok {
		return compileDimension(rest, line)
	}
	if _, ok := kwRest(text, "COMMON"); ok {
		return node{}, errf(line, "plain COMMON is not supported by the interpreter; use SHARED COMMON")
	}
	if lhs, rhs, ok := splitAssign(text); ok {
		return compileAssign(lhs, rhs, line)
	}
	return node{}, errf(line, "statement not supported by the interpreter: %q", text)
}

var declKeywords = map[string]valKind{
	"INTEGER":   kInt,
	"REAL":      kReal,
	"LOGICAL":   kBool,
	"CHARACTER": kStr,
}

// kwRest reports whether text begins with the keyword (case-insensitive, at a
// word boundary) and returns the remaining text.
func kwRest(text, kw string) (string, bool) {
	if len(text) < len(kw) || !strings.EqualFold(text[:len(kw)], kw) {
		return "", false
	}
	rest := text[len(kw):]
	if rest != "" && isIdentChar(rest[0]) {
		return "", false
	}
	return strings.TrimSpace(rest), true
}

// matchParen extracts a balanced parenthesised prefix "(...)" from s,
// returning the inside and what follows.
func matchParen(s string, line int) (inside, after string, err error) {
	if s == "" || s[0] != '(' {
		return "", "", errf(line, "expected a parenthesised expression in %q", s)
	}
	depth := 0
	inStr := byte(0)
	for i := 0; i < len(s); i++ {
		ch := s[i]
		if inStr != 0 {
			if ch == inStr {
				inStr = 0
			}
			continue
		}
		switch ch {
		case '\'', '"':
			inStr = ch
		case '(':
			depth++
		case ')':
			depth--
			if depth == 0 {
				return s[1:i], strings.TrimSpace(s[i+1:]), nil
			}
		}
	}
	return "", "", errf(line, "unbalanced parentheses in %q", s)
}

func (c *compiler) compileIf(rest string, line int, blocks bool) (node, error) {
	condText, after, err := matchParen(rest, line)
	if err != nil {
		return node{}, err
	}
	cond, err := parseExprString(condText, line)
	if err != nil {
		return node{}, err
	}
	if strings.EqualFold(after, "THEN") {
		if !blocks {
			return node{}, errf(line, "block IF is not allowed in a logical IF")
		}
		return c.compileBlockIf(cond, line)
	}
	if after == "" {
		return node{}, errf(line, "logical IF needs a statement after the condition")
	}
	inner, err := c.compileFortranInner(fortranStmt{text: after, line: line}, false)
	if err != nil {
		return node{}, err
	}
	inner.line = line
	return node{kind: nIf, cond: cond, body: []node{inner}}, nil
}

func (c *compiler) compileBlockIf(cond expr, line int) (node, error) {
	stops := map[string]bool{"ELSE": true, "ELSEIF": true, "ENDIF": true}
	thenNodes, stop, stopIt, err := c.compileSeq(stops)
	if err != nil {
		return node{}, err
	}
	n := node{kind: nIf, cond: cond, body: thenNodes}
	cur := &n
	for stop == "ELSEIF" {
		elifLine := stopIt.line
		idx := strings.Index(stopIt.text, "(")
		if idx < 0 {
			return node{}, errf(elifLine, "ELSE IF needs a condition")
		}
		condText, after, err := matchParen(stopIt.text[idx:], elifLine)
		if err != nil {
			return node{}, err
		}
		if !strings.EqualFold(after, "THEN") {
			return node{}, errf(elifLine, "ELSE IF must end with THEN")
		}
		c2, err := parseExprString(condText, elifLine)
		if err != nil {
			return node{}, err
		}
		var body []node
		body, stop, stopIt, err = c.compileSeq(stops)
		if err != nil {
			return node{}, err
		}
		cur.elseBody = []node{{kind: nIf, line: elifLine, cond: c2, body: body}}
		cur = &cur.elseBody[0]
	}
	if stop == "ELSE" {
		elseNodes, stop2, stopIt2, err := c.compileSeq(map[string]bool{"ENDIF": true})
		if err != nil {
			return node{}, err
		}
		if stop2 != "ENDIF" {
			return node{}, errf(line, "IF block is never closed by END IF")
		}
		cur.elseBody = elseNodes
		n.trailLabel = stopIt2.label
		return n, nil
	}
	if stop != "ENDIF" {
		return node{}, errf(line, "IF block is never closed by END IF")
	}
	n.trailLabel = stopIt.label
	return n, nil
}

// compileDo compiles both loop forms: "DO <label> V = lo, hi[, step]" with a
// labelled terminator, and "DO V = lo, hi[, step]" closed by END DO.
func (c *compiler) compileDo(rest string, line int) (node, error) {
	fields := strings.Fields(rest)
	if len(fields) == 0 {
		return node{}, errf(line, "malformed DO statement")
	}
	term := ""
	control := rest
	if isAllDigits(fields[0]) {
		term = fields[0]
		control = strings.TrimSpace(strings.TrimPrefix(rest, fields[0]))
	}
	doVar, lo, hi, step, err := parseDoControl(control, line)
	if err != nil {
		return node{}, err
	}
	c.loopDepth++
	defer func() { c.loopDepth-- }()
	var body []node
	if term != "" {
		if err := c.checkFreshTerminator(term, line); err != nil {
			return node{}, err
		}
		body, err = c.compileUntilLabel(term, line)
		if err != nil {
			return node{}, err
		}
	} else {
		var stop string
		var stopIt fortranStmt
		body, stop, stopIt, err = c.compileSeq(map[string]bool{"ENDDO": true})
		if err != nil {
			return node{}, err
		}
		if stop != "ENDDO" {
			return node{}, errf(line, "DO loop is never closed by END DO")
		}
		if stopIt.label != "" {
			// A labelled END DO is the loop's terminal statement: a GOTO to it
			// from the body continues with the next iteration.
			body = append(body, node{kind: nContinue, line: stopIt.line, label: stopIt.label})
		}
	}
	return node{kind: nDo, name: doVar, lo: lo, hi: hi, step: step, body: body}, nil
}

// parseDoControl parses "V = lo, hi[, step]".
func parseDoControl(control string, line int) (doVar string, lo, hi, step expr, err error) {
	eq := strings.Index(control, "=")
	if eq < 0 {
		return "", nil, nil, nil, errf(line, "DO loop needs a control variable assignment")
	}
	doVar = strings.ToUpper(strings.TrimSpace(control[:eq]))
	if doVar == "" || !isIdentName(doVar) {
		return "", nil, nil, nil, errf(line, "bad DO control variable %q", doVar)
	}
	bounds, err := parseExprList(control[eq+1:], line)
	if err != nil {
		return "", nil, nil, nil, err
	}
	if len(bounds) < 2 || len(bounds) > 3 {
		return "", nil, nil, nil, errf(line, "DO loop needs <var> = <lo>, <hi>[, <step>]")
	}
	lo, hi = bounds[0], bounds[1]
	step = expr(litE{v: intVal(1)})
	if len(bounds) == 3 {
		step = bounds[2]
	}
	return doVar, lo, hi, step, nil
}

func compileGoto(rest string, line int) (node, error) {
	target := strings.TrimSpace(rest)
	if !isAllDigits(target) || target == "" {
		return node{}, errf(line, "GOTO needs a statement label, got %q", rest)
	}
	return node{kind: nGoto, target: target}, nil
}

// compilePrint parses "PRINT *[, item...]".
func compilePrint(rest string, line int) (node, error) {
	if !strings.HasPrefix(rest, "*") {
		return node{}, errf(line, "only list-directed PRINT *, ... is supported")
	}
	rest = strings.TrimSpace(rest[1:])
	rest = strings.TrimPrefix(rest, ",")
	items, err := parseExprList(rest, line)
	if err != nil {
		return node{}, err
	}
	return node{kind: nPrint, items: items}, nil
}

// compileWrite parses "WRITE(unit, fmt) item..." ignoring the control list
// (all output is list-directed to the user terminal).
func compileWrite(rest string, line int) (node, error) {
	_, after, err := matchParen(rest, line)
	if err != nil {
		return node{}, err
	}
	items, err := parseExprList(after, line)
	if err != nil {
		return node{}, err
	}
	return node{kind: nPrint, items: items}, nil
}

// compileCall parses CALL: the interpreter supports the simulation intrinsics
// CHARGE(ticks) and YIELD().
func compileCall(rest string, line int) (node, error) {
	name := rest
	var args []expr
	if i := strings.Index(rest, "("); i >= 0 {
		inside, after, err := matchParen(rest[i:], line)
		if err != nil {
			return node{}, err
		}
		if after != "" {
			return node{}, errf(line, "malformed CALL statement")
		}
		name = strings.TrimSpace(rest[:i])
		args, err = parseExprList(inside, line)
		if err != nil {
			return node{}, err
		}
	}
	name = strings.ToUpper(strings.TrimSpace(name))
	switch name {
	case "CHARGE":
		if len(args) != 1 {
			return node{}, errf(line, "CALL CHARGE needs one tick-count argument")
		}
	case "YIELD":
		if len(args) != 0 {
			return node{}, errf(line, "CALL YIELD takes no arguments")
		}
	default:
		return node{}, errf(line, "CALL %s is not supported by the interpreter (subroutines cannot be interpreted)", name)
	}
	return node{kind: nCall, name: name, items: args}, nil
}

// compileDecl parses a type declaration statement.
func compileDecl(kw string, k valKind, rest string, line int) (node, error) {
	// CHARACTER*<n> length specifications are accepted and ignored.
	if kw == "CHARACTER" && strings.HasPrefix(rest, "*") {
		j := 1
		for j < len(rest) && isDigit(rest[j]) {
			j++
		}
		rest = strings.TrimSpace(rest[j:])
	}
	items, err := parseDeclItems(pfc.SplitArgs(rest), k, false, line)
	if err != nil {
		return node{}, err
	}
	return node{kind: nDecl, decls: items}, nil
}

func compileDimension(rest string, line int) (node, error) {
	items, err := parseDeclItems(pfc.SplitArgs(rest), 0, true, line)
	if err != nil {
		return node{}, err
	}
	for i := range items {
		if len(items[i].dims) == 0 {
			return node{}, errf(line, "DIMENSION entry %s needs array extents", items[i].name)
		}
		items[i].kind = implicitKind(items[i].name)
	}
	return node{kind: nDecl, decls: items}, nil
}

// parseDeclItems parses declaration entries "NAME" or "NAME(d1[,d2])".
func parseDeclItems(parts []string, k valKind, implicit bool, line int) ([]declItem, error) {
	if len(parts) == 0 {
		return nil, errf(line, "declaration lists no names")
	}
	var out []declItem
	for _, part := range parts {
		part = strings.TrimSpace(part)
		if part == "" {
			return nil, errf(line, "empty declaration entry")
		}
		e, err := parseExprString(part, line)
		if err != nil {
			return nil, err
		}
		kind := k
		switch e := e.(type) {
		case nameE:
			if implicit {
				kind = implicitKind(e.name)
			}
			out = append(out, declItem{name: e.name, kind: kind})
		case callE:
			if len(e.args) < 1 || len(e.args) > 2 {
				return nil, errf(line, "array %s must have one or two extents", e.name)
			}
			if implicit {
				kind = implicitKind(e.name)
			}
			out = append(out, declItem{name: e.name, kind: kind, dims: e.args})
		default:
			return nil, errf(line, "malformed declaration entry %q", part)
		}
	}
	return out, nil
}

func compileAssign(lhs, rhs string, line int) (node, error) {
	target, err := parseExprString(lhs, line)
	if err != nil {
		return node{}, err
	}
	rv, err := parseExprString(rhs, line)
	if err != nil {
		return node{}, err
	}
	switch target := target.(type) {
	case nameE:
		return node{kind: nAssign, name: target.name, rhs: rv}, nil
	case callE:
		return node{kind: nAssign, name: target.name, index: target.args, rhs: rv}, nil
	}
	return node{}, errf(line, "cannot assign to %q", lhs)
}

// splitAssign splits "lhs = rhs" at the first top-level '=' that is not part
// of a relational operator.
func splitAssign(text string) (lhs, rhs string, ok bool) {
	depth := 0
	inStr := byte(0)
	for i := 0; i < len(text); i++ {
		ch := text[i]
		if inStr != 0 {
			if ch == inStr {
				inStr = 0
			}
			continue
		}
		switch ch {
		case '\'', '"':
			inStr = ch
		case '(':
			depth++
		case ')':
			depth--
		case '=':
			if depth != 0 {
				continue
			}
			if i+1 < len(text) && text[i+1] == '=' {
				return "", "", false // == comparison, not assignment
			}
			if i > 0 && (text[i-1] == '<' || text[i-1] == '>' || text[i-1] == '/') {
				continue
			}
			return strings.TrimSpace(text[:i]), strings.TrimSpace(text[i+1:]), true
		}
	}
	return "", "", false
}

func isAllDigits(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		if !isDigit(s[i]) {
			return false
		}
	}
	return true
}

func isIdentName(s string) bool {
	if s == "" || !isLetter(s[0]) {
		return false
	}
	for i := 1; i < len(s); i++ {
		if !isIdentChar(s[i]) {
			return false
		}
	}
	return true
}

// --- Pisces statements -------------------------------------------------------

func (c *compiler) compilePisces(st *pfc.Stmt) (node, error) {
	switch st.Kind {
	case pfc.StmtInitiate:
		return compileInitiate(st)
	case pfc.StmtSend:
		return compileSend(st)
	case pfc.StmtAccept:
		return compileAccept(st)
	case pfc.StmtBarrier:
		body, err := compileBody(st.Body)
		if err != nil {
			return node{}, err
		}
		return node{kind: nBarrier, line: st.Line, body: body}, nil
	case pfc.StmtCritical:
		body, err := compileBody(st.Body)
		if err != nil {
			return node{}, err
		}
		return node{kind: nCritical, line: st.Line, name: strings.ToUpper(st.LockVar), body: body}, nil
	case pfc.StmtPreschedDo, pfc.StmtSelfschedDo:
		return c.compileScheduledDo(st)
	case pfc.StmtParseg:
		var segs [][]node
		for _, seg := range st.Segments {
			ns, err := compileBody(seg)
			if err != nil {
				return node{}, err
			}
			segs = append(segs, ns)
		}
		return node{kind: nParseg, line: st.Line, segments: segs}, nil
	case pfc.StmtSharedCommon:
		items, err := parseDeclItems(st.SharedCommon.Vars, 0, true, st.Line)
		if err != nil {
			return node{}, err
		}
		return node{kind: nSharedCommon, line: st.Line, name: st.SharedCommon.Name, decls: items}, nil
	case pfc.StmtLockDecl:
		return node{kind: nLockDecl, line: st.Line, decls: namesToItems(st.Names)}, nil
	case pfc.StmtTaskIDDecl:
		items, err := parseDeclItems(st.Names, kTaskID, false, st.Line)
		if err != nil {
			return node{}, err
		}
		return node{kind: nDecl, line: st.Line, decls: items}, nil
	case pfc.StmtWindowDecl:
		items, err := parseDeclItems(st.Names, kWindow, false, st.Line)
		if err != nil {
			return node{}, err
		}
		return node{kind: nDecl, line: st.Line, decls: items}, nil
	case pfc.StmtSignalDecl:
		return node{kind: nSignalDecl, line: st.Line, name: st.MsgType}, nil
	case pfc.StmtHandlerDecl:
		return node{kind: nHandlerDecl, line: st.Line, name: st.MsgType}, nil
	case pfc.StmtForceSplit:
		return node{}, errf(st.Line, "FORCESPLIT is not allowed inside a DO loop body")
	}
	return node{}, errf(st.Line, "internal error: unhandled Pisces statement kind %d", st.Kind)
}

func compileInitiate(st *pfc.Stmt) (node, error) {
	n := node{kind: nInitiate, line: st.Line, name: st.TaskType}
	switch {
	case st.Placement == "ANY":
		n.placement = placeAny
	case st.Placement == "OTHER":
		n.placement = placeOther
	case st.Placement == "SAME":
		n.placement = placeSame
	case strings.HasPrefix(st.Placement, "CLUSTER "):
		n.placement = placeCluster
		e, err := parseExprString(strings.TrimPrefix(st.Placement, "CLUSTER "), st.Line)
		if err != nil {
			return node{}, err
		}
		n.clusterX = e
	default:
		return node{}, errf(st.Line, "bad INITIATE placement %q", st.Placement)
	}
	args, err := parseArgExprs(st.Args, st.Line)
	if err != nil {
		return node{}, err
	}
	n.items = args
	return n, nil
}

func compileSend(st *pfc.Stmt) (node, error) {
	n := node{kind: nSend, line: st.Line, name: st.MsgType}
	switch {
	case st.Dest == "PARENT":
		n.dest = destParent
	case st.Dest == "SELF":
		n.dest = destSelf
	case st.Dest == "SENDER":
		n.dest = destSender
	case st.Dest == "USER":
		n.dest = destUser
	case st.Dest == "ALL":
		n.dest = destAll
	case strings.HasPrefix(st.Dest, "ALL CLUSTER "):
		n.dest = destAllCluster
		e, err := parseExprString(strings.TrimPrefix(st.Dest, "ALL CLUSTER "), st.Line)
		if err != nil {
			return node{}, err
		}
		n.clusterX = e
	case strings.HasPrefix(st.Dest, "TCONTR "):
		n.dest = destTContr
		e, err := parseExprString(strings.TrimPrefix(st.Dest, "TCONTR "), st.Line)
		if err != nil {
			return node{}, err
		}
		n.clusterX = e
	default:
		n.dest = destExpr
		e, err := parseExprString(st.Dest, st.Line)
		if err != nil {
			return node{}, err
		}
		n.destX = e
	}
	args, err := parseArgExprs(st.Args, st.Line)
	if err != nil {
		return node{}, err
	}
	n.items = args
	return n, nil
}

func compileAccept(st *pfc.Stmt) (node, error) {
	src := st.Accept
	acc := &acceptNode{}
	if strings.TrimSpace(src.Total) != "" {
		e, err := parseExprString(src.Total, st.Line)
		if err != nil {
			return node{}, err
		}
		acc.total = e
	}
	if len(src.Types) == 0 {
		return node{}, errf(st.Line, "ACCEPT lists no message types")
	}
	for _, ty := range src.Types {
		at := acceptTypeNode{name: ty.Name}
		switch ty.Count {
		case "":
		case "ALL":
			at.all = true
		default:
			e, err := parseExprString(ty.Count, st.Line)
			if err != nil {
				return node{}, err
			}
			at.count = e
		}
		acc.types = append(acc.types, at)
	}
	if strings.TrimSpace(src.Delay) != "" {
		e, err := parseExprString(src.Delay, st.Line)
		if err != nil {
			return node{}, err
		}
		acc.delay = e
	}
	if len(src.OnTimeout) > 0 {
		body, err := compileBody(src.OnTimeout)
		if err != nil {
			return node{}, err
		}
		acc.onTimeout = body
	}
	return node{kind: nAccept, line: st.Line, accept: acc}, nil
}

// compileScheduledDo compiles PRESCHED DO and SELFSCHED DO: the pfc
// recognizer parsed the header; the body lines follow in the stream up to the
// terminator label.
func (c *compiler) compileScheduledDo(st *pfc.Stmt) (node, error) {
	kind := nPresched
	if st.Kind == pfc.StmtSelfschedDo {
		kind = nSelfsched
	}
	doVar := strings.ToUpper(st.DoVar)
	if !isIdentName(doVar) {
		return node{}, errf(st.Line, "bad scheduled DO control variable %q", st.DoVar)
	}
	lo, err := parseExprString(st.DoLo, st.Line)
	if err != nil {
		return node{}, err
	}
	hi, err := parseExprString(st.DoHi, st.Line)
	if err != nil {
		return node{}, err
	}
	step, err := parseExprString(st.DoStep, st.Line)
	if err != nil {
		return node{}, err
	}
	if err := c.checkFreshTerminator(st.DoLabel, st.Line); err != nil {
		return node{}, err
	}
	c.loopDepth++
	body, err := c.compileUntilLabel(st.DoLabel, st.Line)
	c.loopDepth--
	if err != nil {
		return node{}, err
	}
	return node{kind: kind, line: st.Line, name: doVar, lo: lo, hi: hi, step: step, body: body}, nil
}

func parseArgExprs(args []string, line int) ([]expr, error) {
	var out []expr
	for _, a := range args {
		e, err := parseExprString(a, line)
		if err != nil {
			return nil, err
		}
		out = append(out, e)
	}
	return out, nil
}

func namesToItems(names []string) []declItem {
	out := make([]declItem, len(names))
	for i, n := range names {
		out[i] = declItem{name: strings.ToUpper(n)}
	}
	return out
}
