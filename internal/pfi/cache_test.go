package pfi

import (
	"fmt"
	"testing"
)

// cacheProg builds a distinct, valid program per index so each compiles to
// its own unit.
func cacheProg(i int) string {
	return fmt.Sprintf("TASKTYPE MAIN\n      PRINT *, %d\nEND TASKTYPE\n", i)
}

func TestUnitCacheHitSharesUnit(t *testing.T) {
	c := NewUnitCache(1 << 20)
	p1, hit1, err := c.CompileTrace(cacheProg(0))
	if err != nil {
		t.Fatal(err)
	}
	p2, hit2, err := c.CompileTrace(cacheProg(0))
	if err != nil {
		t.Fatal(err)
	}
	if hit1 || !hit2 {
		t.Fatalf("hit flags = %v, %v; want miss then hit", hit1, hit2)
	}
	if p1.unit != p2.unit {
		t.Fatal("cache hit did not share the compiled unit")
	}
	if p1 == p2 {
		t.Fatal("cache hit returned the same Program; run state must be fresh")
	}
	s := c.Stats()
	if s.Hits != 1 || s.Misses != 1 || s.Entries != 1 {
		t.Fatalf("stats = %+v; want 1 hit, 1 miss, 1 entry", s)
	}
}

// TestUnitCacheEvicts is the regression test for the unbounded unitCache
// sync.Map this cache replaced: inserting more units than the weight bound
// admits must evict in LRU order, and the evicted unit must actually leave
// the cache (entry count and weight stay bounded; recompiling it is a miss).
func TestUnitCacheEvicts(t *testing.T) {
	// Size the bound to hold roughly three of these programs.
	u, err := CompileUncached(cacheProg(0))
	if err != nil {
		t.Fatal(err)
	}
	per := u.unit.weight
	if per <= 0 {
		t.Fatalf("unit weight = %d; want positive", per)
	}
	c := NewUnitCache(3*per + per/2)

	const n = 10
	for i := 0; i < n; i++ {
		if _, _, err := c.CompileTrace(cacheProg(i)); err != nil {
			t.Fatal(err)
		}
	}
	s := c.Stats()
	if s.Entries > 3 {
		t.Fatalf("cache holds %d entries after %d inserts; want <= 3", s.Entries, n)
	}
	if s.Weight > s.MaxBytes {
		t.Fatalf("cache weight %d exceeds bound %d", s.Weight, s.MaxBytes)
	}
	if s.Evictions != int64(n-s.Entries) {
		t.Fatalf("evictions = %d; want %d", s.Evictions, n-s.Entries)
	}

	// The oldest program must be gone (recompiling it misses), the newest
	// still resident (hits).
	if _, hit, err := c.CompileTrace(cacheProg(n - 1)); err != nil || !hit {
		t.Fatalf("newest program: hit=%v err=%v; want cache hit", hit, err)
	}
	if _, hit, err := c.CompileTrace(cacheProg(0)); err != nil || hit {
		t.Fatalf("oldest program: hit=%v err=%v; want miss after eviction", hit, err)
	}
}

func TestUnitCacheLRUOrder(t *testing.T) {
	u, err := CompileUncached(cacheProg(0))
	if err != nil {
		t.Fatal(err)
	}
	per := u.unit.weight
	c := NewUnitCache(2*per + per/2)
	for i := 0; i < 2; i++ {
		if _, _, err := c.CompileTrace(cacheProg(i)); err != nil {
			t.Fatal(err)
		}
	}
	// Touch program 0 so program 1 becomes least recently used, then insert
	// a third: 1 must be the victim.
	if _, hit, _ := c.CompileTrace(cacheProg(0)); !hit {
		t.Fatal("expected hit on resident program 0")
	}
	if _, _, err := c.CompileTrace(cacheProg(2)); err != nil {
		t.Fatal(err)
	}
	if _, hit, _ := c.CompileTrace(cacheProg(0)); !hit {
		t.Fatal("recently used program 0 was evicted")
	}
	if _, hit, _ := c.CompileTrace(cacheProg(2)); !hit {
		t.Fatal("just-inserted program 2 was evicted")
	}
}

// TestUnitCacheOversizedEntry: a single unit heavier than the whole bound
// still compiles and stays resident until the next insert displaces it.
func TestUnitCacheOversizedEntry(t *testing.T) {
	c := NewUnitCache(1) // absurdly small bound
	if _, hit, err := c.CompileTrace(cacheProg(0)); err != nil || hit {
		t.Fatalf("hit=%v err=%v; want clean miss-compile", hit, err)
	}
	if _, hit, _ := c.CompileTrace(cacheProg(0)); !hit {
		t.Fatal("oversized entry was not retained as the sole resident")
	}
	if _, _, err := c.CompileTrace(cacheProg(1)); err != nil {
		t.Fatal(err)
	}
	if s := c.Stats(); s.Entries != 1 {
		t.Fatalf("entries = %d; want 1 (newest survives, oldest evicted)", s.Entries)
	}
}

func TestUnitCacheConcurrent(t *testing.T) {
	c := NewUnitCache(0)
	done := make(chan error, 8)
	for g := 0; g < 8; g++ {
		go func(g int) {
			for i := 0; i < 50; i++ {
				if _, err := c.Compile(cacheProg(i % 5)); err != nil {
					done <- err
					return
				}
			}
			done <- nil
		}(g)
	}
	for g := 0; g < 8; g++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	if s := c.Stats(); s.Entries != 5 {
		t.Fatalf("entries = %d; want 5", s.Entries)
	}
}
