package pfi

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/pfc"
)

// fuzzSeedSources collects the repository's real Pisces Fortran programs as
// the fuzz seed corpus: the examples and the conformance corpus.
func fuzzSeedSources(f *testing.F) []string {
	f.Helper()
	var srcs []string
	for _, pattern := range []string{
		"../../examples/*.pf",
		"../../examples/*/*.pf",
		"../conformance/corpus/*.pf",
	} {
		paths, err := filepath.Glob(pattern)
		if err != nil {
			f.Fatal(err)
		}
		for _, p := range paths {
			b, err := os.ReadFile(p)
			if err != nil {
				f.Fatal(err)
			}
			srcs = append(srcs, string(b))
		}
	}
	if len(srcs) == 0 {
		f.Fatal("no seed .pf programs found")
	}
	return srcs
}

// FuzzLex feeds arbitrary text lines through the expression lexer.  The
// lexer must either tokenise or return an error — never panic — regardless
// of input.
func FuzzLex(f *testing.F) {
	for _, src := range fuzzSeedSources(f) {
		for _, line := range strings.Split(src, "\n") {
			f.Add(line)
		}
	}
	f.Add("1.EQ.2 .AND. .NOT. X")
	f.Add("'unterminated")
	f.Add("1E+")
	f.Add(".XYZ.")
	f.Fuzz(func(t *testing.T, line string) {
		toks, err := lexExpr(line, 1)
		if err == nil && (len(toks) == 0 || toks[len(toks)-1].kind != tEOF) {
			t.Fatalf("lexExpr(%q) returned no EOF token", line)
		}
	})
}

// FuzzParse feeds arbitrary program text through the full front end: the
// pfc statement parser followed by the pfi slot/codegen compiler.  Both must
// reject malformed programs with errors, never panic.  CompileUncached keeps
// fuzz garbage out of the process-wide compiled-unit cache.
func FuzzParse(f *testing.F) {
	for _, src := range fuzzSeedSources(f) {
		f.Add(src)
	}
	f.Add("TASKTYPE T\n      ACCEPT 1 OF\nEND TASKTYPE\n")
	f.Add("TASKTYPE T\n      DO 10 I = 1,\n10    CONTINUE\nEND TASKTYPE\n")
	f.Add("TASKTYPE T(")
	f.Fuzz(func(t *testing.T, src string) {
		if _, err := pfc.Parse(src); err != nil {
			return // rejected cleanly at the statement level
		}
		_, _ = CompileUncached(src)
	})
}
