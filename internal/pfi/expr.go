package pfi

import "strings"

// The expression representation: a small tree evaluated by execState.eval.
// An expression is parsed by a Pratt (top-down operator precedence) parser —
// a fitting choice for a reproduction of a Pratt paper.
type expr interface{ isExpr() }

// litE is a literal value.
type litE struct{ v value }

// nameE is a bare identifier: a scalar variable or a no-argument intrinsic
// such as SELF or SENDER.
type nameE struct{ name string }

// callE is NAME(args): an array element reference or an intrinsic call —
// Fortran syntax does not distinguish the two, so the evaluator resolves the
// name against the frame first.
type callE struct {
	name string
	args []expr
}

// unE and binE are operator applications; op is the canonical operator name
// from the lexer.
type unE struct {
	op string
	x  expr
}
type binE struct {
	op   string
	x, y expr
}

func (litE) isExpr()  {}
func (nameE) isExpr() {}
func (callE) isExpr() {}
func (unE) isExpr()   {}
func (binE) isExpr()  {}

// binding powers, low to high.  ** is right-associative; unary +/- bind like
// their binary forms (Fortran: -A*B is -(A*B), -A**2 is -(A**2)).
var binPower = map[string]int{
	"EQV": 10, "NEQV": 10,
	"OR":  20,
	"AND": 30,
	"EQ":  50, "NE": 50, "LT": 50, "LE": 50, "GT": 50, "GE": 50,
	"+": 60, "-": 60,
	"*": 70, "/": 70,
	"**": 90,
}

type exprParser struct {
	toks []token
	pos  int
	line int
}

// parseExprString parses one complete expression from source text.
func parseExprString(src string, line int) (expr, error) {
	toks, err := lexExpr(src, line)
	if err != nil {
		return nil, err
	}
	p := &exprParser{toks: toks, line: line}
	e, err := p.parse(0)
	if err != nil {
		return nil, err
	}
	if p.peek().kind != tEOF {
		return nil, errf(line, "unexpected %q after expression in %q", p.peek().text, src)
	}
	return e, nil
}

// parseExprList parses a comma-separated expression list; an empty string is
// an empty list.
func parseExprList(src string, line int) ([]expr, error) {
	if strings.TrimSpace(src) == "" {
		return nil, nil
	}
	toks, err := lexExpr(src, line)
	if err != nil {
		return nil, err
	}
	p := &exprParser{toks: toks, line: line}
	var out []expr
	for {
		e, err := p.parse(0)
		if err != nil {
			return nil, err
		}
		out = append(out, e)
		if p.peek().kind == tOp && p.peek().text == "," {
			p.pos++
			continue
		}
		break
	}
	if p.peek().kind != tEOF {
		return nil, errf(line, "unexpected %q in expression list %q", p.peek().text, src)
	}
	return out, nil
}

func (p *exprParser) peek() token { return p.toks[p.pos] }

func (p *exprParser) next() token {
	t := p.toks[p.pos]
	if t.kind != tEOF {
		p.pos++
	}
	return t
}

// parse implements precedence climbing: parse a prefix operand, then consume
// binary operators with binding power above min.
func (p *exprParser) parse(min int) (expr, error) {
	left, err := p.parsePrefix()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.kind != tOp {
			return left, nil
		}
		bp, ok := binPower[t.text]
		if !ok || bp <= min {
			return left, nil
		}
		p.pos++
		// Right-associative ** parses its right side at bp-1 so A**B**C is
		// A**(B**C); everything else is left-associative.
		rightMin := bp
		if t.text == "**" {
			rightMin = bp - 1
		}
		right, err := p.parse(rightMin)
		if err != nil {
			return nil, err
		}
		left = binE{op: t.text, x: left, y: right}
	}
}

func (p *exprParser) parsePrefix() (expr, error) {
	t := p.next()
	switch t.kind {
	case tInt:
		return litE{v: intVal(t.i)}, nil
	case tReal:
		return litE{v: realVal(t.r)}, nil
	case tLogic:
		return litE{v: boolVal(t.b)}, nil
	case tStr:
		return litE{v: strVal(t.s)}, nil
	case tName:
		if p.peek().kind == tOp && p.peek().text == "(" {
			p.pos++
			args, err := p.parseArgs()
			if err != nil {
				return nil, err
			}
			return callE{name: t.text, args: args}, nil
		}
		return nameE{name: t.text}, nil
	case tOp:
		switch t.text {
		case "(":
			e, err := p.parse(0)
			if err != nil {
				return nil, err
			}
			if c := p.next(); c.kind != tOp || c.text != ")" {
				return nil, errf(p.line, "missing closing parenthesis")
			}
			return e, nil
		case "-", "+":
			// Unary +/- parse their operand just above additive power so
			// -A*B groups as -(A*B) but -A+B as (-A)+B.
			x, err := p.parse(60)
			if err != nil {
				return nil, err
			}
			if t.text == "+" {
				return x, nil
			}
			return unE{op: "-", x: x}, nil
		case "NOT":
			x, err := p.parse(40)
			if err != nil {
				return nil, err
			}
			return unE{op: "NOT", x: x}, nil
		}
	}
	return nil, errf(p.line, "unexpected token %q in expression", tokenText(t))
}

// parseArgs parses "args)" after an opening parenthesis, allowing an empty
// argument list for no-argument intrinsics such as MEMBERS().
func (p *exprParser) parseArgs() ([]expr, error) {
	if t := p.peek(); t.kind == tOp && t.text == ")" {
		p.pos++
		return nil, nil
	}
	var args []expr
	for {
		a, err := p.parse(0)
		if err != nil {
			return nil, err
		}
		args = append(args, a)
		t := p.next()
		if t.kind != tOp {
			return nil, errf(p.line, "malformed argument list")
		}
		switch t.text {
		case ",":
			continue
		case ")":
			return args, nil
		default:
			return nil, errf(p.line, "unexpected %q in argument list", t.text)
		}
	}
}

func tokenText(t token) string {
	switch t.kind {
	case tEOF:
		return "end of expression"
	case tStr:
		return "'" + t.s + "'"
	default:
		return t.text
	}
}
