package pfi

import (
	"strings"
	"testing"

	"repro/internal/config"
	"repro/internal/core"
)

// TestSlotTableAssignment drives the resolver directly: slots are dense,
// stable, and carry the Fortran implicit kinds.
func TestSlotTableAssignment(t *testing.T) {
	tab := newSlotTable()
	cases := []struct {
		name     string
		wantSlot int
		implicit valKind
	}{
		{"I", 0, kInt},
		{"X", 1, kReal},
		{"NAME", 2, kInt}, // N starts the I-N integer range
		{"HZ", 3, kReal},  // H is below it
		{"I", 0, kInt},    // re-resolution is stable
		{"NAME", 2, kInt},
	}
	for _, c := range cases {
		if got := tab.slotOf(c.name); got != c.wantSlot {
			t.Errorf("slotOf(%s) = %d, want %d", c.name, got, c.wantSlot)
		}
		if got := tab.implicit[tab.slotOf(c.name)]; got != c.implicit {
			t.Errorf("implicit kind of %s = %v, want %v", c.name, got, c.implicit)
		}
	}
	if tab.size() != 4 {
		t.Errorf("size = %d, want 4 distinct names", tab.size())
	}
	if _, ok := tab.lookup("MISSING"); ok {
		t.Error("lookup of an unresolved name succeeded")
	}
	if got := tab.name(2); got != "NAME" {
		t.Errorf("name(2) = %q", got)
	}
}

// TestResolvedTaskSlots checks that compilation resolves parameters and every
// mentioned name into one slot table per tasktype.
func TestResolvedTaskSlots(t *testing.T) {
	p, err := Compile(`TASKTYPE MAIN(A, B)
      INTEGER A, C(4)
      SHARED COMMON /S/ TOTAL
      C(1) = A + B
      TOTAL = 0.0
END TASKTYPE
`)
	if err != nil {
		t.Fatal(err)
	}
	tp := p.unit.byName["MAIN"]
	if tp == nil {
		t.Fatal("MAIN not compiled")
	}
	// Parameters resolve first, in order.
	if len(tp.paramSlots) != 2 || tp.paramSlots[0] != 0 || tp.paramSlots[1] != 1 {
		t.Errorf("paramSlots = %v, want [0 1]", tp.paramSlots)
	}
	for _, name := range []string{"A", "B", "C", "TOTAL"} {
		if _, ok := tp.tab.lookup(name); !ok {
			t.Errorf("name %s did not get a slot", name)
		}
	}
}

// TestMemberPrivateVsShared: copying a frame for a force member must copy
// scalars (member-private) but share arrays and shared cells by reference —
// the slot-vector frame must preserve the paper's FORCESPLIT data semantics.
func TestMemberPrivateVsShared(t *testing.T) {
	tab := newSlotTable()
	sPriv := tab.slotOf("PRIV")
	sArr := tab.slotOf("ARR")
	sCell := tab.slotOf("CELL")

	f := newFrame(tab)
	f.slots[sPriv].v = intVal(1)
	f.slots[sArr].arr = newArray(kInt, 3, 0)
	f.slots[sCell].cell = &sharedCell{v: realVal(0)}

	g := f.copyForMember()
	// Scalars diverge.
	g.slots[sPriv].v = intVal(99)
	if f.slots[sPriv].v.i != 1 {
		t.Errorf("scalar not member-private: primary sees %d", f.slots[sPriv].v.i)
	}
	// Arrays and cells are the same storage.
	g.slots[sArr].arr.data[0] = intVal(7)
	if f.slots[sArr].arr.data[0].i != 7 {
		t.Error("array not shared by reference between members")
	}
	g.slots[sCell].cell.store(realVal(2.5))
	if got := f.slots[sCell].cell.load(); got.r != 2.5 {
		t.Errorf("shared cell not shared: primary reads %v", got.r)
	}
}

// TestIntrinsicShadowing: a name that is also an intrinsic reads as the
// intrinsic until the program assigns it, after which the slot value shadows
// the intrinsic — matching the dynamic semantics of the map-based engine.
func TestIntrinsicShadowing(t *testing.T) {
	src := `TASKTYPE MAIN
      INTEGER QLEN
      PRINT *, 'BEFORE', QLEN
      QLEN = 42
      PRINT *, 'AFTER', QLEN
END TASKTYPE
`
	out, _, err := interpret(t, config.Simple(1, 2), src, Options{})
	if err != nil {
		t.Fatal(err)
	}
	wantLines(t, out, "BEFORE 0", "AFTER 42")
}

// TestUndeclaredNameErrors: reading a name that has no binding and is no
// intrinsic must fail with the unset-variable diagnostic, with the source
// line attached.
func TestUndeclaredNameErrors(t *testing.T) {
	cases := []struct {
		src  string
		want string
	}{
		{"TASKTYPE MAIN\n      X = NOSUCH + 1\nEND TASKTYPE\n", "variable NOSUCH used before it is set"},
		{"TASKTYPE MAIN\n      INTEGER A(2)\n      X = A\nEND TASKTYPE\n", "array A used without subscripts"},
		{"TASKTYPE MAIN\n      A(3) = 1\nEND TASKTYPE\n", "A is not a declared array"},
		{"TASKTYPE MAIN\n      X = NOFUNC(3)\nEND TASKTYPE\n", "neither a declared array nor a known function"},
	}
	for _, c := range cases {
		_, _, err := interpret(t, config.Simple(1, 2), c.src, Options{})
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("src %q: err = %v, want %q", c.src, err, c.want)
		}
	}
}

// TestConstantFolding: constant subexpressions are folded at compile time,
// and a folding candidate that would error (division by zero in dead code)
// is left to fail at run time only if executed.
func TestConstantFolding(t *testing.T) {
	tc := &taskCompiler{tab: newSlotTable()}
	e, err := parseExprString("(1 + 2) * 3 - 2 ** 3", 1)
	if err != nil {
		t.Fatal(err)
	}
	folded := foldExpr(e)
	lit, ok := folded.(litE)
	if !ok {
		t.Fatalf("foldExpr = %T, want litE", folded)
	}
	if lit.v.i != 1 {
		t.Errorf("folded value = %d, want 1", lit.v.i)
	}

	// Dead 1/0 must not become a compile error...
	ce := tc.compileExpr(mustParseExpr(t, "1 / 0"))
	st := &execState{f: newFrame(tc.tab)}
	if _, err := ce(st); err == nil || !strings.Contains(err.Error(), "division by zero") {
		t.Errorf("1/0 eval err = %v, want division by zero at run time", err)
	}

	// ...and a program that never executes it runs clean.
	src := "TASKTYPE MAIN\n      IF (1 .GT. 2) PRINT *, 1 / 0\n      PRINT *, 'OK'\nEND TASKTYPE\n"
	out, _, err := interpret(t, config.Simple(1, 2), src, Options{})
	if err != nil {
		t.Fatal(err)
	}
	wantLines(t, out, "OK")
}

func mustParseExpr(t *testing.T, src string) expr {
	t.Helper()
	e, err := parseExprString(src, 1)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// TestCompileCacheSharesUnit: compiling the same source twice must reuse the
// compiled unit while keeping per-Program run state (counters) separate.
func TestCompileCacheSharesUnit(t *testing.T) {
	src := "TASKTYPE MAIN\n      PRINT *, 'HI'\nEND TASKTYPE\n"
	p1, err := Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	if p1.unit != p2.unit {
		t.Error("cached compile did not share the compiled unit")
	}
	if p1.counters == p2.counters {
		t.Error("Programs over a shared unit must have separate counters")
	}
	u, err := CompileUncached(src)
	if err != nil {
		t.Fatal(err)
	}
	if u.unit == p1.unit {
		t.Error("CompileUncached returned the cached unit")
	}
	// A cached program still runs (fresh counters count this run only).
	out, prog, err := interpretProgram(t, p2)
	if err != nil {
		t.Fatal(err)
	}
	if out != "HI\n" {
		t.Errorf("output = %q", out)
	}
	if got := prog.Counters().Get("tasks.completed"); got != 1 {
		t.Errorf("tasks.completed = %d, want 1", got)
	}
}

// interpretProgram runs an already compiled program on a fresh VM.
func interpretProgram(t *testing.T, p *Program) (string, *Program, error) {
	t.Helper()
	var buf strings.Builder
	vm, err := core.NewVM(config.Simple(1, 2), core.Options{UserOutput: &buf})
	if err != nil {
		t.Fatal(err)
	}
	defer vm.Shutdown()
	runErr := p.Run(vm, Options{})
	return buf.String(), p, runErr
}
