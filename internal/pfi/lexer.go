package pfi

import (
	"strconv"
	"strings"
)

// tokKind classifies one expression token.
type tokKind int

const (
	tEOF tokKind = iota
	tName
	tInt
	tReal
	tStr
	tLogic
	tOp
)

// token is one lexed expression token.  Operator tokens carry a canonical
// name in text: relational operators are normalised to EQ/NE/LT/LE/GT/GE
// whether written as .EQ. or ==, and the logical operators to AND/OR/NOT/
// EQV/NEQV.
type token struct {
	kind tokKind
	text string // identifier (upper-cased) or canonical operator
	i    int64
	r    float64
	b    bool
	s    string
}

// dottedWords are the keywords allowed between dots: operators plus the
// logical literals.
var dottedWords = map[string]bool{
	"EQ": true, "NE": true, "LT": true, "LE": true, "GT": true, "GE": true,
	"AND": true, "OR": true, "NOT": true, "EQV": true, "NEQV": true,
	"TRUE": true, "FALSE": true,
}

// lexExpr tokenises one Fortran expression (or expression list).
func lexExpr(src string, line int) ([]token, error) {
	var toks []token
	i := 0
	n := len(src)
	for i < n {
		c := src[i]
		switch {
		case c == ' ' || c == '\t':
			i++
		case isLetter(c):
			j := i + 1
			for j < n && isIdentChar(src[j]) {
				j++
			}
			toks = append(toks, token{kind: tName, text: strings.ToUpper(src[i:j])})
			i = j
		case isDigit(c):
			tok, j, err := lexNumber(src, i, line)
			if err != nil {
				return nil, err
			}
			toks = append(toks, tok)
			i = j
		case c == '.':
			if i+1 < n && isDigit(src[i+1]) {
				tok, j, err := lexNumber(src, i, line)
				if err != nil {
					return nil, err
				}
				toks = append(toks, tok)
				i = j
				break
			}
			word, j, ok := dottedWordAt(src, i)
			if !ok {
				return nil, errf(line, "malformed dotted operator at %q", src[i:])
			}
			switch word {
			case "TRUE":
				toks = append(toks, token{kind: tLogic, b: true})
			case "FALSE":
				toks = append(toks, token{kind: tLogic, b: false})
			default:
				toks = append(toks, token{kind: tOp, text: word})
			}
			i = j
		case c == '\'' || c == '"':
			s, j, err := lexString(src, i, line)
			if err != nil {
				return nil, err
			}
			toks = append(toks, token{kind: tStr, s: s})
			i = j
		default:
			op, j, err := lexSymbol(src, i, line)
			if err != nil {
				return nil, err
			}
			toks = append(toks, token{kind: tOp, text: op})
			i = j
		}
	}
	return append(toks, token{kind: tEOF}), nil
}

// lexNumber scans an integer or real literal starting at i.  A '.' ends the
// number when it begins a dotted operator (so 1.EQ.2 lexes as 1 .EQ. 2).
func lexNumber(src string, i, line int) (token, int, error) {
	j := i
	isReal := false
	for j < len(src) && isDigit(src[j]) {
		j++
	}
	if j < len(src) && src[j] == '.' {
		if _, _, isOp := dottedWordAt(src, j); !isOp {
			isReal = true
			j++
			for j < len(src) && isDigit(src[j]) {
				j++
			}
		}
	}
	// Exponent part: E/D with optional sign and at least one digit.
	if j < len(src) && (src[j] == 'E' || src[j] == 'e' || src[j] == 'D' || src[j] == 'd') {
		k := j + 1
		if k < len(src) && (src[k] == '+' || src[k] == '-') {
			k++
		}
		if k < len(src) && isDigit(src[k]) {
			for k < len(src) && isDigit(src[k]) {
				k++
			}
			isReal = true
			j = k
		}
	}
	text := src[i:j]
	if isReal {
		norm := strings.NewReplacer("D", "E", "d", "e").Replace(text)
		v, err := strconv.ParseFloat(norm, 64)
		if err != nil {
			return token{}, 0, errf(line, "bad REAL literal %q", text)
		}
		return token{kind: tReal, r: v}, j, nil
	}
	v, err := strconv.ParseInt(text, 10, 64)
	if err != nil {
		return token{}, 0, errf(line, "bad INTEGER literal %q", text)
	}
	return token{kind: tInt, i: v}, j, nil
}

// dottedWordAt reports whether src[i:] starts a .WORD. sequence with WORD in
// the dotted-keyword set, returning the word and the index past the closing
// dot.
func dottedWordAt(src string, i int) (string, int, bool) {
	if i >= len(src) || src[i] != '.' {
		return "", 0, false
	}
	j := i + 1
	for j < len(src) && isLetter(src[j]) {
		j++
	}
	if j >= len(src) || src[j] != '.' || j == i+1 {
		return "", 0, false
	}
	word := strings.ToUpper(src[i+1 : j])
	if !dottedWords[word] {
		return "", 0, false
	}
	return word, j + 1, true
}

// lexString scans a quoted character literal; a doubled quote is an escape.
func lexString(src string, i, line int) (string, int, error) {
	quote := src[i]
	var b strings.Builder
	j := i + 1
	for j < len(src) {
		if src[j] == quote {
			if j+1 < len(src) && src[j+1] == quote {
				b.WriteByte(quote)
				j += 2
				continue
			}
			return b.String(), j + 1, nil
		}
		b.WriteByte(src[j])
		j++
	}
	return "", 0, errf(line, "unterminated character literal")
}

// lexSymbol scans one symbolic operator, normalising modern relational forms
// to the canonical dotted names.
func lexSymbol(src string, i, line int) (string, int, error) {
	two := ""
	if i+1 < len(src) {
		two = src[i : i+2]
	}
	switch two {
	case "**":
		return "**", i + 2, nil
	case "==":
		return "EQ", i + 2, nil
	case "/=":
		return "NE", i + 2, nil
	case "<=":
		return "LE", i + 2, nil
	case ">=":
		return "GE", i + 2, nil
	}
	switch src[i] {
	case '+', '-', '*', '/', '(', ')', ',':
		return string(src[i]), i + 1, nil
	case '<':
		return "LT", i + 1, nil
	case '>':
		return "GT", i + 1, nil
	}
	return "", 0, errf(line, "unexpected character %q in expression", string(src[i]))
}

func isLetter(c byte) bool { return (c >= 'A' && c <= 'Z') || (c >= 'a' && c <= 'z') }
func isDigit(c byte) bool  { return c >= '0' && c <= '9' }
func isIdentChar(c byte) bool {
	return isLetter(c) || isDigit(c) || c == '_' || c == '$'
}
