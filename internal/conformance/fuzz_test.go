package conformance

import (
	"testing"
)

// FuzzSchedule drives arbitrary PRNG seeds (and thereby arbitrary legal
// message interleavings) through the PFI interpreter on the sim backend.
// For every corpus program the schedule-independence invariants must hold
// against the program's seed-0 baseline: same output, no deadlock, no error,
// and a fully recovered message heap.  A failing input is a (program, seed)
// pair that can be replayed directly with conformance.Run or
// `pisces run -sim -seed N`.
func FuzzSchedule(f *testing.F) {
	names, srcs := Corpus()
	for i := range names {
		f.Add(i, int64(1))
		f.Add(i, int64(424242))
	}

	// Baselines computed once per program, lazily.
	baselines := make(map[string]Result)
	baseline := func(name string) Result {
		if res, ok := baselines[name]; ok {
			return res
		}
		res := Run(srcs[name], 0)
		baselines[name] = res
		return res
	}

	f.Fuzz(func(t *testing.T, programIdx int, seed int64) {
		if len(names) == 0 {
			t.Skip("empty corpus")
		}
		// Unsigned modulo: a plain negation guard overflows on MinInt.
		name := names[int(uint(programIdx)%uint(len(names)))]
		base := baseline(name)
		if base.Err != nil {
			t.Fatalf("%s: seed 0 baseline failed: %v", name, base.Err)
		}
		res := Run(srcs[name], seed)
		if res.Deadlock != nil {
			t.Fatalf("%s: seed %d deadlocked: %v", name, seed, res.Deadlock)
		}
		if res.Err != nil {
			t.Fatalf("%s: seed %d failed: %v", name, seed, res.Err)
		}
		if res.Output != base.Output {
			t.Fatalf("%s: seed %d output diverges from seed 0:\nseed 0:\n%s\nseed %d:\n%s",
				name, seed, base.Output, seed, res.Output)
		}
		if res.HeapInUse != 0 {
			t.Fatalf("%s: seed %d leaked %d heap bytes", name, seed, res.HeapInUse)
		}
	})
}
