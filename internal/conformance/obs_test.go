package conformance

import (
	"bytes"
	"testing"
)

// TestInstrumentationTransparent: running a corpus program with the full
// observability surface enabled (metrics + spans at every layer) must not
// change what the program does — identical terminal output and an identical
// number of scheduling decisions as the uninstrumented run of the same seed.
// Under the sim backend every metric and span timestamp comes from the
// virtual clock, so observing cannot perturb the schedule; this test is the
// guard that keeps it that way.
func TestInstrumentationTransparent(t *testing.T) {
	names, srcs := Corpus()
	for _, name := range names {
		name := name
		t.Run(name, func(t *testing.T) {
			for _, seed := range []int64{0, 1, 5} {
				plain := Run(srcs[name], seed)
				if plain.Err != nil {
					t.Fatalf("seed %d: %v", seed, plain.Err)
				}
				instr := RunInstrumented(srcs[name], seed)
				if instr.Err != nil {
					recordFailure(name, seed, "instrumented run error: "+instr.Err.Error())
					t.Fatalf("seed %d instrumented: %v", seed, instr.Err)
				}
				if instr.Output != plain.Output {
					recordFailure(name, seed, "instrumentation changed program output")
					t.Fatalf("seed %d: instrumented output differs:\nplain:\n%s\ninstrumented:\n%s",
						seed, plain.Output, instr.Output)
				}
				if instr.Steps != plain.Steps {
					recordFailure(name, seed, "instrumentation changed the schedule")
					t.Fatalf("seed %d: %d steps instrumented vs %d plain", seed, instr.Steps, plain.Steps)
				}
				for shard, in := range instr.HeapShardsInUse {
					if in != 0 {
						recordFailure(name, seed, "heap leak under instrumentation")
						t.Errorf("seed %d: %d heap bytes on shard %d after instrumented shutdown", seed, in, shard)
					}
				}
			}
		})
	}
}

// TestInstrumentationSeedStable: the metric snapshot and the Chrome trace of
// an instrumented sim run are part of the deterministic contract — the same
// seed must reproduce them byte for byte (all timestamps are virtual), and a
// different seed must generally produce a different trace (the spans really
// follow the schedule, not a fixed script).
func TestInstrumentationSeedStable(t *testing.T) {
	names, srcs := Corpus()
	for _, name := range names {
		name := name
		t.Run(name, func(t *testing.T) {
			for _, seed := range []int64{0, 7} {
				a := RunInstrumented(srcs[name], seed)
				b := RunInstrumented(srcs[name], seed)
				if a.Err != nil || b.Err != nil {
					t.Fatalf("seed %d: %v / %v", seed, a.Err, b.Err)
				}
				if len(a.ObsSnapshot) == 0 || len(a.ObsTrace) == 0 {
					t.Fatalf("seed %d: instrumented run captured no snapshot (%d bytes) or trace (%d bytes)",
						seed, len(a.ObsSnapshot), len(a.ObsTrace))
				}
				if !bytes.Equal(a.ObsSnapshot, b.ObsSnapshot) {
					recordFailure(name, seed, "metric snapshot not seed-stable")
					t.Fatalf("seed %d: metric snapshots differ between identical runs", seed)
				}
				if !bytes.Equal(a.ObsTrace, b.ObsTrace) {
					recordFailure(name, seed, "span trace not seed-stable")
					t.Fatalf("seed %d: chrome traces differ between identical runs:\nrun1:\n%s\nrun2:\n%s",
						seed, a.ObsTrace, b.ObsTrace)
				}
			}
		})
	}
}

// TestInstrumentedTracesFollowSchedule guards the sweep itself: on a program
// with real scheduling freedom, different seeds must yield different span
// traces, or the byte-stability assertions above are vacuous.
func TestInstrumentedTracesFollowSchedule(t *testing.T) {
	_, srcs := Corpus()
	src := srcs["fanin.pf"]
	distinct := map[string]bool{}
	for seed := int64(0); seed < 8; seed++ {
		res := RunInstrumented(src, seed)
		if res.Err != nil {
			t.Fatalf("seed %d: %v", seed, res.Err)
		}
		distinct[string(res.ObsTrace)] = true
	}
	if len(distinct) < 2 {
		t.Fatalf("8 seeds produced %d distinct instrumented traces; spans are not schedule-driven", len(distinct))
	}
}
