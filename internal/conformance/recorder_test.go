package conformance

import (
	"bytes"
	"testing"

	"repro/internal/msgcodec"
)

// TestRecorderScheduleTransparent: the flight recorder is always on in
// production, so it must be invisible to the schedule — a recorded run of any
// corpus program and seed produces byte-identical terminal output and an
// identical number of scheduling decisions as the unrecorded run.  Record is
// a few atomic stores off the virtual clock, so this holds by construction;
// the test is the guard that keeps it that way.
func TestRecorderScheduleTransparent(t *testing.T) {
	names, srcs := Corpus()
	for _, name := range names {
		name := name
		t.Run(name, func(t *testing.T) {
			for _, seed := range []int64{0, 1, 5} {
				plain := Run(srcs[name], seed)
				if plain.Err != nil {
					t.Fatalf("seed %d: %v", seed, plain.Err)
				}
				rec := RunRecorded(srcs[name], seed)
				if rec.Err != nil {
					recordFailure(name, seed, "recorded run error: "+rec.Err.Error())
					t.Fatalf("seed %d recorded: %v", seed, rec.Err)
				}
				if rec.Output != plain.Output {
					recordFailure(name, seed, "flight recorder changed program output")
					t.Fatalf("seed %d: recorded output differs:\nplain:\n%s\nrecorded:\n%s",
						seed, plain.Output, rec.Output)
				}
				if rec.Steps != plain.Steps {
					recordFailure(name, seed, "flight recorder changed the schedule")
					t.Fatalf("seed %d: %d steps recorded vs %d plain", seed, rec.Steps, plain.Steps)
				}
			}
		})
	}
}

// TestRecorderDumpSeedStable: a recorded sim run's blackbox dump is part of
// the deterministic contract — every event timestamp and the dump stamp come
// from the virtual clock, so the same seed must reproduce the dump byte for
// byte, and the dump must decode and contain the run's cross-cluster sends.
func TestRecorderDumpSeedStable(t *testing.T) {
	names, srcs := Corpus()
	for _, name := range names {
		name := name
		t.Run(name, func(t *testing.T) {
			for _, seed := range []int64{0, 7} {
				a := RunRecorded(srcs[name], seed)
				b := RunRecorded(srcs[name], seed)
				if a.Err != nil || b.Err != nil {
					t.Fatalf("seed %d: %v / %v", seed, a.Err, b.Err)
				}
				if len(a.RecorderDump) == 0 {
					t.Fatalf("seed %d: recorded run produced no dump", seed)
				}
				if !bytes.Equal(a.RecorderDump, b.RecorderDump) {
					recordFailure(name, seed, "blackbox dump not seed-stable")
					t.Fatalf("seed %d: blackbox dumps differ between identical runs", seed)
				}
				_, _, events, err := msgcodec.DecodeBlackbox(a.RecorderDump)
				if err != nil {
					t.Fatalf("seed %d: dump does not decode: %v", seed, err)
				}
				for _, ev := range events {
					if ev.Kind == msgcodec.EvSend && ev.Edge == 0 {
						t.Fatalf("seed %d: send event without a causal edge", seed)
					}
				}
			}
		})
	}
}

// TestRecorderCapturesRoutedTraffic guards the sweep above against vacuity:
// a program known to route across clusters must leave matching send and
// accept events — sharing a causal edge — in its dump.
func TestRecorderCapturesRoutedTraffic(t *testing.T) {
	_, srcs := Corpus()
	res := RunRecorded(srcs["crosscluster.pf"], 3)
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	_, _, events, err := msgcodec.DecodeBlackbox(res.RecorderDump)
	if err != nil {
		t.Fatal(err)
	}
	sent := map[uint64]bool{}
	matched := 0
	for _, ev := range events {
		switch ev.Kind {
		case msgcodec.EvSend:
			sent[ev.Edge] = true
		case msgcodec.EvAccept:
			if sent[ev.Edge] {
				matched++
			}
		}
	}
	if len(sent) == 0 || matched == 0 {
		t.Fatalf("crosscluster run recorded %d send edges, %d matched accepts (%d events)",
			len(sent), matched, len(events))
	}
}
