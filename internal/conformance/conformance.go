// Package conformance is the deterministic-scheduling conformance harness
// for the Pisces VM: it runs a corpus of Pisces Fortran programs on the
// internal/sim backend across many PRNG seeds and checks the two properties
// the deterministic backend promises —
//
//  1. seed stability: the same program with the same seed produces
//     byte-identical terminal output and an identical trace event order on
//     every run;
//  2. schedule independence: corpus programs are written so their *semantic*
//     output (sums, counts, final states) does not depend on message arrival
//     order, so their terminal output must be identical across all seeds
//     even though the underlying interleavings differ.
//
// A third invariant rides along: after Shutdown the shared-memory message
// heap must be fully recovered on every schedule, which turns the seed sweep
// into a leak hunt over interleavings.
//
// The corpus lives in corpus/*.pf (embedded).  Each program keeps to
// schedule-independent output; see the README section "Deterministic mode"
// for what that means when adding programs.
package conformance

import (
	"bytes"
	"embed"
	"fmt"
	"io/fs"
	"sort"
	"sync"
	"time"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/node"
	"repro/internal/obs"
	"repro/internal/pfi"
	"repro/internal/sim"
	"repro/internal/trace"
)

//go:embed corpus/*.pf
var corpusFS embed.FS

// Corpus returns the embedded conformance programs as name -> source, names
// sorted for deterministic iteration.
func Corpus() ([]string, map[string]string) {
	entries, err := fs.ReadDir(corpusFS, "corpus")
	if err != nil {
		panic(err) // embedded directory cannot be missing
	}
	srcs := make(map[string]string, len(entries))
	var names []string
	for _, e := range entries {
		b, err := fs.ReadFile(corpusFS, "corpus/"+e.Name())
		if err != nil {
			panic(err)
		}
		names = append(names, e.Name())
		srcs[e.Name()] = string(b)
	}
	sort.Strings(names)
	return names, srcs
}

// Result captures everything observable about one deterministic run.
type Result struct {
	// Output is the user-terminal output.
	Output string
	// Trace is the rendered trace lines of every enabled event, in global
	// emission order.
	Trace []string
	// Steps is the number of scheduling decisions the run took.
	Steps int64
	// HeapInUse is the shared-memory message heap still allocated after
	// Shutdown, summed over every per-cluster shard; any non-zero value is a
	// leak on this schedule.
	HeapInUse int
	// HeapShardsInUse is the same quantity per heap shard (one entry per
	// cluster, in cluster order): the sweep asserts every shard is empty, so
	// a leak pinned to one cluster's shard is reported as such.
	HeapShardsInUse []int
	// Err is the program's compile- or run-time error, if any.
	Err error
	// Deadlock is non-nil when the schedule wedged (it is also wrapped in
	// Err).
	Deadlock *sim.Deadlock
	// ObsSnapshot and ObsTrace are the encoded metric snapshot and the
	// Chrome trace-event JSON of a RunInstrumented run (nil otherwise).
	// Under the sim backend every timestamp in them comes from the virtual
	// clock, so both must be byte-identical across runs of the same seed.
	ObsSnapshot []byte
	ObsTrace    []byte
	// RecorderDump is the encoded flight-recorder blackbox of a RunRecorded
	// run (nil otherwise).  Every timestamp in it is virtual, so it must be
	// byte-identical across runs of the same seed.
	RecorderDump []byte
	// VirtualElapsed is the virtual time the program took (from VM boot to
	// the end of the program, before shutdown).  Kill schedules are phrased
	// as fractions of a reference run's elapsed time.
	VirtualElapsed time.Duration
}

// KillRecovery reports what a RunKill recovery actually did, so the sweep
// can assert the kill landed mid-run rather than on an idle cluster.
type KillRecovery struct {
	// Victims is the number of tasks FailClusters killed.
	Victims int
	// Checkpoints is how many periodic checkpoints completed before the kill.
	Checkpoints int
	// Replayed is the number of retained post-checkpoint frames re-injected
	// after the restore.
	Replayed int
	// Err is a checkpoint/restore error raised inside the kill schedule.
	Err error
}

// harnessCache is the conformance harness's own compile-cache handle: sweep
// runs share compiled corpus units with each other (a 32-seed sweep compiles
// each program once) but not with the process-wide pfi cache, so harness
// traffic can neither pollute nor be polluted by other tests in the same
// test binary.
var harnessCache = pfi.NewUnitCache(0)

// Run executes one Pisces Fortran program on a fresh VM under the sim
// backend with the given seed and full tracing, and returns the observables.
// A deadlocked schedule is reported in the result, not panicked; the output
// and trace produced up to the deadlock are preserved for diagnosis.  (The
// VM of a deadlocked run is deliberately not shut down: its scheduler is
// poisoned and its parked tasks can never be resumed, so teardown would only
// re-raise the deadlock.  The handful of parked goroutines are abandoned.)
func Run(src string, seed int64) Result { return run(src, seed, false, nil, nil) }

// RunInstrumented is Run with the full observability surface switched on:
// metrics AND spans collected at every instrumented layer.  The sweep uses it
// to assert instrumentation is transparent (program output and schedule
// unchanged) and deterministic (snapshot and trace byte-stable per seed).
func RunInstrumented(src string, seed int64) Result {
	reg := obs.New()
	reg.Enable(obs.Metrics | obs.Spans)
	return run(src, seed, false, reg, nil)
}

// RunRecorded is Run with the flight recorder attached.  The sweep uses it to
// assert the recorder is schedule-transparent (recording changes neither the
// output nor the step count of any schedule) and that its dump — every
// timestamp virtual — is byte-stable per seed.
func RunRecorded(src string, seed int64) Result {
	return run(src, seed, false, nil, obs.NewRecorder(0, 0, 0))
}

// RunFault is Run with the node runtime's deterministic fault/latency
// transport intercepting every cross-cluster message: frames pay seeded
// virtual-clock delays (including retransmission faults) before delivery, so
// the sweep exercises network schedules a single process never produces —
// while staying byte-reproducible from the seed.
func RunFault(src string, seed int64) Result { return run(src, seed, true, nil, nil) }

// killedCluster is the cluster the kill sweep fails: MAIN is placed on the
// terminal cluster 1 (whose user/file controllers anchor the run and are not
// recoverable), so cluster 2 holds exactly the task-initiated — replayable —
// part of the machine.
const killedCluster = 2

// RunKill is RunFault with fault tolerance switched on and a simulated node
// failure in the schedule: cluster 2 is checkpointed every ckptEvery of
// virtual time (the transport retaining all frames delivered to it since the
// last checkpoint), failed at killAt, restored from the last checkpoint, and
// fed the retained frames back.  Everything — delays, checkpoint cuts, the
// kill — runs on the virtual clock, so the whole recovery schedule replays
// byte-identically from (seed, killAt, ckptEvery).
func RunKill(src string, seed int64, killAt, ckptEvery time.Duration) (Result, *KillRecovery) {
	rec := &KillRecovery{}
	res := run(src, seed, true, nil, nil, &killPlan{at: killAt, every: ckptEvery, rec: rec})
	return res, rec
}

// killPlan carries the kill schedule into run.
type killPlan struct {
	at    time.Duration
	every time.Duration
	rec   *KillRecovery
}

// install arms the periodic checkpoint chain and the kill timer on the fault
// transport's virtual clock.  stop() disarms the chain (called when the
// program completes, so a rearming timer cannot keep the shutdown pump
// alive).
func (k *killPlan) install(vm *core.VM, ft *node.FaultTransport) (stop func(), err error) {
	// Retention and the first (empty) checkpoint start at t=0: a kill before
	// the first periodic cut restores an empty cluster and rebuilds it
	// entirely from replayed frames.
	ft.MarkEpoch(killedCluster)
	blob, err := vm.Checkpoint(killedCluster)
	if err != nil {
		return nil, err
	}
	var mu sync.Mutex
	stopped := false
	var arm func(d time.Duration)
	arm = func(d time.Duration) {
		_ = ft.KillAt(d, func() {
			mu.Lock()
			if stopped {
				mu.Unlock()
				return
			}
			b, cerr := vm.Checkpoint(killedCluster)
			if cerr != nil {
				k.rec.Err = cerr
				mu.Unlock()
				return
			}
			blob = b
			ft.MarkEpoch(killedCluster)
			k.rec.Checkpoints++
			mu.Unlock()
			arm(d)
		})
	}
	arm(k.every)
	_ = ft.KillAt(k.at, func() {
		// Disarm checkpoints first: FailClusters pumps the scheduler while it
		// waits for the victims' exits, and a checkpoint cut taken during the
		// fail window would capture half-dead state.
		mu.Lock()
		stopped = true
		b := blob
		mu.Unlock()
		k.rec.Victims = vm.FailClusters(killedCluster)
		if rerr := vm.Restore(b); rerr != nil {
			k.rec.Err = rerr
			return
		}
		k.rec.Replayed = ft.ReplayRetained(killedCluster)
	})
	return func() {
		mu.Lock()
		stopped = true
		mu.Unlock()
	}, nil
}

func run(src string, seed int64, fault bool, reg *obs.Registry, rec *obs.Recorder, kill ...*killPlan) (res Result) {
	s := sim.New(seed)
	var out bytes.Buffer
	mem := &trace.MemorySink{}
	defer func() {
		if r := recover(); r != nil {
			d, ok := r.(*sim.Deadlock)
			if !ok {
				panic(r)
			}
			res.Deadlock = d
			res.Err = fmt.Errorf("schedule deadlocked: %w", d)
			res.Output = out.String()
			res.Trace = mem.Lines()
			res.Steps = s.Steps()
		}
	}()

	// Two clusters with a three-member force on cluster 1: enough hardware
	// that placements, cross-cluster sends, and force collectives all have
	// real scheduling freedom.
	cfg := config.Simple(2, 8).WithForces(1, 7, 8)
	opts := core.Options{
		UserOutput:     &out,
		Backend:        s,
		AcceptTimeout:  30 * time.Second, // virtual: expires only at quiescence
		TraceSinks:     []trace.Sink{mem},
		Metrics:        reg,
		FlightRecorder: rec,
	}
	var ft *node.FaultTransport
	if fault {
		ft = node.NewFaultTransport(seed, node.DefaultFaultProfile())
		opts.Remote = ft
		opts.InterceptWire = true
	}
	if len(kill) > 0 && kill[0] != nil {
		opts.HA = true // checkpoint/restore needs the HA bookkeeping on
	}
	vm, err := core.NewVM(cfg, opts)
	if err != nil {
		res.Err = err
		return res
	}
	if ft != nil {
		ft.Bind(vm)
	}
	vm.Tracer().EnableAll(true)
	stopKill := func() {}
	if len(kill) > 0 && kill[0] != nil {
		stop, kerr := kill[0].install(vm, ft)
		if kerr != nil {
			vm.Shutdown()
			res.Err = kerr
			return res
		}
		stopKill = stop
		defer stop() // the deadlock path skips the explicit call below
	}
	start := s.Now()

	prog, err := harnessCache.Compile(src)
	if err != nil {
		vm.Shutdown()
		res.Err = err
		return res
	}
	runErr := prog.Run(vm, pfi.Options{})
	res.VirtualElapsed = s.Now().Sub(start)
	// Disarm the checkpoint chain before Shutdown: its drain pumps the
	// scheduler, and a self-rearming timer would keep the pump alive forever.
	stopKill()
	vm.Shutdown()

	res.Output = out.String()
	res.Trace = mem.Lines()
	res.Steps = s.Steps()
	res.HeapInUse = vm.Machine().Shared().Usage().HeapInUse
	for _, shard := range vm.Machine().Shared().HeapShards() {
		res.HeapShardsInUse = append(res.HeapShardsInUse, shard.InUse())
	}
	res.Err = runErr
	if reg != nil {
		res.ObsSnapshot = reg.Snapshot().Encode()
		var tr bytes.Buffer
		if err := reg.WriteChromeTrace(&tr); err == nil {
			res.ObsTrace = tr.Bytes()
		}
	}
	if rec != nil {
		// Dumped after Shutdown, when recording has quiesced; the dump
		// timestamp comes from the (frozen) virtual clock.
		if b, derr := rec.Dump(); derr == nil {
			res.RecorderDump = b
		}
	}
	return res
}
