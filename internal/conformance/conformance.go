// Package conformance is the deterministic-scheduling conformance harness
// for the Pisces VM: it runs a corpus of Pisces Fortran programs on the
// internal/sim backend across many PRNG seeds and checks the two properties
// the deterministic backend promises —
//
//  1. seed stability: the same program with the same seed produces
//     byte-identical terminal output and an identical trace event order on
//     every run;
//  2. schedule independence: corpus programs are written so their *semantic*
//     output (sums, counts, final states) does not depend on message arrival
//     order, so their terminal output must be identical across all seeds
//     even though the underlying interleavings differ.
//
// A third invariant rides along: after Shutdown the shared-memory message
// heap must be fully recovered on every schedule, which turns the seed sweep
// into a leak hunt over interleavings.
//
// The corpus lives in corpus/*.pf (embedded).  Each program keeps to
// schedule-independent output; see the README section "Deterministic mode"
// for what that means when adding programs.
package conformance

import (
	"bytes"
	"embed"
	"fmt"
	"io/fs"
	"sort"
	"time"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/node"
	"repro/internal/obs"
	"repro/internal/pfi"
	"repro/internal/sim"
	"repro/internal/trace"
)

//go:embed corpus/*.pf
var corpusFS embed.FS

// Corpus returns the embedded conformance programs as name -> source, names
// sorted for deterministic iteration.
func Corpus() ([]string, map[string]string) {
	entries, err := fs.ReadDir(corpusFS, "corpus")
	if err != nil {
		panic(err) // embedded directory cannot be missing
	}
	srcs := make(map[string]string, len(entries))
	var names []string
	for _, e := range entries {
		b, err := fs.ReadFile(corpusFS, "corpus/"+e.Name())
		if err != nil {
			panic(err)
		}
		names = append(names, e.Name())
		srcs[e.Name()] = string(b)
	}
	sort.Strings(names)
	return names, srcs
}

// Result captures everything observable about one deterministic run.
type Result struct {
	// Output is the user-terminal output.
	Output string
	// Trace is the rendered trace lines of every enabled event, in global
	// emission order.
	Trace []string
	// Steps is the number of scheduling decisions the run took.
	Steps int64
	// HeapInUse is the shared-memory message heap still allocated after
	// Shutdown, summed over every per-cluster shard; any non-zero value is a
	// leak on this schedule.
	HeapInUse int
	// HeapShardsInUse is the same quantity per heap shard (one entry per
	// cluster, in cluster order): the sweep asserts every shard is empty, so
	// a leak pinned to one cluster's shard is reported as such.
	HeapShardsInUse []int
	// Err is the program's compile- or run-time error, if any.
	Err error
	// Deadlock is non-nil when the schedule wedged (it is also wrapped in
	// Err).
	Deadlock *sim.Deadlock
	// ObsSnapshot and ObsTrace are the encoded metric snapshot and the
	// Chrome trace-event JSON of a RunInstrumented run (nil otherwise).
	// Under the sim backend every timestamp in them comes from the virtual
	// clock, so both must be byte-identical across runs of the same seed.
	ObsSnapshot []byte
	ObsTrace    []byte
}

// Run executes one Pisces Fortran program on a fresh VM under the sim
// backend with the given seed and full tracing, and returns the observables.
// A deadlocked schedule is reported in the result, not panicked; the output
// and trace produced up to the deadlock are preserved for diagnosis.  (The
// VM of a deadlocked run is deliberately not shut down: its scheduler is
// poisoned and its parked tasks can never be resumed, so teardown would only
// re-raise the deadlock.  The handful of parked goroutines are abandoned.)
func Run(src string, seed int64) Result { return run(src, seed, false, nil) }

// RunInstrumented is Run with the full observability surface switched on:
// metrics AND spans collected at every instrumented layer.  The sweep uses it
// to assert instrumentation is transparent (program output and schedule
// unchanged) and deterministic (snapshot and trace byte-stable per seed).
func RunInstrumented(src string, seed int64) Result {
	reg := obs.New()
	reg.Enable(obs.Metrics | obs.Spans)
	return run(src, seed, false, reg)
}

// RunFault is Run with the node runtime's deterministic fault/latency
// transport intercepting every cross-cluster message: frames pay seeded
// virtual-clock delays (including retransmission faults) before delivery, so
// the sweep exercises network schedules a single process never produces —
// while staying byte-reproducible from the seed.
func RunFault(src string, seed int64) Result { return run(src, seed, true, nil) }

func run(src string, seed int64, fault bool, reg *obs.Registry) (res Result) {
	s := sim.New(seed)
	var out bytes.Buffer
	mem := &trace.MemorySink{}
	defer func() {
		if r := recover(); r != nil {
			d, ok := r.(*sim.Deadlock)
			if !ok {
				panic(r)
			}
			res.Deadlock = d
			res.Err = fmt.Errorf("schedule deadlocked: %w", d)
			res.Output = out.String()
			res.Trace = mem.Lines()
			res.Steps = s.Steps()
		}
	}()

	// Two clusters with a three-member force on cluster 1: enough hardware
	// that placements, cross-cluster sends, and force collectives all have
	// real scheduling freedom.
	cfg := config.Simple(2, 8).WithForces(1, 7, 8)
	opts := core.Options{
		UserOutput:    &out,
		Backend:       s,
		AcceptTimeout: 30 * time.Second, // virtual: expires only at quiescence
		TraceSinks:    []trace.Sink{mem},
		Metrics:       reg,
	}
	var ft *node.FaultTransport
	if fault {
		ft = node.NewFaultTransport(seed, node.DefaultFaultProfile())
		opts.Remote = ft
		opts.InterceptWire = true
	}
	vm, err := core.NewVM(cfg, opts)
	if err != nil {
		res.Err = err
		return res
	}
	if ft != nil {
		ft.Bind(vm)
	}
	vm.Tracer().EnableAll(true)

	prog, err := pfi.Compile(src)
	if err != nil {
		vm.Shutdown()
		res.Err = err
		return res
	}
	runErr := prog.Run(vm, pfi.Options{})
	vm.Shutdown()

	res.Output = out.String()
	res.Trace = mem.Lines()
	res.Steps = s.Steps()
	res.HeapInUse = vm.Machine().Shared().Usage().HeapInUse
	for _, shard := range vm.Machine().Shared().HeapShards() {
		res.HeapShardsInUse = append(res.HeapShardsInUse, shard.InUse())
	}
	res.Err = runErr
	if reg != nil {
		res.ObsSnapshot = reg.Snapshot().Encode()
		var tr bytes.Buffer
		if err := reg.WriteChromeTrace(&tr); err == nil {
			res.ObsTrace = tr.Bytes()
		}
	}
	return res
}
