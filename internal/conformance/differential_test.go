package conformance

import (
	"errors"
	"os"
	"testing"

	"repro/internal/pfc"
	"repro/internal/pfi"
)

// errLine extracts the source line number from a pfc or pfi diagnostic.
func errLine(t *testing.T, err error) int {
	t.Helper()
	var pe *pfc.Error
	if errors.As(err, &pe) {
		return pe.Line
	}
	var ie *pfi.Error
	if errors.As(err, &ie) {
		return ie.Line
	}
	t.Fatalf("error %v (%T) carries no line number", err, err)
	return 0
}

// TestDifferentialCompile: the two consumers of Pisces Fortran — the pfc
// preprocessor (paper's Section 10 tool chain) and the pfi interpreter —
// must agree on the corpus: every corpus program preprocesses if and only if
// it compiles.  For this corpus that means both succeed everywhere; a
// program one front end accepts and the other rejects is a fault in one of
// them.
func TestDifferentialCompile(t *testing.T) {
	names, srcs := corpusPrograms(t)
	for _, name := range names {
		src := srcs[name]
		_, pfcErr := pfc.Preprocess(src, pfc.Options{})
		_, pfiErr := pfi.CompileUncached(src)
		if (pfcErr == nil) != (pfiErr == nil) {
			t.Errorf("%s: front ends disagree: pfc err=%v, pfi err=%v", name, pfcErr, pfiErr)
			continue
		}
		if pfcErr != nil {
			t.Errorf("%s: corpus program rejected by both front ends: %v", name, pfcErr)
		}
	}
}

// TestDifferentialDiagnostics: for malformed programs that both front ends
// reject, the reported line numbers must agree — a schedule-bug reproduction
// workflow hops between `piscesfc` and `pisces run`, and diverging line
// numbers would send the user to the wrong statement.
func TestDifferentialDiagnostics(t *testing.T) {
	cases := map[string]string{
		"unterminated accept":   "TASKTYPE T\n      ACCEPT 1 OF\n        M\n      DELAY 1.0 THEN\nEND TASKTYPE\n",
		"initiate w/o type":     "TASKTYPE T\n      ON ANY INITIATE\nEND TASKTYPE\n",
		"send w/o dest":         "TASKTYPE T\n      TO SEND M(1)\nEND TASKTYPE\n",
		"critical w/o lock":     "TASKTYPE T\n      CRITICAL\nEND TASKTYPE\n",
		"parseg unterminated":   "TASKTYPE T\n      PARSEG\n      PRINT *, 1\nEND TASKTYPE\n",
		"tasktype unterminated": "TASKTYPE T\n      PRINT *, 1\n",
		"shared common name":    "TASKTYPE T\n      SHARED COMMON FOO\nEND TASKTYPE\n",
		"second stmt bad": "TASKTYPE T\n      PRINT *, 'OK'\n" +
			"      ON ANY INITIATE\nEND TASKTYPE\n",
	}
	for name, src := range cases {
		name, src := name, src
		t.Run(name, func(t *testing.T) {
			_, pfcErr := pfc.Preprocess(src, pfc.Options{})
			_, pfiErr := pfi.CompileUncached(src)
			if pfcErr == nil || pfiErr == nil {
				t.Fatalf("expected both front ends to reject: pfc=%v pfi=%v", pfcErr, pfiErr)
			}
			if pl, il := errLine(t, pfcErr), errLine(t, pfiErr); pl != il {
				t.Errorf("line numbers disagree: pfc line %d (%v) vs pfi line %d (%v)", pl, pfcErr, il, pfiErr)
			}
		})
	}

	// pfi performs whole-program checks pfc (a line-by-line translator) does
	// not; those must still carry accurate line numbers even though they are
	// pfi-only.
	pfiOnly := map[string]struct {
		src  string
		line int
	}{
		"duplicate tasktype": {"TASKTYPE T\nEND TASKTYPE\nTASKTYPE T\nEND TASKTYPE\n", 3},
		"truncated expr":     {"TASKTYPE T\n      X = 1 +\nEND TASKTYPE\n", 2},
	}
	for name, c := range pfiOnly {
		name, c := name, c
		t.Run("pfi-only/"+name, func(t *testing.T) {
			if _, err := pfc.Preprocess(c.src, pfc.Options{}); err != nil {
				t.Fatalf("pfc unexpectedly rejects: %v", err)
			}
			_, err := pfi.CompileUncached(c.src)
			if err == nil {
				t.Fatal("pfi unexpectedly accepts")
			}
			if got := errLine(t, err); got != c.line {
				t.Errorf("pfi line = %d (%v), want %d", got, err, c.line)
			}
		})
	}
}

// TestExamplesCompileBothWays keeps the shipped example programs valid for
// both front ends (the corpus check above covers them too, via
// corpusPrograms; this asserts it for the exact files on disk).
func TestExamplesCompileBothWays(t *testing.T) {
	for _, p := range []string{"../../examples/sumsq.pf", "../../examples/piscesfortran/program.pf"} {
		b, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := pfc.Preprocess(string(b), pfc.Options{}); err != nil {
			t.Errorf("%s: pfc: %v", p, err)
		}
		if _, err := pfi.CompileUncached(string(b)); err != nil {
			t.Errorf("%s: pfi: %v", p, err)
		}
	}
}
