package conformance

import (
	"fmt"
	"strings"
	"testing"
)

// TestFaultTransportScheduleIndependence sweeps the corpus under the
// fault/latency-injecting transport: every cross-cluster message pays a
// seeded virtual-network delay (some a retransmission penalty), which
// produces interleavings no in-process schedule reaches — yet the programs'
// output must still match the undelayed seed-0 baseline, no schedule may
// deadlock, and every heap shard must be empty after shutdown.
func TestFaultTransportScheduleIndependence(t *testing.T) {
	names, srcs := corpusPrograms(t)
	for _, name := range names {
		name := name
		t.Run(name, func(t *testing.T) {
			baseline := Run(srcs[name], 0)
			if baseline.Err != nil {
				t.Fatalf("baseline: %v", baseline.Err)
			}
			for seed := int64(0); seed < int64(*seedCount); seed++ {
				res := RunFault(srcs[name], seed)
				if res.Err != nil {
					recordFailure(name, seed, "fault-transport run error: "+res.Err.Error())
					t.Fatalf("fault seed %d: %v", seed, res.Err)
				}
				if res.Output != baseline.Output {
					recordFailure(name, seed, "fault-transport output diverges from baseline")
					t.Fatalf("fault seed %d output diverges:\nbaseline:\n%s\nfault:\n%s",
						seed, baseline.Output, res.Output)
				}
				for shard, in := range res.HeapShardsInUse {
					if in != 0 {
						recordFailure(name, seed, fmt.Sprintf("fault-transport heap leak: %d bytes on shard %d", in, shard))
						t.Errorf("fault seed %d: %d heap bytes on shard %d after shutdown", seed, in, shard)
					}
				}
			}
		})
	}
}

// TestFaultTransportSeedStable pins reproducibility: the same seed replays
// the same delays and therefore the same run, byte for byte.
func TestFaultTransportSeedStable(t *testing.T) {
	_, srcs := Corpus()
	src := srcs["crosscluster.pf"]
	for _, seed := range []int64{0, 7, 12345} {
		a := RunFault(src, seed)
		b := RunFault(src, seed)
		if a.Err != nil || b.Err != nil {
			t.Fatalf("seed %d: %v / %v", seed, a.Err, b.Err)
		}
		if a.Output != b.Output || a.Steps != b.Steps {
			t.Fatalf("seed %d not reproducible: %d vs %d steps", seed, a.Steps, b.Steps)
		}
		if strings.Join(a.Trace, "\n") != strings.Join(b.Trace, "\n") {
			t.Fatalf("seed %d trace not reproducible", seed)
		}
	}
}

// TestFaultTransportActuallyDelays guards the harness: with faults injected,
// at least one corpus program must take a different schedule than without,
// or the sweep exercises nothing new.
func TestFaultTransportActuallyDelays(t *testing.T) {
	_, srcs := Corpus()
	src := srcs["crosscluster.pf"]
	plain := Run(src, 0)
	faulty := RunFault(src, 0)
	if plain.Err != nil || faulty.Err != nil {
		t.Fatalf("%v / %v", plain.Err, faulty.Err)
	}
	if plain.Steps == faulty.Steps &&
		strings.Join(plain.Trace, "\n") == strings.Join(faulty.Trace, "\n") {
		t.Fatal("fault transport produced the identical schedule; injection is inert")
	}
}
