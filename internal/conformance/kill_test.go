package conformance

import (
	"fmt"
	"testing"
	"time"
)

// killQuiet lists programs for which the kill is expected to find cluster 2
// idle: single-task and force/shared-memory programs place every task on
// cluster 1 (the force cluster), so failing cluster 2 exercises the no-op
// recovery path (checkpoint, kill, restore of an empty partition) and the
// sweep asserts only output identity, not recovery activity.  Every corpus
// program stays in the sweep — none needs a byte-identity exemption.
var killQuiet = map[string]bool{
	"barrier-counter.pf": true,
	"force-presched.pf":  true,
	"parseg.pf":          true,
	"selfsched.pf":       true,
	"sequential.pf":      true,
	"timeout.pf":         true,
	"example:sumsq.pf":   true,
	"example:program.pf": true,
}

// killSchedule derives a (killAt, ckptEvery) pair for one seed from the
// reference run's virtual elapsed time: kills land at 8 distinct fractions of
// the run (cycling with the seed) and checkpoints cut roughly five times per
// run, so the sweep covers kills before the first checkpoint, between
// checkpoints, and near completion.
func killSchedule(elapsed time.Duration, seed int64) (killAt, ckptEvery time.Duration) {
	frac := 0.15 + 0.6*float64(seed%8)/8
	killAt = time.Duration(float64(elapsed) * frac)
	if killAt <= 0 {
		killAt = time.Millisecond
	}
	ckptEvery = elapsed / 5
	if ckptEvery <= 0 {
		ckptEvery = time.Millisecond
	}
	return killAt, ckptEvery
}

// TestKillANodeConformance is the kill-a-node sweep: every corpus program
// runs under the fault transport with cluster 2 checkpointed periodically,
// failed mid-run at a seed-derived virtual time, restored from its last
// checkpoint, and fed the retained post-checkpoint frames.  The terminal
// output must be byte-identical to the fault-free single-process baseline on
// every seed, no schedule may deadlock, and the heap must come back empty —
// i.e. a node death is invisible in the program's observable behaviour.
func TestKillANodeConformance(t *testing.T) {
	names, srcs := corpusPrograms(t)
	totalVictims := 0
	for _, name := range names {
		name := name
		t.Run(name, func(t *testing.T) {
			baseline := Run(srcs[name], 0)
			if baseline.Err != nil {
				t.Fatalf("baseline: %v", baseline.Err)
			}
			ref := RunFault(srcs[name], 0)
			if ref.Err != nil {
				t.Fatalf("fault reference: %v", ref.Err)
			}
			recovered := false
			for seed := int64(0); seed < int64(*seedCount); seed++ {
				killAt, ckptEvery := killSchedule(ref.VirtualElapsed, seed)
				res, rec := RunKill(srcs[name], seed, killAt, ckptEvery)
				ctx := fmt.Sprintf("seed %d killAt=%v ckptEvery=%v", seed, killAt, ckptEvery)
				if rec.Err != nil {
					recordFailure(name, seed, "kill schedule error: "+rec.Err.Error())
					t.Fatalf("%s: checkpoint/restore: %v", ctx, rec.Err)
				}
				if res.Err != nil {
					recordFailure(name, seed, "kill run error: "+res.Err.Error())
					t.Fatalf("%s: %v", ctx, res.Err)
				}
				if res.Output != baseline.Output {
					recordFailure(name, seed, "kill output diverges from baseline")
					t.Fatalf("%s: output diverges (victims=%d ckpts=%d replayed=%d):\nbaseline:\n%s\nkill:\n%s",
						ctx, rec.Victims, rec.Checkpoints, rec.Replayed, baseline.Output, res.Output)
				}
				for shard, in := range res.HeapShardsInUse {
					if in != 0 {
						recordFailure(name, seed, fmt.Sprintf("kill heap leak: %d bytes on shard %d", in, shard))
						t.Errorf("%s: %d heap bytes on shard %d after shutdown", ctx, in, shard)
					}
				}
				if rec.Victims > 0 || rec.Replayed > 0 {
					recovered = true
				}
				totalVictims += rec.Victims
			}
			// Guard the harness: across the seed matrix at least one kill must
			// have caught live tasks or forced a frame replay — except for the
			// programs that place no work on cluster 2 at all.
			if !recovered && !killQuiet[name] {
				t.Errorf("no seed's kill caught live tasks or replayed frames on cluster %d; the sweep is inert for this program", killedCluster)
			}
		})
	}
	// The matrix as a whole must have killed real tasks mid-flight somewhere,
	// or the whole suite degenerated into no-op recoveries.
	if totalVictims == 0 {
		t.Errorf("no kill across the whole matrix caught a live task; the sweep exercises nothing")
	}
}

// TestKillSeedStable pins recovery reproducibility: the same (seed, killAt,
// ckptEvery) replays the same kill, the same restore, the same replayed
// frames, and byte-identical output — a recovery schedule is as replayable
// as a fault schedule.
func TestKillSeedStable(t *testing.T) {
	_, srcs := Corpus()
	for _, name := range []string{"crosscluster.pf", "pipeline.pf", "fanin.pf"} {
		src := srcs[name]
		ref := RunFault(src, 0)
		if ref.Err != nil {
			t.Fatalf("%s: fault reference: %v", name, ref.Err)
		}
		for _, seed := range []int64{0, 7, 12345} {
			killAt, ckptEvery := killSchedule(ref.VirtualElapsed, seed)
			a, ra := RunKill(src, seed, killAt, ckptEvery)
			b, rb := RunKill(src, seed, killAt, ckptEvery)
			if a.Err != nil || b.Err != nil || ra.Err != nil || rb.Err != nil {
				t.Fatalf("%s seed %d: %v / %v / %v / %v", name, seed, a.Err, b.Err, ra.Err, rb.Err)
			}
			if a.Output != b.Output || a.Steps != b.Steps {
				t.Fatalf("%s seed %d not reproducible: %d vs %d steps", name, seed, a.Steps, b.Steps)
			}
			if *ra != *rb {
				t.Fatalf("%s seed %d recovery not reproducible: %+v vs %+v", name, seed, *ra, *rb)
			}
		}
	}
}
