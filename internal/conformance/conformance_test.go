package conformance

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// seedCount is how many seeds the schedule-independence sweep covers.  CI
// raises it (go test ./internal/conformance -args -seeds=32); the acceptance
// floor is 16.
var seedCount = flag.Int("seeds", 16, "number of PRNG seeds to sweep per corpus program")

// failureLog collects failing (program, seed) pairs so CI can upload them as
// an artifact for replay.
const failureLog = "conformance-failures.txt"

var failures []string

func recordFailure(program string, seed int64, why string) {
	failures = append(failures, fmt.Sprintf("program=%s seed=%d %s", program, seed, why))
}

func TestMain(m *testing.M) {
	flag.Parse()
	code := m.Run()
	if len(failures) > 0 {
		_ = os.WriteFile(failureLog, []byte(strings.Join(failures, "\n")+"\n"), 0o644)
	} else {
		_ = os.Remove(failureLog)
	}
	os.Exit(code)
}

// corpusPrograms returns the embedded corpus plus the repository's example
// programs, so the examples stay deterministic too.
func corpusPrograms(t *testing.T) ([]string, map[string]string) {
	names, srcs := Corpus()
	for _, p := range []string{
		"../../examples/sumsq.pf",
		"../../examples/piscesfortran/program.pf",
	} {
		b, err := os.ReadFile(p)
		if err != nil {
			t.Fatalf("reading example %s: %v", p, err)
		}
		name := "example:" + filepath.Base(p)
		names = append(names, name)
		srcs[name] = string(b)
	}
	if len(names) < 10 {
		t.Fatalf("corpus has %d programs, want >= 10", len(names))
	}
	return names, srcs
}

// TestSeedStability: the same program and seed reproduce byte-identical
// output AND an identical trace event sequence, run after run.
func TestSeedStability(t *testing.T) {
	names, srcs := corpusPrograms(t)
	for _, name := range names {
		name := name
		t.Run(name, func(t *testing.T) {
			for _, seed := range []int64{0, 1, 12345} {
				a := Run(srcs[name], seed)
				b := Run(srcs[name], seed)
				if a.Err != nil {
					recordFailure(name, seed, "run error: "+a.Err.Error())
					t.Fatalf("seed %d: %v", seed, a.Err)
				}
				if a.Output != b.Output {
					recordFailure(name, seed, "output not seed-stable")
					t.Fatalf("seed %d output differs between runs:\nrun1:\n%s\nrun2:\n%s", seed, a.Output, b.Output)
				}
				if len(a.Trace) != len(b.Trace) {
					recordFailure(name, seed, "trace length not seed-stable")
					t.Fatalf("seed %d trace lengths differ: %d vs %d", seed, len(a.Trace), len(b.Trace))
				}
				for i := range a.Trace {
					if a.Trace[i] != b.Trace[i] {
						recordFailure(name, seed, "trace order not seed-stable")
						t.Fatalf("seed %d trace diverges at event %d:\nrun1: %s\nrun2: %s",
							seed, i, a.Trace[i], b.Trace[i])
					}
				}
				if a.Steps != b.Steps {
					recordFailure(name, seed, "step count not seed-stable")
					t.Fatalf("seed %d: %d steps vs %d steps", seed, a.Steps, b.Steps)
				}
			}
		})
	}
}

// TestScheduleIndependence: corpus programs print schedule-independent
// results, so every seed must produce the same terminal output, no schedule
// may deadlock, and every schedule must fully recover the message heap.
func TestScheduleIndependence(t *testing.T) {
	names, srcs := corpusPrograms(t)
	for _, name := range names {
		name := name
		t.Run(name, func(t *testing.T) {
			baseline := Run(srcs[name], 0)
			if baseline.Err != nil {
				recordFailure(name, 0, "run error: "+baseline.Err.Error())
				t.Fatalf("seed 0: %v", baseline.Err)
			}
			for seed := int64(1); seed < int64(*seedCount); seed++ {
				res := Run(srcs[name], seed)
				if res.Err != nil {
					recordFailure(name, seed, "run error: "+res.Err.Error())
					t.Fatalf("seed %d: %v", seed, res.Err)
				}
				if res.Output != baseline.Output {
					recordFailure(name, seed, "output diverges from seed 0")
					t.Fatalf("seed %d output diverges from seed 0:\nseed 0:\n%s\nseed %d:\n%s",
						seed, baseline.Output, seed, res.Output)
				}
				for shard, in := range res.HeapShardsInUse {
					if in != 0 {
						recordFailure(name, seed, fmt.Sprintf("heap leak: %d bytes on shard %d after shutdown", in, shard))
						t.Errorf("seed %d: %d heap bytes still allocated on shard %d after shutdown", seed, in, shard)
					}
				}
			}
			t.Logf("%s: %d seeds, output stable (%d bytes)", name, *seedCount, len(baseline.Output))
		})
	}
}

// TestSeedsActuallyDiffer guards the harness itself: on a program with real
// scheduling freedom, different seeds must produce different interleavings
// (different trace orders), or the sweep is vacuous.
func TestSeedsActuallyDiffer(t *testing.T) {
	_, srcs := Corpus()
	src := srcs["fanin.pf"]
	distinct := map[string]bool{}
	for seed := int64(0); seed < 8; seed++ {
		res := Run(src, seed)
		if res.Err != nil {
			t.Fatalf("seed %d: %v", seed, res.Err)
		}
		distinct[strings.Join(res.Trace, "\n")] = true
	}
	if len(distinct) < 2 {
		t.Fatalf("8 seeds of fanin.pf produced %d distinct schedules; the PRNG pick is inert", len(distinct))
	}
}
